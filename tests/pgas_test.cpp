// Tests for the PGAS runtime: symmetric-heap translation, the DART-style
// local/remote completion split, remote atomics serialized at the target,
// fence/flush ordering, the team barrier, crash rebinding through
// reestablish(), and the causal-trace chains every op carries.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "ib/verbs.hpp"
#include "net/cost_params.hpp"
#include "net/fabric.hpp"
#include "pgas/pgas.hpp"
#include "sim/causal.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topo/fat_tree.hpp"

namespace ckd::pgas {
namespace {

constexpr std::size_t kSegBytes = 64 * 1024;

class PgasTest : public ::testing::Test {
 protected:
  PgasTest()
      : topo_(std::make_shared<topo::FatTree>(4, 1)),
        fabric_(engine_, topo_, net::abeParams()),
        verbs_(fabric_),
        pg_(verbs_, dartIbCosts(), kSegBytes) {}

  sim::Engine engine_;
  topo::TopologyPtr topo_;
  net::Fabric fabric_;
  ib::IbVerbs verbs_;
  Pgas pg_;
};

// --- symmetric heap ------------------------------------------------------------

TEST_F(PgasTest, AllocHandsOutOneOffsetValidOnEveryPe) {
  const Gptr a = pg_.alloc(128);
  const Gptr b = pg_.alloc(64);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_GE(b.offset, a.offset + 128);
  // Translation is a base add: distinct per-PE bases, identical layout.
  std::set<const void*> bases;
  for (int p = 0; p < pg_.numPes(); ++p) {
    bases.insert(pg_.addr(p, a));
    const auto* pa = static_cast<const std::byte*>(pg_.addr(p, a));
    const auto* pb = static_cast<const std::byte*>(pg_.addr(p, b));
    EXPECT_EQ(static_cast<std::size_t>(pb - pa), b.offset - a.offset);
  }
  EXPECT_EQ(bases.size(), static_cast<std::size_t>(pg_.numPes()));
}

TEST_F(PgasTest, AllocRespectsAlignment) {
  pg_.alloc(1);
  const Gptr g = pg_.alloc(8, 64);
  EXPECT_EQ(g.offset % 64, 0u);
  const Gptr sub = g.at(4);
  EXPECT_EQ(sub.offset, g.offset + 4);
  EXPECT_EQ(sub.bytes, 4u);
}

TEST_F(PgasTest, AllocAbortsWhenSegmentExhausted) {
  EXPECT_DEATH(pg_.alloc(kSegBytes + 1), "exhausted");
}

TEST_F(PgasTest, PutPastAllocationAborts) {
  const Gptr g = pg_.alloc(64);
  std::vector<std::byte> src(128, std::byte{1});
  EXPECT_DEATH(pg_.put(0, 1, g, src.data(), 128), "past the target");
}

// --- put / get -----------------------------------------------------------------

TEST_F(PgasTest, PutBlockingDeliversThePayload) {
  const Gptr g = pg_.alloc(256);
  std::vector<std::byte> src(256);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = std::byte(static_cast<unsigned char>(i * 7));
  double doneAt = -1.0;
  engine_.at(0.0, [&] {
    pg_.putBlocking(0, 2, g, src.data(), src.size(),
                    [&] { doneAt = engine_.now(); });
  });
  engine_.run();
  EXPECT_GT(doneAt, 0.0);
  EXPECT_EQ(std::memcmp(pg_.addr(2, g), src.data(), src.size()), 0);
  EXPECT_EQ(pg_.putsIssued(), 1u);
  EXPECT_EQ(pg_.bytesPut(), src.size());
}

TEST_F(PgasTest, HandleSplitsLocalAndRemoteCompletion) {
  const Gptr dst = pg_.alloc(16 * 1024);
  const Gptr src = pg_.alloc(16 * 1024);
  OpId id = kNoOp;
  double tLocal = -1.0, tRemote = -1.0;
  engine_.at(0.0, [&] {
    id = pg_.put(0, 1, dst, pg_.addr(0, src), 16 * 1024);
    EXPECT_FALSE(pg_.testLocal(id));
    EXPECT_FALSE(pg_.testRemote(id));
    pg_.waitLocal(id, [&] { tLocal = engine_.now(); });
    pg_.waitRemote(id, [&] {
      tRemote = engine_.now();
      EXPECT_TRUE(pg_.testLocal(id));
    });
  });
  engine_.run();
  // Local completion (source reusable) strictly precedes remote completion
  // (the ack round trip): DART's dart_flush_local vs dart_flush split.
  EXPECT_GT(tLocal, 0.0);
  EXPECT_GT(tRemote, tLocal);
  EXPECT_TRUE(pg_.testRemote(id));  // record reaped; unknown ids read done
}

TEST_F(PgasTest, SelfPutShortCircuits) {
  const Gptr g = pg_.alloc(64);
  std::vector<std::byte> src(64, std::byte{0x3C});
  bool done = false;
  engine_.at(0.0, [&] {
    pg_.putBlocking(1, 1, g, src.data(), src.size(), [&] { done = true; });
  });
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(std::memcmp(pg_.addr(1, g), src.data(), src.size()), 0);
}

TEST_F(PgasTest, GetFetchesRemoteDataAndCachesTheRegistration) {
  const Gptr g = pg_.alloc(512);
  auto* remote = static_cast<std::byte*>(pg_.addr(3, g));
  for (std::size_t i = 0; i < 512; ++i)
    remote[i] = std::byte(static_cast<unsigned char>(i ^ 0x55));
  std::vector<std::byte> dst(512, std::byte{0});
  bool done = false;
  engine_.at(0.0, [&] {
    pg_.get(0, 3, g, dst.data(), dst.size(), [&] { done = true; });
  });
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(std::memcmp(dst.data(), remote, 512), 0);
  EXPECT_EQ(pg_.getsIssued(), 1u);
  // The landing buffer lives outside the symmetric heap: pinned once.
  EXPECT_EQ(pg_.regCacheMisses(), 1u);
  bool again = false;
  engine_.after(1.0, [&] {
    pg_.get(0, 3, g, dst.data(), dst.size(), [&] { again = true; });
  });
  engine_.run();
  EXPECT_TRUE(again);
  EXPECT_EQ(pg_.regCacheMisses(), 1u);  // second get hits the cache
}

TEST_F(PgasTest, PutSignalNotifiesTheTargetAfterDataLands) {
  const Gptr g = pg_.alloc(64);
  std::vector<std::byte> src(64, std::byte{0x5A});
  double notifyAt = -1.0;
  bool visible = false;
  engine_.at(0.0, [&] {
    pg_.putSignal(0, 1, g, src.data(), src.size(), [&] {
      notifyAt = engine_.now();
      visible = std::memcmp(pg_.addr(1, g), src.data(), src.size()) == 0;
    });
  });
  engine_.run();
  EXPECT_GT(notifyAt, 0.0);
  EXPECT_TRUE(visible);
}

// --- remote atomics ------------------------------------------------------------

TEST_F(PgasTest, FetchAddSerializesConcurrentUpdaters) {
  const Gptr cell = pg_.alloc(8);
  const std::int64_t deltas[] = {0, 1, 10, 100};
  std::vector<std::int64_t> olds;
  for (int p = 1; p < 4; ++p)
    engine_.at(0.0, [&, p] {
      pg_.fetchAdd(p, 0, cell, deltas[p],
                   [&](std::int64_t old) { olds.push_back(old); });
    });
  engine_.run();
  const auto* cellAddr = static_cast<const std::int64_t*>(pg_.addr(0, cell));
  EXPECT_EQ(*cellAddr, 111);
  ASSERT_EQ(olds.size(), 3u);
  // The RMWs executed one at a time at the target: every updater saw a
  // distinct partial sum, and one of them saw the initial zero.
  std::set<std::int64_t> distinct(olds.begin(), olds.end());
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct.count(0), 1u);
  EXPECT_EQ(pg_.atomicsIssued(), 3u);
}

TEST_F(PgasTest, CompareSwapAppliesOnlyOnMatch) {
  const Gptr cell = pg_.alloc(8);
  *static_cast<std::int64_t*>(pg_.addr(0, cell)) = 5;
  std::int64_t old1 = -1, old2 = -1;
  engine_.at(0.0, [&] {
    pg_.compareSwap(1, 0, cell, 5, 9, [&](std::int64_t old) {
      old1 = old;
      // Second CAS still expects 5; the cell moved on, so it must fail.
      pg_.compareSwap(1, 0, cell, 5, 7,
                      [&](std::int64_t o) { old2 = o; });
    });
  });
  engine_.run();
  EXPECT_EQ(old1, 5);
  EXPECT_EQ(old2, 9);
  EXPECT_EQ(*static_cast<const std::int64_t*>(pg_.addr(0, cell)), 9);
}

// --- fence / flush / barrier ---------------------------------------------------

TEST_F(PgasTest, FlushWaitsForEveryOpToTheTarget) {
  const Gptr g = pg_.alloc(3 * 1024);
  const Gptr src = pg_.alloc(3 * 1024);
  std::vector<OpId> ids;
  double flushedAt = -1.0;
  engine_.at(0.0, [&] {
    for (int k = 0; k < 3; ++k)
      ids.push_back(pg_.put(0, 1, g.at(1024 * static_cast<std::size_t>(k)),
                            pg_.addr(0, src), 1024));
    pg_.flush(0, 1, [&] {
      flushedAt = engine_.now();
      for (const OpId id : ids) EXPECT_TRUE(pg_.testRemote(id));
    });
  });
  engine_.run();
  EXPECT_GT(flushedAt, 0.0);
}

TEST_F(PgasTest, FlushIsPerTarget) {
  const Gptr g = pg_.alloc(16 * 1024);
  const Gptr src = pg_.alloc(16 * 1024);
  double idleAt = -1.0, busyAt = -1.0;
  engine_.at(0.0, [&] {
    pg_.put(0, 1, g, pg_.addr(0, src), 16 * 1024);
    // Nothing outstanding toward PE 2: that flush must not wait for PE 1.
    pg_.flush(0, 2, [&] { idleAt = engine_.now(); });
    pg_.flush(0, 1, [&] { busyAt = engine_.now(); });
  });
  engine_.run();
  EXPECT_GE(idleAt, 0.0);
  EXPECT_GT(busyAt, idleAt);
}

TEST_F(PgasTest, FlushLocalCompletesBeforeFlush) {
  const Gptr g = pg_.alloc(32 * 1024);
  const Gptr src = pg_.alloc(32 * 1024);
  double localAt = -1.0, remoteAt = -1.0;
  engine_.at(0.0, [&] {
    pg_.put(0, 1, g, pg_.addr(0, src), 32 * 1024);
    pg_.flushLocal(0, [&] { localAt = engine_.now(); });
    pg_.flush(0, 1, [&] { remoteAt = engine_.now(); });
  });
  engine_.run();
  EXPECT_GT(localAt, 0.0);
  EXPECT_GT(remoteAt, localAt);
}

TEST_F(PgasTest, FenceCoversEveryTarget) {
  const Gptr g = pg_.alloc(1024);
  const Gptr src = pg_.alloc(1024);
  OpId to1 = kNoOp, to2 = kNoOp;
  double fencedAt = -1.0;
  engine_.at(0.0, [&] {
    to1 = pg_.put(0, 1, g, pg_.addr(0, src), 1024);
    to2 = pg_.put(0, 2, g, pg_.addr(0, src), 1024);
    pg_.fence(0, [&] {
      fencedAt = engine_.now();
      EXPECT_TRUE(pg_.testRemote(to1));
      EXPECT_TRUE(pg_.testRemote(to2));
    });
  });
  engine_.run();
  EXPECT_GT(fencedAt, 0.0);
}

TEST_F(PgasTest, BarrierReleasesEveryPeOncePerRound) {
  int released = 0;
  for (int p = 0; p < 4; ++p)
    engine_.at(0.0, [&, p] { pg_.barrier(p, [&] { ++released; }); });
  engine_.run();
  EXPECT_EQ(released, 4);
  EXPECT_EQ(pg_.barriersCompleted(), 1u);
  for (int p = 0; p < 4; ++p)
    engine_.after(1.0, [&, p] { pg_.barrier(p, [&] { ++released; }); });
  engine_.run();
  EXPECT_EQ(released, 8);
  EXPECT_EQ(pg_.barriersCompleted(), 2u);
}

TEST_F(PgasTest, DoubleBarrierEntryAborts) {
  pg_.barrier(0, [] {});
  EXPECT_DEATH(pg_.barrier(0, [] {}), "already pending");
}

// --- fault tolerance -----------------------------------------------------------

TEST_F(PgasTest, ReestablishRedrivesInflightPutAndRebindsTheSegment) {
  const Gptr g = pg_.alloc(16 * 1024);
  const Gptr src = pg_.alloc(16 * 1024);
  auto* srcAddr = static_cast<std::byte*>(pg_.addr(0, src));
  for (std::size_t i = 0; i < 16 * 1024; ++i)
    srcAddr[i] = std::byte(static_cast<unsigned char>(i * 13));
  OpId id = kNoOp;
  bool waiterFired = false;
  engine_.at(0.0, [&] {
    id = pg_.put(0, 1, g, srcAddr, 16 * 1024);
    pg_.waitRemote(id, [&] { waiterFired = true; });
  });
  // t=2.0: past the origin-side software (1 us), before the wire delivers —
  // PE 1 suffers a transient disruption while the put is in flight.
  engine_.at(2.0, [&] {
    EXPECT_FALSE(pg_.testRemote(id));
    verbs_.invalidatePe(1);
    verbs_.flushPe(1);
    pg_.reestablish();  // the serial restore phase
    // Not failed outright anymore: the op is queued for a backed-off
    // re-drive through the repaired registration.
    EXPECT_FALSE(pg_.testRemote(id));
    EXPECT_EQ(pg_.failedOps(), 0u);
    EXPECT_EQ(pg_.opsRedriven(), 1u);
  });
  engine_.run();
  EXPECT_TRUE(waiterFired);
  EXPECT_EQ(pg_.failedOps(), 0u);  // the re-drive completed the op
  EXPECT_EQ(std::memcmp(pg_.addr(1, g), srcAddr, 16 * 1024), 0);
  // The rebuilt registration carries fresh traffic to the restored PE.
  std::vector<std::byte> fresh(64, std::byte{0x77});
  bool again = false;
  engine_.after(1.0, [&] {
    pg_.putBlocking(0, 1, g, fresh.data(), fresh.size(), [&] { again = true; });
  });
  engine_.run();
  EXPECT_TRUE(again);
  EXPECT_EQ(std::memcmp(pg_.addr(1, g), fresh.data(), fresh.size()), 0);
}

TEST_F(PgasTest, FenceAfterTransientDisruptionCompletesWithoutFailures) {
  // The satellite contract: a fence posted across a transient disruption
  // (registrations invalidated, wire flushed, reestablish() run) must
  // complete with zero failed ops — every in-flight put re-driven, not
  // dropped.
  const Gptr g = pg_.alloc(8 * 1024);
  const Gptr src = pg_.alloc(8 * 1024);
  auto* srcAddr = static_cast<std::byte*>(pg_.addr(0, src));
  for (std::size_t i = 0; i < 8 * 1024; ++i)
    srcAddr[i] = std::byte(static_cast<unsigned char>(i ^ 0xA5));
  double fencedAt = -1.0;
  engine_.at(0.0, [&] {
    pg_.put(0, 1, g, srcAddr, 8 * 1024);
    pg_.put(0, 2, g, srcAddr, 8 * 1024);
    pg_.fence(0, [&] { fencedAt = engine_.now(); });
  });
  engine_.at(2.0, [&] {
    EXPECT_LT(fencedAt, 0.0);  // both puts still in flight
    verbs_.invalidatePe(1);
    verbs_.invalidatePe(2);
    verbs_.flushPe(1);
    verbs_.flushPe(2);
    pg_.reestablish();
  });
  engine_.run();
  EXPECT_GT(fencedAt, 2.0);
  EXPECT_EQ(pg_.failedOps(), 0u);
  EXPECT_EQ(pg_.opsRedriven(), 2u);
  EXPECT_EQ(std::memcmp(pg_.addr(1, g), srcAddr, 8 * 1024), 0);
  EXPECT_EQ(std::memcmp(pg_.addr(2, g), srcAddr, 8 * 1024), 0);
}

TEST_F(PgasTest, ReestablishFailsAtomicsAndOpsOutOfRedriveBudget) {
  // Atomics never re-drive: the RMW may already have executed at the
  // target with only the reply lost, and re-applying would double-count.
  const Gptr cell = pg_.alloc(8);
  bool atomicWaiter = false;
  engine_.at(0.0, [&] {
    const OpId id = pg_.fetchAdd(0, 1, cell, 5);
    pg_.waitRemote(id, [&] { atomicWaiter = true; });
  });
  engine_.at(1.0, [&] {
    verbs_.invalidatePe(1);
    verbs_.flushPe(1);
    pg_.reestablish();
    EXPECT_EQ(pg_.failedOps(), 1u);  // failed outright, no re-drive
    EXPECT_EQ(pg_.opsRedriven(), 0u);
  });
  engine_.run();
  EXPECT_TRUE(atomicWaiter);  // waiters still fire on the failure path

  // A put whose re-drive budget (2) is exhausted by repeated disruptions
  // fails too — the backoff is bounded, not an infinite retry loop.
  const Gptr g = pg_.alloc(4 * 1024);
  const Gptr src = pg_.alloc(4 * 1024);
  bool putWaiter = false;
  engine_.after(1.0, [&] {
    const OpId id = pg_.put(0, 1, g, pg_.addr(0, src), 4 * 1024);
    pg_.waitRemote(id, [&] { putWaiter = true; });
    // Three disruptions faster than the 5/10 us backoffs can complete the
    // re-drives: attempts 1 and 2 re-drive, the third fails the op.
    for (int k = 1; k <= 3; ++k)
      engine_.after(static_cast<double>(k) + 1.5, [&] {
        verbs_.invalidatePe(1);
        verbs_.flushPe(1);
        pg_.reestablish();
      });
  });
  engine_.run();
  EXPECT_TRUE(putWaiter);
  EXPECT_EQ(pg_.failedOps(), 2u);
  EXPECT_EQ(pg_.opsRedriven(), 2u);
}

// --- causal trace --------------------------------------------------------------

TEST_F(PgasTest, OpsCarryCompleteCausalChainsWithExactSplit) {
  engine_.trace().enable();
  const Gptr g = pg_.alloc(4096);
  const Gptr src = pg_.alloc(4096);
  const Gptr cell = pg_.alloc(8);
  std::vector<std::byte> dst(64, std::byte{0});
  engine_.at(0.0, [&] {
    pg_.put(0, 1, g, pg_.addr(0, src), 4096);
    pg_.get(2, 1, g, dst.data(), dst.size());
    pg_.fetchAdd(3, 0, cell, 4);
  });
  engine_.run();
  const sim::CausalGraph graph(engine_.trace().snapshot());
  for (const sim::TraceTag kind :
       {sim::TraceTag::kPgasPut, sim::TraceTag::kPgasGet,
        sim::TraceTag::kPgasAtomic}) {
    const sim::LatencySummary s = graph.latencyByKind(kind);
    EXPECT_EQ(s.count, 1u) << sim::traceTagName(kind);
    EXPECT_GT(s.mean.total_us, 0.0);
    // The four segments partition the chain exactly.
    EXPECT_NEAR(s.mean.total_us,
                s.mean.queue_us + s.mean.wire_us + s.mean.poll_us +
                    s.mean.handler_us,
                1e-9)
        << sim::traceTagName(kind);
  }
}

}  // namespace
}  // namespace ckd::pgas
