// Correctness tests for the §4.1 stencil: both communication modes must
// reproduce the serial reference bit-for-bit, on both machine layers, for
// a variety of decompositions; plus timing-property checks (CkDirect
// strictly faster, improvement grows with chare count).

#include <gtest/gtest.h>

#include "apps/stencil/stencil.hpp"
#include "harness/machines.hpp"

namespace ckd::apps::stencil {
namespace {

Config smallConfig(Mode mode) {
  Config cfg;
  cfg.gx = 16;
  cfg.gy = 12;
  cfg.gz = 8;
  cfg.cx = 2;
  cfg.cy = 2;
  cfg.cz = 2;
  cfg.iterations = 7;
  cfg.mode = mode;
  cfg.real_compute = true;
  return cfg;
}

void expectMatchesReference(const Config& cfg,
                            const charm::MachineConfig& machine) {
  charm::Runtime rts(machine);
  StencilApp app(rts, cfg);
  app.execute();
  const auto parallel = app.gatherField();
  const auto reference = serialReference(cfg);
  ASSERT_EQ(parallel.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_DOUBLE_EQ(parallel[i], reference[i]) << "element " << i;
}

TEST(Stencil, MsgMatchesReferenceOnIb) {
  expectMatchesReference(smallConfig(Mode::kMessages),
                         harness::abeMachine(4, 2));
}

TEST(Stencil, CkdMatchesReferenceOnIb) {
  expectMatchesReference(smallConfig(Mode::kCkDirect),
                         harness::abeMachine(4, 2));
}

TEST(Stencil, MsgMatchesReferenceOnBgp) {
  expectMatchesReference(smallConfig(Mode::kMessages),
                         harness::surveyorMachine(8, 4));
}

TEST(Stencil, CkdMatchesReferenceOnBgp) {
  expectMatchesReference(smallConfig(Mode::kCkDirect),
                         harness::surveyorMachine(8, 4));
}

TEST(Stencil, SingleChareDegenerateCase) {
  Config cfg = smallConfig(Mode::kCkDirect);
  cfg.cx = cfg.cy = cfg.cz = 1;
  expectMatchesReference(cfg, harness::abeMachine(2, 1));
}

TEST(Stencil, SkewedDecomposition) {
  Config cfg = smallConfig(Mode::kCkDirect);
  cfg.cx = 4;
  cfg.cy = 1;
  cfg.cz = 2;
  expectMatchesReference(cfg, harness::abeMachine(4, 2));
}

TEST(Stencil, VirtualizationManyCharesPerPe) {
  Config cfg = smallConfig(Mode::kMessages);
  cfg.cx = 4;
  cfg.cy = 2;
  cfg.cz = 2;  // 16 chares on 2 PEs
  expectMatchesReference(cfg, harness::abeMachine(2, 1));
}

TEST(Stencil, OneIteration) {
  Config cfg = smallConfig(Mode::kCkDirect);
  cfg.iterations = 1;
  expectMatchesReference(cfg, harness::abeMachine(4, 2));
}

TEST(Stencil, ChareGridChooser) {
  int cx = 0, cy = 0, cz = 0;
  chooseChareGrid(1024, 1024, 512, 2048, cx, cy, cz);
  EXPECT_EQ(cx * cy * cz, 2048);
  EXPECT_EQ(1024 % cx, 0);
  EXPECT_EQ(1024 % cy, 0);
  EXPECT_EQ(512 % cz, 0);
  // Near-cubic blocks: no dimension more than 2x finer than another.
  const double bx = 1024.0 / cx, by = 1024.0 / cy, bz = 512.0 / cz;
  EXPECT_LE(std::max({bx, by, bz}) / std::min({bx, by, bz}), 2.01);
}

TEST(Stencil, ModesSendSameTotalPayload) {
  // The two modes move identical ghost data; only protocol differs.
  Config msg = smallConfig(Mode::kMessages);
  Config ckd = smallConfig(Mode::kCkDirect);
  charm::Runtime rtsMsg(harness::abeMachine(4, 2));
  charm::Runtime rtsCkd(harness::abeMachine(4, 2));
  StencilApp appMsg(rtsMsg, msg);
  StencilApp appCkd(rtsCkd, ckd);
  appMsg.execute();
  appCkd.execute();
  EXPECT_EQ(appMsg.gatherField(), appCkd.gatherField());
}

// --- timing properties (model-level, bench-mode) ------------------------------

Result runBench(const charm::MachineConfig& machine, Mode mode, int chares,
                int pes) {
  (void)pes;
  Config cfg;
  cfg.gx = 256;
  cfg.gy = 256;
  cfg.gz = 128;
  chooseChareGrid(cfg.gx, cfg.gy, cfg.gz, chares, cfg.cx, cfg.cy, cfg.cz);
  cfg.iterations = 4;
  cfg.mode = mode;
  cfg.real_compute = false;
  cfg.compute_per_element_us = 1.0e-3;
  charm::Runtime rts(machine);
  StencilApp app(rts, cfg);
  return app.execute();
}

TEST(StencilTiming, CkDirectFasterThanMessages) {
  const auto machine = harness::t3Machine(16, 4);
  const auto msg = runBench(machine, Mode::kMessages, 128, 16);
  const auto ckd = runBench(machine, Mode::kCkDirect, 128, 16);
  EXPECT_LT(ckd.avg_iteration_us, msg.avg_iteration_us);
}

TEST(StencilTiming, CkDirectFasterOnBgpToo) {
  // Fine granularity (small faces): per-message overheads dominate, which
  // is the regime where the paper's BG/P gains live.
  const auto machine = harness::surveyorMachine(16, 4);
  Config cfg;
  cfg.gx = 128;
  cfg.gy = 128;
  cfg.gz = 64;
  chooseChareGrid(cfg.gx, cfg.gy, cfg.gz, 128, cfg.cx, cfg.cy, cfg.cz);
  cfg.iterations = 4;
  cfg.real_compute = false;
  cfg.compute_per_element_us = 3.5e-3;
  cfg.mode = Mode::kMessages;
  double msg, ckd;
  {
    charm::Runtime rts(machine);
    msg = StencilApp(rts, cfg).execute().avg_iteration_us;
  }
  cfg.mode = Mode::kCkDirect;
  {
    charm::Runtime rts(machine);
    ckd = StencilApp(rts, cfg).execute().avg_iteration_us;
  }
  EXPECT_LT(ckd, msg);
}

TEST(StencilTiming, ImprovementGrowsWithProcessorCount) {
  // Strong scaling: more PEs -> finer granularity -> bigger CkDirect win
  // (the Fig 2 trend).
  double improvementSmall, improvementLarge;
  {
    const auto machine = harness::t3Machine(8, 4);
    const auto msg = runBench(machine, Mode::kMessages, 64, 8);
    const auto ckd = runBench(machine, Mode::kCkDirect, 64, 8);
    improvementSmall = 1.0 - ckd.avg_iteration_us / msg.avg_iteration_us;
  }
  {
    const auto machine = harness::t3Machine(32, 4);
    const auto msg = runBench(machine, Mode::kMessages, 256, 32);
    const auto ckd = runBench(machine, Mode::kCkDirect, 256, 32);
    improvementLarge = 1.0 - ckd.avg_iteration_us / msg.avg_iteration_us;
  }
  EXPECT_GT(improvementSmall, 0.0);
  EXPECT_GT(improvementLarge, improvementSmall);
}

}  // namespace
}  // namespace ckd::apps::stencil
