// Tests for the mini-MPI layer: matching semantics (tags, wildcards, FIFO,
// unexpected messages), eager vs rendezvous, and PSCW one-sided windows.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "fault/fault.hpp"
#include "mpi/mini_mpi.hpp"
#include "net/cost_params.hpp"
#include "sim/engine.hpp"
#include "topo/fat_tree.hpp"

namespace ckd::mpi {
namespace {

class MpiTest : public ::testing::Test {
 protected:
  MpiTest()
      : topo_(std::make_shared<topo::FatTree>(4, 1)),
        fabric_(engine_, topo_, net::abeParams()),
        mpi_(fabric_, mvapichCosts()) {}

  sim::Engine engine_;
  topo::TopologyPtr topo_;
  net::Fabric fabric_;
  MiniMpi mpi_;
};

TEST_F(MpiTest, BasicSendRecv) {
  std::vector<double> send{1.0, 2.0, 3.0};
  std::vector<double> recv(3, 0.0);
  MiniMpi::RecvResult result;
  mpi_.irecv(1, 0, 7, recv.data(), recv.size() * 8,
             [&](const MiniMpi::RecvResult& r) { result = r; });
  mpi_.isend(0, 1, 7, send.data(), send.size() * 8);
  engine_.run();
  EXPECT_EQ(result.source, 0);
  EXPECT_EQ(result.tag, 7);
  EXPECT_EQ(result.bytes, 24u);
  EXPECT_EQ(recv, send);
}

TEST_F(MpiTest, UnexpectedMessageMatchedLater) {
  std::vector<int> payload{42};
  mpi_.isend(0, 1, 3, payload.data(), sizeof(int));
  engine_.run();
  EXPECT_EQ(mpi_.unexpectedCount(1), 1u);
  int got = 0;
  bool done = false;
  mpi_.irecv(1, 0, 3, &got, sizeof(int),
             [&](const MiniMpi::RecvResult&) { done = true; });
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(mpi_.unexpectedCount(1), 0u);
}

TEST_F(MpiTest, TagsMustMatch) {
  int a = 0, b = 0;
  bool gotA = false, gotB = false;
  mpi_.irecv(1, 0, 5, &a, sizeof(int),
             [&](const MiniMpi::RecvResult&) { gotA = true; });
  mpi_.irecv(1, 0, 6, &b, sizeof(int),
             [&](const MiniMpi::RecvResult&) { gotB = true; });
  const int v6 = 66;
  mpi_.isend(0, 1, 6, &v6, sizeof(int));
  engine_.run();
  EXPECT_FALSE(gotA);
  EXPECT_TRUE(gotB);
  EXPECT_EQ(b, 66);
}

TEST_F(MpiTest, WildcardsMatchAnything) {
  int got = 0;
  MiniMpi::RecvResult result;
  mpi_.irecv(2, MiniMpi::kAnySource, MiniMpi::kAnyTag, &got, sizeof(int),
             [&](const MiniMpi::RecvResult& r) { result = r; });
  const int v = 9;
  mpi_.isend(3, 2, 17, &v, sizeof(int));
  engine_.run();
  EXPECT_EQ(got, 9);
  EXPECT_EQ(result.source, 3);
  EXPECT_EQ(result.tag, 17);
}

TEST_F(MpiTest, FifoMatchingOrder) {
  // Two sends with the same tag: the first posted recv gets the first sent.
  int first = 0, second = 0;
  const int v1 = 1, v2 = 2;
  mpi_.irecv(1, 0, 0, &first, sizeof(int), {});
  mpi_.irecv(1, 0, 0, &second, sizeof(int), {});
  mpi_.isend(0, 1, 0, &v1, sizeof(int));
  mpi_.isend(0, 1, 0, &v2, sizeof(int));
  engine_.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST_F(MpiTest, RendezvousLargeMessage) {
  // 64 KB > MVAPICH's 16 KB threshold: rendezvous path.
  std::vector<std::byte> send(64 * 1024, std::byte{7});
  std::vector<std::byte> recv(64 * 1024, std::byte{0});
  bool done = false;
  mpi_.irecv(1, 0, 1, recv.data(), recv.size(),
             [&](const MiniMpi::RecvResult& r) {
               done = true;
               EXPECT_EQ(r.bytes, send.size());
             });
  mpi_.isend(0, 1, 1, send.data(), send.size());
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(recv, send);
}

TEST_F(MpiTest, RendezvousBeforeRecvPosted) {
  std::vector<std::byte> send(64 * 1024, std::byte{9});
  mpi_.isend(0, 1, 2, send.data(), send.size());
  engine_.run();  // RTS parked, no data moved yet
  std::vector<std::byte> recv(64 * 1024, std::byte{0});
  bool done = false;
  mpi_.irecv(1, 0, 2, recv.data(), recv.size(),
             [&](const MiniMpi::RecvResult&) { done = true; });
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(recv, send);
}

TEST_F(MpiTest, SendCompletionFires) {
  std::vector<std::byte> send(128, std::byte{1});
  std::vector<std::byte> recv(128);
  bool sent = false;
  mpi_.irecv(1, 0, 0, recv.data(), recv.size(), {});
  mpi_.isend(0, 1, 0, send.data(), send.size(), [&] { sent = true; });
  engine_.run();
  EXPECT_TRUE(sent);
}

// --- one-sided -----------------------------------------------------------------

TEST_F(MpiTest, PutPscwFullEpoch) {
  std::vector<double> winBuf(16, 0.0);
  std::vector<double> src(4, 3.5);
  const auto win = mpi_.createWindow(1, winBuf.data(), winBuf.size() * 8);
  bool waited = false, started = false;
  engine_.at(0.0, [&] {
    mpi_.winPost(win, {0});
    mpi_.winWait(win, [&] { waited = true; });
    mpi_.winStart(win, 0, [&] {
      started = true;
      mpi_.put(win, 0, 8 * 4, src.data(), src.size() * 8);  // offset 4 dbls
      mpi_.winComplete(win, 0);
    });
  });
  engine_.run();
  EXPECT_TRUE(started);
  EXPECT_TRUE(waited);
  EXPECT_DOUBLE_EQ(winBuf[3], 0.0);
  EXPECT_DOUBLE_EQ(winBuf[4], 3.5);
  EXPECT_DOUBLE_EQ(winBuf[7], 3.5);
  EXPECT_DOUBLE_EQ(winBuf[8], 0.0);
}

TEST_F(MpiTest, WaitBlocksUntilAllPutsLand) {
  std::vector<std::byte> winBuf(256 * 1024, std::byte{0});
  std::vector<std::byte> big(128 * 1024, std::byte{4});  // rendezvous-sized
  const auto win = mpi_.createWindow(1, winBuf.data(), winBuf.size());
  double waitedAt = -1;
  engine_.at(0.0, [&] {
    mpi_.winPost(win, {0});
    mpi_.winWait(win, [&] {
      waitedAt = engine_.now();
      // Every byte must already be in place when wait completes.
      EXPECT_EQ(winBuf[128 * 1024 - 1], std::byte{4});
    });
    mpi_.winStart(win, 0, [&] {
      mpi_.put(win, 0, 0, big.data(), big.size());
      mpi_.winComplete(win, 0);
    });
  });
  engine_.run();
  EXPECT_GT(waitedAt, 0.0);
}

TEST_F(MpiTest, PutOutsideEpochAborts) {
  std::vector<double> winBuf(8, 0.0);
  const auto win = mpi_.createWindow(1, winBuf.data(), 64);
  double v = 1.0;
  EXPECT_DEATH(mpi_.put(win, 0, 0, &v, 8), "PSCW");
}

TEST_F(MpiTest, PutPastWindowEndAborts) {
  std::vector<double> winBuf(8, 0.0);
  const auto win = mpi_.createWindow(1, winBuf.data(), 64);
  std::vector<double> src(8, 0.0);
  engine_.at(0.0, [&] {
    mpi_.winPost(win, {0});
    mpi_.winStart(win, 0, [&] {
      EXPECT_DEATH(mpi_.put(win, 0, 8, src.data(), 64), "past the end");
    });
  });
  engine_.run();
}

TEST_F(MpiTest, MultipleOriginsOneExposure) {
  std::vector<double> winBuf(2, 0.0);
  const auto win = mpi_.createWindow(0, winBuf.data(), 16);
  bool waited = false;
  double v1 = 1.0, v2 = 2.0;
  engine_.at(0.0, [&] {
    mpi_.winPost(win, {1, 2});
    mpi_.winWait(win, [&] { waited = true; });
    mpi_.winStart(win, 1, [&] {
      mpi_.put(win, 1, 0, &v1, 8);
      mpi_.winComplete(win, 1);
    });
    mpi_.winStart(win, 2, [&] {
      mpi_.put(win, 2, 8, &v2, 8);
      mpi_.winComplete(win, 2);
    });
  });
  engine_.run();
  EXPECT_TRUE(waited);
  EXPECT_DOUBLE_EQ(winBuf[0], 1.0);
  EXPECT_DOUBLE_EQ(winBuf[1], 2.0);
}

TEST_F(MpiTest, WinCompleteWithoutStartAborts) {
  std::vector<double> winBuf(8, 0.0);
  const auto win = mpi_.createWindow(1, winBuf.data(), 64);
  EXPECT_DEATH(mpi_.winComplete(win, 0), "without a started epoch");
}

// --- RDMA channel (the Liu et al. persistent-association design) ---------------

TEST_F(MpiTest, RdmaEagerSmallMessage) {
  mpi_.enableRdmaChannel();
  std::vector<int> send{7, 8, 9};
  std::vector<int> recv(3, 0);
  bool done = false;
  mpi_.irecv(1, 0, 4, recv.data(), recv.size() * sizeof(int),
             [&](const MiniMpi::RecvResult& r) {
               done = true;
               EXPECT_EQ(r.bytes, 12u);
             });
  mpi_.isend(0, 1, 4, send.data(), send.size() * sizeof(int));
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(recv, send);
  EXPECT_EQ(mpi_.rdmaEagerSends(), 1u);
  EXPECT_EQ(mpi_.rdmaRndvSends(), 0u);
  // One slot consumed; the freed slot is owed but under the return
  // threshold, so no explicit credit message flew.
  EXPECT_EQ(mpi_.sendCredits(0, 1), mvapichCosts().rdma_credits - 1);
  EXPECT_EQ(mpi_.creditReturnMessages(), 0u);
}

TEST_F(MpiTest, RdmaCrossoverAtSlotSize) {
  mpi_.enableRdmaChannel();
  const std::size_t slot = mvapichCosts().rdma_slot_bytes;
  std::vector<std::byte> sEager(slot, std::byte{3}), rEager(slot);
  std::vector<std::byte> sRndv(2 * slot, std::byte{5}), rRndv(2 * slot);
  int done = 0;
  mpi_.irecv(1, 0, 0, rEager.data(), rEager.size(),
             [&](const MiniMpi::RecvResult&) { ++done; });
  mpi_.irecv(1, 0, 1, rRndv.data(), rRndv.size(),
             [&](const MiniMpi::RecvResult&) { ++done; });
  mpi_.isend(0, 1, 0, sEager.data(), sEager.size());  // == slot: eager
  mpi_.isend(0, 1, 1, sRndv.data(), sRndv.size());    // > slot: rendezvous
  engine_.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(rEager, sEager);
  EXPECT_EQ(rRndv, sRndv);
  EXPECT_EQ(mpi_.rdmaEagerSends(), 1u);
  EXPECT_EQ(mpi_.rdmaRndvSends(), 1u);
}

TEST_F(MpiTest, CreditExhaustionStallsThenDrains) {
  mpi_.enableRdmaChannel();
  const int credits = mvapichCosts().rdma_credits;
  const int total = credits + 4;
  std::vector<int> send(static_cast<std::size_t>(total));
  std::vector<int> recv(static_cast<std::size_t>(total), -1);
  for (int i = 0; i < total; ++i) send[static_cast<std::size_t>(i)] = 100 + i;
  for (int i = 0; i < total; ++i)
    mpi_.isend(0, 1, 9, &send[static_cast<std::size_t>(i)], sizeof(int));
  engine_.run();  // no recvs posted: the ring fills, the tail stalls
  EXPECT_EQ(mpi_.creditStalls(), 4u);
  EXPECT_EQ(mpi_.sendCredits(0, 1), 0);
  EXPECT_EQ(mpi_.unexpectedCount(1), static_cast<std::size_t>(credits));
  int got = 0;
  for (int i = 0; i < total; ++i)
    mpi_.irecv(1, 0, 9, &recv[static_cast<std::size_t>(i)], sizeof(int),
               [&](const MiniMpi::RecvResult&) { ++got; });
  engine_.run();  // copy-out frees slots -> credits return -> stalled drain
  EXPECT_EQ(got, total);
  EXPECT_EQ(recv, send);  // FIFO order survives the stall
  EXPECT_GE(mpi_.creditReturnMessages(), 1u);
  EXPECT_EQ(mpi_.unexpectedCount(1), 0u);
}

TEST_F(MpiTest, BidirectionalTrafficPiggybacksCredits) {
  mpi_.enableRdmaChannel();
  constexpr int kRounds = 4;
  int a = 1, b = 0;
  int pongs = 0;
  std::function<void(int)> round = [&](int r) {
    mpi_.irecv(1, 0, r, &b, sizeof(int), [&, r](const MiniMpi::RecvResult&) {
      mpi_.irecv(0, 1, r, &a, sizeof(int),
                 [&, r](const MiniMpi::RecvResult&) {
                   ++pongs;
                   if (r + 1 < kRounds) round(r + 1);
                 });
      mpi_.isend(1, 0, r, &b, sizeof(int));
    });
    mpi_.isend(0, 1, r, &a, sizeof(int));
  };
  round(0);
  engine_.run();
  EXPECT_EQ(pongs, kRounds);
  // Replies carried the freed-slot credits in their headers: no explicit
  // credit traffic on a balanced ping-pong.
  EXPECT_GT(mpi_.piggybackedCredits(), 0u);
  EXPECT_EQ(mpi_.creditReturnMessages(), 0u);
}

TEST(MpiRdmaChannel, RdmaEagerBeatsClassicEagerLatency) {
  const auto oneWay = [](bool rdma) {
    sim::Engine engine;
    auto topo = std::make_shared<topo::FatTree>(4, 1);
    net::Fabric fabric(engine, topo, net::abeParams());
    MiniMpi mp(fabric, mvapichCosts());
    if (rdma) mp.enableRdmaChannel();
    std::vector<std::byte> send(4096, std::byte{1}), recv(4096);
    double at = -1.0;
    mp.irecv(1, 0, 0, recv.data(), recv.size(),
             [&](const MiniMpi::RecvResult&) { at = engine.now(); });
    mp.isend(0, 1, 0, send.data(), send.size());
    engine.run();
    EXPECT_EQ(recv, send);
    return at;
  };
  const double classic = oneWay(false);
  const double viaRdma = oneWay(true);
  ASSERT_GT(classic, 0.0);
  ASSERT_GT(viaRdma, 0.0);
  // The persistent-slot design dodges the bounce-buffer copy bump the
  // classic eager path pays around 4 KB.
  EXPECT_LT(viaRdma, classic);
}

// --- RDMA channel under wire faults (reliable-link regressions) ----------------
//
// Without armReliability() an armed injector breaks the channel outright: a
// dropped slot write loses its persistent slot (and piggybacked credits)
// forever, a dropped credit return deadlocks stalled senders, and corrupted
// payloads land as-is. These tests pin the reliable-link fix: exact bytes,
// no wedges, and credit conservation after the storm.

class MpiFaultTest : public ::testing::Test {
 protected:
  MpiFaultTest()
      : topo_(std::make_shared<topo::FatTree>(4, 1)),
        fabric_(engine_, topo_, net::abeParams()),
        mpi_(fabric_, mvapichCosts()) {
    storm_ = fault::parseFaultSpec(
        "drop:0.08,corrupt:0.04,duplicate:0.04,delay:0.1;jitter=3");
    fabric_.installFaults(storm_, /*seed=*/7);
    mpi_.enableRdmaChannel();
    mpi_.armReliability(storm_.rel);
  }

  sim::Engine engine_;
  topo::TopologyPtr topo_;
  net::Fabric fabric_;
  MiniMpi mpi_;
  fault::FaultPlan storm_;
};

TEST_F(MpiFaultTest, EagerPingpongSurvivesStormByteExact) {
  constexpr int kRounds = 40;
  std::vector<std::byte> ping(1024), pong(1024), out(1024);
  int got = 0;
  std::function<void(int)> round = [&](int r) {
    for (std::size_t j = 0; j < out.size(); ++j)
      out[j] = static_cast<std::byte>((r * 131 + static_cast<int>(j)) & 0xff);
    mpi_.irecv(1, 0, r, ping.data(), ping.size(),
               [&, r](const MiniMpi::RecvResult&) {
                 EXPECT_EQ(ping, out);
                 mpi_.isend(1, 0, r, ping.data(), ping.size());
               });
    mpi_.irecv(0, 1, r, pong.data(), pong.size(),
               [&, r](const MiniMpi::RecvResult&) {
                 EXPECT_EQ(pong, out);
                 if (++got < kRounds) round(r + 1);
               });
    mpi_.isend(0, 1, r, out.data(), out.size());
  };
  round(0);
  engine_.run();
  EXPECT_EQ(got, kRounds);           // no wedge: every round completed
  EXPECT_GT(mpi_.linkRetransmits(), 0u);
  // Quiesced and fully matched: every persistent slot is accounted for.
  const int ring = mvapichCosts().rdma_credits;
  EXPECT_EQ(mpi_.sendCredits(0, 1) + mpi_.owedCredits(0, 1), ring);
  EXPECT_EQ(mpi_.sendCredits(1, 0) + mpi_.owedCredits(1, 0), ring);
}

TEST_F(MpiFaultTest, CreditBurstUnderFaultsConservesSlots) {
  // Overrun the ring with no receives posted: stalled tail, then explicit
  // credit returns while drops/corruption fire. A lost slot write or a
  // dropped credit message would wedge the drain or leak a slot.
  const int ring = mvapichCosts().rdma_credits;
  const int total = ring + 6;
  std::vector<int> send(static_cast<std::size_t>(total));
  std::vector<int> recv(static_cast<std::size_t>(total), -1);
  for (int i = 0; i < total; ++i) send[static_cast<std::size_t>(i)] = 500 + i;
  for (int i = 0; i < total; ++i)
    mpi_.isend(0, 1, 3, &send[static_cast<std::size_t>(i)], sizeof(int));
  engine_.run();
  EXPECT_GT(mpi_.creditStalls(), 0u);
  int got = 0;
  for (int i = 0; i < total; ++i)
    mpi_.irecv(1, 0, 3, &recv[static_cast<std::size_t>(i)], sizeof(int),
               [&](const MiniMpi::RecvResult&) { ++got; });
  engine_.run();
  EXPECT_EQ(got, total);
  EXPECT_EQ(recv, send);  // FIFO survives retransmission reordering pressure
  EXPECT_EQ(mpi_.sendCredits(0, 1) + mpi_.owedCredits(0, 1), ring);
}

TEST_F(MpiFaultTest, RendezvousUnderFaultsDeliversIntact) {
  // RTS/grant are control messages and the payload is a multi-slot bulk
  // write — all on the reliable link; corruption must never reach the
  // user buffer.
  const std::size_t n = 3 * mvapichCosts().rdma_slot_bytes;
  std::vector<std::byte> send(n), recv(n, std::byte{0});
  for (std::size_t j = 0; j < n; ++j)
    send[j] = static_cast<std::byte>((j * 7 + 1) & 0xff);
  bool done = false;
  mpi_.irecv(1, 0, 2, recv.data(), recv.size(),
             [&](const MiniMpi::RecvResult& r) {
               done = true;
               EXPECT_EQ(r.bytes, n);
             });
  mpi_.isend(0, 1, 2, send.data(), send.size());
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(recv, send);
  EXPECT_EQ(mpi_.rdmaRndvSends(), 1u);
}

TEST(MpiReliability, ArmedLinkIsNoopWithoutFaults) {
  // Arming the link on a clean fabric must not change delivered bytes or
  // trigger retransmissions (timers only fire for unacked frames).
  sim::Engine engine;
  auto topo = std::make_shared<topo::FatTree>(4, 1);
  net::Fabric fabric(engine, topo, net::abeParams());
  MiniMpi mp(fabric, mvapichCosts());
  mp.enableRdmaChannel();
  mp.armReliability(fault::ReliabilityParams{});
  std::vector<int> send{1, 2, 3}, recv(3, 0);
  bool done = false;
  mp.irecv(1, 0, 0, recv.data(), recv.size() * sizeof(int),
           [&](const MiniMpi::RecvResult&) { done = true; });
  mp.isend(0, 1, 0, send.data(), send.size() * sizeof(int));
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(recv, send);
  EXPECT_EQ(mp.linkRetransmits(), 0u);
}

TEST(MpiReliability, ArmingTwiceAborts) {
  sim::Engine engine;
  auto topo = std::make_shared<topo::FatTree>(4, 1);
  net::Fabric fabric(engine, topo, net::abeParams());
  MiniMpi mp(fabric, mvapichCosts());
  mp.armReliability(fault::ReliabilityParams{});
  EXPECT_DEATH(mp.armReliability(fault::ReliabilityParams{}), "armed twice");
}

TEST(MpiCosts, FlavorPresets) {
  const auto vmi = mpichVmiCosts();
  const auto mvapich = mvapichCosts();
  const auto ibm = ibmBgpCosts();
  EXPECT_GT(vmi.eager_threshold_bytes, mvapich.eager_threshold_bytes);
  EXPECT_TRUE(ibm.eagerFor(500000));  // no rendezvous on BG/P
  EXPECT_FALSE(mvapich.eagerFor(500000));
  EXPECT_TRUE(mvapich.inBump(4096));
  EXPECT_FALSE(mvapich.inBump(16 * 1024));
  EXPECT_TRUE(mvapich.putEagerFor(20 * 1024));
  EXPECT_FALSE(mvapich.eagerFor(20 * 1024));
}

}  // namespace
}  // namespace ckd::mpi
