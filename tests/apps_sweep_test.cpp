// Parameterized correctness sweeps over decompositions, machines, and
// communication modes for the two numerical applications. Every
// combination must reproduce its serial reference exactly — these sweeps
// are what makes the CkDirect placement logic (offsets inside blocks,
// strided-ish landings, per-direction handles) trustworthy.

#include <gtest/gtest.h>

#include <tuple>

#include "apps/matmul/matmul.hpp"
#include "apps/stencil/stencil.hpp"
#include "harness/machines.hpp"

namespace ckd {
namespace {

using Grid = std::tuple<int, int, int>;

charm::MachineConfig machineFor(bool bgp, int pes) {
  return bgp ? harness::surveyorMachine(pes, pes >= 4 ? 4 : 1)
             : harness::abeMachine(pes, 2);
}

// --- stencil -------------------------------------------------------------------

class StencilSweep
    : public ::testing::TestWithParam<
          std::tuple<bool, apps::stencil::Mode, Grid>> {};

TEST_P(StencilSweep, MatchesSerialReference) {
  const bool bgp = std::get<0>(GetParam());
  const auto mode = std::get<1>(GetParam());
  const auto [cx, cy, cz] = std::get<2>(GetParam());
  apps::stencil::Config cfg;
  cfg.gx = 24;
  cfg.gy = 16;
  cfg.gz = 8;
  cfg.cx = cx;
  cfg.cy = cy;
  cfg.cz = cz;
  cfg.iterations = 5;
  cfg.mode = mode;
  cfg.real_compute = true;
  charm::Runtime rts(machineFor(bgp, 4));
  apps::stencil::StencilApp app(rts, cfg);
  app.execute();
  const auto field = app.gatherField();
  const auto reference = apps::stencil::serialReference(cfg);
  ASSERT_EQ(field.size(), reference.size());
  for (std::size_t i = 0; i < field.size(); ++i)
    ASSERT_DOUBLE_EQ(field[i], reference[i]) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    GridsModesMachines, StencilSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(apps::stencil::Mode::kMessages,
                                         apps::stencil::Mode::kCkDirect),
                       ::testing::Values(Grid{1, 1, 1}, Grid{2, 1, 1},
                                         Grid{1, 2, 2}, Grid{2, 2, 2},
                                         Grid{4, 2, 1}, Grid{3, 2, 2},
                                         Grid{2, 4, 2}, Grid{6, 1, 1})));

TEST(StencilSweepExtra, LocalChannelsEverywhereStillCorrect) {
  // With local_via_messages off, even co-located neighbors use channels.
  apps::stencil::Config cfg;
  cfg.gx = 16;
  cfg.gy = 16;
  cfg.gz = 8;
  cfg.cx = 2;
  cfg.cy = 2;
  cfg.cz = 2;
  cfg.iterations = 4;
  cfg.mode = apps::stencil::Mode::kCkDirect;
  cfg.local_via_messages = false;
  cfg.real_compute = true;
  charm::Runtime rts(harness::abeMachine(2, 1));  // 4 chares per PE
  apps::stencil::StencilApp app(rts, cfg);
  app.execute();
  EXPECT_EQ(app.gatherField(), apps::stencil::serialReference(cfg));
}

// --- matmul --------------------------------------------------------------------

class MatmulSweep
    : public ::testing::TestWithParam<
          std::tuple<bool, apps::matmul::Mode, Grid>> {};

TEST_P(MatmulSweep, MatchesReferenceProduct) {
  const bool bgp = std::get<0>(GetParam());
  const auto mode = std::get<1>(GetParam());
  const auto [cx, cy, cz] = std::get<2>(GetParam());
  apps::matmul::Config cfg;
  cfg.m = 32;
  cfg.n = 16;
  cfg.k = 48;
  cfg.cx = cx;
  cfg.cy = cy;
  cfg.cz = cz;
  cfg.iterations = 2;
  cfg.mode = mode;
  cfg.real_compute = true;
  charm::Runtime rts(machineFor(bgp, 4));
  apps::matmul::MatmulApp app(rts, cfg);
  app.execute();
  const auto got = app.gatherC();
  const auto want = apps::matmul::referenceMultiply(cfg);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_NEAR(got[i], want[i], 1e-9) << "index " << i;
}

// Grid constraints: cx | m and cy*cz | per-block rows etc.; the chosen
// shapes exercise every slicing direction including degenerate axes.
INSTANTIATE_TEST_SUITE_P(
    GridsModesMachines, MatmulSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(apps::matmul::Mode::kMessages,
                                         apps::matmul::Mode::kCkDirect),
                       ::testing::Values(Grid{1, 1, 1}, Grid{2, 1, 1},
                                         Grid{1, 2, 1}, Grid{1, 1, 2},
                                         Grid{2, 2, 2}, Grid{4, 2, 2},
                                         Grid{2, 4, 1}, Grid{1, 2, 4})));

// --- cross-mode equivalence -----------------------------------------------------

TEST(CrossMode, StencilModesProduceIdenticalFieldsOnBothMachines) {
  apps::stencil::Config cfg;
  cfg.gx = 16;
  cfg.gy = 16;
  cfg.gz = 16;
  cfg.cx = cfg.cy = cfg.cz = 2;
  cfg.iterations = 6;
  cfg.real_compute = true;
  std::vector<std::vector<double>> fields;
  for (const bool bgp : {false, true}) {
    for (const auto mode :
         {apps::stencil::Mode::kMessages, apps::stencil::Mode::kCkDirect}) {
      cfg.mode = mode;
      charm::Runtime rts(machineFor(bgp, 4));
      apps::stencil::StencilApp app(rts, cfg);
      app.execute();
      fields.push_back(app.gatherField());
    }
  }
  for (std::size_t i = 1; i < fields.size(); ++i)
    EXPECT_EQ(fields[0], fields[i]) << "variant " << i;
}

}  // namespace
}  // namespace ckd
