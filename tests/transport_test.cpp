// Integration tests for the machine layers under the runtime: protocol
// selection, rendezvous bookkeeping, header-size modeling, request
// recycling, and delivery through every path (eager, rendezvous, DCMF
// short/normal, local, intra-node).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "charm/maps.hpp"
#include "charm/marshal.hpp"
#include "charm/proxy.hpp"
#include "charm/runtime.hpp"
#include "charm/transport.hpp"
#include "harness/machines.hpp"

namespace ckd::charm {
namespace {

class Echo final : public Chare {
 public:
  std::vector<double> lastPayload;
  int hits = 0;
  void take(Message& msg) {
    ++hits;
    Unpacker up(msg.payload());
    lastPayload = up.getVector<double>();
  }
};

struct Rig {
  explicit Rig(MachineConfig machine, int elems = 2)
      : rts(std::move(machine)) {
    proxy = makeArray<Echo>(rts, "echo", elems,
                            blockMap(elems, rts.numPes()),
                            [](std::int64_t) { return std::make_unique<Echo>(); });
    ep = proxy.registerEntry("take", &Echo::take);
  }
  void sendDoubles(std::int64_t dest, std::size_t count) {
    std::vector<double> values(count);
    for (std::size_t i = 0; i < count; ++i) values[i] = 0.25 * static_cast<double>(i);
    Packer pk;
    pk.putVector(values);
    rts.engine().after(0.0,
                       [this, dest, pk = std::move(pk)] { proxy[dest].send(ep, pk); });
    rts.run();
  }
  Runtime rts;
  ArrayProxy<Echo> proxy;
  EntryId ep = -1;
};

class EagerSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EagerSizes, PayloadIntactThroughIbEager) {
  Rig rig(harness::abeMachine(2, 1));
  rig.sendDoubles(1, GetParam());
  ASSERT_EQ(rig.proxy[1].local().hits, 1);
  ASSERT_EQ(rig.proxy[1].local().lastPayload.size(), GetParam());
  if (GetParam() > 0) {
    EXPECT_DOUBLE_EQ(rig.proxy[1].local().lastPayload.back(),
                     0.25 * static_cast<double>(GetParam() - 1));
  }
}

TEST_P(EagerSizes, PayloadIntactThroughDcmf) {
  Rig rig(harness::surveyorMachine(2, 1));
  rig.sendDoubles(1, GetParam());
  ASSERT_EQ(rig.proxy[1].local().hits, 1);
  ASSERT_EQ(rig.proxy[1].local().lastPayload.size(), GetParam());
}

// 0, tiny (short DCMF path), just under / over the 224 B DCMF split, and
// just under / over the IB 24 KB rendezvous threshold.
INSTANTIATE_TEST_SUITE_P(Sizes, EagerSizes,
                         ::testing::Values(0, 1, 16, 17, 26, 27, 3000, 3100,
                                           8192));

TEST(TransportCounters, RendezvousUsedAboveThreshold) {
  Rig rig(harness::abeMachine(2, 1));
  rig.sendDoubles(1, 512);  // ~4 KB: eager
  EXPECT_EQ(rig.rts.ibVerbs().rdmaWritesPosted(), 0u);
  rig.rts.engine().after(0, [] {});
  std::vector<double> big(8192, 1.0);  // 64 KB payload: rendezvous
  Packer pk;
  pk.putVector(big);
  rig.rts.engine().after(1.0, [&] { rig.proxy[1].send(rig.ep, pk); });
  rig.rts.run();
  EXPECT_EQ(rig.proxy[1].local().hits, 2);
  EXPECT_EQ(rig.rts.ibVerbs().rdmaWritesPosted(), 1u);
}

TEST(TransportCounters, RendezvousRegionsAreReleased) {
  Rig rig(harness::abeMachine(2, 1));
  for (int i = 0; i < 5; ++i) rig.sendDoubles(1, 8192);
  EXPECT_EQ(rig.proxy[1].local().hits, 5);
  EXPECT_EQ(rig.rts.ibVerbs().regionCount(0), 0u);
  EXPECT_EQ(rig.rts.ibVerbs().regionCount(1), 0u);
}

TEST(HeaderModel, SmallerHeaderShortensEagerPingRtt) {
  MachineConfig slim = harness::abeMachine(2, 1);
  slim.costs.header_bytes = 0;
  Rig fat(harness::abeMachine(2, 1));
  Rig thin(std::move(slim));
  fat.sendDoubles(1, 100);
  thin.sendDoubles(1, 100);
  EXPECT_LT(thin.rts.now(), fat.rts.now());
}

TEST(LocalPath, SamePeDeliverySkipsMachineLayer) {
  Rig rig(harness::abeMachine(2, 1), /*elems=*/4);  // elems 0,1 on PE 0
  rig.sendDoubles(1, 64);
  EXPECT_EQ(rig.proxy[1].local().hits, 1);
  EXPECT_EQ(rig.rts.fabric().messagesSubmitted(), 0u);
}

TEST(LocalPath, IntraNodeUsesSharedMemoryTiming) {
  // PEs 0 and 1 share a node: delivery must use the intra path (cheaper
  // than the wire alpha).
  Rig rig(harness::abeMachine(4, 2));
  rig.sendDoubles(1, 16);
  EXPECT_EQ(rig.proxy[1].local().hits, 1);
  const auto& p = rig.rts.fabric().params();
  // Completed well before a wire alpha could have elapsed plus scheduling.
  EXPECT_LT(rig.rts.now(), p.packet.alpha_us + 10.0);
}

TEST(BgpRequests, PoolRecyclesAcrossManyMessages) {
  Rig rig(harness::surveyorMachine(2, 1));
  rig.rts.seed([&] {
    for (int i = 0; i < 50; ++i) {
      Packer pk;
      std::vector<double> v(8, static_cast<double>(i));
      pk.putVector(v);
      rig.proxy[1].send(rig.ep, pk);
    }
  });
  rig.rts.run();
  EXPECT_EQ(rig.proxy[1].local().hits, 50);
}

TEST(Ordering, SameSizeMessagesArriveInSendOrder) {
  Rig rig(harness::abeMachine(2, 1));
  std::vector<int> order;
  class Collector final : public Chare {
   public:
    std::vector<std::int64_t> tags;
    void take(Message& msg) {
      Unpacker up(msg.payload());
      tags.push_back(up.get<std::int64_t>());
    }
  };
  Runtime& rts = rig.rts;
  auto proxy = makeArray<Collector>(rts, "col", 2, blockMap(2, 2),
                                    [](std::int64_t) { return std::make_unique<Collector>(); });
  const EntryId ep = proxy.registerEntry("take", &Collector::take);
  rts.seed([&] {
    for (std::int64_t i = 0; i < 20; ++i) {
      Packer pk;
      pk.put<std::int64_t>(i);
      proxy[1].send(ep, pk);
    }
  });
  rts.run();
  const auto& tags = proxy[1].local().tags;
  ASSERT_EQ(tags.size(), 20u);
  for (std::int64_t i = 0; i < 20; ++i)
    EXPECT_EQ(tags[static_cast<std::size_t>(i)], i);
  (void)order;
}

}  // namespace
}  // namespace ckd::charm
