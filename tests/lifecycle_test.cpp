// Elastic lifecycle edges: the supervisor's rejection paths and the
// whole-machine behaviors that soak_elastic gates at bench scale, shrunk to
// test size.
//
//  * --scale-plan parsing: the accepted grammar and every malformed-spec
//    abort.
//  * Synchronous request rejection: double drain, drain below the minimum
//    active PE count, out-of-range drain, scale-out without an elastic
//    topology, partial-node scale-out. requestDrain marks the PE Draining
//    (and requestScaleOut validates) before any event runs, so these need
//    no event loop.
//  * Drain during checkpoint cuts: with buddy checkpointing armed, the
//    drain's migration cut and the checkpoint cuts share reduction roots; a
//    post-quiescence crash then forces a rollback across the completed
//    drain. State must match the fault-free run bit-for-bit.
//  * Scale-out determinism across --shards {1, 2, 4} — the ParallelDeterminism
//    convention (parallel_test.cpp) extended to runs that grow the machine
//    mid-flight.
//
// The app is placement-invariant by construction: each worker's state
// evolves as a pure function of (element index, round), so migrating a
// worker — or never draining at all — cannot change the state digest.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "charm/checkpoint.hpp"
#include "charm/lifecycle.hpp"
#include "charm/pup.hpp"
#include "charm/runtime.hpp"
#include "fault/fault.hpp"
#include "harness/machines.hpp"
#include "sim/trace.hpp"

namespace {

using namespace ckd;

std::uint64_t fnv(const void* data, std::size_t bytes,
                  std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// --- --scale-plan grammar ----------------------------------------------------

TEST(ScalePlan, ParsesMixedRules) {
  const charm::ScalePlan plan =
      charm::parseScalePlan("scale_out@400;pes=8,drain@900.5;pe=2");
  ASSERT_EQ(plan.rules.size(), 2u);
  EXPECT_EQ(plan.rules[0].kind, charm::ScaleRule::Kind::kScaleOut);
  EXPECT_DOUBLE_EQ(plan.rules[0].at, 400.0);
  EXPECT_EQ(plan.rules[0].pes, 8);
  EXPECT_EQ(plan.rules[1].kind, charm::ScaleRule::Kind::kDrain);
  EXPECT_DOUBLE_EQ(plan.rules[1].at, 900.5);
  EXPECT_EQ(plan.rules[1].pe, 2);
}

TEST(ScalePlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(charm::parseScalePlan("").empty());
}

TEST(ScalePlanDeathTest, RejectsMalformedSpecs) {
  EXPECT_DEATH(charm::parseScalePlan(","), "empty rule");
  EXPECT_DEATH(charm::parseScalePlan("resize@5;pes=2"),
               "must start with scale_out@ or drain@");
  EXPECT_DEATH(charm::parseScalePlan("scale_out@abc;pes=2"), "bad time");
  EXPECT_DEATH(charm::parseScalePlan("scale_out@-3;pes=2"),
               "time must be >= 0");
  EXPECT_DEATH(charm::parseScalePlan("scale_out@5;pes"),
               "must be key=value");
  EXPECT_DEATH(charm::parseScalePlan("drain@5;pes=2"),
               "pes= is only valid on scale_out rules");
  EXPECT_DEATH(charm::parseScalePlan("scale_out@5;pe=1"),
               "pe= is only valid on drain rules");
  EXPECT_DEATH(charm::parseScalePlan("scale_out@5;pes=2;foo=1"),
               "unknown option");
  EXPECT_DEATH(charm::parseScalePlan("scale_out@5"),
               "needs pes=<n> with n > 0");
  EXPECT_DEATH(charm::parseScalePlan("drain@5"), "needs pe=<k>");
}

// --- synchronous supervisor rejection ---------------------------------------
//
// requestDrain transitions the PE and adjusts the active count before any
// event runs, so rejection chains are testable without rts.run(). Each death
// case rebuilds the runtime inside the EXPECT_DEATH statement (the check
// forks; the child must reach the abort on its own).

TEST(LifecycleDeathTest, DoubleDrainAborts) {
  EXPECT_DEATH(
      {
        charm::Runtime rts(harness::elasticAbeMachine(8, 2));
        rts.lifecycle()->requestDrain(3);
        rts.lifecycle()->requestDrain(3);
      },
      "not Active");
}

TEST(LifecycleDeathTest, DrainBelowMinimumActivePesAborts) {
  EXPECT_DEATH(
      {
        charm::Runtime rts(harness::elasticAbeMachine(8, 2));
        // minPes defaults to 2: draining six of eight leaves exactly the
        // minimum; the seventh request must die.
        for (int pe = 2; pe < 8; ++pe) rts.lifecycle()->requestDrain(pe);
        rts.lifecycle()->requestDrain(1);
      },
      "below the minimum active PE count");
}

TEST(LifecycleDeathTest, DrainOutOfRangeAborts) {
  EXPECT_DEATH(
      {
        charm::Runtime rts(harness::elasticAbeMachine(8, 2));
        rts.lifecycle()->requestDrain(99);
      },
      "drain PE out of range");
}

TEST(LifecycleDeathTest, ScaleOutRequiresElasticTopology) {
  // The torus machine arms the supervisor (drain/retire only); growth must
  // be rejected both programmatically and from a scripted plan.
  EXPECT_DEATH(
      {
        charm::Runtime rts(harness::elasticSurveyorMachine(8, 2));
        rts.lifecycle()->requestScaleOut(2);
      },
      "requires an ElasticTopology");
  EXPECT_DEATH(
      {
        charm::MachineConfig m = harness::surveyorMachine(8, 2);
        m.scalePlan = "scale_out@100;pes=2";
        charm::Runtime rts(m);
      },
      "require an ElasticTopology");
}

TEST(LifecycleDeathTest, ScaleOutMustAddWholeNodes) {
  EXPECT_DEATH(
      {
        charm::Runtime rts(harness::elasticAbeMachine(8, 2));
        rts.lifecycle()->requestScaleOut(3);  // pesPerNode == 2
      },
      "whole nodes");
}

TEST(Lifecycle, DrainMarksPeSynchronously) {
  charm::Runtime rts(harness::elasticAbeMachine(8, 2));
  charm::LifecycleManager* life = rts.lifecycle();
  ASSERT_NE(life, nullptr);
  EXPECT_EQ(life->activePes(), 8);
  EXPECT_EQ(life->state(5), charm::PeState::kActive);
  life->requestDrain(5);
  EXPECT_EQ(life->state(5), charm::PeState::kDraining);
  EXPECT_EQ(life->activePes(), 7);
}

// --- round-driven elastic app ------------------------------------------------

struct LifeParams {
  int workers = 24;
  int rounds = 16;
  double computeUs = 20.0;
  int scaleOutAtRound = -1;  ///< -1: never
  int scaleOutPes = 4;
  int drainAtRound = -1;  ///< -1: never
  int drainPe = 5;
};

class LifeWorker : public charm::Chare {
 public:
  std::vector<double> state;
  int round = 0;

  void pup(charm::Puper& p) override {
    p | state;
    p | round;
  }
};

/// Entry-method closure state; handles and ids are construction-time
/// constants (the soak_elastic app's pattern, minus the CkDirect channels).
struct LifeApp {
  charm::Runtime& rts;
  LifeParams par;
  int basePes = 0;
  charm::ArrayId arr = -1;
  charm::EntryId epStep = -1;
  charm::EntryId epCut = -1;

  LifeApp(charm::Runtime& r, LifeParams p) : rts(r), par(p) {}

  void step(LifeWorker& w) {
    w.charge(par.computeUs);
    // Pure function of (index, round): migration cannot perturb it.
    const std::uint64_t mix =
        fnv(&w.round, sizeof(w.round),
            fnv(w.state.data(), sizeof(double) * 4));
    const auto slot = static_cast<std::size_t>(
        (static_cast<std::size_t>(w.round) * 7u +
         static_cast<std::size_t>(w.thisIndex())) %
        w.state.size());
    w.state[slot] += static_cast<double>(mix % 4096u) * 1e-6;
    w.barrier(epCut);
  }

  void cut(LifeWorker& w) {
    if (w.thisIndex() == 0) {
      // Round-driven lifecycle triggers, guarded so a post-rollback replay
      // that re-reaches the trigger round does not double-request (grown
      // PEs survive a rollback; an interrupted drain survives as restored
      // intent).
      charm::LifecycleManager* life = rts.lifecycle();
      if (life != nullptr && w.round == par.scaleOutAtRound &&
          rts.numPes() < basePes + par.scaleOutPes)
        life->requestScaleOut(par.scaleOutPes);
      if (life != nullptr && w.round == par.drainAtRound &&
          life->state(par.drainPe) == charm::PeState::kActive)
        life->requestDrain(par.drainPe);
    }
    ++w.round;
    if (w.round < par.rounds)
      rts.sendToElement(arr, w.thisIndex(), epStep, {});
  }
};

struct LifeResult {
  std::uint64_t stateDigest = 0;
  double horizon = 0.0;
  std::uint64_t scaleOuts = 0, drains = 0, migrated = 0, aborted = 0;
  std::uint64_t checkpoints = 0, restores = 0, crashes = 0;
  int finalPes = 0, activePes = 0;
  charm::PeState drainPeState = charm::PeState::kActive;
};

LifeResult runLife(charm::MachineConfig machine, const LifeParams& par) {
  charm::Runtime rts(machine);
  rts.enableTracing();
  auto app = std::make_shared<LifeApp>(rts, par);
  app->basePes = rts.numPes();

  const int pes = rts.numPes();
  app->arr = rts.createArray<LifeWorker>(
      "life", par.workers, [pes](std::int64_t i) {
        return static_cast<int>(i) % pes;
      },
      [](std::int64_t i) {
        auto w = std::make_unique<LifeWorker>();
        w->state.assign(64, static_cast<double>(i) + 0.25);
        return w;
      });
  app->epStep = rts.registerEntryRaw(
      app->arr, "step", [app](charm::Chare& c, charm::Message&) {
        app->step(static_cast<LifeWorker&>(c));
      });
  app->epCut = rts.registerEntryRaw(
      app->arr, "cut", [app](charm::Chare& c, charm::Message&) {
        app->cut(static_cast<LifeWorker&>(c));
      });

  rts.seed([app]() {
    if (app->rts.checkpoints() != nullptr) app->rts.checkpoints()->arm();
    for (int i = 0; i < app->par.workers; ++i)
      app->rts.sendToElement(app->arr, i, app->epStep, {});
  });
  rts.run();

  LifeResult out;
  for (std::int64_t i = 0; i < par.workers; ++i) {
    const auto& w = static_cast<const LifeWorker&>(rts.element(app->arr, i));
    out.stateDigest = fnv(w.state.data(), w.state.size() * sizeof(double),
                          out.stateDigest != 0 ? out.stateDigest
                                               : 1469598103934665603ull);
    out.stateDigest = fnv(&w.round, sizeof(w.round), out.stateDigest);
  }
  out.horizon = rts.now();
  for (const sim::TraceEvent& ev : rts.traceEvents()) {
    switch (ev.tag) {
      case sim::TraceTag::kCkptTaken: ++out.checkpoints; break;
      case sim::TraceTag::kCkptRestore: ++out.restores; break;
      case sim::TraceTag::kFaultPeCrash: ++out.crashes; break;
      default: break;
    }
  }
  if (const charm::LifecycleManager* life = rts.lifecycle()) {
    out.scaleOuts = life->scaleOuts();
    out.drains = life->drainsCompleted();
    out.migrated = life->elementsMigrated();
    out.aborted = life->migrationsAborted();
    out.activePes = life->activePes();
    out.drainPeState = life->state(par.drainPe);
  }
  out.finalPes = rts.numPes();
  return out;
}

charm::MachineConfig elasticMachine(int shards) {
  // Fresh machine per run: scale-out grows the topology the config's
  // shared_ptr points at, so a reused config would start already grown.
  charm::MachineConfig m = harness::elasticAbeMachine(8, 2);
  m.shards = shards;
  m.shardThreads = 1;
  return m;
}

TEST(LifecycleApp, DrainRetiresAndPreservesState) {
  LifeParams par;
  par.drainAtRound = 6;
  const LifeResult clean = runLife(elasticMachine(1), LifeParams{});
  const LifeResult drained = runLife(elasticMachine(1), par);

  EXPECT_EQ(drained.drains, 1u);
  EXPECT_EQ(drained.drainPeState, charm::PeState::kRetired);
  EXPECT_GT(drained.migrated, 0u);
  EXPECT_EQ(drained.activePes, 7);
  EXPECT_EQ(drained.finalPes, 8);
  // Placement-invariant state: migrating the victim's workers must not
  // change what they computed.
  EXPECT_EQ(drained.stateDigest, clean.stateDigest);
}

TEST(LifecycleApp, DrainDuringCheckpointCutsSurvivesRollback) {
  // Buddy checkpointing shares reduction cuts with the drain's migration
  // cut: with a short checkpoint period, the cut that ships the drain
  // shards is itself a checkpoint cut. A crash pinned past quiescence then
  // rolls the completed drain back through restore + tail replay; the
  // replayed timeline (trigger guards!) must land on the fault-free state.
  LifeParams par;
  par.drainAtRound = 6;
  const LifeResult clean = runLife(elasticMachine(1), par);
  ASSERT_EQ(clean.drains, 1u);
  ASSERT_EQ(clean.crashes, 0u);

  charm::MachineConfig m = elasticMachine(1);
  m.faults = fault::parseFaultSpec(
      "pe_crash@" + std::to_string(4.0 * clean.horizon) + ";pe=1");
  m.faultSeed = 11;
  m.checkpointPeriod_us = clean.horizon / 8.0;
  const LifeResult soak = runLife(m, par);

  EXPECT_EQ(soak.crashes, 1u);
  EXPECT_EQ(soak.restores, 1u);
  EXPECT_GT(soak.checkpoints, 2u);
  EXPECT_EQ(soak.drains, 1u);
  EXPECT_EQ(soak.drainPeState, charm::PeState::kRetired);
  EXPECT_EQ(soak.stateDigest, clean.stateDigest);
}

TEST(LifecycleApp, ScaleOutThenDrainIsShardCountInvariant) {
  LifeParams par;
  par.scaleOutAtRound = 4;
  par.scaleOutPes = 4;
  par.drainAtRound = 10;
  const LifeResult base = runLife(elasticMachine(1), par);
  ASSERT_EQ(base.scaleOuts, 1u);
  ASSERT_EQ(base.drains, 1u);
  ASSERT_EQ(base.finalPes, 12);   // 8 + 4 grown
  ASSERT_EQ(base.activePes, 11);  // minus the retired PE

  for (const int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const LifeResult run = runLife(elasticMachine(shards), par);
    EXPECT_EQ(run.stateDigest, base.stateDigest);
    EXPECT_DOUBLE_EQ(run.horizon, base.horizon);
    EXPECT_EQ(run.scaleOuts, 1u);
    EXPECT_EQ(run.drains, 1u);
    EXPECT_EQ(run.finalPes, 12);
    EXPECT_EQ(run.activePes, 11);
  }
}

}  // namespace
