// Tests for the verbs-like InfiniBand layer: registration checks, RDMA
// write payload movement, in-order delivery, send/recv with RNR parking,
// and the deliberate out-of-order ablation mode.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "ib/verbs.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "topo/fat_tree.hpp"

namespace ckd {
namespace {

class IbTest : public ::testing::Test {
 protected:
  IbTest()
      : topo_(std::make_shared<topo::FatTree>(4, 1)),
        fabric_(engine_, topo_, net::abeParams()),
        verbs_(fabric_) {}

  sim::Engine engine_;
  topo::TopologyPtr topo_;
  net::Fabric fabric_;
  ib::IbVerbs verbs_;
};

TEST_F(IbTest, RegistrationAndCoverage) {
  std::vector<std::byte> buf(256);
  const auto region = verbs_.registerMemory(0, buf.data(), buf.size());
  EXPECT_TRUE(verbs_.regionValid(region));
  EXPECT_TRUE(verbs_.regionCovers(region, buf.data(), 256));
  EXPECT_TRUE(verbs_.regionCovers(region, buf.data() + 100, 156));
  EXPECT_FALSE(verbs_.regionCovers(region, buf.data() + 100, 157));
  EXPECT_EQ(verbs_.regionCount(0), 1u);
  verbs_.deregisterMemory(region);
  EXPECT_FALSE(verbs_.regionValid(region));
  EXPECT_EQ(verbs_.regionCount(0), 0u);
}

TEST_F(IbTest, DefaultRegionIdIsInvalid) {
  EXPECT_FALSE(verbs_.regionValid(ib::RegionId{}));
}

TEST_F(IbTest, DeregisteredSlotsAreReused) {
  std::vector<std::byte> a(64), b(64), c(64);
  const auto ra = verbs_.registerMemory(0, a.data(), a.size());
  const auto rb = verbs_.registerMemory(0, b.data(), b.size());
  EXPECT_EQ(verbs_.regionCount(0), 2u);

  verbs_.deregisterMemory(ra);
  EXPECT_EQ(verbs_.regionCount(0), 1u);
  // The freed slot is recycled for the next registration...
  const auto rc = verbs_.registerMemory(0, c.data(), c.size());
  EXPECT_EQ(verbs_.regionCount(0), 2u);
  EXPECT_TRUE(verbs_.regionValid(rc));
  EXPECT_TRUE(verbs_.regionCovers(rc, c.data(), c.size()));
  // ...but the stale id, whose generation predates the reuse, stays dead:
  // it must not alias the new region occupying the same slot.
  EXPECT_FALSE(verbs_.regionValid(ra));
  EXPECT_FALSE(verbs_.regionCovers(ra, c.data(), c.size()));
  EXPECT_TRUE(verbs_.regionValid(rb));
}

TEST_F(IbTest, ManyRegisterDeregisterCyclesKeepCountsExact) {
  std::vector<std::byte> buf(128);
  for (int i = 0; i < 100; ++i) {
    const auto r = verbs_.registerMemory(2, buf.data(), buf.size());
    EXPECT_TRUE(verbs_.regionValid(r));
    EXPECT_EQ(verbs_.regionCount(2), 1u);
    verbs_.deregisterMemory(r);
    EXPECT_FALSE(verbs_.regionValid(r));
    EXPECT_EQ(verbs_.regionCount(2), 0u);
  }
}

TEST_F(IbTest, DoubleDeregisterDies) {
  std::vector<std::byte> buf(64);
  const auto r = verbs_.registerMemory(0, buf.data(), buf.size());
  verbs_.deregisterMemory(r);
  EXPECT_DEATH(verbs_.deregisterMemory(r), "already-freed");
}

TEST_F(IbTest, QpCaching) {
  const auto qp1 = verbs_.connect(0, 1);
  const auto qp2 = verbs_.connect(0, 1);
  const auto qp3 = verbs_.connect(1, 0);  // directional: different QP
  EXPECT_EQ(qp1, qp2);
  EXPECT_NE(qp1, qp3);
  EXPECT_EQ(verbs_.qpSource(qp1), 0);
  EXPECT_EQ(verbs_.qpDestination(qp1), 1);
}

TEST_F(IbTest, RdmaWriteMovesRealBytes) {
  std::vector<std::byte> src(512), dst(512, std::byte{0});
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i * 7);
  const auto srcRegion = verbs_.registerMemory(0, src.data(), src.size());
  const auto dstRegion = verbs_.registerMemory(1, dst.data(), dst.size());

  bool localDone = false, remoteDone = false;
  ib::IbVerbs::RdmaWrite w;
  w.qp = verbs_.connect(0, 1);
  w.local_addr = src.data();
  w.local_region = srcRegion;
  w.remote_addr = dst.data();
  w.remote_region = dstRegion;
  w.bytes = src.size();
  w.on_local_complete = [&] { localDone = true; };
  w.on_remote_delivered = [&] {
    remoteDone = true;
    EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  };
  verbs_.postRdmaWrite(std::move(w));
  // Nothing moved before the simulated delivery time.
  EXPECT_EQ(dst[0], std::byte{0});
  engine_.run();
  EXPECT_TRUE(localDone);
  EXPECT_TRUE(remoteDone);
  EXPECT_EQ(verbs_.rdmaWritesPosted(), 1u);
}

TEST_F(IbTest, SenderMayOverwriteAfterPost) {
  // The model captures the payload at post time (local buffer reusable),
  // matching a completed send queue entry semantics.
  std::vector<std::byte> src(64, std::byte{5}), dst(64, std::byte{0});
  const auto srcRegion = verbs_.registerMemory(0, src.data(), src.size());
  const auto dstRegion = verbs_.registerMemory(1, dst.data(), dst.size());
  ib::IbVerbs::RdmaWrite w;
  w.qp = verbs_.connect(0, 1);
  w.local_addr = src.data();
  w.local_region = srcRegion;
  w.remote_addr = dst.data();
  w.remote_region = dstRegion;
  w.bytes = 64;
  verbs_.postRdmaWrite(std::move(w));
  std::fill(src.begin(), src.end(), std::byte{9});
  engine_.run();
  EXPECT_EQ(dst[0], std::byte{5});
}

TEST_F(IbTest, RdmaWriteValidatesRegions) {
  std::vector<std::byte> src(64), dst(64);
  const auto srcRegion = verbs_.registerMemory(0, src.data(), src.size());
  const auto dstRegion = verbs_.registerMemory(1, dst.data(), dst.size());
  ib::IbVerbs::RdmaWrite w;
  w.qp = verbs_.connect(0, 1);
  w.local_addr = src.data();
  w.local_region = srcRegion;
  w.remote_addr = dst.data();
  w.remote_region = dstRegion;
  w.bytes = 128;  // larger than either region
  EXPECT_DEATH(verbs_.postRdmaWrite(std::move(w)), "region");
}

TEST_F(IbTest, RdmaWriteRejectsWrongDestinationPe) {
  std::vector<std::byte> src(64), dst(64);
  const auto srcRegion = verbs_.registerMemory(0, src.data(), src.size());
  // Region belongs to PE 2, but the QP targets PE 1.
  const auto dstRegion = verbs_.registerMemory(2, dst.data(), dst.size());
  ib::IbVerbs::RdmaWrite w;
  w.qp = verbs_.connect(0, 1);
  w.local_addr = src.data();
  w.local_region = srcRegion;
  w.remote_addr = dst.data();
  w.remote_region = dstRegion;
  w.bytes = 64;
  EXPECT_DEATH(verbs_.postRdmaWrite(std::move(w)), "destination");
}

TEST_F(IbTest, InOrderDeliveryPerQp) {
  // Back-to-back writes to adjacent slots land in post order.
  std::vector<std::byte> src1(64, std::byte{1}), src2(64, std::byte{2});
  std::vector<std::byte> dst(128, std::byte{0});
  const auto r1 = verbs_.registerMemory(0, src1.data(), 64);
  const auto r2 = verbs_.registerMemory(0, src2.data(), 64);
  const auto rd = verbs_.registerMemory(1, dst.data(), 128);
  std::vector<int> arrivals;
  auto makeWrite = [&](const std::vector<std::byte>& src, ib::RegionId reg,
                       std::size_t off, int tag) {
    ib::IbVerbs::RdmaWrite w;
    w.qp = verbs_.connect(0, 1);
    w.local_addr = src.data();
    w.local_region = reg;
    w.remote_addr = dst.data() + off;
    w.remote_region = rd;
    w.bytes = 64;
    w.on_remote_delivered = [&arrivals, tag] { arrivals.push_back(tag); };
    verbs_.postRdmaWrite(std::move(w));
  };
  makeWrite(src1, r1, 0, 1);
  makeWrite(src2, r2, 64, 2);
  engine_.run();
  EXPECT_EQ(arrivals, (std::vector<int>{1, 2}));
}

TEST_F(IbTest, SendRecvMatchesPostedBuffer) {
  const auto qp = verbs_.connect(0, 1);
  std::vector<std::byte> payload(100, std::byte{42});
  std::vector<std::byte> recvBuf(128, std::byte{0});
  std::size_t received = 0;
  verbs_.postRecv(qp, recvBuf.data(), recvBuf.size(),
                  [&](std::size_t n) { received = n; });
  EXPECT_EQ(verbs_.postedRecvCount(qp), 1u);
  verbs_.postSend(qp, payload.data(), payload.size());
  engine_.run();
  EXPECT_EQ(received, 100u);
  EXPECT_EQ(recvBuf[99], std::byte{42});
  EXPECT_EQ(verbs_.postedRecvCount(qp), 0u);
}

TEST_F(IbTest, SendWithoutRecvParksUntilPosted) {
  const auto qp = verbs_.connect(0, 1);
  std::vector<std::byte> payload(64, std::byte{7});
  verbs_.postSend(qp, payload.data(), payload.size());
  engine_.run();  // arrives with no receive posted -> parked (RNR model)
  std::vector<std::byte> recvBuf(64, std::byte{0});
  std::size_t received = 0;
  verbs_.postRecv(qp, recvBuf.data(), recvBuf.size(),
                  [&](std::size_t n) { received = n; });
  EXPECT_EQ(received, 64u);
  EXPECT_EQ(recvBuf[0], std::byte{7});
}

TEST_F(IbTest, UnorderedChunkModeBreaksTailFirstInvariant) {
  // The ablation: with deliberate out-of-order chunking, the *tail* of the
  // buffer is populated before the head — exactly the hazard the RC
  // in-order guarantee removes for sentinel-based detection.
  verbs_.setUnorderedChunksForTest(4);
  std::vector<std::byte> src(4096);
  std::iota(reinterpret_cast<unsigned char*>(src.data()),
            reinterpret_cast<unsigned char*>(src.data()) + src.size(), 0);
  std::vector<std::byte> dst(4096, std::byte{0});
  const auto rs = verbs_.registerMemory(0, src.data(), src.size());
  const auto rd = verbs_.registerMemory(1, dst.data(), dst.size());
  bool tailSeen = false;
  bool headMissingAtTail = false;
  ib::IbVerbs::RdmaWrite w;
  w.qp = verbs_.connect(0, 1);
  w.local_addr = src.data();
  w.local_region = rs;
  w.remote_addr = dst.data();
  w.remote_region = rd;
  w.bytes = src.size();
  w.on_remote_delivered = [&] {
    tailSeen = true;
    // At the moment the last byte is in place, the head has NOT arrived.
    headMissingAtTail = (dst[0] == std::byte{0});
  };
  verbs_.postRdmaWrite(std::move(w));
  engine_.run();
  EXPECT_TRUE(tailSeen);
  EXPECT_TRUE(headMissingAtTail);
  // Eventually everything lands.
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

}  // namespace
}  // namespace ckd
