// Determinism A/B: buffer pooling must never change virtual-time results.
//
// The pool's contract (util/pool.hpp) is that recycling changes host-side
// allocation behavior only — same seeds produce byte-identical simulation
// results with pools on or off. These tests run the two workloads the PR's
// acceptance gate names — the table1-style CkDirect pingpong and the
// soak-style crash storm (fail-stop faults + wire storm + rollback) — once
// with pools enabled and once disabled, and compare every virtual-time
// observable with exact equality: completion horizons, RTT sums, payload
// digests, whole stencil fields, and executed-event counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/stencil/stencil.hpp"
#include "charm/runtime.hpp"
#include "ckdirect/ckdirect.hpp"
#include "fault/fault.hpp"
#include "harness/machines.hpp"
#include "harness/pgas_world.hpp"
#include "pgas/pgas.hpp"
#include "sim/causal.hpp"
#include "sim/trace.hpp"
#include "util/pool.hpp"

namespace {

using namespace ckd;

/// Flip the pool for one run and restore it afterwards, trimming cached
/// blocks at both edges so runs never see each other's free lists.
class PoolsGuard {
 public:
  explicit PoolsGuard(bool on) : was_(util::BufferPool::instance().enabled()) {
    util::BufferPool::instance().trim();
    util::BufferPool::instance().setEnabled(on);
  }
  ~PoolsGuard() {
    util::BufferPool::instance().setEnabled(was_);
    util::BufferPool::instance().trim();
  }

 private:
  bool was_;
};

std::uint64_t fnv(const void* data, std::size_t bytes,
                  std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kOob = 0xDEADBEEFCAFEBABEull;

/// Field-by-field digest of the retained span events (the struct has
/// padding, so hashing the raw bytes would fold in indeterminate garbage).
std::uint64_t traceDigest(const std::vector<sim::TraceEvent>& events) {
  std::uint64_t h = 1469598103934665603ull;
  for (const sim::TraceEvent& ev : events) {
    h = fnv(&ev.time, sizeof ev.time, h);
    h = fnv(&ev.id, sizeof ev.id, h);
    h = fnv(&ev.parent, sizeof ev.parent, h);
    h = fnv(&ev.value, sizeof ev.value, h);
    h = fnv(&ev.pe, sizeof ev.pe, h);
    h = fnv(&ev.aux, sizeof ev.aux, h);
    const auto tag = static_cast<unsigned char>(ev.tag);
    const auto phase = static_cast<unsigned char>(ev.phase);
    h = fnv(&tag, 1, h);
    h = fnv(&phase, 1, h);
  }
  return h;
}

struct PingResult {
  double totalRtt = 0.0;
  double horizon = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  // Causal-trace observables: the full event stream (ids, parents, times)
  // and the derived critical path must also be bit-identical.
  std::uint64_t trace = 0;
  std::uint64_t chains = 0;
  std::uint64_t pathHops = 0;
  double pathSpan = 0.0;

  bool operator==(const PingResult&) const = default;
};

/// CkDirect pingpong as table1_pingpong_ib drives it, with every received
/// payload folded into a digest (same scheme as the fault soak).
PingResult runPingpong(bool pools, std::size_t bytes, int iters) {
  PoolsGuard guard(pools);
  charm::Runtime rts(harness::abeMachine(2, 1));
  rts.engine().trace().enable();

  struct State {
    std::vector<std::byte> sendA, recvA, sendB, recvB;
    direct::Handle ab, ba;
    int remaining = 0;
    sim::Time sentAt = 0.0;
    double totalRtt = 0.0;
    std::uint64_t digest = 1469598103934665603ull;
  };
  auto st = std::make_shared<State>();
  st->sendA.assign(bytes, std::byte{0x11});
  st->recvA.assign(bytes, std::byte{0});
  st->sendB.assign(bytes, std::byte{0x22});
  st->recvB.assign(bytes, std::byte{0});
  st->remaining = iters;

  st->ab = direct::createHandle(rts, 1, st->recvB.data(), bytes, kOob, [st]() {
    st->digest = fnv(st->recvB.data(), st->recvB.size(), st->digest);
    direct::ready(st->ab);
    direct::put(st->ba);
  });
  st->ba = direct::createHandle(
      rts, 0, st->recvA.data(), bytes, kOob, [st, &rts]() {
        st->digest = fnv(st->recvA.data(), st->recvA.size(), st->digest);
        st->totalRtt += rts.scheduler(0).currentTime() - st->sentAt;
        direct::ready(st->ba);
        if (--st->remaining > 0) {
          st->sentAt = rts.scheduler(0).currentTime();
          direct::put(st->ab);
        }
      });
  direct::assocLocal(st->ab, 0, st->sendA.data());
  direct::assocLocal(st->ba, 1, st->sendB.data());

  rts.seed([st]() {
    st->sentAt = 0.0;
    direct::put(st->ab);
  });
  rts.run();

  PingResult result;
  result.totalRtt = st->totalRtt;
  result.horizon = rts.now();
  result.digest = st->digest;
  result.events = rts.engine().executedEvents();
  const std::vector<sim::TraceEvent> events = rts.engine().trace().snapshot();
  result.trace = traceDigest(events);
  const sim::CausalGraph graph(events);
  result.chains = graph.chains().size();
  result.pathHops = graph.criticalPathHops();
  result.pathSpan = graph.criticalPathSpan();
  return result;
}

struct StencilResult {
  double horizon = 0.0;
  std::uint64_t events = 0;
  std::vector<double> field;

  bool operator==(const StencilResult&) const = default;
};

/// CkDirect stencil, optionally under a seeded fault plan (crash storm).
StencilResult runStencil(bool pools, int iters, const std::string& faultSpec,
                         std::uint64_t faultSeed, double checkpointPeriod) {
  PoolsGuard guard(pools);
  charm::MachineConfig machine = harness::t3Machine(8, 4);
  if (!faultSpec.empty()) {
    machine.faults = fault::parseFaultSpec(faultSpec);
    machine.faultSeed = faultSeed;
    if (checkpointPeriod > 0.0) machine.checkpointPeriod_us = checkpointPeriod;
  }
  charm::Runtime rts(machine);
  apps::stencil::Config cfg;
  cfg.gx = 32;
  cfg.gy = 32;
  cfg.gz = 16;
  cfg.cx = cfg.cy = cfg.cz = 2;
  cfg.iterations = iters;
  cfg.mode = apps::stencil::Mode::kCkDirect;
  cfg.real_compute = true;
  apps::stencil::StencilApp app(rts, cfg);
  app.execute();

  StencilResult result;
  result.horizon = rts.now();
  result.events = rts.engine().executedEvents();
  result.field = app.gatherField();
  return result;
}

// PGAS atomic storm on the serial engine: every PE hammers remote
// fetch-add/compare-swap at shared cells and streams puts at its ring
// neighbor, then fences and enters the team barrier. The RMWs serialize at
// the target in the fabric's canonical delivery order, so reruns — with
// pools on or off — must reproduce the segment images, counters, horizon,
// and trace stream to the bit.

struct PgasStormResult {
  double horizon = 0.0;
  std::uint64_t events = 0;
  std::uint64_t segments = 0;
  std::uint64_t counters = 0;
  std::uint64_t trace = 0;

  bool operator==(const PgasStormResult&) const = default;
};

PgasStormResult runPgasStorm(bool pools) {
  PoolsGuard guard(pools);
  const charm::MachineConfig machine = harness::abeMachine(8, 1);
  constexpr std::size_t kSeg = 32 * 1024;
  harness::PgasWorld world(machine, pgas::dartIbCosts(), kSeg);
  world.enableTracing();
  pgas::Pgas& pg = world.pgas();
  const pgas::Gptr cells = pg.alloc(8 * 8);
  const pgas::Gptr block = pg.alloc(512);
  const pgas::Gptr src = pg.alloc(512);
  const int n = world.numPes();
  for (int p = 0; p < n; ++p) {
    auto* s = static_cast<std::byte*>(pg.addr(p, src));
    for (std::size_t i = 0; i < 512; ++i)
      s[i] = std::byte(static_cast<unsigned char>(p * 31 + i));
  }
  for (int p = 0; p < n; ++p) {
    world.seedOn(p, [&pg, p, n, cells, block, src]() {
      for (int k = 0; k < 6; ++k) {
        pg.fetchAdd(p, 0, cells.at(8 * static_cast<std::size_t>(k % 8)),
                    p + 1);
        if (k % 2 == 0) pg.compareSwap(p, (p + 1) % n, cells.at(8), k, k + p);
        pg.put(p, (p + 1) % n, block, pg.addr(p, src), 512);
      }
      pg.fence(p, [&pg, p]() { pg.barrier(p, [] {}); });
    });
  }
  world.run();

  PgasStormResult r;
  r.horizon = world.horizon();
  r.events = world.executedEvents();
  std::uint64_t h = 1469598103934665603ull;
  for (int p = 0; p < n; ++p) h = fnv(pg.addr(p, pgas::Gptr{0, kSeg}), kSeg, h);
  r.segments = h;
  const std::uint64_t counts[] = {pg.putsIssued(),  pg.getsIssued(),
                                  pg.atomicsIssued(), pg.bytesPut(),
                                  pg.failedOps(),   pg.barriersCompleted()};
  r.counters = fnv(counts, sizeof counts);
  r.trace = traceDigest(world.traceEvents());
  return r;
}

TEST(PgasDeterminism, AtomicStormIsByteIdenticalAcrossRerunsAndPools) {
  const PgasStormResult first = runPgasStorm(/*pools=*/true);
  const PgasStormResult rerun = runPgasStorm(/*pools=*/true);
  const PgasStormResult noPool = runPgasStorm(/*pools=*/false);
  EXPECT_GT(first.events, 0u);
  EXPECT_EQ(first, rerun);
  EXPECT_EQ(first, noPool);
}

TEST(PoolDeterminism, PingpongIsByteIdenticalWithPoolsOff) {
  const PingResult on = runPingpong(/*pools=*/true, 4096, 60);
  const PingResult off = runPingpong(/*pools=*/false, 4096, 60);
  EXPECT_EQ(on, off);
  EXPECT_GT(on.totalRtt, 0.0);
  EXPECT_GT(on.events, 0u);
  // The doubles must match to the bit, not merely within a tolerance.
  EXPECT_EQ(std::memcmp(&on.totalRtt, &off.totalRtt, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&on.horizon, &off.horizon, sizeof(double)), 0);
}

TEST(TraceDeterminism, ChainIdsAndCriticalPathAreBitIdentical) {
  // The causal tracer's contract: trace ids are minted from a deterministic
  // counter, never an address or RNG draw, so the whole span stream — and
  // everything derived from it — is bit-identical across reruns and across
  // CKD_POOLS on/off.
  const PingResult first = runPingpong(/*pools=*/true, 4096, 40);
  const PingResult rerun = runPingpong(/*pools=*/true, 4096, 40);
  const PingResult noPool = runPingpong(/*pools=*/false, 4096, 40);

  EXPECT_GT(first.chains, 0u);
  EXPECT_EQ(first.chains, first.pathHops);  // pingpong is one serial path
  EXPECT_GT(first.pathSpan, 0.0);

  EXPECT_EQ(first.trace, rerun.trace);
  EXPECT_EQ(first.trace, noPool.trace);
  EXPECT_EQ(first.chains, noPool.chains);
  EXPECT_EQ(first.pathHops, noPool.pathHops);
  // Bitwise, not within-tolerance.
  EXPECT_EQ(std::memcmp(&first.pathSpan, &rerun.pathSpan, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&first.pathSpan, &noPool.pathSpan, sizeof(double)), 0);
}

TEST(PoolDeterminism, CrashStormIsByteIdenticalWithPoolsOff) {
  // Place two fail-stop crashes relative to the fault-free horizon, exactly
  // like bench/soak_faults.cpp does, then A/B the faulted run.
  const StencilResult clean = runStencil(/*pools=*/true, 12, "", 0, -1.0);
  ASSERT_GT(clean.horizon, 0.0);
  const std::string spec =
      "pe_crash@" + std::to_string(0.70 * clean.horizon) + ",pe_crash@" +
      std::to_string(0.90 * clean.horizon);
  const double ckptPeriod = clean.horizon / 10.0;

  const StencilResult on = runStencil(/*pools=*/true, 12, spec, 1, ckptPeriod);
  const StencilResult off =
      runStencil(/*pools=*/false, 12, spec, 1, ckptPeriod);
  EXPECT_EQ(on, off);
  ASSERT_FALSE(on.field.empty());
  // The recovered field also matches the fault-free run (no divergence).
  EXPECT_EQ(on.field, clean.field);
  // The crash run really did more work than the clean run.
  EXPECT_GT(on.horizon, clean.horizon);
}

}  // namespace
