// Focused tests for the per-PE scheduler's DES semantics: pump re-arming
// when the processor is busy, poke coalescing, system-work priority,
// handler-relative time, and poll-hook interaction.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "charm/maps.hpp"
#include "charm/proxy.hpp"
#include "charm/runtime.hpp"
#include "harness/machines.hpp"

namespace ckd::charm {
namespace {

class Worker final : public Chare {
 public:
  double cost = 0.0;
  std::vector<double> startTimes;
  void work(Message&) {
    startTimes.push_back(now());
    charge(cost);
  }
};

struct Rig {
  Rig() : rts(harness::abeMachine(2, 1)) {
    proxy = makeArray<Worker>(rts, "w", 2, blockMap(2, 2),
                              [](std::int64_t) { return std::make_unique<Worker>(); });
    ep = proxy.registerEntry("work", &Worker::work);
  }
  Runtime rts;
  ArrayProxy<Worker> proxy;
  EntryId ep = -1;
};

TEST(Scheduler, HandlersSerializeByChargedCost) {
  Rig rig;
  rig.proxy[1].local().cost = 100.0;
  rig.rts.seed([&] {
    rig.proxy[1].send(rig.ep);
    rig.proxy[1].send(rig.ep);
    rig.proxy[1].send(rig.ep);
  });
  rig.rts.run();
  const auto& t = rig.proxy[1].local().startTimes;
  ASSERT_EQ(t.size(), 3u);
  const double perMsg = 100.0 + rig.rts.costs().recv_overhead_us +
                        rig.rts.costs().sched_overhead_us;
  EXPECT_NEAR(t[1] - t[0], perMsg, 1e-9);
  EXPECT_NEAR(t[2] - t[1], perMsg, 1e-9);
}

TEST(Scheduler, SystemWorkPreemptsQueuedMessages) {
  Rig rig;
  std::vector<int> order;
  rig.rts.seed([&] {
    rig.rts.scheduler(1).enqueueSystemWork(1.0, [&] { order.push_back(1); });
    rig.proxy[1].send(rig.ep);
    rig.rts.scheduler(1).enqueueSystemWork(1.0, [&] { order.push_back(2); });
  });
  rig.rts.run();
  // Both system-work items run before the (earlier-queued) message.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  ASSERT_EQ(rig.proxy[1].local().startTimes.size(), 1u);
  EXPECT_GE(rig.proxy[1].local().startTimes[0], 2.0);
}

TEST(Scheduler, PokesCoalesceIntoOnePump) {
  Rig rig;
  int polls = 0;
  rig.rts.scheduler(1).setPollHook([&] { ++polls; });
  rig.rts.seed([&] {
    // Many pokes for the same instant: the pump guard collapses them.
    for (int i = 0; i < 10; ++i) rig.rts.scheduler(1).poke(5.0);
  });
  rig.rts.run();
  EXPECT_EQ(polls, 1);
}

TEST(Scheduler, PokeDuringBusyProcessorWaits) {
  Rig rig;
  rig.proxy[1].local().cost = 50.0;
  double pollAt = -1.0;
  rig.rts.seed([&] {
    rig.proxy[1].send(rig.ep);  // occupies PE 1 from its arrival for ~54.4us
  });
  rig.rts.engine().at(20.0, [&] {
    rig.rts.scheduler(1).setPollHook([&] {
      if (pollAt < 0) pollAt = rig.rts.engine().now();
    });
    rig.rts.scheduler(1).poke(0.0);
  });
  rig.rts.run();
  // The poked pump could not start until the 50us handler finished.
  EXPECT_GT(pollAt, 50.0);
}

TEST(Scheduler, CurrentTimeAdvancesWithCharges) {
  Rig rig;
  double before = -1, after = -1;
  rig.rts.seed([&] {
    rig.rts.scheduler(1).enqueueSystemWork(0.0, [&] {
      Scheduler& s = rig.rts.scheduler(1);
      before = s.currentTime();
      s.charge(12.5);
      after = s.currentTime();
    });
  });
  rig.rts.run();
  EXPECT_NEAR(after - before, 12.5, 1e-12);
}

TEST(Scheduler, ChargeOutsideHandlerIsNoOp) {
  Rig rig;
  rig.rts.scheduler(0).charge(100.0);  // outside any pump: ignored
  EXPECT_DOUBLE_EQ(rig.rts.processor(0).busyTotal(), 0.0);
  EXPECT_FALSE(rig.rts.scheduler(0).inHandler());
}

TEST(Scheduler, StatsCountPumpsAndMessages) {
  Rig rig;
  rig.rts.seed([&] {
    rig.proxy[1].send(rig.ep);
    rig.proxy[1].send(rig.ep);
  });
  rig.rts.run();
  EXPECT_EQ(rig.rts.scheduler(1).messagesProcessed(), 2u);
  EXPECT_GE(rig.rts.scheduler(1).pumps(), 2u);
  EXPECT_EQ(rig.rts.scheduler(1).queueLength(), 0u);
}

TEST(SchedulerDeath, WrongPeEnqueueAborts) {
  Rig rig;
  Envelope env;
  env.kind = MsgKind::kUser;
  env.srcPe = 0;
  env.dstPe = 1;
  env.arrayId = rig.proxy.id();
  env.elemIndex = 1;
  env.entry = rig.ep;
  auto msg = Message::make(env, {});
  EXPECT_DEATH(rig.rts.scheduler(0).enqueue(std::move(msg)), "wrong PE");
}

}  // namespace
}  // namespace ckd::charm
