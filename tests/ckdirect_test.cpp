// Tests for the CkDirect API on both machine layers: channel setup, put
// delivery and callbacks, sentinel semantics, ready/readyMark/readyPollQ,
// multicast from one send buffer, polling-queue behavior, and the
// synchronization-discipline checks.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "ckdirect/ckdirect.hpp"
#include "ckdirect/manager_ib.hpp"
#include "harness/machines.hpp"

namespace ckd::direct {
namespace {

constexpr std::uint64_t kOob = 0xFFF0123456789ABCull;

struct Channel {
  std::vector<double> send;
  std::vector<double> recv;
  Handle handle;
  int arrivals = 0;

  Channel(charm::Runtime& rts, int fromPe, int toPe, std::size_t n) {
    send.assign(n, 0.0);
    recv.assign(n, 0.0);
    handle = createHandle(rts, toPe, recv.data(), n * sizeof(double), kOob,
                          [this] { ++arrivals; });
    assocLocal(handle, fromPe, send.data());
  }
};

TEST(CkDirectIb, PutDeliversBytesAndCallback) {
  charm::Runtime rts(harness::abeMachine(2, 1));
  Channel ch(rts, 0, 1, 64);
  for (std::size_t i = 0; i < 64; ++i) ch.send[i] = 0.5 * static_cast<double>(i);
  rts.seed([&] { put(ch.handle); });
  rts.run();
  EXPECT_EQ(ch.arrivals, 1);
  EXPECT_EQ(std::memcmp(ch.recv.data(), ch.send.data(), 64 * 8), 0);
}

TEST(CkDirectIb, CreateHandleWritesSentinel) {
  charm::Runtime rts(harness::abeMachine(2, 1));
  std::vector<double> recv(8, 1.0);
  createHandle(rts, 1, recv.data(), 8 * sizeof(double), kOob, [] {});
  std::uint64_t tail;
  std::memcpy(&tail, recv.data() + 7, 8);
  EXPECT_EQ(tail, kOob);
}

TEST(CkDirectIb, HandleEntersPollQueueOnCreation) {
  charm::Runtime rts(harness::abeMachine(2, 1));
  std::vector<double> recv(8, 0.0);
  createHandle(rts, 1, recv.data(), 64, kOob, [] {});
  EXPECT_EQ(Manager::of(rts).pollQueueLength(1), 1u);
  EXPECT_EQ(Manager::of(rts).pollQueueLength(0), 0u);
}

TEST(CkDirectIb, CallbackLeavesPollQueueUntilReady) {
  charm::Runtime rts(harness::abeMachine(2, 1));
  Channel ch(rts, 0, 1, 16);
  ch.send[15] = 42.0;
  rts.seed([&] { put(ch.handle); });
  rts.run();
  EXPECT_EQ(ch.arrivals, 1);
  EXPECT_EQ(Manager::of(rts).pollQueueLength(1), 0u);
  ready(ch.handle);
  EXPECT_EQ(Manager::of(rts).pollQueueLength(1), 1u);
  // ready() re-armed the sentinel.
  std::uint64_t tail;
  std::memcpy(&tail, ch.recv.data() + 15, 8);
  EXPECT_EQ(tail, kOob);
}

TEST(CkDirectIb, RepeatedIterations) {
  charm::Runtime rts(harness::abeMachine(2, 1));
  std::vector<double> send(32, 0.0), recv(32, 0.0);
  int rounds = 0;
  Handle h = createHandle(rts, 1, recv.data(), 32 * 8, kOob, [&] {
    ++rounds;
    EXPECT_DOUBLE_EQ(recv[0], static_cast<double>(rounds));
  });
  assocLocal(h, 0, send.data());
  // Chain 5 put/ready cycles.
  std::function<void()> cycle = [&] {
    if (rounds >= 5) return;
    send[0] = static_cast<double>(rounds + 1);
    send[31] = static_cast<double>(rounds + 1);
    put(h);
    rts.engine().after(100.0, [&] {
      ready(h);
      cycle();
    });
  };
  rts.seed([&] { cycle(); });
  rts.run();
  EXPECT_EQ(rounds, 5);
}

TEST(CkDirectIb, OneSendBufferManyHandles) {
  // §2: "The same local send buffer can be associated with multiple
  // different handles" — the multicast pattern.
  charm::Runtime rts(harness::abeMachine(4, 1));
  std::vector<double> send(16, 3.25);
  struct Sink {
    std::vector<double> recv;
    int arrivals = 0;
  };
  std::vector<Sink> sinks(3);
  std::vector<Handle> handles;
  for (int i = 0; i < 3; ++i) {
    sinks[static_cast<std::size_t>(i)].recv.assign(16, 0.0);
    Sink* sink = &sinks[static_cast<std::size_t>(i)];
    Handle h = createHandle(rts, i + 1, sink->recv.data(), 16 * 8, kOob,
                            [sink] { ++sink->arrivals; });
    assocLocal(h, 0, send.data());
    handles.push_back(h);
  }
  rts.seed([&] {
    for (const auto& h : handles) put(h);
  });
  rts.run();
  for (const auto& sink : sinks) {
    EXPECT_EQ(sink.arrivals, 1);
    EXPECT_DOUBLE_EQ(sink.recv[7], 3.25);
  }
}

TEST(CkDirectIb, PutBeforeAssocAborts) {
  charm::Runtime rts(harness::abeMachine(2, 1));
  std::vector<double> recv(8, 0.0);
  Handle h = createHandle(rts, 1, recv.data(), 64, kOob, [] {});
  EXPECT_DEATH(put(h), "assocLocal");
}

TEST(CkDirectIb, DoublePutWithoutReadyAborts) {
  // The discipline check: a second put landing before the receiver
  // re-marked the channel is an application synchronization bug.
  charm::Runtime rts(harness::abeMachine(2, 1));
  Channel ch(rts, 0, 1, 16);
  ch.send[15] = 1.0;
  rts.seed([&] {
    put(ch.handle);
    rts.engine().after(500.0, [&] { put(ch.handle); });  // no ready between
  });
  EXPECT_DEATH(rts.run(), "synchronization");
}

TEST(CkDirectIb, TinyBufferRejected) {
  charm::Runtime rts(harness::abeMachine(2, 1));
  std::vector<std::byte> buf(4);
  EXPECT_DEATH(createHandle(rts, 1, buf.data(), 4, kOob, [] {}), "sentinel");
}

TEST(CkDirectIb, ReadyPollQDetectsAlreadyLandedData) {
  // readyMark early, readyPollQ later: data that arrives in between is
  // detected when polling resumes ("without missing any message", §2.1).
  charm::Runtime rts(harness::abeMachine(2, 1));
  Channel ch(rts, 0, 1, 16);
  ch.send[15] = 7.0;
  rts.seed([&] { put(ch.handle); });
  rts.run();
  EXPECT_EQ(ch.arrivals, 1);
  readyMark(ch.handle);
  ch.send[15] = 8.0;
  put(ch.handle);
  rts.run();  // lands, but the handle is not being polled
  EXPECT_EQ(ch.arrivals, 1);
  readyPollQ(ch.handle);
  rts.run();  // the poke from readyPollQ triggers detection
  EXPECT_EQ(ch.arrivals, 2);
  EXPECT_DOUBLE_EQ(ch.recv[15], 8.0);
}

TEST(CkDirectIb, PollQueueCostChargedPerHandle) {
  charm::Runtime rts(harness::abeMachine(2, 1));
  // 10 idle channels on PE 1 plus one active one: every pump on PE 1 pays
  // the scan cost for all queued handles.
  std::vector<std::unique_ptr<Channel>> idle;
  for (int i = 0; i < 10; ++i)
    idle.push_back(std::make_unique<Channel>(rts, 0, 1, 8));
  Channel active(rts, 0, 1, 8);
  active.send[7] = 1.0;
  rts.seed([&] { put(active.handle); });
  rts.run();
  EXPECT_EQ(active.arrivals, 1);
  const auto* mgr = dynamic_cast<IbManager*>(&Manager::of(rts));
  ASSERT_NE(mgr, nullptr);
  EXPECT_GE(mgr->pollScans(), 1u);
  // 11 handles were in the queue during the detection pump.
  const auto& costs = rts.costs();
  EXPECT_GE(rts.processor(1).busyTotal(),
            11 * costs.poll_per_handle_us + costs.callback_overhead_us - 1e-9);
}

// --- Blue Gene/P implementation --------------------------------------------------

TEST(CkDirectBgp, PutDeliversViaInfoHeader) {
  charm::Runtime rts(harness::surveyorMachine(8, 4));
  std::vector<double> send(64, 1.5), recv(64, 0.0);
  int arrivals = 0;
  Handle h = createHandle(rts, 4, recv.data(), 64 * 8, kOob,
                          [&] { ++arrivals; });
  assocLocal(h, 0, send.data());
  rts.seed([&] { put(h); });
  rts.run();
  EXPECT_EQ(arrivals, 1);
  EXPECT_DOUBLE_EQ(recv[63], 1.5);
  EXPECT_EQ(Manager::of(rts).putsIssued(), 1u);
  EXPECT_EQ(Manager::of(rts).callbacksInvoked(), 1u);
}

TEST(CkDirectBgp, ShortPutUsesShortPath) {
  charm::Runtime rts(harness::surveyorMachine(8, 4));
  std::vector<double> send(8, 2.5), recv(8, 0.0);  // 64 B < 224 B
  int arrivals = 0;
  Handle h = createHandle(rts, 4, recv.data(), 64, kOob, [&] { ++arrivals; });
  assocLocal(h, 0, send.data());
  rts.seed([&] { put(h); });
  rts.run();
  EXPECT_EQ(arrivals, 1);
  EXPECT_DOUBLE_EQ(recv[0], 2.5);
}

TEST(CkDirectBgp, ReadyCallsAreNoOps) {
  charm::Runtime rts(harness::surveyorMachine(8, 4));
  std::vector<double> send(8, 0.0), recv(8, 0.0);
  Handle h = createHandle(rts, 4, recv.data(), 64, kOob, [] {});
  assocLocal(h, 0, send.data());
  ready(h);
  readyMark(h);
  readyPollQ(h);
  EXPECT_EQ(Manager::of(rts).pollQueueLength(4), 0u);
}

TEST(CkDirectBgp, BackToBackPutsReuseRequests) {
  charm::Runtime rts(harness::surveyorMachine(8, 4));
  std::vector<double> send(32, 0.0), recv(32, 0.0);
  int arrivals = 0;
  Handle h = createHandle(rts, 4, recv.data(), 32 * 8, kOob,
                          [&] { ++arrivals; });
  assocLocal(h, 0, send.data());
  rts.seed([&] {
    send[0] = 1.0;
    put(h);
    rts.engine().after(1000.0, [&] {
      send[0] = 2.0;
      put(h);
    });
  });
  rts.run();
  EXPECT_EQ(arrivals, 2);
  EXPECT_DOUBLE_EQ(recv[0], 2.0);
}

TEST(CkDirectBgp, SimultaneousPutsOnOneChannelAbort) {
  // The one-message-in-flight constraint, enforced through DCMF request
  // reuse (§2.2).
  charm::Runtime rts(harness::surveyorMachine(8, 4));
  std::vector<double> send(1024, 0.0), recv(1024, 0.0);
  Handle h = createHandle(rts, 4, recv.data(), 1024 * 8, kOob, [] {});
  assocLocal(h, 0, send.data());
  EXPECT_DEATH(
      {
        rts.seed([&] {
          put(h);
          put(h);  // previous message still in flight
        });
        rts.run();
      },
      "in flight");
}

}  // namespace
}  // namespace ckd::direct
