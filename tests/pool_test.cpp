// BufferPool / PooledBuffer / PoolAllocator unit tests.
//
// The pool backs every charm::Message wire image on the simulator hot path,
// so these tests pin down the two properties the rest of the repo leans on:
// size-class recycling actually reuses blocks (the allocation-free steady
// state), and the CKD_POOLS escape hatch changes only caching, never block
// geometry (the determinism contract).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "util/pool.hpp"

namespace {

using ckd::util::BufferPool;
using ckd::util::PoolAllocator;
using ckd::util::PooledBuffer;

/// Every test runs against the process-wide singleton; start from a clean,
/// enabled pool and leave it that way for whoever runs next.
class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BufferPool& pool = BufferPool::instance();
    pool.setEnabled(true);
    pool.trim();
    pool.resetStats();
  }
  void TearDown() override {
    BufferPool& pool = BufferPool::instance();
    pool.setEnabled(true);
    pool.trim();
    pool.resetStats();
  }
};

TEST_F(PoolTest, ClassCapacityRoundsUpToPowersOfTwo) {
  EXPECT_EQ(BufferPool::classCapacity(1), 64u);
  EXPECT_EQ(BufferPool::classCapacity(64), 64u);
  EXPECT_EQ(BufferPool::classCapacity(65), 128u);
  EXPECT_EQ(BufferPool::classCapacity(180), 256u);
  EXPECT_EQ(BufferPool::classCapacity(4096), 4096u);
  EXPECT_EQ(BufferPool::classCapacity(4097), 8192u);
  EXPECT_EQ(BufferPool::classCapacity(4u << 20), 4u << 20);
  // Oversized requests are served exact-sized, not rounded.
  EXPECT_EQ(BufferPool::classCapacity((4u << 20) + 1), (4u << 20) + 1);
}

TEST_F(PoolTest, AcquireZeroReturnsNull) {
  BufferPool& pool = BufferPool::instance();
  EXPECT_EQ(pool.acquire(0), nullptr);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST_F(PoolTest, SameClassReusesTheBlock) {
  BufferPool& pool = BufferPool::instance();
  std::byte* first = pool.acquire(100);
  ASSERT_NE(first, nullptr);
  pool.release(first, 100);
  // 100 and 120 share the 128-byte class, so the freed block comes back.
  std::byte* second = pool.acquire(120);
  EXPECT_EQ(second, first);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.release(second, 120);
}

TEST_F(PoolTest, DistinctClassesDoNotShareBlocks) {
  BufferPool& pool = BufferPool::instance();
  std::byte* small = pool.acquire(64);
  pool.release(small, 64);
  std::byte* large = pool.acquire(4096);
  EXPECT_EQ(pool.stats().hits, 0u);  // 4 KB class was empty
  pool.release(large, 4096);
}

TEST_F(PoolTest, OversizedBlocksAreNeverCached) {
  BufferPool& pool = BufferPool::instance();
  const std::size_t big = (4u << 20) + 1;
  std::byte* block = pool.acquire(big);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(pool.stats().unpooled, 1u);
  pool.release(block, big);
  EXPECT_EQ(pool.stats().cachedBytes, 0u);
  // A second acquire allocates afresh rather than hitting a free list.
  std::byte* again = pool.acquire(big);
  EXPECT_EQ(pool.stats().hits, 0u);
  pool.release(again, big);
}

TEST_F(PoolTest, DisabledPoolKeepsGeometryButStopsCaching) {
  BufferPool& pool = BufferPool::instance();
  pool.setEnabled(false);
  std::byte* first = pool.acquire(100);
  ASSERT_NE(first, nullptr);
  // The block is still class-capacity sized: writing the full 128-byte
  // class must be in bounds (ASan would flag this if geometry changed).
  std::memset(first, 0xA5, BufferPool::classCapacity(100));
  pool.release(first, 100);
  EXPECT_EQ(pool.stats().cachedBytes, 0u);
  std::byte* second = pool.acquire(100);
  EXPECT_EQ(pool.stats().hits, 0u);  // nothing was cached
  pool.release(second, 100);
}

TEST_F(PoolTest, RecycledContentsAreWritable) {
  // ASan-clean recycling: a block that goes through several
  // acquire/release rounds stays fully writable at class capacity.
  BufferPool& pool = BufferPool::instance();
  for (int round = 0; round < 4; ++round) {
    std::byte* block = pool.acquire(200);
    std::memset(block, round, BufferPool::classCapacity(200));
    pool.release(block, 200);
  }
  EXPECT_EQ(pool.stats().hits, 3u);
}

TEST_F(PoolTest, FreeListIsBounded) {
  BufferPool& pool = BufferPool::instance();
  std::vector<std::byte*> blocks;
  const std::size_t n = BufferPool::kMaxFreePerClass + 100;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) blocks.push_back(pool.acquire(64));
  for (std::byte* b : blocks) pool.release(b, 64);
  EXPECT_EQ(pool.stats().releases, n);
  EXPECT_EQ(pool.stats().cachedBytes, BufferPool::kMaxFreePerClass * 64);
}

TEST_F(PoolTest, TrimDropsEveryCachedBlock) {
  BufferPool& pool = BufferPool::instance();
  for (int i = 0; i < 8; ++i) pool.release(pool.acquire(256), 256);
  EXPECT_GT(pool.stats().cachedBytes, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().cachedBytes, 0u);
  // Blocks handed out after a trim are fresh, not dangling.
  std::byte* block = pool.acquire(256);
  std::memset(block, 0x5A, 256);
  pool.release(block, 256);
}

TEST_F(PoolTest, PooledBufferMoveTransfersOwnership) {
  PooledBuffer a(100);
  std::byte* raw = a.data();
  ASSERT_NE(raw, nullptr);
  PooledBuffer b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): testing it
  PooledBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), raw);
  c.reset();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(BufferPool::instance().stats().releases, 1u);
}

TEST_F(PoolTest, PoolAllocatorRoundTripsThroughSharedPtr) {
  BufferPool& pool = BufferPool::instance();
  void* firstBlock = nullptr;
  {
    auto p = std::allocate_shared<int>(PoolAllocator<int>{}, 42);
    EXPECT_EQ(*p, 42);
    firstBlock = p.get();
  }
  // Object + control block came back to the pool; the next same-shape
  // allocation recycles that block.
  const std::uint64_t hitsBefore = pool.stats().hits;
  auto q = std::allocate_shared<int>(PoolAllocator<int>{}, 7);
  EXPECT_GT(pool.stats().hits, hitsBefore);
  (void)firstBlock;
}

}  // namespace
