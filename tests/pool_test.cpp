// BufferPool / PooledBuffer / PoolAllocator unit tests.
//
// The pool backs every charm::Message wire image on the simulator hot path,
// so these tests pin down the two properties the rest of the repo leans on:
// size-class recycling actually reuses blocks (the allocation-free steady
// state), and the CKD_POOLS escape hatch changes only caching, never block
// geometry (the determinism contract).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "charm/maps.hpp"
#include "charm/proxy.hpp"
#include "charm/runtime.hpp"
#include "harness/machines.hpp"
#include "sim/parallel.hpp"
#include "util/pool.hpp"

namespace {

using ckd::util::BufferPool;
using ckd::util::PoolAllocator;
using ckd::util::PooledBuffer;

/// Every test runs against the process-wide singleton; start from a clean,
/// enabled pool and leave it that way for whoever runs next.
class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BufferPool& pool = BufferPool::instance();
    pool.setEnabled(true);
    pool.trim();
    pool.resetStats();
  }
  void TearDown() override {
    BufferPool& pool = BufferPool::instance();
    pool.setEnabled(true);
    pool.trim();
    pool.resetStats();
  }
};

TEST_F(PoolTest, ClassCapacityRoundsUpToPowersOfTwo) {
  EXPECT_EQ(BufferPool::classCapacity(1), 64u);
  EXPECT_EQ(BufferPool::classCapacity(64), 64u);
  EXPECT_EQ(BufferPool::classCapacity(65), 128u);
  EXPECT_EQ(BufferPool::classCapacity(180), 256u);
  EXPECT_EQ(BufferPool::classCapacity(4096), 4096u);
  EXPECT_EQ(BufferPool::classCapacity(4097), 8192u);
  EXPECT_EQ(BufferPool::classCapacity(4u << 20), 4u << 20);
  // Oversized requests are served exact-sized, not rounded.
  EXPECT_EQ(BufferPool::classCapacity((4u << 20) + 1), (4u << 20) + 1);
}

TEST_F(PoolTest, AcquireZeroReturnsNull) {
  BufferPool& pool = BufferPool::instance();
  EXPECT_EQ(pool.acquire(0), nullptr);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST_F(PoolTest, SameClassReusesTheBlock) {
  BufferPool& pool = BufferPool::instance();
  std::byte* first = pool.acquire(100);
  ASSERT_NE(first, nullptr);
  pool.release(first, 100);
  // 100 and 120 share the 128-byte class, so the freed block comes back.
  std::byte* second = pool.acquire(120);
  EXPECT_EQ(second, first);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.release(second, 120);
}

TEST_F(PoolTest, DistinctClassesDoNotShareBlocks) {
  BufferPool& pool = BufferPool::instance();
  std::byte* small = pool.acquire(64);
  pool.release(small, 64);
  std::byte* large = pool.acquire(4096);
  EXPECT_EQ(pool.stats().hits, 0u);  // 4 KB class was empty
  pool.release(large, 4096);
}

TEST_F(PoolTest, OversizedBlocksAreNeverCached) {
  BufferPool& pool = BufferPool::instance();
  const std::size_t big = (4u << 20) + 1;
  std::byte* block = pool.acquire(big);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(pool.stats().unpooled, 1u);
  pool.release(block, big);
  EXPECT_EQ(pool.stats().cachedBytes, 0u);
  // A second acquire allocates afresh rather than hitting a free list.
  std::byte* again = pool.acquire(big);
  EXPECT_EQ(pool.stats().hits, 0u);
  pool.release(again, big);
}

TEST_F(PoolTest, DisabledPoolKeepsGeometryButStopsCaching) {
  BufferPool& pool = BufferPool::instance();
  pool.setEnabled(false);
  std::byte* first = pool.acquire(100);
  ASSERT_NE(first, nullptr);
  // The block is still class-capacity sized: writing the full 128-byte
  // class must be in bounds (ASan would flag this if geometry changed).
  std::memset(first, 0xA5, BufferPool::classCapacity(100));
  pool.release(first, 100);
  EXPECT_EQ(pool.stats().cachedBytes, 0u);
  std::byte* second = pool.acquire(100);
  EXPECT_EQ(pool.stats().hits, 0u);  // nothing was cached
  pool.release(second, 100);
}

TEST_F(PoolTest, RecycledContentsAreWritable) {
  // ASan-clean recycling: a block that goes through several
  // acquire/release rounds stays fully writable at class capacity.
  BufferPool& pool = BufferPool::instance();
  for (int round = 0; round < 4; ++round) {
    std::byte* block = pool.acquire(200);
    std::memset(block, round, BufferPool::classCapacity(200));
    pool.release(block, 200);
  }
  EXPECT_EQ(pool.stats().hits, 3u);
}

TEST_F(PoolTest, FreeListIsBounded) {
  BufferPool& pool = BufferPool::instance();
  std::vector<std::byte*> blocks;
  const std::size_t n = BufferPool::kMaxFreePerClass + 100;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) blocks.push_back(pool.acquire(64));
  for (std::byte* b : blocks) pool.release(b, 64);
  EXPECT_EQ(pool.stats().releases, n);
  EXPECT_EQ(pool.stats().cachedBytes, BufferPool::kMaxFreePerClass * 64);
}

TEST_F(PoolTest, TrimDropsEveryCachedBlock) {
  BufferPool& pool = BufferPool::instance();
  for (int i = 0; i < 8; ++i) pool.release(pool.acquire(256), 256);
  EXPECT_GT(pool.stats().cachedBytes, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().cachedBytes, 0u);
  // Blocks handed out after a trim are fresh, not dangling.
  std::byte* block = pool.acquire(256);
  std::memset(block, 0x5A, 256);
  pool.release(block, 256);
}

TEST_F(PoolTest, PooledBufferMoveTransfersOwnership) {
  PooledBuffer a(100);
  std::byte* raw = a.data();
  ASSERT_NE(raw, nullptr);
  PooledBuffer b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): testing it
  PooledBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), raw);
  c.reset();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(BufferPool::instance().stats().releases, 1u);
}

TEST_F(PoolTest, PoolAllocatorRoundTripsThroughSharedPtr) {
  BufferPool& pool = BufferPool::instance();
  void* firstBlock = nullptr;
  {
    auto p = std::allocate_shared<int>(PoolAllocator<int>{}, 42);
    EXPECT_EQ(*p, 42);
    firstBlock = p.get();
  }
  // Object + control block came back to the pool; the next same-shape
  // allocation recycles that block.
  const std::uint64_t hitsBefore = pool.stats().hits;
  auto q = std::allocate_shared<int>(PoolAllocator<int>{}, 7);
  EXPECT_GT(pool.stats().hits, hitsBefore);
  (void)firstBlock;
}

// ---------------------------------------------------------------------------
// Per-shard pool isolation (the NUMA-sharded pools the parallel engine
// installs for its worker threads via BufferPool::swapCurrent).

TEST_F(PoolTest, SwapCurrentRedirectsInstanceToTheInstalledPool) {
  BufferPool local;
  BufferPool* prev = BufferPool::swapCurrent(&local);
  EXPECT_EQ(&BufferPool::instance(), &local);
  std::byte* block = BufferPool::instance().acquire(100);
  BufferPool::instance().release(block, 100);
  EXPECT_EQ(local.stats().misses, 1u);
  EXPECT_EQ(local.stats().releases, 1u);
  BufferPool* mine = BufferPool::swapCurrent(prev);
  EXPECT_EQ(mine, &local);
  // Back on the thread-local default: its counters were untouched.
  EXPECT_EQ(BufferPool::instance().stats().misses, 0u);
}

TEST_F(PoolTest, ProcessStatsSumsEveryRegisteredPool) {
  const BufferPool::Stats before = BufferPool::processStats();
  BufferPool a, b;
  a.release(a.acquire(64), 64);
  a.release(a.acquire(64), 64);  // second round hits the free list
  b.release(b.acquire(4096), 4096);
  const BufferPool::Stats after = BufferPool::processStats();
  EXPECT_EQ(after.hits - before.hits, a.stats().hits + b.stats().hits);
  EXPECT_EQ(after.misses - before.misses, a.stats().misses + b.stats().misses);
  EXPECT_EQ(after.releases - before.releases,
            a.stats().releases + b.stats().releases);
  EXPECT_EQ(a.stats().hits, 1u);
  EXPECT_EQ(b.stats().misses, 1u);
}

namespace {

/// Eager-message pingpong pairs (i, i+4) on an 8-node machine, the same
/// shape as bench/perf_engine's storm: hammers the message-allocation hot
/// path on every shard.
class PoolStormChare final : public ckd::charm::Chare {
 public:
  ckd::charm::ArrayProxy<PoolStormChare> proxy;
  ckd::charm::EntryId epPing = -1;
  int pairs = 0;
  int remaining = 0;
  std::uint64_t digest = 1469598103934665603ull;
  std::vector<std::byte> payload;

  void fold(std::span<const std::byte> bytes) {
    for (const std::byte b : bytes) {
      digest ^= static_cast<std::uint64_t>(b);
      digest *= 1099511628211ull;
    }
  }

  void start(ckd::charm::Message&) {
    proxy[thisIndex() + pairs].send(epPing,
                                    std::span<const std::byte>(payload));
  }

  void ping(ckd::charm::Message& msg) {
    fold(msg.payload());
    if (thisIndex() >= pairs) {  // echo side
      proxy[thisIndex() - pairs].send(epPing, msg.payload());
      return;
    }
    if (--remaining > 0)
      proxy[thisIndex() + pairs].send(epPing,
                                      std::span<const std::byte>(payload));
  }
};

struct PoolStormOutcome {
  double horizon = 0.0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;

  bool operator==(const PoolStormOutcome&) const = default;
};

PoolStormOutcome runPoolStorm(int shards, int threads,
                              ckd::charm::Runtime** keepAlive = nullptr,
                              std::unique_ptr<ckd::charm::Runtime>* out =
                                  nullptr) {
  constexpr int kPairs = 4;
  ckd::charm::MachineConfig machine = ckd::harness::abeMachine(2 * kPairs, 1);
  machine.shards = shards;
  machine.shardThreads = threads;
  auto rts = std::make_unique<ckd::charm::Runtime>(machine);
  auto proxy = ckd::charm::makeArray<PoolStormChare>(
      *rts, "poolstorm", 2 * kPairs,
      [](std::int64_t i) { return static_cast<int>(i); },
      [](std::int64_t) { return std::make_unique<PoolStormChare>(); });
  const ckd::charm::EntryId epStart =
      proxy.registerEntry("start", &PoolStormChare::start);
  const ckd::charm::EntryId epPing =
      proxy.registerEntry("ping", &PoolStormChare::ping);
  for (std::int64_t i = 0; i < 2 * kPairs; ++i) {
    PoolStormChare& el = proxy[i].local();
    el.proxy = proxy;
    el.epPing = epPing;
    el.pairs = kPairs;
    el.remaining = 25;
    el.payload.assign(512, std::byte{static_cast<unsigned char>(0x40 + i)});
  }
  rts->seed([proxy, epStart]() {
    for (std::int64_t i = 0; i < kPairs; ++i) proxy[i].send(epStart);
  });
  rts->run();
  PoolStormOutcome outcome;
  outcome.horizon = rts->now();
  outcome.events = rts->executedEvents();
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t i = 0; i < 2 * kPairs; ++i) {
    const std::uint64_t d = proxy[i].local().digest;
    h ^= d;
    h *= 1099511628211ull;
  }
  outcome.digest = h;
  if (keepAlive != nullptr) *keepAlive = rts.get();
  if (out != nullptr) *out = std::move(rts);
  return outcome;
}

}  // namespace

TEST_F(PoolTest, MultiThreadedStormPopulatesPerShardPools) {
  ckd::charm::Runtime* rts = nullptr;
  std::unique_ptr<ckd::charm::Runtime> keep;
  const PoolStormOutcome outcome = runPoolStorm(4, 2, &rts, &keep);
  EXPECT_GT(outcome.events, 0u);
  ASSERT_NE(rts->parallelEngine(), nullptr);
  ckd::sim::ParallelEngine& par = *rts->parallelEngine();
  // Every shard carried wire traffic, so every shard pool saw allocations,
  // and the registry folds each of them into the process totals.
  std::uint64_t shardAcquires = 0;
  const BufferPool::Stats process = BufferPool::processStats();
  for (int s = 0; s < par.shards(); ++s) {
    const BufferPool::Stats& ps = par.shardPool(s).stats();
    EXPECT_GT(ps.hits + ps.misses, 0u) << "shard=" << s;
    shardAcquires += ps.hits + ps.misses;
  }
  EXPECT_GE(process.hits + process.misses, shardAcquires);
}

TEST_F(PoolTest, PoolsOffIsBitIdenticalUnderTheParallelEngine) {
  // CKD_POOLS is read when each pool is constructed, so toggling it before
  // runtime construction flips every per-shard pool for that run. Pool
  // identity (and the recycling it enables) must never leak into
  // virtual-time results.
  const PoolStormOutcome on = runPoolStorm(4, 2);
  ASSERT_EQ(setenv("CKD_POOLS", "off", 1), 0);
  const PoolStormOutcome off = runPoolStorm(4, 2);
  ASSERT_EQ(unsetenv("CKD_POOLS"), 0);
  EXPECT_EQ(on, off);
  const PoolStormOutcome serialOn = runPoolStorm(0, 0);
  EXPECT_EQ(on.horizon, serialOn.horizon);
  EXPECT_EQ(on.digest, serialOn.digest);
}

}  // namespace
