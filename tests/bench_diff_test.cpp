// bench_diff (src/harness/bench_diff.hpp): metric matching, direction
// rules, tolerance bands, missing handling — plus the acceptance gates: a
// seeded synthetic regression is detected, and every committed BENCH_*.json
// baseline identity-diffs clean at a zero band.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/bench_diff.hpp"
#include "util/json.hpp"

namespace {

using namespace ckd;
using harness::DiffOptions;
using harness::DiffReport;
using harness::DiffRow;
using harness::DiffStatus;

util::JsonValue metricRow(const char* name, double value, const char* unit,
                          std::vector<std::pair<std::string, std::string>>
                              labels = {}) {
  util::JsonValue row = util::JsonValue::object();
  row.set("name", name);
  row.set("value", value);
  row.set("unit", unit);
  if (!labels.empty()) {
    util::JsonValue obj = util::JsonValue::object();
    for (const auto& [k, v] : labels) obj.set(k, v);
    row.set("labels", std::move(obj));
  }
  return row;
}

util::JsonValue benchDoc(std::vector<util::JsonValue> rows) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "ckd.bench.v1");
  doc.set("bench", "selftest");
  util::JsonValue metrics = util::JsonValue::array();
  for (util::JsonValue& row : rows) metrics.push(std::move(row));
  doc.set("metrics", std::move(metrics));
  return doc;
}

const DiffRow* findRow(const DiffReport& report, const std::string& key) {
  for (const DiffRow& row : report.rows)
    if (row.key == key) return &row;
  return nullptr;
}

TEST(BenchDiff, IdentityDiffHasNoDrift) {
  const util::JsonValue doc = benchDoc({
      metricRow("latency_us", 12.5, "us", {{"variant", "ckdirect"}}),
      metricRow("events_executed", 1000.0, "events"),
  });
  const DiffReport report = harness::diffBench(doc, doc, DiffOptions{});
  EXPECT_EQ(report.compared, 2);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.improvements, 0);
  EXPECT_EQ(report.missing, 0);
  EXPECT_FALSE(report.failed(DiffOptions{}));
}

TEST(BenchDiff, SeededSyntheticRegressionIsDetected) {
  const util::JsonValue base = benchDoc({
      metricRow("latency_us", 100.0, "us"),
      metricRow("events_executed", 5000.0, "events"),
  });
  // Seed a +30% latency regression past the default 10% band.
  const util::JsonValue cand = benchDoc({
      metricRow("latency_us", 130.0, "us"),
      metricRow("events_executed", 5000.0, "events"),
  });
  const DiffOptions opts;
  const DiffReport report = harness::diffBench(base, cand, opts);
  EXPECT_EQ(report.regressions, 1);
  EXPECT_TRUE(report.failed(opts));
  const DiffRow* row = findRow(report, "latency_us");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->status, DiffStatus::kRegression);
  EXPECT_NEAR(row->rel, 0.30, 1e-12);
  // The regression survives into both renderings.
  EXPECT_NE(report.toTable(false).find("REGRESSION"), std::string::npos);
  EXPECT_EQ(report.toJson().at("regressions").asNumber(), 1.0);
}

TEST(BenchDiff, TimeUnitsOnlyRegressUpward) {
  const util::JsonValue base = benchDoc({metricRow("rtt_us", 100.0, "us")});
  const util::JsonValue faster = benchDoc({metricRow("rtt_us", 60.0, "us")});
  const DiffReport report = harness::diffBench(base, faster, DiffOptions{});
  const DiffRow* row = findRow(report, "rtt_us");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->status, DiffStatus::kImprovement);
  EXPECT_FALSE(report.failed(DiffOptions{}));
}

TEST(BenchDiff, RateUnitsRegressDownwardUnderIncludeHost) {
  const util::JsonValue base =
      benchDoc({metricRow("events_per_sec", 1000000.0, "1/s")});
  const util::JsonValue slower =
      benchDoc({metricRow("events_per_sec", 500000.0, "1/s")});
  DiffOptions opts;
  // Host-dependent units are skipped entirely by default...
  const DiffReport skipped = harness::diffBench(base, slower, opts);
  EXPECT_EQ(skipped.compared, 0);
  EXPECT_EQ(skipped.skipped, 1);
  // ...and regress on a drop once --include-host opts in.
  opts.includeHost = true;
  const DiffReport report = harness::diffBench(base, slower, opts);
  const DiffRow* row = findRow(report, "events_per_sec");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->status, DiffStatus::kRegression);
}

TEST(BenchDiff, SymmetricUnitsRegressInEitherDirection) {
  const util::JsonValue base = benchDoc({metricRow("chains", 100.0, "1")});
  for (const double drifted : {150.0, 50.0}) {
    const util::JsonValue cand = benchDoc({metricRow("chains", drifted, "1")});
    const DiffReport report = harness::diffBench(base, cand, DiffOptions{});
    const DiffRow* row = findRow(report, "chains");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->status, DiffStatus::kRegression) << drifted;
  }
}

TEST(BenchDiff, MissingMetricsFatalOnlyWithFailOnMissing) {
  const util::JsonValue base = benchDoc({
      metricRow("a_us", 1.0, "us"),
      metricRow("b_us", 2.0, "us"),
  });
  const util::JsonValue cand = benchDoc({
      metricRow("a_us", 1.0, "us"),
      metricRow("c_us", 3.0, "us"),
  });
  DiffOptions opts;
  const DiffReport report = harness::diffBench(base, cand, opts);
  EXPECT_EQ(report.compared, 1);
  EXPECT_EQ(report.missing, 2);
  EXPECT_EQ(findRow(report, "b_us")->status, DiffStatus::kMissingCand);
  EXPECT_EQ(findRow(report, "c_us")->status, DiffStatus::kMissingBase);
  EXPECT_FALSE(report.failed(opts));
  opts.failOnMissing = true;
  EXPECT_TRUE(report.failed(opts));
}

TEST(BenchDiff, LabelsDiscriminateAndSortIntoTheKey) {
  const util::JsonValue rowA =
      metricRow("latency_us", 1.0, "us", {{"variant", "pgas"}, {"bytes", "8"}});
  // Same labels, different insertion order: identical key.
  const util::JsonValue rowB =
      metricRow("latency_us", 1.0, "us", {{"bytes", "8"}, {"variant", "pgas"}});
  EXPECT_EQ(harness::metricKey(rowA), harness::metricKey(rowB));
  EXPECT_EQ(harness::metricKey(rowA), "latency_us{bytes=8,variant=pgas}");

  const util::JsonValue base = benchDoc({
      metricRow("latency_us", 10.0, "us", {{"variant", "a"}}),
      metricRow("latency_us", 20.0, "us", {{"variant", "b"}}),
  });
  const util::JsonValue cand = benchDoc({
      metricRow("latency_us", 10.0, "us", {{"variant", "a"}}),
      metricRow("latency_us", 40.0, "us", {{"variant", "b"}}),
  });
  const DiffReport report = harness::diffBench(base, cand, DiffOptions{});
  EXPECT_EQ(findRow(report, "latency_us{variant=a}")->status, DiffStatus::kOk);
  EXPECT_EQ(findRow(report, "latency_us{variant=b}")->status,
            DiffStatus::kRegression);
}

TEST(BenchDiff, PerMetricToleranceGlobsOverrideTheDefault) {
  const util::JsonValue base = benchDoc({
      metricRow("latency_p99_us", 100.0, "us"),
      metricRow("latency_p50_us", 100.0, "us"),
  });
  const util::JsonValue cand = benchDoc({
      metricRow("latency_p99_us", 130.0, "us"),
      metricRow("latency_p50_us", 130.0, "us"),
  });
  DiffOptions opts;
  opts.metricTolerance = harness::parseMetricTolerances("latency_p99*=0.5");
  const DiffReport report = harness::diffBench(base, cand, opts);
  EXPECT_EQ(findRow(report, "latency_p99_us")->status, DiffStatus::kOk);
  EXPECT_EQ(findRow(report, "latency_p99_us")->tolerance, 0.5);
  EXPECT_EQ(findRow(report, "latency_p50_us")->status,
            DiffStatus::kRegression);
}

TEST(BenchDiff, SkipAndOnlyGlobsFilterTheComparison) {
  const util::JsonValue base = benchDoc({
      metricRow("rtt_us", 100.0, "us"),
      metricRow("noisy_us", 100.0, "us"),
  });
  const util::JsonValue cand = benchDoc({
      metricRow("rtt_us", 100.0, "us"),
      metricRow("noisy_us", 500.0, "us"),
  });
  DiffOptions opts;
  opts.skip = {"noisy*"};
  EXPECT_FALSE(harness::diffBench(base, cand, opts).failed(opts));
  opts.skip.clear();
  opts.only = {"rtt*"};
  EXPECT_FALSE(harness::diffBench(base, cand, opts).failed(opts));
  opts.only.clear();
  EXPECT_TRUE(harness::diffBench(base, cand, opts).failed(opts));
}

TEST(BenchDiff, ParseMetricTolerancesGrammar) {
  const auto tols = harness::parseMetricTolerances("a*=0.5,b{x=1}=0.25");
  ASSERT_EQ(tols.size(), 2u);
  EXPECT_EQ(tols[0].first, "a*");
  EXPECT_DOUBLE_EQ(tols[0].second, 0.5);
  EXPECT_EQ(tols[1].first, "b{x=1}");
  EXPECT_DOUBLE_EQ(tols[1].second, 0.25);
  EXPECT_TRUE(harness::parseMetricTolerances("").empty());
}

// ---------------------------------------------------------------------------
// Real committed baselines (acceptance gate): each BENCH_*.json must
// identity-diff clean at a zero band — duplicate keys or malformed rows
// would CKD_REQUIRE out, drift is impossible against itself.

util::JsonValue loadBaseline(const std::string& name) {
  const std::string path = std::string(CKD_REPO_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return util::JsonValue::parse(buf.str());
}

class CommittedBaselines : public ::testing::TestWithParam<const char*> {};

TEST_P(CommittedBaselines, IdentityDiffPassesAtZeroBand) {
  const util::JsonValue doc = loadBaseline(GetParam());
  DiffOptions opts;
  opts.tolerance = 0.0;
  opts.failOnMissing = true;
  const DiffReport report = harness::diffBench(doc, doc, opts);
  EXPECT_GT(report.compared + report.skipped, 0);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.missing, 0);
  EXPECT_FALSE(report.failed(opts));
}

INSTANTIATE_TEST_SUITE_P(Repo, CommittedBaselines,
                         ::testing::Values("BENCH_PR4.json", "BENCH_PR7.json",
                                           "BENCH_PR8.json",
                                           "BENCH_PR9.json"));

}  // namespace
