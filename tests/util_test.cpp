// Unit tests for src/util: stats accumulators, RNG, table/CSV formatting,
// argument parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ckd::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i * i - 3.0 * i + 1.0;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.mean(), 50.5, 1e-12);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
}

TEST(Rng, Deterministic) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.below(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Table, AlignsColumns) {
  TablePrinter t;
  t.setHeader({"a", "bbbb"});
  t.addRow({"xxx", "y"});
  const std::string out = t.toString();
  EXPECT_NE(out.find("a    bbbb"), std::string::npos);
  EXPECT_NE(out.find("xxx  y"), std::string::npos);
}

TEST(Table, TitlePrinted) {
  TablePrinter t;
  t.setTitle("Table 1");
  t.setHeader({"x"});
  t.addRow({"1"});
  EXPECT_EQ(t.toString().rfind("Table 1\n", 0), 0u);
}

TEST(Csv, QuotesSpecialCells) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.writeRow({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Format, Fixed) {
  EXPECT_EQ(formatFixed(12.3456, 3), "12.346");
  EXPECT_EQ(formatFixed(12.0, 1), "12.0");
}

TEST(Format, Percent) {
  EXPECT_EQ(formatPercent(0.123), "12.3%");
  EXPECT_EQ(formatPercent(0.4, 0), "40%");
}

TEST(Args, KeyValueForms) {
  // Note: a bare flag followed by a positional is ambiguous in this grammar
  // ("--flag pos" reads as --flag=pos), so positionals come first.
  const char* argv[] = {"prog", "--a=1", "--b", "2", "pos", "--flag"};
  Args args(6, argv);
  EXPECT_EQ(args.getInt("a", 0), 1);
  EXPECT_EQ(args.getInt("b", 0), 2);
  EXPECT_TRUE(args.getBool("flag", false));
  EXPECT_FALSE(args.getBool("missing", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Args, IntList) {
  const char* argv[] = {"prog", "--procs=64,128,256"};
  Args args(2, argv);
  const auto list = args.getIntList("procs", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 64);
  EXPECT_EQ(list[2], 256);
}

TEST(Args, Fallbacks) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get("x", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.getDouble("y", 2.5), 2.5);
  const auto list = args.getIntList("l", {7});
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], 7);
}

}  // namespace
}  // namespace ckd::util
