// Tests for the fail-stop tolerance subsystem: PUP serialization round
// trips (including the in-place vector contract restores depend on),
// pe_crash fault-spec parsing, reliable-flow flush/reset idempotency, the
// exactly-once error-surface guarantee, and end-to-end crash/rollback of
// the stencil on both machine models with byte-identical results.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/stencil/stencil.hpp"
#include "charm/checkpoint.hpp"
#include "charm/marshal.hpp"
#include "charm/pup.hpp"
#include "ckdirect/ckdirect.hpp"
#include "fault/fault.hpp"
#include "fault/reliable.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/profile.hpp"
#include "util/args.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "topo/fat_tree.hpp"

namespace ckd {
namespace {

// ---------------------------------------------------------------------------
// PUP framework.

TEST(Pup, RoundTripsScalarsAndVectors) {
  charm::Packer packer;
  charm::Puper pack(packer);
  int i = 42;
  double d = 3.25;
  std::uint64_t u = 0xDEADBEEFCAFEBABEull;
  std::vector<double> v{1.0, 2.0, 4.0};
  std::vector<std::byte> raw{std::byte{7}, std::byte{9}};
  EXPECT_TRUE(pack.isPacking());
  pack | i | d | u | v | raw;

  charm::Unpacker source(packer.bytes());
  charm::Puper unpack(source);
  int i2 = 0;
  double d2 = 0.0;
  std::uint64_t u2 = 0;
  std::vector<double> v2;
  std::vector<std::byte> raw2;
  EXPECT_TRUE(unpack.isUnpacking());
  unpack | i2 | d2 | u2 | v2 | raw2;
  EXPECT_EQ(i2, i);
  EXPECT_EQ(d2, d);
  EXPECT_EQ(u2, u);
  EXPECT_EQ(v2, v);
  EXPECT_EQ(raw2, raw);
}

TEST(Pup, UnpackIntoMatchingVectorIsInPlace) {
  // The property re-registration keys off: restoring into a vector that
  // already has the right size must not move its storage.
  std::vector<double> original{5.0, 6.0, 7.0, 8.0};
  charm::Packer packer;
  charm::Puper pack(packer);
  pack | original;

  std::vector<double> target{0.0, 0.0, 0.0, 0.0};
  const double* addr = target.data();
  charm::Unpacker source(packer.bytes());
  charm::Puper unpack(source);
  unpack | target;
  EXPECT_EQ(target.data(), addr);
  EXPECT_EQ(target, original);
}

TEST(Pup, CArraysRoundTrip) {
  int arr[3] = {10, 20, 30};
  charm::Packer packer;
  charm::Puper pack(packer);
  pack | arr;

  int out[3] = {0, 0, 0};
  charm::Unpacker source(packer.bytes());
  charm::Puper unpack(source);
  unpack | out;
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 20);
  EXPECT_EQ(out[2], 30);
}

// ---------------------------------------------------------------------------
// pe_crash fault-spec grammar.

TEST(CrashSpec, ParsesPeCrashRules) {
  const fault::FaultPlan plan =
      fault::parseFaultSpec("pe_crash@1500,pe_crash@2500.5;pe=3");
  ASSERT_EQ(plan.rules.size(), 2u);
  EXPECT_EQ(plan.rules[0].kind, fault::FaultKind::kPeCrash);
  EXPECT_DOUBLE_EQ(plan.rules[0].crash_at_us, 1500.0);
  EXPECT_EQ(plan.rules[0].src, -1);  // random victim
  EXPECT_EQ(plan.rules[1].kind, fault::FaultKind::kPeCrash);
  EXPECT_DOUBLE_EQ(plan.rules[1].crash_at_us, 2500.5);
  EXPECT_EQ(plan.rules[1].src, 3);  // pinned victim
  EXPECT_TRUE(plan.armed());
  EXPECT_TRUE(plan.hasCrashes());
  EXPECT_NE(plan.summary().find("pe_crash@1500"), std::string::npos);
  EXPECT_NE(plan.summary().find("pe=3"), std::string::npos);
}

TEST(CrashSpec, WireFaultPlansHaveNoCrashes) {
  EXPECT_FALSE(fault::parseFaultSpec("drop:0.1,corrupt:0.05").hasCrashes());
}

TEST(CrashSpecDeath, MalformedCrashRulesAbort) {
  EXPECT_DEATH(fault::parseFaultSpec("pe_crash@-5"), "must be >= 0");
  EXPECT_DEATH(fault::parseFaultSpec("pe_crash@abc"), "bad pe_crash time");
  EXPECT_DEATH(fault::parseFaultSpec("drop:0.1;pe=2"),
               "only valid on pe_crash");
  EXPECT_DEATH(fault::parseFaultSpec("pe_crash@100;pe=-1"), "pe must be >= 0");
}

// ---------------------------------------------------------------------------
// Reliable-flow flush/reset idempotency (the crash path calls these from
// several recovery routes that can race: per-PE flush then global flush,
// QP-error reset then channel reset).

class FlushTest : public ::testing::Test {
 protected:
  FlushTest()
      : topo_(std::make_shared<topo::FatTree>(4, 1)),
        fabric_(engine_, topo_, net::abeParams()) {
    const fault::FaultPlan plan;  // clean wire; flushes are sender-driven
    fabric_.installFaults(plan, 7);
    link_ = std::make_unique<fault::ReliableLink>(fabric_, plan.rel);
  }

  fault::ReliableLink::Send makeSend(int tag) {
    fault::ReliableLink::Send send;
    send.src = 0;
    send.dst = 1;
    send.wireBytes = 2048;
    send.cls = fault::MsgClass::kBulk;
    send.on_deliver = [this, tag](std::vector<std::byte>&&) {
      delivered_.push_back(tag);
    };
    send.on_acked = [this]() { ++acked_; };
    send.on_error = [this](fault::WcStatus) { ++errors_; };
    return send;
  }

  sim::Engine engine_;
  topo::TopologyPtr topo_;
  net::Fabric fabric_;
  std::unique_ptr<fault::ReliableLink> link_;
  std::vector<int> delivered_;
  int acked_ = 0;
  int errors_ = 0;
};

TEST_F(FlushTest, FlushIsSilentAndSecondFlushIsANoOp) {
  // Post a send whose wire copy is still in flight, then flush the flow
  // twice. Neither flush may fire completions (the rollback re-drives the
  // work); the stale wire copy must be NAKed on arrival, not delivered.
  link_->post(0, makeSend(1));
  link_->flushPe(0);
  link_->flushPe(0);  // idempotent: already-flushed flow, strict no-op
  link_->flushAll();  // and via the other route too
  engine_.run();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(acked_, 0);
  EXPECT_EQ(errors_, 0);
  EXPECT_GE(link_->staleNaks(), 1u);

  // The flushed flow is immediately usable: a fresh send delivers once.
  link_->post(0, makeSend(2));
  engine_.run();
  EXPECT_EQ(delivered_, (std::vector<int>{2}));
  EXPECT_EQ(acked_, 1);
  EXPECT_EQ(errors_, 0);
}

TEST_F(FlushTest, ResetChannelOnHealthyFlowIsANoOp) {
  link_->post(0, makeSend(1));
  engine_.run();
  ASSERT_EQ(delivered_, (std::vector<int>{1}));
  // Healthy flow: resetChannel must not disturb sequencing.
  link_->resetChannel(0);
  link_->resetChannel(0);
  EXPECT_FALSE(link_->channelInError(0));
  link_->post(0, makeSend(2));
  engine_.run();
  EXPECT_EQ(delivered_, (std::vector<int>{1, 2}));
  EXPECT_EQ(acked_, 2);
  EXPECT_EQ(errors_, 0);
}

// ---------------------------------------------------------------------------
// Retry-budget exhaustion surfaces through CkDirect_setErrorCallback
// exactly once, even with no transparent manager re-puts configured.

void expectSingleErrorCompletion(charm::MachineConfig machine) {
  machine.faults = fault::parseFaultSpec(
      "drop:1;class=bulk,drop:1;class=packet,"
      "rel:0;timeout=5;budget=2;appbudget=0");
  machine.faultSeed = 11;
  charm::Runtime rts(machine);

  std::vector<std::byte> sendBuf(64, std::byte{1}), recvBuf(64, std::byte{0});
  int arrivals = 0;
  std::vector<fault::WcStatus> statuses;
  direct::Handle h = direct::createHandle(rts, 1, recvBuf.data(), 64,
                                          0xDEADBEEFCAFEBABEull,
                                          [&]() { ++arrivals; });
  direct::assocLocal(h, 0, sendBuf.data());
  direct::setErrorCallback(
      h, [&](fault::WcStatus status) { statuses.push_back(status); });
  rts.seed([h]() { direct::put(h); });
  rts.run();

  EXPECT_EQ(arrivals, 0);
  ASSERT_EQ(statuses.size(), 1u);  // exactly once, not per retransmission
  EXPECT_EQ(statuses[0], fault::WcStatus::kRetryExceeded);
  const direct::Manager* mgr = direct::Manager::peek(rts);
  ASSERT_NE(mgr, nullptr);
  EXPECT_EQ(mgr->putRetries(), 0u);  // appbudget=0: no transparent re-puts
}

TEST(CrashErrorPath, BudgetExhaustionSurfacesOnceOnIb) {
  expectSingleErrorCompletion(harness::abeMachine(2, 1));
}

TEST(CrashErrorPath, BudgetExhaustionSurfacesOnceOnBgp) {
  expectSingleErrorCompletion(harness::surveyorMachine(2, 1));
}

// ---------------------------------------------------------------------------
// Harness plumbing: --checkpoint-period reaches the MachineConfig.

TEST(CheckpointFlag, BenchRunnerAppliesCheckpointPeriod) {
  const char* argv[] = {"bench", "--faults", "pe_crash@100",
                        "--checkpoint-period", "25"};
  const util::Args args(5, argv);
  const harness::BenchRunner runner("t", args);
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  const double defaultPeriod = machine.checkpointPeriod_us;
  runner.applyFaults(machine);
  EXPECT_TRUE(machine.faults.hasCrashes());
  EXPECT_DOUBLE_EQ(machine.checkpointPeriod_us, 25.0);
  EXPECT_NE(defaultPeriod, 25.0);  // the flag, not the default, won
}

TEST(CheckpointFlag, PeriodDefaultsWhenFlagAbsent) {
  const char* argv[] = {"bench", "--faults", "pe_crash@100"};
  const util::Args args(3, argv);
  const harness::BenchRunner runner("t", args);
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  const double defaultPeriod = machine.checkpointPeriod_us;
  runner.applyFaults(machine);
  EXPECT_DOUBLE_EQ(machine.checkpointPeriod_us, defaultPeriod);
  EXPECT_LT(runner.checkpointPeriod(), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end crash + buddy-checkpoint rollback.

struct CrashRun {
  std::vector<double> field;
  double horizon = 0.0;
  std::uint64_t crashes = 0;
  std::uint64_t restores = 0;
  std::uint64_t checkpoints = 0;
  harness::ProfileReport profile;
};

CrashRun runStencil(const charm::MachineConfig& machine, int iters) {
  charm::Runtime rts(machine);
  rts.engine().trace().enable();
  apps::stencil::Config cfg;
  cfg.gx = 16;
  cfg.gy = 16;
  cfg.gz = 8;
  cfg.cx = cfg.cy = 2;
  cfg.cz = 1;
  cfg.iterations = iters;
  cfg.mode = apps::stencil::Mode::kCkDirect;
  cfg.real_compute = true;
  apps::stencil::StencilApp app(rts, cfg);
  app.execute();

  CrashRun out;
  out.field = app.gatherField();
  out.horizon = rts.now();
  const sim::TraceRecorder& trace = rts.engine().trace();
  out.crashes = trace.count(sim::TraceTag::kFaultPeCrash);
  out.restores = trace.count(sim::TraceTag::kCkptRestore);
  out.checkpoints = trace.count(sim::TraceTag::kCkptTaken);
  out.profile = harness::captureProfile(rts);
  return out;
}

void expectCrashRecovered(const charm::MachineConfig& clean, int victim) {
  const int iters = 12;
  const CrashRun base = runStencil(clean, iters);
  EXPECT_EQ(base.crashes, 0u);
  EXPECT_EQ(base.profile.restarts, 0u);

  charm::MachineConfig crashed = clean;
  std::string spec = "pe_crash@" + std::to_string(0.75 * base.horizon);
  if (victim >= 0) spec += ";pe=" + std::to_string(victim);
  crashed.faults = fault::parseFaultSpec(spec);
  crashed.faultSeed = 3;
  crashed.checkpointPeriod_us = base.horizon / 8.0;
  const CrashRun soak = runStencil(crashed, iters);

  EXPECT_EQ(soak.crashes, 1u);
  EXPECT_EQ(soak.restores, 1u);
  EXPECT_GE(soak.checkpoints, 1u);
  // Rollback re-ran part of the computation: time is lost, data is not.
  EXPECT_GT(soak.horizon, base.horizon);
  EXPECT_EQ(base.field, soak.field);

  // Harness plumbing: the counters reach ProfileReport.
  EXPECT_EQ(soak.profile.restarts, 1u);
  EXPECT_GE(soak.profile.checkpointsTaken, 1u);
  EXPECT_GT(soak.profile.checkpointBytes, 0u);
  EXPECT_GT(soak.profile.recoveryUs, 0.0);

  if (victim >= 0) {
    // The pinned victim, and only it, crashed.
    bool sawCrash = false;
    for (const sim::TraceEvent& ev : soak.profile.traceEvents) {
      if (ev.tag != sim::TraceTag::kFaultPeCrash) continue;
      EXPECT_EQ(ev.pe, victim);
      sawCrash = true;
    }
    EXPECT_TRUE(sawCrash);
  }
}

TEST(CrashRestart, StencilSurvivesRandomVictimOnIb) {
  expectCrashRecovered(harness::t3Machine(4, 2), /*victim=*/-1);
}

TEST(CrashRestart, StencilSurvivesPinnedVictimOnIb) {
  expectCrashRecovered(harness::t3Machine(4, 2), /*victim=*/2);
}

TEST(CrashRestart, StencilSurvivesRandomVictimOnBgp) {
  expectCrashRecovered(harness::surveyorMachine(4, 2), /*victim=*/-1);
}

TEST(CrashRestart, StencilSurvivesPinnedVictimOnBgp) {
  expectCrashRecovered(harness::surveyorMachine(4, 2), /*victim=*/1);
}

TEST(CrashRestartDeath, CrashBeforeFirstCheckpointAborts) {
  // A crash at t=0 fires the moment the app arms the machinery, before any
  // buddy checkpoint can complete: unrecoverable by design, loud by design.
  charm::MachineConfig machine = harness::t3Machine(4, 2);
  machine.faults = fault::parseFaultSpec("pe_crash@0;pe=1");
  EXPECT_DEATH(runStencil(machine, 4),
               "before the first buddy checkpoint completed");
}

TEST(CrashRestartDeath, SinglePeMachineCannotBuddy) {
  charm::MachineConfig machine = harness::abeMachine(1, 1);
  machine.faults = fault::parseFaultSpec("pe_crash@100;pe=0");
  EXPECT_DEATH(charm::Runtime rts(machine), "at least 2 PEs");
}

}  // namespace
}  // namespace ckd
