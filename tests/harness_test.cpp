// Tests for the harness: machine presets and the §3 pingpong drivers.

#include <gtest/gtest.h>

#include "ckdirect/ckdirect.hpp"
#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "harness/profile.hpp"
#include "mpi/mpi_costs.hpp"

namespace ckd::harness {
namespace {

TEST(Machines, AbePreset) {
  const auto cfg = abeMachine(64, 8);
  EXPECT_EQ(cfg.topology->numPes(), 64);
  EXPECT_EQ(cfg.topology->numNodes(), 8);
  EXPECT_EQ(cfg.layer, charm::LayerKind::kInfiniband);
  EXPECT_TRUE(cfg.netParams.has_rdma);
  EXPECT_EQ(cfg.costs.name, "abe");
}

TEST(Machines, T3SharesAbeSoftwareStack) {
  const auto t3 = t3Machine(16, 4);
  const auto abe = abeMachine(16, 4);
  EXPECT_EQ(t3.costs.sched_overhead_us, abe.costs.sched_overhead_us);
  EXPECT_GT(t3.netParams.rdma.alpha_us, abe.netParams.rdma.alpha_us);
}

TEST(Machines, SurveyorPreset) {
  const auto cfg = surveyorMachine(2048, 4);
  EXPECT_EQ(cfg.topology->numPes(), 2048);
  EXPECT_EQ(cfg.topology->numNodes(), 512);
  EXPECT_EQ(cfg.layer, charm::LayerKind::kBlueGene);
  EXPECT_FALSE(cfg.netParams.has_rdma);
  // No rendezvous cut-over on Surveyor.
  EXPECT_EQ(cfg.costs.rdma_threshold_bytes,
            std::numeric_limits<std::size_t>::max());
}

TEST(MachinesDeath, InvalidPeCountsRejected) {
  EXPECT_DEATH(abeMachine(10, 8), "multiple");
}

TEST(Pingpong, DeterministicAcrossRuns) {
  const auto machine = abeMachine(2, 1);
  PingpongConfig cfg;
  cfg.bytes = 5000;
  cfg.iterations = 20;
  const double a = charmPingpongRtt(machine, cfg);
  const double b = charmPingpongRtt(machine, cfg);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(ckdirectPingpongRtt(machine, cfg),
                   ckdirectPingpongRtt(machine, cfg));
}

TEST(Pingpong, IterationCountDoesNotChangeAverage) {
  // Steady-state average must be iteration-count independent (no warm-up
  // drift in the model).
  const auto machine = abeMachine(2, 1);
  PingpongConfig few;
  few.bytes = 1000;
  few.iterations = 5;
  PingpongConfig many = few;
  many.iterations = 200;
  EXPECT_NEAR(charmPingpongRtt(machine, few),
              charmPingpongRtt(machine, many), 0.5);
}

TEST(Pingpong, IntraNodeIsFasterThanInterNode) {
  PingpongConfig inter;
  inter.bytes = 1000;
  inter.iterations = 20;
  PingpongConfig intra = inter;
  intra.peA = 0;
  intra.peB = 1;  // same node when pesPerNode >= 2
  const auto machine = abeMachine(4, 2);
  const auto machine1 = abeMachine(4, 1);
  EXPECT_LT(charmPingpongRtt(machine, intra),
            charmPingpongRtt(machine1, inter));
}

TEST(Pingpong, MpiPutSlowerThanTwoSidedAtSmallSizes) {
  const auto machine = abeMachine(2, 1);
  PingpongConfig cfg;
  cfg.bytes = 100;
  cfg.iterations = 50;
  const auto flavor = mpi::mvapichCosts();
  EXPECT_GT(mpiPutPingpongRtt(machine, flavor, cfg),
            mpiPingpongRtt(machine, flavor, cfg));
}

TEST(Pingpong, CkDirectGapMatchesPaperExplanation) {
  // §3: at 100 B the CkDirect win comes from skipping the ~80-byte header
  // and the scheduling overhead — the gap should be in that ballpark.
  const auto machine = abeMachine(2, 1);
  PingpongConfig cfg;
  cfg.bytes = 100;
  cfg.iterations = 50;
  const double gap =
      charmPingpongRtt(machine, cfg) - ckdirectPingpongRtt(machine, cfg);
  const auto& costs = machine.costs;
  const double explained =
      2 * (costs.pack_us + costs.sched_overhead_us +
           costs.header_bytes * machine.netParams.packet.per_byte_us);
  EXPECT_NEAR(gap, explained, 0.35 * explained);
}

TEST(Profile, CapturesRuntimeActivity) {
  charm::MachineConfig machine = abeMachine(2, 1);
  charm::Runtime rts(machine);
  std::vector<double> send(8, 1.0), recv(8, 0.0);
  direct::Handle h = direct::createHandle(rts, 1, recv.data(), 64,
                                          0xFFF0000000000001ull, [] {});
  direct::assocLocal(h, 0, send.data());
  rts.seed([&] { direct::put(h); });
  rts.run();
  const ProfileReport report = captureProfile(rts);
  EXPECT_EQ(report.pes, 2);
  EXPECT_GT(report.horizon_us, 0.0);
  EXPECT_EQ(report.ckdirectPuts, 1u);
  EXPECT_EQ(report.ckdirectCallbacks, 1u);
  EXPECT_GE(report.fabricMessages, 1u);
  const std::string text = report.toString();
  EXPECT_NE(text.find("utilization"), std::string::npos);
  EXPECT_NE(text.find("ckdirect"), std::string::npos);
}

TEST(Profile, NoCkDirectSectionWithoutChannels) {
  charm::Runtime rts(abeMachine(2, 1));
  PingpongConfig cfg;
  cfg.bytes = 100;
  cfg.iterations = 5;
  // Drive some message traffic through a fresh runtime instead.
  charm::Runtime rts2(abeMachine(2, 1));
  (void)rts;
  const ProfileReport report = captureProfile(rts2);
  EXPECT_EQ(report.ckdirectPuts, 0u);
  EXPECT_EQ(report.toString().find("ckdirect"), std::string::npos);
}

}  // namespace
}  // namespace ckd::harness
