// Property-based tests: randomized and parameterized invariants across the
// stack — payload integrity through every transport path, exactly-once
// delivery, reduction algebra, conservation of work, and the in-order
// guarantee CkDirect's sentinel depends on.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "charm/maps.hpp"
#include "charm/marshal.hpp"
#include "charm/proxy.hpp"
#include "charm/runtime.hpp"
#include "ckdirect/ckdirect.hpp"
#include "harness/machines.hpp"
#include "mpi/mini_mpi.hpp"
#include "topo/fat_tree.hpp"
#include "util/rng.hpp"

namespace ckd {
namespace {

constexpr std::uint64_t kOob = 0xFFF8000000001234ull;

charm::MachineConfig machineFor(bool bgp, int pes, int ppn) {
  // Keep node counts valid: PEs must divide into nodes (and be a power of
  // two for the torus); fall back to one PE per node.
  if (pes % ppn != 0) ppn = 1;
  if (bgp && ((pes / ppn) & (pes / ppn - 1)) != 0) ppn = 1;
  return bgp ? harness::surveyorMachine(pes, ppn)
             : harness::abeMachine(pes, ppn);
}

// --- CkDirect payload integrity across sizes and machines ---------------------

class CkDirectIntegrity
    : public ::testing::TestWithParam<std::tuple<bool, std::size_t>> {};

TEST_P(CkDirectIntegrity, RandomPayloadArrivesByteExact) {
  const bool bgp = std::get<0>(GetParam());
  const std::size_t doubles = std::get<1>(GetParam());
  charm::Runtime rts(machineFor(bgp, 2, 1));
  util::Rng rng(doubles * 7 + (bgp ? 1 : 0));

  std::vector<double> send(doubles), recv(doubles, 0.0);
  for (auto& v : send) v = rng.uniform(-1e6, 1e6);
  int arrivals = 0;
  direct::Handle h =
      direct::createHandle(rts, 1, recv.data(), doubles * sizeof(double),
                           kOob, [&] { ++arrivals; });
  direct::assocLocal(h, 0, send.data());
  rts.seed([&] { direct::put(h); });
  rts.run();
  ASSERT_EQ(arrivals, 1);
  EXPECT_EQ(send, recv);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndMachines, CkDirectIntegrity,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1, 2, 7, 27, 28, 64, 1000, 8192)));

// --- many channels, interleaved puts: exactly-once callbacks -------------------

class CkDirectFleet : public ::testing::TestWithParam<bool> {};

TEST_P(CkDirectFleet, EveryPutExactlyOneCallback) {
  const bool bgp = GetParam();
  const int pes = 8;
  charm::Runtime rts(machineFor(bgp, pes, bgp ? 4 : 2));
  util::Rng rng(99);

  struct Chan {
    std::vector<double> send, recv;
    direct::Handle handle;
    int arrivals = 0;
    int puts = 0;
  };
  const int channels = 40;
  const int rounds = 5;
  std::vector<std::unique_ptr<Chan>> chans;
  for (int c = 0; c < channels; ++c) {
    auto ch = std::make_unique<Chan>();
    const std::size_t n = 8 + rng.below(256);
    ch->send.assign(n, 0.0);
    ch->recv.assign(n, 0.0);
    const int to = static_cast<int>(rng.below(pes));
    int from = static_cast<int>(rng.below(pes));
    if (from == to) from = (to + 1) % pes;
    Chan* raw = ch.get();
    ch->handle = direct::createHandle(
        rts, to, ch->recv.data(), n * sizeof(double), kOob, [raw] {
          ++raw->arrivals;
          // Consume + re-arm; the next round's put is gated on this.
          direct::ready(raw->handle);
        });
    direct::assocLocal(ch->handle, from, ch->send.data());
    chans.push_back(std::move(ch));
  }

  // Drive each channel with `rounds` puts, spaced far enough apart that the
  // previous put has always been consumed (the app-level synchronization
  // CkDirect requires).
  for (int r = 0; r < rounds; ++r) {
    rts.engine().at(r * 5000.0, [&, r] {
      for (auto& ch : chans) {
        ch->send[0] = r + 1;
        ch->send.back() = r + 1;
        ++ch->puts;
        direct::put(ch->handle);
      }
    });
  }
  rts.run();
  for (const auto& ch : chans) {
    EXPECT_EQ(ch->arrivals, ch->puts);
    EXPECT_DOUBLE_EQ(ch->recv[0], rounds);
  }
  EXPECT_EQ(direct::Manager::of(rts).callbacksInvoked(),
            static_cast<std::uint64_t>(channels * rounds));
}

INSTANTIATE_TEST_SUITE_P(BothMachines, CkDirectFleet, ::testing::Bool());

// --- runtime delivery: every send arrives exactly once --------------------------

class Sink final : public charm::Chare {
 public:
  std::map<std::int64_t, int> seen;  // payload tag -> count
  void take(charm::Message& msg) {
    charm::Unpacker up(msg.payload());
    ++seen[up.get<std::int64_t>()];
  }
};

class DeliveryFuzz : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(DeliveryFuzz, RandomSendsAllDeliveredOnce) {
  const bool bgp = std::get<0>(GetParam());
  const int pes = std::get<1>(GetParam());
  charm::Runtime rts(machineFor(bgp, pes, bgp ? 4 : 2));
  const std::int64_t elems = pes * 3;
  auto proxy = charm::makeArray<Sink>(
      rts, "sink", elems, charm::blockMap(elems, pes),
      [](std::int64_t) { return std::make_unique<Sink>(); });
  const charm::EntryId ep = proxy.registerEntry("take", &Sink::take);

  util::Rng rng(static_cast<std::uint64_t>(pes) * 31 + bgp);
  const int sends = 200;
  std::vector<std::int64_t> target(sends);
  for (int i = 0; i < sends; ++i)
    target[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(elems)));

  rts.seed([&] {
    for (int i = 0; i < sends; ++i) {
      charm::Packer pk;
      pk.put<std::int64_t>(i);
      proxy[target[static_cast<std::size_t>(i)]].send(ep, pk);
    }
  });
  rts.run();

  int total = 0;
  for (std::int64_t e = 0; e < elems; ++e) {
    for (const auto& [tag, count] : proxy[e].local().seen) {
      EXPECT_EQ(count, 1) << "tag " << tag << " delivered " << count;
      EXPECT_EQ(target[static_cast<std::size_t>(tag)], e);
      ++total;
    }
  }
  EXPECT_EQ(total, sends);
}

INSTANTIATE_TEST_SUITE_P(MachinesAndSizes, DeliveryFuzz,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(2, 4, 16)));

// --- reductions: algebra over random contributions ------------------------------

class Reducer final : public charm::Chare {
 public:
  std::vector<double> result;
  void done(charm::Message& msg) {
    charm::Unpacker up(msg.payload());
    result = up.getVector<double>();
  }
};

class ReductionFuzz
    : public ::testing::TestWithParam<std::tuple<int, int, charm::ReduceOp>> {};

TEST_P(ReductionFuzz, MatchesLocalFold) {
  const int pes = std::get<0>(GetParam());
  const int elems = std::get<1>(GetParam());
  const charm::ReduceOp op = std::get<2>(GetParam());
  charm::Runtime rts(machineFor(false, pes, 2));
  auto proxy = charm::makeArray<Reducer>(
      rts, "red", elems, charm::roundRobinMap(pes),
      [](std::int64_t) { return std::make_unique<Reducer>(); });
  const charm::EntryId ep = proxy.registerEntry("done", &Reducer::done);

  util::Rng rng(static_cast<std::uint64_t>(pes * 1000 + elems));
  std::vector<std::array<double, 3>> contribs(
      static_cast<std::size_t>(elems));
  for (auto& c : contribs)
    for (auto& v : c) v = rng.uniform(-100.0, 100.0);

  rts.seed([&] {
    for (std::int64_t i = 0; i < elems; ++i)
      rts.contribute(proxy.id(), i, contribs[static_cast<std::size_t>(i)], op,
                     ep);
  });
  rts.run();

  std::array<double, 3> expected = contribs[0];
  for (std::size_t i = 1; i < contribs.size(); ++i)
    for (int d = 0; d < 3; ++d) {
      switch (op) {
        case charm::ReduceOp::kSum: expected[d] += contribs[i][d]; break;
        case charm::ReduceOp::kMin:
          expected[d] = std::min(expected[d], contribs[i][d]);
          break;
        case charm::ReduceOp::kMax:
          expected[d] = std::max(expected[d], contribs[i][d]);
          break;
        default: break;
      }
    }
  for (std::int64_t e = 0; e < elems; ++e) {
    const auto& got = proxy[e].local().result;
    ASSERT_EQ(got.size(), 3u);
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(got[static_cast<std::size_t>(d)], expected[d], 1e-9)
          << "element " << e << " dim " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReductionFuzz,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(1, 7, 64),
                       ::testing::Values(charm::ReduceOp::kSum,
                                         charm::ReduceOp::kMin,
                                         charm::ReduceOp::kMax)));

// --- mini-MPI matching fuzz ------------------------------------------------------

TEST(MpiFuzz, RandomTagsAllMatchInOrder) {
  sim::Engine engine;
  auto topo = std::make_shared<topo::FatTree>(4, 1);
  net::Fabric fabric(engine, topo, net::abeParams());
  mpi::MiniMpi mp(fabric, mpi::mvapichCosts());
  util::Rng rng(2024);

  struct Slot {
    int payload = 0;
    int received = -1;
  };
  const int messages = 120;
  std::vector<Slot> slots(static_cast<std::size_t>(messages));
  std::vector<int> payloads(static_cast<std::size_t>(messages));
  int completed = 0;
  for (int i = 0; i < messages; ++i) {
    const int tag = static_cast<int>(rng.below(5));
    const int src = static_cast<int>(rng.below(4));
    int dst = static_cast<int>(rng.below(4));
    if (dst == src) dst = (src + 1) % 4;
    payloads[static_cast<std::size_t>(i)] = i * 31;
    Slot* slot = &slots[static_cast<std::size_t>(i)];
    // Posting order alternates recv-first / send-first randomly.
    auto postRecv = [&, slot, dst, src, tag] {
      mp.irecv(dst, src, tag, &slot->received, sizeof(int),
               [&completed](const mpi::MiniMpi::RecvResult&) { ++completed; });
    };
    auto postSend = [&, i, src, dst, tag] {
      mp.isend(src, dst, tag, &payloads[static_cast<std::size_t>(i)],
               sizeof(int));
    };
    if (rng.chance(0.5)) {
      postRecv();
      postSend();
    } else {
      postSend();
      postRecv();
    }
    engine.run();  // drain between pairs so matching is unambiguous
    EXPECT_EQ(slot->received, payloads[static_cast<std::size_t>(i)])
        << "message " << i;
  }
  EXPECT_EQ(completed, messages);
}

// --- conservation: processor busy time equals the sum of charges ------------------

TEST(Conservation, ProcessorTimeMatchesDeliveredWork) {
  charm::Runtime rts(harness::abeMachine(4, 2));
  const std::int64_t elems = 8;
  auto proxy = charm::makeArray<Sink>(
      rts, "sink", elems, charm::blockMap(elems, 4),
      [](std::int64_t) { return std::make_unique<Sink>(); });
  const charm::EntryId ep = proxy.registerEntry("take", &Sink::take);
  const int sends = 50;
  rts.seed([&] {
    for (int i = 0; i < sends; ++i) {
      charm::Packer pk;
      pk.put<std::int64_t>(i);
      proxy[i % elems].send(ep, pk);
    }
  });
  rts.run();
  // Every message is charged recv + sched at its destination; the seed-time
  // sends charge nothing (outside a handler). Total busy must match.
  double busy = 0;
  std::uint64_t processed = 0;
  for (int pe = 0; pe < 4; ++pe) {
    busy += rts.processor(pe).busyTotal();
    processed += rts.scheduler(pe).messagesProcessed();
  }
  const auto& costs = rts.costs();
  EXPECT_EQ(processed, static_cast<std::uint64_t>(sends));
  EXPECT_NEAR(busy,
              sends * (costs.recv_overhead_us + costs.sched_overhead_us),
              1e-6);
}

// --- in-order placement property (why RC ordering matters) -----------------------

TEST(OrderingProperty, BackToBackPutsNeverTearUnderRc) {
  // Two consecutive puts on one channel (with app-level ready in between):
  // the receiver must never observe a mix of both payloads at callback time.
  charm::Runtime rts(harness::abeMachine(2, 1));
  const std::size_t n = 512;
  std::vector<double> send(n, 0.0), recv(n, 0.0);
  int arrivals = 0;
  bool torn = false;
  direct::Handle h = direct::createHandle(
      rts, 1, recv.data(), n * sizeof(double), kOob, [&] {
        ++arrivals;
        for (std::size_t i = 1; i < n; ++i)
          if (recv[i] != recv[0]) torn = true;
        direct::ready(h);
      });
  direct::assocLocal(h, 0, send.data());
  for (int r = 1; r <= 4; ++r) {
    rts.engine().at(r * 1000.0, [&, r] {
      send.assign(n, static_cast<double>(r));
      direct::put(h);
    });
  }
  rts.run();
  EXPECT_EQ(arrivals, 4);
  EXPECT_FALSE(torn);
}

// --- engine clock: monotonic under any stop/runUntil/resume interleaving ---------

TEST(EngineProperty, ClockMonotonicAcrossStopAndResume) {
  // Randomized schedules mixing runUntil() deadlines with stop() calls fired
  // from inside events. Two invariants: now() never decreases at any
  // observation point, and every event fires exactly at its scheduled time.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    sim::Engine eng;
    double lastSeen = 0.0;
    auto observe = [&] {
      EXPECT_GE(eng.now(), lastSeen) << "seed " << seed;
      lastSeen = eng.now();
    };
    std::size_t fired = 0;
    const int events = 60;
    for (int i = 0; i < events; ++i) {
      const double when = static_cast<double>(rng.below(1000));
      eng.at(when, [&, when] {
        EXPECT_DOUBLE_EQ(eng.now(), when);
        observe();
        ++fired;
        if (rng.chance(0.2)) eng.stop();
      });
    }
    while (eng.pendingEvents() > 0) {
      if (rng.chance(0.5)) {
        eng.runUntil(eng.now() + static_cast<double>(rng.below(400)));
      } else {
        eng.run();
      }
      observe();
    }
    EXPECT_EQ(fired, static_cast<std::size_t>(events));
  }
}

}  // namespace
}  // namespace ckd
