// Serial-vs-parallel determinism gate for the thread-sharded engine.
//
// The windowed parallel engine's contract (sim/parallel.hpp) is that the
// shard count and thread count are pure host-side throughput knobs: every
// virtual-time observable — completion horizons, executed-event counts, RTT
// sums, payload digests, whole stencil fields, and the merged causal trace —
// is bit-identical across --shards={1,2,4,8} and across worker-thread
// counts, and matches the classic serial engine. These tests run the two
// workloads the PR's acceptance gate names — the CkDirect pingpong (here as
// four concurrent cross-node pairs so every shard boundary carries traffic)
// and the soak-style crash storm (fail-stop faults + buddy checkpoints +
// rollback) — once per configuration and compare with exact equality.
//
// Legacy-vs-windowed comparisons exclude the trace digest by construction:
// the windowed engine mints chain ids and message sequences from per-PE
// counters (partition-independent), the legacy engine from one global
// counter, so the id *values* differ even though the event streams describe
// the same execution.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "apps/stencil/stencil.hpp"
#include "charm/runtime.hpp"
#include "ckdirect/ckdirect.hpp"
#include "fault/fault.hpp"
#include "harness/machines.hpp"
#include "harness/pgas_world.hpp"
#include "pgas/pgas.hpp"
#include "sim/parallel.hpp"
#include "sim/trace.hpp"

namespace {

using namespace ckd;

std::uint64_t fnv(const void* data, std::size_t bytes,
                  std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kOob = 0xDEADBEEFCAFEBABEull;

/// Field-by-field digest of the trace events (the struct has padding, so
/// hashing raw bytes would fold in indeterminate garbage).
std::uint64_t traceDigest(const std::vector<sim::TraceEvent>& events) {
  std::uint64_t h = 1469598103934665603ull;
  for (const sim::TraceEvent& ev : events) {
    h = fnv(&ev.time, sizeof ev.time, h);
    h = fnv(&ev.id, sizeof ev.id, h);
    h = fnv(&ev.parent, sizeof ev.parent, h);
    h = fnv(&ev.value, sizeof ev.value, h);
    h = fnv(&ev.pe, sizeof ev.pe, h);
    h = fnv(&ev.aux, sizeof ev.aux, h);
    const auto tag = static_cast<unsigned char>(ev.tag);
    const auto phase = static_cast<unsigned char>(ev.phase);
    h = fnv(&tag, 1, h);
    h = fnv(&phase, 1, h);
  }
  return h;
}

struct PingResult {
  double totalRtt = 0.0;
  double horizon = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t trace = 0;

  bool operator==(const PingResult&) const = default;
};

/// Four concurrent CkDirect pingpong pairs (i, i+4) on an 8-node Abe
/// machine, one PE per node: at 8 shards every put crosses a shard boundary,
/// at 2 shards every pair straddles the one boundary there is.
PingResult runPingpong(int shards, int threads, std::size_t bytes,
                       int iters) {
  charm::MachineConfig machine = harness::abeMachine(8, 1);
  machine.shards = shards;
  machine.shardThreads = threads;
  charm::Runtime rts(machine);
  rts.enableTracing();

  constexpr int kPairs = 4;
  struct Pair {
    std::vector<std::byte> sendA, recvA, sendB, recvB;
    direct::Handle ab, ba;
    int remaining = 0;
    sim::Time sentAt = 0.0;
    double totalRtt = 0.0;
    std::uint64_t digest = 1469598103934665603ull;
  };
  std::vector<std::shared_ptr<Pair>> pairs;
  for (int i = 0; i < kPairs; ++i) {
    auto p = std::make_shared<Pair>();
    const int peA = i;
    const int peB = i + kPairs;
    p->sendA.assign(bytes, std::byte{static_cast<unsigned char>(0x11 + i)});
    p->recvA.assign(bytes, std::byte{0});
    p->sendB.assign(bytes, std::byte{static_cast<unsigned char>(0x22 + i)});
    p->recvB.assign(bytes, std::byte{0});
    p->remaining = iters;
    p->ab = direct::createHandle(
        rts, peB, p->recvB.data(), bytes, kOob, [p]() {
          p->digest = fnv(p->recvB.data(), p->recvB.size(), p->digest);
          direct::ready(p->ab);
          direct::put(p->ba);
        });
    p->ba = direct::createHandle(
        rts, peA, p->recvA.data(), bytes, kOob, [p, peA, &rts]() {
          p->digest = fnv(p->recvA.data(), p->recvA.size(), p->digest);
          p->totalRtt += rts.scheduler(peA).currentTime() - p->sentAt;
          direct::ready(p->ba);
          if (--p->remaining > 0) {
            p->sentAt = rts.scheduler(peA).currentTime();
            direct::put(p->ab);
          }
        });
    direct::assocLocal(p->ab, peA, p->sendA.data());
    direct::assocLocal(p->ba, peB, p->sendB.data());
    pairs.push_back(std::move(p));
  }

  rts.seed([&pairs]() {
    for (const auto& p : pairs) {
      p->sentAt = 0.0;
      direct::put(p->ab);
    }
  });
  rts.run();

  PingResult result;
  result.horizon = rts.now();
  result.events = rts.executedEvents();
  result.trace = traceDigest(rts.traceEvents());
  // Fold per-pair observables in pair order (callback order within a pair is
  // deterministic; across pairs it is not a defined observable).
  for (const auto& p : pairs) {
    result.totalRtt += p->totalRtt;
    result.digest = fnv(&p->digest, sizeof p->digest, result.digest);
  }
  return result;
}

struct StencilResult {
  double horizon = 0.0;
  std::uint64_t events = 0;
  std::uint64_t trace = 0;
  std::vector<double> field;

  bool operator==(const StencilResult&) const = default;
};

/// CkDirect stencil on a 4-node T3 machine, optionally under a seeded
/// crash-storm fault plan, optionally windowed. `withTrace` arms the event
/// ring (legacy comparisons leave it off: different id minting).
StencilResult runStencil(int shards, int threads, int iters,
                         const std::string& faultSpec, std::uint64_t faultSeed,
                         double checkpointPeriod, bool withTrace = true) {
  charm::MachineConfig machine = harness::t3Machine(8, 2);
  machine.shards = shards;
  machine.shardThreads = threads;
  if (!faultSpec.empty()) {
    machine.faults = fault::parseFaultSpec(faultSpec);
    machine.faultSeed = faultSeed;
    if (checkpointPeriod > 0.0) machine.checkpointPeriod_us = checkpointPeriod;
  }
  charm::Runtime rts(machine);
  if (withTrace) rts.enableTracing();
  apps::stencil::Config cfg;
  cfg.gx = 32;
  cfg.gy = 32;
  cfg.gz = 16;
  cfg.cx = cfg.cy = cfg.cz = 2;
  cfg.iterations = iters;
  cfg.mode = apps::stencil::Mode::kCkDirect;
  cfg.real_compute = true;
  apps::stencil::StencilApp app(rts, cfg);
  app.execute();

  StencilResult result;
  result.horizon = rts.now();
  result.events = rts.executedEvents();
  if (withTrace) result.trace = traceDigest(rts.traceEvents());
  result.field = app.gatherField();
  return result;
}

// ---------------------------------------------------------------------------
// Raw ParallelEngine semantics.

TEST(ParallelEngine, WindowedRunMatchesEventCountAndHorizon) {
  sim::ParallelEngine::Config cfg;
  cfg.shards = 2;
  cfg.threads = 1;
  cfg.lookahead = 1.0;
  sim::ParallelEngine par(cfg, std::vector<int>{0, 0, 1, 1});
  int fired = 0;
  for (int pe = 0; pe < 4; ++pe)
    par.atLocal(pe, 1.0 + pe, [&fired] { ++fired; });
  par.atSerial(10.0, [&fired] { ++fired; });
  par.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(par.executedEvents(), 5u);
  EXPECT_DOUBLE_EQ(par.horizon(), 10.0);
  EXPECT_GT(par.windows(), 0u);
}

// Regression: between two run() calls (the stencil's execute() runs the
// engine once per restart epoch) shard clocks could sit above the serial
// clock, and the window ceiling above the horizon — host code seeding fresh
// work at the horizon then tripped the engines' monotonicity checks. The
// quiescent exit must pin every clock to the common horizon.
TEST(ParallelEngine, SupportsSeedingFreshWorkBetweenRuns) {
  sim::ParallelEngine::Config cfg;
  cfg.shards = 2;
  cfg.threads = 1;
  cfg.lookahead = 1.0;
  sim::ParallelEngine par(cfg, std::vector<int>{0, 0, 1, 1});
  int fired = 0;
  par.atLocal(0, 5.0, [&fired, &par] {
    // Shard 0 races ahead of shard 1 (which quiesces at 2.0).
    par.shardEngine(0).after(0.25, [&fired] { ++fired; });
    ++fired;
  });
  par.atLocal(2, 2.0, [&fired] { ++fired; });
  par.run();
  EXPECT_EQ(fired, 3);
  const double h = par.horizon();
  EXPECT_DOUBLE_EQ(h, 5.25);
  EXPECT_DOUBLE_EQ(par.serialEngine().now(), h);
  EXPECT_DOUBLE_EQ(par.shardEngine(0).now(), h);
  EXPECT_DOUBLE_EQ(par.shardEngine(1).now(), h);

  // Seeding at the horizon (what Runtime::seed does between stencil runs)
  // must be legal on every shard and on the serial engine.
  par.atLocal(3, h, [&fired] { ++fired; });
  par.atSerial(h, [&fired] { ++fired; });
  par.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(par.executedEvents(), 5u);
}

// ---------------------------------------------------------------------------
// Window-edge semantics: mid-window drains and drain-point ties.
//
// A relay storm over the raw ParallelEngine: every PE runs several chains
// that hop around a ring, each hop exactly at or above the lookahead so
// arrivals repeatedly land exactly ON window ceilings and drain points. The
// per-destination observation sequence (folded in PE order) must be
// bit-identical whether events arrive via a mid-window drain (stride 1),
// a mid-stride drain, or only at the barrier (huge stride), and across
// shard counts, thread counts, and global-vs-adaptive ceilings: the JIT
// inbox admits arrivals by virtual-time order alone, so WHERE an event was
// drained is unobservable.

struct RelayResult {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  double horizon = 0.0;

  bool operator==(const RelayResult&) const = default;
};

struct RelayState {
  sim::ParallelEngine* par = nullptr;
  std::vector<std::uint64_t> digests;  ///< per destination PE, PE-local
  int pes = 0;
};

void relayHop(const std::shared_ptr<RelayState>& st, int pe, int chain,
              int hops, double when) {
  std::uint64_t& d = st->digests[static_cast<std::size_t>(pe)];
  d = fnv(&when, sizeof when, d);
  d = fnv(&chain, sizeof chain, d);
  d = fnv(&hops, sizeof hops, d);
  if (hops == 0) return;
  // Deltas >= the 1.0 lookahead; the exact-1.0 entries make arrivals land
  // exactly on the next window ceiling (the admit-vs-defer tie).
  constexpr double kDeltas[] = {1.0, 1.25, 1.0, 1.75, 2.0, 1.5};
  const int dst = (pe + 1 + (chain % 2)) % st->pes;
  const double next = when + kDeltas[(chain + hops) % 6];
  st->par->atRemote(dst, pe, next, [st, dst, chain, hops, next] {
    relayHop(st, dst, chain, hops - 1, next);
  });
}

RelayResult runRelay(int shards, int threads, std::uint64_t drainStride,
                     bool adaptive) {
  constexpr int kPes = 8;
  constexpr int kChains = 5;
  constexpr int kHops = 24;
  sim::ParallelEngine::Config cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.lookahead = 1.0;
  cfg.adaptive = adaptive;
  cfg.drainStride = drainStride;
  std::vector<int> map(kPes);
  for (int pe = 0; pe < kPes; ++pe) map[pe] = pe * shards / kPes;
  sim::ParallelEngine par(cfg, std::move(map));
  auto st = std::make_shared<RelayState>();
  st->par = &par;
  st->digests.assign(kPes, 1469598103934665603ull);
  st->pes = kPes;
  for (int pe = 0; pe < kPes; ++pe) {
    for (int chain = 0; chain < kChains; ++chain) {
      // Identical start instants across PEs: cross-PE ties from the very
      // first window.
      const double start = 1.0 + 0.5 * (chain % 3);
      par.atLocal(pe, start, [st, pe, chain, start] {
        relayHop(st, pe, chain, kHops, start);
      });
    }
  }
  par.run();
  RelayResult r;
  r.events = par.executedEvents();
  r.horizon = par.horizon();
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t d : st->digests) h = fnv(&d, sizeof d, h);
  r.digest = h;
  return r;
}

TEST(WindowEdgeDeterminism, MidWindowDrainMatchesBarrierOnlyDrain) {
  const RelayResult base =
      runRelay(/*shards=*/4, /*threads=*/1, /*drainStride=*/1, false);
  EXPECT_GT(base.events, 0u);
  // Barrier-only (stride larger than any window's event count) and a
  // mid-stride drain must observe the identical execution.
  const std::uint64_t kBarrierOnly = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(base, runRelay(4, 1, kBarrierOnly, false));
  EXPECT_EQ(base, runRelay(4, 1, 3, false));
  EXPECT_EQ(base, runRelay(4, 2, 1, false));
}

TEST(WindowEdgeDeterminism, DrainPointTiesAreShardCountInvariant) {
  const RelayResult base =
      runRelay(/*shards=*/1, /*threads=*/1, /*drainStride=*/256, false);
  for (const int shards : {2, 4, 8}) {
    EXPECT_EQ(base, runRelay(shards, 1, 1, false)) << "shards=" << shards;
    EXPECT_EQ(base, runRelay(shards, 1, 256, false)) << "shards=" << shards;
  }
}

TEST(WindowEdgeDeterminism, AdaptiveCeilingsMatchGlobalWindows) {
  const RelayResult base =
      runRelay(/*shards=*/4, /*threads=*/1, /*drainStride=*/256, false);
  // Per-destination LBTS ceilings admit more per round but must execute the
  // same virtual-time history, on one shard (infinite self-ceiling) too.
  EXPECT_EQ(base, runRelay(1, 1, 256, true));
  for (const int shards : {2, 4, 8}) {
    EXPECT_EQ(base, runRelay(shards, 1, 256, true)) << "shards=" << shards;
    EXPECT_EQ(base, runRelay(shards, 2, 256, true)) << "shards=" << shards;
  }
}

// 64k-PE smoke: the engine's tables (per-PE mint counters, push sequences,
// shard map) and the inbox/admission path at a partition three orders of
// magnitude wider than the other gates. Sparse work keeps it fast: one
// event per PE plus a cross-machine forward from every 512th PE.
TEST(WindowEdgeDeterminism, HugeMachineSmokeDigestIsShardInvariant) {
  static constexpr int kPes = 65536;
  const auto run = [](int shards, int threads) {
    sim::ParallelEngine::Config cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.lookahead = 1.0;
    std::vector<int> map(kPes);
    for (int pe = 0; pe < kPes; ++pe)
      map[pe] = static_cast<int>(
          static_cast<std::int64_t>(pe) * shards / kPes);
    sim::ParallelEngine par(cfg, std::move(map));
    auto digests =
        std::make_shared<std::vector<std::uint64_t>>(kPes,
                                                     1469598103934665603ull);
    auto* parPtr = &par;
    for (int pe = 0; pe < kPes; ++pe) {
      const double start = 0.25 + 0.25 * (pe % 17);
      par.atLocal(pe, start, [digests, parPtr, pe, start] {
        (*digests)[static_cast<std::size_t>(pe)] =
            fnv(&start, sizeof start, (*digests)[static_cast<std::size_t>(pe)]);
        if (pe % 512 != 0) return;
        const int dst = (pe + kPes / 2) % kPes;
        const double when = start + 1.0;
        parPtr->atRemote(dst, pe, when, [digests, dst, when] {
          (*digests)[static_cast<std::size_t>(dst)] =
              fnv(&when, sizeof when,
                  (*digests)[static_cast<std::size_t>(dst)]);
        });
      });
    }
    par.run();
    std::uint64_t h = fnv(&kPes, sizeof kPes);
    for (const std::uint64_t d : *digests) h = fnv(&d, sizeof d, h);
    const std::uint64_t events = par.executedEvents();
    h = fnv(&events, sizeof events, h);
    return h;
  };
  const std::uint64_t serial = run(/*shards=*/1, /*threads=*/1);
  EXPECT_EQ(serial, run(/*shards=*/8, /*threads=*/1));
  EXPECT_EQ(serial, run(/*shards=*/8, /*threads=*/2));
}

// ---------------------------------------------------------------------------
// Pingpong gate.

TEST(ParallelDeterminism, PingpongIsShardCountInvariant) {
  const PingResult one = runPingpong(/*shards=*/1, /*threads=*/1, 4096, 40);
  EXPECT_GT(one.totalRtt, 0.0);
  EXPECT_GT(one.events, 0u);
  for (const int shards : {2, 4, 8}) {
    const PingResult s = runPingpong(shards, /*threads=*/1, 4096, 40);
    EXPECT_EQ(one, s) << "shards=" << shards;
  }
}

TEST(ParallelDeterminism, PingpongIsThreadCountInvariant) {
  // Same partition, different host parallelism: 1 worker (inline sequential
  // windows) vs 2 and 4 OS threads through the barrier pool. This is the
  // configuration TSan runs.
  const PingResult inline1 = runPingpong(/*shards=*/4, /*threads=*/1, 4096, 40);
  const PingResult pool2 = runPingpong(/*shards=*/4, /*threads=*/2, 4096, 40);
  const PingResult pool4 = runPingpong(/*shards=*/4, /*threads=*/4, 4096, 40);
  EXPECT_EQ(inline1, pool2);
  EXPECT_EQ(inline1, pool4);
}

TEST(ParallelDeterminism, WindowedPingpongMatchesLegacyEngine) {
  const PingResult legacy = runPingpong(/*shards=*/0, /*threads=*/0, 4096, 40);
  const PingResult windowed = runPingpong(/*shards=*/1, /*threads=*/1, 4096, 40);
  // Everything except the trace digest (different id minting, see header).
  EXPECT_EQ(legacy.totalRtt, windowed.totalRtt);
  EXPECT_EQ(legacy.horizon, windowed.horizon);
  EXPECT_EQ(legacy.digest, windowed.digest);
  EXPECT_EQ(legacy.events, windowed.events);
}

// ---------------------------------------------------------------------------
// Crash-storm gate (the soak workload: fail-stop faults, buddy checkpoints,
// epoch-guarded restart, all under the windowed engine).

TEST(ParallelDeterminism, CrashStormIsShardCountInvariant) {
  // Place two fail-stop crashes relative to the fault-free horizon, exactly
  // like bench/soak_faults.cpp does.
  const StencilResult clean =
      runStencil(/*shards=*/1, /*threads=*/1, 12, "", 0, -1.0);
  ASSERT_GT(clean.horizon, 0.0);
  const std::string spec =
      "pe_crash@" + std::to_string(0.70 * clean.horizon) + ",pe_crash@" +
      std::to_string(0.90 * clean.horizon);
  const double ckptPeriod = clean.horizon / 10.0;

  const StencilResult one =
      runStencil(/*shards=*/1, /*threads=*/1, 12, spec, 1, ckptPeriod);
  ASSERT_FALSE(one.field.empty());
  // The crash run recovered to the fault-free field, and did more work.
  EXPECT_EQ(one.field, clean.field);
  EXPECT_GT(one.horizon, clean.horizon);

  for (const int shards : {2, 4}) {  // 4 nodes: 4 shards is fully split
    const StencilResult s =
        runStencil(shards, /*threads=*/1, 12, spec, 1, ckptPeriod);
    EXPECT_EQ(one, s) << "shards=" << shards;
  }
  // The soak configuration CI exercises: 4 shards on 2 worker threads.
  const StencilResult soak =
      runStencil(/*shards=*/4, /*threads=*/2, 12, spec, 1, ckptPeriod);
  EXPECT_EQ(one.horizon, soak.horizon);
  EXPECT_EQ(one.events, soak.events);
  EXPECT_EQ(one.trace, soak.trace);
  EXPECT_EQ(one.field, soak.field);
}

// ---------------------------------------------------------------------------
// PGAS atomic-storm gate: every PE hammers remote fetch-add/compare-swap at
// shared cells and streams puts at its ring neighbor through the PGAS
// runtime, then fences and enters the team barrier. The RMWs execute at the
// target in the fabric's canonical delivery order, so the final segment
// images, the op counters, the horizon, and the merged causal trace must be
// bit-identical across shard and worker-thread counts.

struct PgasStormResult {
  double horizon = 0.0;
  std::uint64_t events = 0;
  std::uint64_t segments = 0;
  std::uint64_t counters = 0;
  std::uint64_t trace = 0;

  bool operator==(const PgasStormResult&) const = default;
};

PgasStormResult runPgasStorm(int shards, int threads) {
  charm::MachineConfig machine = harness::abeMachine(8, 1);
  machine.shards = shards;
  machine.shardThreads = threads;
  constexpr std::size_t kSeg = 32 * 1024;
  harness::PgasWorld world(machine, pgas::dartIbCosts(), kSeg);
  world.enableTracing();
  pgas::Pgas& pg = world.pgas();
  const pgas::Gptr cells = pg.alloc(8 * 8);
  const pgas::Gptr block = pg.alloc(512);
  const pgas::Gptr src = pg.alloc(512);
  const int n = world.numPes();
  for (int p = 0; p < n; ++p) {
    auto* s = static_cast<std::byte*>(pg.addr(p, src));
    for (std::size_t i = 0; i < 512; ++i)
      s[i] = std::byte(static_cast<unsigned char>(p * 31 + i));
  }
  for (int p = 0; p < n; ++p) {
    world.seedOn(p, [&pg, p, n, cells, block, src]() {
      for (int k = 0; k < 6; ++k) {
        pg.fetchAdd(p, 0, cells.at(8 * static_cast<std::size_t>(k % 8)),
                    p + 1);
        if (k % 2 == 0) pg.compareSwap(p, (p + 1) % n, cells.at(8), k, k + p);
        pg.put(p, (p + 1) % n, block, pg.addr(p, src), 512);
      }
      pg.fence(p, [&pg, p]() { pg.barrier(p, [] {}); });
    });
  }
  world.run();

  PgasStormResult r;
  r.horizon = world.horizon();
  r.events = world.executedEvents();
  std::uint64_t h = 1469598103934665603ull;
  for (int p = 0; p < n; ++p) h = fnv(pg.addr(p, pgas::Gptr{0, kSeg}), kSeg, h);
  r.segments = h;
  const std::uint64_t counts[] = {pg.putsIssued(),  pg.getsIssued(),
                                  pg.atomicsIssued(), pg.bytesPut(),
                                  pg.failedOps(),   pg.barriersCompleted()};
  r.counters = fnv(counts, sizeof counts);
  r.trace = traceDigest(world.traceEvents());
  return r;
}

TEST(PgasParallelDeterminism, AtomicStormIsShardCountInvariant) {
  const PgasStormResult one = runPgasStorm(/*shards=*/1, /*threads=*/1);
  EXPECT_GT(one.events, 0u);
  for (const int shards : {2, 4}) {
    const PgasStormResult s = runPgasStorm(shards, /*threads=*/1);
    EXPECT_EQ(one, s) << "shards=" << shards;
  }
}

TEST(PgasParallelDeterminism, AtomicStormIsThreadCountInvariant) {
  const PgasStormResult inline1 = runPgasStorm(/*shards=*/4, /*threads=*/1);
  const PgasStormResult pool2 = runPgasStorm(/*shards=*/4, /*threads=*/2);
  EXPECT_EQ(inline1, pool2);
}

TEST(ParallelDeterminism, WindowedStencilMatchesLegacyEngine) {
  // Fault-free only: under faults the windowed engine defers checkpoint
  // work to serial boundaries (extra engine events at slightly different
  // instants than legacy's inline calls), so the faulted timelines are each
  // internally deterministic but not mutually comparable. The crash-storm
  // gate is the shard-count invariance test above.
  const StencilResult legacy = runStencil(/*shards=*/0, /*threads=*/0, 12, "",
                                          0, -1.0, /*withTrace=*/false);
  const StencilResult windowed = runStencil(/*shards=*/1, /*threads=*/1, 12,
                                            "", 0, -1.0, /*withTrace=*/false);
  ASSERT_GT(legacy.horizon, 0.0);
  EXPECT_EQ(legacy.horizon, windowed.horizon);
  EXPECT_EQ(legacy.events, windowed.events);
  EXPECT_EQ(legacy.field, windowed.field);
}

}  // namespace
