// Tests for the §6 extensions: strided destination channels and multicast
// groups, on both machine layers.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ckdirect/ckdirect.hpp"
#include "harness/machines.hpp"

namespace ckd::direct {
namespace {

constexpr std::uint64_t kOob = 0xFFF1222233334444ull;

charm::MachineConfig machineFor(bool bgp) {
  return bgp ? harness::surveyorMachine(2, 1) : harness::abeMachine(2, 1);
}

class Strided : public ::testing::TestWithParam<bool> {};

TEST_P(Strided, RowsLandInsideMatrix) {
  // The paper's §2 motivating example: deliver directly into "a row in the
  // middle of a matrix" — here, 4 consecutive rows of a 16x8 matrix.
  charm::Runtime rts(machineFor(GetParam()));
  const int rows = 16, cols = 8;
  const int blockCount = 4, firstRow = 6;
  std::vector<double> matrix(static_cast<std::size_t>(rows * cols), -1.0);
  std::vector<double> send(static_cast<std::size_t>(blockCount * cols));
  for (std::size_t i = 0; i < send.size(); ++i)
    send[i] = static_cast<double>(i) + 100.0;

  int arrivals = 0;
  Handle h = createStridedHandle(
      rts, 1, matrix.data() + firstRow * cols,
      /*blockBytes=*/cols * sizeof(double),
      /*strideBytes=*/cols * sizeof(double),  // contiguous rows
      blockCount, kOob, [&] { ++arrivals; });
  assocLocal(h, 0, send.data());
  rts.seed([&] { put(h); });
  rts.run();

  ASSERT_EQ(arrivals, 1);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const double got = matrix[static_cast<std::size_t>(r * cols + c)];
      if (r >= firstRow && r < firstRow + blockCount) {
        EXPECT_DOUBLE_EQ(got, 100.0 + (r - firstRow) * cols + c)
            << "row " << r << " col " << c;
      } else {
        EXPECT_DOUBLE_EQ(got, -1.0) << "row " << r << " col " << c;
      }
    }
}

TEST_P(Strided, GapsAreNeverTouched) {
  // Blocks with true gaps: stride 3 blocks, only the block itself written.
  charm::Runtime rts(machineFor(GetParam()));
  const std::size_t blockDoubles = 4;
  const int blockCount = 5;
  const std::size_t strideDoubles = 12;
  std::vector<double> area(strideDoubles * blockCount, -7.0);
  std::vector<double> send(blockDoubles * blockCount, 3.5);
  int arrivals = 0;
  Handle h = createStridedHandle(rts, 1, area.data(),
                                 blockDoubles * sizeof(double),
                                 strideDoubles * sizeof(double), blockCount,
                                 kOob, [&] { ++arrivals; });
  assocLocal(h, 0, send.data());
  rts.seed([&] { put(h); });
  rts.run();
  ASSERT_EQ(arrivals, 1);
  for (int b = 0; b < blockCount; ++b)
    for (std::size_t i = 0; i < strideDoubles; ++i) {
      const double got = area[static_cast<std::size_t>(b) * strideDoubles + i];
      if (i < blockDoubles) {
        EXPECT_DOUBLE_EQ(got, 3.5);
      } else if (static_cast<std::size_t>(b) * strideDoubles + i <
                 (blockCount - 1) * strideDoubles + blockDoubles) {
        EXPECT_DOUBLE_EQ(got, -7.0) << "gap touched at block " << b;
      }
    }
}

TEST_P(Strided, RepeatedIterations) {
  charm::Runtime rts(machineFor(GetParam()));
  const std::size_t cols = 8;
  const int blockCount = 3;
  std::vector<double> area(cols * blockCount, 0.0);
  std::vector<double> send(cols * blockCount, 0.0);
  int arrivals = 0;
  Handle h = createStridedHandle(rts, 1, area.data(), cols * sizeof(double),
                                 cols * sizeof(double), blockCount, kOob,
                                 [&] {
                                   ++arrivals;
                                   ready(h);
                                 });
  assocLocal(h, 0, send.data());
  for (int r = 1; r <= 3; ++r)
    rts.engine().at(r * 1000.0, [&, r] {
      send.assign(send.size(), static_cast<double>(r));
      put(h);
    });
  rts.run();
  EXPECT_EQ(arrivals, 3);
  EXPECT_DOUBLE_EQ(area.front(), 3.0);
  // area.back() holds the re-armed sentinel (ready() rewrote it); the
  // second-to-last element still carries the final payload.
  EXPECT_DOUBLE_EQ(area[area.size() - 2], 3.0);
}

INSTANTIATE_TEST_SUITE_P(BothMachines, Strided, ::testing::Bool());

TEST(StridedDeath, OverlappingBlocksRejected) {
  charm::Runtime rts(harness::abeMachine(2, 1));
  std::vector<double> area(64);
  EXPECT_DEATH(createStridedHandle(rts, 1, area.data(), 64, 32, 4, kOob,
                                   [] {}),
               "overlap");
}

class MulticastTest : public ::testing::TestWithParam<bool> {};

TEST_P(MulticastTest, OneBufferManyReceivers) {
  // §2: "the same data [can] be sent to different receivers along
  // different CkDirect channels without creating multiple copies of it."
  const bool bgp = GetParam();
  charm::Runtime rts(bgp ? harness::surveyorMachine(4, 1)
                         : harness::abeMachine(4, 1));
  const std::size_t n = 64;
  std::vector<double> send(n, 0.0);
  struct Sink {
    std::vector<double> recv;
    int arrivals = 0;
  };
  std::vector<Sink> sinks(3);
  Multicast group;
  for (int i = 0; i < 3; ++i) {
    sinks[static_cast<std::size_t>(i)].recv.assign(n, 0.0);
    Sink* sink = &sinks[static_cast<std::size_t>(i)];
    Handle h = createHandle(rts, i + 1, sink->recv.data(), n * 8, kOob,
                            [sink] { ++sink->arrivals; });
    assocLocal(h, 0, send.data());
    group.add(h);
  }
  EXPECT_EQ(group.fanout(), 3u);

  for (int r = 1; r <= 2; ++r)
    rts.engine().at(r * 1000.0, [&, r] {
      if (r > 1) group.ready();  // receivers re-arm (driver-side for test)
      send.assign(n, static_cast<double>(r));
      group.put();
    });
  rts.run();
  for (const auto& sink : sinks) {
    EXPECT_EQ(sink.arrivals, 2);
    EXPECT_DOUBLE_EQ(sink.recv[0], 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(BothMachines, MulticastTest, ::testing::Bool());

}  // namespace
}  // namespace ckd::direct
