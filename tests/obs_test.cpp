// Streaming telemetry (src/obs): histogram accuracy, registry arming,
// flight-recorder sampling, and the PR's acceptance gates — streaming SLO
// percentiles vs post-hoc CausalGraph numbers within the documented bucket
// error, metrics-on vs metrics-off bit-identity (serial and sharded),
// shard-invariance of merged counts, and Perfetto counter tracks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "harness/profile.hpp"
#include "harness/trace_export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "pgas/pgas.hpp"
#include "sim/causal.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"

namespace {

using namespace ckd;

// The bucket-resolution budget for streaming-vs-exact comparisons: the
// histogram guarantees kRelativeError (1/64); doubled to absorb the
// different tie conventions of an exact order statistic at small counts.
constexpr double kBucketBudget = 2.0 * obs::Histogram::kRelativeError;

double exactPercentile(std::vector<double> values, double q) {
  EXPECT_FALSE(values.empty());
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

double relDiff(double a, double b) {
  return b != 0.0 ? std::fabs(a - b) / std::fabs(b) : std::fabs(a);
}

std::uint64_t fnv(const void* data, std::size_t bytes,
                  std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t traceDigest(const std::vector<sim::TraceEvent>& events) {
  std::uint64_t h = 1469598103934665603ull;
  for (const sim::TraceEvent& ev : events) {
    h = fnv(&ev.time, sizeof ev.time, h);
    h = fnv(&ev.id, sizeof ev.id, h);
    h = fnv(&ev.parent, sizeof ev.parent, h);
    h = fnv(&ev.value, sizeof ev.value, h);
    h = fnv(&ev.pe, sizeof ev.pe, h);
    h = fnv(&ev.aux, sizeof ev.aux, h);
    const auto tag = static_cast<unsigned char>(ev.tag);
    const auto phase = static_cast<unsigned char>(ev.phase);
    h = fnv(&tag, 1, h);
    h = fnv(&phase, 1, h);
  }
  return h;
}

/// The "slo.<name>" summary object out of a profile's telemetry block.
const util::JsonValue* sloSummary(const harness::ProfileReport& profile,
                                  const std::string& name) {
  if (profile.telemetry.isNull()) return nullptr;
  const util::JsonValue* slo = profile.telemetry.find("slo");
  if (slo == nullptr) return nullptr;
  for (std::size_t i = 0; i < slo->size(); ++i)
    if (slo->at(i).at("name").asString() == name) return &slo->at(i);
  return nullptr;
}

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, CountsSumsAndExactStatsAreExact) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  const std::vector<double> samples = {3.0, 1.5, 20.0, 0.25, 100.0};
  double sum = 0.0;
  for (const double v : samples) {
    h.record(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), sum / 5.0);
}

TEST(Histogram, PercentileWithinDocumentedRelativeError) {
  obs::Histogram h;
  // Deterministic pseudo-random spread over five orders of magnitude.
  std::vector<double> values;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double u = static_cast<double>(x % 1000000) / 1000000.0;
    values.push_back(0.05 * std::pow(10.0, 5.0 * u));
    h.record(values.back());
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = exactPercentile(values, q);
    EXPECT_LE(relDiff(h.percentile(q), exact), kBucketBudget)
        << "q=" << q << " hist=" << h.percentile(q) << " exact=" << exact;
  }
}

TEST(Histogram, EdgeBucketsHoldNonPositiveAndHugeSamples) {
  obs::Histogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(1e30);  // beyond the top octave -> overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(obs::Histogram::bucketFor(0.0), 0);
  EXPECT_EQ(obs::Histogram::bucketFor(-1.0), 0);
  EXPECT_EQ(obs::Histogram::bucketFor(1e30), obs::Histogram::kBuckets - 1);
  // The overflow bucket's representative value is its lower bound.
  EXPECT_GT(h.percentile(1.0), 0.0);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  obs::Histogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    const double v = 0.7 * i;
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  for (const double q : {0.1, 0.5, 0.99})
    EXPECT_DOUBLE_EQ(a.percentile(q), combined.percentile(q));
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile(0.5), 0.0);
}

TEST(Histogram, AddCountsAndPercentileFromCountsRoundTrip) {
  obs::Histogram h;
  for (int i = 1; i <= 64; ++i) h.record(static_cast<double>(i));
  std::vector<std::uint64_t> counts;
  const std::uint64_t total = h.addCounts(counts);
  EXPECT_EQ(total, 64u);
  EXPECT_EQ(counts.size(),
            static_cast<std::size_t>(obs::Histogram::kBuckets));
  EXPECT_DOUBLE_EQ(obs::Histogram::percentileFromCounts(counts, total, 0.5),
                   h.percentile(0.5));
  // Accumulates (does not overwrite): adding twice doubles every bucket.
  const std::uint64_t total2 = h.addCounts(counts);
  EXPECT_EQ(total2, 64u);
  std::uint64_t folded = 0;
  for (const std::uint64_t c : counts) folded += c;
  EXPECT_EQ(folded, 128u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry / TraceRecorder compile-out

TEST(MetricsRegistry, DisarmedRecordingIsDropped) {
  obs::MetricsRegistry reg;
  reg.record(obs::Slo::kMsgRtt, 5.0);
  EXPECT_EQ(reg.slo(obs::Slo::kMsgRtt).count(), 0u);
  reg.arm();
  reg.record(obs::Slo::kMsgRtt, 5.0);
  reg.record(obs::Slo::kPut, 7.0);
  EXPECT_EQ(reg.slo(obs::Slo::kMsgRtt).count(), 1u);
  EXPECT_EQ(reg.slo(obs::Slo::kPut).count(), 1u);
  EXPECT_EQ(reg.slo(obs::Slo::kRequest).count(), 0u);

  obs::MetricsRegistry other;
  other.arm();
  other.record(obs::Slo::kMsgRtt, 9.0);
  reg.mergeFrom(other);
  EXPECT_EQ(reg.slo(obs::Slo::kMsgRtt).count(), 2u);
}

TEST(TraceRecorder, RecordLazySkipsClosureWhileDisabled) {
  sim::TraceRecorder trace;
  int evaluated = 0;
  trace.recordLazy(1.0, 0, sim::TraceTag::kSchedPump, [&evaluated] {
    ++evaluated;
    return 42.0;
  });
  EXPECT_EQ(evaluated, 0);  // ring disabled: the closure may not run
  EXPECT_EQ(trace.ringSize(), 0u);
  EXPECT_EQ(trace.count(sim::TraceTag::kSchedPump), 1u);  // counter still on

  trace.enable();
  trace.recordLazy(2.0, 0, sim::TraceTag::kSchedPump, [&evaluated] {
    ++evaluated;
    return 42.0;
  });
  EXPECT_EQ(evaluated, 1);
  EXPECT_EQ(trace.ringSize(), 1u);
}

// ---------------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorder, SamplesProbesAtIntervalIntoBoundedRing) {
  obs::FlightRecorder fr;
  EXPECT_FALSE(fr.armed());
  EXPECT_TRUE(std::isinf(fr.dueAt()));

  double gauge = 0.0;
  fr.addProbe("gauge", "1", [&gauge] { return gauge; });
  obs::Histogram hist;
  fr.watch("slo.test", &hist);
  fr.setInterval(10.0);
  fr.setCapacity(4);
  EXPECT_TRUE(fr.armed());
  EXPECT_EQ(fr.seriesCount(), 5u);  // gauge + count/p50/p99/p999

  for (int i = 1; i <= 6; ++i) {
    gauge = static_cast<double>(i);
    hist.record(static_cast<double>(i));
    fr.sample(10.0 * i);
  }
  EXPECT_EQ(fr.snapshotCount(), 4u);  // ring capacity
  EXPECT_EQ(fr.droppedSnapshots(), 2u);

  const util::JsonValue doc = fr.toJson();
  EXPECT_EQ(doc.at("schema").asString(), "ckd.metrics.v1");
  EXPECT_DOUBLE_EQ(doc.at("interval_us").asNumber(), 10.0);
  EXPECT_EQ(doc.at("series").size(), 5u);
  // The oldest retained snapshot is t=30; the gauge series tracks it.
  const util::JsonValue& points = doc.at("series").at(0).at("points");
  EXPECT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points.at(0).at(0).asNumber(), 30.0);
  EXPECT_DOUBLE_EQ(points.at(0).at(1).asNumber(), 3.0);
  // Watch series report the per-window count (one sample per interval).
  const util::JsonValue& counts = doc.at("series").at(1).at("points");
  EXPECT_DOUBLE_EQ(counts.at(0).at(1).asNumber(), 1.0);

  fr.clearSamples();
  EXPECT_EQ(fr.snapshotCount(), 0u);
}

TEST(FlightRecorder, SerialEnginePiggybackSampling) {
  sim::Engine engine;
  obs::FlightRecorder fr;
  fr.setInterval(5.0);
  fr.addProbe("events", "1", [&engine] {
    return static_cast<double>(engine.executedEvents());
  });
  engine.attachSampler(&fr);
  for (int i = 0; i < 10; ++i) engine.at(2.0 * i, [] {});
  engine.run();
  // 18 us of virtual time at a 5 us interval: samples fire at the first
  // event whose timestamp crosses each deadline.
  EXPECT_GE(fr.snapshotCount(), 3u);
  EXPECT_LE(fr.snapshotCount(), 4u);
}

// ---------------------------------------------------------------------------
// Streaming vs post-hoc CausalGraph accuracy (acceptance gate)

struct StreamingRun {
  harness::ProfileReport profile;
  double result = 0.0;
};

StreamingRun runCharmPingpong(double metricsInterval, bool trace,
                              int shards = 0) {
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  machine.metricsInterval_us = metricsInterval;
  machine.shards = shards;
  machine.shardThreads = shards > 0 ? 1 : 0;
  harness::PingpongConfig cfg;
  cfg.bytes = 100;
  cfg.iterations = 400;
  cfg.trace = trace;
  StreamingRun run;
  cfg.profile = &run.profile;
  run.result = harness::charmPingpongRtt(machine, cfg);
  return run;
}

TEST(StreamingAccuracy, CharmMsgRttMatchesCausalGraph) {
  const StreamingRun run = runCharmPingpong(50.0, /*trace=*/true);
  const util::JsonValue* slo = sloSummary(run.profile, "slo.msg_rtt");
  ASSERT_NE(slo, nullptr);

  const sim::CausalGraph graph(run.profile.traceEvents);
  std::vector<double> totals;
  // Mirror CausalGraph::messageLatency()'s chain selection (complete
  // message chains with an opening span, ending at scheduler delivery).
  for (const sim::CausalChain& c : graph.chains()) {
    if (!c.complete || c.kind == sim::TraceTag::kDirectPut ||
        c.kind == sim::TraceTag::kCount ||
        c.endTag != sim::TraceTag::kSchedDeliver)
      continue;
    totals.push_back(c.breakdown().total_us);
  }
  ASSERT_FALSE(totals.empty());
  EXPECT_EQ(static_cast<std::size_t>(slo->at("count").asNumber()),
            totals.size());
  for (const auto& [key, q] :
       {std::pair<const char*, double>{"p50_us", 0.50},
        std::pair<const char*, double>{"p99_us", 0.99}}) {
    const double exact = exactPercentile(totals, q);
    EXPECT_LE(relDiff(slo->at(key).asNumber(), exact), kBucketBudget)
        << key << " streaming=" << slo->at(key).asNumber()
        << " causal=" << exact;
  }
}

TEST(StreamingAccuracy, CkdirectPutMatchesCausalGraph) {
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  machine.metricsInterval_us = 50.0;
  harness::PingpongConfig cfg;
  cfg.bytes = 256;
  cfg.iterations = 300;
  cfg.trace = true;
  harness::ProfileReport profile;
  cfg.profile = &profile;
  harness::ckdirectPingpongRtt(machine, cfg);

  const util::JsonValue* slo = sloSummary(profile, "slo.put");
  ASSERT_NE(slo, nullptr);
  const sim::CausalGraph graph(profile.traceEvents);
  std::vector<double> totals;
  for (const sim::CausalChain& c : graph.chains()) {
    if (!c.complete || c.kind != sim::TraceTag::kDirectPut) continue;
    totals.push_back(c.breakdown().total_us);
  }
  ASSERT_FALSE(totals.empty());
  EXPECT_EQ(static_cast<std::size_t>(slo->at("count").asNumber()),
            totals.size());
  const double exact = exactPercentile(totals, 0.99);
  EXPECT_LE(relDiff(slo->at("p99_us").asNumber(), exact), kBucketBudget);
}

TEST(StreamingAccuracy, PgasRequestMatchesCausalGraph) {
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  machine.metricsInterval_us = 50.0;
  harness::PingpongConfig cfg;
  cfg.bytes = 512;
  cfg.iterations = 300;
  cfg.trace = true;
  harness::ProfileReport profile;
  cfg.profile = &profile;
  harness::pgasBlockingPutLatency(machine, pgas::dartIbCosts(), cfg);

  const util::JsonValue* slo = sloSummary(profile, "slo.request");
  ASSERT_NE(slo, nullptr);
  const sim::CausalGraph graph(profile.traceEvents);
  std::vector<double> totals;
  for (const sim::CausalChain& c : graph.chains()) {
    if (!c.complete || c.kind != sim::TraceTag::kPgasPut) continue;
    totals.push_back(c.breakdown().total_us);
  }
  ASSERT_FALSE(totals.empty());
  EXPECT_EQ(static_cast<std::size_t>(slo->at("count").asNumber()),
            totals.size());
  const double exact = exactPercentile(totals, 0.99);
  EXPECT_LE(relDiff(slo->at("p99_us").asNumber(), exact), kBucketBudget);
}

// ---------------------------------------------------------------------------
// Metrics-on vs metrics-off bit-identity (acceptance gate)

TEST(MetricsDeterminism, SerialOnOffBitIdentical) {
  const StreamingRun off = runCharmPingpong(0.0, /*trace=*/true);
  const StreamingRun on = runCharmPingpong(25.0, /*trace=*/true);
  EXPECT_DOUBLE_EQ(off.result, on.result);
  EXPECT_DOUBLE_EQ(off.profile.horizon_us, on.profile.horizon_us);
  EXPECT_EQ(off.profile.traceEvents.size(), on.profile.traceEvents.size());
  EXPECT_EQ(traceDigest(off.profile.traceEvents),
            traceDigest(on.profile.traceEvents));
  EXPECT_TRUE(off.profile.telemetry.isNull());
  EXPECT_FALSE(on.profile.telemetry.isNull());
}

TEST(MetricsDeterminism, ShardedOnOffBitIdentical) {
  const StreamingRun off = runCharmPingpong(0.0, /*trace=*/true, /*shards=*/2);
  const StreamingRun on = runCharmPingpong(25.0, /*trace=*/true, /*shards=*/2);
  EXPECT_DOUBLE_EQ(off.result, on.result);
  EXPECT_DOUBLE_EQ(off.profile.horizon_us, on.profile.horizon_us);
  EXPECT_EQ(traceDigest(off.profile.traceEvents),
            traceDigest(on.profile.traceEvents));
}

TEST(MetricsDeterminism, MergedSloCountsShardInvariant) {
  const StreamingRun serial = runCharmPingpong(25.0, /*trace=*/false);
  const StreamingRun sharded =
      runCharmPingpong(25.0, /*trace=*/false, /*shards=*/2);
  const util::JsonValue* a = sloSummary(serial.profile, "slo.msg_rtt");
  const util::JsonValue* b = sloSummary(sharded.profile, "slo.msg_rtt");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(a->at("count").asNumber(), b->at("count").asNumber());
  EXPECT_DOUBLE_EQ(a->at("p50_us").asNumber(), b->at("p50_us").asNumber());
  EXPECT_DOUBLE_EQ(a->at("p99_us").asNumber(), b->at("p99_us").asNumber());
}

// ---------------------------------------------------------------------------
// Perfetto counter tracks under shards (satellite gate)

std::string readAll(const char* path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class PerfettoCounters : public ::testing::TestWithParam<int> {};

TEST_P(PerfettoCounters, TelemetrySeriesBecomeCounterTracks) {
  const int shards = GetParam();
  charm::MachineConfig machine = harness::abeMachine(8, 1);
  machine.metricsInterval_us = 25.0;
  machine.shards = shards;
  machine.shardThreads = 1;
  harness::PingpongConfig cfg;
  cfg.bytes = 100;
  cfg.iterations = 200;
  cfg.trace = true;
  harness::ProfileReport profile;
  cfg.profile = &profile;
  harness::charmPingpongRtt(machine, cfg);
  profile.label = "counters";
  ASSERT_FALSE(profile.telemetry.isNull());

  const std::string path =
      "PERFETTO_counters_" + std::to_string(shards) + ".json";
  std::vector<harness::ProfileReport> profiles;
  profiles.push_back(std::move(profile));
  harness::writePerfettoTrace(path, "obs_test", profiles);
  const util::JsonValue doc = util::JsonValue::parse(readAll(path.c_str()));
  std::remove(path.c_str());

  std::size_t counters = 0;
  bool sawSlo = false, sawEvents = false;
  const util::JsonValue& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::JsonValue& ev = events.at(i);
    if (ev.at("ph").asString() != "C") continue;
    ++counters;
    const std::string& name = ev.at("name").asString();
    EXPECT_EQ(name.rfind("ckd/", 0), 0u) << name;
    if (name == "ckd/slo.msg_rtt.count") sawSlo = true;
    if (name == "ckd/events") sawEvents = true;
    EXPECT_TRUE(ev.at("args").find("value") != nullptr);
  }
  EXPECT_GT(counters, 0u);
  EXPECT_TRUE(sawSlo);
  EXPECT_TRUE(sawEvents);
}

INSTANTIATE_TEST_SUITE_P(Shards, PerfettoCounters, ::testing::Values(2, 4));

}  // namespace
