// Unit tests for the discrete-event engine, simulated processors, and the
// trace recorder.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/processor.hpp"
#include "sim/trace.hpp"

namespace ckd::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(3.0, [&] { order.push_back(3); });
  eng.at(1.0, [&] { order.push_back(1); });
  eng.at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eng.at(5.0, [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, AfterIsRelative) {
  Engine eng;
  double firedAt = -1;
  eng.at(2.0, [&] { eng.after(3.0, [&] { firedAt = eng.now(); }); });
  eng.run();
  EXPECT_DOUBLE_EQ(firedAt, 5.0);
}

TEST(Engine, EventsCanScheduleAtSameInstant) {
  Engine eng;
  int count = 0;
  eng.at(1.0, [&] {
    eng.after(0.0, [&] { ++count; });
  });
  eng.run();
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.at(1.0, [&] { ++fired; });
  eng.at(10.0, [&] { ++fired; });
  eng.runUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StopAbortsRun) {
  Engine eng;
  int fired = 0;
  eng.at(1.0, [&] {
    ++fired;
    eng.stop();
  });
  eng.at(2.0, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.pendingEvents(), 1u);
}

TEST(Engine, CountsExecutedEvents) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.at(static_cast<Time>(i), [] {});
  eng.run();
  EXPECT_EQ(eng.executedEvents(), 7u);
}

TEST(EngineDeath, PastSchedulingAborts) {
  Engine eng;
  eng.at(5.0, [&] {
    EXPECT_DEATH(eng.at(1.0, [] {}), "past");
  });
  eng.run();
}

TEST(Processor, OccupyAdvancesFreeTime) {
  Processor p(0);
  EXPECT_DOUBLE_EQ(p.freeAt(), 0.0);
  EXPECT_DOUBLE_EQ(p.occupy(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(p.occupy(7.0, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(p.busyTotal(), 6.0);
  EXPECT_EQ(p.tasksRun(), 2u);
}

TEST(Processor, ExtendStretchesCurrentTask) {
  Processor p(0);
  p.occupy(0.0, 2.0);
  p.extend(3.0);
  EXPECT_DOUBLE_EQ(p.freeAt(), 5.0);
  EXPECT_DOUBLE_EQ(p.busyTotal(), 5.0);
}

TEST(Processor, UtilizationFraction) {
  Processor p(0);
  p.occupy(0.0, 2.5);
  EXPECT_DOUBLE_EQ(p.utilization(10.0), 0.25);
}

TEST(ProcessorDeath, DoubleBookingAborts) {
  Processor p(0);
  p.occupy(0.0, 5.0);
  EXPECT_DEATH(p.occupy(2.0, 1.0), "double-booked");
}

TEST(Trace, DisabledRecordsNothing) {
  TraceRecorder t;
  t.record(1.0, 0, "x");
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, RecordsAndCounts) {
  TraceRecorder t;
  t.enable(true);
  t.record(1.0, 0, "send", "to=1");
  t.record(2.0, 1, "recv");
  t.record(3.0, 0, "send");
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.countTag("send"), 2u);
  EXPECT_NE(t.toString().find("pe=1 recv"), std::string::npos);
}

}  // namespace
}  // namespace ckd::sim
