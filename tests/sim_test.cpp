// Unit tests for the discrete-event engine, simulated processors, and the
// trace recorder.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/processor.hpp"
#include "sim/trace.hpp"

namespace ckd::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(3.0, [&] { order.push_back(3); });
  eng.at(1.0, [&] { order.push_back(1); });
  eng.at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eng.at(5.0, [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, AfterIsRelative) {
  Engine eng;
  double firedAt = -1;
  eng.at(2.0, [&] { eng.after(3.0, [&] { firedAt = eng.now(); }); });
  eng.run();
  EXPECT_DOUBLE_EQ(firedAt, 5.0);
}

TEST(Engine, EventsCanScheduleAtSameInstant) {
  Engine eng;
  int count = 0;
  eng.at(1.0, [&] {
    eng.after(0.0, [&] { ++count; });
  });
  eng.run();
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.at(1.0, [&] { ++fired; });
  eng.at(10.0, [&] { ++fired; });
  eng.runUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StopAbortsRun) {
  Engine eng;
  int fired = 0;
  eng.at(1.0, [&] {
    ++fired;
    eng.stop();
  });
  eng.at(2.0, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.pendingEvents(), 1u);
}

TEST(Engine, CountsExecutedEvents) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.at(static_cast<Time>(i), [] {});
  eng.run();
  EXPECT_EQ(eng.executedEvents(), 7u);
}

TEST(EngineDeath, PastSchedulingAborts) {
  Engine eng;
  eng.at(5.0, [&] {
    EXPECT_DEATH(eng.at(1.0, [] {}), "past");
  });
  eng.run();
}

TEST(Processor, OccupyAdvancesFreeTime) {
  Processor p(0);
  EXPECT_DOUBLE_EQ(p.freeAt(), 0.0);
  EXPECT_DOUBLE_EQ(p.occupy(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(p.occupy(7.0, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(p.busyTotal(), 6.0);
  EXPECT_EQ(p.tasksRun(), 2u);
}

TEST(Processor, ExtendStretchesCurrentTask) {
  Processor p(0);
  p.occupy(0.0, 2.0);
  p.extend(3.0);
  EXPECT_DOUBLE_EQ(p.freeAt(), 5.0);
  EXPECT_DOUBLE_EQ(p.busyTotal(), 5.0);
}

TEST(Processor, UtilizationFraction) {
  Processor p(0);
  p.occupy(0.0, 2.5);
  EXPECT_DOUBLE_EQ(p.utilization(10.0), 0.25);
}

TEST(ProcessorDeath, DoubleBookingAborts) {
  Processor p(0);
  p.occupy(0.0, 5.0);
  EXPECT_DEATH(p.occupy(2.0, 1.0), "double-booked");
}

TEST(Trace, DisabledKeepsCountersButNoRing) {
  TraceRecorder t;
  t.record(1.0, 0, TraceTag::kSchedPump);
  EXPECT_EQ(t.ringSize(), 0u);
  EXPECT_EQ(t.ringHeapBytes(), 0u);
  // The fixed-size counters still tick so profiles work without the ring.
  EXPECT_EQ(t.count(TraceTag::kSchedPump), 1u);
}

TEST(Trace, RecordsAndCounts) {
  TraceRecorder t;
  t.enable();
  t.record(1.0, 0, TraceTag::kXportEager, 100.0);
  t.record(2.0, 1, TraceTag::kSchedDeliver);
  t.record(3.0, 0, TraceTag::kXportEager);
  EXPECT_EQ(t.ringSize(), 3u);
  EXPECT_EQ(t.count(TraceTag::kXportEager), 2u);
  EXPECT_NE(t.toString().find("pe=1 sched.deliver"), std::string::npos);
}

// Regression: runUntil() used to fast-forward now() to the deadline even
// when stop() aborted the loop with events at or before the deadline still
// queued — resuming then ran those events with time apparently going
// backwards.
TEST(Engine, StopDuringRunUntilDoesNotFastForward) {
  Engine eng;
  std::vector<double> firedAt;
  eng.at(1.0, [&] {
    firedAt.push_back(eng.now());
    eng.stop();
  });
  eng.at(2.0, [&] { firedAt.push_back(eng.now()); });
  eng.runUntil(5.0);
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);  // not 5.0: the 2.0 event is still due
  EXPECT_EQ(eng.pendingEvents(), 1u);
  eng.run();
  ASSERT_EQ(firedAt.size(), 2u);
  EXPECT_DOUBLE_EQ(firedAt[1], 2.0);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(Engine, RunUntilStillFastForwardsWhenDrained) {
  Engine eng;
  eng.at(1.0, [] {});
  eng.runUntil(5.0);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

// Regression for the heap rework (explicit vector + push/pop_heap replacing
// the const_cast move out of priority_queue::top()): a randomized stress
// where events keep scheduling more events must deliver every action in
// nondecreasing time order with intact captures.
TEST(Engine, HeapStressKeepsTimeMonotonic) {
  Engine eng;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  double last = -1.0;
  std::size_t fired = 0;
  std::size_t spawned = 0;
  std::function<void()> action = [&] {
    EXPECT_GE(eng.now(), last);
    last = eng.now();
    ++fired;
    // Big payload so a botched move would visibly corrupt the capture.
    const std::vector<std::uint64_t> payload(64, rng);
    while (spawned < 5000 && next() % 3 != 0) {
      ++spawned;
      const double delay = static_cast<double>(next() % 1000) / 10.0;
      eng.after(delay, [&, payload] {
        ASSERT_EQ(payload.size(), 64u);
        action();
      });
    }
  };
  for (int i = 0; i < 50; ++i) {
    ++spawned;
    eng.at(static_cast<Time>(next() % 100), [&] { action(); });
  }
  eng.run();
  EXPECT_EQ(fired, spawned);
  EXPECT_EQ(eng.executedEvents(), spawned);
}

}  // namespace
}  // namespace ckd::sim
