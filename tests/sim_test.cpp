// Unit tests for the discrete-event engine, simulated processors, and the
// trace recorder.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/processor.hpp"
#include "sim/trace.hpp"

namespace ckd::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(3.0, [&] { order.push_back(3); });
  eng.at(1.0, [&] { order.push_back(1); });
  eng.at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eng.at(5.0, [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, AfterIsRelative) {
  Engine eng;
  double firedAt = -1;
  eng.at(2.0, [&] { eng.after(3.0, [&] { firedAt = eng.now(); }); });
  eng.run();
  EXPECT_DOUBLE_EQ(firedAt, 5.0);
}

TEST(Engine, EventsCanScheduleAtSameInstant) {
  Engine eng;
  int count = 0;
  eng.at(1.0, [&] {
    eng.after(0.0, [&] { ++count; });
  });
  eng.run();
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.at(1.0, [&] { ++fired; });
  eng.at(10.0, [&] { ++fired; });
  eng.runUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StopAbortsRun) {
  Engine eng;
  int fired = 0;
  eng.at(1.0, [&] {
    ++fired;
    eng.stop();
  });
  eng.at(2.0, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.pendingEvents(), 1u);
}

TEST(Engine, CountsExecutedEvents) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.at(static_cast<Time>(i), [] {});
  eng.run();
  EXPECT_EQ(eng.executedEvents(), 7u);
}

TEST(EngineDeath, PastSchedulingAborts) {
  Engine eng;
  eng.at(5.0, [&] {
    EXPECT_DEATH(eng.at(1.0, [] {}), "past");
  });
  eng.run();
}

TEST(Processor, OccupyAdvancesFreeTime) {
  Processor p(0);
  EXPECT_DOUBLE_EQ(p.freeAt(), 0.0);
  EXPECT_DOUBLE_EQ(p.occupy(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(p.occupy(7.0, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(p.busyTotal(), 6.0);
  EXPECT_EQ(p.tasksRun(), 2u);
}

TEST(Processor, ExtendStretchesCurrentTask) {
  Processor p(0);
  p.occupy(0.0, 2.0);
  p.extend(3.0);
  EXPECT_DOUBLE_EQ(p.freeAt(), 5.0);
  EXPECT_DOUBLE_EQ(p.busyTotal(), 5.0);
}

TEST(Processor, UtilizationFraction) {
  Processor p(0);
  p.occupy(0.0, 2.5);
  EXPECT_DOUBLE_EQ(p.utilization(10.0), 0.25);
}

TEST(ProcessorDeath, DoubleBookingAborts) {
  Processor p(0);
  p.occupy(0.0, 5.0);
  EXPECT_DEATH(p.occupy(2.0, 1.0), "double-booked");
}

TEST(Trace, DisabledKeepsCountersButNoRing) {
  TraceRecorder t;
  t.record(1.0, 0, TraceTag::kSchedPump);
  EXPECT_EQ(t.ringSize(), 0u);
  EXPECT_EQ(t.ringHeapBytes(), 0u);
  // The fixed-size counters still tick so profiles work without the ring.
  EXPECT_EQ(t.count(TraceTag::kSchedPump), 1u);
}

TEST(Trace, RecordsAndCounts) {
  TraceRecorder t;
  t.enable();
  t.record(1.0, 0, TraceTag::kXportEager, 100.0);
  t.record(2.0, 1, TraceTag::kSchedDeliver);
  t.record(3.0, 0, TraceTag::kXportEager);
  EXPECT_EQ(t.ringSize(), 3u);
  EXPECT_EQ(t.count(TraceTag::kXportEager), 2u);
  EXPECT_NE(t.toString().find("pe=1 sched.deliver"), std::string::npos);
}

// Regression: runUntil() used to fast-forward now() to the deadline even
// when stop() aborted the loop with events at or before the deadline still
// queued — resuming then ran those events with time apparently going
// backwards.
TEST(Engine, StopDuringRunUntilDoesNotFastForward) {
  Engine eng;
  std::vector<double> firedAt;
  eng.at(1.0, [&] {
    firedAt.push_back(eng.now());
    eng.stop();
  });
  eng.at(2.0, [&] { firedAt.push_back(eng.now()); });
  eng.runUntil(5.0);
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);  // not 5.0: the 2.0 event is still due
  EXPECT_EQ(eng.pendingEvents(), 1u);
  eng.run();
  ASSERT_EQ(firedAt.size(), 2u);
  EXPECT_DOUBLE_EQ(firedAt[1], 2.0);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(Engine, RunUntilStillFastForwardsWhenDrained) {
  Engine eng;
  eng.at(1.0, [] {});
  eng.runUntil(5.0);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

// Regression for the heap rework (explicit vector + push/pop_heap replacing
// the const_cast move out of priority_queue::top()): a randomized stress
// where events keep scheduling more events must deliver every action in
// nondecreasing time order with intact captures.
TEST(Engine, HeapStressKeepsTimeMonotonic) {
  Engine eng;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  double last = -1.0;
  std::size_t fired = 0;
  std::size_t spawned = 0;
  std::function<void()> action = [&] {
    EXPECT_GE(eng.now(), last);
    last = eng.now();
    ++fired;
    // Big payload so a botched move would visibly corrupt the capture.
    const std::vector<std::uint64_t> payload(64, rng);
    while (spawned < 5000 && next() % 3 != 0) {
      ++spawned;
      const double delay = static_cast<double>(next() % 1000) / 10.0;
      eng.after(delay, [&, payload] {
        ASSERT_EQ(payload.size(), 64u);
        action();
      });
    }
  };
  for (int i = 0; i < 50; ++i) {
    ++spawned;
    eng.at(static_cast<Time>(next() % 100), [&] { action(); });
  }
  eng.run();
  EXPECT_EQ(fired, spawned);
  EXPECT_EQ(eng.executedEvents(), spawned);
}

// Regression: a stop() issued between runs (a fault callback firing after
// the previous loop already exited) was silently swallowed — run() reset the
// flag on entry, so the next loop executed events a halted engine should
// never have run. A pending stop must halt the next run() before its first
// event, then be consumed so the run after that proceeds normally.
TEST(Engine, StopIssuedBetweenRunsHaltsTheNextRun) {
  Engine eng;
  int fired = 0;
  eng.at(1.0, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);

  eng.stop();  // e.g. from a host-side callback between run() calls
  eng.at(2.0, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);  // the pending stop halted the loop immediately
  EXPECT_EQ(eng.pendingEvents(), 1u);

  eng.run();  // the flag was consumed on exit: this run proceeds
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StopIssuedBetweenRunsHaltsRunUntilWithoutFastForward) {
  Engine eng;
  int fired = 0;
  eng.stop();
  eng.at(1.0, [&] { ++fired; });
  eng.runUntil(5.0);
  EXPECT_EQ(fired, 0);
  // The stop aborted the loop with the 1.0 event still due, so now() must
  // not jump to the deadline (time would go backwards on resume).
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
  eng.runUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

// Same-instant cascade stress: events at one timestamp schedule children at
// that same timestamp, generation after generation. Every dispatch frees a
// slab slot that the child immediately recycles, so this pins down the
// tie-break contract under heavy slot reuse: ties execute in scheduling
// order (monotone seq), never in slot-index or recycling order.
TEST(Engine, SameInstantCascadesKeepSchedulingOrderAcrossRecycledSlots) {
  Engine eng;
  constexpr int kRoots = 64;
  constexpr int kGenerations = 4;
  std::vector<int> order;
  std::function<void(int, int)> fire = [&](int gen, int idx) {
    order.push_back(gen * kRoots + idx);
    if (gen + 1 < kGenerations)
      eng.at(1.0, [&fire, gen, idx] { fire(gen + 1, idx); });
  };
  for (int i = 0; i < kRoots; ++i) eng.at(1.0, [&fire, i] { fire(0, i); });
  eng.run();
  // Generation g's children were all scheduled after generation g-1's roots,
  // and within a generation in parent execution order — so the global order
  // is simply 0, 1, 2, ... across the whole cascade.
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kRoots * kGenerations));
  for (std::size_t i = 0; i < order.size(); ++i)
    ASSERT_EQ(order[i], static_cast<int>(i)) << "tie broke out of order";
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
}

// Randomized tie stress: times drawn from a tiny set force massive ties at
// every instant while executed events keep scheduling more, recycling slots
// mid-run. The invariant checked is the engine's full ordering contract:
// nondecreasing time, and within one instant strictly increasing scheduling
// order (the order at() was called process-wide).
TEST(Engine, RandomTiesBreakBySchedulingOrderUnderHeavyRecycling) {
  Engine eng;
  std::uint64_t rng = 0xDA942042E4DD58B5ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  struct Fired {
    double when;
    std::uint64_t schedId;
  };
  std::vector<Fired> fired;
  std::uint64_t schedId = 0;
  std::size_t spawned = 0;
  std::function<void()> action = [&] {
    fired.push_back(Fired{eng.now(), 0});  // schedId patched by the spawner
    while (spawned < 4000 && next() % 4 != 0) {
      ++spawned;
      // 0 keeps the tie at this instant; otherwise a tiny forward hop into
      // another crowded instant.
      const double delay = static_cast<double>(next() % 3);
      const std::uint64_t id = schedId++;
      eng.after(delay, [&, id] {
        action();
        fired.back().schedId = id;
      });
    }
  };
  for (int i = 0; i < 100; ++i) {
    ++spawned;
    const double when = static_cast<double>(next() % 3);
    const std::uint64_t id = schedId++;
    eng.at(when, [&, id] {
      action();
      fired.back().schedId = id;
    });
  }
  eng.run();
  ASSERT_EQ(fired.size(), spawned);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_GE(fired[i].when, fired[i - 1].when);
    if (fired[i].when == fired[i - 1].when) {
      ASSERT_GT(fired[i].schedId, fired[i - 1].schedId)
          << "same-instant tie broke out of scheduling order at event " << i;
    }
  }
}

}  // namespace
}  // namespace ckd::sim
