// Tests for the DCMF-like active message layer: short/normal handler split,
// Info header transport, request in-flight enforcement, completion order.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dcmf/dcmf.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "topo/torus3d.hpp"

namespace ckd {
namespace {

class DcmfTest : public ::testing::Test {
 protected:
  DcmfTest()
      : topo_(std::make_shared<topo::Torus3D>(2, 2, 2, 1)),
        fabric_(engine_, topo_, net::surveyorParams()),
        dcmf_(fabric_) {}

  sim::Engine engine_;
  topo::TopologyPtr topo_;
  net::Fabric fabric_;
  dcmf::DcmfContext dcmf_;
};

TEST(DcmfInfo, HoldsUpToSevenQuads) {
  dcmf::Info info;
  for (std::size_t i = 0; i < dcmf::Info::kMaxQuads; ++i)
    info.append({i, i * 2});
  EXPECT_EQ(info.quadCount(), 7u);
  EXPECT_EQ(info.wireBytes(), 112u);
  EXPECT_EQ(info.quad(3)[1], 6u);
  EXPECT_DEATH(info.append({0, 0}), "at most 7");
}

TEST(DcmfInfo, PointerRoundTrip) {
  int x = 42;
  const auto bits = dcmf::Info::packPointer(&x);
  EXPECT_EQ(dcmf::Info::unpackPointer<int>(bits), &x);
}

TEST_F(DcmfTest, ShortMessagesUseShortHandler) {
  int shortCalls = 0, normalCalls = 0;
  std::vector<std::byte> got;
  const auto proto = dcmf_.registerProtocol(
      [&](int, int, const dcmf::Info&, const std::byte* data,
          std::size_t bytes) {
        ++shortCalls;
        got.assign(data, data + bytes);
      },
      [&](int, int, const dcmf::Info&, std::size_t) {
        ++normalCalls;
        return dcmf::RecvSpec{};
      });
  std::vector<std::byte> payload(dcmf::kShortLimit - 1, std::byte{3});
  dcmf::Request req;
  dcmf_.send(proto, 0, 1, dcmf::Info{}, payload.data(), payload.size(), &req);
  engine_.run();
  EXPECT_EQ(shortCalls, 1);
  EXPECT_EQ(normalCalls, 0);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(dcmf_.shortDeliveries(), 1u);
}

TEST_F(DcmfTest, NormalMessagesLandInProvidedBuffer) {
  std::vector<std::byte> recvBuf(1024, std::byte{0});
  bool completed = false;
  const auto proto = dcmf_.registerProtocol(
      [](int, int, const dcmf::Info&, const std::byte*, std::size_t) {
        FAIL() << "normal-sized message hit the short handler";
      },
      [&](int, int, const dcmf::Info&, std::size_t /*bytes*/) {
        dcmf::RecvSpec spec;
        spec.buffer = recvBuf.data();
        spec.capacity = recvBuf.size();
        spec.on_complete = [&] { completed = true; };
        return spec;
      });
  std::vector<std::byte> payload(1024, std::byte{9});
  dcmf::Request req;
  dcmf_.send(proto, 0, 1, dcmf::Info{}, payload.data(), payload.size(), &req);
  engine_.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(recvBuf, payload);
  EXPECT_EQ(dcmf_.normalDeliveries(), 1u);
}

TEST_F(DcmfTest, InfoQuadsTravelWithTheMessage) {
  std::vector<std::byte> recvBuf(512);
  std::uint64_t seenA = 0, seenB = 0;
  const auto proto = dcmf_.registerProtocol(
      [](int, int, const dcmf::Info&, const std::byte*, std::size_t) {},
      [&](int, int, const dcmf::Info& info, std::size_t) {
        seenA = info.quad(0)[0];
        seenB = info.quad(1)[1];
        dcmf::RecvSpec spec;
        spec.buffer = recvBuf.data();
        spec.capacity = recvBuf.size();
        return spec;
      });
  dcmf::Info info;
  info.append({0xAAAA, 1});
  info.append({2, 0xBBBB});
  std::vector<std::byte> payload(512, std::byte{1});
  dcmf::Request req;
  dcmf_.send(proto, 1, 0, info, payload.data(), payload.size(), &req);
  engine_.run();
  EXPECT_EQ(seenA, 0xAAAAu);
  EXPECT_EQ(seenB, 0xBBBBu);
}

TEST_F(DcmfTest, RequestReuseWhileInFlightAborts) {
  const auto proto = dcmf_.registerProtocol(
      [](int, int, const dcmf::Info&, const std::byte*, std::size_t) {},
      [](int, int, const dcmf::Info&, std::size_t) {
        return dcmf::RecvSpec{};
      });
  std::vector<std::byte> payload(16, std::byte{1});
  dcmf::Request req;
  dcmf_.send(proto, 0, 1, dcmf::Info{}, payload.data(), payload.size(), &req);
  EXPECT_TRUE(req.inFlight);
  EXPECT_DEATH(dcmf_.send(proto, 0, 1, dcmf::Info{}, payload.data(),
                          payload.size(), &req),
               "in flight");
  engine_.run();
  EXPECT_FALSE(req.inFlight);  // released at local completion
}

TEST_F(DcmfTest, LocalCompletionAllowsRequestReuse) {
  const auto proto = dcmf_.registerProtocol(
      [](int, int, const dcmf::Info&, const std::byte*, std::size_t) {},
      [](int, int, const dcmf::Info&, std::size_t) {
        return dcmf::RecvSpec{};
      });
  std::vector<std::byte> payload(16, std::byte{1});
  dcmf::Request req;
  int localCompletions = 0;
  for (int i = 0; i < 3; ++i) {
    dcmf_.send(proto, 0, 1, dcmf::Info{}, payload.data(), payload.size(),
               &req, [&] { ++localCompletions; });
    engine_.run();
  }
  EXPECT_EQ(localCompletions, 3);
  EXPECT_EQ(dcmf_.sendsPosted(), 3u);
}

TEST_F(DcmfTest, WireBytesIncludeInfoHeader) {
  const auto proto = dcmf_.registerProtocol(
      [](int, int, const dcmf::Info&, const std::byte*, std::size_t) {},
      [](int, int, const dcmf::Info&, std::size_t) {
        return dcmf::RecvSpec{};
      });
  dcmf::Info info;
  info.append({1, 2});
  info.append({3, 4});
  std::vector<std::byte> payload(100, std::byte{1});
  dcmf::Request req;
  dcmf_.send(proto, 0, 1, info, payload.data(), payload.size(), &req);
  EXPECT_EQ(fabric_.bytesSubmitted(), 100u + 32u);
  engine_.run();
}

TEST_F(DcmfTest, BufferTooSmallAborts) {
  std::vector<std::byte> recvBuf(10);
  const auto proto = dcmf_.registerProtocol(
      [](int, int, const dcmf::Info&, const std::byte*, std::size_t) {},
      [&](int, int, const dcmf::Info&, std::size_t) {
        dcmf::RecvSpec spec;
        spec.buffer = recvBuf.data();
        spec.capacity = recvBuf.size();
        return spec;
      });
  std::vector<std::byte> payload(512, std::byte{1});
  dcmf::Request req;
  dcmf_.send(proto, 0, 1, dcmf::Info{}, payload.data(), payload.size(), &req);
  EXPECT_DEATH(engine_.run(), "smaller");
}

}  // namespace
}  // namespace ckd
