// Tests for the tracing/metrics layer: ring-buffer capping, zero-heap
// operation while disabled, per-layer time attribution through real runs,
// the JSON tree, and the BenchRunner output schema.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "harness/profile.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

namespace ckd {
namespace {

using sim::Layer;
using sim::TraceRecorder;
using sim::TraceTag;

// --- ring buffer ---------------------------------------------------------------

TEST(TraceRing, CapsAtCapacityAndCountsDrops) {
  TraceRecorder t;
  t.setCapacity(8);
  t.enable();
  for (int i = 0; i < 20; ++i)
    t.record(static_cast<sim::Time>(i), i, TraceTag::kSchedPump,
             static_cast<double>(i));
  EXPECT_EQ(t.ringSize(), 8u);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
  // snapshot() is oldest-first: events 12..19 survive.
  const std::vector<sim::TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_DOUBLE_EQ(events[i].time, static_cast<double>(12 + i));
}

TEST(TraceRing, HeapUsageZeroWhenDisabledBoundedWhenEnabled) {
  TraceRecorder off;
  for (int i = 0; i < 10000; ++i)
    off.record(static_cast<sim::Time>(i), 0, TraceTag::kFabricSubmit);
  EXPECT_EQ(off.ringHeapBytes(), 0u);
  EXPECT_EQ(off.count(TraceTag::kFabricSubmit), 10000u);

  TraceRecorder on;
  on.setCapacity(16);
  on.enable();
  for (int i = 0; i < 10000; ++i)
    on.record(static_cast<sim::Time>(i), 0, TraceTag::kFabricSubmit);
  EXPECT_EQ(on.ringHeapBytes(), 16 * sizeof(sim::TraceEvent));
}

TEST(TraceRing, ClearResetsAndCapacityIsSticky) {
  TraceRecorder t;
  t.setCapacity(4);
  t.enable();
  t.record(1.0, 0, TraceTag::kDirectPut, 64.0);
  t.observePollQueue(3);
  t.addLayerTime(Layer::kFabric, 2.5);
  t.clear();
  EXPECT_EQ(t.ringSize(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.count(TraceTag::kDirectPut), 0u);
  EXPECT_DOUBLE_EQ(t.layerTime(Layer::kFabric), 0.0);
  EXPECT_TRUE(t.enabled());
  EXPECT_EQ(t.capacity(), 4u);
}

TEST(TraceMetrics, PollHistogramBucketsByLog2) {
  TraceRecorder t;
  t.observePollQueue(0);   // bucket 0
  t.observePollQueue(1);   // bucket 1
  t.observePollQueue(2);   // bucket 2
  t.observePollQueue(3);   // bucket 2
  t.observePollQueue(4);   // bucket 3
  const auto& hist = t.pollQueueHistogram();
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 1u);
}

// --- layer attribution through real runs ----------------------------------------

// The acceptance bar for the observability layer: on a serial pingpong, the
// per-layer virtual-time attribution must explain the whole run — the sum
// over layers within 5% of the end-to-end horizon.
TEST(TraceLayers, CharmPingpongLayersCoverTheRun) {
  harness::PingpongConfig cfg;
  cfg.bytes = 30000;  // above Abe's 24 KB cut-over: rendezvous path
  cfg.iterations = 50;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::charmPingpongRtt(harness::abeMachine(2, 1), cfg);

  EXPECT_GT(report.layerTime_us[static_cast<std::size_t>(Layer::kScheduler)],
            0.0);
  EXPECT_GT(report.layerTime_us[static_cast<std::size_t>(Layer::kTransport)],
            0.0);
  EXPECT_GT(report.layerTime_us[static_cast<std::size_t>(Layer::kFabric)],
            0.0);
  EXPECT_NEAR(report.layerCoverage, 1.0, 0.05);
  // Rendezvous-path tags fired and round trips were observed.
  EXPECT_GT(report.tagCounts[static_cast<std::size_t>(TraceTag::kXportRtsSend)],
            0u);
  EXPECT_GT(report.rendezvousRtt_us.count(), 0u);
}

TEST(TraceLayers, CkdirectPingpongAttributesToCkDirect) {
  harness::PingpongConfig cfg;
  cfg.bytes = 20000;
  cfg.iterations = 50;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::ckdirectPingpongRtt(harness::abeMachine(2, 1), cfg);

  EXPECT_GT(report.layerTime_us[static_cast<std::size_t>(Layer::kCkDirect)],
            0.0);
  EXPECT_NEAR(report.layerCoverage, 1.0, 0.05);
  EXPECT_GT(report.tagCounts[static_cast<std::size_t>(TraceTag::kDirectPut)],
            0u);
  EXPECT_GT(
      report.tagCounts[static_cast<std::size_t>(TraceTag::kDirectSentinelHit)],
      0u);
  // Poll scans observed queue lengths.
  std::uint64_t histTotal = 0;
  for (const std::uint64_t b : report.pollHist) histTotal += b;
  EXPECT_GT(histTotal, 0u);
}

TEST(TraceLayers, RingCaptureFollowsConfig) {
  harness::PingpongConfig cfg;
  cfg.bytes = 1000;
  cfg.iterations = 20;
  cfg.trace = true;
  cfg.traceCapacity = 64;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::charmPingpongRtt(harness::abeMachine(2, 1), cfg);
  EXPECT_EQ(report.traceEvents.size(), 64u);
  EXPECT_GT(report.traceDropped, 0u);
  // Retained events are oldest-first and time-sorted.
  for (std::size_t i = 1; i < report.traceEvents.size(); ++i)
    EXPECT_GE(report.traceEvents[i].time, report.traceEvents[i - 1].time);
}

// --- JSON tree -------------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", util::JsonValue("ckd.bench.v1"));
  doc.set("pi", util::JsonValue(3.25));
  doc.set("count", util::JsonValue(42));
  doc.set("on", util::JsonValue(true));
  doc.set("none", util::JsonValue(nullptr));
  util::JsonValue arr = util::JsonValue::array();
  arr.push(util::JsonValue(1));
  arr.push(util::JsonValue("two\nlines \"quoted\""));
  doc.set("arr", std::move(arr));

  for (const int indent : {0, 2}) {
    const util::JsonValue back = util::JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(back.at("schema").asString(), "ckd.bench.v1");
    EXPECT_DOUBLE_EQ(back.at("pi").asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(back.at("count").asNumber(), 42.0);
    EXPECT_TRUE(back.at("on").asBool());
    EXPECT_TRUE(back.at("none").isNull());
    ASSERT_EQ(back.at("arr").size(), 2u);
    EXPECT_EQ(back.at("arr").at(1).asString(), "two\nlines \"quoted\"");
  }
}

TEST(Json, NumbersRoundTripShortest) {
  for (const double v : {0.0, -1.5, 1e-9, 12345678.0, 0.1}) {
    const util::JsonValue back =
        util::JsonValue::parse(util::jsonNumber(v));
    EXPECT_DOUBLE_EQ(back.asNumber(), v);
  }
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("z", util::JsonValue(1));
  doc.set("a", util::JsonValue(2));
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.dump(), "{\"z\":1,\"a\":2}");
}

// --- profile serialization + BenchRunner schema ----------------------------------

TEST(BenchJson, ProfileToJsonCarriesLayers) {
  harness::PingpongConfig cfg;
  cfg.bytes = 20000;
  cfg.iterations = 10;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::charmPingpongRtt(harness::abeMachine(2, 1), cfg);
  report.label = "charm/20000";

  const util::JsonValue j = harness::toJson(report);
  EXPECT_EQ(j.at("label").asString(), "charm/20000");
  const util::JsonValue& layers = j.at("layers");
  EXPECT_GT(layers.at("scheduler_us").asNumber(), 0.0);
  EXPECT_GT(layers.at("fabric_us").asNumber(), 0.0);
  EXPECT_NEAR(layers.at("coverage").asNumber(), 1.0, 0.05);
  EXPECT_NE(j.find("tag_counts"), nullptr);
}

TEST(BenchJson, RunnerWritesStableSchema) {
  const char* path = "BENCH_selftest.json";
  const char* argv[] = {"selftest", "--json", path};
  util::Args args(3, argv);
  harness::BenchRunner runner("selftest", args);
  EXPECT_TRUE(runner.wantsProfiles());
  EXPECT_FALSE(runner.traceEnabled());

  util::JsonValue labels = util::JsonValue::object();
  labels.set("variant", util::JsonValue("charm"));
  labels.set("bytes", util::JsonValue(100));
  runner.addMetric("rtt_us", 12.5, "us", std::move(labels));

  harness::PingpongConfig cfg;
  cfg.bytes = 100;
  cfg.iterations = 5;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::charmPingpongRtt(harness::abeMachine(2, 1), cfg);
  report.label = "charm/100";
  runner.addProfile(std::move(report));
  EXPECT_EQ(runner.finish(), 0);

  std::FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
    text.append(buf, n);
  std::fclose(f);
  std::remove(path);

  const util::JsonValue doc = util::JsonValue::parse(text);
  EXPECT_EQ(doc.at("schema").asString(), "ckd.bench.v1");
  EXPECT_EQ(doc.at("bench").asString(), "selftest");
  ASSERT_EQ(doc.at("metrics").size(), 1u);
  const util::JsonValue& metric = doc.at("metrics").at(0);
  EXPECT_EQ(metric.at("name").asString(), "rtt_us");
  EXPECT_DOUBLE_EQ(metric.at("value").asNumber(), 12.5);
  EXPECT_EQ(metric.at("labels").at("variant").asString(), "charm");
  ASSERT_EQ(doc.at("profiles").size(), 1u);
  EXPECT_EQ(doc.at("profiles").at(0).at("label").asString(), "charm/100");
}

}  // namespace
}  // namespace ckd
