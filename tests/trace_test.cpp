// Tests for the tracing/metrics layer: ring-buffer capping, zero-heap
// operation while disabled, per-layer time attribution through real runs,
// the JSON tree, and the BenchRunner output schema.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "harness/profile.hpp"
#include "harness/trace_export.hpp"
#include "sim/causal.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

namespace ckd {
namespace {

using sim::Layer;
using sim::TraceRecorder;
using sim::TraceTag;

// --- ring buffer ---------------------------------------------------------------

TEST(TraceRing, CapsAtCapacityAndCountsDrops) {
  TraceRecorder t;
  t.setCapacity(8);
  t.enable();
  for (int i = 0; i < 20; ++i)
    t.record(static_cast<sim::Time>(i), i, TraceTag::kSchedPump,
             static_cast<double>(i));
  EXPECT_EQ(t.ringSize(), 8u);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
  // snapshot() is oldest-first: events 12..19 survive.
  const std::vector<sim::TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_DOUBLE_EQ(events[i].time, static_cast<double>(12 + i));
}

TEST(TraceRing, HeapUsageZeroWhenDisabledBoundedWhenEnabled) {
  TraceRecorder off;
  for (int i = 0; i < 10000; ++i)
    off.record(static_cast<sim::Time>(i), 0, TraceTag::kFabricSubmit);
  EXPECT_EQ(off.ringHeapBytes(), 0u);
  EXPECT_EQ(off.count(TraceTag::kFabricSubmit), 10000u);

  TraceRecorder on;
  on.setCapacity(16);
  on.enable();
  for (int i = 0; i < 10000; ++i)
    on.record(static_cast<sim::Time>(i), 0, TraceTag::kFabricSubmit);
  EXPECT_EQ(on.ringHeapBytes(), 16 * sizeof(sim::TraceEvent));
}

TEST(TraceRing, ClearResetsAndCapacityIsSticky) {
  TraceRecorder t;
  t.setCapacity(4);
  t.enable();
  t.record(1.0, 0, TraceTag::kDirectPut, 64.0);
  t.observePollQueue(3);
  t.addLayerTime(Layer::kFabric, 2.5);
  t.clear();
  EXPECT_EQ(t.ringSize(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.count(TraceTag::kDirectPut), 0u);
  EXPECT_DOUBLE_EQ(t.layerTime(Layer::kFabric), 0.0);
  EXPECT_TRUE(t.enabled());
  EXPECT_EQ(t.capacity(), 4u);
}

TEST(TraceMetrics, PollHistogramBucketsByLog2) {
  TraceRecorder t;
  t.observePollQueue(0);   // bucket 0
  t.observePollQueue(1);   // bucket 1
  t.observePollQueue(2);   // bucket 2
  t.observePollQueue(3);   // bucket 2
  t.observePollQueue(4);   // bucket 3
  const auto& hist = t.pollQueueHistogram();
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(TraceRing, SetCapacityShrinkMidRunKeepsNewest) {
  TraceRecorder t;
  t.setCapacity(16);
  t.enable();
  for (int i = 0; i < 10; ++i)
    t.record(static_cast<sim::Time>(i), 0, TraceTag::kSchedPump);
  // Shrink with a non-empty (wrapped-or-not) ring: newest 4 survive.
  t.setCapacity(4);
  EXPECT_EQ(t.capacity(), 4u);
  std::vector<sim::TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_DOUBLE_EQ(events[i].time, static_cast<double>(6 + i));
  // Recording continues seamlessly at the new capacity.
  t.record(100.0, 0, TraceTag::kSchedPump);
  events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().time, 7.0);
  EXPECT_DOUBLE_EQ(events.back().time, 100.0);
}

TEST(TraceRing, SetCapacityGrowMidRunKeepsEverything) {
  TraceRecorder t;
  t.setCapacity(4);
  t.enable();
  for (int i = 0; i < 9; ++i)  // wraps: head_ is mid-ring
    t.record(static_cast<sim::Time>(i), 0, TraceTag::kSchedPump);
  t.setCapacity(8);
  std::vector<sim::TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);  // the 4 retained before the grow
  EXPECT_DOUBLE_EQ(events.front().time, 5.0);
  for (int i = 9; i < 13; ++i)
    t.record(static_cast<sim::Time>(i), 0, TraceTag::kSchedPump);
  events = t.snapshot();
  ASSERT_EQ(events.size(), 8u);  // grew into the new room, oldest-first
  EXPECT_DOUBLE_EQ(events.front().time, 5.0);
  EXPECT_DOUBLE_EQ(events.back().time, 12.0);
}

// --- causal chains ---------------------------------------------------------------

TEST(Causal, MintedIdsAreMonotoneAndContextRoundTrips) {
  TraceRecorder t;
  const std::uint64_t a = t.mintId();
  const std::uint64_t b = t.mintId();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
  EXPECT_EQ(t.context(), 0u);
  t.setContext(a);
  EXPECT_EQ(t.context(), a);
  t.clear();  // clear() restarts the id space with the metrics
  EXPECT_EQ(t.context(), 0u);
  EXPECT_EQ(t.mintId(), 1u);
}

TEST(Causal, CkdirectPingpongChainsLinkIntoOnePath) {
  harness::PingpongConfig cfg;
  cfg.bytes = 1000;
  cfg.iterations = 25;
  cfg.trace = true;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::ckdirectPingpongRtt(harness::abeMachine(2, 1), cfg);

  const sim::CausalGraph graph(report.traceEvents);
  // One chain per put, all completed, each parented on its predecessor:
  // the whole run is one causal path.
  ASSERT_EQ(graph.chains().size(), 2u * 25u);
  for (const sim::CausalChain& c : graph.chains()) {
    EXPECT_TRUE(c.complete);
    EXPECT_EQ(c.kind, TraceTag::kDirectPut);
    EXPECT_EQ(c.parent, c.id - 1);  // chain 1's parent is 0 (a root)
    // Milestones in order, all observed on the zero-copy path.
    EXPECT_LE(c.start, c.submit);
    EXPECT_LE(c.submit, c.land);
    EXPECT_LE(c.land, c.detect);
    EXPECT_LE(c.detect, c.end);
    // Exact-sum contract: the four segments add up to the total, bit for bit.
    const sim::LayerBreakdown b = c.breakdown();
    EXPECT_DOUBLE_EQ(b.queue_us + b.wire_us + b.poll_us + b.handler_us,
                     b.total_us);
    EXPECT_GT(b.wire_us, 0.0);
  }
  const std::vector<sim::CausalChain> path = graph.criticalPath();
  EXPECT_EQ(path.size(), 2u * 25u);
  EXPECT_EQ(path.front().id, 1u);
  // Dependency-chained workload: the critical path explains the horizon to
  // within 1% (the acceptance bar for the causal tracer).
  EXPECT_NEAR(graph.criticalPathSpan() / report.horizon_us, 1.0, 0.01);
  // ...and the same numbers surfaced in the profile's headline block.
  EXPECT_EQ(report.causalChains, graph.chains().size());
  EXPECT_EQ(report.criticalPathHops, path.size());
  EXPECT_DOUBLE_EQ(report.criticalPath_us, graph.criticalPathSpan());

  const sim::LatencySummary put = graph.putLatency();
  EXPECT_EQ(put.count, 2u * 25u);
  EXPECT_DOUBLE_EQ(put.mean.queue_us + put.mean.wire_us + put.mean.poll_us +
                       put.mean.handler_us,
                   put.mean.total_us);
  EXPECT_GT(put.mean.poll_us, 0.0);  // sentinel polling is on this path
}

TEST(Causal, CharmPingpongMessageChainsCarryTheWireSegment) {
  harness::PingpongConfig cfg;
  cfg.bytes = 1000;
  cfg.iterations = 20;
  cfg.trace = true;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::charmPingpongRtt(harness::abeMachine(2, 1), cfg);

  const sim::CausalGraph graph(report.traceEvents);
  const sim::LatencySummary msg = graph.messageLatency();
  EXPECT_GE(msg.count, 2u * 20u);
  EXPECT_GT(msg.mean.total_us, 0.0);
  EXPECT_GT(msg.mean.wire_us, 0.0);
  EXPECT_DOUBLE_EQ(msg.mean.queue_us + msg.mean.wire_us + msg.mean.poll_us +
                       msg.mean.handler_us,
                   msg.mean.total_us);
  EXPECT_EQ(graph.putLatency().count, 0u);  // no CkDirect in this variant
  // Per-PE busy time came out of the pump-duration events.
  ASSERT_GE(graph.peBusyTime().size(), 2u);
  EXPECT_GT(graph.peBusyTime()[0], 0.0);
  EXPECT_GT(graph.peBusyTime()[1], 0.0);
}

// --- --trace-filter grammar ------------------------------------------------------

TEST(TraceFilterSpec, GlobAndPeTokensCompose) {
  using harness::TraceFilter;
  EXPECT_TRUE(TraceFilter::globMatch("direct.*", "direct.put"));
  EXPECT_TRUE(TraceFilter::globMatch("*", "anything"));
  EXPECT_TRUE(TraceFilter::globMatch("*deliver*", "fabric.deliver"));
  EXPECT_FALSE(TraceFilter::globMatch("direct.*", "sched.deliver"));
  EXPECT_FALSE(TraceFilter::globMatch("direct", "direct.put"));

  EXPECT_FALSE(TraceFilter().active());
  EXPECT_FALSE(TraceFilter::parse("").active());

  sim::TraceEvent put;
  put.tag = TraceTag::kDirectPut;
  put.pe = 1;
  sim::TraceEvent deliver;
  deliver.tag = TraceTag::kSchedDeliver;
  deliver.pe = 2;

  const auto tagOnly = harness::TraceFilter::parse("direct.*");
  EXPECT_TRUE(tagOnly.active());
  EXPECT_TRUE(tagOnly.matches(put));
  EXPECT_FALSE(tagOnly.matches(deliver));

  const auto peOnly = harness::TraceFilter::parse("pe=2");
  EXPECT_FALSE(peOnly.matches(put));
  EXPECT_TRUE(peOnly.matches(deliver));

  const auto both = harness::TraceFilter::parse("direct.*,sched.*,pe=1");
  EXPECT_TRUE(both.matches(put));
  EXPECT_FALSE(both.matches(deliver));  // tag passes, PE does not
}

// --- layer attribution through real runs ----------------------------------------

// The acceptance bar for the observability layer: on a serial pingpong, the
// per-layer virtual-time attribution must explain the whole run — the sum
// over layers within 5% of the end-to-end horizon.
TEST(TraceLayers, CharmPingpongLayersCoverTheRun) {
  harness::PingpongConfig cfg;
  cfg.bytes = 30000;  // above Abe's 24 KB cut-over: rendezvous path
  cfg.iterations = 50;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::charmPingpongRtt(harness::abeMachine(2, 1), cfg);

  EXPECT_GT(report.layerTime_us[static_cast<std::size_t>(Layer::kScheduler)],
            0.0);
  EXPECT_GT(report.layerTime_us[static_cast<std::size_t>(Layer::kTransport)],
            0.0);
  EXPECT_GT(report.layerTime_us[static_cast<std::size_t>(Layer::kFabric)],
            0.0);
  EXPECT_NEAR(report.layerCoverage, 1.0, 0.05);
  // Rendezvous-path tags fired and round trips were observed.
  EXPECT_GT(report.tagCounts[static_cast<std::size_t>(TraceTag::kXportRtsSend)],
            0u);
  EXPECT_GT(report.rendezvousRtt_us.count(), 0u);
}

TEST(TraceLayers, CkdirectPingpongAttributesToCkDirect) {
  harness::PingpongConfig cfg;
  cfg.bytes = 20000;
  cfg.iterations = 50;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::ckdirectPingpongRtt(harness::abeMachine(2, 1), cfg);

  EXPECT_GT(report.layerTime_us[static_cast<std::size_t>(Layer::kCkDirect)],
            0.0);
  EXPECT_NEAR(report.layerCoverage, 1.0, 0.05);
  EXPECT_GT(report.tagCounts[static_cast<std::size_t>(TraceTag::kDirectPut)],
            0u);
  EXPECT_GT(
      report.tagCounts[static_cast<std::size_t>(TraceTag::kDirectSentinelHit)],
      0u);
  // Poll scans observed queue lengths.
  std::uint64_t histTotal = 0;
  for (const std::uint64_t b : report.pollHist) histTotal += b;
  EXPECT_GT(histTotal, 0u);
}

TEST(TraceLayers, RingCaptureFollowsConfig) {
  harness::PingpongConfig cfg;
  cfg.bytes = 1000;
  cfg.iterations = 20;
  cfg.trace = true;
  cfg.traceCapacity = 64;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::charmPingpongRtt(harness::abeMachine(2, 1), cfg);
  EXPECT_EQ(report.traceEvents.size(), 64u);
  EXPECT_GT(report.traceDropped, 0u);
  // Retained events are oldest-first and time-sorted.
  for (std::size_t i = 1; i < report.traceEvents.size(); ++i)
    EXPECT_GE(report.traceEvents[i].time, report.traceEvents[i - 1].time);
}

// --- JSON tree -------------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", util::JsonValue("ckd.bench.v1"));
  doc.set("pi", util::JsonValue(3.25));
  doc.set("count", util::JsonValue(42));
  doc.set("on", util::JsonValue(true));
  doc.set("none", util::JsonValue(nullptr));
  util::JsonValue arr = util::JsonValue::array();
  arr.push(util::JsonValue(1));
  arr.push(util::JsonValue("two\nlines \"quoted\""));
  doc.set("arr", std::move(arr));

  for (const int indent : {0, 2}) {
    const util::JsonValue back = util::JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(back.at("schema").asString(), "ckd.bench.v1");
    EXPECT_DOUBLE_EQ(back.at("pi").asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(back.at("count").asNumber(), 42.0);
    EXPECT_TRUE(back.at("on").asBool());
    EXPECT_TRUE(back.at("none").isNull());
    ASSERT_EQ(back.at("arr").size(), 2u);
    EXPECT_EQ(back.at("arr").at(1).asString(), "two\nlines \"quoted\"");
  }
}

TEST(Json, NumbersRoundTripShortest) {
  for (const double v : {0.0, -1.5, 1e-9, 12345678.0, 0.1}) {
    const util::JsonValue back =
        util::JsonValue::parse(util::jsonNumber(v));
    EXPECT_DOUBLE_EQ(back.asNumber(), v);
  }
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("z", util::JsonValue(1));
  doc.set("a", util::JsonValue(2));
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.dump(), "{\"z\":1,\"a\":2}");
}

// --- profile serialization + BenchRunner schema ----------------------------------

TEST(BenchJson, ProfileToJsonCarriesLayers) {
  harness::PingpongConfig cfg;
  cfg.bytes = 20000;
  cfg.iterations = 10;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::charmPingpongRtt(harness::abeMachine(2, 1), cfg);
  report.label = "charm/20000";

  const util::JsonValue j = harness::toJson(report);
  EXPECT_EQ(j.at("label").asString(), "charm/20000");
  const util::JsonValue& layers = j.at("layers");
  EXPECT_GT(layers.at("scheduler_us").asNumber(), 0.0);
  EXPECT_GT(layers.at("fabric_us").asNumber(), 0.0);
  EXPECT_NEAR(layers.at("coverage").asNumber(), 1.0, 0.05);
  EXPECT_NE(j.find("tag_counts"), nullptr);
}

TEST(BenchJson, RunnerWritesStableSchema) {
  const char* path = "BENCH_selftest.json";
  const char* argv[] = {"selftest", "--json", path};
  util::Args args(3, argv);
  harness::BenchRunner runner("selftest", args);
  EXPECT_TRUE(runner.wantsProfiles());
  EXPECT_FALSE(runner.traceEnabled());

  util::JsonValue labels = util::JsonValue::object();
  labels.set("variant", util::JsonValue("charm"));
  labels.set("bytes", util::JsonValue(100));
  runner.addMetric("rtt_us", 12.5, "us", std::move(labels));

  harness::PingpongConfig cfg;
  cfg.bytes = 100;
  cfg.iterations = 5;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::charmPingpongRtt(harness::abeMachine(2, 1), cfg);
  report.label = "charm/100";
  runner.addProfile(std::move(report));
  EXPECT_EQ(runner.finish(), 0);

  std::FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
    text.append(buf, n);
  std::fclose(f);
  std::remove(path);

  const util::JsonValue doc = util::JsonValue::parse(text);
  EXPECT_EQ(doc.at("schema").asString(), "ckd.bench.v1");
  EXPECT_EQ(doc.at("bench").asString(), "selftest");
  ASSERT_EQ(doc.at("metrics").size(), 1u);
  const util::JsonValue& metric = doc.at("metrics").at(0);
  EXPECT_EQ(metric.at("name").asString(), "rtt_us");
  EXPECT_DOUBLE_EQ(metric.at("value").asNumber(), 12.5);
  EXPECT_EQ(metric.at("labels").at("variant").asString(), "charm");
  ASSERT_EQ(doc.at("profiles").size(), 1u);
  EXPECT_EQ(doc.at("profiles").at(0).at("label").asString(), "charm/100");
}

namespace {

std::string readAll(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
    text.append(buf, n);
  std::fclose(f);
  return text;
}

harness::ProfileReport tracedCkdirectRun(int iterations) {
  harness::PingpongConfig cfg;
  cfg.bytes = 1000;
  cfg.iterations = iterations;
  cfg.trace = true;
  harness::ProfileReport report;
  cfg.profile = &report;
  harness::ckdirectPingpongRtt(harness::abeMachine(2, 1), cfg);
  report.label = "ckdirect/1000";
  return report;
}

}  // namespace

TEST(TraceDump, CarriesCausalFieldsRunsAndHonorsFilter) {
  const char* path = "TRACE_selftest.json";
  const char* argv[] = {"selftest", "--trace-dump", path, "--trace-filter",
                        "direct.*,fabric.*"};
  util::Args args(5, argv);
  harness::BenchRunner runner("selftest", args);
  EXPECT_TRUE(runner.traceEnabled());
  runner.addProfile(tracedCkdirectRun(10));
  EXPECT_EQ(runner.finish(), 0);

  const util::JsonValue doc = util::JsonValue::parse(readAll(path));
  std::remove(path);
  EXPECT_EQ(doc.at("schema").asString(), "ckd.trace.v1");
  ASSERT_EQ(doc.at("runs").size(), 1u);
  EXPECT_EQ(doc.at("runs").at(0).at("label").asString(), "ckdirect/1000");
  EXPECT_GT(doc.at("runs").at(0).at("horizon_us").asNumber(), 0.0);

  const util::JsonValue& events = doc.at("events");
  ASSERT_GT(events.size(), 0u);
  bool sawSpan = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::JsonValue& ev = events.at(i);
    const std::string& tag = ev.at("tag").asString();
    // The filter let only the CkDirect + fabric families through.
    EXPECT_TRUE(tag.rfind("direct.", 0) == 0 || tag.rfind("fabric.", 0) == 0)
        << tag;
    if (tag == "direct.put") {
      EXPECT_GT(ev.at("id").asNumber(), 0.0);
      EXPECT_EQ(ev.at("ph").asString(), "b");
      EXPECT_GE(ev.at("aux").asNumber(), 0.0);
      sawSpan = true;
    }
  }
  EXPECT_TRUE(sawSpan);
}

TEST(Perfetto, WriterEmitsParsableTimelineWithFlows) {
  std::vector<harness::ProfileReport> profiles;
  profiles.push_back(tracedCkdirectRun(10));
  const char* path = "PERFETTO_selftest.json";
  harness::writePerfettoTrace(path, "selftest", profiles);

  const util::JsonValue doc = util::JsonValue::parse(readAll(path));
  std::remove(path);
  EXPECT_EQ(doc.at("otherData").at("schema").asString(), "ckd.perfetto.v1");
  EXPECT_EQ(doc.at("otherData").at("bench").asString(), "selftest");

  const util::JsonValue& events = doc.at("traceEvents");
  std::size_t meta = 0, slices = 0, begins = 0, ends = 0, flowS = 0,
              flowF = 0, instants = 0;
  bool sawPeTrack = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::JsonValue& ev = events.at(i);
    const std::string& ph = ev.at("ph").asString();
    if (ph == "M") {
      ++meta;
      if (ev.at("args").at("name").asString().rfind("PE ", 0) == 0)
        sawPeTrack = true;
    } else if (ph == "X") {
      ++slices;
      EXPECT_GE(ev.at("dur").asNumber(), 0.0);
    } else if (ph == "b") {
      ++begins;
    } else if (ph == "e") {
      ++ends;
    } else if (ph == "s") {
      ++flowS;
    } else if (ph == "f") {
      ++flowF;
      EXPECT_EQ(ev.at("bp").asString(), "e");
    } else if (ph == "i") {
      ++instants;
    }
  }
  EXPECT_TRUE(sawPeTrack);
  EXPECT_GT(meta, 0u);
  EXPECT_GT(slices, 0u);    // per-PE busy slices
  EXPECT_GT(instants, 0u);  // span milestones on the PE tracks
  EXPECT_EQ(begins, 20u);   // one async span per put chain...
  EXPECT_EQ(ends, 20u);
  EXPECT_EQ(flowS, 20u);    // ...with a sender->receiver flow arrow each
  EXPECT_EQ(flowF, 20u);
}

}  // namespace
}  // namespace ckd
