// Correctness tests for the §4.2 3-D matrix multiplication: both modes must
// match the reference product on both machine layers; plus decomposition
// edge cases and the Fig 3 timing properties.

#include <gtest/gtest.h>

#include "apps/matmul/matmul.hpp"
#include "harness/machines.hpp"

namespace ckd::apps::matmul {
namespace {

Config smallConfig(Mode mode) {
  Config cfg;
  cfg.m = 32;
  cfg.n = 32;
  cfg.k = 32;
  cfg.cx = 2;
  cfg.cy = 2;
  cfg.cz = 2;
  cfg.iterations = 2;
  cfg.mode = mode;
  cfg.real_compute = true;
  return cfg;
}

void expectMatchesReference(const Config& cfg,
                            const charm::MachineConfig& machine,
                            double tol = 1e-9) {
  charm::Runtime rts(machine);
  MatmulApp app(rts, cfg);
  app.execute();
  const auto got = app.gatherC();
  const auto want = referenceMultiply(cfg);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_NEAR(got[i], want[i], tol) << "element " << i;
}

TEST(Matmul, MsgMatchesReferenceOnIb) {
  expectMatchesReference(smallConfig(Mode::kMessages),
                         harness::abeMachine(8, 2));
}

TEST(Matmul, CkdMatchesReferenceOnIb) {
  expectMatchesReference(smallConfig(Mode::kCkDirect),
                         harness::abeMachine(8, 2));
}

TEST(Matmul, MsgMatchesReferenceOnBgp) {
  expectMatchesReference(smallConfig(Mode::kMessages),
                         harness::surveyorMachine(8, 4));
}

TEST(Matmul, CkdMatchesReferenceOnBgp) {
  expectMatchesReference(smallConfig(Mode::kCkDirect),
                         harness::surveyorMachine(8, 4));
}

TEST(Matmul, NonCubicGrid) {
  Config cfg = smallConfig(Mode::kCkDirect);
  cfg.cx = 4;
  cfg.cy = 2;
  cfg.cz = 1;
  expectMatchesReference(cfg, harness::abeMachine(8, 2));
}

TEST(Matmul, RectangularMatrices) {
  Config cfg = smallConfig(Mode::kMessages);
  cfg.m = 48;
  cfg.n = 16;
  cfg.k = 64;
  cfg.cx = 2;
  cfg.cy = 2;
  cfg.cz = 2;
  expectMatchesReference(cfg, harness::abeMachine(8, 2));
}

TEST(Matmul, SingleChare) {
  Config cfg = smallConfig(Mode::kMessages);
  cfg.cx = cfg.cy = cfg.cz = 1;
  expectMatchesReference(cfg, harness::abeMachine(2, 1));
}

TEST(Matmul, ManyCharesPerPe) {
  Config cfg = smallConfig(Mode::kCkDirect);
  cfg.cx = 2;
  cfg.cy = 4;
  cfg.cz = 2;  // 16 chares on 4 PEs
  expectMatchesReference(cfg, harness::abeMachine(4, 2));
}

TEST(Matmul, GridChooserNearCubic) {
  int cx = 0, cy = 0, cz = 0;
  chooseGrid(512, cx, cy, cz);
  EXPECT_EQ(cx * cy * cz, 512);
  EXPECT_EQ(cx, 8);
  EXPECT_EQ(cy, 8);
  EXPECT_EQ(cz, 8);
  chooseGrid(128, cx, cy, cz);
  EXPECT_EQ(cx * cy * cz, 128);
  EXPECT_LE(std::max({cx, cy, cz}), 2 * std::min({cx, cy, cz}));
}

// --- timing properties -----------------------------------------------------------

Result runBench(const charm::MachineConfig& machine, Mode mode, int chares) {
  Config cfg;
  cfg.m = cfg.n = cfg.k = 512;
  chooseGrid(chares, cfg.cx, cfg.cy, cfg.cz);
  cfg.iterations = 2;
  cfg.mode = mode;
  cfg.real_compute = false;
  charm::Runtime rts(machine);
  MatmulApp app(rts, cfg);
  return app.execute();
}

TEST(MatmulTiming, CkDirectFasterThanMessages) {
  const auto machine = harness::abeMachine(16, 8);
  const auto msg = runBench(machine, Mode::kMessages, 16);
  const auto ckd = runBench(machine, Mode::kCkDirect, 16);
  EXPECT_LT(ckd.avg_iteration_us, msg.avg_iteration_us);
}

TEST(MatmulTiming, GapGrowsWithScale) {
  // Fig 3: the absolute difference in iteration times increases with
  // higher numbers of processors.
  const auto m8 = harness::surveyorMachine(8, 4);
  const auto m64 = harness::surveyorMachine(64, 4);
  const double gapSmall =
      runBench(m8, Mode::kMessages, 8).avg_iteration_us -
      runBench(m8, Mode::kCkDirect, 8).avg_iteration_us;
  const double gapLarge =
      runBench(m64, Mode::kMessages, 64).avg_iteration_us -
      runBench(m64, Mode::kCkDirect, 64).avg_iteration_us;
  EXPECT_GT(gapSmall, 0.0);
  EXPECT_GT(gapLarge, 0.0);
}

}  // namespace
}  // namespace ckd::apps::matmul
