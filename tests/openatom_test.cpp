// Tests for the §5 OpenAtom mini-app: end-to-end data integrity through the
// GS -> PairCalculator channels (checksums round-trip), channel counting,
// and the §5.2 polling pathology: naive ready is slower than messages,
// ReadyMark/ReadyPollQ recovers the win.

#include <gtest/gtest.h>

#include "apps/openatom/openatom.hpp"
#include "ckdirect/ckdirect.hpp"
#include "harness/machines.hpp"

namespace ckd::apps::openatom {
namespace {

Config smallConfig(Mode mode) {
  Config cfg;
  cfg.nstates = 16;
  cfg.nplanes = 2;
  cfg.points = 32;
  cfg.steps = 3;
  cfg.mode = mode;
  cfg.real_compute = true;
  return cfg;
}

void expectChecksumsRoundTrip(const Config& cfg,
                              const charm::MachineConfig& machine) {
  charm::Runtime rts(machine);
  OpenAtomApp app(rts, cfg);
  app.execute();
  for (int p = 0; p < cfg.nplanes; ++p)
    for (int s = 0; s < cfg.nstates; ++s)
      ASSERT_NEAR(app.backwardChecksum(s, p), app.expectedChecksum(s, p),
                  1e-9)
          << "state " << s << " plane " << p;
}

TEST(OpenAtom, MsgChecksumsOnIb) {
  expectChecksumsRoundTrip(smallConfig(Mode::kMessages),
                           harness::abeMachine(4, 2));
}

TEST(OpenAtom, CkdChecksumsOnIb) {
  expectChecksumsRoundTrip(smallConfig(Mode::kCkDirect),
                           harness::abeMachine(4, 2));
}

TEST(OpenAtom, MsgChecksumsOnBgp) {
  expectChecksumsRoundTrip(smallConfig(Mode::kMessages),
                           harness::surveyorMachine(8, 4));
}

TEST(OpenAtom, CkdChecksumsOnBgp) {
  expectChecksumsRoundTrip(smallConfig(Mode::kCkDirect),
                           harness::surveyorMachine(8, 4));
}

TEST(OpenAtom, NaiveReadyAlsoCorrect) {
  Config cfg = smallConfig(Mode::kCkDirect);
  cfg.ready = ReadyStrategy::kNaive;
  expectChecksumsRoundTrip(cfg, harness::abeMachine(4, 2));
}

TEST(OpenAtom, PcOnlyModeRuns) {
  Config cfg = smallConfig(Mode::kCkDirect);
  cfg.pc_only = true;
  expectChecksumsRoundTrip(cfg, harness::abeMachine(4, 2));
}

TEST(OpenAtom, ChannelCountMatchesPaperFormula) {
  Config cfg = smallConfig(Mode::kCkDirect);
  // §5.2: the coarsest decomposition needs 4 x nstates x nplanes channels.
  EXPECT_EQ(cfg.numChannels(), 4ll * cfg.nstates * cfg.nplanes);
  charm::Runtime rts(harness::abeMachine(4, 2));
  OpenAtomApp app(rts, cfg);
  app.execute();
  EXPECT_EQ(
      static_cast<std::int64_t>(ckd::direct::Manager::of(rts).putsIssued()),
      cfg.numChannels() * cfg.steps);
}

// --- §5.2 polling pathology --------------------------------------------------

Result runTimed(const charm::MachineConfig& machine, Mode mode,
                ReadyStrategy ready, bool pcOnly = false) {
  Config cfg;
  cfg.nstates = 64;
  cfg.nplanes = 4;
  cfg.points = 256;
  cfg.steps = 2;
  cfg.mode = mode;
  cfg.ready = ready;
  cfg.pc_only = pcOnly;
  cfg.real_compute = false;
  charm::Runtime rts(machine);
  OpenAtomApp app(rts, cfg);
  return app.execute();
}

TEST(OpenAtomTiming, OptimizedCkdBeatsMessages) {
  const auto machine = harness::abeMachine(8, 2);
  const auto msg =
      runTimed(machine, Mode::kMessages, ReadyStrategy::kMarkDeferPoll);
  const auto ckd =
      runTimed(machine, Mode::kCkDirect, ReadyStrategy::kMarkDeferPoll);
  EXPECT_LT(ckd.avg_step_us, msg.avg_step_us);
}

TEST(OpenAtomTiming, NaiveReadySlowerThanOptimized) {
  // The §5.2 observation: with thousands of always-polled channels, the
  // scan tax on every scheduler pump erases CkDirect's win.
  const auto machine = harness::abeMachine(8, 2);
  const auto naive =
      runTimed(machine, Mode::kCkDirect, ReadyStrategy::kNaive);
  const auto optimized =
      runTimed(machine, Mode::kCkDirect, ReadyStrategy::kMarkDeferPoll);
  EXPECT_GT(naive.avg_step_us, optimized.avg_step_us);
}

TEST(OpenAtomTiming, BgpUnaffectedByReadyStrategy) {
  // Ready calls are no-ops on Blue Gene/P; both strategies must time out
  // identically.
  const auto machine = harness::surveyorMachine(8, 4);
  const auto naive =
      runTimed(machine, Mode::kCkDirect, ReadyStrategy::kNaive);
  const auto optimized =
      runTimed(machine, Mode::kCkDirect, ReadyStrategy::kMarkDeferPoll);
  EXPECT_DOUBLE_EQ(naive.avg_step_us, optimized.avg_step_us);
}

TEST(OpenAtomTiming, PcOnlyShowsLargerRelativeGain) {
  // Figs 4/5: the PairCalculator-only runs show a larger CkDirect
  // improvement than full timesteps (other phases dilute the win).
  const auto machine = harness::abeMachine(8, 2);
  const auto msgFull =
      runTimed(machine, Mode::kMessages, ReadyStrategy::kMarkDeferPoll);
  const auto ckdFull =
      runTimed(machine, Mode::kCkDirect, ReadyStrategy::kMarkDeferPoll);
  const auto msgPc =
      runTimed(machine, Mode::kMessages, ReadyStrategy::kMarkDeferPoll, true);
  const auto ckdPc =
      runTimed(machine, Mode::kCkDirect, ReadyStrategy::kMarkDeferPoll, true);
  const double gainFull = 1.0 - ckdFull.avg_step_us / msgFull.avg_step_us;
  const double gainPc = 1.0 - ckdPc.avg_step_us / msgPc.avg_step_us;
  EXPECT_GT(gainPc, gainFull);
  EXPECT_GT(gainFull, 0.0);
}

}  // namespace
}  // namespace ckd::apps::openatom
