// Tests for the message-driven runtime: envelopes, marshalling, entry
// dispatch, scheduler semantics (costs, system work, poll hook), broadcast
// trees, reductions, and transport protocol selection.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "charm/maps.hpp"
#include "charm/marshal.hpp"
#include "charm/proxy.hpp"
#include "charm/runtime.hpp"
#include "charm/transport.hpp"
#include "harness/machines.hpp"

namespace ckd::charm {
namespace {

// --- marshalling -------------------------------------------------------------

TEST(Marshal, RoundTripScalars) {
  Packer pk;
  pk.put<std::int32_t>(-7).put<double>(2.5).put<std::uint8_t>(255);
  Unpacker up(pk.bytes());
  EXPECT_EQ(up.get<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(up.get<double>(), 2.5);
  EXPECT_EQ(up.get<std::uint8_t>(), 255);
  EXPECT_TRUE(up.empty());
}

TEST(Marshal, RoundTripSpans) {
  Packer pk;
  std::vector<double> values{1.0, 2.0, 3.0};
  pk.putVector(values);
  pk.put<std::int32_t>(9);
  Unpacker up(pk.bytes());
  const auto got = up.getVector<double>();
  EXPECT_EQ(got, values);
  EXPECT_EQ(up.get<std::int32_t>(), 9);
}

TEST(Marshal, EmptySpan) {
  Packer pk;
  pk.putSpan<double>({});
  Unpacker up(pk.bytes());
  EXPECT_TRUE(up.getSpan<double>().empty());
}

TEST(Marshal, OverrunAborts) {
  Packer pk;
  pk.put<std::int32_t>(1);
  Unpacker up(pk.bytes());
  up.get<std::int32_t>();
  EXPECT_DEATH(up.get<std::int32_t>(), "past the end");
}

// --- message wire format -------------------------------------------------------

TEST(Message, WireRoundTrip) {
  Envelope env;
  env.srcPe = 1;
  env.dstPe = 2;
  env.arrayId = 3;
  env.elemIndex = 77;
  env.entry = 5;
  std::vector<std::byte> payload(100, std::byte{0xAB});
  auto msg = Message::make(env, payload);
  EXPECT_EQ(msg->wireBytes(), kWireHeaderBytes + 100);
  auto copy = Message::fromWire(msg->wire());
  EXPECT_EQ(copy->env().elemIndex, 77);
  EXPECT_EQ(copy->env().entry, 5);
  EXPECT_EQ(copy->payload()[99], std::byte{0xAB});
}

TEST(Message, CorruptHeaderAborts) {
  std::vector<std::byte> junk(kWireHeaderBytes + 4, std::byte{0x11});
  EXPECT_DEATH(Message::fromWire(junk), "corrupt");
}

// --- chare arrays and dispatch ---------------------------------------------------

class Counter final : public Chare {
 public:
  ArrayProxy<Counter> proxy;
  EntryId epBump = -1, epDone = -1;
  int bumps = 0;
  std::vector<double> lastReduction;

  void bump(Message& msg) {
    ++bumps;
    if (!msg.payload().empty()) {
      Unpacker up(msg.payload());
      bumpBy = up.get<std::int32_t>();
    }
  }
  void reduced(Message& msg) {
    Unpacker up(msg.payload());
    lastReduction = up.getVector<double>();
  }
  int bumpBy = 0;
};

struct Fixture {
  explicit Fixture(int pes = 4, int elems = 8)
      : rts(harness::abeMachine(pes, 1)) {
    proxy = makeArray<Counter>(rts, "counter", elems,
                               blockMap(elems, rts.numPes()),
                               [](std::int64_t) { return std::make_unique<Counter>(); });
    epBump = proxy.registerEntry("bump", &Counter::bump);
    epDone = proxy.registerEntry("reduced", &Counter::reduced);
    for (std::int64_t i = 0; i < elems; ++i) {
      proxy[i].local().proxy = proxy;
      proxy[i].local().epBump = epBump;
      proxy[i].local().epDone = epDone;
    }
  }
  Runtime rts;
  ArrayProxy<Counter> proxy;
  EntryId epBump = -1, epDone = -1;
};

TEST(Array, PlacementFollowsMap) {
  Fixture f(4, 8);
  EXPECT_EQ(f.rts.homePe(f.proxy.id(), 0), 0);
  EXPECT_EQ(f.rts.homePe(f.proxy.id(), 7), 3);
  EXPECT_EQ(f.rts.elementsOnPe(f.proxy.id(), 0).size(), 2u);
}

TEST(Array, SendInvokesEntry) {
  Fixture f;
  Packer pk;
  pk.put<std::int32_t>(42);
  f.rts.seed([&] { f.proxy[5].send(f.epBump, pk); });
  f.rts.run();
  EXPECT_EQ(f.proxy[5].local().bumps, 1);
  EXPECT_EQ(f.proxy[5].local().bumpBy, 42);
  EXPECT_EQ(f.proxy[4].local().bumps, 0);
}

TEST(Array, BroadcastReachesEveryElement) {
  Fixture f(4, 8);
  f.rts.seed([&] { f.proxy.broadcast(f.epBump); });
  f.rts.run();
  for (std::int64_t i = 0; i < 8; ++i)
    EXPECT_EQ(f.proxy[i].local().bumps, 1) << "element " << i;
}

TEST(Array, BroadcastOnManyPes) {
  Fixture f(16, 64);
  f.rts.seed([&] { f.proxy.broadcast(f.epBump); });
  f.rts.run();
  for (std::int64_t i = 0; i < 64; ++i)
    EXPECT_EQ(f.proxy[i].local().bumps, 1);
}

TEST(Reduction, SumAcrossElements) {
  Fixture f(4, 8);
  f.rts.seed([&] {
    for (std::int64_t i = 0; i < 8; ++i) {
      const double v[] = {static_cast<double>(i), 1.0};
      f.rts.contribute(f.proxy.id(), i, v, ReduceOp::kSum, f.epDone);
    }
  });
  f.rts.run();
  for (std::int64_t i = 0; i < 8; ++i) {
    const auto& r = f.proxy[i].local().lastReduction;
    ASSERT_EQ(r.size(), 2u) << "element " << i;
    EXPECT_DOUBLE_EQ(r[0], 28.0);
    EXPECT_DOUBLE_EQ(r[1], 8.0);
  }
}

TEST(Reduction, MinMax) {
  Fixture f(2, 4);
  f.rts.seed([&] {
    for (std::int64_t i = 0; i < 4; ++i) {
      const double v[] = {static_cast<double>(i)};
      f.rts.contribute(f.proxy.id(), i, v, ReduceOp::kMax, f.epDone);
    }
  });
  f.rts.run();
  EXPECT_DOUBLE_EQ(f.proxy[0].local().lastReduction[0], 3.0);
}

TEST(Reduction, BarrierDeliversEmptyPayload) {
  Fixture f(4, 8);
  f.rts.seed([&] {
    for (std::int64_t i = 0; i < 8; ++i)
      f.rts.contribute(f.proxy.id(), i, {}, ReduceOp::kNop, f.epDone);
  });
  f.rts.run();
  for (std::int64_t i = 0; i < 8; ++i)
    EXPECT_TRUE(f.proxy[i].local().lastReduction.empty());
}

TEST(Reduction, SequentialRoundsKeepSeparateState) {
  Fixture f(2, 4);
  // Two rounds back to back; second uses different values.
  f.rts.seed([&] {
    for (std::int64_t i = 0; i < 4; ++i) {
      const double v[] = {1.0};
      f.rts.contribute(f.proxy.id(), i, v, ReduceOp::kSum, f.epDone);
    }
    for (std::int64_t i = 0; i < 4; ++i) {
      const double v[] = {10.0};
      f.rts.contribute(f.proxy.id(), i, v, ReduceOp::kSum, f.epDone);
    }
  });
  f.rts.run();
  EXPECT_DOUBLE_EQ(f.proxy[0].local().lastReduction[0], 40.0);
}

// --- scheduler timing semantics ---------------------------------------------------

TEST(Scheduler, ChargesAdvanceVirtualTime) {
  Fixture f(2, 2);
  double tInside = -1, tAfterCharge = -1;
  // Use a poll hook as an arbitrary handler context.
  f.rts.seed([&] { f.proxy[1].send(f.epBump); });
  f.rts.run();
  const sim::Time busy = f.rts.processor(1).busyTotal();
  // recv + sched overheads were charged for the one message.
  const auto& costs = f.rts.costs();
  EXPECT_NEAR(busy, costs.recv_overhead_us + costs.sched_overhead_us, 1e-9);
  (void)tInside;
  (void)tAfterCharge;
}

TEST(Scheduler, SystemWorkBypassesQueueCosts) {
  Runtime rts(harness::abeMachine(2, 1));
  double ranAt = -1;
  rts.seed([&] {
    rts.scheduler(1).enqueueSystemWork(2.0, [&] {
      ranAt = rts.scheduler(1).currentTime();
    });
  });
  rts.run();
  // System work charges its cost but no scheduling overhead.
  EXPECT_DOUBLE_EQ(ranAt, 2.0);
  EXPECT_DOUBLE_EQ(rts.processor(1).busyTotal(), 2.0);
}

TEST(Scheduler, PollHookRunsEveryPump) {
  Fixture f(2, 2);
  int polls = 0;
  f.rts.scheduler(1).setPollHook([&] { ++polls; });
  f.rts.seed([&] {
    f.proxy[1].send(f.epBump);
    f.proxy[1].send(f.epBump);
  });
  f.rts.run();
  EXPECT_GE(polls, 2);  // one per pump, two messages -> at least two pumps
}

TEST(Scheduler, MessagesOnOnePeSerialize) {
  Fixture f(2, 2);
  f.rts.seed([&] {
    f.proxy[1].send(f.epBump);
    f.proxy[1].send(f.epBump);
  });
  f.rts.run();
  const auto& costs = f.rts.costs();
  EXPECT_NEAR(f.rts.processor(1).busyTotal(),
              2 * (costs.recv_overhead_us + costs.sched_overhead_us), 1e-9);
  EXPECT_EQ(f.proxy[1].local().bumps, 2);
}

// --- transport protocol selection ---------------------------------------------------

TEST(Transport, SmallMessagesGoEager) {
  Fixture f(2, 2);
  Packer pk;
  std::vector<double> data(16, 1.0);
  pk.putVector(data);
  f.rts.seed([&] { f.proxy[1].send(f.epBump, pk); });
  f.rts.run();
  // Access the transport through message counters: eager only.
  EXPECT_EQ(f.proxy[1].local().bumps, 1);
}

TEST(Transport, LargeMessagesUseRendezvousRdma) {
  Runtime rts(harness::abeMachine(2, 1));
  auto proxy = makeArray<Counter>(rts, "c", 2, blockMap(2, 2),
                                  [](std::int64_t) { return std::make_unique<Counter>(); });
  const EntryId ep = proxy.registerEntry("bump", &Counter::bump);
  Packer pk;
  std::vector<double> data(8192, 3.0);  // 64 KB > 24 KB threshold
  pk.putVector(data);
  rts.seed([&] { rts.sendToElement(proxy.id(), 1, ep, pk.bytes()); });
  rts.run();
  EXPECT_EQ(proxy[1].local().bumps, 1);
  // The rendezvous path registers (and releases) memory on both sides.
  EXPECT_EQ(rts.ibVerbs().rdmaWritesPosted(), 1u);
  EXPECT_EQ(rts.ibVerbs().regionCount(0), 0u);
  EXPECT_EQ(rts.ibVerbs().regionCount(1), 0u);
}

TEST(Transport, BgpAllMessagesThroughDcmf) {
  Runtime rts(harness::surveyorMachine(8, 4));
  auto proxy = makeArray<Counter>(rts, "c", 2, blockMap(2, rts.numPes()),
                                  [](std::int64_t) { return std::make_unique<Counter>(); });
  const EntryId ep = proxy.registerEntry("bump", &Counter::bump);
  rts.seed([&] { rts.sendToElement(proxy.id(), 1, ep, {}); });
  rts.run();
  EXPECT_EQ(proxy[1].local().bumps, 1);
}

TEST(Transport, LocalDeliverySkipsNetwork) {
  Fixture f(2, 4);  // elements 0,1 on PE 0
  f.rts.seed([&] { f.proxy[1].send(f.epBump); });
  f.rts.run();
  EXPECT_EQ(f.proxy[1].local().bumps, 1);
  EXPECT_EQ(f.rts.fabric().messagesSubmitted(), 0u);
}

TEST(Runtime, DeliveryToWrongPeAborts) {
  Fixture f(2, 2);
  Envelope env;
  env.kind = MsgKind::kUser;
  env.srcPe = 0;
  env.dstPe = 0;  // element 1 lives on PE 1
  env.arrayId = f.proxy.id();
  env.elemIndex = 1;
  env.entry = f.epBump;
  auto msg = Message::make(env, {});
  EXPECT_DEATH(
      {
        f.rts.scheduler(0).enqueue(std::move(msg));
        f.rts.run();
      },
      "does not own");
}

}  // namespace
}  // namespace ckd::charm
