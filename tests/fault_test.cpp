// Tests for the fault-injection subsystem: spec parsing, injector
// determinism, the go-back-N ReliableLink (drops, corruption, duplicates,
// retry exhaustion, QP errors, region invalidation, reset/recovery), the
// verbs reliable RDMA path, CkDirect put recovery and error completions,
// and the run-level invariants (unarmed plan = bit-identical run, same
// seed = byte-identical trace).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckdirect/ckdirect.hpp"
#include "fault/fault.hpp"
#include "fault/reliable.hpp"
#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "ib/verbs.hpp"
#include "net/fabric.hpp"
#include "sim/causal.hpp"
#include "sim/engine.hpp"
#include "topo/fat_tree.hpp"

namespace ckd {
namespace {

TEST(FaultSpec, EmptyIsUnarmed) {
  const fault::FaultPlan plan = fault::parseFaultSpec("");
  EXPECT_TRUE(plan.rules.empty());
  EXPECT_FALSE(plan.armed());
  EXPECT_EQ(plan.summary(), "no faults");
}

TEST(FaultSpec, ZeroRateRulesStayUnarmed) {
  const fault::FaultPlan plan = fault::parseFaultSpec("drop:0,corrupt:0");
  EXPECT_EQ(plan.rules.size(), 2u);
  EXPECT_FALSE(plan.armed());
}

TEST(FaultSpec, ParsesRulesAndOptions) {
  const fault::FaultPlan plan = fault::parseFaultSpec(
      "drop:0.01,corrupt:0.005;class=bulk;src=2;dst=3,"
      "delay:0.02;jitter=8,duplicate:0;nth=5");
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].kind, fault::FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.01);
  EXPECT_EQ(plan.rules[0].cls, fault::MsgClass::kAny);
  EXPECT_EQ(plan.rules[1].kind, fault::FaultKind::kCorrupt);
  EXPECT_EQ(plan.rules[1].cls, fault::MsgClass::kBulk);
  EXPECT_EQ(plan.rules[1].src, 2);
  EXPECT_EQ(plan.rules[1].dst, 3);
  EXPECT_EQ(plan.rules[2].kind, fault::FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(plan.rules[2].delay_us, 8.0);
  EXPECT_EQ(plan.rules[3].nth, 5u);
  EXPECT_TRUE(plan.armed());
}

TEST(FaultSpec, RelPseudoRuleSetsReliabilityKnobs) {
  const fault::FaultPlan plan = fault::parseFaultSpec(
      "rel:0;timeout=12.5;backoff=3;budget=4;appbudget=2,drop:0.1");
  EXPECT_DOUBLE_EQ(plan.rel.timeout_us, 12.5);
  EXPECT_DOUBLE_EQ(plan.rel.backoff, 3.0);
  EXPECT_EQ(plan.rel.retry_budget, 4);
  EXPECT_EQ(plan.rel.app_retry_budget, 2);
  ASSERT_EQ(plan.rules.size(), 1u);  // rel is not a rule
  EXPECT_TRUE(plan.armed());
}

TEST(FaultSpec, MalformedSpecsAbort) {
  EXPECT_DEATH(fault::parseFaultSpec("bogus:0.1"), "unknown fault kind");
  EXPECT_DEATH(fault::parseFaultSpec("drop"), "kind:probability");
  EXPECT_DEATH(fault::parseFaultSpec("drop:1.5"), "in \\[0,1\\]");
  EXPECT_DEATH(fault::parseFaultSpec("drop:0.1;what=3"), "unknown rule option");
}

TEST(FaultInjector, SameSeedSameDecisions) {
  const fault::FaultPlan plan =
      fault::parseFaultSpec("drop:0.3,delay:0.3;jitter=4,corrupt:0.2");
  sim::TraceRecorder traceA, traceB;
  fault::FaultInjector a(plan, 42, traceA);
  fault::FaultInjector b(plan, 42, traceB);
  for (int i = 0; i < 200; ++i) {
    const auto fa = a.decideWire(0.0, 0, 1, 1000, fault::MsgClass::kBulk);
    const auto fb = b.decideWire(0.0, 0, 1, 1000, fault::MsgClass::kBulk);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.duplicate, fb.duplicate);
    EXPECT_EQ(fa.corrupt, fb.corrupt);
    EXPECT_DOUBLE_EQ(fa.extra_delay_us, fb.extra_delay_us);
  }
  for (std::size_t k = 0; k < fault::kFaultKindCount; ++k)
    EXPECT_EQ(a.count(static_cast<fault::FaultKind>(k)),
              b.count(static_cast<fault::FaultKind>(k)));
}

TEST(FaultInjector, NthFiresDeterministically) {
  const fault::FaultPlan plan = fault::parseFaultSpec("drop:0;nth=3");
  sim::TraceRecorder trace;
  fault::FaultInjector inj(plan, 1, trace);
  int drops = 0;
  for (int i = 1; i <= 9; ++i) {
    const auto f = inj.decideWire(0.0, 0, 1, 100, fault::MsgClass::kPacket);
    if (f.drop) ++drops;
    EXPECT_EQ(f.drop, i % 3 == 0) << "message " << i;
  }
  EXPECT_EQ(drops, 3);
  EXPECT_EQ(inj.count(fault::FaultKind::kDrop), 3u);
}

TEST(FaultInjector, FiltersRestrictMatches) {
  const fault::FaultPlan plan =
      fault::parseFaultSpec("drop:0;nth=1;src=0;dst=1;class=bulk");
  sim::TraceRecorder trace;
  fault::FaultInjector inj(plan, 1, trace);
  EXPECT_FALSE(
      inj.decideWire(0.0, 2, 1, 100, fault::MsgClass::kBulk).drop);
  EXPECT_FALSE(
      inj.decideWire(0.0, 0, 2, 100, fault::MsgClass::kBulk).drop);
  EXPECT_FALSE(
      inj.decideWire(0.0, 0, 1, 100, fault::MsgClass::kControl).drop);
  EXPECT_TRUE(inj.decideWire(0.0, 0, 1, 100, fault::MsgClass::kBulk).drop);
}

// ---------------------------------------------------------------------------
// ReliableLink over a faulty fabric.

class ReliableLinkTest : public ::testing::Test {
 protected:
  ReliableLinkTest()
      : topo_(std::make_shared<topo::FatTree>(4, 1)),
        fabric_(engine_, topo_, net::abeParams()) {}

  void arm(const std::string& spec, std::uint64_t seed = 7) {
    const fault::FaultPlan plan = fault::parseFaultSpec(spec);
    fabric_.installFaults(plan, seed);
    link_ = std::make_unique<fault::ReliableLink>(fabric_, plan.rel);
  }

  fault::ReliableLink::Send makeSend(int tag) {
    fault::ReliableLink::Send send;
    send.src = 0;
    send.dst = 1;
    send.wireBytes = 4096;
    send.cls = fault::MsgClass::kBulk;
    send.payload.assign(64, static_cast<std::byte>(tag));
    send.on_deliver = [this, tag](std::vector<std::byte>&& image) {
      deliveredTags_.push_back(tag);
      deliveredImages_.push_back(std::move(image));
    };
    send.on_acked = [this]() { ++acked_; };
    send.on_error = [this](fault::WcStatus status) {
      errors_.push_back(status);
    };
    return send;
  }

  sim::Engine engine_;
  topo::TopologyPtr topo_;
  net::Fabric fabric_;
  std::unique_ptr<fault::ReliableLink> link_;
  std::vector<int> deliveredTags_;
  std::vector<std::vector<std::byte>> deliveredImages_;
  int acked_ = 0;
  std::vector<fault::WcStatus> errors_;
};

TEST_F(ReliableLinkTest, DropsAreRetransmittedInOrderExactlyOnce) {
  arm("drop:0;nth=3;class=bulk");
  for (int i = 0; i < 6; ++i) link_->post(0, makeSend(i));
  engine_.run();
  EXPECT_EQ(deliveredTags_, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(acked_, 6);
  EXPECT_TRUE(errors_.empty());
  EXPECT_GT(link_->retransmits(), 0u);
}

TEST_F(ReliableLinkTest, CorruptionIsCaughtAndPayloadArrivesClean) {
  // nth=3, not 2: with go-back-N's deterministic retransmission pattern an
  // even nth can resonate (the same sequence number always lands on a
  // corrupted transmission slot and the flow never makes progress).
  arm("corrupt:0;nth=3;class=bulk");
  for (int i = 0; i < 4; ++i) link_->post(0, makeSend(i));
  engine_.run();
  ASSERT_EQ(deliveredTags_, (std::vector<int>{0, 1, 2, 3}));
  for (int i = 0; i < 4; ++i) {
    // The corrupted copies were discarded; every delivered image is intact.
    const std::vector<std::byte> want(64, static_cast<std::byte>(i));
    EXPECT_EQ(deliveredImages_[static_cast<std::size_t>(i)], want);
  }
  EXPECT_GT(link_->retransmits(), 0u);
  EXPECT_GT(engine_.trace().count(sim::TraceTag::kFaultCorrupt), 0u);
}

TEST_F(ReliableLinkTest, DuplicatesAreDeliveredExactlyOnce) {
  arm("duplicate:0;nth=1;class=bulk");
  for (int i = 0; i < 5; ++i) link_->post(0, makeSend(i));
  engine_.run();
  EXPECT_EQ(deliveredTags_, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(acked_, 5);
  EXPECT_GT(engine_.trace().count(sim::TraceTag::kRelDupDrop), 0u);
}

TEST_F(ReliableLinkTest, RetransmittedWireImagesKeepTheOriginalTraceId) {
  // One logical message, N wire attempts: every retransmission (and every
  // injected duplicate) must carry the trace id minted at post time, never a
  // fresh one — otherwise the causal graph would sprout phantom chains.
  arm("drop:0;nth=3;class=bulk,duplicate:0;nth=7;class=bulk");
  engine_.trace().enable();
  std::vector<std::uint64_t> posted;
  for (int i = 0; i < 6; ++i) {
    fault::ReliableLink::Send send = makeSend(i);
    send.traceId = engine_.trace().mintId();
    posted.push_back(send.traceId);
    link_->post(0, std::move(send));
  }
  engine_.run();
  EXPECT_EQ(deliveredTags_, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_GT(link_->retransmits(), 0u);

  std::map<std::uint64_t, int> submits;
  const std::vector<sim::TraceEvent> events = engine_.trace().snapshot();
  for (const sim::TraceEvent& ev : events) {
    if (ev.id == 0) continue;  // acks/naks ride outside any chain
    const bool known =
        std::find(posted.begin(), posted.end(), ev.id) != posted.end();
    EXPECT_TRUE(known) << "wire event minted a fresh chain id " << ev.id;
    if (ev.tag == sim::TraceTag::kFabricSubmit) ++submits[ev.id];
  }
  // At least one message hit the wire more than once under its original id.
  int multiAttempt = 0;
  for (const auto& [id, n] : submits) multiAttempt += n > 1;
  EXPECT_GT(multiAttempt, 0);

  // The analyzer folds all attempts into one chain per logical message.
  const sim::CausalGraph graph(events);
  for (const std::uint64_t id : posted)
    EXPECT_NE(graph.chain(id), nullptr);
  bool sawRetry = false;
  for (const sim::CausalChain& c : graph.chains())
    sawRetry |= c.attempts > 0;  // counts kRelRetransmit events on the chain
  EXPECT_TRUE(sawRetry);
}

TEST_F(ReliableLinkTest, RetryBudgetExhaustionErrorsAndResetRecovers) {
  // Every bulk transmission is dropped: the entry can never be delivered,
  // so after retry_budget consecutive timeouts it completes with
  // WC_RETRY_EXC and the channel enters the error state.
  arm("drop:1;class=bulk,rel:0;timeout=5;budget=2");
  link_->post(0, makeSend(0));
  engine_.run();
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_EQ(errors_[0], fault::WcStatus::kRetryExceeded);
  EXPECT_EQ(acked_, 0);
  EXPECT_TRUE(deliveredTags_.empty());
  EXPECT_TRUE(link_->channelInError(0));

  // Posting to an errored channel flushes immediately, like a QP in ERROR.
  link_->post(0, makeSend(1));
  ASSERT_EQ(errors_.size(), 2u);
  EXPECT_EQ(errors_[1], fault::WcStatus::kQpError);

  link_->resetChannel(0);
  EXPECT_FALSE(link_->channelInError(0));
}

TEST_F(ReliableLinkTest, ResetChannelClearsTheStaleDeliveryEstimate) {
  // Regression: resetChannel() left Flow::lastEta at the dead sequence
  // space's value. The retransmission timer waits out the contention-free
  // ETA of the newest outstanding copy, so when a flow died while a
  // multi-megabyte write was still on the wire (a QP error at post time —
  // virtual now far below that write's ETA), the first packet-scale send on
  // the reset channel inherited the dead write's multi-millisecond timeout:
  // its retransmission stalled for the big write's wire time instead of its
  // own.
  arm("qp_error:0;nth=2,drop:0;nth=2;class=bulk,rel:0;timeout=5;budget=4");
  fault::ReliableLink::Send big = makeSend(0);
  big.wireBytes = 32u << 20;
  link_->post(0, std::move(big));  // on the wire; ETA is milliseconds out
  link_->post(0, makeSend(1));     // 2nd post: QP error, flow fails at t=0
  ASSERT_EQ(errors_.size(), 2u);
  EXPECT_TRUE(link_->channelInError(0));
  link_->resetChannel(0);

  // Packet-scale probe: its first copy is dropped (2nd bulk wire op), so
  // its delivery time is dominated by the retransmission timer — which must
  // be sized from the probe's own ETA, not the dead 32 MB write's.
  sim::Time probeDeliveredAt = -1.0;
  fault::ReliableLink::Send probe = makeSend(2);
  probe.on_deliver = [this, &probeDeliveredAt](std::vector<std::byte>&&) {
    probeDeliveredAt = engine_.now();
  };
  link_->post(0, std::move(probe));
  engine_.run();
  ASSERT_GT(probeDeliveredAt, 0.0);
  // The run's horizon covers the dead big copy's wire arrival, so it bounds
  // the stale ETA from below; the probe must complete far earlier.
  EXPECT_LT(probeDeliveredAt, engine_.now() / 10.0)
      << "post-reset timer still carries the failed big write's ETA";
}

TEST_F(ReliableLinkTest, InjectedQpErrorFlushesAtPost) {
  arm("qp_error:0;nth=1");
  link_->post(0, makeSend(0));
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_EQ(errors_[0], fault::WcStatus::kQpError);
  EXPECT_TRUE(link_->channelInError(0));
}

TEST_F(ReliableLinkTest, RegionInvalidationNaksWithRemoteAccess) {
  arm("region_invalid:0;nth=1");
  link_->post(0, makeSend(0));
  engine_.run();
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_EQ(errors_[0], fault::WcStatus::kRemoteAccess);
  EXPECT_TRUE(deliveredTags_.empty());
  EXPECT_TRUE(link_->channelInError(0));
}

TEST_F(ReliableLinkTest, ChannelsAreIndependent) {
  // Channel 0 is rendered useless; channel 1 (different dst) still works.
  arm("drop:1;class=bulk;dst=1,rel:0;timeout=5;budget=2");
  link_->post(0, makeSend(0));
  fault::ReliableLink::Send other = makeSend(1);
  other.dst = 2;
  link_->post(1, std::move(other));
  engine_.run();
  EXPECT_EQ(deliveredTags_, (std::vector<int>{1}));
  ASSERT_EQ(errors_.size(), 1u);
  EXPECT_TRUE(link_->channelInError(0));
  EXPECT_FALSE(link_->channelInError(1));
}

// ---------------------------------------------------------------------------
// Verbs reliable RDMA path.

TEST(FaultVerbs, RdmaWritesSurviveDrops) {
  sim::Engine engine;
  auto topo = std::make_shared<topo::FatTree>(4, 1);
  net::Fabric fabric(engine, topo, net::abeParams());
  fabric.installFaults(fault::parseFaultSpec("drop:0;nth=3;class=bulk"), 11);
  ib::IbVerbs verbs(fabric);

  constexpr std::size_t kBytes = 512;
  std::vector<std::vector<std::byte>> src(3), dst(3);
  int remoteDone = 0, localDone = 0;
  for (int i = 0; i < 3; ++i) {
    src[i].assign(kBytes, static_cast<std::byte>(i + 1));
    dst[i].assign(kBytes, std::byte{0});
    ib::IbVerbs::RdmaWrite w;
    w.qp = verbs.connect(0, 1);
    w.local_addr = src[i].data();
    w.local_region = verbs.registerMemory(0, src[i].data(), kBytes);
    w.remote_addr = dst[i].data();
    w.remote_region = verbs.registerMemory(1, dst[i].data(), kBytes);
    w.bytes = kBytes;
    w.on_local_complete = [&localDone] { ++localDone; };
    w.on_remote_delivered = [&remoteDone] { ++remoteDone; };
    verbs.postRdmaWrite(std::move(w));
  }
  engine.run();
  EXPECT_EQ(remoteDone, 3);
  EXPECT_EQ(localDone, 3);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(std::memcmp(dst[i].data(), src[i].data(), kBytes), 0)
        << "write " << i;
  EXPECT_GT(engine.trace().count(sim::TraceTag::kRelRetransmit), 0u);
}

// ---------------------------------------------------------------------------
// CkDirect recovery.

TEST(FaultCkDirect, PutDeliversCorrectBytesUnderDrops) {
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  machine.faults = fault::parseFaultSpec("drop:0.3,corrupt:0.1");
  machine.faultSeed = 5;
  charm::Runtime rts(machine);

  constexpr std::size_t kBytes = 256;
  std::vector<std::byte> sendBuf(kBytes), recvBuf(kBytes, std::byte{0});
  for (std::size_t i = 0; i < kBytes; ++i)
    sendBuf[i] = static_cast<std::byte>(i * 3 + 1);
  bool arrived = false;
  direct::Handle h = direct::createHandle(
      rts, 1, recvBuf.data(), kBytes, 0xDEADBEEFCAFEBABEull, [&]() {
        arrived = true;
        EXPECT_EQ(std::memcmp(recvBuf.data(), sendBuf.data(), kBytes), 0);
      });
  direct::assocLocal(h, 0, sendBuf.data());
  rts.seed([h]() { direct::put(h); });
  rts.run();
  EXPECT_TRUE(arrived);
  EXPECT_GT(rts.engine().trace().count(sim::TraceTag::kFaultDrop) +
                rts.engine().trace().count(sim::TraceTag::kFaultCorrupt),
            0u);
}

void expectPutErrorSurfaces(charm::MachineConfig machine) {
  // All bulk/packet data is dropped: the link exhausts its retry budget,
  // the manager re-puts app_retry_budget times, then the application's
  // error callback gets the completion.
  machine.faults = fault::parseFaultSpec(
      "drop:1;class=bulk,drop:1;class=packet,"
      "rel:0;timeout=5;budget=1;appbudget=2");
  machine.faultSeed = 2;
  charm::Runtime rts(machine);

  std::vector<std::byte> sendBuf(64, std::byte{1}), recvBuf(64, std::byte{0});
  bool arrived = false;
  std::vector<fault::WcStatus> statuses;
  direct::Handle h = direct::createHandle(rts, 1, recvBuf.data(), 64,
                                          0xDEADBEEFCAFEBABEull,
                                          [&]() { arrived = true; });
  direct::assocLocal(h, 0, sendBuf.data());
  direct::setErrorCallback(
      h, [&](fault::WcStatus status) { statuses.push_back(status); });
  rts.seed([h]() { direct::put(h); });
  rts.run();

  EXPECT_FALSE(arrived);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0], fault::WcStatus::kRetryExceeded);
  const direct::Manager* mgr = direct::Manager::peek(rts);
  ASSERT_NE(mgr, nullptr);
  EXPECT_EQ(mgr->putRetries(), 2u);  // == appbudget
}

TEST(FaultCkDirect, PutErrorSurfacesOnIb) {
  expectPutErrorSurfaces(harness::abeMachine(2, 1));
}

TEST(FaultCkDirect, PutErrorSurfacesOnBgp) {
  expectPutErrorSurfaces(harness::surveyorMachine(2, 1));
}

TEST(FaultCkDirectDeath, PermanentFailureWithoutCallbackAborts) {
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  machine.faults = fault::parseFaultSpec(
      "drop:1;class=bulk,rel:0;timeout=5;budget=1;appbudget=1");
  charm::Runtime rts(machine);
  std::vector<std::byte> sendBuf(64, std::byte{1}), recvBuf(64, std::byte{0});
  direct::Handle h = direct::createHandle(rts, 1, recvBuf.data(), 64,
                                          0xDEADBEEFCAFEBABEull, []() {});
  direct::assocLocal(h, 0, sendBuf.data());
  rts.seed([h]() { direct::put(h); });
  EXPECT_DEATH(rts.run(), "no error callback");
}

// ---------------------------------------------------------------------------
// Run-level invariants.

TEST(FaultDeterminism, UnarmedPlanIsBitIdenticalToNoPlan) {
  harness::PingpongConfig cfg;
  cfg.bytes = 10000;
  cfg.iterations = 20;
  cfg.trace = true;
  harness::ProfileReport base, withPlan;
  cfg.profile = &base;
  const charm::MachineConfig plain = harness::abeMachine(2, 1);
  const double rttPlain = harness::ckdirectPingpongRtt(plain, cfg);

  charm::MachineConfig unarmed = plain;
  unarmed.faults = fault::parseFaultSpec("drop:0,corrupt:0");  // never fires
  ASSERT_FALSE(unarmed.faults.armed());
  cfg.profile = &withPlan;
  const double rttUnarmed = harness::ckdirectPingpongRtt(unarmed, cfg);

  EXPECT_EQ(rttPlain, rttUnarmed);  // bit-identical, not just close
  ASSERT_EQ(base.traceEvents.size(), withPlan.traceEvents.size());
  for (std::size_t i = 0; i < base.traceEvents.size(); ++i) {
    EXPECT_EQ(base.traceEvents[i].time, withPlan.traceEvents[i].time);
    EXPECT_EQ(base.traceEvents[i].tag, withPlan.traceEvents[i].tag);
  }
}

TEST(FaultDeterminism, SameSeedGivesByteIdenticalTrace) {
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  machine.faults =
      fault::parseFaultSpec("drop:0.05,corrupt:0.02,duplicate:0.02,delay:0.1");
  machine.faultSeed = 31;

  harness::PingpongConfig cfg;
  cfg.bytes = 10000;
  cfg.iterations = 50;
  cfg.trace = true;

  harness::ProfileReport a, b;
  cfg.profile = &a;
  const double rttA = harness::ckdirectPingpongRtt(machine, cfg);
  cfg.profile = &b;
  const double rttB = harness::ckdirectPingpongRtt(machine, cfg);

  EXPECT_EQ(rttA, rttB);
  EXPECT_GT(a.tagCounts[static_cast<std::size_t>(sim::TraceTag::kFaultDrop)],
            0u);
  // The retained event streams — what --trace-dump serializes — match
  // event for event: same virtual times, PEs, tags, and values.
  ASSERT_EQ(a.traceEvents.size(), b.traceEvents.size());
  for (std::size_t i = 0; i < a.traceEvents.size(); ++i) {
    EXPECT_EQ(a.traceEvents[i].time, b.traceEvents[i].time);
    EXPECT_EQ(a.traceEvents[i].pe, b.traceEvents[i].pe);
    EXPECT_EQ(a.traceEvents[i].tag, b.traceEvents[i].tag);
    EXPECT_EQ(a.traceEvents[i].value, b.traceEvents[i].value);
  }
  for (std::size_t i = 0; i < sim::kTraceTagCount; ++i)
    EXPECT_EQ(a.tagCounts[i], b.tagCounts[i]);
}

TEST(FaultDeterminism, DifferentSeedsDiverge) {
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  machine.faults = fault::parseFaultSpec("drop:0.1,delay:0.2;jitter=6");

  harness::PingpongConfig cfg;
  cfg.bytes = 10000;
  cfg.iterations = 50;

  machine.faultSeed = 1;
  const double rttA = harness::ckdirectPingpongRtt(machine, cfg);
  machine.faultSeed = 2;
  const double rttB = harness::ckdirectPingpongRtt(machine, cfg);
  EXPECT_NE(rttA, rttB);
}

}  // namespace
}  // namespace ckd
