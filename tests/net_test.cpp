// Tests for the topology and fabric models: hop counts, NIC sharing,
// serialization math, port contention, delivery ordering.

#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "topo/fat_tree.hpp"
#include "topo/torus3d.hpp"

namespace ckd {
namespace {

TEST(FatTree, NodeAssignment) {
  topo::FatTree t(4, 8);
  EXPECT_EQ(t.numPes(), 32);
  EXPECT_EQ(t.numNodes(), 4);
  EXPECT_EQ(t.nodeOf(0), 0);
  EXPECT_EQ(t.nodeOf(7), 0);
  EXPECT_EQ(t.nodeOf(8), 1);
  EXPECT_TRUE(t.sameNode(0, 7));
  EXPECT_FALSE(t.sameNode(7, 8));
}

TEST(FatTree, HopCounts) {
  topo::FatTree t(48, 1, /*nodesPerSwitch=*/24);
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 1), 2);    // same leaf switch
  EXPECT_EQ(t.hops(0, 24), 4);   // across the spine
  EXPECT_EQ(t.injectionSharers(0), 1);
}

TEST(Torus3D, PowerOfTwoFactorization) {
  const auto t = topo::Torus3D::forPes(2048, 4);  // 512 nodes
  const auto d = t.dims();
  EXPECT_EQ(d[0] * d[1] * d[2], 512);
  EXPECT_EQ(t.numPes(), 2048);
  // Near-cubic: 8x8x8.
  EXPECT_EQ(d[0], 8);
  EXPECT_EQ(d[1], 8);
  EXPECT_EQ(d[2], 8);
}

TEST(Torus3D, WraparoundDistance) {
  topo::Torus3D t(8, 8, 8, 1);
  // Node 0 is (0,0,0); node 7 is (7,0,0): wraparound distance 1.
  EXPECT_EQ(t.hops(0, 7), 1);
  // Node (4,0,0): max distance 4 in x.
  EXPECT_EQ(t.hops(0, 4), 4);
  EXPECT_EQ(t.hops(0, 0), 0);
}

TEST(Torus3D, AverageHops) {
  topo::Torus3D t(8, 8, 8, 1);
  EXPECT_DOUBLE_EQ(t.averageHops(), 6.0);  // 3 * 8/4
}

TEST(XferClass, SerializationMath) {
  net::XferClass cls{/*alpha*/ 5.0, /*per_byte*/ 2e-3, /*per_packet*/ 0.5,
                     /*mtu*/ 1024};
  // 2500 bytes -> 3 packets.
  EXPECT_DOUBLE_EQ(cls.serialization(2500), 2500 * 2e-3 + 3 * 0.5);
  EXPECT_DOUBLE_EQ(cls.serialization(0), 0.5);  // one (empty) packet
  net::XferClass noPackets{1.0, 1e-3, 0.0, 0};
  EXPECT_DOUBLE_EQ(noPackets.serialization(1000), 1.0);
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest()
      : topo_(std::make_shared<topo::FatTree>(4, 2)),
        fabric_(engine_, topo_, net::abeParams()) {}

  sim::Engine engine_;
  topo::TopologyPtr topo_;
  net::Fabric fabric_;
};

TEST_F(FabricTest, IntraNodeUsesMemcpyPath) {
  double delivered = -1;
  // PEs 0 and 1 share node 0.
  fabric_.submit(0, 1, 1000, net::XferKind::kPacket,
                 [&] { delivered = engine_.now(); });
  engine_.run();
  const auto& p = fabric_.params();
  EXPECT_DOUBLE_EQ(delivered, p.intra_alpha_us + p.intra_per_byte_us * 1000);
}

TEST_F(FabricTest, InterNodeLatencyIncludesHops) {
  double delivered = -1;
  fabric_.submit(0, 2, 0, net::XferKind::kControl,
                 [&] { delivered = engine_.now(); });
  engine_.run();
  const auto& p = fabric_.params();
  EXPECT_DOUBLE_EQ(delivered, p.control.alpha_us + 2 * p.per_hop_us);
}

TEST_F(FabricTest, InjectionPortSharesBandwidthRoundRobin) {
  // Two concurrent bulk messages from node 0 (PEs 0 and 1 share it) to
  // different destinations share the injection port: each takes about
  // twice its solo serialization time to finish.
  std::vector<double> deliveries;
  fabric_.submit(0, 2, 10000, net::XferKind::kRdma,
                 [&] { deliveries.push_back(engine_.now()); });
  fabric_.submit(1, 4, 10000, net::XferKind::kRdma,
                 [&] { deliveries.push_back(engine_.now()); });
  EXPECT_EQ(fabric_.injectQueueLength(0), 2u);
  engine_.run();
  ASSERT_EQ(deliveries.size(), 2u);
  const double ser = fabric_.params().rdma.serialization(10000);
  const double alpha = fabric_.params().rdma.alpha_us;
  // Both finish close to 2x the solo serialization (fair sharing), well
  // after a solo message would have (ser).
  EXPECT_GT(deliveries[0], ser + alpha);
  EXPECT_NEAR(deliveries[1], 2 * ser + alpha +
                                 2 * fabric_.params().per_hop_us,
              ser / 4);
  EXPECT_EQ(fabric_.injectQueueLength(0), 0u);
}

TEST_F(FabricTest, SoloBulkMessageCostsExactlySerialization) {
  // A lone bulk transfer must take ser + latency — the round-robin port
  // adds nothing when uncontended (calibration invariant).
  double delivered = -1;
  fabric_.submit(0, 2, 100000, net::XferKind::kRdma,
                 [&] { delivered = engine_.now(); });
  engine_.run();
  const auto& p = fabric_.params();
  EXPECT_NEAR(delivered,
              p.rdma.serialization(100000) + p.rdma.alpha_us +
                  2 * p.per_hop_us,
              1e-9);
}

TEST_F(FabricTest, SmallMessageBypassesBusyPort) {
  // A single-packet message submitted behind a large transfer is not
  // stalled by it (packet interleaving).
  double bigAt = -1, smallAt = -1;
  fabric_.submit(0, 2, 500000, net::XferKind::kRdma,
                 [&] { bigAt = engine_.now(); });
  fabric_.submit(0, 2, 200, net::XferKind::kPacket,
                 [&] { smallAt = engine_.now(); });
  engine_.run();
  EXPECT_LT(smallAt, bigAt);
  EXPECT_LT(smallAt, 10.0);  // latency-bound, not behind 500 KB
}

TEST_F(FabricTest, EjectionPortSerializesManyToOne) {
  // Incast: two full-rate streams from different nodes into one node can
  // only drain at the destination's aggregate link rate — the second
  // message completes around 2x the solo serialization.
  std::vector<double> deliveries;
  fabric_.submit(2, 0, 20000, net::XferKind::kRdma,
                 [&] { deliveries.push_back(engine_.now()); });
  fabric_.submit(4, 0, 20000, net::XferKind::kRdma,
                 [&] { deliveries.push_back(engine_.now()); });
  engine_.run();
  ASSERT_EQ(deliveries.size(), 2u);
  const double ser = fabric_.params().rdma.serialization(20000);
  EXPECT_GT(deliveries[1], deliveries[0]);
  EXPECT_NEAR(deliveries[1], 2 * ser, ser / 10);
}

TEST_F(FabricTest, ControlSkipsPorts) {
  // A huge RDMA transfer should not delay a control message.
  double controlAt = -1;
  fabric_.submit(0, 2, 1000000, net::XferKind::kRdma, [] {});
  fabric_.submit(0, 2, 16, net::XferKind::kControl,
                 [&] { controlAt = engine_.now(); });
  engine_.run();
  const auto& p = fabric_.params();
  EXPECT_DOUBLE_EQ(controlAt,
                   p.control.alpha_us + 2 * p.per_hop_us +
                       p.control.per_byte_us * 16);
}

TEST_F(FabricTest, SameRouteEqualSizeDeliveryIsFifo) {
  // Equal-size transfers on one route complete in submission order (the
  // per-message atomicity CkDirect's sentinel relies on — a message is
  // placed wholly, and back-to-back puts on one channel stay ordered).
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    fabric_.submit(0, 2, 10000, net::XferKind::kRdma,
                   [&order, i] { order.push_back(i); });
  engine_.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST_F(FabricTest, ZeroByteSubmitsDeliver) {
  // Degenerate sizes must still round-trip through every path: a zero-byte
  // bulk transfer is one empty wire packet, a zero-byte control message is
  // pure latency. Neither may hang or divide by zero.
  double bulkAt = -1, controlAt = -1, intraAt = -1;
  fabric_.submit(0, 2, 0, net::XferKind::kRdma,
                 [&] { bulkAt = engine_.now(); });
  fabric_.submit(0, 2, 0, net::XferKind::kControl,
                 [&] { controlAt = engine_.now(); });
  fabric_.submit(0, 1, 0, net::XferKind::kPacket,
                 [&] { intraAt = engine_.now(); });
  engine_.run();
  const auto& p = fabric_.params();
  EXPECT_DOUBLE_EQ(bulkAt, p.rdma.serialization(0) + p.rdma.alpha_us +
                               2 * p.per_hop_us);
  EXPECT_DOUBLE_EQ(controlAt, p.control.alpha_us + 2 * p.per_hop_us);
  EXPECT_DOUBLE_EQ(intraAt, p.intra_alpha_us);
  EXPECT_EQ(fabric_.bytesSubmitted(), 0u);
  EXPECT_EQ(fabric_.messagesSubmitted(), 3u);
}

TEST_F(FabricTest, SamePeSubmitUsesSelfPath) {
  double packetAt = -1, bulkAt = -1;
  fabric_.submit(0, 0, 4096, net::XferKind::kPacket,
                 [&] { packetAt = engine_.now(); });
  fabric_.submit(0, 0, 4096, net::XferKind::kRdma,
                 [&] { bulkAt = engine_.now(); });
  engine_.run();
  const auto& p = fabric_.params();
  EXPECT_DOUBLE_EQ(packetAt, p.self_alpha_us + p.self_per_byte_us * 4096);
  EXPECT_DOUBLE_EQ(bulkAt, p.self_alpha_us + p.self_per_byte_us * 4096);
  // Self-sends never touch the node's injection port.
  EXPECT_EQ(fabric_.injectQueueLength(0), 0u);
}

TEST_F(FabricTest, ControlStaysTimelyUnderBulkSaturation) {
  // Both PEs of node 0 flood the injection port with bulk transfers; a
  // control message submitted last must still deliver at the uncontended
  // latency (control-class traffic never queues behind bulk).
  for (int i = 0; i < 4; ++i) {
    fabric_.submit(0, 2, 400000, net::XferKind::kRdma, [] {});
    fabric_.submit(1, 4, 400000, net::XferKind::kRdma, [] {});
  }
  EXPECT_GT(fabric_.injectQueueLength(0), 0u);
  double controlAt = -1;
  fabric_.submit(0, 2, 16, net::XferKind::kControl,
                 [&] { controlAt = engine_.now(); });
  engine_.run();
  const auto& p = fabric_.params();
  EXPECT_DOUBLE_EQ(controlAt,
                   p.control.alpha_us + 2 * p.per_hop_us +
                       p.control.per_byte_us * 16);
}

TEST_F(FabricTest, UnarmedPlanInstallsNothing) {
  fault::FaultPlan plan;  // no rules: armed() == false
  fabric_.installFaults(plan, 123);
  EXPECT_EQ(fabric_.faults(), nullptr);
  double delivered = -1;
  fabric_.submit(0, 2, 1000, net::XferKind::kPacket,
                 [&] { delivered = engine_.now(); });
  engine_.run();
  EXPECT_GT(delivered, 0.0);
}

TEST_F(FabricTest, FaultsSpareIntraNodeTraffic) {
  // drop:1 kills every inter-node message, but co-located and same-PE
  // submits never cross the wire and must be untouched.
  fabric_.installFaults(fault::parseFaultSpec("drop:1"), 9);
  ASSERT_NE(fabric_.faults(), nullptr);
  bool intra = false, self = false, inter = false;
  fabric_.submit(0, 1, 1000, net::XferKind::kPacket, [&] { intra = true; });
  fabric_.submit(0, 0, 1000, net::XferKind::kPacket, [&] { self = true; });
  fabric_.submit(0, 2, 1000, net::XferKind::kPacket, [&] { inter = true; });
  engine_.run();
  EXPECT_TRUE(intra);
  EXPECT_TRUE(self);
  EXPECT_FALSE(inter);
  EXPECT_EQ(fabric_.faults()->count(fault::FaultKind::kDrop), 1u);
}

TEST_F(FabricTest, TracksStats) {
  fabric_.submit(0, 2, 123, net::XferKind::kPacket, [] {});
  fabric_.submit(0, 2, 77, net::XferKind::kControl, [] {});
  EXPECT_EQ(fabric_.messagesSubmitted(), 2u);
  EXPECT_EQ(fabric_.bytesSubmitted(), 200u);
  fabric_.resetStats();
  EXPECT_EQ(fabric_.messagesSubmitted(), 0u);
  engine_.run();
}

TEST(CostParams, PresetsAreSane) {
  const auto abe = net::abeParams();
  EXPECT_TRUE(abe.has_rdma);
  EXPECT_LT(abe.rdma.per_byte_us, abe.packet.per_byte_us);
  const auto bgp = net::surveyorParams();
  EXPECT_FALSE(bgp.has_rdma);
  // classFor(kRdma) falls back to the packet class on BG/P.
  EXPECT_EQ(&bgp.classFor(net::XferKind::kRdma),
            &bgp.classFor(net::XferKind::kPacket));
  const auto t3 = net::t3Params();
  EXPECT_GT(t3.rdma.alpha_us, abe.rdma.alpha_us);
}

}  // namespace
}  // namespace ckd
