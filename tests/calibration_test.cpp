// Calibration tests: the simulated machines must reproduce every cell of
// the paper's Table 1 (InfiniBand) and Table 2 (Blue Gene/P) pingpong
// measurements within tolerance, and — more importantly — the *relations*
// the paper's analysis hinges on (who wins where, and the protocol
// crossovers).

#include <gtest/gtest.h>

#include <tuple>

#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "mpi/mpi_costs.hpp"

namespace ckd {
namespace {

enum Variant {
  kCharmDefault,
  kCharmCkDirect,
  kMpichVmi,
  kMvapich,
  kMvapichPut,
  kIbmMpi,
  kIbmMpiPut,
};

struct Cell {
  Variant variant;
  std::size_t bytes;
  double paperRtt;
};

double measureIb(Variant variant, std::size_t bytes) {
  const charm::MachineConfig machine = harness::abeMachine(2, 1);
  harness::PingpongConfig cfg;
  cfg.bytes = bytes;
  cfg.iterations = 50;
  switch (variant) {
    case kCharmDefault: return harness::charmPingpongRtt(machine, cfg);
    case kCharmCkDirect: return harness::ckdirectPingpongRtt(machine, cfg);
    case kMpichVmi:
      return harness::mpiPingpongRtt(machine, mpi::mpichVmiCosts(), cfg);
    case kMvapich:
      return harness::mpiPingpongRtt(machine, mpi::mvapichCosts(), cfg);
    case kMvapichPut:
      return harness::mpiPutPingpongRtt(machine, mpi::mvapichCosts(), cfg);
    default: break;
  }
  ADD_FAILURE() << "not an InfiniBand variant";
  return 0;
}

double measureBgp(Variant variant, std::size_t bytes) {
  const charm::MachineConfig machine = harness::surveyorMachine(2, 1);
  harness::PingpongConfig cfg;
  cfg.bytes = bytes;
  cfg.iterations = 50;
  switch (variant) {
    case kCharmDefault: return harness::charmPingpongRtt(machine, cfg);
    case kCharmCkDirect: return harness::ckdirectPingpongRtt(machine, cfg);
    case kIbmMpi:
      return harness::mpiPingpongRtt(machine, mpi::ibmBgpCosts(), cfg);
    case kIbmMpiPut:
      return harness::mpiPutPingpongRtt(machine, mpi::ibmBgpCosts(), cfg);
    default: break;
  }
  ADD_FAILURE() << "not a Blue Gene variant";
  return 0;
}

// --- Table 1 (InfiniBand / Abe), all 50 cells -------------------------------

class Table1Cell : public ::testing::TestWithParam<Cell> {};

TEST_P(Table1Cell, WithinTolerance) {
  const Cell cell = GetParam();
  const double measured = measureIb(cell.variant, cell.bytes);
  // 16% relative tolerance: the fits target the table's shape; a few
  // mid-size cells of the real measurements are not smooth.
  EXPECT_NEAR(measured, cell.paperRtt, 0.16 * cell.paperRtt)
      << "variant " << cell.variant << " bytes " << cell.bytes;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, Table1Cell,
    ::testing::Values(
        Cell{kCharmDefault, 100, 22.924}, Cell{kCharmDefault, 1000, 25.110},
        Cell{kCharmDefault, 5000, 47.340}, Cell{kCharmDefault, 10000, 66.176},
        Cell{kCharmDefault, 20000, 96.215},
        Cell{kCharmDefault, 30000, 160.470},
        Cell{kCharmDefault, 40000, 191.343},
        Cell{kCharmDefault, 70000, 271.803},
        Cell{kCharmDefault, 100000, 353.305},
        Cell{kCharmDefault, 500000, 1399.145},
        Cell{kCharmCkDirect, 100, 12.383}, Cell{kCharmCkDirect, 1000, 16.108},
        Cell{kCharmCkDirect, 5000, 29.330},
        Cell{kCharmCkDirect, 10000, 43.136},
        Cell{kCharmCkDirect, 20000, 68.927},
        Cell{kCharmCkDirect, 30000, 93.422},
        Cell{kCharmCkDirect, 40000, 120.954},
        Cell{kCharmCkDirect, 70000, 195.248},
        Cell{kCharmCkDirect, 100000, 275.322},
        Cell{kCharmCkDirect, 500000, 1294.358},
        Cell{kMpichVmi, 100, 12.367}, Cell{kMpichVmi, 1000, 19.669},
        Cell{kMpichVmi, 5000, 37.318}, Cell{kMpichVmi, 10000, 60.892},
        Cell{kMpichVmi, 20000, 102.684}, Cell{kMpichVmi, 30000, 127.591},
        Cell{kMpichVmi, 40000, 201.148}, Cell{kMpichVmi, 70000, 322.687},
        Cell{kMpichVmi, 100000, 332.690}, Cell{kMpichVmi, 500000, 1396.942},
        Cell{kMvapich, 100, 12.302}, Cell{kMvapich, 1000, 19.436},
        Cell{kMvapich, 5000, 37.311}, Cell{kMvapich, 10000, 56.249},
        Cell{kMvapich, 20000, 88.659}, Cell{kMvapich, 30000, 119.452},
        Cell{kMvapich, 40000, 144.973}, Cell{kMvapich, 70000, 236.545},
        Cell{kMvapich, 100000, 315.692}, Cell{kMvapich, 500000, 1386.051},
        Cell{kMvapichPut, 100, 16.801}, Cell{kMvapichPut, 1000, 22.821},
        Cell{kMvapichPut, 5000, 51.750}, Cell{kMvapichPut, 10000, 64.202},
        Cell{kMvapichPut, 20000, 94.250}, Cell{kMvapichPut, 30000, 120.218},
        Cell{kMvapichPut, 40000, 146.028}, Cell{kMvapichPut, 70000, 232.021},
        Cell{kMvapichPut, 100000, 308.942},
        Cell{kMvapichPut, 500000, 1369.516}));

// --- Table 2 (Blue Gene/P / Surveyor), all 40 cells ---------------------------

class Table2Cell : public ::testing::TestWithParam<Cell> {};

TEST_P(Table2Cell, WithinTolerance) {
  const Cell cell = GetParam();
  const double measured = measureBgp(cell.variant, cell.bytes);
  EXPECT_NEAR(measured, cell.paperRtt, 0.12 * cell.paperRtt)
      << "variant " << cell.variant << " bytes " << cell.bytes;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, Table2Cell,
    ::testing::Values(
        Cell{kCharmDefault, 100, 14.467}, Cell{kCharmDefault, 1000, 20.822},
        Cell{kCharmDefault, 5000, 44.822}, Cell{kCharmDefault, 10000, 72.976},
        Cell{kCharmDefault, 20000, 128.166},
        Cell{kCharmDefault, 30000, 186.771},
        Cell{kCharmDefault, 40000, 240.306},
        Cell{kCharmDefault, 70000, 400.226},
        Cell{kCharmDefault, 100000, 560.634},
        Cell{kCharmDefault, 500000, 2693.601},
        Cell{kCharmCkDirect, 100, 5.133}, Cell{kCharmCkDirect, 1000, 11.379},
        Cell{kCharmCkDirect, 5000, 33.112},
        Cell{kCharmCkDirect, 10000, 60.675},
        Cell{kCharmCkDirect, 20000, 115.103},
        Cell{kCharmCkDirect, 30000, 169.552},
        Cell{kCharmCkDirect, 40000, 223.599},
        Cell{kCharmCkDirect, 70000, 383.732},
        Cell{kCharmCkDirect, 100000, 543.491},
        Cell{kCharmCkDirect, 500000, 2677.072},
        Cell{kIbmMpi, 100, 7.606}, Cell{kIbmMpi, 1000, 13.936},
        Cell{kIbmMpi, 5000, 39.903}, Cell{kIbmMpi, 10000, 66.661},
        Cell{kIbmMpi, 20000, 120.548}, Cell{kIbmMpi, 30000, 173.041},
        Cell{kIbmMpi, 40000, 226.739}, Cell{kIbmMpi, 70000, 386.712},
        Cell{kIbmMpi, 100000, 546.740}, Cell{kIbmMpi, 500000, 2680.459},
        Cell{kIbmMpiPut, 100, 14.049}, Cell{kIbmMpiPut, 1000, 17.836},
        Cell{kIbmMpiPut, 5000, 39.963}, Cell{kIbmMpiPut, 10000, 67.972},
        Cell{kIbmMpiPut, 20000, 122.693}, Cell{kIbmMpiPut, 30000, 178.571},
        Cell{kIbmMpiPut, 40000, 232.629}, Cell{kIbmMpiPut, 70000, 392.388},
        Cell{kIbmMpiPut, 100000, 552.708},
        Cell{kIbmMpiPut, 500000, 2685.972}));

// --- the relations the paper's analysis rests on ------------------------------

class PingpongRelations : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PingpongRelations, CkDirectBeatsDefaultCharmOnIb) {
  const std::size_t bytes = GetParam();
  EXPECT_LT(measureIb(kCharmCkDirect, bytes), measureIb(kCharmDefault, bytes));
}

TEST_P(PingpongRelations, CkDirectBeatsBothMpisOnIb) {
  const std::size_t bytes = GetParam();
  // §3: "CkDirect ... performs better than both versions of MPI available
  // on the machine" for 1 KB and above (at 100 B they are within noise).
  if (bytes < 1000) return;
  EXPECT_LT(measureIb(kCharmCkDirect, bytes), measureIb(kMpichVmi, bytes));
  EXPECT_LT(measureIb(kCharmCkDirect, bytes), measureIb(kMvapich, bytes));
}

TEST_P(PingpongRelations, CkDirectBeatsMpiPut) {
  const std::size_t bytes = GetParam();
  // "The lack of synchronization ... affords it an advantage even over
  // one-sided MPI communication primitives."
  EXPECT_LT(measureIb(kCharmCkDirect, bytes), measureIb(kMvapichPut, bytes));
  EXPECT_LT(measureBgp(kCharmCkDirect, bytes), measureBgp(kIbmMpiPut, bytes));
}

TEST_P(PingpongRelations, CkDirectFastestOnBgp) {
  const std::size_t bytes = GetParam();
  // Table 2: CkDirect is the fastest variant at every size.
  const double ckd = measureBgp(kCharmCkDirect, bytes);
  EXPECT_LT(ckd, measureBgp(kCharmDefault, bytes));
  EXPECT_LT(ckd, measureBgp(kIbmMpi, bytes));
}

INSTANTIATE_TEST_SUITE_P(AllSizes, PingpongRelations,
                         ::testing::Values(100, 1000, 5000, 10000, 20000,
                                           30000, 40000, 70000, 100000,
                                           500000));

TEST(PingpongCrossovers, MpiPutBeatsTwoSidedOnlyAboveSeventyKb) {
  // Table 1: "MPI one-sided communication performed better than MPI
  // two-sided for message sizes larger than 70 KB."
  EXPECT_GT(measureIb(kMvapichPut, 5000), measureIb(kMvapich, 5000));
  EXPECT_GT(measureIb(kMvapichPut, 20000), measureIb(kMvapich, 20000));
  EXPECT_LT(measureIb(kMvapichPut, 100000), measureIb(kMvapich, 100000));
  EXPECT_LT(measureIb(kMvapichPut, 500000), measureIb(kMvapich, 500000));
}

TEST(PingpongCrossovers, DefaultCharmGapJumpsAtRendezvousCutover) {
  // §3: between 20 KB and 30 KB the default version switches to the
  // rendezvous RDMA protocol; the CkDirect gap widens sharply there.
  const double gap20 =
      measureIb(kCharmDefault, 20000) - measureIb(kCharmCkDirect, 20000);
  const double gap30 =
      measureIb(kCharmDefault, 30000) - measureIb(kCharmCkDirect, 30000);
  EXPECT_GT(gap30, gap20 + 20.0);
}

TEST(PingpongMonotonicity, RttGrowsWithSize) {
  for (const Variant v : {kCharmDefault, kCharmCkDirect, kMvapich}) {
    double prev = 0.0;
    for (const std::size_t bytes : {100, 1000, 10000, 100000, 500000}) {
      const double rtt = measureIb(v, bytes);
      EXPECT_GT(rtt, prev) << "variant " << v << " bytes " << bytes;
      prev = rtt;
    }
  }
}

}  // namespace
}  // namespace ckd
