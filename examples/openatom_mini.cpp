// OpenAtom PairCalculator mini-app example (§5): runs a small
// configuration end to end under both back ends and both CkDirect ready
// strategies, verifying that every GS chare gets its points back intact
// (checksums) and showing the §5.2 polling effect.
//
//   ./openatom_mini [--nstates 32 --nplanes 2 --points 64] [--steps 3]
//                   [--pes 8] [--machine ib|bgp]

#include <cmath>
#include <cstdio>

#include "apps/openatom/openatom.hpp"
#include "harness/machines.hpp"
#include "util/args.hpp"

using namespace ckd;
using namespace ckd::apps::openatom;

namespace {

double runOnce(const charm::MachineConfig& machine, Config cfg,
               const char* label) {
  charm::Runtime rts(machine);
  OpenAtomApp app(rts, cfg);
  const auto result = app.execute();
  double maxErr = 0.0;
  for (int p = 0; p < cfg.nplanes; ++p)
    for (int s = 0; s < cfg.nstates; ++s)
      maxErr = std::max(maxErr, std::fabs(app.backwardChecksum(s, p) -
                                          app.expectedChecksum(s, p)));
  std::printf("  %-28s step %9.1f us, checksum err %g\n", label,
              result.avg_step_us, maxErr);
  return result.avg_step_us;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  Config cfg;
  cfg.nstates = static_cast<int>(args.getInt("nstates", 32));
  cfg.nplanes = static_cast<int>(args.getInt("nplanes", 2));
  cfg.points = static_cast<int>(args.getInt("points", 64));
  cfg.steps = static_cast<int>(args.getInt("steps", 3));
  cfg.real_compute = true;
  const int pes = static_cast<int>(args.getInt("pes", 8));
  const bool bgp = args.get("machine", "ib") == "bgp";
  const charm::MachineConfig machine =
      bgp ? harness::surveyorMachine(pes, 4) : harness::abeMachine(pes, 2);

  std::printf("OpenAtom mini: %d states x %d planes, %d points each, "
              "%lld CkDirect channels, %d PEs\n",
              cfg.nstates, cfg.nplanes, cfg.points,
              static_cast<long long>(cfg.numChannels()), pes);

  cfg.mode = Mode::kMessages;
  const double msg = runOnce(machine, cfg, "messages:");
  cfg.mode = Mode::kCkDirect;
  cfg.ready = ReadyStrategy::kNaive;
  runOnce(machine, cfg, "CkDirect (naive ready):");
  cfg.ready = ReadyStrategy::kMarkDeferPoll;
  const double ckd = runOnce(machine, cfg, "CkDirect (mark+pollq):");

  std::printf("CkDirect improvement over messages: %.1f%%\n",
              100.0 * (1.0 - ckd / msg));
  return 0;
}
