// 3-D decomposition matrix multiplication example (§4.2): real computation
// on a small problem, verified against the reference product, timed under
// both communication back ends.
//
//   ./matmul3d [--m 64 --n 64 --k 64] [--chares 8] [--pes 8]
//              [--iters 2] [--machine ib|bgp]

#include <cmath>
#include <cstdio>

#include "apps/matmul/matmul.hpp"
#include "harness/machines.hpp"
#include "util/args.hpp"

using namespace ckd;
using apps::matmul::Config;
using apps::matmul::MatmulApp;
using apps::matmul::Mode;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  Config cfg;
  cfg.m = args.getInt("m", 64);
  cfg.n = args.getInt("n", 64);
  cfg.k = args.getInt("k", 64);
  const int chares = static_cast<int>(args.getInt("chares", 8));
  apps::matmul::chooseGrid(chares, cfg.cx, cfg.cy, cfg.cz);
  cfg.iterations = static_cast<int>(args.getInt("iters", 2));
  cfg.real_compute = true;
  const int pes = static_cast<int>(args.getInt("pes", 8));
  const bool bgp = args.get("machine", "ib") == "bgp";

  std::printf("C(%lldx%lld) = A(%lldx%lld) x B(%lldx%lld), %d chares "
              "(%dx%dx%d) on %d PEs\n",
              static_cast<long long>(cfg.m), static_cast<long long>(cfg.n),
              static_cast<long long>(cfg.m), static_cast<long long>(cfg.k),
              static_cast<long long>(cfg.k), static_cast<long long>(cfg.n),
              chares, cfg.cx, cfg.cy, cfg.cz, pes);

  const auto reference = apps::matmul::referenceMultiply(cfg);
  double times[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    cfg.mode = m ? Mode::kCkDirect : Mode::kMessages;
    charm::MachineConfig machine =
        bgp ? harness::surveyorMachine(pes, 4) : harness::abeMachine(pes, 4);
    charm::Runtime rts(machine);
    MatmulApp app(rts, cfg);
    const auto result = app.execute();
    times[m] = result.avg_iteration_us;
    const auto c = app.gatherC();
    double maxErr = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
      maxErr = std::max(maxErr, std::fabs(c[i] - reference[i]));
    std::printf("  %-9s avg iteration %8.2f us, max |err| vs reference = %g\n",
                m ? "CkDirect:" : "messages:", result.avg_iteration_us,
                maxErr);
    if (maxErr > 1e-9) return 1;
  }
  std::printf("CkDirect improvement: %.1f%%\n",
              100.0 * (1.0 - times[1] / times[0]));
  return 0;
}
