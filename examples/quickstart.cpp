// Quickstart: set up one CkDirect channel between two chares and run a few
// iterations, printing what happens and when. Mirrors Figure 1 of the
// paper: createHandle on the receiver, assocLocal on the sender, put each
// iteration, ready when the buffer has been consumed.
//
//   ./quickstart [--bytes 4096] [--iters 5] [--machine ib|bgp]

#include <cstdio>
#include <vector>

#include "ckdirect/ckdirect.hpp"
#include "harness/machines.hpp"
#include "util/args.hpp"

using namespace ckd;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::size_t bytes = static_cast<std::size_t>(args.getInt("bytes", 4096));
  const int iters = static_cast<int>(args.getInt("iters", 5));
  const bool bgp = args.get("machine", "ib") == "bgp";

  // A two-node simulated machine; PEs 0 and 1 are on different nodes.
  charm::MachineConfig machine =
      bgp ? harness::surveyorMachine(2, 1) : harness::abeMachine(2, 1);
  charm::Runtime rts(machine);

  const std::size_t n = bytes / sizeof(double);
  std::vector<double> sendBuf(n, 0.0);
  std::vector<double> recvBuf(n, 0.0);

  // An out-of-band pattern that can never appear as payload: a quiet NaN.
  const std::uint64_t oob = 0x7FF8DEADBEEF0001ull;

  int iteration = 0;
  direct::Handle channel;  // receiver -> sender handle (Figure 1 step 2)

  // Step 1: the RECEIVER (PE 1) creates the handle over its buffer. The
  // callback is a plain function call — no message, no scheduler.
  channel = direct::createHandle(
      rts, /*receiverPe=*/1, recvBuf.data(), bytes, oob, [&]() {
        std::printf("  t=%8.2f us  [PE 1] data arrived: recv[0]=%g ... "
                    "recv[%zu]=%g\n",
                    rts.scheduler(1).currentTime(), recvBuf[0], n - 1,
                    recvBuf[n - 1]);
        // Consume, then signal readiness for the next iteration. No
        // synchronization happens here — the iteration structure provides it.
        direct::ready(channel);
        if (++iteration < iters) {
          // Tell the sender to go again (application-level flow control).
          rts.engine().after(1.0, [&]() {
            sendBuf.assign(n, static_cast<double>(iteration + 1));
            std::printf("  t=%8.2f us  [PE 0] put #%d\n", rts.now(),
                        iteration + 1);
            direct::put(channel);
          });
        }
      });

  // Step 2: the SENDER (PE 0) binds its source buffer to the handle.
  direct::assocLocal(channel, /*senderPe=*/0, sendBuf.data());

  std::printf("CkDirect quickstart on a simulated %s machine, %zu-byte "
              "channel, %d iterations\n",
              bgp ? "Blue Gene/P" : "InfiniBand", bytes, iters);

  rts.seed([&]() {
    sendBuf.assign(n, 1.0);
    std::printf("  t=%8.2f us  [PE 0] put #1\n", rts.now());
    direct::put(channel);
  });
  rts.run();

  std::printf("done: %d puts delivered, final virtual time %.2f us\n",
              iteration, rts.now());
  return iteration == iters ? 0 : 1;
}
