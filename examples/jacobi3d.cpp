// 3-D Jacobi stencil example (§4.1): runs the same small domain with real
// computation under both communication back ends, verifies the fields
// match the serial reference, and reports the modeled iteration times.
//
//   ./jacobi3d [--gx 32 --gy 32 --gz 16] [--chares 8] [--pes 4]
//              [--iters 10] [--machine ib|bgp]

#include <cstdio>
#include <cmath>

#include "apps/stencil/stencil.hpp"
#include "harness/machines.hpp"
#include "util/args.hpp"

using namespace ckd;
using apps::stencil::Config;
using apps::stencil::Mode;
using apps::stencil::StencilApp;

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  Config cfg;
  cfg.gx = args.getInt("gx", 32);
  cfg.gy = args.getInt("gy", 32);
  cfg.gz = args.getInt("gz", 16);
  const int chares = static_cast<int>(args.getInt("chares", 8));
  apps::stencil::chooseChareGrid(cfg.gx, cfg.gy, cfg.gz, chares, cfg.cx,
                                 cfg.cy, cfg.cz);
  cfg.iterations = static_cast<int>(args.getInt("iters", 10));
  cfg.real_compute = true;
  const int pes = static_cast<int>(args.getInt("pes", 4));
  const bool bgp = args.get("machine", "ib") == "bgp";

  std::printf("Jacobi %lldx%lldx%lld, %d chares (%dx%dx%d) on %d PEs, %d "
              "iterations\n",
              static_cast<long long>(cfg.gx), static_cast<long long>(cfg.gy),
              static_cast<long long>(cfg.gz), chares, cfg.cx, cfg.cy, cfg.cz,
              pes, cfg.iterations);

  const auto reference = apps::stencil::serialReference(cfg);
  double times[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    cfg.mode = m ? Mode::kCkDirect : Mode::kMessages;
    charm::MachineConfig machine =
        bgp ? harness::surveyorMachine(pes, 2) : harness::abeMachine(pes, 2);
    charm::Runtime rts(machine);
    StencilApp app(rts, cfg);
    const auto result = app.execute();
    times[m] = result.avg_iteration_us;
    const auto field = app.gatherField();
    double maxErr = 0.0;
    for (std::size_t i = 0; i < field.size(); ++i)
      maxErr = std::max(maxErr, std::fabs(field[i] - reference[i]));
    std::printf("  %-9s avg iteration %8.2f us, max |err| vs serial = %g\n",
                m ? "CkDirect:" : "messages:", result.avg_iteration_us,
                maxErr);
    if (maxErr != 0.0) return 1;
  }
  std::printf("CkDirect improvement: %.1f%%\n",
              100.0 * (1.0 - times[1] / times[0]));
  return 0;
}
