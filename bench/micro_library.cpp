// Wall-clock micro-benchmarks of the library's own machinery (engineering
// benches, not paper reproductions): event-engine throughput, marshalling,
// sentinel scans, runtime message rate, reduction trees. Run via
// google-benchmark.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "charm/maps.hpp"
#include "charm/marshal.hpp"
#include "charm/proxy.hpp"
#include "charm/runtime.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "mpi/mini_mpi.hpp"
#include "sim/engine.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace ckd;

void BM_EngineScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < events; ++i)
      engine.at(static_cast<sim::Time>(i % 97), [] {});
    engine.run();
    benchmark::DoNotOptimize(engine.executedEvents());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineScheduleAndRun)->Arg(1000)->Arg(10000);

void BM_MarshalPackUnpack(benchmark::State& state) {
  std::vector<double> values(static_cast<std::size_t>(state.range(0)), 1.5);
  for (auto _ : state) {
    charm::Packer pk;
    pk.put<std::int32_t>(7);
    pk.putVector(values);
    charm::Unpacker up(pk.bytes());
    benchmark::DoNotOptimize(up.get<std::int32_t>());
    benchmark::DoNotOptimize(up.getSpan<double>().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size() * 8));
}
BENCHMARK(BM_MarshalPackUnpack)->Arg(64)->Arg(4096);

// The cost CkDirect's polling queue pays per scheduler pump: one 8-byte
// sentinel compare per queued handle.
void BM_SentinelScan(benchmark::State& state) {
  const auto handles = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<std::byte>> buffers(handles);
  const std::uint64_t oob = 0xDEADBEEFCAFEBABEull;
  for (auto& b : buffers) {
    b.assign(256, std::byte{0});
    std::memcpy(b.data() + 248, &oob, 8);
  }
  for (auto _ : state) {
    int detected = 0;
    for (const auto& b : buffers) {
      std::uint64_t tail;
      std::memcpy(&tail, b.data() + 248, 8);
      if (tail != oob) ++detected;
    }
    benchmark::DoNotOptimize(detected);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(handles));
}
BENCHMARK(BM_SentinelScan)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RngNext(benchmark::State& state) {
  util::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RunningStatsAdd(benchmark::State& state) {
  util::RunningStats stats;
  double x = 0.0;
  for (auto _ : state) {
    stats.add(x += 1.25);
    benchmark::DoNotOptimize(stats.mean());
  }
}
BENCHMARK(BM_RunningStatsAdd);

// Simulator throughput: one full 1000-iteration pingpong simulation.
void BM_SimulatedPingpong(benchmark::State& state) {
  const charm::MachineConfig machine = harness::abeMachine(2, 1);
  for (auto _ : state) {
    harness::PingpongConfig cfg;
    cfg.bytes = 1000;
    cfg.iterations = 100;
    benchmark::DoNotOptimize(harness::charmPingpongRtt(machine, cfg));
  }
}
BENCHMARK(BM_SimulatedPingpong);

class NullChare final : public charm::Chare {
 public:
  int hits = 0;
  void sink(charm::Message&) { ++hits; }
};

// Runtime message throughput: broadcast + per-element delivery.
void BM_RuntimeBroadcast(benchmark::State& state) {
  const auto elems = state.range(0);
  for (auto _ : state) {
    charm::Runtime rts(harness::abeMachine(16, 4));
    auto proxy = charm::makeArray<NullChare>(
        rts, "null", elems, charm::blockMap(elems, 16),
        [](std::int64_t) { return std::make_unique<NullChare>(); });
    const charm::EntryId ep = proxy.registerEntry("sink", &NullChare::sink);
    rts.seed([proxy, ep] { proxy.broadcast(ep); });
    rts.run();
    benchmark::DoNotOptimize(proxy[0].local().hits);
  }
  state.SetItemsProcessed(state.iterations() * elems);
}
BENCHMARK(BM_RuntimeBroadcast)->Arg(256)->Arg(2048);

class ReducerChare final : public charm::Chare {
 public:
  charm::EntryId epDone = -1;
  int rounds = 0;
  void done(charm::Message&) { ++rounds; }
};

void BM_RuntimeReduction(benchmark::State& state) {
  const auto elems = state.range(0);
  for (auto _ : state) {
    charm::Runtime rts(harness::abeMachine(16, 4));
    auto proxy = charm::makeArray<ReducerChare>(
        rts, "red", elems, charm::blockMap(elems, 16),
        [](std::int64_t) { return std::make_unique<ReducerChare>(); });
    const charm::EntryId ep = proxy.registerEntry("done", &ReducerChare::done);
    rts.seed([&rts, proxy, ep, elems] {
      for (std::int64_t i = 0; i < elems; ++i) {
        const double v[] = {1.0};
        rts.contribute(proxy.id(), i, v, charm::ReduceOp::kSum, ep);
      }
    });
    rts.run();
    benchmark::DoNotOptimize(proxy[0].local().rounds);
  }
  state.SetItemsProcessed(state.iterations() * elems);
}
BENCHMARK(BM_RuntimeReduction)->Arg(256)->Arg(2048);

// Forwards the console output unchanged while mirroring every per-iteration
// run into the BenchRunner as a ns_per_iter metric.
class CollectingReporter final : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(harness::BenchRunner& runner)
      : runner_(runner) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations == 0)
        continue;
      util::JsonValue labels = util::JsonValue::object();
      labels.set("benchmark", util::JsonValue(run.benchmark_name()));
      runner_.addMetric("ns_per_iter",
                        run.real_accumulated_time /
                            static_cast<double>(run.iterations) * 1e9,
                        "ns", std::move(labels));
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  harness::BenchRunner& runner_;
};

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  harness::BenchRunner runner("micro_library", args);
  // Hand google-benchmark an argv without our flags; it treats unknown
  // options as benchmark filters.
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool valueFlag = arg == "--json" || arg == "--trace-dump" ||
                           arg == "--trace-cap";
    if (arg == "--profile" || valueFlag ||
        arg.rfind("--json=", 0) == 0 || arg.rfind("--trace-dump=", 0) == 0 ||
        arg.rfind("--trace-cap=", 0) == 0) {
      if (valueFlag && i + 1 < argc) ++i;  // skip the separate value token
      continue;
    }
    filtered.push_back(argv[i]);
  }
  int benchArgc = static_cast<int>(filtered.size());
  benchmark::Initialize(&benchArgc, filtered.data());
  CollectingReporter reporter(runner);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return runner.finish();
}
