// Reproduces Table 2: pingpong round-trip times (us) on Blue Gene/P
// (Surveyor) for default Charm++, CkDirect, IBM MPI, and MPI_Put.

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckd;
  util::Args args(argc, argv);
  harness::BenchRunner runner("table2_pingpong_bgp", args);
  const int iterations = static_cast<int>(args.getInt("iters", 1000));

  charm::MachineConfig machine = harness::surveyorMachine(2, 1);
  runner.applyFaults(machine);
  runner.applyMetrics(machine);

  const std::vector<std::size_t> sizes = {100,   1000,  5000,   10000, 20000,
                                          30000, 40000, 70000, 100000, 500000};
  const std::vector<std::vector<double>> paper = {
      {14.467, 20.822, 44.822, 72.976, 128.166, 186.771, 240.306, 400.226,
       560.634, 2693.601},  // Default Charm++
      {5.133, 11.379, 33.112, 60.675, 115.103, 169.552, 223.599, 383.732,
       543.491, 2677.072},  // CkDirect
      {7.606, 13.936, 39.903, 66.661, 120.548, 173.041, 226.739, 386.712,
       546.740, 2680.459},  // MPI
      {14.049, 17.836, 39.963, 67.972, 122.693, 178.571, 232.629, 392.388,
       552.708, 2685.972},  // MPI-Put
  };

  util::TablePrinter table;
  table.setTitle(
      "Table 2: pingpong RTT (us) on Blue Gene/P (Surveyor) -- measured "
      "[paper]");
  table.setHeader({"Message Size(KB)", "Default CHARM++", "CkDirect CHARM++",
                   "MPI", "MPI-Put"});

  const mpi::MpiCosts ibm = mpi::ibmBgpCosts();

  struct Variant {
    const char* name;
    std::function<double(const harness::PingpongConfig&)> run;
  };
  const std::vector<Variant> variants = {
      {"charm",
       [&](const harness::PingpongConfig& c) {
         return harness::charmPingpongRtt(machine, c);
       }},
      {"ckdirect",
       [&](const harness::PingpongConfig& c) {
         return harness::ckdirectPingpongRtt(machine, c);
       }},
      {"mpi",
       [&](const harness::PingpongConfig& c) {
         return harness::mpiPingpongRtt(machine, ibm, c);
       }},
      {"mpi_put",
       [&](const harness::PingpongConfig& c) {
         return harness::mpiPutPingpongRtt(machine, ibm, c);
       }},
  };

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> cells;
    cells.push_back(
        util::formatFixed(static_cast<double>(sizes[i]) / 1000.0, 1));
    for (std::size_t v = 0; v < variants.size(); ++v) {
      harness::PingpongConfig cfg;
      cfg.bytes = sizes[i];
      cfg.iterations = iterations;
      cfg.trace = runner.traceEnabled();
      cfg.traceCapacity = runner.traceCapacity();
      harness::ProfileReport report;
      if (runner.wantsProfiles() || runner.metricsEnabled())
        cfg.profile = &report;
      const double rtt = variants[v].run(cfg);

      util::JsonValue labels = util::JsonValue::object();
      labels.set("variant", util::JsonValue(variants[v].name));
      labels.set("bytes", util::JsonValue(sizes[i]));
      runner.addMetric("rtt_us", rtt, "us", std::move(labels));
      if (cfg.profile != nullptr) {
        report.label =
            std::string(variants[v].name) + "/" + std::to_string(sizes[i]);
        runner.addProfile(std::move(report));
      }
      cells.push_back(util::formatFixed(rtt, 3) + " [" +
                      util::formatFixed(paper[v][i], 3) + "]");
    }
    table.addRow(std::move(cells));
  }
  table.print(std::cout);
  return runner.finish();
}
