// Host-performance microbenchmark: the repo's canonical events/sec number.
//
// Two scenarios, both deterministic in virtual time:
//   churn — a bare sim::Engine running self-rescheduling timers. Measures
//           pure engine overhead (schedule + heap + dispatch) per event.
//   storm — a 16-PE Abe machine running simultaneous entry-method pingpongs
//           on every PE pair: the full scheduler / transport / fabric stack
//           exercised with small eager messages. This is the number quoted
//           in acceptance gates (BENCH_PR4.json) and watched by CI.
//
// Flags (besides the BenchRunner set):
//   --churn-events N   events to execute in the churn scenario (default 2M)
//   --churn-timers K   concurrent self-rescheduling timers (default 64)
//   --storm-iters I    round trips per pingpong pair (default 20000)
//   --storm-pairs P    concurrent pairs; the machine has 2*P PEs (default 8)
//   --storm-bytes B    payload bytes, below the eager/rendezvous cutoff
//                      (default 100)
//   --floor E          fail (exit 1) if the storm scenario executes fewer
//                      than E events/sec; 0 disables the gate (CI sets a
//                      generous floor so only order-of-magnitude regressions
//                      trip it)
//   --shards N         additionally run the storm on a one-PE-per-node
//                      machine twice — serial and under the thread-sharded
//                      parallel engine with N shards — and report both rates
//                      plus their speedup (scenarios storm-ser / storm-par)
//   --shard-threads T  worker threads for the parallel storm (default: one
//                      per shard, capped to hardware concurrency)
//   --speedup-floor S  fail (exit 1) if the parallel storm's speedup over
//                      storm-ser is below S; when the host gave the run fewer
//                      than 2 worker threads (no speedup possible by
//                      construction) the gate is skipped EXPLICITLY: a SKIP
//                      line on stdout plus a speedup_floor metric labelled
//                      {"skipped": true} in the JSON

#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "charm/maps.hpp"
#include "charm/proxy.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "util/args.hpp"
#include "util/require.hpp"

namespace {

using namespace ckd;

double wallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct ScenarioResult {
  std::uint64_t events = 0;
  double wall_s = 0.0;
  int threads = 1;  ///< host worker threads the engine actually used
  double eventsPerSec() const { return wall_s > 0.0 ? events / wall_s : 0.0; }
};

/// Pure event churn: K timers, each rescheduling itself 1 us later, until the
/// engine has executed ~N events. All captures are a single pointer.
ScenarioResult runChurn(std::uint64_t targetEvents, int timers) {
  sim::Engine engine;
  struct Timer {
    sim::Engine* engine;
    std::uint64_t remaining;
    void fire() {
      if (remaining-- == 0) return;
      engine->after(1.0, [this] { fire(); });
    }
  };
  std::vector<Timer> state(static_cast<std::size_t>(timers));
  const std::uint64_t perTimer =
      targetEvents / static_cast<std::uint64_t>(timers);
  const auto start = std::chrono::steady_clock::now();
  for (Timer& t : state) {
    t.engine = &engine;
    t.remaining = perTimer;
    engine.at(0.0, [pt = &t] { pt->fire(); });
  }
  engine.run();
  ScenarioResult result;
  result.wall_s = wallSeconds(start);
  result.events = engine.executedEvents();
  return result;
}

/// Every pair (i, i+P) of a 2P-PE Abe machine runs an eager-message pingpong
/// concurrently; messages are small enough to stay on the eager path, so the
/// run hammers the message/scheduler/fabric allocation hot paths.
class StormChare final : public charm::Chare {
 public:
  charm::ArrayProxy<StormChare> proxy;
  charm::EntryId epPing = -1;
  int pairs = 0;
  int remaining = 0;
  std::vector<std::byte> payload;

  void start(charm::Message&) {
    proxy[thisIndex() + pairs].send(epPing,
                                    std::span<const std::byte>(payload));
  }

  void ping(charm::Message& msg) {
    if (thisIndex() >= pairs) {  // echo side
      proxy[thisIndex() - pairs].send(epPing, msg.payload());
      return;
    }
    if (--remaining > 0)
      proxy[thisIndex() + pairs].send(epPing,
                                      std::span<const std::byte>(payload));
  }
};

/// `pesPerNode` shapes the machine (the classic storm packs 4 PEs per node;
/// the sharded A/B uses 1 so every pingpong crosses the wire and shards have
/// one node each). `shards` > 0 selects the thread-sharded parallel engine;
/// `recordTo` receives the per-shard counters for the host JSON.
ScenarioResult runStorm(int pairs, int iterations, std::size_t bytes,
                        int pesPerNode = 4, int shards = 0,
                        int shardThreads = 0, bool pinThreads = false,
                        harness::BenchRunner* recordTo = nullptr,
                        const char* label = "storm") {
  charm::MachineConfig machine = harness::abeMachine(2 * pairs, pesPerNode);
  machine.shards = shards;
  machine.shardThreads = shardThreads;
  machine.pinShardThreads = pinThreads;
  if (recordTo != nullptr) recordTo->applyMetrics(machine);
  charm::Runtime rts(machine);
  auto proxy = charm::makeArray<StormChare>(
      rts, "storm", 2 * pairs, [](std::int64_t i) { return static_cast<int>(i); },
      [](std::int64_t) { return std::make_unique<StormChare>(); });
  const charm::EntryId epStart =
      proxy.registerEntry("start", &StormChare::start);
  const charm::EntryId epPing = proxy.registerEntry("ping", &StormChare::ping);
  for (std::int64_t i = 0; i < 2 * pairs; ++i) {
    StormChare& el = proxy[i].local();
    el.proxy = proxy;
    el.epPing = epPing;
    el.pairs = pairs;
    el.remaining = iterations;
    el.payload.assign(bytes, std::byte{0});
  }
  const auto start = std::chrono::steady_clock::now();
  rts.seed([proxy, epStart, pairs]() {
    for (std::int64_t i = 0; i < pairs; ++i) proxy[i].send(epStart);
  });
  rts.run();
  ScenarioResult result;
  result.wall_s = wallSeconds(start);
  result.events = rts.executedEvents();
  if (const sim::ParallelEngine* par = rts.parallelEngine())
    result.threads = par->threads();
  // Tracing stays off in this bench, so every ring must come back untouched:
  // TraceRecorder::record/recordLazy may not allocate — or even evaluate
  // their lazy closures — while disabled. A nonzero count here means the
  // compile-out contract broke and the events/sec numbers are garbage.
  const auto assertNoRing = [](const sim::Engine& eng) {
    CKD_REQUIRE(
        eng.trace().recorded() == 0 && eng.trace().ringHeapBytes() == 0,
        "trace ring touched while tracing is disabled");
  };
  if (sim::ParallelEngine* par = rts.parallelEngine()) {
    assertNoRing(par->serialEngine());
    for (int s = 0; s < par->shards(); ++s) assertNoRing(par->shardEngine(s));
  } else {
    assertNoRing(rts.engine());
  }
  if (recordTo != nullptr) {
    recordTo->recordShardStats(rts);
    if (recordTo->wantsProfiles() || rts.metricsArmed()) {
      harness::ProfileReport report = harness::captureProfile(rts);
      report.label = label;
      recordTo->addProfile(std::move(report));
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  harness::BenchRunner runner("perf_engine", args);
  const std::uint64_t churnEvents =
      static_cast<std::uint64_t>(args.getInt("churn-events", 2'000'000));
  const int churnTimers = static_cast<int>(args.getInt("churn-timers", 64));
  const int stormIters = static_cast<int>(args.getInt("storm-iters", 20000));
  const int stormPairs = static_cast<int>(args.getInt("storm-pairs", 8));
  const std::size_t stormBytes =
      static_cast<std::size_t>(args.getInt("storm-bytes", 100));
  const double floor = args.getDouble("floor", 0.0);
  const double speedupFloor = args.getDouble("speedup-floor", 0.0);
  CKD_REQUIRE(churnTimers > 0 && stormIters > 0 && stormPairs > 0,
              "scenario sizes must be positive");

  const ScenarioResult churn = runChurn(churnEvents, churnTimers);
  const ScenarioResult storm =
      runStorm(stormPairs, stormIters, stormBytes, /*pesPerNode=*/4,
               /*shards=*/0, /*shardThreads=*/0, /*pinThreads=*/false,
               &runner, "storm");

  // Sharded A/B on a one-PE-per-node machine: the serial floor and the
  // parallel engine run the identical workload (the determinism gate in
  // tests/ proves they produce identical virtual-time results).
  ScenarioResult stormSer, stormPar;
  const bool sharded = runner.shards() > 0;
  if (sharded) {
    stormSer = runStorm(stormPairs, stormIters, stormBytes, /*pesPerNode=*/1,
                        /*shards=*/0, /*shardThreads=*/0, /*pinThreads=*/false,
                        &runner, "storm-ser");
    stormPar = runStorm(stormPairs, stormIters, stormBytes, /*pesPerNode=*/1,
                        runner.shards(), runner.shardThreads(),
                        runner.pinThreads(), &runner, "storm-par");
  }

  struct Row {
    const char* name;
    const ScenarioResult& r;
  };
  std::vector<Row> rows = {Row{"churn", churn}, Row{"storm", storm}};
  if (sharded) {
    rows.push_back(Row{"storm-ser", stormSer});
    rows.push_back(Row{"storm-par", stormPar});
  }
  for (const Row& row : rows) {
    std::printf("%-6s %12llu events  %8.3f s wall  %12.0f events/sec\n",
                row.name, static_cast<unsigned long long>(row.r.events),
                row.r.wall_s, row.r.eventsPerSec());
    util::JsonValue labels = util::JsonValue::object();
    labels.set("scenario", util::JsonValue(row.name));
    runner.addMetric("events_per_sec", row.r.eventsPerSec(), "1/s", labels);
    labels = util::JsonValue::object();
    labels.set("scenario", util::JsonValue(row.name));
    runner.addMetric("events_executed", static_cast<double>(row.r.events),
                     "events", std::move(labels));
  }

  double speedup = 0.0;
  if (sharded) {
    speedup = stormSer.eventsPerSec() > 0.0
                  ? stormPar.eventsPerSec() / stormSer.eventsPerSec()
                  : 0.0;
    std::printf("storm-par speedup %.2fx over storm-ser (%d shards, %d threads)\n",
                speedup, runner.shards(), stormPar.threads);
    util::JsonValue labels = util::JsonValue::object();
    labels.set("scenario", util::JsonValue("storm-par"));
    labels.set("shards", util::JsonValue(static_cast<double>(runner.shards())));
    labels.set("threads", util::JsonValue(static_cast<double>(stormPar.threads)));
    runner.addMetric("speedup", speedup, "x", std::move(labels));
  }

  // Decide the --speedup-floor skip BEFORE finish() so the skip lands in the
  // JSON (a silently-absent gate reads as "passed" to dashboards).
  const bool speedupSkipped =
      sharded && speedupFloor > 0.0 && stormPar.threads < 2;
  if (speedupSkipped) {
    std::printf("SKIP: --speedup-floor %.2fx not enforced; host gave the "
                "parallel storm only %d worker thread(s)\n",
                speedupFloor, stormPar.threads);
    util::JsonValue labels = util::JsonValue::object();
    labels.set("scenario", util::JsonValue("storm-par"));
    labels.set("skipped", util::JsonValue(true));
    labels.set("threads", util::JsonValue(static_cast<double>(stormPar.threads)));
    runner.addMetric("speedup_floor", speedupFloor, "x", std::move(labels));
  }

  const int code = runner.finish();
  if (code != 0) return code;
  // The determinism gate in tests/ proves bit-identical traces; this is the
  // cheap always-on cross-check that the sharded engine really executed the
  // same simulation (it also guards the large --storm-pairs smoke, where
  // running the full trace comparison would dwarf the benchmark itself).
  if (sharded && stormPar.events != stormSer.events) {
    std::fprintf(stderr,
                 "FAIL: sharded storm executed %llu events, serial %llu\n",
                 static_cast<unsigned long long>(stormPar.events),
                 static_cast<unsigned long long>(stormSer.events));
    return 1;
  }
  if (floor > 0.0 && storm.eventsPerSec() < floor) {
    std::fprintf(stderr,
                 "FAIL: storm events/sec %.0f below the floor %.0f\n",
                 storm.eventsPerSec(), floor);
    return 1;
  }
  if (sharded && speedupFloor > 0.0 && !speedupSkipped &&
      speedup < speedupFloor) {
    std::fprintf(stderr,
                 "FAIL: storm-par speedup %.2fx below the floor %.2fx\n",
                 speedup, speedupFloor);
    return 1;
  }
  return 0;
}
