// Four-way one-sided ablation on the Abe-like InfiniBand machine: the same
// pingpong payload pushed through every one-sided design the repo models —
//
//   ckdirect        CkDirect put + sentinel poll (the paper's design)
//   pgas            PGAS put-with-signal over the DART-style runtime
//   mpi_put_pscw    MPI_Put under post-start-complete-wait (MVAPICH costs)
//   mpi_rdma_eager  two-sided MPI over the Liu et al. RDMA channel
//
// plus a pgas_blocking curve (issue -> origin-observed remote completion,
// the dart_put_blocking flavor). For each design and size the bench reports
// the one-way latency, the delivered bandwidth, and — from the causal trace
// — the exact queue/wire/poll/handler split of the design's own chains.
//
// --check turns the run into the PR's acceptance gate: every design present
// at every size, CkDirect beating MPI_Put/PSCW (and the PGAS layer sitting
// between them) at small sizes, the RDMA-eager channel beating PSCW at
// small sizes, and per-design bandwidth monotone in the message size.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "mpi/mpi_costs.hpp"
#include "pgas/pgas.hpp"
#include "sim/causal.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace ckd;

namespace {

struct DesignPoint {
  double latency_us = 0.0;    // one-way
  double bandwidth_mbps = 0.0;
  sim::LatencySummary split;  // causal split of this design's own chains
};

/// Mean split over completed chains opened by `kind` (kCount = CkDirect).
sim::LatencySummary splitFor(const harness::ProfileReport& report,
                             sim::TraceTag kind) {
  if (report.traceEvents.empty()) return {};
  sim::CausalGraph graph(report.traceEvents);
  if (kind == sim::TraceTag::kCount) return graph.putLatency();
  sim::LatencySummary s = graph.latencyByKind(kind);
  return s;
}

void emit(harness::BenchRunner& runner, const char* design, std::size_t bytes,
          const DesignPoint& p) {
  const auto metric = [&](const char* name, double value, const char* unit) {
    util::JsonValue labels = util::JsonValue::object();
    labels.set("design", util::JsonValue(design));
    labels.set("bytes", util::JsonValue(bytes));
    runner.addMetric(name, value, unit, std::move(labels));
  };
  metric("latency_us", p.latency_us, "us");
  metric("bandwidth_mbps", p.bandwidth_mbps, "MB/s");
  if (p.split.count > 0) {
    metric("causal_queue_us", p.split.mean.queue_us, "us");
    metric("causal_wire_us", p.split.mean.wire_us, "us");
    metric("causal_poll_us", p.split.mean.poll_us, "us");
    metric("causal_handler_us", p.split.mean.handler_us, "us");
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  harness::BenchRunner runner("ablation_pgas", args);
  const int iters = static_cast<int>(args.getInt("iters", 300));
  const bool check = args.getBool("check", false);
  const std::vector<std::int64_t> sizes = args.getIntList(
      "sizes", {100, 512, 1000, 4096, 16384, 65536, 262144, 1048576});

  charm::MachineConfig machine = harness::abeMachine(2, 1);
  runner.applyFaults(machine);
  runner.applyMetrics(machine);
  const mpi::MpiCosts mvapich = mpi::mvapichCosts();
  const pgas::PgasCosts dart = pgas::dartIbCosts();

  // design -> size -> point, for the table and the --check gate.
  std::map<std::string, std::map<std::size_t, DesignPoint>> curves;

  const auto runOne = [&](const char* design, std::size_t bytes,
                          sim::TraceTag kind, auto&& fn) {
    harness::PingpongConfig cfg;
    cfg.bytes = bytes;
    cfg.iterations = iters;
    // Always trace: the causal split is part of the bench's output.
    cfg.trace = true;
    cfg.traceCapacity = runner.traceCapacity();
    harness::ProfileReport report;
    cfg.profile = &report;
    const double latency = fn(cfg);
    DesignPoint p;
    p.latency_us = latency;
    p.bandwidth_mbps = static_cast<double>(bytes) / latency;  // B/us = MB/s
    p.split = splitFor(report, kind);
    emit(runner, design, bytes, p);
    if (runner.wantsProfiles()) {
      report.label = std::string(design) + "/" + std::to_string(bytes);
      runner.addProfile(std::move(report));
    }
    curves[design][bytes] = p;
  };

  for (const std::int64_t size : sizes) {
    const auto bytes = static_cast<std::size_t>(size);
    runOne("ckdirect", bytes, sim::TraceTag::kCount,
           [&](harness::PingpongConfig& cfg) {
             return harness::ckdirectPingpongRtt(machine, cfg) / 2.0;
           });
    runOne("pgas", bytes, sim::TraceTag::kPgasPut,
           [&](harness::PingpongConfig& cfg) {
             return harness::pgasPingpongRtt(machine, dart, cfg) / 2.0;
           });
    runOne("pgas_blocking", bytes, sim::TraceTag::kPgasPut,
           [&](harness::PingpongConfig& cfg) {
             return harness::pgasBlockingPutLatency(machine, dart, cfg);
           });
    runOne("mpi_put_pscw", bytes, sim::TraceTag::kMpiPut,
           [&](harness::PingpongConfig& cfg) {
             return harness::mpiPutPingpongRtt(machine, mvapich, cfg) / 2.0;
           });
    runOne("mpi_rdma_eager", bytes,
           mvapich.rdmaEagerFor(bytes) ? sim::TraceTag::kMpiRdmaEager
                                       : sim::TraceTag::kMpiRdmaRndv,
           [&](harness::PingpongConfig& cfg) {
             return harness::mpiRdmaPingpongRtt(machine, mvapich, cfg) / 2.0;
           });
  }

  const std::vector<std::string> designs = {
      "ckdirect", "pgas", "pgas_blocking", "mpi_put_pscw", "mpi_rdma_eager"};

  util::TablePrinter lat;
  lat.setTitle(
      "One-sided ablation on Abe-like IB: one-way latency (us) per design");
  lat.setHeader({"Size(KB)", "ckdirect", "pgas", "pgas-blk", "mpi-put/pscw",
                 "mpi-rdma-eager"});
  for (const std::int64_t size : sizes) {
    const auto bytes = static_cast<std::size_t>(size);
    std::vector<std::string> row{util::formatFixed(size / 1000.0, 1)};
    for (const std::string& d : designs)
      row.push_back(util::formatFixed(curves[d][bytes].latency_us, 2));
    lat.addRow(std::move(row));
  }
  lat.print(std::cout);

  util::TablePrinter bw;
  bw.setTitle("Delivered bandwidth (MB/s) per design");
  bw.setHeader({"Size(KB)", "ckdirect", "pgas", "pgas-blk", "mpi-put/pscw",
                "mpi-rdma-eager"});
  for (const std::int64_t size : sizes) {
    const auto bytes = static_cast<std::size_t>(size);
    std::vector<std::string> row{util::formatFixed(size / 1000.0, 1)};
    for (const std::string& d : designs)
      row.push_back(util::formatFixed(curves[d][bytes].bandwidth_mbps, 1));
    bw.addRow(std::move(row));
  }
  bw.print(std::cout);

  int failures = 0;
  if (check) {
    const auto fail = [&](const std::string& what) {
      std::cerr << "CHECK FAILED: " << what << "\n";
      ++failures;
    };
    for (const std::string& d : designs)
      for (const std::int64_t size : sizes) {
        const auto bytes = static_cast<std::size_t>(size);
        if (curves[d].count(bytes) == 0 || curves[d][bytes].latency_us <= 0.0)
          fail(d + " missing at " + std::to_string(bytes) + " B");
      }
    // The paper's qualitative ordering at small messages: CkDirect under
    // the PGAS layer under MPI_Put/PSCW, and the RDMA-eager channel under
    // PSCW too (no epoch synchronization on the critical path).
    for (const std::int64_t size : sizes) {
      const auto bytes = static_cast<std::size_t>(size);
      if (bytes > 1024) continue;
      const double ckd = curves["ckdirect"][bytes].latency_us;
      const double pg = curves["pgas"][bytes].latency_us;
      const double pscw = curves["mpi_put_pscw"][bytes].latency_us;
      const double eager = curves["mpi_rdma_eager"][bytes].latency_us;
      if (!(ckd < pg))
        fail("ckdirect !< pgas at " + std::to_string(bytes) + " B");
      if (!(ckd < pscw))
        fail("ckdirect !< mpi_put_pscw at " + std::to_string(bytes) + " B");
      if (!(pg < pscw))
        fail("pgas !< mpi_put_pscw at " + std::to_string(bytes) + " B");
      if (!(eager < pscw))
        fail("mpi_rdma_eager !< mpi_put_pscw at " + std::to_string(bytes) +
             " B");
    }
    // Bandwidth must not decrease with the message size (1% slack for the
    // protocol cut-overs).
    for (const std::string& d : designs) {
      double prev = 0.0;
      for (const std::int64_t size : sizes) {
        const auto bytes = static_cast<std::size_t>(size);
        const double bwNow = curves[d][bytes].bandwidth_mbps;
        if (bwNow < prev * 0.99)
          fail(d + " bandwidth drops at " + std::to_string(bytes) + " B");
        prev = std::max(prev, bwNow);
      }
    }
    if (failures == 0)
      std::cout << "\nablation gate: all checks passed\n";
  }

  const int rc = runner.finish();
  return failures > 0 ? 1 : rc;
}
