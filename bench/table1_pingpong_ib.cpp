// Reproduces Table 1: pingpong round-trip times (us) on InfiniBand (Abe)
// for default Charm++, CkDirect, MPICH-VMI, MVAPICH, and MVAPICH MPI_Put,
// across the paper's ten message sizes.

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckd;
  util::Args args(argc, argv);
  harness::BenchRunner runner("table1_pingpong_ib", args);
  const int iterations = static_cast<int>(args.getInt("iters", 1000));

  // Pingpong runs between two processes on distinct nodes (1 PE/node).
  charm::MachineConfig machine = harness::abeMachine(2, 1);
  runner.applyFaults(machine);
  runner.applyMetrics(machine);

  const std::vector<std::size_t> sizes = {100,   1000,  5000,   10000, 20000,
                                          30000, 40000, 70000, 100000, 500000};
  // Paper values for side-by-side comparison (Table 1).
  const std::vector<std::vector<double>> paper = {
      {22.924, 25.110, 47.340, 66.176, 96.215, 160.470, 191.343, 271.803,
       353.305, 1399.145},  // Default Charm++
      {12.383, 16.108, 29.330, 43.136, 68.927, 93.422, 120.954, 195.248,
       275.322, 1294.358},  // CkDirect
      {12.367, 19.669, 37.318, 60.892, 102.684, 127.591, 201.148, 322.687,
       332.690, 1396.942},  // MPICH-VMI
      {12.302, 19.436, 37.311, 56.249, 88.659, 119.452, 144.973, 236.545,
       315.692, 1386.051},  // MVAPICH
      {16.801, 22.821, 51.750, 64.202, 94.250, 120.218, 146.028, 232.021,
       308.942, 1369.516},  // MVAPICH-Put
  };

  util::TablePrinter table;
  table.setTitle(
      "Table 1: pingpong RTT (us) on InfiniBand (Abe) -- measured "
      "[paper]");
  table.setHeader({"Message Size(KB)", "Default CHARM++", "CkDirect CHARM++",
                   "MPICH-VMI", "MVAPICH", "MVAPICH-Put"});

  const mpi::MpiCosts vmi = mpi::mpichVmiCosts();
  const mpi::MpiCosts mvapich = mpi::mvapichCosts();

  struct Variant {
    const char* name;
    std::function<double(const harness::PingpongConfig&)> run;
  };
  const std::vector<Variant> variants = {
      {"charm",
       [&](const harness::PingpongConfig& c) {
         return harness::charmPingpongRtt(machine, c);
       }},
      {"ckdirect",
       [&](const harness::PingpongConfig& c) {
         return harness::ckdirectPingpongRtt(machine, c);
       }},
      {"mpich_vmi",
       [&](const harness::PingpongConfig& c) {
         return harness::mpiPingpongRtt(machine, vmi, c);
       }},
      {"mvapich",
       [&](const harness::PingpongConfig& c) {
         return harness::mpiPingpongRtt(machine, mvapich, c);
       }},
      {"mvapich_put",
       [&](const harness::PingpongConfig& c) {
         return harness::mpiPutPingpongRtt(machine, mvapich, c);
       }},
  };

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> cells;
    cells.push_back(util::formatFixed(static_cast<double>(sizes[i]) / 1000.0,
                                      1));
    for (std::size_t v = 0; v < variants.size(); ++v) {
      harness::PingpongConfig cfg;
      cfg.bytes = sizes[i];
      cfg.iterations = iterations;
      cfg.trace = runner.traceEnabled();
      cfg.traceCapacity = runner.traceCapacity();
      harness::ProfileReport report;
      if (runner.wantsProfiles() || runner.metricsEnabled())
        cfg.profile = &report;
      const double rtt = variants[v].run(cfg);

      util::JsonValue labels = util::JsonValue::object();
      labels.set("variant", util::JsonValue(variants[v].name));
      labels.set("bytes", util::JsonValue(sizes[i]));
      runner.addMetric("rtt_us", rtt, "us", std::move(labels));
      if (cfg.profile != nullptr) {
        report.label =
            std::string(variants[v].name) + "/" + std::to_string(sizes[i]);
        runner.addProfile(std::move(report));
      }
      cells.push_back(util::formatFixed(rtt, 3) + " [" +
                      util::formatFixed(paper[v][i], 3) + "]");
    }
    table.addRow(std::move(cells));
  }
  table.print(std::cout);
  return runner.finish();
}
