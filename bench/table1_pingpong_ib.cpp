// Reproduces Table 1: pingpong round-trip times (us) on InfiniBand (Abe)
// for default Charm++, CkDirect, MPICH-VMI, MVAPICH, and MVAPICH MPI_Put,
// across the paper's ten message sizes.

#include <cstdio>
#include <iostream>
#include <vector>

#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ckd;
  util::Args args(argc, argv);
  const int iterations = static_cast<int>(args.getInt("iters", 1000));

  // Pingpong runs between two processes on distinct nodes (1 PE/node).
  const charm::MachineConfig machine = harness::abeMachine(2, 1);

  const std::vector<std::size_t> sizes = {100,   1000,  5000,   10000, 20000,
                                          30000, 40000, 70000, 100000, 500000};
  // Paper values for side-by-side comparison (Table 1).
  const std::vector<std::vector<double>> paper = {
      {22.924, 25.110, 47.340, 66.176, 96.215, 160.470, 191.343, 271.803,
       353.305, 1399.145},  // Default Charm++
      {12.383, 16.108, 29.330, 43.136, 68.927, 93.422, 120.954, 195.248,
       275.322, 1294.358},  // CkDirect
      {12.367, 19.669, 37.318, 60.892, 102.684, 127.591, 201.148, 322.687,
       332.690, 1396.942},  // MPICH-VMI
      {12.302, 19.436, 37.311, 56.249, 88.659, 119.452, 144.973, 236.545,
       315.692, 1386.051},  // MVAPICH
      {16.801, 22.821, 51.750, 64.202, 94.250, 120.218, 146.028, 232.021,
       308.942, 1369.516},  // MVAPICH-Put
  };

  util::TablePrinter table;
  table.setTitle(
      "Table 1: pingpong RTT (us) on InfiniBand (Abe) -- measured "
      "[paper]");
  table.setHeader({"Message Size(KB)", "Default CHARM++", "CkDirect CHARM++",
                   "MPICH-VMI", "MVAPICH", "MVAPICH-Put"});

  const mpi::MpiCosts vmi = mpi::mpichVmiCosts();
  const mpi::MpiCosts mvapich = mpi::mvapichCosts();

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    harness::PingpongConfig cfg;
    cfg.bytes = sizes[i];
    cfg.iterations = iterations;
    const double rows[5] = {
        harness::charmPingpongRtt(machine, cfg),
        harness::ckdirectPingpongRtt(machine, cfg),
        harness::mpiPingpongRtt(machine, vmi, cfg),
        harness::mpiPingpongRtt(machine, mvapich, cfg),
        harness::mpiPutPingpongRtt(machine, mvapich, cfg),
    };
    std::vector<std::string> cells;
    cells.push_back(util::formatFixed(static_cast<double>(sizes[i]) / 1000.0,
                                      1));
    for (int v = 0; v < 5; ++v)
      cells.push_back(util::formatFixed(rows[v], 3) + " [" +
                      util::formatFixed(paper[static_cast<std::size_t>(v)][i],
                                        3) +
                      "]");
    table.addRow(std::move(cells));
  }
  table.print(std::cout);
  return 0;
}
