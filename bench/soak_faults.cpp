// Fault soak: runs CkDirect pingpong and the §4.1 stencil under a seeded
// fault storm (drops, corruption, duplicates, delay jitter) and asserts
// ZERO data divergence against the fault-free run. This is the acceptance
// gate for the reliability layer: every injected fault must be absorbed by
// retransmission/recovery without the application seeing different bytes —
// only different (inflated) timings.
//
// The same storm is aimed at the mini-MPI RDMA channel (Liu et al.
// persistent slots + credit flow control) with the go-back-N link armed:
// mixed eager/rendezvous ping-pong chains plus a credit-exhaustion burst
// must deliver byte-identical data, and the credit conservation invariant
// (sendCredits + owedCredits == ring size on every used connection) must
// hold afterwards — a dropped slot write or credit return may cost time,
// never a leaked slot.
//
// A second phase runs the crash storm: the stencil with seeded fail-stop
// pe_crash faults (random victim per seed) on both machines. The buddy
// checkpoint/restart path must roll the computation back and still produce
// the byte-identical field, and across the matrix at least one crash must
// land while CkDirect traffic is in flight (observed as stale NAKs when
// pre-crash wire copies reach re-registered buffers).
//
// Flags (besides the standard BenchRunner set):
//   --faults <spec>       fault storm (default drop 2%, corrupt 1%, dup 1%,
//                         delay 5% with 5 us jitter)
//   --fault-seed <n>      injector seed (default 1)
//   --bytes <n>           pingpong payload (default 16384)
//   --iters <n>           pingpong round trips (default 400)
//   --stencil-iters <n>   stencil iterations (default 4)
//   --crash-seeds <n>     fail-stop seeds per machine (default 3; 0 skips
//                         the crash storm)

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/stencil/stencil.hpp"
#include "ckdirect/ckdirect.hpp"
#include "fault/fault.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "mpi/mini_mpi.hpp"
#include "net/cost_params.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topo/fat_tree.hpp"
#include "util/args.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace ckd;

constexpr std::uint64_t kOob = 0xDEADBEEFCAFEBABEull;

std::uint64_t fnv(const void* data, std::size_t bytes,
                  std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic per-iteration payload; the last 8 bytes carry iter+1 so
/// they can never collide with the CkDirect out-of-band sentinel.
void fillPattern(std::vector<std::byte>& buf, int iter, int salt) {
  for (std::size_t j = 0; j < buf.size(); ++j)
    buf[j] = static_cast<std::byte>(
        (static_cast<std::size_t>(iter) * 131u + j * 7u + salt) & 0xffu);
  const std::uint64_t stamp = static_cast<std::uint64_t>(iter) + 1;
  std::memcpy(buf.data() + buf.size() - sizeof(stamp), &stamp, sizeof(stamp));
}

struct SoakResult {
  double avg_rtt_us = 0.0;
  std::uint64_t digest = 0;      ///< running FNV over every received payload
  std::uint64_t faults = 0;      ///< injected faults of any kind
  std::uint64_t retransmits = 0;
  std::uint64_t put_retries = 0; ///< manager-level transparent re-puts
  double horizon_us = 0.0;       ///< virtual completion time
  std::uint64_t crashes = 0;     ///< pe_crash faults injected
  std::uint64_t restores = 0;    ///< completed rollback recoveries
  std::uint64_t checkpoints = 0; ///< buddy checkpoints taken
  std::uint64_t stale_naks = 0;  ///< pre-crash wire copies NAKed as stale
  std::uint64_t credit_stalls = 0;  ///< RDMA-channel sends parked on credits
  std::uint64_t credit_msgs = 0;    ///< explicit credit-return messages
};

std::uint64_t faultCount(const sim::TraceRecorder& trace) {
  return trace.count(sim::TraceTag::kFaultDrop) +
         trace.count(sim::TraceTag::kFaultDelay) +
         trace.count(sim::TraceTag::kFaultDuplicate) +
         trace.count(sim::TraceTag::kFaultCorrupt) +
         trace.count(sim::TraceTag::kFaultQpError) +
         trace.count(sim::TraceTag::kFaultRegionInvalid);
}

/// CkDirect pingpong where every round trip carries a fresh payload pattern
/// and both directions fold the received bytes into a digest.
SoakResult pingpongSoak(const charm::MachineConfig& machine, std::size_t bytes,
                        int iters) {
  CKD_REQUIRE(bytes >= 8, "payload must cover the 8-byte sentinel");
  charm::Runtime rts(machine);

  struct State {
    std::vector<std::byte> sendA, recvA, sendB, recvB;
    direct::Handle ab, ba;
    int remaining = 0;
    int iterA = 0, iterB = 0;
    sim::Time sentAt = 0.0;
    double totalRtt = 0.0;
    std::uint64_t digest = 1469598103934665603ull;
  };
  auto st = std::make_shared<State>();
  st->sendA.assign(bytes, std::byte{0});
  st->recvA.assign(bytes, std::byte{0});
  st->sendB.assign(bytes, std::byte{0});
  st->recvB.assign(bytes, std::byte{0});
  st->remaining = iters;

  st->ab = direct::createHandle(rts, 1, st->recvB.data(), bytes, kOob,
                                [st]() {
                                  // On PE 1: request landed.
                                  st->digest = fnv(st->recvB.data(),
                                                   st->recvB.size(),
                                                   st->digest);
                                  direct::ready(st->ab);
                                  fillPattern(st->sendB, st->iterB++, 0x55);
                                  direct::put(st->ba);
                                });
  st->ba = direct::createHandle(
      rts, 0, st->recvA.data(), bytes, kOob, [st, &rts]() {
        // On PE 0: echo landed, round trip complete.
        st->digest = fnv(st->recvA.data(), st->recvA.size(), st->digest);
        st->totalRtt += rts.scheduler(0).currentTime() - st->sentAt;
        direct::ready(st->ba);
        if (--st->remaining > 0) {
          st->sentAt = rts.scheduler(0).currentTime();
          fillPattern(st->sendA, ++st->iterA, 0);
          direct::put(st->ab);
        }
      });
  direct::assocLocal(st->ab, 0, st->sendA.data());
  direct::assocLocal(st->ba, 1, st->sendB.data());

  rts.seed([st]() {
    st->sentAt = 0.0;
    fillPattern(st->sendA, 0, 0);
    direct::put(st->ab);
  });
  rts.run();

  SoakResult result;
  result.avg_rtt_us = st->totalRtt / iters;
  result.digest = st->digest;
  result.faults = faultCount(rts.engine().trace());
  result.retransmits = rts.engine().trace().count(sim::TraceTag::kRelRetransmit);
  if (const direct::Manager* mgr = direct::Manager::peek(rts))
    result.put_retries = mgr->putRetries();
  return result;
}

/// Stencil (real compute, CkDirect ghost exchange) returning the full field.
std::vector<double> stencilSoak(const charm::MachineConfig& machine, int iters,
                                SoakResult& out,
                                harness::ProfileReport* profile = nullptr,
                                const harness::BenchRunner* runner = nullptr) {
  charm::Runtime rts(machine);
  // Profiled runs feed --trace-dump: arm the event ring before running.
  if (runner != nullptr) runner->configureTrace(rts.engine().trace());
  apps::stencil::Config cfg;
  cfg.gx = 32;
  cfg.gy = 32;
  cfg.gz = 16;
  cfg.cx = cfg.cy = cfg.cz = 2;
  cfg.iterations = iters;
  cfg.mode = apps::stencil::Mode::kCkDirect;
  cfg.real_compute = true;
  apps::stencil::StencilApp app(rts, cfg);
  app.execute();
  const sim::TraceRecorder& trace = rts.engine().trace();
  out.faults = faultCount(trace);
  out.retransmits = trace.count(sim::TraceTag::kRelRetransmit);
  if (const direct::Manager* mgr = direct::Manager::peek(rts))
    out.put_retries = mgr->putRetries();
  out.horizon_us = rts.now();
  out.crashes = trace.count(sim::TraceTag::kFaultPeCrash);
  out.restores = trace.count(sim::TraceTag::kCkptRestore);
  out.checkpoints = trace.count(sim::TraceTag::kCkptTaken);
  out.stale_naks = trace.count(sim::TraceTag::kRelStaleNak);
  if (profile != nullptr) *profile = harness::captureProfile(rts);
  return app.gatherField();
}

/// Mini-MPI over the RDMA channel under the wire storm. Three independent
/// sequential ping-pong chains (rank 0 against 1, 2, 3) carry mixed
/// eager/rendezvous payloads; a final burst overruns the credit ring on
/// connection 0 -> 1 to exercise stall/drain and explicit credit returns
/// while faults fire. Each chain folds its bytes into its own digest and
/// the chains are combined in rank order, so the result is independent of
/// cross-chain timing. `storm == nullptr` runs fault-free and unarmed.
SoakResult mpiRdmaSoak(const fault::FaultPlan* storm, std::uint64_t seed,
                       int rounds) {
  sim::Engine engine;
  auto topology = std::make_shared<topo::FatTree>(4, 1);
  net::Fabric fabric(engine, topology, net::abeParams());
  if (storm != nullptr) fabric.installFaults(*storm, seed);
  mpi::MiniMpi mp(fabric, mpi::mvapichCosts());
  mp.enableRdmaChannel();
  if (storm != nullptr) mp.armReliability(storm->rel);

  const std::size_t slot = mp.costs().rdma_slot_bytes;
  const int credits = mp.costs().rdma_credits;
  constexpr int kPeers = 3;

  struct Chain {
    std::vector<std::byte> send, echo, back;
    std::uint64_t digest = 1469598103934665603ull;
    int round = 0;
    bool done = false;
  };
  auto chains = std::make_shared<std::vector<Chain>>(kPeers);

  // Round r payload size: mostly sub-slot eager, every 7th a rendezvous
  // three slots long — both protocol paths stay hot under the storm.
  const auto sizeFor = [slot](int r) {
    if (r % 7 == 6) return 3 * slot;
    return 256 + (static_cast<std::size_t>(r) * 977) % 8192;
  };

  auto runRound = std::make_shared<std::function<void(int)>>();
  *runRound = [&mp, chains, runRound, sizeFor, rounds](int peer) {
    Chain& c = (*chains)[static_cast<std::size_t>(peer - 1)];
    if (c.round >= rounds) {
      c.done = true;
      return;
    }
    const int r = c.round++;
    const std::size_t n = sizeFor(r);
    c.send.assign(n, std::byte{0});
    c.echo.assign(n, std::byte{0});
    c.back.assign(n, std::byte{0});
    fillPattern(c.send, r, peer);
    // Peer folds the request into the chain digest and echoes it back.
    mp.irecv(peer, 0, r, c.echo.data(), c.echo.size(),
             [&mp, chains, peer, r](const mpi::MiniMpi::RecvResult&) {
               Chain& ch = (*chains)[static_cast<std::size_t>(peer - 1)];
               ch.digest = fnv(ch.echo.data(), ch.echo.size(), ch.digest);
               mp.isend(peer, 0, r, ch.echo.data(), ch.echo.size());
             });
    mp.irecv(0, peer, r, c.back.data(), c.back.size(),
             [chains, runRound, peer](const mpi::MiniMpi::RecvResult&) {
               Chain& ch = (*chains)[static_cast<std::size_t>(peer - 1)];
               CKD_REQUIRE(ch.back == ch.send,
                           "RDMA-channel echo corrupted under faults");
               ch.digest = fnv(ch.back.data(), ch.back.size(), ch.digest);
               (*runRound)(peer);
             });
    mp.isend(0, peer, r, c.send.data(), c.send.size());
  };
  for (int peer = 1; peer <= kPeers; ++peer) (*runRound)(peer);
  engine.run();
  for (const Chain& c : *chains)
    CKD_REQUIRE(c.done, "RDMA-channel chain wedged under the storm");

  // Burst phase: overrun the 0 -> 1 ring with no receives posted, so the
  // tail stalls on credits, then drain. Dropped slot writes or credit
  // returns here are exactly the leak the reliable link must prevent.
  const int burst = credits + 4;
  std::vector<std::vector<std::byte>> bSend, bRecv;
  for (int i = 0; i < burst; ++i) {
    bSend.emplace_back(512, std::byte{0});
    bRecv.emplace_back(512, std::byte{0});
    fillPattern(bSend.back(), i, 0x7e);
    mp.isend(0, 1, 1000 + i, bSend.back().data(), bSend.back().size());
  }
  engine.run();  // ring full, tail parked
  int burstGot = 0;
  for (int i = 0; i < burst; ++i)
    mp.irecv(1, 0, 1000 + i, bRecv[static_cast<std::size_t>(i)].data(),
             bRecv[static_cast<std::size_t>(i)].size(),
             [&burstGot](const mpi::MiniMpi::RecvResult&) { ++burstGot; });
  engine.run();
  CKD_REQUIRE(burstGot == burst, "credit-stalled burst did not drain");

  SoakResult result;
  result.digest = 1469598103934665603ull;
  for (int i = 0; i < burst; ++i) {
    CKD_REQUIRE(bRecv[static_cast<std::size_t>(i)] ==
                    bSend[static_cast<std::size_t>(i)],
                "burst payload corrupted under faults");
    result.digest = fnv(bRecv[static_cast<std::size_t>(i)].data(),
                        bRecv[static_cast<std::size_t>(i)].size(),
                        result.digest);
  }
  for (const Chain& c : *chains)
    result.digest = fnv(&c.digest, sizeof(c.digest), result.digest);

  // Credit conservation on every connection the run touched: each freed
  // slot's credit is either back at the sender or still owed — never lost
  // to a dropped write/return.
  for (int peer = 1; peer <= kPeers; ++peer) {
    for (const auto& [a, b] : {std::pair<int, int>{0, peer}, {peer, 0}}) {
      CKD_REQUIRE(mp.sendCredits(a, b) + mp.owedCredits(a, b) == credits,
                  "leaked persistent slot on a used RDMA connection");
    }
  }
  result.faults = faultCount(engine.trace());
  result.retransmits = mp.linkRetransmits();
  result.horizon_us = engine.now();
  result.credit_stalls = mp.creditStalls();
  result.credit_msgs = mp.creditReturnMessages();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ckd;
  util::Args args(argc, argv);
  harness::BenchRunner runner("soak_faults", args);
  const auto bytes = static_cast<std::size_t>(args.getInt("bytes", 16384));
  const int iters = static_cast<int>(args.getInt("iters", 400));
  const int stencilIters = static_cast<int>(args.getInt("stencil-iters", 4));

  // --faults overrides the default storm; --fault-seed always applies.
  const fault::FaultPlan storm =
      runner.faultsArmed()
          ? runner.faultPlan()
          : fault::parseFaultSpec(
                "drop:0.02,corrupt:0.01,duplicate:0.01,delay:0.05;jitter=5");
  const std::uint64_t seed = runner.faultSeed();
  CKD_REQUIRE(storm.armed(), "soak_faults needs a non-empty fault plan");
  std::cout << "fault storm: " << storm.summary() << " (seed " << seed
            << ")\n";

  util::TablePrinter table;
  table.setTitle("Fault soak: clean vs faulted, zero divergence required");
  table.setHeader({"workload", "clean", "faulted", "inflation", "faults",
                   "retransmits", "re-puts"});

  // --- CkDirect pingpong, IB (verbs reliable path) and BG/P (DCMF). ---
  for (const bool bgp : {false, true}) {
    const char* tag = bgp ? "pingpong_bgp" : "pingpong_ib";
    charm::MachineConfig clean =
        bgp ? harness::surveyorMachine(2, 1) : harness::abeMachine(2, 1);
    charm::MachineConfig faulted = clean;
    faulted.faults = storm;
    faulted.faultSeed = seed;

    const SoakResult base = pingpongSoak(clean, bytes, iters);
    const SoakResult soak = pingpongSoak(faulted, bytes, iters);
    CKD_REQUIRE(base.faults == 0, "clean run must inject nothing");
    CKD_REQUIRE(soak.faults > 0, "fault storm injected nothing");
    CKD_REQUIRE(base.digest == soak.digest,
                "data divergence: faulted pingpong delivered different bytes");

    const double inflation = soak.avg_rtt_us / base.avg_rtt_us;
    table.addRow({tag, util::formatFixed(base.avg_rtt_us, 3) + " us",
                  util::formatFixed(soak.avg_rtt_us, 3) + " us",
                  util::formatFixed(inflation, 3) + "x",
                  std::to_string(soak.faults), std::to_string(soak.retransmits),
                  std::to_string(soak.put_retries)});

    util::JsonValue labels = util::JsonValue::object();
    labels.set("workload", util::JsonValue(tag));
    runner.addMetric("rtt_clean_us", base.avg_rtt_us, "us", labels);
    runner.addMetric("rtt_faulted_us", soak.avg_rtt_us, "us", labels);
    runner.addMetric("rtt_inflation", inflation, "ratio", labels);
    runner.addMetric("faults_injected", static_cast<double>(soak.faults),
                     "count", labels);
    runner.addMetric("retransmits", static_cast<double>(soak.retransmits),
                     "count", labels);
    runner.addMetric("put_retries", static_cast<double>(soak.put_retries),
                     "count", std::move(labels));
  }

  // --- Stencil: whole-field bitwise comparison after N iterations. ---
  for (const bool bgp : {false, true}) {
    const char* tag = bgp ? "stencil_bgp" : "stencil_ib";
    charm::MachineConfig clean =
        bgp ? harness::surveyorMachine(8, 4) : harness::t3Machine(8, 4);
    charm::MachineConfig faulted = clean;
    faulted.faults = storm;
    faulted.faultSeed = seed;

    SoakResult base, soak;
    const std::vector<double> want = stencilSoak(clean, stencilIters, base);
    const std::vector<double> got = stencilSoak(faulted, stencilIters, soak);
    CKD_REQUIRE(soak.faults > 0, "fault storm injected nothing");
    CKD_REQUIRE(want == got,
                "data divergence: faulted stencil computed a different field");

    table.addRow({tag, "field ok", "field ok", "-", std::to_string(soak.faults),
                  std::to_string(soak.retransmits),
                  std::to_string(soak.put_retries)});
    util::JsonValue labels = util::JsonValue::object();
    labels.set("workload", util::JsonValue(tag));
    runner.addMetric("faults_injected", static_cast<double>(soak.faults),
                     "count", labels);
    runner.addMetric("retransmits", static_cast<double>(soak.retransmits),
                     "count", std::move(labels));
  }

  // --- Mini-MPI RDMA channel: reliable link over the same wire storm. ---
  {
    const int rdmaRounds = std::max(iters / 8, 24);
    const SoakResult base = mpiRdmaSoak(nullptr, seed, rdmaRounds);
    const SoakResult soak = mpiRdmaSoak(&storm, seed, rdmaRounds);
    CKD_REQUIRE(base.faults == 0, "clean RDMA-channel run must inject nothing");
    CKD_REQUIRE(base.retransmits == 0, "unarmed link cannot retransmit");
    CKD_REQUIRE(soak.faults > 0, "fault storm missed the RDMA channel");
    CKD_REQUIRE(soak.retransmits > 0,
                "storm fired yet the reliable link never retransmitted");
    CKD_REQUIRE(base.digest == soak.digest,
                "data divergence: faulted RDMA channel delivered different "
                "bytes");
    CKD_REQUIRE(base.credit_stalls > 0 && soak.credit_stalls > 0,
                "burst never exhausted the credit ring");

    const double inflation = soak.horizon_us / base.horizon_us;
    table.addRow({"mpi_rdma", util::formatFixed(base.horizon_us, 1) + " us",
                  util::formatFixed(soak.horizon_us, 1) + " us",
                  util::formatFixed(inflation, 3) + "x",
                  std::to_string(soak.faults), std::to_string(soak.retransmits),
                  std::to_string(soak.credit_msgs) + " cred"});
    util::JsonValue labels = util::JsonValue::object();
    labels.set("workload", util::JsonValue("mpi_rdma"));
    runner.addMetric("horizon_clean_us", base.horizon_us, "us", labels);
    runner.addMetric("horizon_faulted_us", soak.horizon_us, "us", labels);
    runner.addMetric("horizon_inflation", inflation, "ratio", labels);
    runner.addMetric("faults_injected", static_cast<double>(soak.faults),
                     "count", labels);
    runner.addMetric("link_retransmits", static_cast<double>(soak.retransmits),
                     "count", labels);
    runner.addMetric("credit_stalls", static_cast<double>(soak.credit_stalls),
                     "count", labels);
    runner.addMetric("credit_return_msgs",
                     static_cast<double>(soak.credit_msgs), "count",
                     std::move(labels));
  }

  // --- Crash storm: fail-stop pe_crash + buddy checkpoint/rollback. ---
  const int crashSeeds = static_cast<int>(args.getInt("crash-seeds", 3));
  std::uint64_t stormStaleNaks = 0;
  for (const bool bgp : {false, true}) {
    if (crashSeeds <= 0) break;
    const char* tag = bgp ? "crash_bgp" : "crash_ib";
    const charm::MachineConfig clean =
        bgp ? harness::surveyorMachine(8, 4) : harness::t3Machine(8, 4);
    // Longer run than the wire-fault soak: the horizon must dominate both
    // the buddy-shard shipping time (≈50 KB of chare state per PE, >100 us
    // on the BG/P wire) and the heartbeat detection window, so that a
    // mid-run crash always finds a completed snapshot behind it.
    const int crashIters = std::max(4 * stencilIters, 12);
    SoakResult base;
    const std::vector<double> want = stencilSoak(clean, crashIters, base);

    // Two fail-stop faults per run, at 70% and 90% of the fault-free
    // horizon: both comfortably after the genesis checkpoint (first
    // post-setup reduction root) has shipped, and far enough apart that the
    // first recovery completes before the second victim dies. No pe=
    // option, so each seed kills a different randomly chosen PE.
    const std::string spec = "pe_crash@" + std::to_string(0.70 * base.horizon_us) +
                             ",pe_crash@" + std::to_string(0.90 * base.horizon_us);
    for (int s = 0; s < crashSeeds; ++s) {
      charm::MachineConfig crashed = clean;
      crashed.faults = fault::parseFaultSpec(spec);
      crashed.faultSeed = seed + static_cast<std::uint64_t>(s);
      // ~10 checkpoints across the run, scaled to the machine, so rollback
      // loses little progress and snapshot pruning gets exercised;
      // --checkpoint-period overrides.
      crashed.checkpointPeriod_us = runner.checkpointPeriod() > 0.0
                                        ? runner.checkpointPeriod()
                                        : base.horizon_us / 10.0;

      SoakResult soak;
      harness::ProfileReport report;
      const std::vector<double> got = stencilSoak(
          crashed, crashIters, soak,
          runner.wantsProfiles() ? &report : nullptr, &runner);
      if (runner.wantsProfiles()) {
        report.label = std::string(tag) + "/s" + std::to_string(s);
        runner.addProfile(std::move(report));
      }
      CKD_REQUIRE(soak.crashes == 2, "both pe_crash faults must fire");
      CKD_REQUIRE(soak.restores == 2, "every crash must be recovered from");
      CKD_REQUIRE(soak.checkpoints >= 2, "buddy checkpoints were not taken");
      CKD_REQUIRE(want == got,
                  "data divergence: crash/restart computed a different field");
      stormStaleNaks += soak.stale_naks;

      const double inflation = soak.horizon_us / base.horizon_us;
      table.addRow({std::string(tag) + "/s" + std::to_string(s), "field ok",
                    "field ok", util::formatFixed(inflation, 3) + "x",
                    std::to_string(soak.crashes) + " crash",
                    std::to_string(soak.stale_naks) + " stale",
                    std::to_string(soak.checkpoints) + " ckpt"});
      util::JsonValue labels = util::JsonValue::object();
      labels.set("workload", util::JsonValue(tag));
      labels.set("crash_seed",
                 util::JsonValue(static_cast<std::int64_t>(seed) + s));
      runner.addMetric("crashes", static_cast<double>(soak.crashes), "count",
                       labels);
      runner.addMetric("restores", static_cast<double>(soak.restores), "count",
                       labels);
      runner.addMetric("checkpoints", static_cast<double>(soak.checkpoints),
                       "count", labels);
      runner.addMetric("stale_naks", static_cast<double>(soak.stale_naks),
                       "count", labels);
      runner.addMetric("horizon_inflation", inflation, "ratio",
                       std::move(labels));
    }
  }
  if (crashSeeds > 0) {
    // The acceptance gate for the channel-epoch machinery: across the
    // matrix, at least one crash must have caught CkDirect traffic on the
    // wire, and the stale copies must have been NAKed (then re-driven by
    // the rollback) rather than landing in re-registered buffers.
    CKD_REQUIRE(stormStaleNaks > 0,
                "no crash landed while traffic was in flight; storm too tame");
  }

  table.print(std::cout);
  std::cout << "zero divergence: all faulted runs delivered byte-identical "
               "data\n";
  return runner.finish();
}
