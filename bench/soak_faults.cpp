// Fault soak: runs CkDirect pingpong and the §4.1 stencil under a seeded
// fault storm (drops, corruption, duplicates, delay jitter) and asserts
// ZERO data divergence against the fault-free run. This is the acceptance
// gate for the reliability layer: every injected fault must be absorbed by
// retransmission/recovery without the application seeing different bytes —
// only different (inflated) timings.
//
// A second phase runs the crash storm: the stencil with seeded fail-stop
// pe_crash faults (random victim per seed) on both machines. The buddy
// checkpoint/restart path must roll the computation back and still produce
// the byte-identical field, and across the matrix at least one crash must
// land while CkDirect traffic is in flight (observed as stale NAKs when
// pre-crash wire copies reach re-registered buffers).
//
// Flags (besides the standard BenchRunner set):
//   --faults <spec>       fault storm (default drop 2%, corrupt 1%, dup 1%,
//                         delay 5% with 5 us jitter)
//   --fault-seed <n>      injector seed (default 1)
//   --bytes <n>           pingpong payload (default 16384)
//   --iters <n>           pingpong round trips (default 400)
//   --stencil-iters <n>   stencil iterations (default 4)
//   --crash-seeds <n>     fail-stop seeds per machine (default 3; 0 skips
//                         the crash storm)

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/stencil/stencil.hpp"
#include "ckdirect/ckdirect.hpp"
#include "fault/fault.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace ckd;

constexpr std::uint64_t kOob = 0xDEADBEEFCAFEBABEull;

std::uint64_t fnv(const void* data, std::size_t bytes,
                  std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic per-iteration payload; the last 8 bytes carry iter+1 so
/// they can never collide with the CkDirect out-of-band sentinel.
void fillPattern(std::vector<std::byte>& buf, int iter, int salt) {
  for (std::size_t j = 0; j < buf.size(); ++j)
    buf[j] = static_cast<std::byte>(
        (static_cast<std::size_t>(iter) * 131u + j * 7u + salt) & 0xffu);
  const std::uint64_t stamp = static_cast<std::uint64_t>(iter) + 1;
  std::memcpy(buf.data() + buf.size() - sizeof(stamp), &stamp, sizeof(stamp));
}

struct SoakResult {
  double avg_rtt_us = 0.0;
  std::uint64_t digest = 0;      ///< running FNV over every received payload
  std::uint64_t faults = 0;      ///< injected faults of any kind
  std::uint64_t retransmits = 0;
  std::uint64_t put_retries = 0; ///< manager-level transparent re-puts
  double horizon_us = 0.0;       ///< virtual completion time
  std::uint64_t crashes = 0;     ///< pe_crash faults injected
  std::uint64_t restores = 0;    ///< completed rollback recoveries
  std::uint64_t checkpoints = 0; ///< buddy checkpoints taken
  std::uint64_t stale_naks = 0;  ///< pre-crash wire copies NAKed as stale
};

std::uint64_t faultCount(const sim::TraceRecorder& trace) {
  return trace.count(sim::TraceTag::kFaultDrop) +
         trace.count(sim::TraceTag::kFaultDelay) +
         trace.count(sim::TraceTag::kFaultDuplicate) +
         trace.count(sim::TraceTag::kFaultCorrupt) +
         trace.count(sim::TraceTag::kFaultQpError) +
         trace.count(sim::TraceTag::kFaultRegionInvalid);
}

/// CkDirect pingpong where every round trip carries a fresh payload pattern
/// and both directions fold the received bytes into a digest.
SoakResult pingpongSoak(const charm::MachineConfig& machine, std::size_t bytes,
                        int iters) {
  CKD_REQUIRE(bytes >= 8, "payload must cover the 8-byte sentinel");
  charm::Runtime rts(machine);

  struct State {
    std::vector<std::byte> sendA, recvA, sendB, recvB;
    direct::Handle ab, ba;
    int remaining = 0;
    int iterA = 0, iterB = 0;
    sim::Time sentAt = 0.0;
    double totalRtt = 0.0;
    std::uint64_t digest = 1469598103934665603ull;
  };
  auto st = std::make_shared<State>();
  st->sendA.assign(bytes, std::byte{0});
  st->recvA.assign(bytes, std::byte{0});
  st->sendB.assign(bytes, std::byte{0});
  st->recvB.assign(bytes, std::byte{0});
  st->remaining = iters;

  st->ab = direct::createHandle(rts, 1, st->recvB.data(), bytes, kOob,
                                [st]() {
                                  // On PE 1: request landed.
                                  st->digest = fnv(st->recvB.data(),
                                                   st->recvB.size(),
                                                   st->digest);
                                  direct::ready(st->ab);
                                  fillPattern(st->sendB, st->iterB++, 0x55);
                                  direct::put(st->ba);
                                });
  st->ba = direct::createHandle(
      rts, 0, st->recvA.data(), bytes, kOob, [st, &rts]() {
        // On PE 0: echo landed, round trip complete.
        st->digest = fnv(st->recvA.data(), st->recvA.size(), st->digest);
        st->totalRtt += rts.scheduler(0).currentTime() - st->sentAt;
        direct::ready(st->ba);
        if (--st->remaining > 0) {
          st->sentAt = rts.scheduler(0).currentTime();
          fillPattern(st->sendA, ++st->iterA, 0);
          direct::put(st->ab);
        }
      });
  direct::assocLocal(st->ab, 0, st->sendA.data());
  direct::assocLocal(st->ba, 1, st->sendB.data());

  rts.seed([st]() {
    st->sentAt = 0.0;
    fillPattern(st->sendA, 0, 0);
    direct::put(st->ab);
  });
  rts.run();

  SoakResult result;
  result.avg_rtt_us = st->totalRtt / iters;
  result.digest = st->digest;
  result.faults = faultCount(rts.engine().trace());
  result.retransmits = rts.engine().trace().count(sim::TraceTag::kRelRetransmit);
  if (const direct::Manager* mgr = direct::Manager::peek(rts))
    result.put_retries = mgr->putRetries();
  return result;
}

/// Stencil (real compute, CkDirect ghost exchange) returning the full field.
std::vector<double> stencilSoak(const charm::MachineConfig& machine, int iters,
                                SoakResult& out,
                                harness::ProfileReport* profile = nullptr,
                                const harness::BenchRunner* runner = nullptr) {
  charm::Runtime rts(machine);
  // Profiled runs feed --trace-dump: arm the event ring before running.
  if (runner != nullptr) runner->configureTrace(rts.engine().trace());
  apps::stencil::Config cfg;
  cfg.gx = 32;
  cfg.gy = 32;
  cfg.gz = 16;
  cfg.cx = cfg.cy = cfg.cz = 2;
  cfg.iterations = iters;
  cfg.mode = apps::stencil::Mode::kCkDirect;
  cfg.real_compute = true;
  apps::stencil::StencilApp app(rts, cfg);
  app.execute();
  const sim::TraceRecorder& trace = rts.engine().trace();
  out.faults = faultCount(trace);
  out.retransmits = trace.count(sim::TraceTag::kRelRetransmit);
  if (const direct::Manager* mgr = direct::Manager::peek(rts))
    out.put_retries = mgr->putRetries();
  out.horizon_us = rts.now();
  out.crashes = trace.count(sim::TraceTag::kFaultPeCrash);
  out.restores = trace.count(sim::TraceTag::kCkptRestore);
  out.checkpoints = trace.count(sim::TraceTag::kCkptTaken);
  out.stale_naks = trace.count(sim::TraceTag::kRelStaleNak);
  if (profile != nullptr) *profile = harness::captureProfile(rts);
  return app.gatherField();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ckd;
  util::Args args(argc, argv);
  harness::BenchRunner runner("soak_faults", args);
  const auto bytes = static_cast<std::size_t>(args.getInt("bytes", 16384));
  const int iters = static_cast<int>(args.getInt("iters", 400));
  const int stencilIters = static_cast<int>(args.getInt("stencil-iters", 4));

  // --faults overrides the default storm; --fault-seed always applies.
  const fault::FaultPlan storm =
      runner.faultsArmed()
          ? runner.faultPlan()
          : fault::parseFaultSpec(
                "drop:0.02,corrupt:0.01,duplicate:0.01,delay:0.05;jitter=5");
  const std::uint64_t seed = runner.faultSeed();
  CKD_REQUIRE(storm.armed(), "soak_faults needs a non-empty fault plan");
  std::cout << "fault storm: " << storm.summary() << " (seed " << seed
            << ")\n";

  util::TablePrinter table;
  table.setTitle("Fault soak: clean vs faulted, zero divergence required");
  table.setHeader({"workload", "clean", "faulted", "inflation", "faults",
                   "retransmits", "re-puts"});

  // --- CkDirect pingpong, IB (verbs reliable path) and BG/P (DCMF). ---
  for (const bool bgp : {false, true}) {
    const char* tag = bgp ? "pingpong_bgp" : "pingpong_ib";
    charm::MachineConfig clean =
        bgp ? harness::surveyorMachine(2, 1) : harness::abeMachine(2, 1);
    charm::MachineConfig faulted = clean;
    faulted.faults = storm;
    faulted.faultSeed = seed;

    const SoakResult base = pingpongSoak(clean, bytes, iters);
    const SoakResult soak = pingpongSoak(faulted, bytes, iters);
    CKD_REQUIRE(base.faults == 0, "clean run must inject nothing");
    CKD_REQUIRE(soak.faults > 0, "fault storm injected nothing");
    CKD_REQUIRE(base.digest == soak.digest,
                "data divergence: faulted pingpong delivered different bytes");

    const double inflation = soak.avg_rtt_us / base.avg_rtt_us;
    table.addRow({tag, util::formatFixed(base.avg_rtt_us, 3) + " us",
                  util::formatFixed(soak.avg_rtt_us, 3) + " us",
                  util::formatFixed(inflation, 3) + "x",
                  std::to_string(soak.faults), std::to_string(soak.retransmits),
                  std::to_string(soak.put_retries)});

    util::JsonValue labels = util::JsonValue::object();
    labels.set("workload", util::JsonValue(tag));
    runner.addMetric("rtt_clean_us", base.avg_rtt_us, "us", labels);
    runner.addMetric("rtt_faulted_us", soak.avg_rtt_us, "us", labels);
    runner.addMetric("rtt_inflation", inflation, "ratio", labels);
    runner.addMetric("faults_injected", static_cast<double>(soak.faults),
                     "count", labels);
    runner.addMetric("retransmits", static_cast<double>(soak.retransmits),
                     "count", labels);
    runner.addMetric("put_retries", static_cast<double>(soak.put_retries),
                     "count", std::move(labels));
  }

  // --- Stencil: whole-field bitwise comparison after N iterations. ---
  for (const bool bgp : {false, true}) {
    const char* tag = bgp ? "stencil_bgp" : "stencil_ib";
    charm::MachineConfig clean =
        bgp ? harness::surveyorMachine(8, 4) : harness::t3Machine(8, 4);
    charm::MachineConfig faulted = clean;
    faulted.faults = storm;
    faulted.faultSeed = seed;

    SoakResult base, soak;
    const std::vector<double> want = stencilSoak(clean, stencilIters, base);
    const std::vector<double> got = stencilSoak(faulted, stencilIters, soak);
    CKD_REQUIRE(soak.faults > 0, "fault storm injected nothing");
    CKD_REQUIRE(want == got,
                "data divergence: faulted stencil computed a different field");

    table.addRow({tag, "field ok", "field ok", "-", std::to_string(soak.faults),
                  std::to_string(soak.retransmits),
                  std::to_string(soak.put_retries)});
    util::JsonValue labels = util::JsonValue::object();
    labels.set("workload", util::JsonValue(tag));
    runner.addMetric("faults_injected", static_cast<double>(soak.faults),
                     "count", labels);
    runner.addMetric("retransmits", static_cast<double>(soak.retransmits),
                     "count", std::move(labels));
  }

  // --- Crash storm: fail-stop pe_crash + buddy checkpoint/rollback. ---
  const int crashSeeds = static_cast<int>(args.getInt("crash-seeds", 3));
  std::uint64_t stormStaleNaks = 0;
  for (const bool bgp : {false, true}) {
    if (crashSeeds <= 0) break;
    const char* tag = bgp ? "crash_bgp" : "crash_ib";
    const charm::MachineConfig clean =
        bgp ? harness::surveyorMachine(8, 4) : harness::t3Machine(8, 4);
    // Longer run than the wire-fault soak: the horizon must dominate both
    // the buddy-shard shipping time (≈50 KB of chare state per PE, >100 us
    // on the BG/P wire) and the heartbeat detection window, so that a
    // mid-run crash always finds a completed snapshot behind it.
    const int crashIters = std::max(4 * stencilIters, 12);
    SoakResult base;
    const std::vector<double> want = stencilSoak(clean, crashIters, base);

    // Two fail-stop faults per run, at 70% and 90% of the fault-free
    // horizon: both comfortably after the genesis checkpoint (first
    // post-setup reduction root) has shipped, and far enough apart that the
    // first recovery completes before the second victim dies. No pe=
    // option, so each seed kills a different randomly chosen PE.
    const std::string spec = "pe_crash@" + std::to_string(0.70 * base.horizon_us) +
                             ",pe_crash@" + std::to_string(0.90 * base.horizon_us);
    for (int s = 0; s < crashSeeds; ++s) {
      charm::MachineConfig crashed = clean;
      crashed.faults = fault::parseFaultSpec(spec);
      crashed.faultSeed = seed + static_cast<std::uint64_t>(s);
      // ~10 checkpoints across the run, scaled to the machine, so rollback
      // loses little progress and snapshot pruning gets exercised;
      // --checkpoint-period overrides.
      crashed.checkpointPeriod_us = runner.checkpointPeriod() > 0.0
                                        ? runner.checkpointPeriod()
                                        : base.horizon_us / 10.0;

      SoakResult soak;
      harness::ProfileReport report;
      const std::vector<double> got = stencilSoak(
          crashed, crashIters, soak,
          runner.wantsProfiles() ? &report : nullptr, &runner);
      if (runner.wantsProfiles()) {
        report.label = std::string(tag) + "/s" + std::to_string(s);
        runner.addProfile(std::move(report));
      }
      CKD_REQUIRE(soak.crashes == 2, "both pe_crash faults must fire");
      CKD_REQUIRE(soak.restores == 2, "every crash must be recovered from");
      CKD_REQUIRE(soak.checkpoints >= 2, "buddy checkpoints were not taken");
      CKD_REQUIRE(want == got,
                  "data divergence: crash/restart computed a different field");
      stormStaleNaks += soak.stale_naks;

      const double inflation = soak.horizon_us / base.horizon_us;
      table.addRow({std::string(tag) + "/s" + std::to_string(s), "field ok",
                    "field ok", util::formatFixed(inflation, 3) + "x",
                    std::to_string(soak.crashes) + " crash",
                    std::to_string(soak.stale_naks) + " stale",
                    std::to_string(soak.checkpoints) + " ckpt"});
      util::JsonValue labels = util::JsonValue::object();
      labels.set("workload", util::JsonValue(tag));
      labels.set("crash_seed",
                 util::JsonValue(static_cast<std::int64_t>(seed) + s));
      runner.addMetric("crashes", static_cast<double>(soak.crashes), "count",
                       labels);
      runner.addMetric("restores", static_cast<double>(soak.restores), "count",
                       labels);
      runner.addMetric("checkpoints", static_cast<double>(soak.checkpoints),
                       "count", labels);
      runner.addMetric("stale_naks", static_cast<double>(soak.stale_naks),
                       "count", labels);
      runner.addMetric("horizon_inflation", inflation, "ratio",
                       std::move(labels));
    }
  }
  if (crashSeeds > 0) {
    // The acceptance gate for the channel-epoch machinery: across the
    // matrix, at least one crash must have caught CkDirect traffic on the
    // wire, and the stale copies must have been NAKed (then re-driven by
    // the rollback) rather than landing in re-registered buffers.
    CKD_REQUIRE(stormStaleNaks > 0,
                "no crash landed while traffic was in flight; storm too tame");
  }

  table.print(std::cout);
  std::cout << "zero divergence: all faulted runs delivered byte-identical "
               "data\n";
  return runner.finish();
}
