// Offline analyzer for ckd.trace.v1 dumps (BenchRunner --trace-dump).
// Rebuilds the causal chains recorded by the runtime's span tracing and
// prints, per run:
//
//   * the critical path (parent-link walk from the latest completed chain),
//     hop by hop, and its span vs the run's measured horizon;
//   * mean put->callback and send->deliver latency with the exact-sum
//     queue/wire/poll/handler split;
//   * the top-k slowest chains (--top N, default 5);
//   * per-layer log2 latency histograms over all completed chains.
//
// Usage:
//   trace_analyze <dump.json> [--run <glob>] [--top N] [--json <file>]
//
// --json re-emits the analysis as a ckd.bench.v1 metrics document (one row
// per headline number, labelled by run / chain kind), so bench_diff can
// gate post-hoc causal-split numbers exactly like live bench output.

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/trace_export.hpp"
#include "obs/histogram.hpp"
#include "sim/causal.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using ckd::sim::CausalChain;
using ckd::sim::CausalGraph;
using ckd::sim::LatencySummary;
using ckd::sim::TraceEvent;

ckd::sim::TraceEvent eventFromJson(const ckd::util::JsonValue& obj) {
  TraceEvent ev;
  ev.time = obj.at("t").asNumber();
  ev.pe = static_cast<std::int32_t>(obj.at("pe").asNumber());
  ev.tag = ckd::sim::traceTagFromName(obj.at("tag").asString());
  CKD_REQUIRE(ev.tag != ckd::sim::TraceTag::kCount,
              "trace dump contains an unknown tag name");
  if (const auto* v = obj.find("v")) ev.value = v->asNumber();
  if (const auto* id = obj.find("id"))
    ev.id = static_cast<std::uint64_t>(id->asNumber());
  if (const auto* parent = obj.find("parent"))
    ev.parent = static_cast<std::uint64_t>(parent->asNumber());
  if (const auto* aux = obj.find("aux"))
    ev.aux = static_cast<std::int32_t>(aux->asNumber());
  if (const auto* ph = obj.find("ph"))
    ev.phase = ph->asString() == "b" ? ckd::sim::SpanPhase::kBegin
                                     : ckd::sim::SpanPhase::kEnd;
  return ev;
}

std::string chainLabel(const CausalChain& c) {
  std::string kind = c.kind != ckd::sim::TraceTag::kCount
                         ? std::string(ckd::sim::traceTagName(c.kind))
                         : std::string("?");
  if (c.channel >= 0) kind += "#" + std::to_string(c.channel);
  return kind;
}

void addMetric(ckd::util::JsonValue& metrics, const std::string& run,
               const char* name, double value, const char* unit,
               const char* kind = nullptr) {
  ckd::util::JsonValue row = ckd::util::JsonValue::object();
  row.set("name", name);
  row.set("value", value);
  row.set("unit", unit);
  ckd::util::JsonValue labels = ckd::util::JsonValue::object();
  labels.set("run", run);
  if (kind != nullptr) labels.set("kind", kind);
  row.set("labels", std::move(labels));
  metrics.push(std::move(row));
}

void emitSummary(ckd::util::JsonValue& metrics, const std::string& run,
                 const char* kind, const LatencySummary& s) {
  if (s.count == 0) return;
  addMetric(metrics, run, "chains", static_cast<double>(s.count), "1", kind);
  addMetric(metrics, run, "mean_total_us", s.mean.total_us, "us", kind);
  addMetric(metrics, run, "mean_queue_us", s.mean.queue_us, "us", kind);
  addMetric(metrics, run, "mean_wire_us", s.mean.wire_us, "us", kind);
  addMetric(metrics, run, "mean_poll_us", s.mean.poll_us, "us", kind);
  addMetric(metrics, run, "mean_handler_us", s.mean.handler_us, "us", kind);
}

void printSummary(const char* name, const LatencySummary& s) {
  if (s.count == 0) return;
  std::printf(
      "  %-18s %6zu chains  mean %9.3f us  = queue %.3f + wire %.3f + "
      "poll %.3f + handler %.3f\n",
      name, s.count, s.mean.total_us, s.mean.queue_us, s.mean.wire_us,
      s.mean.poll_us, s.mean.handler_us);
}

/// Log2 buckets over microseconds: bucket 0 is <= 1/32 us, each next bucket
/// doubles, the last is open-ended (>= 1024 us).
constexpr std::size_t kHistBuckets = 16;

std::size_t histBucket(double us) {
  double upper = 1.0 / 32.0;
  for (std::size_t i = 0; i + 1 < kHistBuckets; ++i) {
    if (us <= upper) return i;
    upper *= 2.0;
  }
  return kHistBuckets - 1;
}

std::string histBucketLabel(std::size_t i) {
  const double upper = (1.0 / 32.0) * static_cast<double>(1u << i);
  std::ostringstream out;
  if (i + 1 == kHistBuckets)
    out << ">=" << ckd::util::formatFixed(upper / 2.0, 0);
  else if (upper < 1.0)
    out << "<=" << ckd::util::formatFixed(upper, 3);
  else
    out << "<=" << ckd::util::formatFixed(upper, 0);
  return out.str();
}

void printHistogram(const char* name, const std::vector<double>& samples) {
  if (samples.empty()) return;
  std::array<std::uint64_t, kHistBuckets> buckets{};
  for (const double us : samples) ++buckets[histBucket(us)];
  std::printf("  %-10s", name);
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    if (buckets[i] == 0) continue;
    std::printf("  [%s us]=%llu", histBucketLabel(i).c_str(),
                static_cast<unsigned long long>(buckets[i]));
  }
  std::printf("\n");
}

void analyzeRun(const std::string& run, const std::vector<TraceEvent>& events,
                double horizonUs, std::size_t topK,
                ckd::util::JsonValue* metricsOut) {
  const CausalGraph graph(events);
  std::size_t completed = 0;
  for (const CausalChain& c : graph.chains()) completed += c.complete;
  std::printf("run \"%s\": %zu events, %zu chains (%zu completed)\n",
              run.c_str(), events.size(), graph.chains().size(), completed);

  const std::vector<CausalChain> path = graph.criticalPath();
  if (!path.empty()) {
    ckd::util::TablePrinter table;
    table.setTitle("  critical path (root first)");
    table.setHeader({"hop", "id", "kind", "src->dst", "start_us", "end_us",
                     "total_us", "queue", "wire", "poll", "handler"});
    for (std::size_t i = 0; i < path.size(); ++i) {
      const CausalChain& c = path[i];
      const auto b = c.breakdown();
      table.addRow({std::to_string(i), std::to_string(c.id), chainLabel(c),
                    std::to_string(c.srcPe) + "->" + std::to_string(c.dstPe),
                    ckd::util::formatFixed(c.start, 3),
                    ckd::util::formatFixed(c.end, 3),
                    ckd::util::formatFixed(b.total_us, 3),
                    ckd::util::formatFixed(b.queue_us, 3),
                    ckd::util::formatFixed(b.wire_us, 3),
                    ckd::util::formatFixed(b.poll_us, 3),
                    ckd::util::formatFixed(b.handler_us, 3)});
    }
    std::cout << table.toString();
    const double span = graph.criticalPathSpan();
    std::printf("  critical path: %zu hops, %.3f us", path.size(), span);
    if (horizonUs > 0.0)
      std::printf("  (horizon %.3f us, coverage %.2f%%)", horizonUs,
                  100.0 * span / horizonUs);
    std::printf("\n");
  } else {
    std::printf("  critical path: none (no completed chains)\n");
  }

  // Per-design breakdowns for the PGAS / RDMA-MPI one-sided ops (rows are
  // omitted when the dump contains no chains of that kind).
  using ckd::sim::TraceTag;
  const std::vector<std::pair<const char*, LatencySummary>> summaries = {
      {"put", graph.putLatency()},
      {"msg", graph.messageLatency()},
      {"pgas.put", graph.latencyByKind(TraceTag::kPgasPut)},
      {"pgas.get", graph.latencyByKind(TraceTag::kPgasGet)},
      {"pgas.atomic", graph.latencyByKind(TraceTag::kPgasAtomic)},
      {"mpi.put", graph.latencyByKind(TraceTag::kMpiPut)},
      {"mpi.rdma.eager", graph.latencyByKind(TraceTag::kMpiRdmaEager)},
      {"mpi.rdma.rndv", graph.latencyByKind(TraceTag::kMpiRdmaRndv)},
  };
  for (const auto& [kind, summary] : summaries)
    printSummary(kind, summary);

  if (metricsOut != nullptr) {
    addMetric(*metricsOut, run, "events", static_cast<double>(events.size()),
              "1");
    addMetric(*metricsOut, run, "chains_total",
              static_cast<double>(graph.chains().size()), "1");
    addMetric(*metricsOut, run, "chains_completed",
              static_cast<double>(completed), "1");
    if (!path.empty()) {
      addMetric(*metricsOut, run, "critical_path_us",
                graph.criticalPathSpan(), "us");
      addMetric(*metricsOut, run, "critical_path_hops",
                static_cast<double>(path.size()), "1");
    }
    for (const auto& [kind, summary] : summaries)
      emitSummary(*metricsOut, run, kind, summary);
    // Completed-chain percentiles through the same log-bucketed histogram
    // the live telemetry uses (within Histogram::kRelativeError of exact).
    ckd::obs::Histogram totals;
    for (const CausalChain& c : graph.chains())
      if (c.complete) totals.record(c.breakdown().total_us);
    if (totals.count() > 0) {
      addMetric(*metricsOut, run, "latency_p50_us", totals.percentile(0.50),
                "us");
      addMetric(*metricsOut, run, "latency_p99_us", totals.percentile(0.99),
                "us");
    }
  }

  const std::vector<CausalChain> slow = graph.slowestChains(topK);
  if (!slow.empty()) {
    std::printf("  slowest chains:\n");
    for (const CausalChain& c : slow) {
      const auto b = c.breakdown();
      std::printf(
          "    id %-8llu %-16s %d->%d  total %9.3f us  (queue %.3f, wire "
          "%.3f, poll %.3f, handler %.3f, attempts %d)\n",
          static_cast<unsigned long long>(c.id), chainLabel(c).c_str(),
          c.srcPe, c.dstPe, b.total_us, b.queue_us, b.wire_us, b.poll_us,
          b.handler_us, c.attempts);
    }
  }

  std::vector<double> queue, wire, poll, handler, total;
  for (const CausalChain& c : graph.chains()) {
    if (!c.complete) continue;
    const auto b = c.breakdown();
    queue.push_back(b.queue_us);
    wire.push_back(b.wire_us);
    poll.push_back(b.poll_us);
    handler.push_back(b.handler_us);
    total.push_back(b.total_us);
  }
  if (!total.empty()) {
    std::printf("  span histograms (log2 buckets):\n");
    printHistogram("queue", queue);
    printHistogram("wire", wire);
    printHistogram("poll", poll);
    printHistogram("handler", handler);
    printHistogram("total", total);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ckd;
  util::Args args(argc, argv);
  std::string path = args.get("in", "");
  if (path.empty() && !args.positional().empty()) path = args.positional()[0];
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <dump.json> [--run <glob>] [--top N] "
                 "[--json <file>]\n"
                 "  dump.json: a ckd.trace.v1 file from --trace-dump\n",
                 args.program().c_str());
    return 2;
  }
  const std::string runGlob = args.get("run", "*");
  const auto topK = static_cast<std::size_t>(args.getInt("top", 5));
  const std::string jsonOut = args.get("json", "");

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_analyze: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const util::JsonValue doc = util::JsonValue::parse(buf.str());
  CKD_REQUIRE(doc.at("schema").asString() == "ckd.trace.v1",
              "input is not a ckd.trace.v1 dump");
  std::printf("trace_analyze: %s (bench \"%s\")\n", path.c_str(),
              doc.at("bench").asString().c_str());

  // Per-run horizons landed in the dump alongside the events (older dumps
  // lack the array; the coverage line is simply omitted then).
  std::map<std::string, double> horizons;
  if (const util::JsonValue* runs = doc.find("runs")) {
    for (std::size_t i = 0; i < runs->size(); ++i) {
      const util::JsonValue& r = runs->at(i);
      horizons[r.at("label").asString()] = r.at("horizon_us").asNumber();
    }
  }

  // Group events by run, preserving first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<sim::TraceEvent>> byRun;
  const util::JsonValue& events = doc.at("events");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::JsonValue& obj = events.at(i);
    const std::string& run = obj.at("run").asString();
    if (!harness::TraceFilter::globMatch(runGlob, run)) continue;
    auto [it, inserted] = byRun.try_emplace(run);
    if (inserted) order.push_back(run);
    it->second.push_back(eventFromJson(obj));
  }
  if (byRun.empty()) {
    std::fprintf(stderr, "trace_analyze: no events match --run %s\n",
                 runGlob.c_str());
    return 1;
  }

  util::JsonValue metrics = util::JsonValue::array();
  for (const std::string& run : order) {
    const auto horizon = horizons.find(run);
    analyzeRun(run, byRun[run],
               horizon != horizons.end() ? horizon->second : 0.0, topK,
               jsonOut.empty() ? nullptr : &metrics);
  }

  if (!jsonOut.empty()) {
    util::JsonValue out = util::JsonValue::object();
    out.set("schema", "ckd.bench.v1");
    out.set("bench", "trace_analyze");
    out.set("source", doc.at("bench").asString());
    out.set("metrics", std::move(metrics));
    std::ofstream outFile(jsonOut);
    CKD_REQUIRE(outFile.good(),
                ("cannot open --json output file: " + jsonOut).c_str());
    outFile << out.dump(2) << "\n";
    std::fprintf(stderr, "[trace_analyze] wrote %s\n", jsonOut.c_str());
  }
  return 0;
}
