// Reproduces Figure 2: percentage improvement in average iteration time for
// CkDirect over Charm++ messages in the 3-D Jacobi stencil.
//   fig2a_stencil_ib  — NCSA T3 (InfiniBand), 16..256 PEs   (Figure 2a)
//   fig2b_stencil_bgp — ANL Blue Gene/P,      64..4096 PEs  (Figure 2b)
// Domain 1024x1024x512, virtualization ratio 8, global barrier per
// iteration — the paper's §4.1 setup. Compute is cost-modeled (the full
// domain would need 4 GB per copy); ghost faces are real buffers moved by
// the real machine layers.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apps/stencil/stencil.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/profile.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

#ifndef FIG_DEFAULT_MACHINE
#define FIG_DEFAULT_MACHINE "ib"
#endif

using namespace ckd;

namespace {

apps::stencil::Result run(const charm::MachineConfig& machine,
                          apps::stencil::Mode mode, int pes, int iterations,
                          double computePerElement,
                          harness::BenchRunner& runner) {
  apps::stencil::Config cfg;
  cfg.gx = 1024;
  cfg.gy = 1024;
  cfg.gz = 512;
  apps::stencil::chooseChareGrid(cfg.gx, cfg.gy, cfg.gz, 8 * pes, cfg.cx,
                                 cfg.cy, cfg.cz);
  cfg.iterations = iterations;
  cfg.mode = mode;
  cfg.real_compute = false;
  cfg.compute_per_element_us = computePerElement;
  charm::Runtime rts(machine);
  runner.configureTrace(rts.engine().trace());
  apps::stencil::StencilApp app(rts, cfg);
  const auto result = app.execute();
  if (runner.wantsProfiles() || runner.metricsEnabled()) {
    harness::ProfileReport report = harness::captureProfile(rts);
    report.label =
        std::string(mode == apps::stencil::Mode::kCkDirect ? "ckd" : "msg") +
        "/" + std::to_string(pes);
    runner.addProfile(std::move(report));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const std::string machineName = args.get("machine", FIG_DEFAULT_MACHINE);
  const bool bgp = machineName == "bgp";
  harness::BenchRunner runner(
      bgp ? "fig2b_stencil_bgp" : "fig2a_stencil_ib", args);
  const int iterations = static_cast<int>(args.getInt("iters", 3));
  const std::vector<std::int64_t> defaults =
      bgp ? std::vector<std::int64_t>{64, 128, 256, 512, 1024, 2048, 4096}
          : std::vector<std::int64_t>{16, 32, 64, 128, 256};
  const auto procs = args.getIntList("procs", defaults);
  // Per-element update cost: ~1 ns on the T3 Woodcrest cores, ~3.5 ns on
  // the 850 MHz BG/P cores.
  const double cpe = args.getDouble("cpe", bgp ? 3.5e-3 : 1.0e-3);

  util::TablePrinter table;
  table.setTitle(std::string("Figure 2") + (bgp ? "(b)" : "(a)") +
                 ": stencil 1024x1024x512, virtualization 8, improvement of "
                 "CkDirect over messages (" +
                 (bgp ? "Blue Gene/P" : "InfiniBand/T3") + ")");
  table.setHeader({"Procs", "MSG iter (us)", "CKD iter (us)", "Improvement",
                   "Messages (MSG)"});
  for (const std::int64_t p : procs) {
    const int pes = static_cast<int>(p);
    charm::MachineConfig machine =
        bgp ? harness::surveyorMachine(pes, 4) : harness::t3Machine(pes, 4);
    runner.applyFaults(machine);
    runner.applyMetrics(machine);
    const auto msg = run(machine, apps::stencil::Mode::kMessages, pes,
                         iterations, cpe, runner);
    const auto ckd = run(machine, apps::stencil::Mode::kCkDirect, pes,
                         iterations, cpe, runner);
    for (const char* variant : {"msg", "ckd"}) {
      const auto& r = variant[0] == 'm' ? msg : ckd;
      util::JsonValue labels = util::JsonValue::object();
      labels.set("variant", util::JsonValue(variant));
      labels.set("pes", util::JsonValue(pes));
      runner.addMetric("iteration_us", r.avg_iteration_us, "us",
                       std::move(labels));
    }
    table.addRow({std::to_string(pes),
                  util::formatFixed(msg.avg_iteration_us, 1),
                  util::formatFixed(ckd.avg_iteration_us, 1),
                  util::formatPercent(
                      1.0 - ckd.avg_iteration_us / msg.avg_iteration_us),
                  std::to_string(msg.messages_sent)});
  }
  table.print(std::cout);
  std::cout << "(paper: gains grow with processor count; ~12% at 256 on "
               "InfiniBand, smaller but positive on BG/P with a dip at "
               "2048)\n";
  return runner.finish();
}
