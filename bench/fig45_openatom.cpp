// Reproduces Figures 4 and 5: OpenAtom time per step, CkDirect vs Charm++
// messages, for the full timestep and for PairCalculator-only runs.
//   fig4_openatom_ib  — NCSA Abe, 2 cores per node (the paper's layout
//                       choice "to highlight network effects")
//   fig5_openatom_bgp — Blue Gene/P
// The W256M_70Ry-like configuration uses 1024 states; the PairCalculator
// decomposition starts at the paper's coarsest (2x2 state blocks — the
// quoted 4 * nstates * nplanes CkDirect channels) and refines with the
// processor count, as the paper describes. The CkDirect runs use the
// ReadyMark/ReadyPollQ split (§5.2's optimized placement).

#include <iostream>
#include <string>
#include <vector>

#include "apps/openatom/openatom.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/profile.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace ckd;

namespace {

apps::openatom::Result run(const charm::MachineConfig& machine,
                           apps::openatom::Mode mode, bool pcOnly,
                           const util::Args& args, int steps, int pes,
                           bool bgp, harness::BenchRunner& runner) {
  apps::openatom::Config cfg;
  cfg.nstates = static_cast<int>(args.getInt("nstates", 1024));
  cfg.nplanes = static_cast<int>(args.getInt("nplanes", 16));
  cfg.points = static_cast<int>(args.getInt("points", bgp ? 600 : 900));
  // "the number [of channels] increases further each time the
  // PairCalculator computation is further decomposed, as is done at higher
  // processor counts" (§5.2): coarsest 2x2 blocks at small scale, finer
  // decompositions as processors grow.
  cfg.stateBlocks = static_cast<int>(
      args.getInt("sb", pes <= 64 ? 2 : pes >= 512 ? 8 : 4));
  cfg.steps = steps;
  cfg.mode = mode;
  cfg.ready = apps::openatom::ReadyStrategy::kMarkDeferPoll;
  cfg.pc_only = pcOnly;
  cfg.real_compute = false;
  // Phases around the PairCalculator (FFTs, densities) dominate a full
  // Car-Parrinello step; the DGEMM rate matches the machine's cores.
  cfg.phase1_us_per_point = args.getDouble("phase", 0.22);
  cfg.phase4_us_per_point = cfg.phase1_us_per_point;
  cfg.compute_per_flop_us =
      args.getDouble("flop", bgp ? 0.74e-3 : 0.28e-3) / 2.0;
  cfg.copy_per_byte_us = machine.netParams.self_per_byte_us;
  charm::Runtime rts(machine);
  runner.configureTrace(rts.engine().trace());
  apps::openatom::OpenAtomApp app(rts, cfg);
  const auto result = app.execute();
  if (runner.wantsProfiles() || runner.metricsEnabled()) {
    harness::ProfileReport report = harness::captureProfile(rts);
    report.label =
        std::string(mode == apps::openatom::Mode::kCkDirect ? "ckd" : "msg") +
        (pcOnly ? "-pc" : "-full") + "/" + std::to_string(pes);
    runner.addProfile(std::move(report));
  }
  return result;
}

}  // namespace

#ifndef FIG_DEFAULT_MACHINE
#define FIG_DEFAULT_MACHINE "ib"
#endif

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const bool bgp = args.get("machine", FIG_DEFAULT_MACHINE) == "bgp";
  harness::BenchRunner runner(bgp ? "fig5_openatom_bgp" : "fig4_openatom_ib",
                              args);
  const int steps = static_cast<int>(args.getInt("steps", 2));
  const std::vector<std::int64_t> defaults =
      bgp ? std::vector<std::int64_t>{256, 512, 1024, 4096}
          : std::vector<std::int64_t>{32, 64, 128, 256};
  const auto procs = args.getIntList("procs", defaults);

  util::TablePrinter table;
  table.setTitle(std::string("Figure ") + (bgp ? "5" : "4") +
                 ": OpenAtom time per step (us), messages vs CkDirect (" +
                 (bgp ? "Blue Gene/P" : "Abe, 2 cores/node") + ")");
  table.setHeader({"Procs", "MSG full", "CKD full", "full gain", "MSG PC-only",
                   "CKD PC-only", "PC gain"});
  for (const std::int64_t p : procs) {
    const int pes = static_cast<int>(p);
    charm::MachineConfig machine =
        bgp ? harness::surveyorMachine(pes, 4) : harness::abeMachine(pes, 2);
    runner.applyFaults(machine);
    runner.applyMetrics(machine);
    const auto msgFull = run(machine, apps::openatom::Mode::kMessages, false,
                             args, steps, pes, bgp, runner);
    const auto ckdFull = run(machine, apps::openatom::Mode::kCkDirect, false,
                             args, steps, pes, bgp, runner);
    const auto msgPc = run(machine, apps::openatom::Mode::kMessages, true,
                           args, steps, pes, bgp, runner);
    const auto ckdPc = run(machine, apps::openatom::Mode::kCkDirect, true,
                           args, steps, pes, bgp, runner);
    const struct {
      const char* variant;
      const char* scope;
      double value;
    } rows[] = {{"msg", "full", msgFull.avg_step_us},
                {"ckd", "full", ckdFull.avg_step_us},
                {"msg", "pc_only", msgPc.avg_step_us},
                {"ckd", "pc_only", ckdPc.avg_step_us}};
    for (const auto& r : rows) {
      util::JsonValue labels = util::JsonValue::object();
      labels.set("variant", util::JsonValue(r.variant));
      labels.set("scope", util::JsonValue(r.scope));
      labels.set("pes", util::JsonValue(pes));
      runner.addMetric("step_us", r.value, "us", std::move(labels));
    }
    table.addRow(
        {std::to_string(pes), util::formatFixed(msgFull.avg_step_us, 0),
         util::formatFixed(ckdFull.avg_step_us, 0),
         util::formatPercent(1.0 - ckdFull.avg_step_us / msgFull.avg_step_us),
         util::formatFixed(msgPc.avg_step_us, 0),
         util::formatFixed(ckdPc.avg_step_us, 0),
         util::formatPercent(1.0 - ckdPc.avg_step_us / msgPc.avg_step_us)});
  }
  table.print(std::cout);
  std::cout << "(paper: ~4% full-step gain on Abe, up to ~14% PC-only; "
               "slight gains on BG/P, larger PC-only at 4096)\n";
  return runner.finish();
}
