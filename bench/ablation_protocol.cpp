// §3 analysis ablation: where does the pingpong gap come from?
//
// Decomposes the Default-Charm++ vs CkDirect one-way difference into the
// paper's named components — envelope bytes, message pack/alloc, scheduling
// overhead, and (above the cut-over) the rendezvous round trip plus
// registration — by re-running the pingpong with each cost zeroed in turn.
// Also quantifies the put-vs-get design choice (§2): a get must first ship
// a request to the data's owner, so it pays one extra one-way latency.

#include <iostream>
#include <string>
#include <vector>

#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace ckd;

namespace {

double charmRtt(charm::MachineConfig machine, std::size_t bytes, int iters) {
  harness::PingpongConfig cfg;
  cfg.bytes = bytes;
  cfg.iterations = iters;
  return harness::charmPingpongRtt(machine, cfg);
}

double ckdRtt(const charm::MachineConfig& machine, std::size_t bytes,
              int iters) {
  harness::PingpongConfig cfg;
  cfg.bytes = bytes;
  cfg.iterations = iters;
  return harness::ckdirectPingpongRtt(machine, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  const int iters = static_cast<int>(args.getInt("iters", 200));
  const charm::MachineConfig base = harness::abeMachine(2, 1);

  util::TablePrinter table;
  table.setTitle(
      "Ablation (paper 3): components of the Default-vs-CkDirect pingpong "
      "gap on InfiniBand (RTT us)");
  table.setHeader({"Size(KB)", "Default", "no header", "no sched", "no pack",
                   "free rendezvous", "CkDirect"});
  for (const std::int64_t size :
       args.getIntList("sizes", {100, 1000, 10000, 30000, 100000})) {
    const auto bytes = static_cast<std::size_t>(size);
    const double dflt = charmRtt(base, bytes, iters);

    charm::MachineConfig noHeader = base;
    noHeader.costs.header_bytes = 0;
    charm::MachineConfig noSched = base;
    noSched.costs.sched_overhead_us = 0;
    charm::MachineConfig noPack = base;
    noPack.costs.pack_us = 0;
    charm::MachineConfig freeRndv = base;
    freeRndv.costs.rendezvous_reg_base_us = 0;
    freeRndv.costs.rendezvous_reg_per_byte_us = 0;

    table.addRow({util::formatFixed(size / 1000.0, 1),
                  util::formatFixed(dflt, 2),
                  util::formatFixed(charmRtt(noHeader, bytes, iters), 2),
                  util::formatFixed(charmRtt(noSched, bytes, iters), 2),
                  util::formatFixed(charmRtt(noPack, bytes, iters), 2),
                  util::formatFixed(charmRtt(freeRndv, bytes, iters), 2),
                  util::formatFixed(ckdRtt(base, bytes, iters), 2)});
  }
  table.print(std::cout);

  // Put vs get (§2): a receiver-initiated get pays an extra control
  // one-way before any data moves.
  util::TablePrinter pg;
  pg.setTitle("Put vs get (§2 design choice): one-way data delivery time "
              "(us), sender-ready to receiver-notified");
  pg.setHeader({"Size(KB)", "put", "get (request + put)"});
  for (const std::int64_t size : args.getIntList("sizes", {100, 1000, 10000,
                                                            30000, 100000})) {
    const auto bytes = static_cast<std::size_t>(size);
    const double putOneWay = ckdRtt(base, bytes, iters) / 2.0;
    // A get adds one control-message latency (request to the owner).
    const double requestLatency = base.netParams.control.alpha_us +
                                  2 * base.netParams.per_hop_us;
    pg.addRow({util::formatFixed(size / 1000.0, 1),
               util::formatFixed(putOneWay, 2),
               util::formatFixed(putOneWay + requestLatency, 2)});
  }
  pg.print(std::cout);
  return 0;
}
