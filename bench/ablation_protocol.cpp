// §3 analysis ablation: where does the pingpong gap come from?
//
// Decomposes the Default-Charm++ vs CkDirect one-way difference into the
// paper's named components — envelope bytes, message pack/alloc, scheduling
// overhead, and (above the cut-over) the rendezvous round trip plus
// registration — by re-running the pingpong with each cost zeroed in turn.
// Also quantifies the put-vs-get design choice (§2): a get must first ship
// a request to the data's owner, so it pays one extra one-way latency.

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/pingpong.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace ckd;

namespace {

double rtt(const charm::MachineConfig& machine, bool ckdirect,
           std::size_t bytes, int iters, harness::BenchRunner& runner,
           const char* variant) {
  harness::PingpongConfig cfg;
  cfg.bytes = bytes;
  cfg.iterations = iters;
  cfg.trace = runner.traceEnabled();
  cfg.traceCapacity = runner.traceCapacity();
  harness::ProfileReport report;
  if (runner.wantsProfiles() || runner.metricsEnabled())
    cfg.profile = &report;
  const double value = ckdirect ? harness::ckdirectPingpongRtt(machine, cfg)
                                : harness::charmPingpongRtt(machine, cfg);
  if (cfg.profile != nullptr) {
    report.label = std::string(variant) + "/" + std::to_string(bytes);
    runner.addProfile(std::move(report));
  }
  util::JsonValue labels = util::JsonValue::object();
  labels.set("variant", util::JsonValue(variant));
  labels.set("bytes", util::JsonValue(bytes));
  runner.addMetric("rtt_us", value, "us", std::move(labels));
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  harness::BenchRunner runner("ablation_protocol", args);
  const int iters = static_cast<int>(args.getInt("iters", 200));
  charm::MachineConfig base = harness::abeMachine(2, 1);
  runner.applyFaults(base);
  runner.applyMetrics(base);

  util::TablePrinter table;
  table.setTitle(
      "Ablation (paper 3): components of the Default-vs-CkDirect pingpong "
      "gap on InfiniBand (RTT us)");
  table.setHeader({"Size(KB)", "Default", "no header", "no sched", "no pack",
                   "free rendezvous", "CkDirect"});
  for (const std::int64_t size :
       args.getIntList("sizes", {100, 1000, 10000, 30000, 100000})) {
    const auto bytes = static_cast<std::size_t>(size);

    charm::MachineConfig noHeader = base;
    noHeader.costs.header_bytes = 0;
    charm::MachineConfig noSched = base;
    noSched.costs.sched_overhead_us = 0;
    charm::MachineConfig noPack = base;
    noPack.costs.pack_us = 0;
    charm::MachineConfig freeRndv = base;
    freeRndv.costs.rendezvous_reg_base_us = 0;
    freeRndv.costs.rendezvous_reg_per_byte_us = 0;

    table.addRow(
        {util::formatFixed(size / 1000.0, 1),
         util::formatFixed(rtt(base, false, bytes, iters, runner, "default"),
                           2),
         util::formatFixed(
             rtt(noHeader, false, bytes, iters, runner, "no_header"), 2),
         util::formatFixed(
             rtt(noSched, false, bytes, iters, runner, "no_sched"), 2),
         util::formatFixed(rtt(noPack, false, bytes, iters, runner, "no_pack"),
                           2),
         util::formatFixed(
             rtt(freeRndv, false, bytes, iters, runner, "free_rendezvous"), 2),
         util::formatFixed(
             rtt(base, true, bytes, iters, runner, "ckdirect"), 2)});
  }
  table.print(std::cout);

  // Put vs get (§2): a receiver-initiated get pays an extra control
  // one-way before any data moves.
  util::TablePrinter pg;
  pg.setTitle("Put vs get (§2 design choice): one-way data delivery time "
              "(us), sender-ready to receiver-notified");
  pg.setHeader({"Size(KB)", "put", "get (request + put)"});
  for (const std::int64_t size : args.getIntList("sizes", {100, 1000, 10000,
                                                            30000, 100000})) {
    const auto bytes = static_cast<std::size_t>(size);
    harness::PingpongConfig cfg;
    cfg.bytes = bytes;
    cfg.iterations = iters;
    const double putOneWay =
        harness::ckdirectPingpongRtt(base, cfg) / 2.0;
    // A get adds one control-message latency (request to the owner).
    const double requestLatency = base.netParams.control.alpha_us +
                                  2 * base.netParams.per_hop_us;
    util::JsonValue putLabels = util::JsonValue::object();
    putLabels.set("variant", util::JsonValue("put"));
    putLabels.set("bytes", util::JsonValue(bytes));
    runner.addMetric("one_way_us", putOneWay, "us", std::move(putLabels));
    util::JsonValue getLabels = util::JsonValue::object();
    getLabels.set("variant", util::JsonValue("get"));
    getLabels.set("bytes", util::JsonValue(bytes));
    runner.addMetric("one_way_us", putOneWay + requestLatency, "us",
                     std::move(getLabels));
    pg.addRow({util::formatFixed(size / 1000.0, 1),
               util::formatFixed(putOneWay, 2),
               util::formatFixed(putOneWay + requestLatency, 2)});
  }
  pg.print(std::cout);
  return runner.finish();
}
