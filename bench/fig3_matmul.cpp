// Reproduces Figure 3: execution time per iteration for the 3-D
// decomposition matrix multiplication (2048 x 2048), messages vs CkDirect,
// on Blue Gene/P and on NCSA Abe. The CkDirect version avoids the
// receive-side placement copies and the per-slice scheduling overhead; the
// paper reports it scaling visibly better (≈40% at 4K PEs on BG/P).

#include <iostream>
#include <string>
#include <vector>

#include "apps/matmul/matmul.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/profile.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace ckd;

namespace {

apps::matmul::Result run(const charm::MachineConfig& machine,
                         apps::matmul::Mode mode, int pes, int iterations,
                         double flopCost, harness::BenchRunner& runner,
                         const std::string& machineTag) {
  apps::matmul::Config cfg;
  cfg.m = cfg.n = cfg.k = 2048;
  apps::matmul::chooseGrid(pes, cfg.cx, cfg.cy, cfg.cz);
  cfg.iterations = iterations;
  cfg.mode = mode;
  cfg.real_compute = false;  // 2048^3 DGEMM is cost-modeled
  cfg.compute_per_flop_us = flopCost;
  // Receive-side placement copy (kMessages only): the default version
  // scatters slice data "into the correct locations" — strided row/column
  // placement runs well below straight memcpy bandwidth (~4x slower).
  cfg.copy_per_byte_us = machine.netParams.self_per_byte_us * 4.0;
  charm::Runtime rts(machine);
  runner.configureTrace(rts.engine().trace());
  apps::matmul::MatmulApp app(rts, cfg);
  const auto result = app.execute();
  if (runner.wantsProfiles() || runner.metricsEnabled()) {
    harness::ProfileReport report = harness::captureProfile(rts);
    report.label =
        machineTag + "/" +
        (mode == apps::matmul::Mode::kCkDirect ? "ckd" : "msg") + "/" +
        std::to_string(pes);
    runner.addProfile(std::move(report));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  harness::BenchRunner runner("fig3_matmul", args);
  const std::string machineName = args.get("machine", "both");
  const int iterations = static_cast<int>(args.getInt("iters", 3));

  auto sweep = [&](bool bgp) {
    const std::string machineTag = bgp ? "bgp" : "ib";
    const std::vector<std::int64_t> defaults =
        bgp ? std::vector<std::int64_t>{64, 128, 256, 512, 1024, 2048, 4096}
            : std::vector<std::int64_t>{16, 32, 64, 128, 256};
    const auto procs = args.getIntList("procs", defaults);
    // Cost per multiply-add: ~0.74 ns on the 850 MHz BG/P cores (2.7
    // GF/s effective DGEMM), ~0.28 ns on Clovertown.
    const double flopCost = args.getDouble("flop", bgp ? 0.74e-3 : 0.28e-3);

    util::TablePrinter table;
    table.setTitle(std::string("Figure 3: matmul 2048x2048 iteration time, ") +
                   (bgp ? "Blue Gene/P" : "NCSA Abe"));
    table.setHeader(
        {"Procs", "MSG iter (us)", "CKD iter (us)", "Improvement"});
    for (const std::int64_t p : procs) {
      const int pes = static_cast<int>(p);
      charm::MachineConfig machine =
          bgp ? harness::surveyorMachine(pes, 4) : harness::abeMachine(pes, 8);
      runner.applyFaults(machine);
      runner.applyMetrics(machine);
      const auto msg = run(machine, apps::matmul::Mode::kMessages, pes,
                           iterations, flopCost, runner, machineTag);
      const auto ckd = run(machine, apps::matmul::Mode::kCkDirect, pes,
                           iterations, flopCost, runner, machineTag);
      for (const char* variant : {"msg", "ckd"}) {
        const auto& r = variant[0] == 'm' ? msg : ckd;
        util::JsonValue labels = util::JsonValue::object();
        labels.set("machine", util::JsonValue(machineTag));
        labels.set("variant", util::JsonValue(variant));
        labels.set("pes", util::JsonValue(pes));
        runner.addMetric("iteration_us", r.avg_iteration_us, "us",
                         std::move(labels));
      }
      table.addRow({std::to_string(pes),
                    util::formatFixed(msg.avg_iteration_us, 1),
                    util::formatFixed(ckd.avg_iteration_us, 1),
                    util::formatPercent(
                        1.0 - ckd.avg_iteration_us / msg.avg_iteration_us)});
    }
    table.print(std::cout);
  };

  if (machineName == "both" || machineName == "bgp") sweep(/*bgp=*/true);
  if (machineName == "both" || machineName == "ib") sweep(/*bgp=*/false);
  std::cout << "(paper: CkDirect scales better on both machines; the "
               "absolute gap grows with processors, ~40% at 4K on BG/P)\n";
  return runner.finish();
}
