// §5.2 ablation: the polling pathology and its fix.
//
// OpenAtom's coarsest decomposition needs 4 * nstates * nplanes CkDirect
// channels; with 1024 states that is thousands of channels — "tens or
// hundreds of channels per processor, with commensurate overhead to poll
// each channel. Each PairCalculator spends most of the time step ready for
// input, which can inflict the polling overhead on many unrelated phases."
//
// This bench compares three variants at growing channel counts per PE:
//   messages            — no channels at all (the baseline);
//   CkDirect naive      — CkDirect_ready right after consuming (channels
//                         polled across every phase);
//   CkDirect mark+pollq — CkDirect_ReadyMark at consume time,
//                         CkDirect_ReadyPollQ only at the phase that uses
//                         the channels (the paper's fix).
// The paper's observation: the naive variant is *slower than messages*;
// the split restores the win.

#include <iostream>
#include <string>

#include "apps/openatom/openatom.hpp"
#include "ckdirect/ckdirect.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/profile.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace ckd;

namespace {

double run(apps::openatom::Mode mode, apps::openatom::ReadyStrategy ready,
           int nstates, int pes, const util::Args& args,
           harness::BenchRunner& runner, const char* variant) {
  apps::openatom::Config cfg;
  cfg.nstates = nstates;
  cfg.nplanes = static_cast<int>(args.getInt("nplanes", 8));
  cfg.points = static_cast<int>(args.getInt("points", 600));
  cfg.steps = static_cast<int>(args.getInt("steps", 3));
  cfg.mode = mode;
  cfg.ready = ready;
  cfg.real_compute = false;
  charm::MachineConfig machine = harness::abeMachine(pes, 2);
  runner.applyFaults(machine);
  runner.applyMetrics(machine);
  charm::Runtime rts(machine);
  runner.configureTrace(rts.engine().trace());
  apps::openatom::OpenAtomApp app(rts, cfg);
  const double stepUs = app.execute().avg_step_us;
  if (runner.wantsProfiles() || runner.metricsEnabled()) {
    harness::ProfileReport report = harness::captureProfile(rts);
    report.label = std::string(variant) + "/" + std::to_string(nstates);
    runner.addProfile(std::move(report));
  }
  util::JsonValue labels = util::JsonValue::object();
  labels.set("variant", util::JsonValue(variant));
  labels.set("nstates", util::JsonValue(nstates));
  runner.addMetric("step_us", stepUs, "us", std::move(labels));
  return stepUs;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  harness::BenchRunner runner("ablation_readymark", args);
  const int pes = static_cast<int>(args.getInt("pes", 32));

  util::TablePrinter table;
  table.setTitle(
      "Ablation (paper 5.2): CkDirect_ready vs ReadyMark/ReadyPollQ, "
      "OpenAtom-style channel counts on " +
      std::to_string(pes) + " PEs");
  table.setHeader({"states", "channels", "chan/PE", "messages (us)",
                   "naive ready (us)", "mark+pollq (us)", "naive vs msg",
                   "split vs msg"});
  for (const std::int64_t s : args.getIntList("states", {128, 256, 512, 1024})) {
    const int nstates = static_cast<int>(s);
    const double msg = run(apps::openatom::Mode::kMessages,
                           apps::openatom::ReadyStrategy::kNaive, nstates,
                           pes, args, runner, "messages");
    const double naive = run(apps::openatom::Mode::kCkDirect,
                             apps::openatom::ReadyStrategy::kNaive, nstates,
                             pes, args, runner, "naive_ready");
    const double split = run(apps::openatom::Mode::kCkDirect,
                             apps::openatom::ReadyStrategy::kMarkDeferPoll,
                             nstates, pes, args, runner, "mark_pollq");
    const std::int64_t channels =
        4ll * nstates * args.getInt("nplanes", 8);
    table.addRow({std::to_string(nstates), std::to_string(channels),
                  std::to_string(channels / pes), util::formatFixed(msg, 0),
                  util::formatFixed(naive, 0), util::formatFixed(split, 0),
                  util::formatPercent(1.0 - naive / msg),
                  util::formatPercent(1.0 - split / msg)});
  }
  table.print(std::cout);
  std::cout << "(paper: naive polling made CkDirect slower than messaging; "
               "the ReadyMark/ReadyPollQ split bounds the polling window)\n";
  return runner.finish();
}
