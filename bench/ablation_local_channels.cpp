// Design ablation: should co-located chares use CkDirect channels?
//
// A local put is a real extra memcpy (one-sided semantics: the payload must
// land in the registered receive buffer), whereas a local Charm++ message
// is a pointer handoff plus one scheduling overhead. For large faces the
// copy costs more than the scheduling it avoids, so the stencil defaults to
// local-via-messages. This bench quantifies the trade-off on both machines
// across face sizes.

#include <iostream>
#include <string>

#include "apps/stencil/stencil.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "harness/profile.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace ckd;

namespace {

double run(const charm::MachineConfig& machine, std::int64_t domain,
           bool localViaMessages, int iters, harness::BenchRunner& runner,
           const char* machineTag) {
  apps::stencil::Config cfg;
  cfg.gx = domain;
  cfg.gy = domain;
  cfg.gz = domain / 2;
  apps::stencil::chooseChareGrid(cfg.gx, cfg.gy, cfg.gz, 128, cfg.cx, cfg.cy,
                                 cfg.cz);
  cfg.iterations = iters;
  cfg.mode = apps::stencil::Mode::kCkDirect;
  cfg.local_via_messages = localViaMessages;
  cfg.real_compute = false;
  cfg.compute_per_element_us = 1.0e-3;
  charm::Runtime rts(machine);
  runner.configureTrace(rts.engine().trace());
  apps::stencil::StencilApp app(rts, cfg);
  const double iterUs = app.execute().avg_iteration_us;
  const char* variant = localViaMessages ? "local_messages" : "channels_all";
  if (runner.wantsProfiles() || runner.metricsEnabled()) {
    harness::ProfileReport report = harness::captureProfile(rts);
    report.label = std::string(machineTag) + "/" + variant + "/" +
                   std::to_string(domain);
    runner.addProfile(std::move(report));
  }
  util::JsonValue labels = util::JsonValue::object();
  labels.set("machine", util::JsonValue(machineTag));
  labels.set("variant", util::JsonValue(variant));
  labels.set("domain", util::JsonValue(domain));
  runner.addMetric("iteration_us", iterUs, "us", std::move(labels));
  return iterUs;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  harness::BenchRunner runner("ablation_local_channels", args);
  const int iters = static_cast<int>(args.getInt("iters", 4));
  const int pes = static_cast<int>(args.getInt("pes", 16));

  for (const bool bgp : {false, true}) {
    charm::MachineConfig machine =
        bgp ? harness::surveyorMachine(pes, 4) : harness::t3Machine(pes, 4);
    runner.applyFaults(machine);
    runner.applyMetrics(machine);
    const char* machineTag = bgp ? "bgp" : "ib";
    util::TablePrinter table;
    table.setTitle(std::string("Local-neighbor channels ablation, stencil on ") +
                   (bgp ? "Blue Gene/P" : "T3") + ", 128 chares, " +
                   std::to_string(pes) + " PEs");
    table.setHeader({"Domain", "face KB", "channels everywhere (us)",
                     "local via messages (us)", "delta"});
    for (const std::int64_t domain : args.getIntList("domains",
                                                     {64, 128, 256, 512})) {
      apps::stencil::Config probe;
      probe.gx = domain;
      probe.gy = domain;
      probe.gz = domain / 2;
      apps::stencil::chooseChareGrid(probe.gx, probe.gy, probe.gz, 128,
                                     probe.cx, probe.cy, probe.cz);
      const double faceKb =
          static_cast<double>((probe.gx / probe.cx) * (probe.gy / probe.cy)) *
          8.0 / 1024.0;
      const double all = run(machine, domain, false, iters, runner, machineTag);
      const double mixed =
          run(machine, domain, true, iters, runner, machineTag);
      table.addRow({std::to_string(domain) + "^2x" + std::to_string(domain / 2),
                    util::formatFixed(faceKb, 1), util::formatFixed(all, 1),
                    util::formatFixed(mixed, 1),
                    util::formatPercent(1.0 - mixed / all)});
    }
    table.print(std::cout);
  }
  return runner.finish();
}
