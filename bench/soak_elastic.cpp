// Elastic soak: a request/response workload (driver on PE 0, a worker chare
// array served over per-worker CkDirect channels) driven through the full
// PE lifecycle — ramp, scale-out, drain/retire — with a crash landing in
// the middle of the drain's state handoff. Gates:
//
//  * p99 per-request latency RECOVERS after the scale-out (more PEs, fewer
//    workers per PE, less queueing) — the headline elastic win.
//  * The drained PE retires; its workers' CkDirect channels are rehomed to
//    the adoptive PEs and keep serving requests.
//  * A pe_crash placed mid-handoff (found by a deterministic probe run, see
//    below) aborts the in-flight migration, falls back to the PR 3 global
//    rollback, and the drain still completes afterwards — byte-identical
//    final worker state, no wedging.
//  * Everything is bit-identical across reruns; the ctest gate additionally
//    diffs the printed digest line across --shards {1,2,4}.
//
// Probe technique for the mid-drain crash: pe_crash virtual times shift
// under checkpoint traffic, so the crash time cannot be derived from a
// checkpoint-free run. Instead the probe run arms the SAME config with a
// crash far past quiescence (the injector always fires: the app finishes,
// the far crash hits, the rollback replays the tail). Its pre-crash
// trajectory is therefore exactly the real run's, and its trace gives the
// exact [handoff-shipped, retire] window; the real run then pins its crash
// to the middle of that window. Deterministic by construction.
//
// The lifecycle triggers are round-driven from the driver and IDEMPOTENT:
// a rollback rewinds the driver's round counter, so round 16/32 can be
// reached twice — the driver re-requests only if the machine has not grown
// / the victim is still Active (a re-drive of a pending drain is the
// supervisor's job, via the restored drain intent).
//
// Flags (besides the standard BenchRunner set):
//   --workers <n>        worker elements (default 24)
//   --rounds <n>         request rounds (default 48)
//   --state-doubles <n>  per-worker state (handoff payload, default 4096)
//   --compute-us <t>     modeled per-request compute (default 30)
//   --skip-crash         clean lifecycle legs only

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "charm/chare.hpp"
#include "charm/checkpoint.hpp"
#include "charm/lifecycle.hpp"
#include "charm/marshal.hpp"
#include "charm/message.hpp"
#include "charm/pup.hpp"
#include "ckdirect/ckdirect.hpp"
#include "fault/fault.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "obs/histogram.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace ckd;

constexpr std::uint64_t kOob = 0xE1A5F1CBADC0FFEEull;

std::uint64_t fnv(const void* data, std::size_t bytes,
                  std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::string hexDigest(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4)
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
  return out;
}

struct Params {
  int workers = 24;
  int rounds = 48;
  std::size_t stateDoubles = 4096;  ///< per-worker state = handoff payload
  double computeUs = 30.0;
  std::size_t reqBytes = 256;       ///< CkDirect request payload
  int scaleOutAfterRound = 16;      ///< -1: no scale-out (BG/P leg)
  int scaleOutPes = 4;
  int drainAfterRound = 32;         ///< -1: no drain
  int drainPe = 5;
};

class WorkerChare : public charm::Chare {
 public:
  std::vector<double> state;
  std::vector<std::byte> recvBuf;
  int served = 0;

  void pup(charm::Puper& p) override {
    p | state;
    p | recvBuf;  // in place: the CkDirect registration keys off data()
    p | served;
  }
};

class DriverChare : public charm::Chare {
 public:
  int round = 0;
  int replies = 0;
  bool cutSeen = false;
  std::vector<double> sentAt;
  std::vector<std::vector<std::byte>> sendBufs;
  /// Reply-arrival order; deterministic across shard counts.
  std::vector<double> latencies;
  std::vector<std::int32_t> latencyRound;
  std::vector<double> roundDone;  ///< virtual completion time per round

  void pup(charm::Puper& p) override {
    p | round;
    p | replies;
    p | cutSeen;
    p | sentAt;
    for (std::vector<std::byte>& buf : sendBufs) p | buf;  // in place
    p | latencies;
    p | latencyRound;
    p | roundDone;
  }
};

/// Everything the entry methods need; lives for the whole run (handles and
/// entry ids are construction-time constants, like the stencil app's).
struct App {
  charm::Runtime& rts;
  Params par;
  int basePes = 0;
  charm::ArrayId workersArr = -1;
  charm::ArrayId driverArr = -1;
  charm::EntryId epRequest = -1;   // workers: CkDirect request landed
  charm::EntryId epCut = -1;       // workers: reduction completion
  charm::EntryId epReply = -1;     // driver: one worker replied
  charm::EntryId epCutDone = -1;   // driver: the round's cut completed
  std::vector<direct::Handle> handles;

  App(charm::Runtime& r, Params p) : rts(r), par(std::move(p)) {}

  DriverChare& driver() {
    return static_cast<DriverChare&>(rts.element(driverArr, 0));
  }
  WorkerChare& worker(std::int64_t i) {
    return static_cast<WorkerChare&>(rts.element(workersArr, i));
  }

  void startRound() {
    DriverChare& d = driver();
    d.replies = 0;
    d.cutSeen = false;
    for (int i = 0; i < par.workers; ++i) {
      std::vector<std::byte>& buf = d.sendBufs[static_cast<std::size_t>(i)];
      for (std::size_t j = 0; j + 8 < buf.size(); ++j)
        buf[j] = static_cast<std::byte>(
            (static_cast<std::size_t>(d.round) * 131u + j * 7u +
             static_cast<std::size_t>(i)) &
            0xffu);
      // The CkDirect arrival sentinel lives in the last 8 bytes; round+1
      // can never collide with kOob.
      const std::uint64_t stamp = static_cast<std::uint64_t>(d.round) + 1;
      std::memcpy(buf.data() + buf.size() - sizeof(stamp), &stamp,
                  sizeof(stamp));
      d.sentAt[static_cast<std::size_t>(i)] = d.now();
      direct::put(handles[static_cast<std::size_t>(i)]);
    }
  }

  void onRequest(WorkerChare& w) {
    w.charge(par.computeUs);
    // Deterministic state evolution: fold the request bytes in, then relax.
    const std::uint64_t digest = fnv(w.recvBuf.data(), w.recvBuf.size());
    w.state[static_cast<std::size_t>(w.served) % w.state.size()] +=
        static_cast<double>(digest % 1024u) * 1e-6;
    ++w.served;
    direct::ready(handles[static_cast<std::size_t>(w.thisIndex())]);
    charm::Packer pk;
    pk.put<std::int64_t>(w.thisIndex());
    rts.sendToElement(driverArr, 0, epReply, pk.bytes());
    // The per-round reduction is the migration/checkpoint cut; every
    // channel is idle (ready'd, no put in flight) when it closes.
    w.barrier(epCut);
  }

  void onReply(charm::Message& msg) {
    DriverChare& d = driver();
    charm::Unpacker up(msg.payload());
    const auto idx = static_cast<std::size_t>(up.get<std::int64_t>());
    d.latencies.push_back(d.now() - d.sentAt[idx]);
    d.latencyRound.push_back(d.round);
    ++d.replies;
    maybeAdvance();
  }

  void onCutDone() {
    DriverChare& d = driver();
    d.cutSeen = true;
    maybeAdvance();
  }

  void maybeAdvance() {
    DriverChare& d = driver();
    if (d.replies < par.workers || !d.cutSeen) return;
    d.roundDone.push_back(d.now());
    // Round-driven lifecycle triggers, guarded so a post-rollback replay
    // that re-reaches the trigger round does not double-request: grown PEs
    // stay provisioned across a rollback, and an interrupted drain survives
    // as restored intent (re-driven by the supervisor, not re-requested).
    charm::LifecycleManager* life = rts.lifecycle();
    if (life != nullptr && d.round == par.scaleOutAfterRound &&
        rts.numPes() < basePes + par.scaleOutPes)
      life->requestScaleOut(par.scaleOutPes);
    if (life != nullptr && d.round == par.drainAfterRound &&
        life->state(par.drainPe) == charm::PeState::kActive)
      life->requestDrain(par.drainPe);
    ++d.round;
    if (d.round < par.rounds) startRound();
  }
};

struct RunResult {
  std::uint64_t stateDigest = 0;  ///< worker state only (crash-invariant)
  std::uint64_t fullDigest = 0;   ///< + latencies/timing (rerun-invariant)
  std::vector<double> latencies;
  std::vector<std::int32_t> latencyRound;
  double horizon = 0.0;
  std::uint64_t crashes = 0, restores = 0, checkpoints = 0;
  std::uint64_t scaleOuts = 0, drains = 0, migrated = 0, aborted = 0;
  std::uint64_t handoffBytes = 0, retireEvents = 0;
  double firstHandoffAt = -1.0, firstRetireAt = -1.0;
  /// Ship time of the handoff pass that the first retire completed — the
  /// drain's own shipping, as opposed to an earlier post-scale-out
  /// rebalance (firstHandoffAt picks up whichever came first).
  double drainHandoffAt = -1.0;
  double crashAt = -1.0;
  int finalPes = 0, activePes = 0;
};

RunResult runElastic(charm::MachineConfig machine, const Params& par,
                     const harness::BenchRunner* runner = nullptr,
                     harness::ProfileReport* profile = nullptr) {
  charm::Runtime rts(machine);
  // The result extraction reads the merged trace (per-engine counters do
  // not aggregate across shards), so the ring is always on.
  rts.enableTracing();
  if (runner != nullptr && runner->traceEnabled())
    runner->configureTrace(rts.engine().trace());
  auto app = std::make_shared<App>(rts, par);
  app->basePes = rts.numPes();

  app->driverArr = rts.createArray<DriverChare>(
      "driver", 1, [](std::int64_t) { return 0; },
      [&](std::int64_t) {
        auto d = std::make_unique<DriverChare>();
        d->sentAt.assign(static_cast<std::size_t>(par.workers), 0.0);
        d->sendBufs.assign(static_cast<std::size_t>(par.workers),
                           std::vector<std::byte>(par.reqBytes, std::byte{0}));
        return d;
      });
  const int pes = rts.numPes();
  app->workersArr = rts.createArray<WorkerChare>(
      "workers", par.workers,
      [pes](std::int64_t i) { return static_cast<int>(i) % pes; },
      [&](std::int64_t i) {
        auto w = std::make_unique<WorkerChare>();
        w->state.assign(par.stateDoubles, static_cast<double>(i) + 0.5);
        w->recvBuf.assign(par.reqBytes, std::byte{0});
        return w;
      });

  app->epRequest = rts.registerEntryRaw(
      app->workersArr, "request", [app](charm::Chare& c, charm::Message&) {
        app->onRequest(static_cast<WorkerChare&>(c));
      });
  app->epCut = rts.registerEntryRaw(
      app->workersArr, "cut", [app](charm::Chare& c, charm::Message&) {
        if (c.thisIndex() != 0) return;
        app->rts.sendToElement(app->driverArr, 0, app->epCutDone, {});
      });
  app->epReply = rts.registerEntryRaw(
      app->driverArr, "reply",
      [app](charm::Chare&, charm::Message& m) { app->onReply(m); });
  app->epCutDone = rts.registerEntryRaw(
      app->driverArr, "cutDone",
      [app](charm::Chare&, charm::Message&) { app->onCutDone(); });

  // Per-worker CkDirect request channel: driver (PE 0) -> worker i. The
  // arrival callback only enqueues; the compute runs as an entry method.
  for (std::int64_t i = 0; i < par.workers; ++i) {
    WorkerChare& w = app->worker(i);
    app->handles.push_back(direct::createHandle(
        rts, rts.homePe(app->workersArr, i), w.recvBuf.data(), par.reqBytes,
        kOob, [app, i]() {
          app->rts.sendToElement(app->workersArr, i, app->epRequest, {});
        }));
    direct::assocLocal(
        app->handles.back(), 0,
        app->driver().sendBufs[static_cast<std::size_t>(i)].data());
  }

  // Rehome each migrated worker's request channel — the drain headline.
  rts.setMigrateHook([app](charm::ArrayId a, std::int64_t idx, int /*from*/,
                           int to) {
    if (a != app->workersArr) return;  // the driver never migrates off PE 0
    direct::rehome(app->handles[static_cast<std::size_t>(idx)], to);
  });

  rts.seed([app]() {
    // Fail-stop runs: the setup phase is not a resumable cut; arm crash
    // injection at the setup/run boundary (the stencil app's discipline).
    if (app->rts.checkpoints() != nullptr) app->rts.checkpoints()->arm();
    app->startRound();
  });
  rts.run();

  RunResult out;
  for (std::int64_t i = 0; i < par.workers; ++i) {
    const WorkerChare& w = app->worker(i);
    out.stateDigest = fnv(w.state.data(), w.state.size() * sizeof(double),
                          out.stateDigest != 0 ? out.stateDigest
                                               : 1469598103934665603ull);
    out.stateDigest = fnv(&w.served, sizeof(w.served), out.stateDigest);
  }
  const DriverChare& d = app->driver();
  out.latencies = d.latencies;
  out.latencyRound = d.latencyRound;
  out.horizon = rts.now();
  out.fullDigest = fnv(d.latencies.data(),
                       d.latencies.size() * sizeof(double), out.stateDigest);
  out.fullDigest = fnv(d.roundDone.data(),
                       d.roundDone.size() * sizeof(double), out.fullDigest);
  out.fullDigest = fnv(&out.horizon, sizeof(out.horizon), out.fullDigest);

  std::vector<double> handoffTimes;
  for (const sim::TraceEvent& ev : rts.traceEvents()) {
    switch (ev.tag) {
      case sim::TraceTag::kFaultPeCrash:
        ++out.crashes;
        if (out.crashAt < 0.0) out.crashAt = ev.time;
        break;
      case sim::TraceTag::kCkptRestore: ++out.restores; break;
      case sim::TraceTag::kCkptTaken: ++out.checkpoints; break;
      case sim::TraceTag::kLifeHandoff:
        if (out.firstHandoffAt < 0.0 || ev.time < out.firstHandoffAt)
          out.firstHandoffAt = ev.time;
        handoffTimes.push_back(ev.time);
        break;
      case sim::TraceTag::kLifeRetire:
        ++out.retireEvents;
        if (out.firstRetireAt < 0.0 || ev.time < out.firstRetireAt)
          out.firstRetireAt = ev.time;
        break;
      default: break;
    }
  }
  for (const double t : handoffTimes)
    if (t < out.firstRetireAt && t > out.drainHandoffAt) out.drainHandoffAt = t;
  if (const charm::LifecycleManager* life = rts.lifecycle()) {
    out.scaleOuts = life->scaleOuts();
    out.drains = life->drainsCompleted();
    out.migrated = life->elementsMigrated();
    out.aborted = life->migrationsAborted();
    out.handoffBytes = life->handoffBytesShipped();
    out.activePes = life->activePes();
  }
  out.finalPes = rts.numPes();
  if (profile != nullptr) *profile = harness::captureProfile(rts);
  return out;
}

/// Percentile through the same log-bucketed histogram the streaming
/// telemetry reports (obs::Histogram), so the table and the
/// --metrics-interval series agree exactly. The returned value is a bucket
/// midpoint within Histogram::kRelativeError (1/64 ≈ 1.6%) of the exact
/// order statistic the old sort-based implementation produced; the
/// p99-recovery gate below keeps ~17% headroom, an order of magnitude more
/// than the bucket resolution.
double percentile(const std::vector<double>& values, double p) {
  CKD_REQUIRE(!values.empty(), "percentile of an empty sample");
  obs::Histogram hist;
  for (const double v : values) hist.record(v);
  return hist.percentile(p);
}

/// Request latencies of rounds in [lo, hi).
std::vector<double> phaseLatencies(const RunResult& run, int lo, int hi) {
  std::vector<double> out;
  for (std::size_t i = 0; i < run.latencies.size(); ++i)
    if (run.latencyRound[i] >= lo && run.latencyRound[i] < hi)
      out.push_back(run.latencies[i]);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ckd;
  util::Args args(argc, argv);
  harness::BenchRunner runner("soak_elastic", args);

  Params par;
  par.workers = static_cast<int>(args.getInt("workers", 24));
  par.rounds = static_cast<int>(args.getInt("rounds", 48));
  par.stateDoubles =
      static_cast<std::size_t>(args.getInt("state-doubles", 4096));
  par.computeUs = args.getDouble("compute-us", 30.0);
  const bool skipCrash = args.getBool("skip-crash", false);
  CKD_REQUIRE(par.rounds > par.drainAfterRound + 4,
              "need rounds after the drain to observe retirement");

  util::TablePrinter table;
  table.setTitle("Elastic soak: ramp -> scale-out -> drain -> crash mid-drain");
  table.setHeader({"leg", "p99 ramp", "p99 grown", "p99 drained", "migrated",
                   "events", "digest"});

  const auto addPhaseMetrics = [&runner](const char* leg, const char* phase,
                                         const std::vector<double>& lat) {
    util::JsonValue labels = util::JsonValue::object();
    labels.set("leg", util::JsonValue(leg));
    labels.set("phase", util::JsonValue(phase));
    runner.addMetric("latency_p50_us", percentile(lat, 0.50), "us", labels);
    runner.addMetric("latency_p99_us", percentile(lat, 0.99), "us",
                     std::move(labels));
  };

  std::uint64_t totalAborts = 0;
  for (const bool bgp : {false, true}) {
    const char* leg = bgp ? "bgp" : "ib";
    Params legPar = par;
    if (bgp) legPar.scaleOutAfterRound = -1;  // the torus does not grow
    // 4 nodes up front so --shards 4 really shards 4 ways; the IB leg adds
    // 2 more on scale-out. The drain victim hosts workers in both phases.
    // Every run gets a FRESH machine: the scale-out grows the topology the
    // config's shared_ptr points at, so reusing one config would start the
    // next run on the already-grown machine.
    const auto makeMachine = [&runner, bgp]() {
      charm::MachineConfig m = bgp ? harness::elasticSurveyorMachine(8, 2)
                                   : harness::elasticAbeMachine(8, 2);
      // IB leg: windowed engine as the canonical baseline — faulted
      // timelines are only comparable across shard counts >= 1 (the
      // windowed engine defers checkpoint/lifecycle work to serial
      // boundaries; legacy inlines it). The sharded engine does not cover
      // the DCMF layer, so the BG/P leg runs the classic engine and its
      // determinism gate is the rerun.
      m.shards = bgp ? 0 : 1;
      m.shardThreads = bgp ? 0 : 1;
      runner.applyEngine(m);
      runner.applyMetrics(m);
      return m;
    };

    const RunResult clean = runElastic(makeMachine(), legPar, &runner);
    CKD_REQUIRE(clean.crashes == 0, "clean run must not crash");
    if (clean.drains != 1)
      std::cerr << "clean[" << leg << "]: drains " << clean.drains
                << " retires " << clean.retireEvents << " migrated "
                << clean.migrated << " scaleOuts " << clean.scaleOuts
                << " horizon " << clean.horizon << " lat n "
                << clean.latencies.size() << " activePes " << clean.activePes
                << " finalPes " << clean.finalPes << "\n";
    CKD_REQUIRE(clean.drains == 1, "the drain must complete");
    CKD_REQUIRE(clean.retireEvents == 1, "the drained PE must retire");
    CKD_REQUIRE(clean.migrated > 0, "the drain must migrate resident workers");
    if (!bgp) {
      CKD_REQUIRE(clean.scaleOuts == 1, "the scale-out must run");
      CKD_REQUIRE(clean.finalPes == 12, "8 PEs + 4 grown");
      CKD_REQUIRE(clean.activePes == 11, "12 PEs minus the retired one");
    }

    // Phase split, skipping the first 4 rounds of each phase: warm-up and
    // the join / migration transients are real but not steady state.
    const int grow = legPar.scaleOutAfterRound;
    const std::vector<double> ramp =
        phaseLatencies(clean, 4, grow > 0 ? grow : legPar.drainAfterRound);
    const std::vector<double> grown =
        grow > 0 ? phaseLatencies(clean, grow + 4, legPar.drainAfterRound)
                 : std::vector<double>();
    const std::vector<double> drained =
        phaseLatencies(clean, legPar.drainAfterRound + 4, legPar.rounds);
    addPhaseMetrics(leg, "ramp", ramp);
    if (!grown.empty()) addPhaseMetrics(leg, "post_scale_out", grown);
    addPhaseMetrics(leg, "post_drain", drained);
    if (!grown.empty()) {
      // The elastic headline: more PEs -> fewer workers per PE -> shorter
      // per-request queueing.
      CKD_REQUIRE(percentile(grown, 0.99) < percentile(ramp, 0.99),
                  "p99 latency did not recover after the scale-out");
    }

    table.addRow(
        {std::string(leg) + "/clean",
         util::formatFixed(percentile(ramp, 0.99), 2) + " us",
         grown.empty() ? std::string("-")
                       : util::formatFixed(percentile(grown, 0.99), 2) + " us",
         util::formatFixed(percentile(drained, 0.99), 2) + " us",
         std::to_string(clean.migrated), "-", hexDigest(clean.fullDigest)});

    // Determinism: a rerun of the identical config, then the shard-count
    // sweep — every windowed partition must produce the identical full
    // digest (latencies, round completion times, horizon, worker state).
    const RunResult again = runElastic(makeMachine(), legPar);
    if (again.fullDigest != clean.fullDigest) {
      std::cerr << "rerun divergence: state " << hexDigest(clean.stateDigest)
                << " vs " << hexDigest(again.stateDigest) << ", horizon "
                << clean.horizon << " vs " << again.horizon << ", lat n "
                << clean.latencies.size() << " vs " << again.latencies.size()
                << "\n";
      for (std::size_t i = 0;
           i < std::min(clean.latencies.size(), again.latencies.size()); ++i)
        if (clean.latencies[i] != again.latencies[i] ||
            clean.latencyRound[i] != again.latencyRound[i]) {
          std::cerr << "  first lat diff at " << i << ": round "
                    << clean.latencyRound[i] << "/" << again.latencyRound[i]
                    << " lat " << clean.latencies[i] << "/"
                    << again.latencies[i] << "\n";
          break;
        }
    }
    CKD_REQUIRE(again.fullDigest == clean.fullDigest,
                "elastic lifecycle run is not deterministic across reruns");
    if (!bgp) {
      for (const int shards : {2, 4}) {
        charm::MachineConfig sharded = makeMachine();
        sharded.shards = shards;
        const RunResult s = runElastic(sharded, legPar);
        CKD_REQUIRE(s.fullDigest == clean.fullDigest,
                    "elastic lifecycle diverged across shard counts");
      }
    }

    if (!skipCrash) {
      // --- Crash mid-drain. Probe first: the same config plus a crash far
      // past quiescence pins down the exact [handoff, retire] window under
      // checkpoint traffic (see the file header).
      // An adoptive PE, not the drain victim: the rebalance gives the
      // remainder elements to the lowest-numbered active PEs, so PE 1
      // receives a handoff shard on both legs (and exists at construction,
      // which the crash-spec validation requires — grown PEs do not).
      const int victim = 1;
      const auto makeFaulted = [&](const std::string& spec) {
        charm::MachineConfig m = makeMachine();
        m.faults = fault::parseFaultSpec(spec);
        m.faultSeed = runner.faultSeed();
        // ~10 checkpoints across the run so rollback loses little progress
        // (the soak_faults sizing rule).
        m.checkpointPeriod_us = clean.horizon / 10.0;
        return m;
      };
      const RunResult probe = runElastic(
          makeFaulted("pe_crash@" + std::to_string(4.0 * clean.horizon) +
                      ";pe=" + std::to_string(victim)),
          legPar);
      if (probe.crashes != 1 || probe.restores != 1)
        std::cerr << "probe: crashes " << probe.crashes << " restores "
                  << probe.restores << " ckpts " << probe.checkpoints
                  << " horizon " << probe.horizon << " (clean "
                  << clean.horizon << ")\n";
      CKD_REQUIRE(probe.crashes == 1 && probe.restores == 1,
                  "probe crash past quiescence must still recover");
      CKD_REQUIRE(probe.stateDigest == clean.stateDigest,
                  "probe tail-replay diverged from the clean run");
      CKD_REQUIRE(probe.drainHandoffAt > 0.0 &&
                      probe.firstRetireAt > probe.drainHandoffAt,
                  "probe trace lost the drain handoff window");

      for (const bool killDrainPe : {false, true}) {
        // Mid-handoff crash of an adoptive PE, then of the draining PE
        // itself; both must abort the migration, roll back, and re-drive.
        const int pe = killDrainPe ? legPar.drainPe : victim;
        // Midpoint of the DRAIN's shipping window (not firstHandoffAt, which
        // on the IB leg is the earlier post-scale-out rebalance handoff).
        const double at = 0.5 * (probe.drainHandoffAt + probe.firstRetireAt);
        const std::string crashSpec = "pe_crash@" + std::to_string(at) +
                                      ";pe=" + std::to_string(pe);
        harness::ProfileReport report;
        const RunResult soak =
            runElastic(makeFaulted(crashSpec), legPar, &runner,
                       runner.wantsProfiles() ? &report : nullptr);
        if (runner.wantsProfiles()) {
          report.label = std::string(leg) + (killDrainPe ? "/crash_drain_pe"
                                                         : "/crash_adoptive");
          runner.addProfile(std::move(report));
        }
        CKD_REQUIRE(soak.crashes == 1, "the mid-drain crash must fire");
        CKD_REQUIRE(soak.restores == 1, "the crash must be recovered from");
        if (soak.aborted < 1)
          std::cerr << "soak: crash at " << at << " window ["
                    << probe.drainHandoffAt << ", " << probe.firstRetireAt
                    << "] soak handoff at " << soak.firstHandoffAt
                    << " crashed at " << soak.crashAt
                    << " retire at " << soak.firstRetireAt << " drains "
                    << soak.drains << " migrated " << soak.migrated
                    << " retireEvents " << soak.retireEvents << "\n";
        CKD_REQUIRE(soak.aborted >= 1,
                    "the crash landed mid-handoff yet no migration aborted");
        CKD_REQUIRE(soak.drains == 1,
                    "the drain must still complete after the rollback");
        CKD_REQUIRE(soak.stateDigest == clean.stateDigest,
                    "crash mid-drain diverged from the clean worker state");
        totalAborts += soak.aborted;

        if (!killDrainPe) {
          // The headline config (crash of an adoptive PE mid-handoff) must
          // be bit-identical across shard counts and robust across injector
          // seeds (the crash is pinned, so the seed must not matter).
          for (const int shards : bgp ? std::vector<int>{}
                                      : std::vector<int>{2, 4}) {
            charm::MachineConfig sharded = makeFaulted(crashSpec);
            sharded.shards = shards;
            const RunResult s = runElastic(sharded, legPar);
            CKD_REQUIRE(s.fullDigest == soak.fullDigest,
                        "crash mid-drain diverged across shard counts");
          }
          charm::MachineConfig reseeded = makeFaulted(crashSpec);
          reseeded.faultSeed = runner.faultSeed() + 1;
          const RunResult r = runElastic(reseeded, legPar);
          CKD_REQUIRE(r.restores == 1 && r.drains == 1 &&
                          r.stateDigest == clean.stateDigest,
                      "crash mid-drain recovery is seed-sensitive");
        }

        table.addRow({std::string(leg) + (killDrainPe ? "/crash_drain"
                                                      : "/crash_adopt"),
                      "-", "-", "-", std::to_string(soak.migrated),
                      std::to_string(soak.crashes) + " crash, " +
                          std::to_string(soak.aborted) + " abort",
                      hexDigest(soak.stateDigest)});
        util::JsonValue labels = util::JsonValue::object();
        labels.set("leg", util::JsonValue(leg));
        labels.set("victim", util::JsonValue(static_cast<std::int64_t>(pe)));
        runner.addMetric("migrations_aborted",
                         static_cast<double>(soak.aborted), "count", labels);
        runner.addMetric("restores", static_cast<double>(soak.restores),
                         "count", std::move(labels));
      }
    }

    util::JsonValue labels = util::JsonValue::object();
    labels.set("leg", util::JsonValue(leg));
    runner.addMetric("elements_migrated", static_cast<double>(clean.migrated),
                     "count", labels);
    runner.addMetric("handoff_bytes", static_cast<double>(clean.handoffBytes),
                     "bytes", labels);
    runner.addMetric("horizon_us", clean.horizon, "us", std::move(labels));
  }
  if (!skipCrash)
    CKD_REQUIRE(totalAborts >= 2, "every mid-drain crash must hit a handoff");

  table.print(std::cout);
  std::cout << "elastic soak ok: scale-out recovered p99, drains retired, "
               "mid-drain crashes rolled back\n";
  return runner.finish();
}
