// Strong/weak scaling sweep for the thread-sharded parallel engine: the
// BENCH_PR9.json generator. Runs the all-pairs eager-message storm on
// one-PE-per-node Abe machines across a grid of {PE count} x {shard count}
// and reports events/sec per cell, so a chart over the JSON shows how the
// barrier-light window protocol scales with both problem size and shards.
//
//   strong — total round trips fixed (--iters), split across pes/2 pairs:
//            bigger machines do the same virtual work with more parallelism.
//   weak   — round trips per pair fixed (--iters-per-pair): virtual work
//            grows linearly with the machine.
//
// Every cell of a row (same mode + PE count) must execute exactly the same
// number of events regardless of shard count — the always-on cross-check
// mirrors perf_engine's and exits 1 on any mismatch. Shard count 0 means the
// classic serial engine and is allowed in --shards-list as the baseline.
//
// Flags (besides the BenchRunner set — pass --json BENCH_PR9.json in CI):
//   --mode strong|weak|both   which sweeps to run (default both)
//   --pes-list N,N,...        machine sizes; one PE per node (default
//                             64,256,1024; capped at 262144 = 256k PEs)
//   --shards-list N,N,...     engine shard counts per size (default 0,1,2,4,8)
//   --iters I                 strong-mode total round trips (default 8192)
//   --iters-per-pair I        weak-mode round trips per pair (default 4)
//   --bytes B                 payload bytes, eager path (default 100)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "charm/maps.hpp"
#include "charm/proxy.hpp"
#include "harness/bench_runner.hpp"
#include "harness/machines.hpp"
#include "sim/parallel.hpp"
#include "util/args.hpp"
#include "util/require.hpp"

namespace {

using namespace ckd;

constexpr std::int64_t kMaxPes = 262144;  // 256k PEs

class SweepChare final : public charm::Chare {
 public:
  charm::ArrayProxy<SweepChare> proxy;
  charm::EntryId epPing = -1;
  int pairs = 0;
  int remaining = 0;
  std::vector<std::byte> payload;

  void start(charm::Message&) {
    proxy[thisIndex() + pairs].send(epPing,
                                    std::span<const std::byte>(payload));
  }

  void ping(charm::Message& msg) {
    if (thisIndex() >= pairs) {  // echo side
      proxy[thisIndex() - pairs].send(epPing, msg.payload());
      return;
    }
    if (--remaining > 0)
      proxy[thisIndex() + pairs].send(epPing,
                                      std::span<const std::byte>(payload));
  }
};

struct CellResult {
  std::uint64_t events = 0;
  double wall_s = 0.0;
  int threads = 1;
  double eventsPerSec() const { return wall_s > 0.0 ? events / wall_s : 0.0; }
};

CellResult runCell(int pes, int itersPerPair, std::size_t bytes, int shards,
                   int shardThreads, bool pinThreads,
                   harness::BenchRunner* recordTo) {
  const int pairs = pes / 2;
  charm::MachineConfig machine = harness::abeMachine(pes, /*pesPerNode=*/1);
  machine.shards = shards;
  machine.shardThreads = shardThreads;
  machine.pinShardThreads = pinThreads;
  if (recordTo != nullptr) recordTo->applyMetrics(machine);
  charm::Runtime rts(machine);
  auto proxy = charm::makeArray<SweepChare>(
      rts, "sweep", pes, [](std::int64_t i) { return static_cast<int>(i); },
      [](std::int64_t) { return std::make_unique<SweepChare>(); });
  const charm::EntryId epStart =
      proxy.registerEntry("start", &SweepChare::start);
  const charm::EntryId epPing = proxy.registerEntry("ping", &SweepChare::ping);
  for (std::int64_t i = 0; i < pes; ++i) {
    SweepChare& el = proxy[i].local();
    el.proxy = proxy;
    el.epPing = epPing;
    el.pairs = pairs;
    el.remaining = itersPerPair;
    el.payload.assign(bytes, std::byte{0});
  }
  const auto start = std::chrono::steady_clock::now();
  rts.seed([proxy, epStart, pairs]() {
    for (std::int64_t i = 0; i < pairs; ++i) proxy[i].send(epStart);
  });
  rts.run();
  CellResult result;
  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.events = rts.executedEvents();
  if (const sim::ParallelEngine* par = rts.parallelEngine())
    result.threads = par->threads();
  if (recordTo != nullptr) recordTo->recordShardStats(rts);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  harness::BenchRunner runner("scaling_sweep", args);
  const std::string mode = args.get("mode", "both");
  CKD_REQUIRE(mode == "strong" || mode == "weak" || mode == "both",
              "--mode must be strong, weak, or both");
  const std::vector<std::int64_t> pesList =
      args.getIntList("pes-list", {64, 256, 1024});
  const std::vector<std::int64_t> shardsList =
      args.getIntList("shards-list", {0, 1, 2, 4, 8});
  const int strongIters = static_cast<int>(args.getInt("iters", 8192));
  const int weakIters = static_cast<int>(args.getInt("iters-per-pair", 4));
  const std::size_t bytes =
      static_cast<std::size_t>(args.getInt("bytes", 100));
  CKD_REQUIRE(!pesList.empty() && !shardsList.empty(),
              "--pes-list / --shards-list must be non-empty");
  for (const std::int64_t pes : pesList)
    CKD_REQUIRE(pes >= 2 && pes % 2 == 0 && pes <= kMaxPes,
                "--pes-list entries must be even, >= 2, and <= 262144");
  for (const std::int64_t shards : shardsList)
    CKD_REQUIRE(shards >= 0, "--shards-list entries must be >= 0");
  CKD_REQUIRE(strongIters > 0 && weakIters > 0, "iteration counts must be "
              "positive");

  std::vector<const char*> modes;
  if (mode == "strong" || mode == "both") modes.push_back("strong");
  if (mode == "weak" || mode == "both") modes.push_back("weak");

  bool mismatch = false;
  for (const char* m : modes) {
    const bool strong = m[0] == 's';
    for (const std::int64_t pes : pesList) {
      const int pairs = static_cast<int>(pes) / 2;
      const int itersPerPair =
          strong ? std::max(1, strongIters / pairs) : weakIters;
      std::uint64_t rowEvents = 0;
      for (const std::int64_t shards : shardsList) {
        const CellResult cell = runCell(
            static_cast<int>(pes), itersPerPair, bytes,
            static_cast<int>(shards), runner.shardThreads(),
            runner.pinThreads(), shards > 0 ? &runner : nullptr);
        std::printf(
            "%-6s pes %7lld shards %2lld threads %2d  %12llu events  "
            "%8.3f s  %12.0f events/sec\n",
            m, static_cast<long long>(pes), static_cast<long long>(shards),
            cell.threads, static_cast<unsigned long long>(cell.events),
            cell.wall_s, cell.eventsPerSec());
        util::JsonValue labels = util::JsonValue::object();
        labels.set("mode", util::JsonValue(m));
        labels.set("pes", util::JsonValue(pes));
        labels.set("shards", util::JsonValue(shards));
        labels.set("threads", util::JsonValue(cell.threads));
        util::JsonValue labels2 = labels;  // same discriminators, two metrics
        runner.addMetric("events_per_sec", cell.eventsPerSec(), "1/s",
                         std::move(labels));
        runner.addMetric("events_executed", static_cast<double>(cell.events),
                         "events", std::move(labels2));
        if (rowEvents == 0) {
          rowEvents = cell.events;
        } else if (cell.events != rowEvents) {
          std::fprintf(stderr,
                       "FAIL: %s pes=%lld shards=%lld executed %llu events, "
                       "row baseline %llu\n",
                       m, static_cast<long long>(pes),
                       static_cast<long long>(shards),
                       static_cast<unsigned long long>(cell.events),
                       static_cast<unsigned long long>(rowEvents));
          mismatch = true;
        }
      }
    }
  }

  const int code = runner.finish();
  if (code != 0) return code;
  return mismatch ? 1 : 0;
}
