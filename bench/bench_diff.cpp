// bench_diff — CLI perf-regression gate over ckd.bench.v1 documents.
//
// Compares a candidate bench JSON (a fresh --json run) against a committed
// baseline (BENCH_PR4/7/8/9.json), classifies every metric against a
// relative tolerance band, prints the classification table, and exits
// nonzero when any metric regressed (or, with --fail-on-missing, when the
// documents disagree on which metrics exist). See
// src/harness/bench_diff.hpp for the matching/direction rules.
//
// Usage:
//   bench_diff <base.json> <candidate.json>
//       [--tol R]              default relative band (default 0.10)
//       [--metric-tol g=R,...] per-metric overrides, first glob match wins
//       [--skip g1,g2]         exclude matching metric keys
//       [--only g1,g2]         compare only matching metric keys
//       [--include-host]       also compare wall-clock units (1/s, s, x)
//       [--fail-on-missing]    one-sided metrics become fatal
//       [--verbose]            print ok/skipped rows too
//       [--json <file>]        also write the ckd.benchdiff.v1 report

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "harness/bench_diff.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/require.hpp"

namespace {

ckd::util::JsonValue loadJson(const std::string& path) {
  std::ifstream in(path);
  CKD_REQUIRE(in.good(), ("cannot open bench document: " + path).c_str());
  std::ostringstream buf;
  buf << in.rdbuf();
  return ckd::util::JsonValue::parse(buf.str());
}

std::vector<std::string> splitGlobs(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    if (comma > pos) out.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ckd;
  util::Args args(argc, argv);
  CKD_REQUIRE(args.positional().size() == 2,
              "usage: bench_diff <base.json> <candidate.json> [--tol R] "
              "[--metric-tol glob=R,...] [--skip globs] [--only globs] "
              "[--include-host] [--fail-on-missing] [--verbose] "
              "[--json out.json]");

  harness::DiffOptions opts;
  opts.tolerance = args.getDouble("tol", 0.10);
  CKD_REQUIRE(opts.tolerance >= 0.0, "--tol must be non-negative");
  opts.metricTolerance =
      harness::parseMetricTolerances(args.get("metric-tol", ""));
  opts.skip = splitGlobs(args.get("skip", ""));
  opts.only = splitGlobs(args.get("only", ""));
  opts.includeHost = args.getBool("include-host", false);
  opts.failOnMissing = args.getBool("fail-on-missing", false);
  const bool verbose = args.getBool("verbose", false);
  const std::string jsonOut = args.get("json", "");

  const util::JsonValue base = loadJson(args.positional()[0]);
  const util::JsonValue cand = loadJson(args.positional()[1]);

  const harness::DiffReport report = harness::diffBench(base, cand, opts);
  std::cout << "base:      " << args.positional()[0] << "\n"
            << "candidate: " << args.positional()[1] << "\n"
            << report.toTable(verbose);

  if (!jsonOut.empty()) {
    std::ofstream out(jsonOut);
    CKD_REQUIRE(out.good(),
                ("cannot open --json output file: " + jsonOut).c_str());
    out << report.toJson().dump(2) << "\n";
    std::cerr << "[bench_diff] wrote " << jsonOut << "\n";
  }

  if (report.failed(opts)) {
    std::cout << "bench_diff: FAIL\n";
    return 1;
  }
  std::cout << "bench_diff: PASS\n";
  return 0;
}
