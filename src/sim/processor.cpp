#include "sim/processor.hpp"

// Processor is header-only today; this translation unit pins the vtable-free
// class into the library so future out-of-line additions do not ripple
// through every includer.
