#pragma once
// ParallelEngine: thread-sharded conservative discrete-event execution.
//
// The PE space is partitioned into shards; each shard owns a private
// sim::Engine (heap, clock, trace ring, arrival inbox) over its slice.
// Execution proceeds in rounds. In the default *global* mode the
// coordinator computes one ceiling
//
//     C = min( min_over_shards(next event time) + lookahead,
//              next serial event time )
//
// and every shard concurrently executes its events with time < C. In
// *adaptive* mode each shard publishes, at the end of its window, a
// per-destination lower bound on when it can next affect that destination
// (its next pending event time plus the min-plus transitive closure of the
// per-shard-pair lookahead matrix), through a shards x shards array of
// std::atomic<Time> pair bounds. The coordinator folds in straggler ring
// entries and gives every destination its own ceiling
//
//     C_d = min( next serial event time,
//                min_over_sources( pairBound[s][d] ) )
//
// so lightly-coupled shards advance in far fewer, far wider windows. The
// closure (not the one-hop matrix) is what makes this sound: a shard can
// influence another through relay chains and can influence *itself* through
// a round trip, and D[s][d] lower-bounds every such chain (DESIGN.md §2g).
//
// Cross-shard events travel through lock-free SPSC rings (chained overflow
// segments, batched release-store publication) and land in the destination
// engine's *inbox*, never directly in its heap. Inbox entries carry the
// canonical wire identity (when, srcPe, srcSeq) and are admitted into the
// heap just in time — when every event strictly before them has executed —
// so their position in the total order is a pure virtual-time property,
// independent of the partition, the window boundaries, and whether a
// mid-window drain or the barrier reconcile delivered them. That, plus
// per-PE id/sequence minting in the layers above, is why an N-shard run is
// bit-identical to a 1-shard run. Shards drain their inbound rings
// opportunistically inside the window loop (every Config::drainStride
// events), which keeps rings shallow and moves merge work off the barrier;
// the barrier only reconciles stragglers.
//
// Serial events (atSerial / atSerialBoundary) model globally-synchronous
// work — fault injections, heartbeat ticks, checkpoint commits. They run on
// the coordinator between rounds with every shard parked and every shard
// clock pinned to the event's instant, so they may touch cross-shard state
// freely. A serial event's time always caps every ceiling, so no shard ever
// runs past a pending serial event. Adaptive mode statically refuses
// shard-context serial scheduling: a boundary event resolves to "the
// ceiling of the window that issued it", which is only partition-
// independent when there is one global ceiling. The runtime therefore
// enables adaptive mode exactly for serial-quiet configurations (no faults,
// no elastic lifecycle).
//
// Shards are the determinism-relevant partition; worker threads are an
// execution detail. `threads` defaults to min(shards, hardware cores), and
// with one thread the coordinator runs each shard's window inline — same
// results, no synchronization. Results depend on the shard count only
// through nothing at all: that is the property the determinism gate checks.

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "util/pool.hpp"
#include "util/require.hpp"

namespace ckd::sim {

class ParallelEngine {
 public:
  struct Config {
    int shards = 1;      ///< partition count (affects nothing observable)
    int threads = 0;     ///< worker threads; 0 = min(shards, hw cores)
    Time lookahead = 0;  ///< cross-shard latency floor, must be > 0
    /// Optional shards x shards per-pair lookahead floors (row-major,
    /// [src * shards + dst]; +inf diagonal; finite entries >= lookahead).
    /// Empty = uniform `lookahead` everywhere. Only consulted when
    /// `adaptive` is set; see net::shardLookaheadMatrix.
    std::vector<Time> pairLookahead;
    /// Per-destination adaptive ceilings from published pair bounds. The
    /// workload must be serial-quiet: shard-context atSerial /
    /// atSerialBoundary are refused (CKD_REQUIRE) in this mode.
    bool adaptive = false;
    /// Pin worker k to CPU (k mod hardware_concurrency). Best effort; the
    /// achieved count is reported by pinnedThreads().
    bool pinThreads = false;
    /// Events a shard executes between mid-window inbound-ring drains.
    std::uint64_t drainStride = 256;
    /// Pre-size each shard engine's slab (0 = engine default).
    std::size_t slotReserve = 0;
  };

  /// Aggregated ring counters (cross-shard + serial rings).
  struct RingStats {
    std::uint64_t pushes = 0;   ///< entries published
    std::uint64_t batches = 0;  ///< release-stores that published them
    std::uint64_t overflow = 0; ///< entries that spilled to chained segments
  };

  /// `shardOfPe[pe]` maps every PE to its owning shard in [0, shards).
  /// Callers must align the partition so that PEs of one *node* never
  /// split across shards (the fabric's injection/ejection port state and
  /// sub-lookahead intra-node latencies are then shard-local by design).
  ParallelEngine(Config cfg, std::vector<int> shardOfPe);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int shards() const { return static_cast<int>(shards_.size()); }
  int threads() const { return threadCount_; }
  Time lookahead() const { return lookahead_; }
  bool adaptive() const { return adaptive_; }
  /// Worker threads successfully pinned to a CPU (0 unless pinThreads).
  int pinnedThreads() const {
    return pinnedThreads_.load(std::memory_order_relaxed);
  }
  int shardOf(int pe) const {
    return pe < 0 ? -1 : shardOfPe_[static_cast<std::size_t>(pe)];
  }

  Engine& shardEngine(int shard) {
    return shards_[static_cast<std::size_t>(shard)].engine;
  }
  Engine& serialEngine() { return serial_; }
  const Engine& serialEngine() const { return serial_; }

  /// The shard's private buffer pool, installed as the thread-current pool
  /// for the duration of the shard's window.
  util::BufferPool& shardPool(int shard) {
    return shards_[static_cast<std::size_t>(shard)].pool;
  }

  /// Engine of the calling execution context: the shard engine while that
  /// shard's window runs on this thread, the serial engine otherwise
  /// (setup code, serial phases, post-run inspection).
  Engine& current() { return tlsShard_ < 0 ? serial_ : shardEngine(tlsShard_); }
  /// Shard executing on this thread, or -1 in serial/coordinator context.
  int currentShard() const { return tlsShard_; }

  /// Schedule onto `pe`'s home shard from a context that already owns it —
  /// the shard's own thread, or the serial phase (which stages the event
  /// and inserts it before the next round). Intra-shard work (same-PE,
  /// same-node) must use this: its latency may be below the lookahead.
  template <class F>
  void atLocal(int pe, Time when, F&& f) {
    const int dst = shardOf(pe);
    if (tlsShard_ == dst) {
      shardEngine(dst).at(when, std::forward<F>(f));
      return;
    }
    CKD_REQUIRE(tlsShard_ < 0,
                "atLocal from a foreign shard: cross-shard work must be a "
                "wire transfer (atRemote)");
    stageSerial(dst, when, Engine::Action(std::forward<F>(f)));
  }

  /// Schedule a cross-node wire arrival onto `dstPe`'s shard. `wireSrcPe`
  /// is the sending PE (the canonical sort key; its shard must be the
  /// calling context). The arrival must honor the lookahead: when >= the
  /// destination's current window ceiling, which the drains assert.
  /// Same-shard cross-node arrivals post straight into the shard's own
  /// inbox; cross-shard arrivals stage into a per-destination batch that is
  /// published to the SPSC ring with one release-store. Both paths mint the
  /// same per-PE push sequence and meet in the destination inbox, whose
  /// just-in-time admission keeps the merge canonical across shard counts.
  void atRemote(int dstPe, int wireSrcPe, Time when, Engine::Action action) {
    const int dst = shardOf(dstPe);
    if (tlsShard_ < 0) {  // serial context: coordinator-owned staging
      stageSerial(dst, when, std::move(action));
      return;
    }
    CKD_REQUIRE(tlsShard_ == shardOf(wireSrcPe),
                "wire source PE does not belong to the calling shard");
    auto& seq = pushSeq_[static_cast<std::size_t>(wireSrcPe) + 1];
    ++seq;
    Shard& self = shards_[static_cast<std::size_t>(tlsShard_)];
    if (dst == tlsShard_) {
      self.engine.postArrival(when, wireSrcPe, seq, std::move(action));
      return;
    }
    auto& stage = self.outStage[static_cast<std::size_t>(dst)];
    stage.push_back(RingEntry{when, wireSrcPe, seq, false, std::move(action)});
    if (stage.size() >= kPublishBatch) flushStage(tlsShard_, dst);
  }

  /// Schedule a serial event at absolute time `when`. From shard context,
  /// `when` must be at or beyond the current window ceiling (asserted at
  /// the drain); use atSerialBoundary for "as soon as globally safe".
  /// Shard-context use requires global mode (see header comment).
  template <class F>
  void atSerial(Time when, F&& f) {
    if (tlsShard_ < 0) {
      serial_.at(when, std::forward<F>(f));
      return;
    }
    CKD_REQUIRE(!adaptive_,
                "shard-context serial events require global-window mode");
    serialRings_[static_cast<std::size_t>(tlsShard_)].push(RingEntry{
        when, tlsSerialSrcPe_, nextSerialPushSeq(), false,
        Engine::Action(std::forward<F>(f))});
  }

  /// Schedule a serial event at the earliest globally-safe instant: the
  /// ceiling of the window that issued it (a partition-independent time).
  /// From serial context it runs later in the same serial phase.
  /// Shard-context use requires global mode (see header comment).
  template <class F>
  void atSerialBoundary(F&& f) {
    if (tlsShard_ < 0) {
      serial_.at(serial_.now(), std::forward<F>(f));
      return;
    }
    CKD_REQUIRE(!adaptive_,
                "shard-context serial events require global-window mode");
    serialRings_[static_cast<std::size_t>(tlsShard_)].push(
        RingEntry{0.0, tlsSerialSrcPe_, nextSerialPushSeq(), true,
                  Engine::Action(std::forward<F>(f))});
  }

  /// Set the PE used as the canonical sort key for serial events pushed
  /// from the current shard context (the scheduler sets it to the pumping
  /// PE). -1 sorts before every real PE.
  void setSerialSrcPe(int pe) { tlsSerialSrcPe_ = pe; }

  /// Append newly added PEs to the partition (serial context only, with
  /// every shard parked). `shardOfNewPes[i]` becomes the shard of PE
  /// `oldCount + i`. The shard COUNT never changes — growth only extends
  /// the PE->shard map and the per-PE canonical-order/minting tables, so
  /// a grown run stays bit-identical across shard counts. In adaptive mode
  /// the pair matrix collapses to the uniform floor (node ranges may have
  /// changed; the uniform closure is conservative for any topology).
  void growPes(const std::vector<int>& shardOfNewPes);

  /// Run the round loop to global quiescence (all heaps and rings empty).
  void run();

  /// Abort the round loop at the next boundary (pending events remain).
  void stop() { stopRequested_.store(true, std::memory_order_relaxed); }

  // ---- aggregates over every engine (shards + serial) ----

  std::uint64_t executedEvents() const;
  std::uint64_t shardExecutedEvents(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].engine.executedEvents();
  }
  /// Max clock over every engine: the completion horizon of the run.
  Time horizon() const;
  std::uint64_t windows() const { return windows_; }

  /// Ring counters summed over every cross-shard and serial ring. Read
  /// with shards parked (between runs).
  RingStats ringStats() const;

  /// Every retained trace event, merged across the serial + shard rings
  /// into the canonical order: stable-sorted by (time, pe) with the serial
  /// stream first. Events tied on (time, pe) all originate from one stream
  /// (a PE's events are recorded only by its own shard), so the merged
  /// order is partition-independent.
  std::vector<TraceEvent> mergedTrace() const;

  /// Attach (or detach) a flight recorder sampled by the coordinator at
  /// round boundaries — after each serial phase and each parallel window,
  /// with every shard parked, so probe reads over shard state are
  /// race-free. Snapshot timestamps follow this run's window boundaries;
  /// the samples themselves are read-only, so metrics-on and metrics-off
  /// runs stay bit-identical.
  void attachSampler(obs::FlightRecorder* recorder) { sampler_ = recorder; }

  /// Shared per-PE chain-id counter table for TraceRecorder::mintIdFor
  /// (slot 0 = the serial context). Wired into every shard recorder by the
  /// runtime so minted ids are a function of per-PE order alone.
  std::vector<std::uint64_t>& mintCounters() { return mintCounters_; }

 private:
  /// Cross-shard batch size: one release-store publishes this many entries.
  static constexpr std::size_t kPublishBatch = 32;

  struct RingEntry {
    Time when = 0.0;
    std::int32_t srcPe = -1;
    std::uint64_t srcSeq = 0;
    bool boundary = false;  ///< serial ring only: run at the window ceiling
    Engine::Action action;
  };

  /// Single-producer single-consumer ring with lock-free chained overflow
  /// segments. The producer is the source shard's current worker thread;
  /// the consumer is the destination shard's worker (mid-window drains) or
  /// the coordinator (barrier reconcile) — phases are ordered by the round
  /// barriers, so single-consumer discipline holds. The hot path never
  /// takes a lock: the main ring publishes with a release-store of head_,
  /// and an overflowing producer appends to a producer-owned segment whose
  /// fill count is release-published (the consumer reads the published
  /// prefix only). Stats are producer-written; read them with the producer
  /// parked.
  class SpscRing {
   public:
    struct Stats {
      std::uint64_t pushes = 0;
      std::uint64_t batches = 0;
      std::uint64_t overflow = 0;
    };

    SpscRing() = default;
    ~SpscRing();
    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    void push(RingEntry&& e);
    /// Publish `n` entries with one release-store per ring/segment chunk.
    void pushBatch(RingEntry* first, std::size_t n);
    void drainInto(std::vector<RingEntry>& out);
    /// Free fully-consumed overflow segments. Both sides must be parked
    /// (coordinator-only, at quiescence).
    void reclaim();
    const Stats& stats() const { return stats_; }

   private:
    static constexpr std::size_t kCapacity = 1024;    // power of two
    static constexpr std::size_t kSegmentCap = 1024;  // entries per segment

    /// Overflow segment: producer fills buf[0..count), publishing the fill
    /// with a release-store; the buffer never reallocates, so the consumer
    /// may read the published prefix while the producer appends behind it.
    struct Segment {
      std::vector<RingEntry> buf = std::vector<RingEntry>(kSegmentCap);
      std::atomic<std::size_t> count{0};   ///< release-published fill
      std::size_t consumed = 0;            ///< consumer-side cursor
      std::atomic<Segment*> next{nullptr};
    };

    void spill(RingEntry&& e);  ///< append to the overflow chain (no store)
    void publishSpill();        ///< release the pending segment fill

    std::vector<RingEntry> buf_ = std::vector<RingEntry>(kCapacity);
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
    std::atomic<Segment*> segHead_{nullptr};
    Segment* segTail_ = nullptr;      ///< producer-owned
    std::size_t segFill_ = 0;         ///< producer-side unpublished fill
    Stats stats_;
  };

  struct Shard {
    Engine engine;
    util::BufferPool pool;          ///< shard-local recycling (NUMA locality)
    std::vector<RingEntry> staged;  ///< serial-context pushes (coordinator)
    /// Per-destination producer-side batches (kPublishBatch entries per
    /// release-store). Only the shard's current worker thread touches them.
    std::vector<std::vector<RingEntry>> outStage;
    std::vector<RingEntry> drainScratch;  ///< mid-window drain buffer
  };

  std::size_t ringIndex(int src, int dst) const {
    return static_cast<std::size_t>(src) * shards_.size() +
           static_cast<std::size_t>(dst);
  }
  std::size_t pairIndex(int src, int dst) const { return ringIndex(src, dst); }
  void stageSerial(int dstShard, Time when, Engine::Action action);
  std::uint64_t nextSerialPushSeq() { return ++pushSeq_[0]; }

  void flushStage(int src, int dst);
  void flushOutbound(int shard);
  /// Pull every published inbound-ring entry into the shard's inbox
  /// (mid-window pre-staging; conservatism guarantees nothing below the
  /// shard's current ceiling can appear).
  void drainInbound(int shard);
  /// Barrier reconcile: move straggler ring entries and serial-phase
  /// staging into the inboxes, fold their minima into the pair bounds, and
  /// run shard-issued serial events' drain.
  void reconcile();
  /// Recompute every published bound directly from the engines (after
  /// construction, serial phases, or growth).
  void recomputeBounds();
  /// Fill ceilings_ for the next round; returns the max ceiling.
  Time computeCeilings(Time serialNext);
  /// End-of-window publication: the shard's pair bounds toward every
  /// destination (adaptive mode).
  void publishBounds(int shard);
  void buildClosure(const std::vector<Time>& pairLookahead);

  Time minShardNext() const;
  void runShardWindow(int shard, Time ceiling);
  /// Coordinator-side sampler check after a round/serial phase (shards
  /// parked); `t` is the boundary's virtual time.
  void maybeSample(Time t);
  void executeRound();
  void workerLoop(int workerIndex);
  void pinThread(int workerIndex);

  Time lookahead_ = 0.0;
  bool adaptive_ = false;
  std::uint64_t drainStride_ = 256;
  std::vector<int> shardOfPe_;
  std::vector<Shard> shards_;
  Engine serial_;
  std::vector<SpscRing> rings_;        ///< shard -> shard, [src*N + dst]
  std::vector<SpscRing> serialRings_;  ///< shard -> serial queue
  /// Per-source push counters for the canonical sort key; slot 0 is the
  /// serial context, slot pe+1 is touched only by shard(pe)'s thread.
  std::vector<std::uint64_t> pushSeq_;
  std::vector<std::uint64_t> mintCounters_;
  /// Min-plus transitive closure of the pair lookahead matrix: D[s*N+d]
  /// lower-bounds the virtual-time cost of *any* influence chain from
  /// shard s to shard d (including round trips when s == d).
  std::vector<Time> closure_;
  /// Published per-pair bounds: bounds_[s*N+d] lower-bounds the time of any
  /// future arrival into d caused by s's pending work. Written by shard s
  /// at the end of its window (release); folded/consumed by the
  /// coordinator after the round barrier.
  std::vector<std::atomic<Time>> bounds_;
  bool boundsValid_ = false;  ///< bounds_ reflect the last parallel round
  std::vector<Time> ceilings_;  ///< per-destination ceiling of this round
  Time windowCeiling_ = 0.0;  ///< global-mode ceiling of the last round
  std::uint64_t windows_ = 0;
  std::atomic<bool> stopRequested_{false};
  obs::FlightRecorder* sampler_ = nullptr;

  // Worker pool (only when threads() > 1). Spin-then-yield barriers: the
  // generation counter releases a round, doneCount_ reports completion.
  int threadCount_ = 1;
  bool pinThreads_ = false;
  std::atomic<int> pinnedThreads_{0};
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> startGen_{0};
  std::atomic<int> doneCount_{0};
  std::atomic<bool> quit_{false};

  std::vector<RingEntry> drainScratch_;  ///< coordinator-side scratch
  std::vector<Time> arrivalMin_;         ///< reconcile: min arrival per shard

  static thread_local int tlsShard_;
  static thread_local int tlsSerialSrcPe_;
};

}  // namespace ckd::sim
