#pragma once
// ParallelEngine: thread-sharded conservative discrete-event execution.
//
// The PE space is partitioned into shards; each shard owns a private
// sim::Engine (heap, clock, trace ring) over its slice. Execution proceeds
// in windows: the coordinator computes a global ceiling
//
//     C = min( min_over_shards(next event time) + lookahead,
//              next serial event time )
//
// and every shard concurrently executes its events with time < C. The
// lookahead is the cross-shard latency floor (the minimum wire alpha of the
// machine's transfer classes): any event one shard schedules on another is
// a network arrival at least `lookahead` after its send instant, so it can
// never land inside the window that produced it. Cross-shard events travel
// through lock-free SPSC rings and are drained into the destination heaps
// at the window boundary, in the canonical order (when, srcPe, srcSeq) —
// a total order that depends only on per-PE execution histories, never on
// the partition. That, plus per-PE id/sequence minting in the layers above,
// is why an N-shard run is bit-identical to a 1-shard run (DESIGN.md §2g).
//
// Serial events (atSerial / atSerialBoundary) model globally-synchronous
// work — fault injections, heartbeat ticks, checkpoint commits. They run on
// the coordinator between windows with every shard parked and every shard
// clock pinned to the event's instant, so they may touch cross-shard state
// freely. A serial event's time always caps the window ceiling, so no shard
// ever runs past a pending serial event.
//
// Shards are the determinism-relevant partition; worker threads are an
// execution detail. `threads` defaults to min(shards, hardware cores), and
// with one thread the coordinator runs each shard's window inline — same
// results, no synchronization. Results depend on the shard count only
// through nothing at all: that is the property the determinism gate checks.

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "util/require.hpp"

namespace ckd::sim {

class ParallelEngine {
 public:
  struct Config {
    int shards = 1;      ///< partition count (affects nothing observable)
    int threads = 0;     ///< worker threads; 0 = min(shards, hw cores)
    Time lookahead = 0;  ///< cross-shard latency floor, must be > 0
  };

  /// `shardOfPe[pe]` maps every PE to its owning shard in [0, shards).
  /// Callers must align the partition so that PEs of one *node* never
  /// split across shards (the fabric's injection/ejection port state and
  /// sub-lookahead intra-node latencies are then shard-local by design).
  ParallelEngine(Config cfg, std::vector<int> shardOfPe);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int shards() const { return static_cast<int>(shards_.size()); }
  int threads() const { return threadCount_; }
  Time lookahead() const { return lookahead_; }
  int shardOf(int pe) const {
    return pe < 0 ? -1 : shardOfPe_[static_cast<std::size_t>(pe)];
  }

  Engine& shardEngine(int shard) { return shards_[static_cast<std::size_t>(shard)].engine; }
  Engine& serialEngine() { return serial_; }
  const Engine& serialEngine() const { return serial_; }

  /// Engine of the calling execution context: the shard engine while that
  /// shard's window runs on this thread, the serial engine otherwise
  /// (setup code, serial phases, post-run inspection).
  Engine& current() { return tlsShard_ < 0 ? serial_ : shardEngine(tlsShard_); }
  /// Shard executing on this thread, or -1 in serial/coordinator context.
  int currentShard() const { return tlsShard_; }

  /// Schedule onto `pe`'s home shard from a context that already owns it —
  /// the shard's own thread, or the serial phase (which stages the event
  /// and inserts it before the next window). Intra-shard work (same-PE,
  /// same-node) must use this: its latency may be below the lookahead.
  template <class F>
  void atLocal(int pe, Time when, F&& f) {
    const int dst = shardOf(pe);
    if (tlsShard_ == dst) {
      shardEngine(dst).at(when, std::forward<F>(f));
      return;
    }
    CKD_REQUIRE(tlsShard_ < 0,
                "atLocal from a foreign shard: cross-shard work must be a "
                "wire transfer (atRemote)");
    stageSerial(dst, when, Engine::Action(std::forward<F>(f)));
  }

  /// Schedule a cross-node wire arrival onto `dstPe`'s shard. `wireSrcPe`
  /// is the sending PE (the canonical sort key; its shard must be the
  /// calling context). The arrival must honor the lookahead: when >= the
  /// current window ceiling, which the drain asserts. Same-shard cross-node
  /// arrivals take this path too — uniform ring ordering is what keeps the
  /// merge canonical across shard counts.
  void atRemote(int dstPe, int wireSrcPe, Time when, Engine::Action action) {
    const int dst = shardOf(dstPe);
    if (tlsShard_ < 0) {  // serial context: coordinator-owned staging
      stageSerial(dst, when, std::move(action));
      return;
    }
    CKD_REQUIRE(tlsShard_ == shardOf(wireSrcPe),
                "wire source PE does not belong to the calling shard");
    auto& seq = pushSeq_[static_cast<std::size_t>(wireSrcPe) + 1];
    rings_[ringIndex(tlsShard_, dst)].push(
        RingEntry{when, wireSrcPe, ++seq, false, std::move(action)});
  }

  /// Schedule a serial event at absolute time `when`. From shard context,
  /// `when` must be at or beyond the current window ceiling (asserted at
  /// the drain); use atSerialBoundary for "as soon as globally safe".
  template <class F>
  void atSerial(Time when, F&& f) {
    if (tlsShard_ < 0) {
      serial_.at(when, std::forward<F>(f));
      return;
    }
    serialRings_[static_cast<std::size_t>(tlsShard_)].push(RingEntry{
        when, tlsSerialSrcPe_, nextSerialPushSeq(), false,
        Engine::Action(std::forward<F>(f))});
  }

  /// Schedule a serial event at the earliest globally-safe instant: the
  /// ceiling of the window that issued it (a partition-independent time).
  /// From serial context it runs later in the same serial phase.
  template <class F>
  void atSerialBoundary(F&& f) {
    if (tlsShard_ < 0) {
      serial_.at(serial_.now(), std::forward<F>(f));
      return;
    }
    serialRings_[static_cast<std::size_t>(tlsShard_)].push(
        RingEntry{0.0, tlsSerialSrcPe_, nextSerialPushSeq(), true,
                  Engine::Action(std::forward<F>(f))});
  }

  /// Set the PE used as the canonical sort key for serial events pushed
  /// from the current shard context (the scheduler sets it to the pumping
  /// PE). -1 sorts before every real PE.
  void setSerialSrcPe(int pe) { tlsSerialSrcPe_ = pe; }

  /// Append newly added PEs to the partition (serial context only, with
  /// every shard parked). `shardOfNewPes[i]` becomes the shard of PE
  /// `oldCount + i`. The shard COUNT never changes — growth only extends
  /// the PE->shard map and the per-PE canonical-order/minting tables, so
  /// a grown run stays bit-identical across shard counts.
  void growPes(const std::vector<int>& shardOfNewPes);

  /// Run the window loop to global quiescence (all heaps and rings empty).
  void run();

  /// Abort the window loop at the next boundary (pending events remain).
  void stop() { stopRequested_.store(true, std::memory_order_relaxed); }

  // ---- aggregates over every engine (shards + serial) ----

  std::uint64_t executedEvents() const;
  std::uint64_t shardExecutedEvents(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].engine.executedEvents();
  }
  /// Max clock over every engine: the completion horizon of the run.
  Time horizon() const;
  std::uint64_t windows() const { return windows_; }

  /// Every retained trace event, merged across the serial + shard rings
  /// into the canonical order: stable-sorted by (time, pe) with the serial
  /// stream first. Events tied on (time, pe) all originate from one stream
  /// (a PE's events are recorded only by its own shard), so the merged
  /// order is partition-independent.
  std::vector<TraceEvent> mergedTrace() const;

  /// Shared per-PE chain-id counter table for TraceRecorder::mintIdFor
  /// (slot 0 = the serial context). Wired into every shard recorder by the
  /// runtime so minted ids are a function of per-PE order alone.
  std::vector<std::uint64_t>& mintCounters() { return mintCounters_; }

 private:
  struct RingEntry {
    Time when = 0.0;
    std::int32_t srcPe = -1;
    std::uint64_t srcSeq = 0;
    bool boundary = false;  ///< serial ring only: run at the window ceiling
    Engine::Action action;
  };

  /// Single-producer single-consumer ring with a mutex-guarded overflow
  /// list (rare; drained entries are canonically re-sorted anyway, so
  /// overflow order does not matter). Producers push during a window; the
  /// coordinator drains at the boundary while producers are parked.
  class SpscRing {
   public:
    void push(RingEntry&& e);
    void drainInto(std::vector<RingEntry>& out);

   private:
    static constexpr std::size_t kCapacity = 512;  // power of two
    std::vector<RingEntry> buf_ = std::vector<RingEntry>(kCapacity);
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
    std::mutex overflowMu_;
    std::vector<RingEntry> overflow_;
  };

  struct Shard {
    Engine engine;
    std::vector<RingEntry> staged;  ///< serial-context pushes (coordinator)
  };

  std::size_t ringIndex(int src, int dst) const {
    return static_cast<std::size_t>(src) * shards_.size() +
           static_cast<std::size_t>(dst);
  }
  void stageSerial(int dstShard, Time when, Engine::Action action);
  std::uint64_t nextSerialPushSeq() { return ++pushSeq_[0]; }

  void drainBoundary();
  Time minShardNext() const;
  void runShardWindow(int shard, Time ceiling);
  void executeWindow(Time ceiling);
  void workerLoop(int workerIndex);

  Time lookahead_ = 0.0;
  std::vector<int> shardOfPe_;
  std::vector<Shard> shards_;
  Engine serial_;
  std::vector<SpscRing> rings_;        ///< shard -> shard, [src*N + dst]
  std::vector<SpscRing> serialRings_;  ///< shard -> serial queue
  /// Per-source push counters for the canonical sort key; slot 0 is the
  /// serial context, slot pe+1 is touched only by shard(pe)'s thread.
  std::vector<std::uint64_t> pushSeq_;
  std::vector<std::uint64_t> mintCounters_;
  Time windowCeiling_ = 0.0;  ///< ceiling of the last executed window
  std::uint64_t windows_ = 0;
  std::atomic<bool> stopRequested_{false};

  // Worker pool (only when threads() > 1). Spin-then-yield barriers: the
  // generation counter releases a window, doneCount_ reports completion.
  int threadCount_ = 1;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> startGen_{0};
  std::atomic<int> doneCount_{0};
  std::atomic<bool> quit_{false};
  Time publishedCeiling_ = 0.0;  ///< read by workers after acquiring the gen

  std::vector<RingEntry> drainScratch_;

  static thread_local int tlsShard_;
  static thread_local int tlsSerialSrcPe_;
};

}  // namespace ckd::sim
