#pragma once
// Virtual time. The whole reproduction reports times in microseconds, the
// unit used by the paper's tables, so Time is "microseconds as double".
// Doubles keep sub-nanosecond resolution out past simulated hours, which is
// far more than any experiment here runs.

namespace ckd::sim {

using Time = double;  // microseconds

constexpr Time kTimeZero = 0.0;

constexpr Time microseconds(double us) { return us; }
constexpr Time milliseconds(double ms) { return ms * 1e3; }
constexpr Time seconds(double s) { return s * 1e6; }
constexpr Time nanoseconds(double ns) { return ns * 1e-3; }

constexpr double toMicroseconds(Time t) { return t; }
constexpr double toMilliseconds(Time t) { return t * 1e-3; }
constexpr double toSeconds(Time t) { return t * 1e-6; }

}  // namespace ckd::sim
