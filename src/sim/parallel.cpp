#include "sim/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/flight_recorder.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace ckd::sim {

thread_local int ParallelEngine::tlsShard_ = -1;
thread_local int ParallelEngine::tlsSerialSrcPe_ = -1;

namespace {

constexpr int kSpinsBeforeYield = 1024;
constexpr Time kInf = std::numeric_limits<Time>::infinity();

std::size_t checkedShardCount(const ParallelEngine::Config& cfg) {
  CKD_REQUIRE(cfg.shards >= 1, "shard count must be positive");
  CKD_REQUIRE(cfg.lookahead > 0.0, "conservative lookahead must be positive");
  return static_cast<std::size_t>(cfg.shards);
}

}  // namespace

ParallelEngine::ParallelEngine(Config cfg, std::vector<int> shardOfPe)
    : lookahead_(cfg.lookahead),
      adaptive_(cfg.adaptive),
      drainStride_(cfg.drainStride == 0 ? 1 : cfg.drainStride),
      shardOfPe_(std::move(shardOfPe)),
      shards_(checkedShardCount(cfg)),
      rings_(shards_.size() * shards_.size()),
      serialRings_(shards_.size()),
      pushSeq_(shardOfPe_.size() + 1, 0),
      mintCounters_(shardOfPe_.size() + 1, 0),
      bounds_(shards_.size() * shards_.size()),
      ceilings_(shards_.size(), 0.0),
      arrivalMin_(shards_.size(), kInf) {
  for (const int s : shardOfPe_)
    CKD_REQUIRE(s >= 0 && s < cfg.shards, "PE mapped to an out-of-range shard");
  for (auto& sh : shards_) {
    sh.outStage.resize(shards_.size());
    if (cfg.slotReserve != 0) sh.engine.reserveSlots(cfg.slotReserve);
  }
  if (adaptive_) buildClosure(cfg.pairLookahead);

  int want = cfg.threads > 0
                 ? cfg.threads
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (want < 1) want = 1;
  threadCount_ = std::min(want, static_cast<int>(shards_.size()));
  pinThreads_ = cfg.pinThreads;
  // The constructing thread is the coordinator (worker 0); pin it too so
  // the round barrier partners never migrate away from each other.
  if (pinThreads_) pinThread(0);
  workers_.reserve(static_cast<std::size_t>(threadCount_ - 1));
  for (int k = 1; k < threadCount_; ++k)
    workers_.emplace_back([this, k] { workerLoop(k); });
}

ParallelEngine::~ParallelEngine() {
  quit_.store(true, std::memory_order_release);
  startGen_.fetch_add(1, std::memory_order_release);
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

void ParallelEngine::buildClosure(const std::vector<Time>& pairLookahead) {
  const std::size_t n = shards_.size();
  closure_.assign(n * n, kInf);
  if (pairLookahead.empty()) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if (i != j) closure_[i * n + j] = lookahead_;
  } else {
    CKD_REQUIRE(pairLookahead.size() == n * n,
                "pair lookahead matrix must be shards x shards");
    for (std::size_t i = 0; i < n * n; ++i) {
      CKD_REQUIRE(pairLookahead[i] > 0.0,
                  "pair lookahead entries must be positive");
      closure_[i] = pairLookahead[i];
    }
  }
  // Min-plus transitive closure over walks of length >= 1 (Floyd-Warshall
  // with a +inf diagonal seed): D[i][j] lower-bounds every relay chain
  // i -> ... -> j, and D[i][i] becomes the cheapest round trip through the
  // other shards — the bound that makes per-destination ceilings safe
  // against a shard's own reflected influence.
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      const Time ik = closure_[i * n + k];
      if (ik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const Time via = ik + closure_[k * n + j];
        if (via < closure_[i * n + j]) closure_[i * n + j] = via;
      }
    }
}

void ParallelEngine::pinThread(int workerIndex) {
#ifdef __linux__
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(workerIndex) % hw, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0)
    pinnedThreads_.fetch_add(1, std::memory_order_relaxed);
#else
  (void)workerIndex;
#endif
}

// ---- SpscRing ----

ParallelEngine::SpscRing::~SpscRing() {
  Segment* seg = segHead_.load(std::memory_order_relaxed);
  while (seg != nullptr) {
    Segment* next = seg->next.load(std::memory_order_relaxed);
    delete seg;
    seg = next;
  }
}

void ParallelEngine::SpscRing::spill(RingEntry&& e) {
  if (segTail_ == nullptr) {
    segTail_ = new Segment;
    segFill_ = 0;
    segHead_.store(segTail_, std::memory_order_release);
  } else if (segFill_ == kSegmentCap) {
    publishSpill();  // the full fill must be visible before the link is
    Segment* fresh = new Segment;
    segTail_->next.store(fresh, std::memory_order_release);
    segTail_ = fresh;
    segFill_ = 0;
  }
  segTail_->buf[segFill_++] = std::move(e);
  ++stats_.overflow;
}

void ParallelEngine::SpscRing::publishSpill() {
  if (segTail_ != nullptr)
    segTail_->count.store(segFill_, std::memory_order_release);
}

void ParallelEngine::SpscRing::push(RingEntry&& e) {
  ++stats_.pushes;
  ++stats_.batches;
  const std::size_t h = head_.load(std::memory_order_relaxed);
  if (h - tail_.load(std::memory_order_acquire) < kCapacity) {
    buf_[h & (kCapacity - 1)] = std::move(e);
    head_.store(h + 1, std::memory_order_release);
    return;
  }
  spill(std::move(e));
  publishSpill();
}

void ParallelEngine::SpscRing::pushBatch(RingEntry* first, std::size_t n) {
  if (n == 0) return;
  stats_.pushes += n;
  ++stats_.batches;
  const std::size_t h = head_.load(std::memory_order_relaxed);
  const std::size_t t = tail_.load(std::memory_order_acquire);
  const std::size_t fit = std::min(n, kCapacity - (h - t));
  for (std::size_t i = 0; i < fit; ++i)
    buf_[(h + i) & (kCapacity - 1)] = std::move(first[i]);
  if (fit != 0) head_.store(h + fit, std::memory_order_release);
  if (fit == n) return;
  for (std::size_t i = fit; i < n; ++i) spill(std::move(first[i]));
  publishSpill();
}

void ParallelEngine::SpscRing::drainInto(std::vector<RingEntry>& out) {
  std::size_t t = tail_.load(std::memory_order_relaxed);
  const std::size_t h = head_.load(std::memory_order_acquire);
  for (; t != h; ++t) out.push_back(std::move(buf_[t & (kCapacity - 1)]));
  tail_.store(t, std::memory_order_release);

  Segment* seg = segHead_.load(std::memory_order_acquire);
  while (seg != nullptr) {
    std::size_t published = seg->count.load(std::memory_order_acquire);
    Segment* next = seg->next.load(std::memory_order_acquire);
    // A visible link proves the producer finished this segment: the link
    // store is release-ordered after the full-capacity count store.
    if (next != nullptr) published = kSegmentCap;
    for (; seg->consumed < published; ++seg->consumed)
      out.push_back(std::move(seg->buf[seg->consumed]));
    if (next == nullptr) break;
    segHead_.store(next, std::memory_order_release);
    delete seg;
    seg = next;
  }
}

void ParallelEngine::SpscRing::reclaim() {
  Segment* seg = segHead_.load(std::memory_order_relaxed);
  while (seg != nullptr) {
    CKD_REQUIRE(seg->consumed == seg->count.load(std::memory_order_relaxed),
                "reclaiming a ring segment with unconsumed entries");
    Segment* next = seg->next.load(std::memory_order_relaxed);
    delete seg;
    seg = next;
  }
  segHead_.store(nullptr, std::memory_order_relaxed);
  segTail_ = nullptr;
  segFill_ = 0;
}

// ---- partition growth ----

void ParallelEngine::growPes(const std::vector<int>& shardOfNewPes) {
  CKD_REQUIRE(tlsShard_ < 0,
              "PE growth must run from a serial phase, not a shard window");
  for (const int s : shardOfNewPes)
    CKD_REQUIRE(s >= 0 && s < shards(),
                "new PE mapped to an out-of-range shard");
  shardOfPe_.insert(shardOfPe_.end(), shardOfNewPes.begin(),
                    shardOfNewPes.end());
  // Shards are parked during serial phases, so extending the per-PE tables
  // is race-free; recorders hold the vector's address, which is stable.
  pushSeq_.resize(shardOfPe_.size() + 1, 0);
  mintCounters_.resize(shardOfPe_.size() + 1, 0);
  if (adaptive_) {
    // New PEs may occupy new nodes, so per-pair floors derived from the old
    // node ranges are stale. Collapse to the uniform-floor closure — the
    // floor under-estimates every pair, so this only shrinks windows.
    const std::size_t n = shards_.size();
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        closure_[i * n + j] = i == j ? (n >= 2 ? 2 * lookahead_ : kInf)
                                     : lookahead_;
    boundsValid_ = false;
  }
}

void ParallelEngine::stageSerial(int dstShard, Time when,
                                 Engine::Action action) {
  shards_[static_cast<std::size_t>(dstShard)].staged.push_back(
      RingEntry{when, -1, nextSerialPushSeq(), false, std::move(action)});
}

// ---- cross-shard traffic ----

void ParallelEngine::flushStage(int src, int dst) {
  auto& stage = shards_[static_cast<std::size_t>(src)]
                    .outStage[static_cast<std::size_t>(dst)];
  if (stage.empty()) return;
  rings_[ringIndex(src, dst)].pushBatch(stage.data(), stage.size());
  stage.clear();
}

void ParallelEngine::flushOutbound(int shard) {
  const int n = shards();
  for (int dst = 0; dst < n; ++dst)
    if (dst != shard) flushStage(shard, dst);
}

void ParallelEngine::drainInbound(int shard) {
  Shard& sh = shards_[static_cast<std::size_t>(shard)];
  auto& scratch = sh.drainScratch;
  scratch.clear();
  const int n = shards();
  for (int s = 0; s < n; ++s)
    if (s != shard) rings_[ringIndex(s, shard)].drainInto(scratch);
  const Time floor = ceilings_[static_cast<std::size_t>(shard)];
  for (auto& e : scratch) {
    CKD_REQUIRE(e.when >= floor,
                "cross-shard event violates the conservative lookahead");
    sh.engine.postArrival(e.when, e.srcPe, e.srcSeq, std::move(e.action));
  }
}

namespace {
/// The canonical cross-shard order: (when, srcPe, srcSeq). srcSeq is unique
/// per source, so this is a total order — and every component is a function
/// of per-PE execution histories, never of the shard partition.
bool canonicalBefore(Time aWhen, std::int32_t aPe, std::uint64_t aSeq,
                     Time bWhen, std::int32_t bPe, std::uint64_t bSeq) {
  if (aWhen != bWhen) return aWhen < bWhen;
  if (aPe != bPe) return aPe < bPe;
  return aSeq < bSeq;
}
}  // namespace

void ParallelEngine::reconcile() {
  const int n = shards();
  std::fill(arrivalMin_.begin(), arrivalMin_.end(), kInf);
  // Straggler cross-shard arrivals (published after the destination's final
  // mid-window drain) plus the coordinator's serial-phase staging, moved
  // into the destination inboxes. No sort: the inbox heap canonicalizes on
  // (when, srcPe, srcSeq) and admission is just-in-time.
  for (int d = 0; d < n; ++d) {
    auto& scratch = drainScratch_;
    scratch.clear();
    for (int s = 0; s < n; ++s)
      if (s != d) rings_[ringIndex(s, d)].drainInto(scratch);
    auto& staged = shards_[static_cast<std::size_t>(d)].staged;
    for (auto& e : staged) scratch.push_back(std::move(e));
    staged.clear();
    if (scratch.empty()) continue;
    Engine& eng = shards_[static_cast<std::size_t>(d)].engine;
    const Time floor = ceilings_[static_cast<std::size_t>(d)];
    Time& minArrival = arrivalMin_[static_cast<std::size_t>(d)];
    for (auto& e : scratch) {
      CKD_REQUIRE(e.when >= floor,
                  "cross-shard event violates the conservative lookahead");
      minArrival = std::min(minArrival, e.when);
      eng.postArrival(e.when, e.srcPe, e.srcSeq, std::move(e.action));
    }
  }
  // Stragglers lower the destination shard's pending-work bound, so fold
  // them into its published pair bounds before ceilings are computed.
  if (adaptive_ && boundsValid_) {
    const std::size_t un = static_cast<std::size_t>(n);
    for (std::size_t d = 0; d < un; ++d) {
      const Time t = arrivalMin_[d];
      if (t == kInf) continue;
      for (std::size_t y = 0; y < un; ++y) {
        auto& bound = bounds_[d * un + y];
        const Time via = t + closure_[d * un + y];
        if (via < bound.load(std::memory_order_relaxed))
          bound.store(via, std::memory_order_relaxed);
      }
    }
  }
  // Shard-issued serial events (global mode only). Boundary events resolve
  // to the ceiling of the window that produced them (partition-independent
  // by construction).
  auto& scratch = drainScratch_;
  scratch.clear();
  for (int s = 0; s < n; ++s)
    serialRings_[static_cast<std::size_t>(s)].drainInto(scratch);
  if (scratch.empty()) return;
  for (auto& e : scratch)
    if (e.boundary) e.when = windowCeiling_;
  std::sort(scratch.begin(), scratch.end(),
            [](const RingEntry& a, const RingEntry& b) {
              return canonicalBefore(a.when, a.srcPe, a.srcSeq, b.when, b.srcPe,
                                     b.srcSeq);
            });
  for (auto& e : scratch) {
    CKD_REQUIRE(e.when >= windowCeiling_,
                "serial event scheduled below the window ceiling");
    serial_.at(e.when, std::move(e.action));
  }
}

// ---- adaptive bounds ----

void ParallelEngine::publishBounds(int shard) {
  const std::size_t n = shards_.size();
  const std::size_t s = static_cast<std::size_t>(shard);
  const Time local = shards_[s].engine.nextEventTime();
  for (std::size_t d = 0; d < n; ++d)
    bounds_[s * n + d].store(local + closure_[s * n + d],
                             std::memory_order_release);
}

void ParallelEngine::recomputeBounds() {
  const std::size_t n = shards_.size();
  for (std::size_t s = 0; s < n; ++s) {
    const Time local = shards_[s].engine.nextEventTime();
    for (std::size_t d = 0; d < n; ++d)
      bounds_[s * n + d].store(local + closure_[s * n + d],
                               std::memory_order_relaxed);
  }
  boundsValid_ = true;
}

Time ParallelEngine::computeCeilings(Time serialNext) {
  const std::size_t n = shards_.size();
  Time maxC = 0.0;
  for (std::size_t d = 0; d < n; ++d) {
    Time c = serialNext;
    for (std::size_t s = 0; s < n; ++s)
      c = std::min(c, bounds_[s * n + d].load(std::memory_order_relaxed));
    ceilings_[d] = c;
    maxC = std::max(maxC, c);
  }
  return maxC;
}

// ---- round loop ----

Time ParallelEngine::minShardNext() const {
  Time m = kInf;
  for (const auto& sh : shards_) m = std::min(m, sh.engine.nextEventTime());
  return m;
}

void ParallelEngine::runShardWindow(int shard, Time ceiling) {
  tlsShard_ = shard;
  tlsSerialSrcPe_ = -1;
  Shard& sh = shards_[static_cast<std::size_t>(shard)];
  util::BufferPool* prevPool = util::BufferPool::swapCurrent(&sh.pool);
  // Chunked window: every drainStride_ events, publish pending outbound
  // batches (so consumers can pre-stage them) and pull inbound rings into
  // the inbox. Conservatism guarantees drained entries are at or beyond
  // this shard's ceiling, so mid-window drains never add work to the
  // running window — they only keep rings shallow and move the merge off
  // the barrier.
  while (sh.engine.runWindow(ceiling, drainStride_)) {
    flushOutbound(shard);
    drainInbound(shard);
  }
  flushOutbound(shard);
  drainInbound(shard);
  if (adaptive_) publishBounds(shard);
  util::BufferPool::swapCurrent(prevPool);
  tlsShard_ = -1;
  tlsSerialSrcPe_ = -1;
}

void ParallelEngine::executeRound() {
  if (threadCount_ <= 1) {
    // One host core: run each shard's window inline, in shard order. Same
    // partition, same rings, same canonical merges — bit-identical results,
    // zero synchronization.
    for (int i = 0; i < shards(); ++i)
      runShardWindow(i, ceilings_[static_cast<std::size_t>(i)]);
    return;
  }
  doneCount_.store(0, std::memory_order_relaxed);
  startGen_.fetch_add(1, std::memory_order_release);
  // The coordinator doubles as worker 0.
  for (int i = 0; i < shards(); i += threadCount_)
    runShardWindow(i, ceilings_[static_cast<std::size_t>(i)]);
  const int expect = threadCount_ - 1;
  for (int spins = 0;
       doneCount_.load(std::memory_order_acquire) != expect;) {
    if (++spins >= kSpinsBeforeYield) {
      spins = 0;
      std::this_thread::yield();
    }
  }
}

void ParallelEngine::workerLoop(int workerIndex) {
  if (pinThreads_) pinThread(workerIndex);
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen;
    for (int spins = 0;
         (gen = startGen_.load(std::memory_order_acquire)) == seen;) {
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
    seen = gen;
    if (quit_.load(std::memory_order_acquire)) return;
    for (int i = workerIndex; i < shards(); i += threadCount_)
      runShardWindow(i, ceilings_[static_cast<std::size_t>(i)]);
    doneCount_.fetch_add(1, std::memory_order_release);
  }
}

void ParallelEngine::run() {
  for (;;) {
    if (stopRequested_.exchange(false, std::memory_order_relaxed)) break;
    reconcile();
    const Time m = minShardNext();
    const Time s = serial_.nextEventTime();
    if (m == kInf && s == kInf) {
      // Quiescent: every heap, inbox, ring, and staging buffer is empty.
      // Align all clocks on the horizon so host code between runs
      // (mainchare-style setup for the next phase) sees one consistent
      // "now" and may seed fresh work there without tripping the
      // monotonicity checks.
      const Time h = horizon();
      for (auto& sh : shards_) sh.engine.pinNow(h);
      serial_.pinNow(h);
      windowCeiling_ = h;
      std::fill(ceilings_.begin(), ceilings_.end(), h);
      for (auto& r : rings_) r.reclaim();
      for (auto& r : serialRings_) r.reclaim();
      boundsValid_ = false;
      break;
    }
    if (s <= m) {
      // Serial phase: everything pending sits at or beyond s, so pin every
      // shard clock to s and run the serial events at that instant (they
      // may cascade at the same time; runWindow picks those up too).
      for (auto& sh : shards_) sh.engine.pinNow(s);
      serial_.runWindow(std::nextafter(s, kInf));
      boundsValid_ = false;  // serial events may have staged work anywhere
      maybeSample(s);
      continue;
    }
    ++windows_;
    if (!adaptive_) {
      const Time ceiling = std::min(m + lookahead_, s);
      windowCeiling_ = ceiling;
      std::fill(ceilings_.begin(), ceilings_.end(), ceiling);
    } else {
      if (!boundsValid_) recomputeBounds();
      windowCeiling_ = computeCeilings(s);
    }
    executeRound();
    boundsValid_ = adaptive_;
    maybeSample(windowCeiling_);
  }
}

void ParallelEngine::maybeSample(Time t) {
  // Runs on the coordinator with every shard parked, so probe closures may
  // read shard engines race-free. Sampling is read-only — it never schedules
  // events or touches shard state — so metrics-on runs stay bit-identical.
  if (sampler_ != nullptr && t >= sampler_->dueAt()) sampler_->sample(t);
}

// ---- aggregates ----

std::uint64_t ParallelEngine::executedEvents() const {
  std::uint64_t total = serial_.executedEvents();
  for (const auto& sh : shards_) total += sh.engine.executedEvents();
  return total;
}

Time ParallelEngine::horizon() const {
  Time h = serial_.now();
  for (const auto& sh : shards_) h = std::max(h, sh.engine.now());
  return h;
}

ParallelEngine::RingStats ParallelEngine::ringStats() const {
  RingStats total;
  const auto fold = [&total](const SpscRing& r) {
    const SpscRing::Stats& s = r.stats();
    total.pushes += s.pushes;
    total.batches += s.batches;
    total.overflow += s.overflow;
  };
  for (const auto& r : rings_) fold(r);
  for (const auto& r : serialRings_) fold(r);
  return total;
}

std::vector<TraceEvent> ParallelEngine::mergedTrace() const {
  std::vector<TraceEvent> merged = serial_.trace().snapshot();
  for (const auto& sh : shards_) {
    auto part = sh.engine.trace().snapshot();
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  // A (time, pe) tie can only pair events from one stream with events from
  // the serial stream; the concatenation order (serial first, shards in
  // shard order) plus stability makes the merge partition-independent.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.pe < b.pe;
                   });
  return merged;
}

}  // namespace ckd::sim
