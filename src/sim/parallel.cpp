#include "sim/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ckd::sim {

thread_local int ParallelEngine::tlsShard_ = -1;
thread_local int ParallelEngine::tlsSerialSrcPe_ = -1;

namespace {

constexpr int kSpinsBeforeYield = 1024;

std::size_t checkedShardCount(const ParallelEngine::Config& cfg) {
  CKD_REQUIRE(cfg.shards >= 1, "shard count must be positive");
  CKD_REQUIRE(cfg.lookahead > 0.0, "conservative lookahead must be positive");
  return static_cast<std::size_t>(cfg.shards);
}

}  // namespace

ParallelEngine::ParallelEngine(Config cfg, std::vector<int> shardOfPe)
    : lookahead_(cfg.lookahead),
      shardOfPe_(std::move(shardOfPe)),
      shards_(checkedShardCount(cfg)),
      rings_(shards_.size() * shards_.size()),
      serialRings_(shards_.size()),
      pushSeq_(shardOfPe_.size() + 1, 0),
      mintCounters_(shardOfPe_.size() + 1, 0) {
  for (const int s : shardOfPe_)
    CKD_REQUIRE(s >= 0 && s < cfg.shards, "PE mapped to an out-of-range shard");

  int want = cfg.threads > 0
                 ? cfg.threads
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (want < 1) want = 1;
  threadCount_ = std::min(want, static_cast<int>(shards_.size()));
  workers_.reserve(static_cast<std::size_t>(threadCount_ - 1));
  for (int k = 1; k < threadCount_; ++k)
    workers_.emplace_back([this, k] { workerLoop(k); });
}

ParallelEngine::~ParallelEngine() {
  quit_.store(true, std::memory_order_release);
  startGen_.fetch_add(1, std::memory_order_release);
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

void ParallelEngine::SpscRing::push(RingEntry&& e) {
  const std::size_t h = head_.load(std::memory_order_relaxed);
  if (h - tail_.load(std::memory_order_acquire) < kCapacity) {
    buf_[h & (kCapacity - 1)] = std::move(e);
    head_.store(h + 1, std::memory_order_release);
    return;
  }
  std::lock_guard<std::mutex> lock(overflowMu_);
  overflow_.push_back(std::move(e));
}

void ParallelEngine::SpscRing::drainInto(std::vector<RingEntry>& out) {
  std::size_t t = tail_.load(std::memory_order_relaxed);
  const std::size_t h = head_.load(std::memory_order_acquire);
  for (; t != h; ++t) out.push_back(std::move(buf_[t & (kCapacity - 1)]));
  tail_.store(t, std::memory_order_release);
  std::lock_guard<std::mutex> lock(overflowMu_);
  if (!overflow_.empty()) {
    for (auto& e : overflow_) out.push_back(std::move(e));
    overflow_.clear();
  }
}

void ParallelEngine::growPes(const std::vector<int>& shardOfNewPes) {
  CKD_REQUIRE(tlsShard_ < 0,
              "PE growth must run from a serial phase, not a shard window");
  for (const int s : shardOfNewPes)
    CKD_REQUIRE(s >= 0 && s < shards(),
                "new PE mapped to an out-of-range shard");
  shardOfPe_.insert(shardOfPe_.end(), shardOfNewPes.begin(),
                    shardOfNewPes.end());
  // Shards are parked during serial phases, so extending the per-PE tables
  // is race-free; recorders hold the vector's address, which is stable.
  pushSeq_.resize(shardOfPe_.size() + 1, 0);
  mintCounters_.resize(shardOfPe_.size() + 1, 0);
}

void ParallelEngine::stageSerial(int dstShard, Time when,
                                 Engine::Action action) {
  shards_[static_cast<std::size_t>(dstShard)].staged.push_back(
      RingEntry{when, -1, nextSerialPushSeq(), false, std::move(action)});
}

namespace {
/// The canonical cross-shard order: (when, srcPe, srcSeq). srcSeq is unique
/// per source, so this is a total order — and every component is a function
/// of per-PE execution histories, never of the shard partition.
bool canonicalBefore(Time aWhen, std::int32_t aPe, std::uint64_t aSeq,
                     Time bWhen, std::int32_t bPe, std::uint64_t bSeq) {
  if (aWhen != bWhen) return aWhen < bWhen;
  if (aPe != bPe) return aPe < bPe;
  return aSeq < bSeq;
}
}  // namespace

void ParallelEngine::drainBoundary() {
  const int n = shards();
  // Cross-shard arrivals: merge every inbound ring (plus the coordinator's
  // serial-phase staging) per destination in canonical order.
  for (int d = 0; d < n; ++d) {
    auto& scratch = drainScratch_;
    scratch.clear();
    for (int s = 0; s < n; ++s) rings_[ringIndex(s, d)].drainInto(scratch);
    auto& staged = shards_[static_cast<std::size_t>(d)].staged;
    for (auto& e : staged) scratch.push_back(std::move(e));
    staged.clear();
    if (scratch.empty()) continue;
    std::sort(scratch.begin(), scratch.end(),
              [](const RingEntry& a, const RingEntry& b) {
                return canonicalBefore(a.when, a.srcPe, a.srcSeq, b.when,
                                       b.srcPe, b.srcSeq);
              });
    Engine& eng = shards_[static_cast<std::size_t>(d)].engine;
    for (auto& e : scratch) {
      CKD_REQUIRE(e.when >= windowCeiling_,
                  "cross-shard event violates the conservative lookahead");
      eng.at(e.when, std::move(e.action));
    }
  }
  // Shard-issued serial events. Boundary events resolve to the ceiling of
  // the window that produced them (partition-independent by construction).
  auto& scratch = drainScratch_;
  scratch.clear();
  for (int s = 0; s < n; ++s)
    serialRings_[static_cast<std::size_t>(s)].drainInto(scratch);
  if (scratch.empty()) return;
  for (auto& e : scratch)
    if (e.boundary) e.when = windowCeiling_;
  std::sort(scratch.begin(), scratch.end(),
            [](const RingEntry& a, const RingEntry& b) {
              return canonicalBefore(a.when, a.srcPe, a.srcSeq, b.when, b.srcPe,
                                     b.srcSeq);
            });
  for (auto& e : scratch) {
    CKD_REQUIRE(e.when >= windowCeiling_,
                "serial event scheduled below the window ceiling");
    serial_.at(e.when, std::move(e.action));
  }
}

Time ParallelEngine::minShardNext() const {
  Time m = std::numeric_limits<Time>::infinity();
  for (const auto& sh : shards_) m = std::min(m, sh.engine.nextEventTime());
  return m;
}

void ParallelEngine::runShardWindow(int shard, Time ceiling) {
  tlsShard_ = shard;
  tlsSerialSrcPe_ = -1;
  shards_[static_cast<std::size_t>(shard)].engine.runWindow(ceiling);
  tlsShard_ = -1;
  tlsSerialSrcPe_ = -1;
}

void ParallelEngine::executeWindow(Time ceiling) {
  if (threadCount_ <= 1) {
    // One host core: run each shard's window inline, in shard order. Same
    // partition, same rings, same canonical merges — bit-identical results,
    // zero synchronization.
    for (int i = 0; i < shards(); ++i) runShardWindow(i, ceiling);
    return;
  }
  publishedCeiling_ = ceiling;
  doneCount_.store(0, std::memory_order_relaxed);
  startGen_.fetch_add(1, std::memory_order_release);
  // The coordinator doubles as worker 0.
  for (int i = 0; i < shards(); i += threadCount_) runShardWindow(i, ceiling);
  const int expect = threadCount_ - 1;
  for (int spins = 0;
       doneCount_.load(std::memory_order_acquire) != expect;) {
    if (++spins >= kSpinsBeforeYield) {
      spins = 0;
      std::this_thread::yield();
    }
  }
}

void ParallelEngine::workerLoop(int workerIndex) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen;
    for (int spins = 0;
         (gen = startGen_.load(std::memory_order_acquire)) == seen;) {
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
    seen = gen;
    if (quit_.load(std::memory_order_acquire)) return;
    const Time ceiling = publishedCeiling_;
    for (int i = workerIndex; i < shards(); i += threadCount_)
      runShardWindow(i, ceiling);
    doneCount_.fetch_add(1, std::memory_order_release);
  }
}

void ParallelEngine::run() {
  for (;;) {
    if (stopRequested_.exchange(false, std::memory_order_relaxed)) break;
    drainBoundary();
    const Time m = minShardNext();
    const Time s = serial_.nextEventTime();
    if (m == std::numeric_limits<Time>::infinity() &&
        s == std::numeric_limits<Time>::infinity()) {
      // Quiescent: every heap, ring, and staging buffer is empty. Align all
      // clocks on the horizon so host code between runs (mainchare-style
      // setup for the next phase) sees one consistent "now" and may seed
      // fresh work there without tripping the monotonicity checks.
      const Time h = horizon();
      for (auto& sh : shards_) sh.engine.pinNow(h);
      serial_.pinNow(h);
      windowCeiling_ = h;
      break;
    }
    if (s <= m) {
      // Serial phase: everything pending sits at or beyond s, so pin every
      // shard clock to s and run the serial events at that instant (they
      // may cascade at the same time; runWindow picks those up too).
      for (auto& sh : shards_) sh.engine.pinNow(s);
      serial_.runWindow(
          std::nextafter(s, std::numeric_limits<Time>::infinity()));
      continue;
    }
    const Time ceiling = std::min(m + lookahead_, s);
    windowCeiling_ = ceiling;
    ++windows_;
    executeWindow(ceiling);
  }
}

std::uint64_t ParallelEngine::executedEvents() const {
  std::uint64_t total = serial_.executedEvents();
  for (const auto& sh : shards_) total += sh.engine.executedEvents();
  return total;
}

Time ParallelEngine::horizon() const {
  Time h = serial_.now();
  for (const auto& sh : shards_) h = std::max(h, sh.engine.now());
  return h;
}

std::vector<TraceEvent> ParallelEngine::mergedTrace() const {
  std::vector<TraceEvent> merged = serial_.trace().snapshot();
  for (const auto& sh : shards_) {
    auto part = sh.engine.trace().snapshot();
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  // A (time, pe) tie can only pair events from one stream with events from
  // the serial stream; the concatenation order (serial first, shards in
  // shard order) plus stability makes the merge partition-independent.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.pe < b.pe;
                   });
  return merged;
}

}  // namespace ckd::sim
