#pragma once
// Deterministic discrete-event engine.
//
// Events scheduled for the same instant execute in scheduling order (a
// monotone sequence number breaks ties), which makes every simulation run
// bit-reproducible. The engine is strictly single-threaded; all simulated
// concurrency (processors, NICs, links) is expressed as events.
//
// Hot-path layout: the priority heap holds 24-byte POD entries (when, seq,
// slot); the closures themselves live in a slab of InplaceAction slots
// recycled through a free list. Heap sifts therefore move trivially-copyable
// structs, actions are move-constructed exactly once on entry and once on
// dispatch, and the common capture sizes never touch the allocator.

#include <atomic>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "util/inplace_fn.hpp"
#include "util/require.hpp"

namespace ckd::sim {

/// Engine event closure. The capacity covers the deepest composite the
/// runtime builds (the fabric's delivery wrapper holding a reliability-layer
/// callback, ~128 bytes); larger captures fall back to the heap.
using InplaceAction = util::InplaceFunction<void(), 152>;

class Engine {
 public:
  using Action = InplaceAction;

  Engine() {
    // Pre-size the slab so steady-state scheduling never grows a vector.
    heap_.reserve(kInitialSlots);
    slots_.reserve(kInitialSlots);
    freeSlots_.reserve(kInitialSlots);
  }

  /// Current virtual time. While an event runs, now() is that event's time.
  Time now() const { return now_; }

  /// Schedule a callable at absolute time `when` (must be >= now()). The
  /// callable is forwarded into its slab slot and constructed there exactly
  /// once (InplaceFunction's converting assignment), so scheduling a lambda
  /// never pays an intermediate wrapper move.
  template <class F, class = std::enable_if_t<
                         std::is_invocable_v<std::decay_t<F>&>>>
  void at(Time when, F&& f) {
    CKD_REQUIRE(when >= now_, "cannot schedule an event in the past");
    if constexpr (std::is_same_v<std::decay_t<F>, Action>)
      CKD_REQUIRE(f != nullptr, "cannot schedule a null action");
    const std::uint32_t slot = acquireSlot(std::forward<F>(f));
    heap_.push_back(HeapEntry{when, nextSeq_++, slot});
    siftUp(heap_.size() - 1);
  }

  /// Raw-thunk overload: schedule `fn(ctx)` without constructing a closure.
  /// The per-PE schedulers re-arm their pump through this (one statically
  /// bound member thunk instead of a fresh lambda per pump).
  void at(Time when, void (*fn)(void*), void* ctx) {
    CKD_REQUIRE(fn != nullptr, "cannot schedule a null thunk");
    at(when, Thunk{fn, ctx});
  }

  /// Schedule a callable `delay` microseconds from now (delay >= 0).
  template <class F, class = std::enable_if_t<
                         std::is_invocable_v<std::decay_t<F>&>>>
  void after(Time delay, F&& f) {
    CKD_REQUIRE(delay >= 0.0, "event delay must be non-negative");
    at(now_ + delay, std::forward<F>(f));
  }
  void after(Time delay, void (*fn)(void*), void* ctx) {
    CKD_REQUIRE(delay >= 0.0, "event delay must be non-negative");
    at(now_ + delay, fn, ctx);
  }

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= `deadline`; afterwards now() == deadline if the
  /// loop drained past the deadline (stop() leaves now() at the last event).
  void runUntil(Time deadline);

  /// Execute every event with time strictly below `ceiling`, ignoring
  /// stop().  This is the shard-local inner loop of sim::ParallelEngine's
  /// conservative window: the ceiling is a time no other shard can affect,
  /// so everything below it is safe to run without synchronization.
  void runWindow(Time ceiling) {
    while (!heap_.empty() && heap_.front().when < ceiling) step();
  }

  /// Timestamp of the earliest pending event, or +inf on an empty heap.
  /// ParallelEngine derives the global window ceiling from these.
  Time nextEventTime() const {
    return heap_.empty() ? std::numeric_limits<Time>::infinity()
                         : heap_.front().when;
  }

  /// Advance the clock to `t` without executing anything (t >= now()).
  /// ParallelEngine pins every shard to the serial timestamp before running
  /// a global (serial-phase) event, so code observing now() on any shard
  /// sees a consistent instant.
  void pinNow(Time t) {
    CKD_REQUIRE(t >= now_, "cannot pin the clock backwards");
    now_ = t;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pendingEvents() const { return heap_.size(); }
  std::uint64_t executedEvents() const { return executed_; }

  /// Events executed by every engine in this process — the numerator of the
  /// events/sec number harness::BenchRunner reports. Relaxed atomic: with
  /// one engine per shard thread the plain counter was a data race (and
  /// dropped increments, under-counting the events/sec numerator).
  static std::uint64_t processExecutedEvents() {
    return processExecuted_.load(std::memory_order_relaxed);
  }

  /// Abort the current run() / runUntil() loop after the current event.
  void stop() { stopRequested_ = true; }

  /// The trace/metrics recorder shared by every layer driven by this engine.
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

 private:
  static constexpr std::size_t kInitialSlots = 256;

  struct HeapEntry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Thunk {
    void (*fn)(void*);
    void* ctx;
    void operator()() const { fn(ctx); }
  };

  /// "a fires later than b": earliest event wins the heap root.
  static bool later(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  template <class F>
  std::uint32_t acquireSlot(F&& f) {
    if (!freeSlots_.empty()) {
      const std::uint32_t slot = freeSlots_.back();
      freeSlots_.pop_back();
      slots_[slot] = std::forward<F>(f);
      return slot;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back(std::forward<F>(f));
    return slot;
  }

  void siftUp(std::size_t i);
  void siftDown(std::size_t i);

  std::vector<HeapEntry> heap_;
  std::vector<Action> slots_;
  std::vector<std::uint32_t> freeSlots_;
  Time now_ = kTimeZero;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopRequested_ = false;
  TraceRecorder trace_;

  inline static std::atomic<std::uint64_t> processExecuted_{0};
};

}  // namespace ckd::sim
