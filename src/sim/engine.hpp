#pragma once
// Deterministic discrete-event engine.
//
// Events scheduled for the same instant execute in scheduling order (a
// monotone sequence number breaks ties), which makes every simulation run
// bit-reproducible. The engine is strictly single-threaded; all simulated
// concurrency (processors, NICs, links) is expressed as events.
//
// Hot-path layout: the priority heap holds 24-byte POD entries (when, seq,
// slot); the closures themselves live in a slab of InplaceAction slots
// recycled through a free list. Heap sifts therefore move trivially-copyable
// structs, actions are move-constructed exactly once on entry and once on
// dispatch, and the common capture sizes never touch the allocator.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "util/inplace_fn.hpp"
#include "util/require.hpp"

namespace ckd::obs {
class FlightRecorder;
}

namespace ckd::sim {

/// Engine event closure. The capacity covers the deepest composite the
/// runtime builds (the fabric's delivery wrapper holding a reliability-layer
/// callback, ~128 bytes); larger captures fall back to the heap.
using InplaceAction = util::InplaceFunction<void(), 152>;

class Engine {
 public:
  using Action = InplaceAction;

  Engine() {
    // Pre-size the slab so steady-state scheduling never grows a vector.
    heap_.reserve(kInitialSlots);
    slots_.reserve(kInitialSlots);
    freeSlots_.reserve(kInitialSlots);
  }

  /// Current virtual time. While an event runs, now() is that event's time.
  Time now() const { return now_; }

  /// Schedule a callable at absolute time `when` (must be >= now()). The
  /// callable is forwarded into its slab slot and constructed there exactly
  /// once (InplaceFunction's converting assignment), so scheduling a lambda
  /// never pays an intermediate wrapper move.
  template <class F, class = std::enable_if_t<
                         std::is_invocable_v<std::decay_t<F>&>>>
  void at(Time when, F&& f) {
    CKD_REQUIRE(when >= now_, "cannot schedule an event in the past");
    if constexpr (std::is_same_v<std::decay_t<F>, Action>)
      CKD_REQUIRE(f != nullptr, "cannot schedule a null action");
    const std::uint32_t slot = acquireSlot(std::forward<F>(f));
    heap_.push_back(HeapEntry{when, nextSeq_++, slot});
    siftUp(heap_.size() - 1);
  }

  /// Raw-thunk overload: schedule `fn(ctx)` without constructing a closure.
  /// The per-PE schedulers re-arm their pump through this (one statically
  /// bound member thunk instead of a fresh lambda per pump).
  void at(Time when, void (*fn)(void*), void* ctx) {
    CKD_REQUIRE(fn != nullptr, "cannot schedule a null thunk");
    at(when, Thunk{fn, ctx});
  }

  /// Schedule a callable `delay` microseconds from now (delay >= 0).
  template <class F, class = std::enable_if_t<
                         std::is_invocable_v<std::decay_t<F>&>>>
  void after(Time delay, F&& f) {
    CKD_REQUIRE(delay >= 0.0, "event delay must be non-negative");
    at(now_ + delay, std::forward<F>(f));
  }
  void after(Time delay, void (*fn)(void*), void* ctx) {
    CKD_REQUIRE(delay >= 0.0, "event delay must be non-negative");
    at(now_ + delay, fn, ctx);
  }

  /// Stage a cross-shard arrival carrying its canonical wire identity
  /// `(when, srcPe, srcSeq)`. Arrivals wait in a side heap ordered by that
  /// identity and are admitted into the main heap just in time: an arrival
  /// at time t receives its local tie-break sequence only once every event
  /// strictly before t has executed and before any event at t runs. The
  /// admission point is therefore a pure virtual-time property — it does not
  /// depend on which window, drain, or shard count delivered the arrival —
  /// which is what keeps parallel runs bit-identical across partitions even
  /// when window boundaries differ per destination.
  template <class F, class = std::enable_if_t<
                         std::is_invocable_v<std::decay_t<F>&>>>
  void postArrival(Time when, std::int32_t srcPe, std::uint64_t srcSeq,
                   F&& f) {
    CKD_REQUIRE(when >= now_, "cannot post an arrival in the past");
    const std::uint32_t slot = acquireSlot(std::forward<F>(f));
    inbox_.push_back(InboxEntry{when, srcSeq, srcPe, slot});
    std::push_heap(inbox_.begin(), inbox_.end(), arrivalAfter);
  }

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= `deadline`; afterwards now() == deadline if the
  /// loop drained past the deadline (stop() leaves now() at the last event).
  void runUntil(Time deadline);

  /// Execute events with time strictly below `ceiling`, ignoring stop().
  /// This is the shard-local inner loop of sim::ParallelEngine's
  /// conservative window: the ceiling is a time no other shard can affect,
  /// so everything below it is safe to run without synchronization. Staged
  /// arrivals below the ceiling are admitted just in time (see
  /// postArrival). At most `maxSteps` events run per call so the caller can
  /// interleave inbound-ring drains mid-window; returns true when events
  /// below the ceiling remain (i.e. the window is unfinished).
  bool runWindow(Time ceiling,
                 std::uint64_t maxSteps =
                     std::numeric_limits<std::uint64_t>::max()) {
    std::uint64_t steps = 0;
    for (;;) {
      admitArrivals(ceiling);
      if (heap_.empty() || heap_.front().when >= ceiling) return false;
      if (steps >= maxSteps) return true;
      step();
      ++steps;
    }
  }

  /// Timestamp of the earliest pending event (heap or staged arrival), or
  /// +inf when idle. ParallelEngine derives window ceilings from these.
  Time nextEventTime() const {
    Time t = heap_.empty() ? std::numeric_limits<Time>::infinity()
                           : heap_.front().when;
    if (!inbox_.empty() && inbox_.front().when < t) t = inbox_.front().when;
    return t;
  }

  /// Advance the clock to `t` without executing anything (t >= now()).
  /// ParallelEngine pins every shard to the serial timestamp before running
  /// a global (serial-phase) event, so code observing now() on any shard
  /// sees a consistent instant.
  void pinNow(Time t) {
    CKD_REQUIRE(t >= now_, "cannot pin the clock backwards");
    now_ = t;
  }

  bool empty() const { return heap_.empty() && inbox_.empty(); }
  std::size_t pendingEvents() const { return heap_.size() + inbox_.size(); }
  std::uint64_t executedEvents() const { return executed_; }

  /// Pre-size the slab (heap entries, action slots, free list) so a known
  /// fan-in never grows a vector mid-window. ParallelEngine sizes each
  /// shard's slab from Config::slotReserve.
  void reserveSlots(std::size_t n) {
    if (n <= slots_.capacity()) return;
    heap_.reserve(n);
    slots_.reserve(n);
    freeSlots_.reserve(n);
  }

  /// Events executed by every engine in this process — the numerator of the
  /// events/sec number harness::BenchRunner reports. Relaxed atomic: with
  /// one engine per shard thread the plain counter was a data race (and
  /// dropped increments, under-counting the events/sec numerator).
  static std::uint64_t processExecutedEvents() {
    return processExecuted_.load(std::memory_order_relaxed);
  }

  /// Abort the current run() / runUntil() loop after the current event.
  void stop() { stopRequested_ = true; }

  /// The trace/metrics recorder shared by every layer driven by this engine.
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  /// Streaming SLO histograms fed by the layers driven by this engine
  /// (single-writer, like trace()). Disarmed by default: every feed point
  /// pays one predictable branch, and arming never perturbs event order.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Attach (or detach, with nullptr) a flight recorder sampled inline on
  /// the dispatch path: the first event at or past recorder->dueAt()
  /// triggers a read-only sample before it runs. Sampling never schedules
  /// events, so the event sequence is bit-identical with or without it.
  /// The sharded parallel engine does NOT use this hook — it samples from
  /// the coordinator between windows (see ParallelEngine::attachSampler).
  void attachSampler(obs::FlightRecorder* recorder);

 private:
  static constexpr std::size_t kInitialSlots = 256;

  struct HeapEntry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Staged cross-shard arrival awaiting just-in-time admission. Ordered by
  /// the canonical wire identity (when, srcPe, srcSeq) so same-instant
  /// arrivals from different sources always admit in the same order no
  /// matter which drain delivered them.
  struct InboxEntry {
    Time when;
    std::uint64_t srcSeq;
    std::int32_t srcPe;
    std::uint32_t slot;
  };
  struct Thunk {
    void (*fn)(void*);
    void* ctx;
    void operator()() const { fn(ctx); }
  };

  /// "a fires later than b": earliest event wins the heap root.
  static bool later(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  /// "a admits after b": canonical (when, srcPe, srcSeq) order for the
  /// arrival side heap (std::push_heap keeps the *smallest* at front under
  /// this comparator).
  static bool arrivalAfter(const InboxEntry& a, const InboxEntry& b) {
    if (a.when != b.when) return a.when > b.when;
    if (a.srcPe != b.srcPe) return a.srcPe > b.srcPe;
    return a.srcSeq > b.srcSeq;
  }

  /// Move every staged arrival whose time is below `ceiling` and no later
  /// than the earliest heap event into the main heap, minting its local seq
  /// at that instant. Ties admit before the same-time heap event steps.
  void admitArrivals(Time ceiling) {
    while (!inbox_.empty()) {
      const InboxEntry& top = inbox_.front();
      if (top.when >= ceiling) break;
      if (!heap_.empty() && heap_.front().when < top.when) break;
      std::pop_heap(inbox_.begin(), inbox_.end(), arrivalAfter);
      const InboxEntry e = inbox_.back();
      inbox_.pop_back();
      heap_.push_back(HeapEntry{e.when, nextSeq_++, e.slot});
      siftUp(heap_.size() - 1);
    }
  }

  template <class F>
  std::uint32_t acquireSlot(F&& f) {
    if (!freeSlots_.empty()) {
      const std::uint32_t slot = freeSlots_.back();
      freeSlots_.pop_back();
      slots_[slot] = std::forward<F>(f);
      return slot;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back(std::forward<F>(f));
    return slot;
  }

  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  /// Out-of-line sample slow path of the dispatch-time `now_ >= sampleNext_`
  /// check; refreshes sampleNext_ from the recorder.
  void runSampler();

  std::vector<HeapEntry> heap_;
  std::vector<InboxEntry> inbox_;
  std::vector<Action> slots_;
  std::vector<std::uint32_t> freeSlots_;
  Time now_ = kTimeZero;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopRequested_ = false;
  TraceRecorder trace_;
  obs::MetricsRegistry metrics_;
  obs::FlightRecorder* sampler_ = nullptr;
  Time sampleNext_ = std::numeric_limits<Time>::infinity();

  inline static std::atomic<std::uint64_t> processExecuted_{0};
};

}  // namespace ckd::sim
