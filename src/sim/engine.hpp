#pragma once
// Deterministic discrete-event engine.
//
// Events scheduled for the same instant execute in scheduling order (a
// monotone sequence number breaks ties), which makes every simulation run
// bit-reproducible. The engine is strictly single-threaded; all simulated
// concurrency (processors, NICs, links) is expressed as events.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "util/require.hpp"

namespace ckd::sim {

class Engine {
 public:
  using Action = std::function<void()>;

  /// Current virtual time. While an event runs, now() is that event's time.
  Time now() const { return now_; }

  /// Schedule `action` at absolute time `when` (must be >= now()).
  void at(Time when, Action action);

  /// Schedule `action` `delay` microseconds from now (delay >= 0).
  void after(Time delay, Action action);

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= `deadline`; afterwards now() == deadline if the
  /// loop drained past the deadline (stop() leaves now() at the last event).
  void runUntil(Time deadline);

  bool empty() const { return heap_.empty(); }
  std::size_t pendingEvents() const { return heap_.size(); }
  std::uint64_t executedEvents() const { return executed_; }

  /// Abort the current run() / runUntil() loop after the current event.
  void stop() { stopRequested_ = true; }

  /// The trace/metrics recorder shared by every layer driven by this engine.
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Action action;
  };
  /// Heap comparator: "a fires later than b". With std::push_heap /
  /// std::pop_heap this keeps the earliest event at heap_.front().
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Explicit binary heap instead of std::priority_queue: pop_heap moves the
  // top element to the back, so the action can be moved out with
  // well-defined behavior (priority_queue::top() is const, and moving
  // through const_cast is UB-adjacent).
  std::vector<Event> heap_;
  Time now_ = kTimeZero;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopRequested_ = false;
  TraceRecorder trace_;
};

}  // namespace ckd::sim
