#pragma once
// Optional event tracing for debugging simulations. Disabled by default;
// when enabled it records (time, pe, tag, detail) tuples that tests and
// the harness can inspect or dump.

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ckd::sim {

struct TraceEvent {
  Time time;
  int pe;
  std::string tag;
  std::string detail;
};

class TraceRecorder {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Time time, int pe, std::string tag, std::string detail = "");

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Count of events with a matching tag.
  std::size_t countTag(const std::string& tag) const;

  /// Render as "t=12.00 pe=3 tag detail" lines (for golden tests / dumps).
  std::string toString() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace ckd::sim
