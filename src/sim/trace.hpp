#pragma once
// Low-overhead tracing + metrics for the runtime layers.
//
// Two tiers:
//  * Always-on fixed-size metrics — per-tag event counters, per-layer time
//    attribution, a poll-queue length histogram, and rendezvous round-trip
//    stats. These live in flat arrays and never touch the heap, so every
//    layer can call them unconditionally on hot paths.
//  * An optional event ring — when enabled(), record() also appends a POD
//    (time, pe, tag, value) tuple to a ring buffer capped at capacity()
//    events (default ~1M); once full, the oldest events are overwritten so
//    tracing stays safe on arbitrarily long runs. Disabled, the ring holds
//    no storage at all.
//
// Causal tracing: every logical message / transfer / CkDirect put carries a
// 64-bit trace id minted from mintId() (a deterministic counter — never an
// address or RNG draw, so reruns and CKD_POOLS on/off produce bit-identical
// ids). Layers record the id (and the id of the handler context that caused
// the send, the parent) on their span events via recordSpan(), turning the
// flat ring into a causal DAG that sim::CausalGraph can walk for critical
// paths and per-layer latency breakdowns.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace ckd::sim {

/// Runtime tiers that virtual time is attributed to. kApp is everything the
/// benchmark / application handler itself does.
enum class Layer : std::uint8_t {
  kScheduler = 0,
  kTransport,
  kFabric,
  kCkDirect,
  kApp,
  kCount,
};

constexpr std::size_t kLayerCount = static_cast<std::size_t>(Layer::kCount);

std::string_view layerName(Layer layer);

/// Enumerated trace points. One per interesting runtime transition; the
/// `value` field of a TraceEvent is tag-specific (bytes, queue length, ...).
enum class TraceTag : std::uint8_t {
  kSchedPump = 0,       // scheduler pump ran; value = message-queue length
  kSchedDeliver,        // message handed to a handler; value = payload bytes
  kSchedSystemWork,     // one unit of system work ran; value = its cost (us)
  kXportEager,          // eager-path send issued; value = payload bytes
  kXportRtsSend,        // rendezvous request sent; value = payload bytes
  kXportRtsRecv,        // rendezvous request received (registration queued)
  kXportAck,            // rendezvous ack processed at the sender
  kXportRdmaDelivered,  // rendezvous RDMA payload landed; value = bytes
  kXportBgpSend,        // DCMF send issued; value = payload bytes
  kFabricSubmit,        // transfer entered the fabric; value = wire bytes
  kFabricDeliver,       // transfer left the fabric; value = wire bytes
  kDirectPut,           // CkDirect put issued; value = channel bytes
  kDirectPollScan,      // poll-queue scan; value = scanned queue length
  kDirectSentinelHit,   // sentinel observed set during a scan
  kDirectCallback,      // receive-side callback invoked
  kDirectReady,         // ready/readyMark re-armed a channel
  kFaultDrop,           // injected wire drop; value = wire bytes
  kFaultDelay,          // injected extra latency; value = delay (us)
  kFaultDuplicate,      // injected duplicate delivery
  kFaultCorrupt,        // injected payload corruption
  kFaultQpError,        // injected QP failure at post time
  kFaultRegionInvalid,  // injected remote-region invalidation
  kRelRetransmit,       // go-back-N retransmission; value = wire bytes
  kRelAck,              // sender-side entry acknowledged; value = attempts
  kRelDupDrop,          // receiver discarded an already-seen sequence
  kRelOooDrop,          // receiver discarded an out-of-order (gap) sequence
  kRelError,            // entry failed permanently (error completion)
  kRelStaleNak,         // receiver NAKed a pre-crash-epoch arrival
  kFaultPeCrash,        // injected PE fail-stop; value = victim PE
  kCrashDetect,         // heartbeat monitor declared a PE dead
  kCkptTaken,           // buddy checkpoint committed; value = packed bytes
  kCkptRestore,         // restart restored state; value = recovery cost (us)
  kStaleEpochDrop,      // scheduler dropped a pre-restart-epoch message
  kSchedPumpDone,       // scheduler pump finished; value = time charged (us)
  kPgasPut,             // PGAS put issued at the origin; value = bytes
  kPgasGet,             // PGAS get issued at the origin; value = bytes
  kPgasAtomic,          // PGAS remote atomic issued; value = operand bytes
  kPgasComplete,        // PGAS op completed (origin ack / target notify)
  kPgasBarrier,         // PGAS barrier entered; value = barrier generation
  kPgasFence,           // PGAS fence/flush satisfied; value = ops drained
  kMpiPut,              // MPI_Put issued inside a PSCW epoch; value = bytes
  kMpiPutComplete,      // MPI_Put landed in the target window
  kMpiRdmaEager,        // RDMA-channel eager send issued; value = bytes
  kMpiRdmaRndv,         // RDMA-channel rendezvous send issued; value = bytes
  kMpiRdmaRecv,         // RDMA-channel message delivered to the receiver
  kMpiRdmaCredit,       // explicit credit-return message; value = credits
  kMpiRdmaStall,        // send stalled on credit exhaustion; value = bytes
  kLifeScaleOut,        // supervisor grew the machine; value = new PE count
  kLifeJoin,            // a joining PE became Active; value = PE index
  kLifeDrain,           // drain of a PE began; value = PE index
  kLifeHandoff,         // chare state shipped to an adoptive PE; value = bytes
  kLifeRetire,          // a drained PE retired; value = PE index
  kLifeAbort,           // drain aborted (crash fallback); value = PE index
  kLifeForward,         // retired PE forwarded a message to the new owner
  kCount,
};

constexpr std::size_t kTraceTagCount = static_cast<std::size_t>(TraceTag::kCount);

std::string_view traceTagName(TraceTag tag);

/// Reverse of traceTagName(); returns kCount for unknown names.
TraceTag traceTagFromName(std::string_view name);

/// Where an event sits inside its causal chain. kBegin opens a span (send
/// issued, put issued), kEnd closes it (handler delivered, callback fired);
/// kInstant marks intermediate milestones (fabric submit/deliver, sentinel
/// hit) or uncorrelated legacy points.
enum class SpanPhase : std::uint8_t {
  kInstant = 0,
  kBegin,
  kEnd,
};

struct TraceEvent {
  Time time = 0.0;
  std::uint64_t id = 0;      // causal chain id; 0 = not part of a chain
  std::uint64_t parent = 0;  // chain id of the handler that caused this chain
  double value = 0.0;        // tag-specific payload (bytes, queue length, ...)
  std::int32_t pe = -1;
  std::int32_t aux = -1;     // tag-specific small id (CkDirect handle, ...)
  TraceTag tag = TraceTag::kCount;
  SpanPhase phase = SpanPhase::kInstant;
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;  // ~1M events
  static constexpr std::size_t kPollHistBuckets = 12;

  // ---- event ring (heap-backed only while enabled) ----

  void enable(bool on = true);
  bool enabled() const { return enabled_; }

  /// Ring capacity in events. May be changed at any time, including mid-run
  /// with a non-empty ring: shrinking keeps the newest `cap` events (the
  /// older ones count as dropped), growing keeps everything already retained.
  void setCapacity(std::size_t cap);
  std::size_t capacity() const { return capacity_; }

  /// Record one trace point. Always updates the per-tag counter; appends to
  /// the ring only when enabled. Inlined so the no-trace configuration pays
  /// one counter bump and one predictable branch per call — the ring append
  /// stays out of line.
  void record(Time time, int pe, TraceTag tag, double value = 0.0) {
    ++counts_[static_cast<std::size_t>(tag)];
    if (enabled_) [[unlikely]]
      append(time, pe, tag, value, 0, 0, SpanPhase::kInstant, -1);
  }

  /// Lazy-value variant of record(): `value` is a nullary callable producing
  /// the event's tag-specific payload, evaluated ONLY when the ring is
  /// enabled. Use it at call sites whose value expression does real work
  /// (walks a queue, folds counters) — with the plain overload that work
  /// runs even when tracing is off, which is exactly the compile-out cost
  /// the no-ring configuration is supposed to avoid. The always-on per-tag
  /// counter still bumps unconditionally.
  template <class Fn, class = std::enable_if_t<std::is_invocable_v<Fn&>>>
  void recordLazy(Time time, int pe, TraceTag tag, Fn&& value) {
    ++counts_[static_cast<std::size_t>(tag)];
    if (enabled_) [[unlikely]]
      append(time, pe, tag, static_cast<double>(value()), 0, 0,
             SpanPhase::kInstant, -1);
  }

  /// Record one causal span event: like record(), plus the chain id, the
  /// causing chain's id, the span phase, and an optional tag-specific aux id.
  void recordSpan(Time time, int pe, TraceTag tag, SpanPhase phase,
                  std::uint64_t id, std::uint64_t parent = 0,
                  double value = 0.0, std::int32_t aux = -1) {
    ++counts_[static_cast<std::size_t>(tag)];
    if (enabled_) [[unlikely]] append(time, pe, tag, value, id, parent, phase, aux);
  }

  // ---- causal chain ids ----

  /// Mint a fresh chain id. Deterministic monotone counter (never 0), so a
  /// parent's id is always smaller than any child it causes — the causal
  /// graph is acyclic by construction and bit-identical across reruns.
  std::uint64_t mintId() { return ++nextId_; }

  /// Mint a chain id attributed to `pe`. In the default (global) mode this
  /// is mintId() — ids match the historical single-engine stream exactly.
  /// Under per-PE minting (setPerPeMinting, used by the sharded engine) the
  /// id is (pe+1) << 40 | per-PE counter: a pure function of the minting
  /// PE's own event order, so the id stream is identical for every shard
  /// count. Ids are then no longer globally monotone; CausalGraph only
  /// requires uniqueness and true parent links, not monotonicity.
  std::uint64_t mintIdFor(int pe) {
    if (perPeNextId_ == nullptr) return mintId();
    auto& counter = (*perPeNextId_)[static_cast<std::size_t>(pe + 1)];
    return (static_cast<std::uint64_t>(pe + 1) << 40) | ++counter;
  }

  /// Switch mintIdFor() to partition-independent per-PE counters (slot 0 is
  /// pe = -1, the serial context; slot pe+1 belongs to pe). All shard
  /// recorders of one parallel run share the counter table: a PE's ids are
  /// minted only from its own shard's thread (or from the serial phase,
  /// while every shard is parked), so slots are never contended.
  void setPerPeMinting(std::vector<std::uint64_t>* counters) {
    perPeNextId_ = counters;
  }
  /// Chain id of the handler currently executing (0 outside any handler).
  /// Messages and puts minted while a context is set inherit it as parent.
  std::uint64_t context() const { return context_; }
  void setContext(std::uint64_t id) { context_ = id; }

  /// Total record() calls that hit the ring (including overwritten ones).
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring overwrite.
  std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(ring_.size());
  }
  std::size_t ringSize() const { return ring_.size(); }
  /// Heap bytes held by the ring buffer (0 while disabled and empty).
  std::size_t ringHeapBytes() const {
    return ring_.capacity() * sizeof(TraceEvent);
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  // ---- always-on fixed-size metrics ----

  std::uint64_t count(TraceTag tag) const {
    return counts_[static_cast<std::size_t>(tag)];
  }

  /// Attribute `t` microseconds of virtual time to `layer`.
  void addLayerTime(Layer layer, Time t) {
    layerTime_[static_cast<std::size_t>(layer)] += t;
  }
  Time layerTime(Layer layer) const {
    return layerTime_[static_cast<std::size_t>(layer)];
  }
  /// Sum over all layers.
  Time totalLayerTime() const;

  /// Log2 histogram of poll-queue lengths seen at scan time: bucket 0 holds
  /// length 0, bucket i holds lengths in [2^(i-1), 2^i), the last bucket is
  /// open-ended.
  void observePollQueue(std::size_t len);
  const std::array<std::uint64_t, kPollHistBuckets>& pollQueueHistogram() const {
    return pollHist_;
  }

  /// Rendezvous RTS -> ack round-trip times (us).
  void observeRendezvousRtt(Time rtt) { rendezvousRtt_.add(rtt); }
  const util::RunningStats& rendezvousRtt() const { return rendezvousRtt_; }

  /// Transmissions needed per acknowledged reliable delivery (1 = no
  /// retransmit). Only populated when the fault layer is armed.
  void observeDeliveryAttempts(double attempts) {
    deliveryAttempts_.add(attempts);
  }
  const util::RunningStats& deliveryAttempts() const {
    return deliveryAttempts_;
  }

  /// Reset events and metrics; keeps enabled state and capacity.
  void clear();

  /// Render retained events as "t=12.00 pe=3 sched.pump v=4" lines.
  std::string toString() const;

 private:
  /// Ring-append slow path of record()/recordSpan(); only runs while
  /// enabled().
  void append(Time time, int pe, TraceTag tag, double value, std::uint64_t id,
              std::uint64_t parent, SpanPhase phase, std::int32_t aux);

  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t head_ = 0;  // next overwrite slot once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t nextId_ = 0;    // last minted chain id
  std::uint64_t context_ = 0;   // chain id of the running handler
  std::vector<std::uint64_t>* perPeNextId_ = nullptr;  // shared; see above
  std::vector<TraceEvent> ring_;

  std::array<std::uint64_t, kTraceTagCount> counts_{};
  std::array<Time, kLayerCount> layerTime_{};
  std::array<std::uint64_t, kPollHistBuckets> pollHist_{};
  util::RunningStats rendezvousRtt_;
  util::RunningStats deliveryAttempts_;
};

}  // namespace ckd::sim
