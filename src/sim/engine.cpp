#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace ckd::sim {

void Engine::at(Time when, Action action) {
  CKD_REQUIRE(when >= now_, "cannot schedule an event in the past");
  CKD_REQUIRE(action != nullptr, "cannot schedule a null action");
  heap_.push_back(Event{when, nextSeq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Engine::after(Time delay, Action action) {
  CKD_REQUIRE(delay >= 0.0, "event delay must be non-negative");
  at(now_ + delay, std::move(action));
}

bool Engine::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.when;
  ++executed_;
  ev.action();
  return true;
}

void Engine::run() {
  stopRequested_ = false;
  while (!stopRequested_ && step()) {
  }
}

void Engine::runUntil(Time deadline) {
  CKD_REQUIRE(deadline >= now_, "runUntil deadline is in the past");
  stopRequested_ = false;
  while (!stopRequested_ && !heap_.empty() && heap_.front().when <= deadline) {
    step();
  }
  // Fast-forward only when the loop genuinely drained past the deadline; a
  // stop() may have left events <= deadline queued, and advancing past them
  // would let a later run() move time backwards.
  if (!stopRequested_ && now_ < deadline) now_ = deadline;
}

}  // namespace ckd::sim
