#include "sim/engine.hpp"

#include <utility>

namespace ckd::sim {

void Engine::at(Time when, Action action) {
  CKD_REQUIRE(when >= now_, "cannot schedule an event in the past");
  CKD_REQUIRE(action != nullptr, "cannot schedule a null action");
  queue_.push(Event{when, nextSeq_++, std::move(action)});
}

void Engine::after(Time delay, Action action) {
  CKD_REQUIRE(delay >= 0.0, "event delay must be non-negative");
  at(now_ + delay, std::move(action));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the small fields and move the action through a temporary.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++executed_;
  ev.action();
  return true;
}

void Engine::run() {
  stopRequested_ = false;
  while (!stopRequested_ && step()) {
  }
}

void Engine::runUntil(Time deadline) {
  CKD_REQUIRE(deadline >= now_, "runUntil deadline is in the past");
  stopRequested_ = false;
  while (!stopRequested_ && !queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace ckd::sim
