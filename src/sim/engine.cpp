#include "sim/engine.hpp"

#include <utility>

#include "obs/flight_recorder.hpp"

namespace ckd::sim {

void Engine::siftUp(std::size_t i) {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], entry)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Engine::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapEntry entry = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && later(heap_[child], heap_[child + 1])) ++child;
    if (!later(entry, heap_[child])) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

bool Engine::step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) siftDown(0);

  now_ = top.when;
  ++executed_;
  processExecuted_.fetch_add(1, std::memory_order_relaxed);
  // Flight-recorder piggyback: one predictable double compare per event
  // (sampleNext_ is +inf unless a recorder is attached and armed). The
  // sample itself is read-only, so it cannot perturb the event sequence.
  if (now_ >= sampleNext_) [[unlikely]]
    runSampler();

  // Move the action out before running it: the action may schedule new
  // events, which may recycle this very slot.
  Action action = std::move(slots_[top.slot]);
  freeSlots_.push_back(top.slot);
  action();
  return true;
}

void Engine::attachSampler(obs::FlightRecorder* recorder) {
  sampler_ = recorder;
  sampleNext_ = recorder != nullptr
                    ? recorder->dueAt()
                    : std::numeric_limits<Time>::infinity();
}

void Engine::runSampler() {
  sampler_->sample(now_);
  sampleNext_ = sampler_->dueAt();
}

// A stop() issued between runs (e.g. from a fault callback that fired after
// the previous loop exited) must halt the next run before it executes
// anything; resetting the flag on entry silently swallowed it. Both loops
// therefore honor a pending stop first and consume the flag on exit.

void Engine::run() {
  const Time inf = std::numeric_limits<Time>::infinity();
  admitArrivals(inf);
  while (!stopRequested_ && step()) {
    admitArrivals(inf);
  }
  stopRequested_ = false;
}

void Engine::runUntil(Time deadline) {
  CKD_REQUIRE(deadline >= now_, "runUntil deadline is in the past");
  admitArrivals(std::numeric_limits<Time>::infinity());
  while (!stopRequested_ && !heap_.empty() && heap_.front().when <= deadline) {
    step();
    admitArrivals(std::numeric_limits<Time>::infinity());
  }
  const bool stopped = stopRequested_;
  stopRequested_ = false;
  // Fast-forward only when the loop genuinely drained past the deadline; a
  // stop() may have left events <= deadline queued, and advancing past them
  // would let a later run() move time backwards.
  if (!stopped && now_ < deadline) now_ = deadline;
}

}  // namespace ckd::sim
