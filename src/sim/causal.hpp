#pragma once
// Causal analysis over TraceRecorder span events.
//
// Every logical message / CkDirect put carries a 64-bit chain id (minted by
// TraceRecorder::mintId at the envelope / CkDirect layer) and the id of the
// handler context that caused it. CausalGraph folds the flat event ring into
// per-id chains with layer milestones:
//
//   start  — the opening span (direct.put / xport.eager / xport.rts_send /
//            xport.bgp_send / pgas.put / pgas.get / pgas.atomic / mpi.put /
//            mpi.rdma.eager / mpi.rdma.rndv; SpanPhase::kBegin)
//   submit — first fabric.submit (the bytes entered the wire model)
//   land   — last fabric.deliver / xport.rdma_delivered (bytes in remote
//            memory)
//   detect — direct.sentinel_hit (the poll loop noticed)
//   end    — the closing span (sched.deliver / direct.callback /
//            pgas.complete / mpi.put_complete / mpi.rdma.recv;
//            SpanPhase::kEnd)
//
// and derives a telescoping latency breakdown: queue = submit-start,
// wire = land-submit, poll = detect-land, handler = the remainder, so the
// four segments sum to the end-to-end latency EXACTLY (the remainder absorbs
// floating-point non-associativity and any missing milestones).
//
// The critical path is the parent-link walk back from the latest completed
// chain: ids are minted monotonically, so a parent's id is always smaller
// than its children's and the walk terminates. Its span (end of the last
// chain minus start of the root) bounds the measured horizon from below —
// on a dependency-chained workload (pingpong) it matches the horizon to
// within the scheduler overhead of the first and last hop.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace ckd::sim {

/// Per-chain latency split. The four segments sum to total_us exactly:
/// handler_us is computed as the remainder.
struct LayerBreakdown {
  double queue_us = 0.0;    ///< issue -> first fabric submit (sender side)
  double wire_us = 0.0;     ///< fabric submit -> payload landed remotely
  double poll_us = 0.0;     ///< landed -> sentinel detected (CkDirect only)
  double handler_us = 0.0;  ///< the rest: scheduling + callback overhead
  double total_us = 0.0;    ///< end-to-end (start -> end)
};

/// One causal chain: a logical message or CkDirect put, across however many
/// wire attempts it took.
struct CausalChain {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;          ///< chain that caused this one (0 = root)
  TraceTag kind = TraceTag::kCount;  ///< opening tag (kCount: none retained)
  TraceTag endTag = TraceTag::kCount;
  int srcPe = -1;
  int dstPe = -1;
  std::int32_t channel = -1;  ///< CkDirect handle id (aux), -1 otherwise
  double bytes = 0.0;
  Time start = -1.0;
  Time submit = -1.0;  ///< -1: milestone not observed
  Time land = -1.0;
  Time detect = -1.0;
  Time end = -1.0;
  int attempts = 0;  ///< wire attempts (retransmits / re-puts fold in)
  bool complete = false;

  LayerBreakdown breakdown() const;
};

struct LatencySummary {
  std::size_t count = 0;
  /// Mean per-layer split; mean.handler_us is again the remainder, so the
  /// components sum to mean.total_us exactly.
  LayerBreakdown mean;
};

class CausalGraph {
 public:
  explicit CausalGraph(std::span<const TraceEvent> events);

  /// All chains, sorted by id (mint order).
  const std::vector<CausalChain>& chains() const { return chains_; }
  /// Lookup by id; nullptr if the id never appeared in the event window.
  const CausalChain* chain(std::uint64_t id) const;

  /// Parent-link walk back from the latest completed chain (ties broken by
  /// larger id), returned root-first. Empty if nothing completed.
  std::vector<CausalChain> criticalPath() const;
  /// end(last) - start(root) of criticalPath(); 0 if empty.
  Time criticalPathSpan() const;
  /// Number of hops (chains) on the critical path.
  std::size_t criticalPathHops() const { return criticalPath().size(); }

  /// Completed chains sorted by end-to-end latency, slowest first (ties by
  /// smaller id), truncated to k.
  std::vector<CausalChain> slowestChains(std::size_t k) const;

  /// Mean put -> callback latency split over completed CkDirect put chains.
  LatencySummary putLatency() const;
  /// Mean send -> deliver latency split over completed message chains
  /// (eager / rendezvous / DCMF sends that reached a scheduler delivery).
  LatencySummary messageLatency() const;

  /// Mean latency split over completed chains whose opening tag is `kind`
  /// (e.g. pgas.put, mpi.put, mpi.rdma.eager). Lets callers break down the
  /// PGAS / RDMA-MPI designs exactly like CkDirect puts.
  LatencySummary latencyByKind(TraceTag kind) const;

  /// Busy virtual time per PE, accumulated from sched.pump_done duration
  /// events. Index = PE; utilization over a window is busy / horizon.
  const std::vector<double>& peBusyTime() const { return peBusy_; }

 private:
  LatencySummary summarize(bool puts) const;

  std::vector<CausalChain> chains_;
  std::vector<double> peBusy_;
};

}  // namespace ckd::sim
