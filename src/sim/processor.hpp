#pragma once
// A simulated processing element (PE). A PE executes work serially: callers
// ask for an execution slot (`nextFreeTime`), run real C++ code, and charge
// the modeled cost of that code (`occupyUntil`). Utilization accounting is
// kept so experiments can report compute/communication overlap.

#include <cstdint>

#include "sim/time.hpp"
#include "util/require.hpp"

namespace ckd::sim {

class Processor {
 public:
  Processor() = default;
  explicit Processor(int index) : index_(index) {}

  int index() const { return index_; }

  /// Earliest virtual time at which new work can start on this PE.
  Time freeAt() const { return busyUntil_; }

  bool busyAt(Time t) const { return t < busyUntil_; }

  /// Reserve the PE for [start, start + cost). `start` must be >= freeAt().
  /// Returns the completion time.
  Time occupy(Time start, Time cost) {
    CKD_REQUIRE(cost >= 0.0, "negative compute cost");
    CKD_REQUIRE(start >= busyUntil_, "PE double-booked");
    busyUntil_ = start + cost;
    busyTotal_ += cost;
    ++tasksRun_;
    return busyUntil_;
  }

  /// Extend the current occupation (used when a handler charges extra
  /// compute cost while it runs).
  void extend(Time extraCost) {
    CKD_REQUIRE(extraCost >= 0.0, "negative compute cost");
    busyUntil_ += extraCost;
    busyTotal_ += extraCost;
  }

  Time busyTotal() const { return busyTotal_; }
  std::uint64_t tasksRun() const { return tasksRun_; }

  /// Fraction of [0, horizon] this PE spent busy.
  double utilization(Time horizon) const {
    return horizon > 0.0 ? busyTotal_ / horizon : 0.0;
  }

  void reset() {
    busyUntil_ = kTimeZero;
    busyTotal_ = 0.0;
    tasksRun_ = 0;
  }

 private:
  int index_ = -1;
  Time busyUntil_ = kTimeZero;
  Time busyTotal_ = 0.0;
  std::uint64_t tasksRun_ = 0;
};

}  // namespace ckd::sim
