#include "sim/trace.hpp"

#include <sstream>

namespace ckd::sim {

void TraceRecorder::record(Time time, int pe, std::string tag,
                           std::string detail) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{time, pe, std::move(tag), std::move(detail)});
}

std::size_t TraceRecorder::countTag(const std::string& tag) const {
  std::size_t n = 0;
  for (const auto& ev : events_)
    if (ev.tag == tag) ++n;
  return n;
}

std::string TraceRecorder::toString() const {
  std::ostringstream out;
  for (const auto& ev : events_) {
    out << "t=" << ev.time << " pe=" << ev.pe << " " << ev.tag;
    if (!ev.detail.empty()) out << " " << ev.detail;
    out << "\n";
  }
  return out.str();
}

}  // namespace ckd::sim
