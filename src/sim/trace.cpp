#include "sim/trace.hpp"

#include <bit>
#include <sstream>

#include "util/require.hpp"

namespace ckd::sim {

std::string_view layerName(Layer layer) {
  switch (layer) {
    case Layer::kScheduler: return "scheduler";
    case Layer::kTransport: return "transport";
    case Layer::kFabric: return "fabric";
    case Layer::kCkDirect: return "ckdirect";
    case Layer::kApp: return "app";
    case Layer::kCount: break;
  }
  return "?";
}

std::string_view traceTagName(TraceTag tag) {
  switch (tag) {
    case TraceTag::kSchedPump: return "sched.pump";
    case TraceTag::kSchedDeliver: return "sched.deliver";
    case TraceTag::kSchedSystemWork: return "sched.syswork";
    case TraceTag::kXportEager: return "xport.eager";
    case TraceTag::kXportRtsSend: return "xport.rts_send";
    case TraceTag::kXportRtsRecv: return "xport.rts_recv";
    case TraceTag::kXportAck: return "xport.ack";
    case TraceTag::kXportRdmaDelivered: return "xport.rdma_delivered";
    case TraceTag::kXportBgpSend: return "xport.bgp_send";
    case TraceTag::kFabricSubmit: return "fabric.submit";
    case TraceTag::kFabricDeliver: return "fabric.deliver";
    case TraceTag::kDirectPut: return "direct.put";
    case TraceTag::kDirectPollScan: return "direct.poll_scan";
    case TraceTag::kDirectSentinelHit: return "direct.sentinel_hit";
    case TraceTag::kDirectCallback: return "direct.callback";
    case TraceTag::kDirectReady: return "direct.ready";
    case TraceTag::kFaultDrop: return "fault.drop";
    case TraceTag::kFaultDelay: return "fault.delay";
    case TraceTag::kFaultDuplicate: return "fault.duplicate";
    case TraceTag::kFaultCorrupt: return "fault.corrupt";
    case TraceTag::kFaultQpError: return "fault.qp_error";
    case TraceTag::kFaultRegionInvalid: return "fault.region_invalid";
    case TraceTag::kRelRetransmit: return "rel.retransmit";
    case TraceTag::kRelAck: return "rel.ack";
    case TraceTag::kRelDupDrop: return "rel.dup_drop";
    case TraceTag::kRelOooDrop: return "rel.ooo_drop";
    case TraceTag::kRelError: return "rel.error";
    case TraceTag::kRelStaleNak: return "rel.stale_nak";
    case TraceTag::kFaultPeCrash: return "fault.pe_crash";
    case TraceTag::kCrashDetect: return "crash.detect";
    case TraceTag::kCkptTaken: return "ckpt.taken";
    case TraceTag::kCkptRestore: return "ckpt.restore";
    case TraceTag::kStaleEpochDrop: return "sched.stale_epoch_drop";
    case TraceTag::kSchedPumpDone: return "sched.pump_done";
    case TraceTag::kPgasPut: return "pgas.put";
    case TraceTag::kPgasGet: return "pgas.get";
    case TraceTag::kPgasAtomic: return "pgas.atomic";
    case TraceTag::kPgasComplete: return "pgas.complete";
    case TraceTag::kPgasBarrier: return "pgas.barrier";
    case TraceTag::kPgasFence: return "pgas.fence";
    case TraceTag::kMpiPut: return "mpi.put";
    case TraceTag::kMpiPutComplete: return "mpi.put_complete";
    case TraceTag::kMpiRdmaEager: return "mpi.rdma.eager";
    case TraceTag::kMpiRdmaRndv: return "mpi.rdma.rndv";
    case TraceTag::kMpiRdmaRecv: return "mpi.rdma.recv";
    case TraceTag::kMpiRdmaCredit: return "mpi.rdma.credit";
    case TraceTag::kMpiRdmaStall: return "mpi.rdma.stall";
    case TraceTag::kLifeScaleOut: return "lifecycle.scale_out";
    case TraceTag::kLifeJoin: return "lifecycle.join";
    case TraceTag::kLifeDrain: return "lifecycle.drain";
    case TraceTag::kLifeHandoff: return "lifecycle.handoff";
    case TraceTag::kLifeRetire: return "lifecycle.retire";
    case TraceTag::kLifeAbort: return "lifecycle.abort";
    case TraceTag::kLifeForward: return "lifecycle.forward";
    case TraceTag::kCount: break;
  }
  return "?";
}

TraceTag traceTagFromName(std::string_view name) {
  for (std::size_t i = 0; i < kTraceTagCount; ++i) {
    const TraceTag tag = static_cast<TraceTag>(i);
    if (traceTagName(tag) == name) return tag;
  }
  return TraceTag::kCount;
}

void TraceRecorder::enable(bool on) {
  enabled_ = on;
  if (!on && ring_.empty()) {
    // Release storage so a disabled recorder holds no heap.
    ring_.shrink_to_fit();
  }
}

void TraceRecorder::setCapacity(std::size_t cap) {
  CKD_REQUIRE(cap > 0, "trace ring capacity must be positive");
  if (cap == capacity_) return;
  if (!ring_.empty()) {
    // Mid-run resize: linearize oldest-first and keep the newest `cap`
    // events. head_ returns to 0 so appends keep filling from the back until
    // the new capacity is reached, then overwrite from the front (oldest).
    std::vector<TraceEvent> kept = snapshot();
    const std::size_t keep = std::min(cap, kept.size());
    std::vector<TraceEvent> next;
    next.reserve(cap);
    next.assign(kept.end() - static_cast<std::ptrdiff_t>(keep), kept.end());
    ring_.swap(next);
    head_ = 0;
  }
  capacity_ = cap;
}

void TraceRecorder::append(Time time, int pe, TraceTag tag, double value,
                           std::uint64_t id, std::uint64_t parent,
                           SpanPhase phase, std::int32_t aux) {
  ++recorded_;
  TraceEvent ev;
  ev.time = time;
  ev.id = id;
  ev.parent = parent;
  ev.value = value;
  ev.pe = pe;
  ev.aux = aux;
  ev.tag = tag;
  ev.phase = phase;
  if (ring_.size() < capacity_) {
    if (ring_.capacity() == 0) ring_.reserve(capacity_);
    ring_.push_back(ev);
    return;
  }
  ring_[head_] = ev;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest-first: once full, head_ points at the oldest retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

Time TraceRecorder::totalLayerTime() const {
  Time total = kTimeZero;
  for (Time t : layerTime_) total += t;
  return total;
}

void TraceRecorder::observePollQueue(std::size_t len) {
  const std::size_t bucket =
      len == 0 ? 0
               : std::min<std::size_t>(std::bit_width(len), kPollHistBuckets - 1);
  ++pollHist_[bucket];
}

void TraceRecorder::clear() {
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  recorded_ = 0;
  nextId_ = 0;
  context_ = 0;
  counts_.fill(0);
  layerTime_.fill(kTimeZero);
  pollHist_.fill(0);
  rendezvousRtt_.clear();
  deliveryAttempts_.clear();
}

std::string TraceRecorder::toString() const {
  std::ostringstream out;
  for (const TraceEvent& ev : snapshot()) {
    out << "t=" << ev.time << " pe=" << ev.pe << " " << traceTagName(ev.tag)
        << " v=" << ev.value;
    if (ev.id != 0) {
      out << " id=" << ev.id;
      if (ev.parent != 0) out << " parent=" << ev.parent;
      if (ev.phase == SpanPhase::kBegin) out << " ph=b";
      if (ev.phase == SpanPhase::kEnd) out << " ph=e";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace ckd::sim
