#include "sim/causal.hpp"

#include <algorithm>
#include <unordered_map>

namespace ckd::sim {

namespace {

bool isOpeningTag(TraceTag tag) {
  return tag == TraceTag::kDirectPut || tag == TraceTag::kXportEager ||
         tag == TraceTag::kXportRtsSend || tag == TraceTag::kXportBgpSend ||
         tag == TraceTag::kPgasPut || tag == TraceTag::kPgasGet ||
         tag == TraceTag::kPgasAtomic || tag == TraceTag::kMpiPut ||
         tag == TraceTag::kMpiRdmaEager || tag == TraceTag::kMpiRdmaRndv;
}

bool isClosingTag(TraceTag tag) {
  return tag == TraceTag::kSchedDeliver || tag == TraceTag::kDirectCallback ||
         tag == TraceTag::kPgasComplete || tag == TraceTag::kMpiPutComplete ||
         tag == TraceTag::kMpiRdmaRecv;
}

bool isLandingTag(TraceTag tag) {
  return tag == TraceTag::kFabricDeliver ||
         tag == TraceTag::kXportRdmaDelivered;
}

}  // namespace

LayerBreakdown CausalChain::breakdown() const {
  LayerBreakdown b;
  if (!complete || start < 0.0) return b;
  // Telescoping milestones: a missing milestone folds onto its predecessor
  // so its segment reads 0 and the later segments stay attributable.
  const double m0 = start;
  const double m1 = submit >= 0.0 ? submit : m0;
  const double m2 = land >= 0.0 ? land : m1;
  const double m3 = detect >= 0.0 ? detect : m2;
  b.total_us = end - m0;
  b.queue_us = m1 - m0;
  b.wire_us = m2 - m1;
  b.poll_us = m3 - m2;
  // Remainder, NOT end - m3: (a-b)+(b-c) != (a-c) in floating point, and the
  // contract is that the four segments sum to total_us exactly.
  b.handler_us = b.total_us - b.queue_us - b.wire_us - b.poll_us;
  return b;
}

CausalGraph::CausalGraph(std::span<const TraceEvent> events) {
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(events.size() / 4 + 1);
  for (const TraceEvent& ev : events) {
    if (ev.pe >= 0 && ev.tag == TraceTag::kSchedPumpDone) {
      if (static_cast<std::size_t>(ev.pe) >= peBusy_.size())
        peBusy_.resize(static_cast<std::size_t>(ev.pe) + 1, 0.0);
      peBusy_[static_cast<std::size_t>(ev.pe)] += ev.value;
    }
    if (ev.id == 0) continue;

    auto [it, inserted] = index.try_emplace(ev.id, chains_.size());
    if (inserted) {
      chains_.emplace_back();
      chains_.back().id = ev.id;
    }
    CausalChain& c = chains_[it->second];
    if (ev.parent != 0) c.parent = ev.parent;

    if (isOpeningTag(ev.tag)) {
      // Re-issues of the same logical put / retransmit-driven re-records
      // keep the earliest issue time: the chain started when the first
      // attempt did.
      if (c.start < 0.0 || ev.time < c.start) c.start = ev.time;
      c.kind = ev.tag;
      c.srcPe = ev.pe;
      c.bytes = ev.value;
      ++c.attempts;
      if (ev.aux >= 0) c.channel = ev.aux;
      continue;
    }
    switch (ev.tag) {
      case TraceTag::kFabricSubmit:
        if (c.submit < 0.0 || ev.time < c.submit) c.submit = ev.time;
        break;
      case TraceTag::kRelRetransmit:
        ++c.attempts;
        break;
      case TraceTag::kDirectSentinelHit:
        if (ev.time > c.detect) c.detect = ev.time;
        if (ev.aux >= 0) c.channel = ev.aux;
        break;
      default:
        if (isClosingTag(ev.tag) && ev.phase == SpanPhase::kEnd) {
          if (ev.time > c.end) c.end = ev.time;
          c.endTag = ev.tag;
          c.dstPe = ev.pe;
          c.complete = true;
          if (ev.aux >= 0) c.channel = ev.aux;
        } else if (isLandingTag(ev.tag)) {
          if (ev.time > c.land) c.land = ev.time;
        }
        break;
    }
    // A chain whose opening span was lost (ring overwrite, or a chain that
    // never leaves the node) still needs a start for breakdown purposes:
    // fall back to its earliest retained event.
    if (c.kind == TraceTag::kCount && (c.start < 0.0 || ev.time < c.start))
      c.start = ev.time;
  }
  std::sort(chains_.begin(), chains_.end(),
            [](const CausalChain& a, const CausalChain& b) {
              return a.id < b.id;
            });
}

const CausalChain* CausalGraph::chain(std::uint64_t id) const {
  const auto it = std::lower_bound(
      chains_.begin(), chains_.end(), id,
      [](const CausalChain& c, std::uint64_t key) { return c.id < key; });
  return (it != chains_.end() && it->id == id) ? &*it : nullptr;
}

std::vector<CausalChain> CausalGraph::criticalPath() const {
  const CausalChain* best = nullptr;
  for (const CausalChain& c : chains_) {
    if (!c.complete) continue;
    if (best == nullptr || c.end > best->end ||
        (c.end == best->end && c.id > best->id))
      best = &c;
  }
  std::vector<CausalChain> path;
  const CausalChain* cur = best;
  while (cur != nullptr) {
    path.push_back(*cur);
    if (cur->parent == 0 || cur->parent >= cur->id) break;  // root (or bogus)
    cur = chain(cur->parent);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Time CausalGraph::criticalPathSpan() const {
  const std::vector<CausalChain> path = criticalPath();
  if (path.empty()) return 0.0;
  const Time rootStart = path.front().start >= 0.0 ? path.front().start : 0.0;
  return path.back().end - rootStart;
}

std::vector<CausalChain> CausalGraph::slowestChains(std::size_t k) const {
  std::vector<CausalChain> done;
  for (const CausalChain& c : chains_)
    if (c.complete) done.push_back(c);
  std::sort(done.begin(), done.end(),
            [](const CausalChain& a, const CausalChain& b) {
              const double ta = a.breakdown().total_us;
              const double tb = b.breakdown().total_us;
              if (ta != tb) return ta > tb;
              return a.id < b.id;
            });
  if (done.size() > k) done.resize(k);
  return done;
}

LatencySummary CausalGraph::summarize(bool puts) const {
  LatencySummary out;
  double q = 0.0, w = 0.0, p = 0.0, t = 0.0;
  for (const CausalChain& c : chains_) {
    if (!c.complete) continue;
    const bool isPut = c.kind == TraceTag::kDirectPut;
    if (puts != isPut) continue;
    if (!puts && (c.kind == TraceTag::kCount ||
                  c.endTag != TraceTag::kSchedDeliver))
      continue;  // self-sends / partial chains carry no opening span
    const LayerBreakdown b = c.breakdown();
    q += b.queue_us;
    w += b.wire_us;
    p += b.poll_us;
    t += b.total_us;
    ++out.count;
  }
  if (out.count == 0) return out;
  const double n = static_cast<double>(out.count);
  out.mean.queue_us = q / n;
  out.mean.wire_us = w / n;
  out.mean.poll_us = p / n;
  out.mean.total_us = t / n;
  // Remainder again, so the mean components also sum exactly.
  out.mean.handler_us = out.mean.total_us - out.mean.queue_us -
                        out.mean.wire_us - out.mean.poll_us;
  return out;
}

LatencySummary CausalGraph::putLatency() const { return summarize(true); }

LatencySummary CausalGraph::messageLatency() const { return summarize(false); }

LatencySummary CausalGraph::latencyByKind(TraceTag kind) const {
  LatencySummary out;
  double q = 0.0, w = 0.0, p = 0.0, t = 0.0;
  for (const CausalChain& c : chains_) {
    if (!c.complete || c.kind != kind) continue;
    const LayerBreakdown b = c.breakdown();
    q += b.queue_us;
    w += b.wire_us;
    p += b.poll_us;
    t += b.total_us;
    ++out.count;
  }
  if (out.count == 0) return out;
  const double n = static_cast<double>(out.count);
  out.mean.queue_us = q / n;
  out.mean.wire_us = w / n;
  out.mean.poll_us = p / n;
  out.mean.total_us = t / n;
  out.mean.handler_us = out.mean.total_us - out.mean.queue_us -
                        out.mean.wire_us - out.mean.poll_us;
  return out;
}

}  // namespace ckd::sim
