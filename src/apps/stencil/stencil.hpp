#pragma once
// §4.1 stencil computation: 7-point Jacobi over a 3-D domain partitioned
// into cuboids (one per chare), halo faces exchanged every iteration, a
// global barrier per iteration ("only one CkDirect transaction in flight").
//
// Two communication back ends share all other code:
//   Mode::kMessages — ghost faces travel as Charm++ messages (MSG);
//   Mode::kCkDirect — ghost faces travel over CkDirect channels (CKD),
//     set up once: each chare creates a receive handle per incoming face
//     and ships it to the producing neighbor inside a setup message.
//
// Fairness note (paper §4.1): both versions avoid a receive-side copy. The
// MSG implementation here does memcpy the payload into the face buffer so
// the kernels can be identical, but charges zero modeled time for it; the
// measured difference between modes is therefore message-wrapping,
// scheduling, and protocol cost only — exactly the paper's comparison.
//
// `real_compute` switches between actually running the Jacobi kernel
// (correctness tests, examples; small domains) and charging its modeled
// cost only (paper-scale benches; the 1024x1024x512 domain would need 4 GB
// per copy).

#include <array>
#include <cstdint>
#include <vector>

#include "charm/proxy.hpp"
#include "charm/runtime.hpp"

namespace ckd::apps::stencil {

enum class Mode { kMessages, kCkDirect };

struct Config {
  std::int64_t gx = 64, gy = 64, gz = 32;  ///< global domain (elements)
  int cx = 2, cy = 2, cz = 2;              ///< chare grid
  int iterations = 10;
  Mode mode = Mode::kMessages;
  bool real_compute = true;
  /// CkDirect mode: exchange faces between co-located chares with ordinary
  /// local messages instead of channels. A local put costs an extra face
  /// memcpy, while a local message is a pointer handoff plus scheduling —
  /// for faces larger than a few KB the message wins, so production code
  /// would restrict channels to remote neighbors. Kept as a switch so the
  /// ablation bench can quantify the trade-off.
  bool local_via_messages = true;
  /// Modeled cost of updating one element (charged per iteration whether or
  /// not the kernel actually runs).
  double compute_per_element_us = 1.0e-3;

  int numChares() const { return cx * cy * cz; }
};

/// Pick a power-of-two chare grid of `chares` cuboids that divides the
/// domain evenly and keeps blocks near-cubic.
void chooseChareGrid(std::int64_t gx, std::int64_t gy, std::int64_t gz,
                     int chares, int& cx, int& cy, int& cz);

struct Result {
  double total_us = 0.0;
  double avg_iteration_us = 0.0;
  std::uint64_t messages_sent = 0;
};

class StencilChare;

/// Owns the chare array and drives the iterations to completion.
class StencilApp {
 public:
  StencilApp(charm::Runtime& rts, Config cfg);

  /// Run cfg.iterations to quiescence and report timing.
  Result execute();

  /// Assemble the full field (for correctness checks). Requires
  /// real_compute.
  std::vector<double> gatherField() const;

  const Config& config() const { return cfg_; }

 private:
  charm::Runtime& rts_;
  Config cfg_;
  charm::ArrayProxy<StencilChare> proxy_;
  charm::EntryId epSetup_ = -1;
  charm::EntryId epStart_ = -1;
};

/// Single-array reference Jacobi with identical boundary conditions and
/// update order semantics; used to validate both parallel modes.
std::vector<double> serialReference(const Config& cfg);

/// The initial condition both the chares and the reference use.
double initialValue(std::int64_t x, std::int64_t y, std::int64_t z);

}  // namespace ckd::apps::stencil
