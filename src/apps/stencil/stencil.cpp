#include "apps/stencil/stencil.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

#include "charm/checkpoint.hpp"
#include "charm/maps.hpp"
#include "charm/marshal.hpp"
#include "charm/pup.hpp"
#include "ckdirect/ckdirect.hpp"
#include "util/require.hpp"

namespace ckd::apps::stencil {

namespace {

// Sentinel pattern for the CkDirect channels: a quiet-NaN payload that a
// Jacobi average can never produce.
constexpr std::uint64_t kOob = 0x7FF8DEADBEEF0001ull;

// Face directions: -x, +x, -y, +y, -z, +z.
constexpr int kDirs = 6;
constexpr int opposite(int dir) { return dir ^ 1; }

}  // namespace

double initialValue(std::int64_t x, std::int64_t y, std::int64_t z) {
  return static_cast<double>((x * 31 + y * 17 + z * 7) % 101) / 101.0;
}

void chooseChareGrid(std::int64_t gx, std::int64_t gy, std::int64_t gz,
                     int chares, int& cx, int& cy, int& cz) {
  CKD_REQUIRE(chares > 0 && (chares & (chares - 1)) == 0,
              "chare count must be a power of two");
  cx = cy = cz = 1;
  int remaining = chares;
  while (remaining > 1) {
    // Split the dimension whose blocks are currently largest (and still
    // evenly divisible).
    const double bx = static_cast<double>(gx) / cx;
    const double by = static_cast<double>(gy) / cy;
    const double bz = static_cast<double>(gz) / cz;
    int* chosen = nullptr;
    double best = -1.0;
    if (gx % (static_cast<std::int64_t>(cx) * 2) == 0 && bx > best) {
      best = bx;
      chosen = &cx;
    }
    if (gy % (static_cast<std::int64_t>(cy) * 2) == 0 && by > best) {
      best = by;
      chosen = &cy;
    }
    if (gz % (static_cast<std::int64_t>(cz) * 2) == 0 && bz > best) {
      best = bz;
      chosen = &cz;
    }
    CKD_REQUIRE(chosen != nullptr,
                "domain cannot be split into this many chares");
    *chosen *= 2;
    remaining /= 2;
  }
}

class StencilChare final : public charm::Chare {
 public:
  // Wiring (assigned after construction by StencilApp).
  Config cfg;
  charm::ArrayProxy<StencilChare> proxy;
  charm::EntryId epSetup = -1, epHandle = -1, epStart = -1, epGhost = -1,
                 epBarrier = -1, epSetupDone = -1, epCompute = -1;

  void initGeometry(std::int64_t index) {
    ci = static_cast<int>(index % cfg.cx);
    cj = static_cast<int>((index / cfg.cx) % cfg.cy);
    ck = static_cast<int>(index / (static_cast<std::int64_t>(cfg.cx) * cfg.cy));
    bx = cfg.gx / cfg.cx;
    by = cfg.gy / cfg.cy;
    bz = cfg.gz / cfg.cz;
    for (int d = 0; d < kDirs; ++d) {
      neighbor[d] = neighborIndex(d);
      if (neighbor[d] >= 0) ++neighborCount;
      const std::size_t n = faceElems(d);
      sendFace[d].assign(n, 0.0);
      recvFace[d].assign(n, 0.0);
    }
    if (cfg.real_compute) {
      block.resize(static_cast<std::size_t>(bx * by * bz));
      next.resize(block.size());
      for (std::int64_t z = 0; z < bz; ++z)
        for (std::int64_t y = 0; y < by; ++y)
          for (std::int64_t x = 0; x < bx; ++x)
            block[blockIdx(x, y, z)] =
                initialValue(ci * bx + x, cj * by + y, ck * bz + z);
    }
  }

  // --- entry methods ---------------------------------------------------------

  bool usesChannel(int d) const {
    if (neighbor[d] < 0) return false;
    if (!cfg.local_via_messages) return true;
    return rts().homePe(arrayId(), neighbor[d]) != myPe();
  }

  int remoteNeighborCount() const {
    int n = 0;
    for (int d = 0; d < kDirs; ++d)
      if (usesChannel(d)) ++n;
    return n;
  }

  /// CkDirect setup: create a receive handle per incoming remote face and
  /// ship it to the producing neighbor. Co-located neighbors keep using
  /// plain local messages (see Config::local_via_messages).
  void setup(charm::Message&) {
    for (int d = 0; d < kDirs; ++d) {
      if (!usesChannel(d)) continue;
      recvHandle[d] = direct::createHandle(
          rts(), myPe(), recvFace[d].data(), recvFace[d].size() * sizeof(double),
          kOob, [this, d]() { onFaceArrived(d); });
      charm::Packer pk;
      pk.put<std::int32_t>(opposite(d));
      pk.put<direct::Handle>(recvHandle[d]);
      proxy[neighbor[d]].send(epHandle, pk);
    }
    handlesCreated = true;
    checkSetupDone();
  }

  /// A neighbor's receive handle for the face I produce in `dir`.
  void takeHandle(charm::Message& msg) {
    charm::Unpacker up(msg.payload());
    const int dir = up.get<std::int32_t>();
    sendHandle[dir] = up.get<direct::Handle>();
    direct::assocLocal(sendHandle[dir], myPe(), sendFace[dir].data());
    ++handlesReceived;
    checkSetupDone();
  }

  void setupDone(charm::Message&) {}  // setup barrier sink (quiescence)

  void start(charm::Message&) { beginIteration(); }

  /// MSG mode: a ghost face arrived as a message. The copy below keeps the
  /// kernels identical across modes and is charged zero time (§4.1: both
  /// versions avoid receive-side copying; see stencil.hpp).
  void ghost(charm::Message& msg) {
    charm::Unpacker up(msg.payload());
    const int dir = up.get<std::int32_t>();
    const auto values = up.getSpan<double>();
    CKD_REQUIRE(values.size() == recvFace[dir].size(), "ghost face size");
    std::memcpy(recvFace[dir].data(), values.data(), values.size_bytes());
    onFaceArrived(dir);
  }

  void barrierDone(charm::Message&) {
    if (iterationsDone < cfg.iterations) beginIteration();
  }

  /// CkDirect mode: the arrival callbacks only count; the compute runs as a
  /// self-enqueued entry method (§5.1's pattern — callbacks are plain
  /// function calls and must not run long work that would delay the
  /// scheduler mid-phase).
  void computeEntry(charm::Message&) { computePhase(); }

  /// Checkpoint/restore image. Geometry, entry ids, and CkDirect handles
  /// are construction-time constants (handle ids stay valid across a
  /// restore; the manager re-registers the underlying memory itself), so
  /// only the field data and iteration progress are saved. The face
  /// vectors are restored in place — their data() addresses are what the
  /// re-registration handshake keys off.
  void pup(charm::Puper& p) override {
    p | block;
    p | next;
    for (int d = 0; d < kDirs; ++d) p | sendFace[d];
    for (int d = 0; d < kDirs; ++d) p | recvFace[d];
    p | arrivals;
    p | faceSent;
    p | iterationsDone;
    p | handlesCreated;
    p | handlesReceived;
  }

  // --- iteration machinery -----------------------------------------------------

  void beginIteration() {
    packFaces();
    for (int d = 0; d < kDirs; ++d) {
      if (neighbor[d] < 0) continue;
      if (cfg.mode == Mode::kCkDirect && usesChannel(d)) {
        direct::put(sendHandle[d]);
      } else {
        charm::Packer pk;
        pk.put<std::int32_t>(opposite(d));
        pk.putSpan<double>(sendFace[d]);
        proxy[neighbor[d]].send(epGhost, pk);
      }
    }
    faceSent = true;
    maybeCompute();
  }

  void onFaceArrived(int /*dir*/) {
    ++arrivals;
    maybeCompute();
  }

  void maybeCompute() {
    if (!faceSent || arrivals < neighborCount) return;
    arrivals = 0;
    faceSent = false;
    if (cfg.mode == Mode::kCkDirect) {
      // Triggered from a CkDirect callback: hand the heavy work to the
      // scheduler instead of running it in the callback.
      proxy[thisIndex()].send(epCompute);
    } else {
      computePhase();  // already inside an entry method (the ghost handler)
    }
  }

  void computePhase() {
    charge(cfg.compute_per_element_us * static_cast<double>(bx * by * bz));
    if (cfg.real_compute) runKernel();
    if (cfg.mode == Mode::kCkDirect) {
      // Done with the ghost data: re-arm every channel before the barrier,
      // so no put of the next iteration can land on an unmarked channel.
      for (int d = 0; d < kDirs; ++d)
        if (usesChannel(d)) direct::ready(recvHandle[d]);
    }
    ++iterationsDone;
    barrier(epBarrier);
  }

  void packFaces() {
    if (cfg.real_compute) {
      for (int d = 0; d < kDirs; ++d)
        if (neighbor[d] >= 0) extractFace(d);
    } else {
      // Bench mode: no interior data; stamp the face so the CkDirect
      // sentinel (last 8 bytes) always changes.
      for (int d = 0; d < kDirs; ++d)
        if (neighbor[d] >= 0)
          sendFace[d].back() = static_cast<double>(iterationsDone + 1);
    }
  }

  // --- kernel -------------------------------------------------------------------

  std::size_t blockIdx(std::int64_t x, std::int64_t y, std::int64_t z) const {
    return static_cast<std::size_t>(x + bx * (y + by * z));
  }

  /// Neighbor-aware read: inside the block, from a ghost face, or the
  /// domain boundary condition (0).
  double value(std::int64_t x, std::int64_t y, std::int64_t z) const {
    if (x < 0) return neighbor[0] >= 0 ? recvFace[0][faceIdxX(y, z)] : 0.0;
    if (x >= bx) return neighbor[1] >= 0 ? recvFace[1][faceIdxX(y, z)] : 0.0;
    if (y < 0) return neighbor[2] >= 0 ? recvFace[2][faceIdxY(x, z)] : 0.0;
    if (y >= by) return neighbor[3] >= 0 ? recvFace[3][faceIdxY(x, z)] : 0.0;
    if (z < 0) return neighbor[4] >= 0 ? recvFace[4][faceIdxZ(x, y)] : 0.0;
    if (z >= bz) return neighbor[5] >= 0 ? recvFace[5][faceIdxZ(x, y)] : 0.0;
    return block[blockIdx(x, y, z)];
  }

  void runKernel() {
    for (std::int64_t z = 0; z < bz; ++z)
      for (std::int64_t y = 0; y < by; ++y)
        for (std::int64_t x = 0; x < bx; ++x)
          next[blockIdx(x, y, z)] =
              (value(x - 1, y, z) + value(x + 1, y, z) + value(x, y - 1, z) +
               value(x, y + 1, z) + value(x, y, z - 1) + value(x, y, z + 1)) /
              6.0;
    block.swap(next);
  }

  void extractFace(int d) {
    std::vector<double>& face = sendFace[d];
    std::size_t i = 0;
    switch (d) {
      case 0:
      case 1: {
        const std::int64_t x = (d == 0) ? 0 : bx - 1;
        for (std::int64_t z = 0; z < bz; ++z)
          for (std::int64_t y = 0; y < by; ++y) face[i++] = block[blockIdx(x, y, z)];
        break;
      }
      case 2:
      case 3: {
        const std::int64_t y = (d == 2) ? 0 : by - 1;
        for (std::int64_t z = 0; z < bz; ++z)
          for (std::int64_t x = 0; x < bx; ++x) face[i++] = block[blockIdx(x, y, z)];
        break;
      }
      default: {
        const std::int64_t z = (d == 4) ? 0 : bz - 1;
        for (std::int64_t y = 0; y < by; ++y)
          for (std::int64_t x = 0; x < bx; ++x) face[i++] = block[blockIdx(x, y, z)];
        break;
      }
    }
  }

  std::size_t faceIdxX(std::int64_t y, std::int64_t z) const {
    return static_cast<std::size_t>(y + by * z);
  }
  std::size_t faceIdxY(std::int64_t x, std::int64_t z) const {
    return static_cast<std::size_t>(x + bx * z);
  }
  std::size_t faceIdxZ(std::int64_t x, std::int64_t y) const {
    return static_cast<std::size_t>(x + bx * y);
  }

  std::size_t faceElems(int d) const {
    if (d < 2) return static_cast<std::size_t>(by * bz);
    if (d < 4) return static_cast<std::size_t>(bx * bz);
    return static_cast<std::size_t>(bx * by);
  }

  std::int64_t neighborIndex(int d) const {
    int ni = ci, nj = cj, nk = ck;
    switch (d) {
      case 0: --ni; break;
      case 1: ++ni; break;
      case 2: --nj; break;
      case 3: ++nj; break;
      case 4: --nk; break;
      case 5: ++nk; break;
    }
    if (ni < 0 || ni >= cfg.cx || nj < 0 || nj >= cfg.cy || nk < 0 ||
        nk >= cfg.cz)
      return -1;
    return ni + static_cast<std::int64_t>(cfg.cx) * (nj + static_cast<std::int64_t>(cfg.cy) * nk);
  }

  void checkSetupDone() {
    if (handlesCreated && handlesReceived == remoteNeighborCount())
      barrier(epSetupDone);
  }

  // Geometry.
  int ci = 0, cj = 0, ck = 0;
  std::int64_t bx = 0, by = 0, bz = 0;
  std::array<std::int64_t, kDirs> neighbor{};
  int neighborCount = 0;

  // Field data.
  std::vector<double> block, next;
  std::array<std::vector<double>, kDirs> sendFace, recvFace;

  // CkDirect channels.
  std::array<direct::Handle, kDirs> recvHandle{}, sendHandle{};
  bool handlesCreated = false;
  int handlesReceived = 0;

  // Iteration state.
  int arrivals = 0;
  bool faceSent = false;
  int iterationsDone = 0;
};

StencilApp::StencilApp(charm::Runtime& rts, Config cfg)
    : rts_(rts), cfg_(cfg) {
  CKD_REQUIRE(cfg.gx % cfg.cx == 0 && cfg.gy % cfg.cy == 0 &&
                  cfg.gz % cfg.cz == 0,
              "chare grid must divide the domain evenly");
  const std::int64_t count = cfg.numChares();
  proxy_ = charm::makeArray<StencilChare>(
      rts_, "stencil", count, charm::blockMap(count, rts_.numPes()),
      [](std::int64_t) { return std::make_unique<StencilChare>(); });
  const charm::EntryId epSetup =
      proxy_.registerEntry("setup", &StencilChare::setup);
  const charm::EntryId epHandle =
      proxy_.registerEntry("takeHandle", &StencilChare::takeHandle);
  const charm::EntryId epSetupDone =
      proxy_.registerEntry("setupDone", &StencilChare::setupDone);
  const charm::EntryId epStart =
      proxy_.registerEntry("start", &StencilChare::start);
  const charm::EntryId epGhost =
      proxy_.registerEntry("ghost", &StencilChare::ghost);
  const charm::EntryId epBarrier =
      proxy_.registerEntry("barrierDone", &StencilChare::barrierDone);
  const charm::EntryId epCompute =
      proxy_.registerEntry("compute", &StencilChare::computeEntry);
  for (std::int64_t i = 0; i < count; ++i) {
    StencilChare& el = proxy_[i].local();
    el.cfg = cfg_;
    el.proxy = proxy_;
    el.epSetup = epSetup;
    el.epHandle = epHandle;
    el.epSetupDone = epSetupDone;
    el.epStart = epStart;
    el.epGhost = epGhost;
    el.epBarrier = epBarrier;
    el.epCompute = epCompute;
    el.initGeometry(i);
  }
  epSetup_ = epSetup;
  epStart_ = epStart;
}

Result StencilApp::execute() {
  if (cfg_.mode == Mode::kCkDirect) {
    proxy_.broadcast(epSetup_);
    rts_.run();  // quiesces once every chare passed the setup barrier
  }
  // Fail-stop runs: arm crash injection only now. The setup phase is not a
  // resumable cut (the start broadcast arrives after it); the first post-arm
  // iteration barrier provides the genesis checkpoint restores roll back to.
  if (rts_.checkpoints() != nullptr && !rts_.checkpoints()->armed())
    rts_.checkpoints()->arm();
  const sim::Time t0 = rts_.now();
  const std::uint64_t messagesBefore = rts_.messagesSent();
  proxy_.broadcast(epStart_);
  rts_.run();
  Result result;
  result.total_us = rts_.now() - t0;
  result.avg_iteration_us = result.total_us / cfg_.iterations;
  result.messages_sent = rts_.messagesSent() - messagesBefore;
  return result;
}

std::vector<double> StencilApp::gatherField() const {
  CKD_REQUIRE(cfg_.real_compute, "gatherField requires real_compute");
  std::vector<double> field(
      static_cast<std::size_t>(cfg_.gx * cfg_.gy * cfg_.gz));
  for (std::int64_t i = 0; i < proxy_.size(); ++i) {
    const StencilChare& el = proxy_[i].local();
    for (std::int64_t z = 0; z < el.bz; ++z)
      for (std::int64_t y = 0; y < el.by; ++y)
        for (std::int64_t x = 0; x < el.bx; ++x) {
          const std::int64_t gx = el.ci * el.bx + x;
          const std::int64_t gy = el.cj * el.by + y;
          const std::int64_t gz = el.ck * el.bz + z;
          field[static_cast<std::size_t>(gx + cfg_.gx * (gy + cfg_.gy * gz))] =
              el.block[el.blockIdx(x, y, z)];
        }
  }
  return field;
}

std::vector<double> serialReference(const Config& cfg) {
  const std::int64_t gx = cfg.gx, gy = cfg.gy, gz = cfg.gz;
  std::vector<double> field(static_cast<std::size_t>(gx * gy * gz));
  std::vector<double> next(field.size());
  auto idx = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
    return static_cast<std::size_t>(x + gx * (y + gy * z));
  };
  for (std::int64_t z = 0; z < gz; ++z)
    for (std::int64_t y = 0; y < gy; ++y)
      for (std::int64_t x = 0; x < gx; ++x)
        field[idx(x, y, z)] = initialValue(x, y, z);
  auto value = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
    if (x < 0 || x >= gx || y < 0 || y >= gy || z < 0 || z >= gz) return 0.0;
    return field[idx(x, y, z)];
  };
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    for (std::int64_t z = 0; z < gz; ++z)
      for (std::int64_t y = 0; y < gy; ++y)
        for (std::int64_t x = 0; x < gx; ++x)
          next[idx(x, y, z)] =
              (value(x - 1, y, z) + value(x + 1, y, z) + value(x, y - 1, z) +
               value(x, y + 1, z) + value(x, y, z - 1) + value(x, y, z + 1)) /
              6.0;
    field.swap(next);
  }
  return field;
}

}  // namespace ckd::apps::stencil
