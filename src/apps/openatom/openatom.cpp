#include "apps/openatom/openatom.hpp"

#include <cstring>
#include <memory>

#include "charm/maps.hpp"
#include "charm/marshal.hpp"
#include "ckdirect/ckdirect.hpp"
#include "util/require.hpp"

namespace ckd::apps::openatom {

namespace {
constexpr std::uint64_t kOob = 0x7FF8C0FFEE000003ull;
}

double pointValue(int state, int plane, int index, int step) {
  return static_cast<double>((state * 13 + plane * 7 + index * 3 + step * 11) %
                             97) /
         97.0;
}

class GsChare;
class PcChare;

/// Coordinates the two arrays' per-step barriers into one global step sync.
class DriverChare final : public charm::Chare {
 public:
  Config cfg;
  charm::ArrayProxy<GsChare> gs;
  charm::ArrayProxy<PcChare> pc;
  charm::EntryId epGsStep = -1, epPcStep = -1;

  int gsDone = 0, pcDone = 0, stepsDone = 0;

  void kick(charm::Message&) { startStep(); }

  void gsPhaseDone(charm::Message&) {
    ++gsDone;
    maybeAdvance();
  }
  void pcPhaseDone(charm::Message&) {
    ++pcDone;
    maybeAdvance();
  }

  void maybeAdvance() {
    if (gsDone == 0 || pcDone == 0) return;
    gsDone = pcDone = 0;
    ++stepsDone;
    if (stepsDone < cfg.steps) startStep();
  }

  void startStep();
};

class GsChare final : public charm::Chare {
 public:
  Config cfg;
  charm::ArrayProxy<GsChare> gs;
  charm::ArrayProxy<PcChare> pc;
  charm::ArrayProxy<DriverChare> driver;
  charm::EntryId epPoints = -1, epBackward = -1, epGsBarrier = -1,
                 epSetupBarrier = -1, epDriverGsDone = -1;

  int s = 0, p = 0;
  std::vector<double> sendPoints;
  std::vector<direct::Handle> handles;  // this GS's outgoing channels
  int handlesExpected = 0;
  int backGot = 0;
  int step = 0;
  double lastChecksum = 0.0;

  void initGeometry(std::int64_t index) {
    s = static_cast<int>(index % cfg.nstates);
    p = static_cast<int>(index / cfg.nstates);
    sendPoints.assign(static_cast<std::size_t>(cfg.points), 0.0);
    handlesExpected = 2 * cfg.stateBlocks;
  }

  std::int64_t pcIndex(int bi, int bj) const {
    return (bi * cfg.stateBlocks + bj) +
           static_cast<std::int64_t>(cfg.stateBlocks) * cfg.stateBlocks * p;
  }

  /// CkDirect setup: a PC shipped us the handle for one of our channels.
  void takeHandle(charm::Message& msg) {
    charm::Unpacker up(msg.payload());
    const auto h = up.get<direct::Handle>();
    direct::assocLocal(h, myPe(), sendPoints.data());
    handles.push_back(h);
    if (static_cast<int>(handles.size()) == handlesExpected)
      barrier(epSetupBarrier);
  }

  void setupBarrier(charm::Message&) {}  // quiescence sink

  void fillPoints() {
    if (cfg.real_compute) {
      for (int idx = 0; idx < cfg.points; ++idx)
        sendPoints[static_cast<std::size_t>(idx)] = pointValue(s, p, idx, step);
    } else {
      sendPoints.back() = static_cast<double>(step + 1);
    }
  }

  void stepStart(charm::Message&) {
    if (!cfg.pc_only)
      charge(cfg.phase1_us_per_point * cfg.points);  // phase 1 (FFT etc.)
    fillPoints();
    const int myBlock = s / cfg.grain();
    if (cfg.mode == Mode::kCkDirect) {
      for (const auto& h : handles) direct::put(h);
    } else {
      for (int b = 0; b < cfg.stateBlocks; ++b) {
        sendPointsMsg(pcIndex(myBlock, b), /*left=*/true);
        sendPointsMsg(pcIndex(b, myBlock), /*left=*/false);
      }
    }
  }

  void sendPointsMsg(std::int64_t dest, bool left);

  /// Corrected points returned by a PC (ordinary message in both modes).
  void backward(charm::Message& msg) {
    charm::Unpacker up(msg.payload());
    const auto values = up.getSpan<double>();
    if (cfg.real_compute && !values.empty()) lastChecksum = values[0];
    if (++backGot < handlesExpected) return;
    backGot = 0;
    if (!cfg.pc_only)
      charge(cfg.phase4_us_per_point * cfg.points);  // phase 4 (remainder)
    ++step;
    barrier(epGsBarrier);
  }

  void gsBarrier(charm::Message&) {
    if (thisIndex() == 0) driver[0].send(epDriverGsDone);
  }
};

class PcChare final : public charm::Chare {
 public:
  Config cfg;
  charm::ArrayProxy<GsChare> gs;
  charm::ArrayProxy<PcChare> pc;
  charm::ArrayProxy<DriverChare> driver;
  charm::EntryId epGsTakeHandle = -1, epGsBackward = -1, epPcBarrier = -1,
                 epDriverPcDone = -1, epPairCalc = -1;

  int bi = 0, bj = 0, p = 0;
  std::vector<double> leftBlock, rightBlock;  // grain x points each
  std::vector<direct::Handle> recvHandles;
  int got = 0;
  int step = 0;

  void initGeometry(std::int64_t index) {
    const int perPlane = cfg.stateBlocks * cfg.stateBlocks;
    const int cell = static_cast<int>(index % perPlane);
    bi = cell / cfg.stateBlocks;
    bj = cell % cfg.stateBlocks;
    p = static_cast<int>(index / perPlane);
    leftBlock.assign(static_cast<std::size_t>(cfg.grain()) * cfg.points, 0.0);
    rightBlock.assign(leftBlock.size(), 0.0);
  }

  double* slotBuffer(bool left, int slot) {
    auto& block = left ? leftBlock : rightBlock;
    return block.data() + static_cast<std::size_t>(slot) * cfg.points;
  }
  std::size_t slotBytes() const {
    return static_cast<std::size_t>(cfg.points) * sizeof(double);
  }

  /// CkDirect setup: create one handle per incoming state row and ship it
  /// to the producing GS.
  void setup(charm::Message&) {
    const int grain = cfg.grain();
    for (int slot = 0; slot < grain; ++slot) {
      createChannel(/*left=*/true, slot, bi * grain + slot);
      createChannel(/*left=*/false, slot, bj * grain + slot);
    }
  }

  void createChannel(bool left, int slot, int state) {
    direct::Handle h =
        direct::createHandle(rts(), myPe(), slotBuffer(left, slot),
                             slotBytes(), kOob, [this]() { onArrival(); });
    recvHandles.push_back(h);
    charm::Packer pk;
    pk.put<direct::Handle>(h);
    gs[state + static_cast<std::int64_t>(cfg.nstates) * p].send(
        epGsTakeHandle, pk);
  }

  /// MSG mode: points arrived as a message — copy into the contiguous
  /// block (the cost the default implementation pays, §5.1).
  void points(charm::Message& msg) {
    charm::Unpacker up(msg.payload());
    const bool left = up.get<std::int32_t>() != 0;
    const auto state = up.get<std::int32_t>();
    const auto values = up.getSpan<double>();
    charge(cfg.copy_per_byte_us * static_cast<double>(values.size_bytes()));
    const int slot = state % cfg.grain();
    std::memcpy(slotBuffer(left, slot), values.data(), values.size_bytes());
    onArrival();
  }

  void onArrival() {
    if (++got < 2 * cfg.grain()) return;
    got = 0;
    if (cfg.mode == Mode::kCkDirect) {
      // §5.1: "the callback enqueues a CHARM++ entry method to perform the
      // multiplication" — accumulation happened without scheduling
      // overhead; the DGEMM pays it once.
      pc[thisIndex()].send(epPairCalc);
      return;
    }
    runPairCalc();
  }

  void pairCalcEntry(charm::Message&) { runPairCalc(); }

  void runPairCalc() {
    const int grain = cfg.grain();
    // DGEMM: S = L * R^T, grain x grain, inner dimension = points.
    charge(cfg.compute_per_flop_us * 2.0 * grain * grain * cfg.points);
    // Return corrected points to every contributor. The first value of
    // each backward payload carries the row checksum for integrity tests.
    for (int half = 0; half < 2; ++half) {
      const bool left = (half == 0);
      const int blockBase = (left ? bi : bj) * grain;
      for (int slot = 0; slot < grain; ++slot) {
        charm::Packer pk;
        std::vector<double> payload(static_cast<std::size_t>(cfg.points), 0.0);
        if (cfg.real_compute) {
          const double* row = slotBuffer(left, slot);
          double sum = 0.0;
          for (int e = 0; e < cfg.points; ++e) sum += row[e];
          payload[0] = sum;
        }
        pk.putSpan<double>(payload);
        gs[(blockBase + slot) + static_cast<std::int64_t>(cfg.nstates) * p]
            .send(epGsBackward, pk);
      }
    }
    if (cfg.mode == Mode::kCkDirect) {
      if (cfg.ready == ReadyStrategy::kNaive) {
        for (const auto& h : recvHandles) direct::ready(h);
      } else {
        for (const auto& h : recvHandles) direct::readyMark(h);
      }
    }
    ++step;
    barrier(epPcBarrier);
  }

  void pcBarrier(charm::Message&) {
    if (thisIndex() == 0) driver[0].send(epDriverPcDone);
  }

  void stepStart(charm::Message&) {
    // The phase using the channels is about to run: resume polling now and
    // only now (§5.2's ReadyPollQ placement). Any data that already landed
    // undetected is noticed immediately; channels whose data was already
    // received (callback fired, not yet re-marked) are left alone by the
    // runtime (§2.1's "if new data has not already been received").
    if (cfg.mode == Mode::kCkDirect &&
        cfg.ready == ReadyStrategy::kMarkDeferPoll)
      for (const auto& h : recvHandles) direct::readyPollQ(h);
  }
};

void DriverChare::startStep() {
  gs.broadcast(epGsStep);
  pc.broadcast(epPcStep);
}

void GsChare::sendPointsMsg(std::int64_t dest, bool left) {
  charm::Packer pk;
  pk.put<std::int32_t>(left ? 1 : 0);
  pk.put<std::int32_t>(s);
  pk.putSpan<double>(sendPoints);
  pc[dest].send(epPoints, pk);
}

OpenAtomApp::OpenAtomApp(charm::Runtime& rts, Config cfg)
    : rts_(rts), cfg_(cfg) {
  CKD_REQUIRE(cfg.nstates % cfg.stateBlocks == 0,
              "state count must divide into state blocks");
  CKD_REQUIRE(cfg.points >= 1, "need at least one point per GS");
  const int pes = rts_.numPes();

  gs_ = charm::makeArray<GsChare>(
      rts_, "gs", cfg.numGs(), charm::blockMap(cfg.numGs(), pes),
      [](std::int64_t) { return std::make_unique<GsChare>(); });
  pc_ = charm::makeArray<PcChare>(
      rts_, "pc", cfg.numPcs(), charm::blockMap(cfg.numPcs(), pes),
      [](std::int64_t) { return std::make_unique<PcChare>(); });
  driver_ = charm::makeArray<DriverChare>(
      rts_, "driver", 1, charm::singlePeMap(0),
      [](std::int64_t) { return std::make_unique<DriverChare>(); });

  // GS entries.
  const auto epGsStep = gs_.registerEntry("stepStart", &GsChare::stepStart);
  const auto epGsTakeHandle =
      gs_.registerEntry("takeHandle", &GsChare::takeHandle);
  const auto epGsBackward = gs_.registerEntry("backward", &GsChare::backward);
  const auto epGsBarrier = gs_.registerEntry("gsBarrier", &GsChare::gsBarrier);
  const auto epGsSetupBarrier =
      gs_.registerEntry("setupBarrier", &GsChare::setupBarrier);
  // PC entries.
  epPcSetup_ = pc_.registerEntry("setup", &PcChare::setup);
  const auto epPcStep = pc_.registerEntry("stepStart", &PcChare::stepStart);
  const auto epPcPoints = pc_.registerEntry("points", &PcChare::points);
  const auto epPcBarrier = pc_.registerEntry("pcBarrier", &PcChare::pcBarrier);
  const auto epPairCalc =
      pc_.registerEntry("pairCalc", &PcChare::pairCalcEntry);
  // Driver entries.
  epDriverKick_ = driver_.registerEntry("kick", &DriverChare::kick);
  const auto epDriverGsDone =
      driver_.registerEntry("gsPhaseDone", &DriverChare::gsPhaseDone);
  const auto epDriverPcDone =
      driver_.registerEntry("pcPhaseDone", &DriverChare::pcPhaseDone);

  for (std::int64_t idx = 0; idx < gs_.size(); ++idx) {
    GsChare& el = gs_[idx].local();
    el.cfg = cfg_;
    el.gs = gs_;
    el.pc = pc_;
    el.driver = driver_;
    el.epPoints = epPcPoints;
    el.epBackward = epGsBackward;
    el.epGsBarrier = epGsBarrier;
    el.epSetupBarrier = epGsSetupBarrier;
    el.epDriverGsDone = epDriverGsDone;
    el.initGeometry(idx);
  }
  for (std::int64_t idx = 0; idx < pc_.size(); ++idx) {
    PcChare& el = pc_[idx].local();
    el.cfg = cfg_;
    el.gs = gs_;
    el.pc = pc_;
    el.driver = driver_;
    el.epGsTakeHandle = epGsTakeHandle;
    el.epGsBackward = epGsBackward;
    el.epPcBarrier = epPcBarrier;
    el.epDriverPcDone = epDriverPcDone;
    el.epPairCalc = epPairCalc;
    el.initGeometry(idx);
  }
  DriverChare& drv = driver_[0].local();
  drv.cfg = cfg_;
  drv.gs = gs_;
  drv.pc = pc_;
  drv.epGsStep = epGsStep;
  drv.epPcStep = epPcStep;
}

Result OpenAtomApp::execute() {
  if (cfg_.mode == Mode::kCkDirect) {
    pc_.broadcast(epPcSetup_);
    rts_.run();  // quiesces after every GS passed the setup barrier
  }
  const sim::Time t0 = rts_.now();
  const std::uint64_t messagesBefore = rts_.messagesSent();
  driver_[0].send(epDriverKick_);
  rts_.run();
  Result result;
  result.total_us = rts_.now() - t0;
  result.avg_step_us = result.total_us / cfg_.steps;
  result.messages_sent = rts_.messagesSent() - messagesBefore;
  return result;
}

double OpenAtomApp::backwardChecksum(int state, int plane) const {
  return gs_[state + static_cast<std::int64_t>(cfg_.nstates) * plane]
      .local()
      .lastChecksum;
}

double OpenAtomApp::expectedChecksum(int state, int plane) const {
  double sum = 0.0;
  for (int idx = 0; idx < cfg_.points; ++idx)
    sum += pointValue(state, plane, idx, cfg_.steps - 1);
  return sum;
}

}  // namespace ckd::apps::openatom
