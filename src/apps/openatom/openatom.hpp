#pragma once
// §5 OpenAtom mini-app: the PairCalculator orthonormalization communication
// structure of the Car-Parrinello code, reproduced at the level the paper
// evaluates:
//
//  * GS(s,p) — a 2-D chare array (nstates x nplanes) holding each state's
//    points for one plane;
//  * PC(bi,bj,p) — PairCalculators on a stateBlocks x stateBlocks grid per
//    plane (the paper's coarsest decomposition; stateBlocks=2 yields the
//    paper's 4 * nstates * nplanes CkDirect channels);
//  * each timestep: [phase 1: GS compute] -> GS sends its points to its
//    2*stateBlocks PCs (one persistent send buffer feeding all of them) ->
//    PC runs DGEMM once all 2*grain inputs arrived -> PC returns corrected
//    points to every contributor (ordinary messages in both modes, like the
//    paper) -> [phase 4: GS compute] -> global sync -> next step.
//
// The §5.2 pathology and its fix are both modeled:
//  * ReadyStrategy::kNaive — CkDirect_ready right after consuming, so every
//    PC's hundreds of handles sit in the polling queue across all phases,
//    taxing every scheduler pump on that PE;
//  * ReadyStrategy::kMarkDeferPoll — CkDirect_ReadyMark at consume time,
//    CkDirect_ReadyPollQ only when the next step begins, bounding the
//    polling window to the phase that actually uses the channels.
//
// "PC-only" mode disables phases 1 and 4 while retaining all
// PairCalculator communication, mirroring the paper's PC-only runs.

#include <cstdint>
#include <vector>

#include "charm/proxy.hpp"
#include "charm/runtime.hpp"

namespace ckd::apps::openatom {

enum class Mode { kMessages, kCkDirect };
enum class ReadyStrategy { kNaive, kMarkDeferPoll };

struct Config {
  int nstates = 64;
  int nplanes = 4;
  int points = 128;       ///< doubles per GS(s,p)
  int stateBlocks = 2;    ///< PC grid per plane (2 -> 4*nstates*nplanes chans)
  int steps = 2;
  Mode mode = Mode::kMessages;
  ReadyStrategy ready = ReadyStrategy::kMarkDeferPoll;
  bool pc_only = false;
  bool real_compute = true;  ///< compute real row sums (integrity checks)

  /// GS compute charges per point (phases around the PairCalculator).
  double phase1_us_per_point = 0.02;
  double phase4_us_per_point = 0.02;
  /// PC DGEMM cost per multiply-add (grain^2 * points of them).
  double compute_per_flop_us = 0.25e-6;
  /// Receive-side copy per byte charged in kMessages mode (the default
  /// implementation "copies the points into a contiguous data buffer").
  double copy_per_byte_us = 0.35e-3;

  int grain() const { return nstates / stateBlocks; }
  int numPcs() const { return stateBlocks * stateBlocks * nplanes; }
  std::int64_t numGs() const {
    return static_cast<std::int64_t>(nstates) * nplanes;
  }
  /// CkDirect channels the configuration creates (4x nstates x nplanes for
  /// stateBlocks == 2, as in §5.2).
  std::int64_t numChannels() const {
    return 2ll * stateBlocks * nstates * nplanes;
  }
};

struct Result {
  double total_us = 0.0;
  double avg_step_us = 0.0;
  std::uint64_t messages_sent = 0;
};

class GsChare;
class PcChare;
class DriverChare;

class OpenAtomApp {
 public:
  OpenAtomApp(charm::Runtime& rts, Config cfg);
  Result execute();

  /// Integrity probe (requires real_compute): the row-sum each GS last got
  /// back from its PCs, which must equal the sum of the points it sent.
  double backwardChecksum(int state, int plane) const;
  double expectedChecksum(int state, int plane) const;

  const Config& config() const { return cfg_; }

 private:
  charm::Runtime& rts_;
  Config cfg_;
  charm::ArrayProxy<GsChare> gs_;
  charm::ArrayProxy<PcChare> pc_;
  charm::ArrayProxy<DriverChare> driver_;
  charm::EntryId epPcSetup_ = -1;
  charm::EntryId epDriverKick_ = -1;
};

/// The deterministic point data GS(s,p) regenerates each step.
double pointValue(int state, int plane, int index, int step);

}  // namespace ckd::apps::openatom
