#include "apps/matmul/matmul.hpp"

#include <cstring>
#include <memory>

#include "charm/maps.hpp"
#include "charm/marshal.hpp"
#include "ckdirect/ckdirect.hpp"
#include "util/require.hpp"

namespace ckd::apps::matmul {

namespace {

constexpr std::uint64_t kOob = 0x7FF8FEEDFACE0002ull;

enum SliceKind : std::int32_t { kSliceA = 0, kSliceB = 1, kSliceC = 2 };

}  // namespace

double aValue(std::int64_t row, std::int64_t col) {
  return static_cast<double>((row * 7 + col * 13) % 23) / 23.0;
}

double bValue(std::int64_t row, std::int64_t col) {
  return static_cast<double>((row * 11 + col * 3) % 19) / 19.0;
}

void chooseGrid(int chares, int& cx, int& cy, int& cz) {
  CKD_REQUIRE(chares > 0 && (chares & (chares - 1)) == 0,
              "chare count must be a power of two");
  cx = cy = cz = 1;
  int dim = 0;
  for (int remaining = chares; remaining > 1; remaining /= 2) {
    (dim == 0 ? cx : dim == 1 ? cy : cz) *= 2;
    dim = (dim + 1) % 3;
  }
}

class MatmulChare final : public charm::Chare {
 public:
  Config cfg;
  charm::ArrayProxy<MatmulChare> proxy;
  charm::EntryId epSetup = -1, epHandle = -1, epSetupDone = -1, epStart = -1,
                 epSlice = -1, epBarrier = -1, epDgemm = -1, epReduce = -1;

  void initGeometry(std::int64_t index) {
    i = static_cast<int>(index % cfg.cx);
    j = static_cast<int>((index / cfg.cx) % cfg.cy);
    k = static_cast<int>(index / (static_cast<std::int64_t>(cfg.cx) * cfg.cy));
    bm = cfg.m / cfg.cx;
    bn = cfg.n / cfg.cy;
    bk = cfg.k / cfg.cz;
    sm = bm / cfg.cy;  // A-slice rows
    sn = bn / cfg.cx;  // B-slice cols
    sc = bm / cfg.cz;  // C-slice rows
    CKD_REQUIRE(sm > 0 && sn > 0 && sc > 0,
                "matrix blocks too small for this chare grid");

    // A block row-major (bm x bk); B block column-major (bk x bn);
    // C partial row-major (bm x bn). Own input slices are generated
    // directly into their home regions, which double as the persistent
    // CkDirect send buffers — no send-side copy in either mode.
    aBlock.assign(static_cast<std::size_t>(bm * bk), 0.0);
    bBlock.assign(static_cast<std::size_t>(bk * bn), 0.0);
    cPartial.assign(static_cast<std::size_t>(bm * bn), 0.0);
    cRecv.assign(static_cast<std::size_t>(cfg.cz),
                 std::vector<double>());
    for (int kk = 0; kk < cfg.cz; ++kk)
      if (kk != k)
        cRecv[static_cast<std::size_t>(kk)].assign(
            static_cast<std::size_t>(sc * bn), 0.0);
    cSlice.assign(static_cast<std::size_t>(sc * bn), 0.0);

    if (cfg.real_compute) {
      // Own A slice: global rows [i*bm + j*sm, +sm), cols [k*bk, +bk).
      for (std::int64_t r = 0; r < sm; ++r)
        for (std::int64_t c = 0; c < bk; ++c)
          aBlock[static_cast<std::size_t>((j * sm + r) * bk + c)] =
              aValue(i * bm + j * sm + r, k * bk + c);
      // Own B slice: global rows [k*bk, +bk), cols [j*bn + i*sn, +sn).
      for (std::int64_t c = 0; c < sn; ++c)
        for (std::int64_t r = 0; r < bk; ++r)
          bBlock[static_cast<std::size_t>((i * sn + c) * bk + r)] =
              bValue(k * bk + r, j * bn + i * sn + c);
    }
  }

  std::int64_t chareIndex(int ii, int jj, int kk) const {
    return ii + static_cast<std::int64_t>(cfg.cx) *
                    (jj + static_cast<std::int64_t>(cfg.cy) * kk);
  }

  // Send-buffer views (regions inside the blocks).
  double* aSendBuf() { return aBlock.data() + j * sm * bk; }
  std::size_t aSliceBytes() const {
    return static_cast<std::size_t>(sm * bk) * sizeof(double);
  }
  double* bSendBuf() { return bBlock.data() + i * sn * bk; }
  std::size_t bSliceBytes() const {
    return static_cast<std::size_t>(sn * bk) * sizeof(double);
  }
  double* cSendBuf(int destK) { return cPartial.data() + destK * sc * bn; }
  std::size_t cSliceBytes() const {
    return static_cast<std::size_t>(sc * bn) * sizeof(double);
  }

  // --- setup (CkDirect) -------------------------------------------------------

  void setup(charm::Message&) {
    // Incoming A slices from (i, j', k).
    for (int jj = 0; jj < cfg.cy; ++jj) {
      if (jj == j) continue;
      direct::Handle h = direct::createHandle(
          rts(), myPe(), aBlock.data() + jj * sm * bk, aSliceBytes(), kOob,
          [this]() { onSlice(kSliceA); });
      allRecvHandles.push_back(h);
      sendHandleMsg(chareIndex(i, jj, k), kSliceA, /*slot=*/0, h);
    }
    // Incoming B slices from (i', j, k).
    for (int ii = 0; ii < cfg.cx; ++ii) {
      if (ii == i) continue;
      direct::Handle h = direct::createHandle(
          rts(), myPe(), bBlock.data() + ii * sn * bk, bSliceBytes(), kOob,
          [this]() { onSlice(kSliceB); });
      allRecvHandles.push_back(h);
      sendHandleMsg(chareIndex(ii, j, k), kSliceB, /*slot=*/0, h);
    }
    // Incoming C partial slices from (i, j, k'). The sender must use the
    // slice of *our* k, so the slot carries it.
    for (int kk = 0; kk < cfg.cz; ++kk) {
      if (kk == k) continue;
      direct::Handle h = direct::createHandle(
          rts(), myPe(), cRecv[static_cast<std::size_t>(kk)].data(),
          cSliceBytes(), kOob, [this]() { onSlice(kSliceC); });
      allRecvHandles.push_back(h);
      sendHandleMsg(chareIndex(i, j, kk), kSliceC, /*slot=*/k, h);
    }
    handlesCreated = true;
    checkSetupDone();
  }

  void sendHandleMsg(std::int64_t dest, std::int32_t kind, std::int32_t slot,
                     direct::Handle h) {
    charm::Packer pk;
    pk.put<std::int32_t>(kind);
    pk.put<std::int32_t>(slot);
    pk.put<direct::Handle>(h);
    proxy[dest].send(epHandle, pk);
  }

  void takeHandle(charm::Message& msg) {
    charm::Unpacker up(msg.payload());
    const auto kind = up.get<std::int32_t>();
    const auto slot = up.get<std::int32_t>();
    const auto h = up.get<direct::Handle>();
    switch (kind) {
      case kSliceA:
        direct::assocLocal(h, myPe(), aSendBuf());
        aHandles.push_back(h);
        break;
      case kSliceB:
        direct::assocLocal(h, myPe(), bSendBuf());
        bHandles.push_back(h);
        break;
      default:
        direct::assocLocal(h, myPe(), cSendBuf(slot));
        cHandles.push_back(h);
        break;
    }
    ++handlesReceived;
    checkSetupDone();
  }

  void checkSetupDone() {
    const int expected = (cfg.cy - 1) + (cfg.cx - 1) + (cfg.cz - 1);
    if (handlesCreated && handlesReceived == expected) barrier(epSetupDone);
  }

  void setupDone(charm::Message&) {}

  // --- iteration ---------------------------------------------------------------

  void start(charm::Message&) { beginIteration(); }

  void beginIteration() {
    if (!cfg.real_compute) {
      // Keep the CkDirect sentinels moving without touching whole blocks.
      aSendBuf()[sm * bk - 1] = static_cast<double>(iterationsDone + 1);
      bSendBuf()[sn * bk - 1] = static_cast<double>(iterationsDone + 1);
    }
    if (cfg.mode == Mode::kCkDirect) {
      for (const auto& h : aHandles) direct::put(h);
      for (const auto& h : bHandles) direct::put(h);
    } else {
      for (int jj = 0; jj < cfg.cy; ++jj)
        if (jj != j)
          sendSliceMsg(chareIndex(i, jj, k), kSliceA, j,
                       {aSendBuf(), static_cast<std::size_t>(sm * bk)});
      for (int ii = 0; ii < cfg.cx; ++ii)
        if (ii != i)
          sendSliceMsg(chareIndex(ii, j, k), kSliceB, i,
                       {bSendBuf(), static_cast<std::size_t>(sn * bk)});
    }
    started = true;
    maybeDgemm();
  }

  void sendSliceMsg(std::int64_t dest, std::int32_t kind, std::int32_t slot,
                    std::span<const double> values) {
    charm::Packer pk;
    pk.put<std::int32_t>(kind);
    pk.put<std::int32_t>(slot);
    pk.putSpan<double>(values);
    proxy[dest].send(epSlice, pk);
  }

  /// MSG mode: a slice arrived; copy it into place (charged — §4.2 says the
  /// message version pays exactly this placement copy).
  void slice(charm::Message& msg) {
    charm::Unpacker up(msg.payload());
    const auto kind = up.get<std::int32_t>();
    const auto slot = up.get<std::int32_t>();
    const auto values = up.getSpan<double>();
    charge(cfg.copy_per_byte_us * static_cast<double>(values.size_bytes()));
    double* dst = nullptr;
    switch (kind) {
      case kSliceA: dst = aBlock.data() + slot * sm * bk; break;
      case kSliceB: dst = bBlock.data() + slot * sn * bk; break;
      default: dst = cRecv[static_cast<std::size_t>(slot)].data(); break;
    }
    std::memcpy(dst, values.data(), values.size_bytes());
    onSlice(kind);
  }

  void onSlice(std::int32_t kind) {
    switch (kind) {
      case kSliceA: ++aGot; maybeDgemm(); break;
      case kSliceB: ++bGot; maybeDgemm(); break;
      default: ++cGot; maybeReduce(); break;
    }
  }

  void maybeDgemm() {
    if (!started || aGot < cfg.cy - 1 || bGot < cfg.cx - 1) return;
    aGot = 0;
    bGot = 0;
    started = false;
    if (cfg.mode == Mode::kCkDirect) {
      // §5.1 pattern: the CkDirect callbacks only counted arrivals; the
      // multiplication runs as an enqueued entry method.
      proxy[chareIndex(i, j, k)].send(epDgemm);
      return;
    }
    dgemmPhase();
  }

  void dgemmEntry(charm::Message&) { dgemmPhase(); }

  void dgemmPhase() {
    charge(cfg.compute_per_flop_us *
           static_cast<double>(bm) * static_cast<double>(bn) *
           static_cast<double>(bk));
    if (cfg.real_compute) runDgemm();
    else
      for (int kk = 0; kk < cfg.cz; ++kk)
        cSendBuf(kk)[sc * bn - 1] = static_cast<double>(iterationsDone + 1);
    dgemmDone = true;
    if (cfg.mode == Mode::kCkDirect) {
      for (const auto& h : cHandles) direct::put(h);
    } else {
      for (int kk = 0; kk < cfg.cz; ++kk)
        if (kk != k)
          sendSliceMsg(chareIndex(i, j, kk), kSliceC, k,
                       {cSendBuf(kk), static_cast<std::size_t>(sc * bn)});
    }
    maybeReduce();
  }

  void maybeReduce() {
    if (!dgemmDone || cGot < cfg.cz - 1) return;
    cGot = 0;
    dgemmDone = false;
    if (cfg.mode == Mode::kCkDirect) {
      proxy[chareIndex(i, j, k)].send(epReduce);
      return;
    }
    reducePhase();
  }

  void reduceEntry(charm::Message&) { reducePhase(); }

  void reducePhase() {
    // Sum the cz partial slices (own in place, peers from cRecv) in k'
    // order for determinism.
    charge(1e-6 * static_cast<double>(sc * bn) *
           static_cast<double>(cfg.cz));  // ~1 ns per add
    if (cfg.real_compute) {
      std::fill(cSlice.begin(), cSlice.end(), 0.0);
      for (int kk = 0; kk < cfg.cz; ++kk) {
        const double* src = (kk == k)
                                ? cPartial.data() + k * sc * bn
                                : cRecv[static_cast<std::size_t>(kk)].data();
        for (std::int64_t e = 0; e < sc * bn; ++e)
          cSlice[static_cast<std::size_t>(e)] += src[e];
      }
    }
    if (cfg.mode == Mode::kCkDirect) {
      for (const auto& h : recvHandles()) direct::ready(h);
    }
    ++iterationsDone;
    barrier(epBarrier);
  }

  std::vector<direct::Handle> recvHandles() const { return allRecvHandles; }

  void barrierDone(charm::Message&) {
    if (iterationsDone < cfg.iterations) beginIteration();
  }

  void runDgemm() {
    // A row-major (bm x bk), B column-major (bk x bn): each output is a dot
    // product of two contiguous runs.
    for (std::int64_t r = 0; r < bm; ++r) {
      const double* arow = aBlock.data() + r * bk;
      for (std::int64_t c = 0; c < bn; ++c) {
        const double* bcol = bBlock.data() + c * bk;
        double acc = 0.0;
        for (std::int64_t t = 0; t < bk; ++t) acc += arow[t] * bcol[t];
        cPartial[static_cast<std::size_t>(r * bn + c)] = acc;
      }
    }
  }

  // Geometry.
  int i = 0, j = 0, k = 0;
  std::int64_t bm = 0, bn = 0, bk = 0, sm = 0, sn = 0, sc = 0;

  // Data.
  std::vector<double> aBlock, bBlock, cPartial, cSlice;
  std::vector<std::vector<double>> cRecv;

  // CkDirect handles (send side gathered in takeHandle; receive side kept
  // for the per-iteration ready calls).
  std::vector<direct::Handle> aHandles, bHandles, cHandles;
  std::vector<direct::Handle> allRecvHandles;
  bool handlesCreated = false;
  int handlesReceived = 0;

  // Iteration state.
  bool started = false;
  bool dgemmDone = false;
  int aGot = 0, bGot = 0, cGot = 0;
  int iterationsDone = 0;
};

MatmulApp::MatmulApp(charm::Runtime& rts, Config cfg) : rts_(rts), cfg_(cfg) {
  CKD_REQUIRE(cfg.m % cfg.cx == 0 && cfg.n % cfg.cy == 0 &&
                  cfg.k % cfg.cz == 0,
              "chare grid must divide the matrices evenly");
  const std::int64_t count = cfg.numChares();
  proxy_ = charm::makeArray<MatmulChare>(
      rts_, "matmul", count, charm::blockMap(count, rts_.numPes()),
      [](std::int64_t) { return std::make_unique<MatmulChare>(); });
  epSetup_ = proxy_.registerEntry("setup", &MatmulChare::setup);
  const auto epHandle =
      proxy_.registerEntry("takeHandle", &MatmulChare::takeHandle);
  const auto epSetupDone =
      proxy_.registerEntry("setupDone", &MatmulChare::setupDone);
  epStart_ = proxy_.registerEntry("start", &MatmulChare::start);
  const auto epSlice = proxy_.registerEntry("slice", &MatmulChare::slice);
  const auto epBarrier =
      proxy_.registerEntry("barrierDone", &MatmulChare::barrierDone);
  const auto epDgemm = proxy_.registerEntry("dgemm", &MatmulChare::dgemmEntry);
  const auto epReduce =
      proxy_.registerEntry("reduce", &MatmulChare::reduceEntry);
  for (std::int64_t idx = 0; idx < count; ++idx) {
    MatmulChare& el = proxy_[idx].local();
    el.cfg = cfg_;
    el.proxy = proxy_;
    el.epSetup = epSetup_;
    el.epHandle = epHandle;
    el.epSetupDone = epSetupDone;
    el.epStart = epStart_;
    el.epSlice = epSlice;
    el.epBarrier = epBarrier;
    el.epDgemm = epDgemm;
    el.epReduce = epReduce;
    el.initGeometry(idx);
  }
}

Result MatmulApp::execute() {
  if (cfg_.mode == Mode::kCkDirect) {
    proxy_.broadcast(epSetup_);
    rts_.run();
  }
  const sim::Time t0 = rts_.now();
  const std::uint64_t messagesBefore = rts_.messagesSent();
  proxy_.broadcast(epStart_);
  rts_.run();
  Result result;
  result.total_us = rts_.now() - t0;
  result.avg_iteration_us = result.total_us / cfg_.iterations;
  result.messages_sent = rts_.messagesSent() - messagesBefore;
  return result;
}

std::vector<double> MatmulApp::gatherC() const {
  CKD_REQUIRE(cfg_.real_compute, "gatherC requires real_compute");
  std::vector<double> c(static_cast<std::size_t>(cfg_.m * cfg_.n), 0.0);
  for (std::int64_t idx = 0; idx < proxy_.size(); ++idx) {
    const MatmulChare& el = proxy_[idx].local();
    for (std::int64_t r = 0; r < el.sc; ++r)
      for (std::int64_t col = 0; col < el.bn; ++col) {
        const std::int64_t gr = el.i * el.bm + el.k * el.sc + r;
        const std::int64_t gc = el.j * el.bn + col;
        c[static_cast<std::size_t>(gr * cfg_.n + gc)] =
            el.cSlice[static_cast<std::size_t>(r * el.bn + col)];
      }
  }
  return c;
}

std::vector<double> referenceMultiply(const Config& cfg) {
  std::vector<double> c(static_cast<std::size_t>(cfg.m * cfg.n), 0.0);
  for (std::int64_t r = 0; r < cfg.m; ++r)
    for (std::int64_t t = 0; t < cfg.k; ++t) {
      const double a = aValue(r, t);
      for (std::int64_t col = 0; col < cfg.n; ++col)
        c[static_cast<std::size_t>(r * cfg.n + col)] += a * bValue(t, col);
    }
  return c;
}

}  // namespace ckd::apps::matmul
