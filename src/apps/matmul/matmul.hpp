#pragma once
// §4.2 matrix multiplication with the 3-D decomposition of Agarwal et al.:
// C = A x B over a (cx x cy x cz) chare grid. Chare (i,j,k):
//
//   * initially holds slice j of A-block A[i,k] (rows) and slice i of
//     B-block B[k,j] (columns);
//   * replication phase: sends its A slice to the cy-1 chares sharing
//     (i,k) and its B slice to the cx-1 chares sharing (j,k) — the same
//     source buffer feeds every partner, which in CkDirect mode means one
//     send buffer associated with many handles (§2's multicast pattern);
//   * computes the partial product A[i,k] x B[k,j] (bm x bn);
//   * reduction phase: sends slice k' of its partial to chare (i,j,k') and
//     sums the cz slices it receives, ending with slice k of C[i,j].
//
// Messages per chare grow as the cube root of the processor count — the
// paper's explanation for CkDirect's widening win at scale (§4.2).
//
// Mode::kMessages charges the receive-side copy that placing slice data
// "into the correct locations" costs (§4.2 calls this out explicitly);
// Mode::kCkDirect lands slices directly inside the destination blocks.

#include <cstdint>
#include <vector>

#include "charm/proxy.hpp"
#include "charm/runtime.hpp"

namespace ckd::apps::matmul {

enum class Mode { kMessages, kCkDirect };

struct Config {
  std::int64_t m = 64, n = 64, k = 64;  ///< global matrix dims (C is m x n)
  int cx = 2, cy = 2, cz = 2;           ///< chare grid
  int iterations = 3;
  Mode mode = Mode::kMessages;
  bool real_compute = true;
  /// Modeled DGEMM cost per fused multiply-add.
  double compute_per_flop_us = 0.25e-6;
  /// Receive-side copy cost per byte charged in kMessages mode.
  double copy_per_byte_us = 0.35e-3;

  int numChares() const { return cx * cy * cz; }
};

/// Near-cubic power-of-two grid for `chares` chares.
void chooseGrid(int chares, int& cx, int& cy, int& cz);

struct Result {
  double total_us = 0.0;
  double avg_iteration_us = 0.0;
  std::uint64_t messages_sent = 0;
};

class MatmulChare;

class MatmulApp {
 public:
  MatmulApp(charm::Runtime& rts, Config cfg);
  Result execute();

  /// Assemble the distributed C (requires real_compute).
  std::vector<double> gatherC() const;

  const Config& config() const { return cfg_; }

 private:
  charm::Runtime& rts_;
  Config cfg_;
  charm::ArrayProxy<MatmulChare> proxy_;
  charm::EntryId epSetup_ = -1;
  charm::EntryId epStart_ = -1;
};

/// Deterministic input entries shared by the chares and the reference.
double aValue(std::int64_t row, std::int64_t col);
double bValue(std::int64_t row, std::int64_t col);

/// Reference C = A x B for validation.
std::vector<double> referenceMultiply(const Config& cfg);

}  // namespace ckd::apps::matmul
