#include "topo/fat_tree.hpp"

#include <sstream>

namespace ckd::topo {

FatTree::FatTree(int numNodes, int pesPerNode, int nodesPerSwitch)
    : numNodes_(numNodes),
      pesPerNode_(pesPerNode),
      nodesPerSwitch_(nodesPerSwitch) {
  CKD_REQUIRE(numNodes > 0, "FatTree needs at least one node");
  CKD_REQUIRE(pesPerNode > 0, "FatTree needs at least one PE per node");
  CKD_REQUIRE(nodesPerSwitch > 0, "FatTree leaf radix must be positive");
}

int FatTree::nodeOf(int pe) const {
  CKD_REQUIRE(pe >= 0 && pe < numPes(), "PE index out of range");
  return pe / pesPerNode_;
}

int FatTree::hops(int srcPe, int dstPe) const {
  const int srcNode = nodeOf(srcPe);
  const int dstNode = nodeOf(dstPe);
  if (srcNode == dstNode) return 0;
  if (srcNode / nodesPerSwitch_ == dstNode / nodesPerSwitch_) return 2;
  return 4;  // leaf -> spine -> leaf
}

std::string FatTree::describe() const {
  std::ostringstream out;
  out << "FatTree{nodes=" << numNodes_ << ", pesPerNode=" << pesPerNode_
      << ", leafRadix=" << nodesPerSwitch_ << "}";
  return out.str();
}

}  // namespace ckd::topo
