#pragma once
// Machine topology abstraction. The fabric models (src/net) consult a
// Topology for (a) whether two PEs share a node (shared-memory shortcut),
// (b) the network distance between them, and (c) how many PEs share a
// network injection point (NIC / torus router), which scales effective
// per-byte cost when a node's cores inject concurrently.

#include <memory>
#include <string>

namespace ckd::topo {

class Topology {
 public:
  virtual ~Topology() = default;

  virtual int numPes() const = 0;
  virtual int numNodes() const = 0;

  /// Node housing a PE; PEs on the same node communicate via shared memory.
  virtual int nodeOf(int pe) const = 0;

  bool sameNode(int a, int b) const { return nodeOf(a) == nodeOf(b); }

  /// Network hops between the *nodes* of two PEs (0 when co-located).
  virtual int hops(int srcPe, int dstPe) const = 0;

  /// Number of PEs sharing the source PE's injection point. Fabrics divide
  /// node injection bandwidth by this when modeling saturated phases.
  virtual int injectionSharers(int pe) const = 0;

  /// Lower bound on hops(a, b) over any *distinct* node pair with a in
  /// [aLo, aHi] and b in [bLo, bHi] (inclusive node ranges). The sharded
  /// engine turns this into per-shard-pair lookahead floors, so it must be
  /// O(1) in the range width — never enumerate the cross product. The
  /// default of 1 (any cross-node wire crosses at least one link) is always
  /// sound; topologies with a cheap exact answer override it.
  virtual int minHopsBetween(int aLo, int aHi, int bLo, int bHi) const {
    (void)aLo;
    (void)aHi;
    (void)bLo;
    (void)bHi;
    return 1;
  }

  virtual std::string describe() const = 0;
};

using TopologyPtr = std::shared_ptr<const Topology>;

}  // namespace ckd::topo
