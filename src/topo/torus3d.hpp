#pragma once
// Blue Gene/P 3-D torus topology. BG/P nodes are 4-core; a partition of P
// PEs in "VN mode" uses P/4 nodes. Hop counts use torus (wraparound)
// distance between node coordinates; per-hop latency is applied by the
// fabric model.

#include <array>
#include <string>

#include "topo/topology.hpp"
#include "util/require.hpp"

namespace ckd::topo {

class Torus3D final : public Topology {
 public:
  /// Explicit node-grid dimensions.
  Torus3D(int dimX, int dimY, int dimZ, int pesPerNode = 4);

  /// Choose a near-cubic node grid for `numPes` PEs. `numPes` must be
  /// divisible by `pesPerNode` and the node count must factor into three
  /// powers of two (all BG/P partitions in the paper are powers of two).
  static Torus3D forPes(int numPes, int pesPerNode = 4);

  int numPes() const override { return numNodes() * pesPerNode_; }
  int numNodes() const override { return dims_[0] * dims_[1] * dims_[2]; }
  int nodeOf(int pe) const override;
  int hops(int srcPe, int dstPe) const override;
  int injectionSharers(int /*pe*/) const override { return pesPerNode_; }
  std::string describe() const override;

  std::array<int, 3> dims() const { return dims_; }
  std::array<int, 3> coordsOf(int node) const;

  /// Average hop count over all distinct node pairs (closed form); used by
  /// fabric contention heuristics.
  double averageHops() const;

 private:
  std::array<int, 3> dims_;
  int pesPerNode_;
};

}  // namespace ckd::topo
