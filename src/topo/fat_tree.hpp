#pragma once
// Commodity InfiniBand cluster topology: N nodes of `coresPerNode` cores,
// one HCA per node, connected through a (modeled) two-level fat tree.
// Matches NCSA Abe (8-core Clovertown nodes) and T3 (4-core Woodcrest
// nodes) from the paper.

#include <string>

#include "topo/topology.hpp"
#include "util/require.hpp"

namespace ckd::topo {

class FatTree final : public Topology {
 public:
  /// `pesPerNode` — how many of a node's cores the job actually uses;
  /// those are the PEs that share the node's single HCA.
  /// `nodesPerSwitch` — leaf switch radix; node pairs under one leaf are
  /// 2 hops apart, others go through the spine (4 hops).
  FatTree(int numNodes, int pesPerNode, int nodesPerSwitch = 24);

  int numPes() const override { return numNodes_ * pesPerNode_; }
  int numNodes() const override { return numNodes_; }
  int nodeOf(int pe) const override;
  int hops(int srcPe, int dstPe) const override;
  int injectionSharers(int /*pe*/) const override { return pesPerNode_; }
  std::string describe() const override;

  /// Distinct nodes are never closer than one leaf switch (2 hops); when the
  /// two ranges cannot share a leaf switch every path crosses the spine (4).
  int minHopsBetween(int aLo, int aHi, int bLo, int bHi) const override {
    const bool mayShareLeaf =
        aLo / nodesPerSwitch_ <= bHi / nodesPerSwitch_ &&
        bLo / nodesPerSwitch_ <= aHi / nodesPerSwitch_;
    return mayShareLeaf ? 2 : 4;
  }

  int pesPerNode() const { return pesPerNode_; }

 private:
  int numNodes_;
  int pesPerNode_;
  int nodesPerSwitch_;
};

}  // namespace ckd::topo
