#pragma once
// Growable fat-tree topology for the elastic PE lifecycle (PR 8).
//
// Identical hop/injection model to FatTree, but the node count can grow at
// run time: `grow(addNodes)` appends whole nodes (PE indices extend
// contiguously, nodeOf/hops stay valid for all previously issued indices).
// Growth must only happen from a serial phase — every consumer of the
// topology (fabric ports, engine shard map, runtime schedulers) is resized
// in the same phase before any event can target the new PEs.

#include <memory>
#include <string>

#include "topo/topology.hpp"
#include "util/require.hpp"

namespace ckd::topo {

class ElasticTopology final : public Topology {
 public:
  ElasticTopology(int numNodes, int pesPerNode, int nodesPerSwitch = 24);

  int numPes() const override { return numNodes_ * pesPerNode_; }
  int numNodes() const override { return numNodes_; }
  int nodeOf(int pe) const override;
  int hops(int srcPe, int dstPe) const override;
  int injectionSharers(int /*pe*/) const override { return pesPerNode_; }
  std::string describe() const override;

  /// Same leaf/spine floor as FatTree (see FatTree::minHopsBetween).
  int minHopsBetween(int aLo, int aHi, int bLo, int bHi) const override {
    const bool mayShareLeaf =
        aLo / nodesPerSwitch_ <= bHi / nodesPerSwitch_ &&
        bLo / nodesPerSwitch_ <= aHi / nodesPerSwitch_;
    return mayShareLeaf ? 2 : 4;
  }

  int pesPerNode() const { return pesPerNode_; }

  /// Append `addNodes` whole nodes (addNodes * pesPerNode new PEs).
  void grow(int addNodes);

  /// Recover the mutable elastic topology from a config-held const pointer.
  /// Returns nullptr when the topology is not elastic; scale-out plans
  /// require an elastic machine and fail cleanly otherwise.
  static std::shared_ptr<ElasticTopology> fromShared(
      const TopologyPtr& topology) {
    return std::const_pointer_cast<ElasticTopology>(
        std::dynamic_pointer_cast<const ElasticTopology>(topology));
  }

 private:
  int numNodes_;
  int pesPerNode_;
  int nodesPerSwitch_;
};

}  // namespace ckd::topo
