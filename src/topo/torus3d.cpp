#include "topo/torus3d.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ckd::topo {

Torus3D::Torus3D(int dimX, int dimY, int dimZ, int pesPerNode)
    : dims_{dimX, dimY, dimZ}, pesPerNode_(pesPerNode) {
  CKD_REQUIRE(dimX > 0 && dimY > 0 && dimZ > 0, "torus dims must be positive");
  CKD_REQUIRE(pesPerNode > 0, "PEs per node must be positive");
}

Torus3D Torus3D::forPes(int numPes, int pesPerNode) {
  CKD_REQUIRE(numPes > 0 && numPes % pesPerNode == 0,
              "PE count must be a positive multiple of pesPerNode");
  const int nodes = numPes / pesPerNode;
  CKD_REQUIRE((nodes & (nodes - 1)) == 0,
              "Torus3D::forPes expects a power-of-two node count");
  // Distribute the power of two across three near-equal dimensions,
  // matching how BG/P partitions are allocated (e.g. 512 nodes = 8x8x8).
  int log2 = 0;
  for (int n = nodes; n > 1; n >>= 1) ++log2;
  std::array<int, 3> dims = {1, 1, 1};
  for (int bit = 0; bit < log2; ++bit) dims[bit % 3] *= 2;
  return Torus3D(dims[0], dims[1], dims[2], pesPerNode);
}

int Torus3D::nodeOf(int pe) const {
  CKD_REQUIRE(pe >= 0 && pe < numPes(), "PE index out of range");
  return pe / pesPerNode_;
}

std::array<int, 3> Torus3D::coordsOf(int node) const {
  CKD_REQUIRE(node >= 0 && node < numNodes(), "node index out of range");
  return {node % dims_[0], (node / dims_[0]) % dims_[1],
          node / (dims_[0] * dims_[1])};
}

int Torus3D::hops(int srcPe, int dstPe) const {
  const int srcNode = nodeOf(srcPe);
  const int dstNode = nodeOf(dstPe);
  if (srcNode == dstNode) return 0;
  const auto a = coordsOf(srcNode);
  const auto b = coordsOf(dstNode);
  int total = 0;
  for (int d = 0; d < 3; ++d) {
    const int direct = std::abs(a[d] - b[d]);
    total += std::min(direct, dims_[d] - direct);
  }
  return total;
}

double Torus3D::averageHops() const {
  // Average wraparound distance per dimension of size n is n/4 for even n
  // (exactly), ~ (n^2-1)/(4n) for odd n; sum across dimensions.
  double total = 0.0;
  for (int d = 0; d < 3; ++d) {
    const double n = dims_[d];
    if (dims_[d] % 2 == 0)
      total += n / 4.0;
    else
      total += (n * n - 1.0) / (4.0 * n);
  }
  return total;
}

std::string Torus3D::describe() const {
  std::ostringstream out;
  out << "Torus3D{" << dims_[0] << "x" << dims_[1] << "x" << dims_[2]
      << ", pesPerNode=" << pesPerNode_ << "}";
  return out.str();
}

}  // namespace ckd::topo
