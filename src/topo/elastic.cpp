#include "topo/elastic.hpp"

#include <sstream>

namespace ckd::topo {

ElasticTopology::ElasticTopology(int numNodes, int pesPerNode,
                                 int nodesPerSwitch)
    : numNodes_(numNodes),
      pesPerNode_(pesPerNode),
      nodesPerSwitch_(nodesPerSwitch) {
  CKD_REQUIRE(numNodes > 0, "ElasticTopology needs at least one node");
  CKD_REQUIRE(pesPerNode > 0, "ElasticTopology needs at least one PE per node");
  CKD_REQUIRE(nodesPerSwitch > 0, "ElasticTopology leaf radix must be positive");
}

int ElasticTopology::nodeOf(int pe) const {
  CKD_REQUIRE(pe >= 0 && pe < numPes(), "PE index out of range");
  return pe / pesPerNode_;
}

int ElasticTopology::hops(int srcPe, int dstPe) const {
  const int srcNode = nodeOf(srcPe);
  const int dstNode = nodeOf(dstPe);
  if (srcNode == dstNode) return 0;
  if (srcNode / nodesPerSwitch_ == dstNode / nodesPerSwitch_) return 2;
  return 4;  // leaf -> spine -> leaf
}

void ElasticTopology::grow(int addNodes) {
  CKD_REQUIRE(addNodes > 0, "topology growth must add at least one node");
  numNodes_ += addNodes;
}

std::string ElasticTopology::describe() const {
  std::ostringstream out;
  out << "Elastic{nodes=" << numNodes_ << ", pesPerNode=" << pesPerNode_
      << ", leafRadix=" << nodesPerSwitch_ << "}";
  return out.str();
}

}  // namespace ckd::topo
