#include "topo/topology.hpp"

// Topology is a pure interface; the translation unit anchors its vtable.

namespace ckd::topo {}  // namespace ckd::topo
