#pragma once
// obs::Histogram — fixed-size log-bucketed (HDR-style) latency histogram.
//
// Layout: 64 sub-buckets per power-of-two octave, octaves 2^-21 .. 2^44
// microseconds (sub-nanosecond to ~3 months of virtual time), plus an
// underflow bucket for zero/negative samples and an open-ended overflow
// bucket. A recorded value lands in the bucket whose bounds bracket it, so
// every reported quantile is the midpoint of a bucket that provably
// contains the true sample:
//
//   relative error <= 1 / kSub  (= 1/64 ~ 1.6%),
//
// the documented bucket-resolution bound every consumer (soak_elastic's p99
// gate, the streaming-vs-CausalGraph accuracy tests) budgets against.
//
// Recording is lock-free: one relaxed fetch_add on the bucket counter plus
// relaxed folds of count/sum/min/max. Each simulation shard records only
// from its own thread (single-writer discipline, like TraceRecorder), but
// the relaxed atomics additionally make cross-thread *reads* — the flight
// recorder sampling merged shard counts from the coordinator while shards
// are parked — well-defined without any locking. Merging is a commutative
// per-bucket count sum, so shard-merge order cannot change any percentile.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/json.hpp"

namespace ckd::obs {

class Histogram {
 public:
  static constexpr int kSubBits = 6;
  static constexpr int kSub = 1 << kSubBits;  ///< sub-buckets per octave
  static constexpr int kMinExp = -20;  ///< lowest octave is [2^-21, 2^-20)
  static constexpr int kMaxExp = 44;   ///< highest octave is [2^43, 2^44)
  static constexpr int kOctaves = kMaxExp - kMinExp + 1;
  static constexpr int kBuckets = kOctaves * kSub + 2;  ///< + under/overflow
  /// Worst-case relative error of any reported quantile (see header).
  static constexpr double kRelativeError = 1.0 / kSub;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one sample (microseconds). Hot path: one relaxed fetch_add on
  /// the bucket plus relaxed count/sum/min/max folds.
  void record(double v) noexcept {
    buckets_[static_cast<std::size_t>(bucketFor(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
    atomicMin(min_, v);
    atomicMax(max_, v);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// +inf / -inf while empty (count() == 0).
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Quantile q in [0, 1]: the midpoint of the bucket holding the
  /// ceil(q * count)-th smallest sample; 0 while empty. Within
  /// kRelativeError of the exact order statistic by construction.
  double percentile(double q) const;

  /// Fold `other` into this histogram (commutative count sums).
  void merge(const Histogram& other) noexcept;

  /// Reset to empty.
  void clear() noexcept;

  /// Accumulate bucket counts into `out` (resized to kBuckets when
  /// shorter); returns the total count added. This is the primitive shard
  /// merges and windowed (delta) percentiles are built from.
  std::uint64_t addCounts(std::vector<std::uint64_t>& out) const;

  /// percentile() over an externally merged / delta'd counts vector.
  static double percentileFromCounts(const std::vector<std::uint64_t>& counts,
                                     std::uint64_t total, double q);

  /// Bucket index for a value: 0 = underflow (v <= 0 or below the lowest
  /// octave), kBuckets-1 = overflow, else 1 + octave * kSub + sub.
  static int bucketFor(double v) noexcept {
    if (!(v > 0.0)) return 0;
    int exp = 0;
    const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, [0.5, 1)
    if (exp < kMinExp) return 0;
    if (exp > kMaxExp) return kBuckets - 1;
    int sub = static_cast<int>((frac - 0.5) * (2 * kSub));
    if (sub >= kSub) sub = kSub - 1;  // frac rounding at the octave edge
    return 1 + (exp - kMinExp) * kSub + sub;
  }

  /// Inclusive lower bound of a bucket (0 for underflow).
  static double bucketLow(int idx);
  /// Representative value: the bucket midpoint (lower bound for the two
  /// open-ended edge buckets).
  static double bucketMid(int idx);

  /// {count, mean_us, min_us, max_us, p50_us, p99_us, p999_us,
  ///  relative_error} summary object.
  util::JsonValue toJson() const;

 private:
  static void atomicAdd(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  static void atomicMin(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomicMax(std::atomic<double>& a, double v) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace ckd::obs
