#include "obs/metrics.hpp"

#include "util/require.hpp"

namespace ckd::obs {

std::string_view sloName(Slo kind) {
  switch (kind) {
    case Slo::kMsgRtt:
      return "msg_rtt";
    case Slo::kPut:
      return "put";
    case Slo::kRequest:
      return "request";
    case Slo::kCount:
      break;
  }
  CKD_REQUIRE(false, "unknown SLO kind");
  return "";
}

util::JsonValue MetricsRegistry::toJson() const {
  util::JsonValue arr = util::JsonValue::array();
  for (std::size_t k = 0; k < kSloCount; ++k) {
    util::JsonValue row = util::JsonValue::object();
    row.set("name",
            util::JsonValue(std::string("slo.") +
                            std::string(sloName(static_cast<Slo>(k)))));
    row.set("unit", util::JsonValue("us"));
    const util::JsonValue summary = slo_[k].toJson();
    for (const auto& [key, value] : summary.members()) row.set(key, value);
    arr.push(row);
  }
  return arr;
}

}  // namespace ckd::obs
