#pragma once
// obs::FlightRecorder — bounded time-series recorder over simulated time.
//
// A run with --metrics-interval T samples every registered probe (a
// double-returning closure over live runtime state: events executed, ring
// occupancy, pool hit rate, retransmits, per-shard lag) and every watched
// SLO histogram (windowed p50/p99/p999 over the samples recorded since the
// previous snapshot) each T microseconds of *virtual* time, producing a
// trajectory instead of a single post-run number. Snapshots live in a
// bounded ring (default 512); once full the oldest are dropped (and
// counted), so arbitrarily long soaks stay safe.
//
// Determinism contract: the recorder never schedules engine events. The
// serial engine piggybacks a `now >= dueAt()` comparison on its existing
// event dispatch; the parallel engine samples from the coordinator at
// round boundaries while every shard is parked. Sampling is read-only, so
// metrics-on and metrics-off runs execute bit-identical event sequences
// (the digest gate in tests/obs_test.cpp), though snapshot *timestamps*
// under the sharded engine naturally follow that run's window boundaries.
//
// Export: toJson() emits the `ckd.metrics.v1` block ({schema, interval_us,
// dropped, series: [{name, unit, points: [[t_us, value], ...]}]}) embedded
// in ckd.bench.v1 profiles and rendered as Perfetto counter tracks by
// harness::writePerfettoTrace.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "util/json.hpp"

namespace ckd::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  /// Reader that accumulates cumulative histogram counts into the vector
  /// (Histogram::addCounts signature) and returns the cumulative total.
  /// Watching through a reader lets the runtime present a *merged* view of
  /// all shard registries without copying histograms.
  using CountsReader =
      std::function<std::uint64_t(std::vector<std::uint64_t>&)>;

  /// Sampling period in virtual microseconds; 0 disarms (dueAt() = +inf).
  void setInterval(double interval_us);
  double interval() const { return interval_; }
  bool armed() const { return interval_ > 0.0; }

  /// Snapshot-ring capacity; shrinking keeps the newest snapshots.
  void setCapacity(std::size_t snapshots);
  std::size_t capacity() const { return capacity_; }

  /// Register a gauge/counter probe sampled at every snapshot.
  void addProbe(std::string name, std::string unit,
                std::function<double()> read);

  /// Watch a histogram: every snapshot appends four series —
  /// <name>.count (samples in the window), <name>.p50_us / .p99_us /
  /// .p999_us (percentiles over that window's samples only).
  void watch(std::string name, CountsReader readCounts);
  void watch(std::string name, const Histogram* histogram);

  /// Virtual time of the next due sample (+inf while disarmed). Engines
  /// compare their clock against this on the dispatch path.
  double dueAt() const { return due_; }

  /// Take one snapshot at virtual time `now_us` and advance dueAt() past
  /// it. Callers guarantee probe reads are race-free (serial engine
  /// in-thread; parallel coordinator with shards parked).
  void sample(double now_us);

  std::size_t snapshotCount() const { return times_.size(); }
  std::uint64_t droppedSnapshots() const { return dropped_; }
  std::size_t seriesCount() const { return series_.size(); }

  /// The ckd.metrics.v1 JSON block.
  util::JsonValue toJson() const;

  /// Drop all snapshots and window state; keeps probes, watches, interval.
  void clearSamples();

 private:
  struct Series {
    std::string name;
    std::string unit;
  };
  struct Probe {
    std::function<double()> read;
  };
  struct Watch {
    CountsReader read;
    std::vector<std::uint64_t> prev;  ///< cumulative counts at last snapshot
    std::uint64_t prevTotal = 0;
  };

  double interval_ = 0.0;
  double due_ = std::numeric_limits<double>::infinity();
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;

  std::vector<Series> series_;  ///< column layout: probes then watch columns
  std::vector<Probe> probes_;
  std::vector<Watch> watches_;

  // Snapshot ring, chronological from start_.
  std::vector<double> times_;
  std::vector<std::vector<double>> rows_;
  std::size_t start_ = 0;

  std::vector<std::uint64_t> scratch_;
};

}  // namespace ckd::obs
