#include "obs/histogram.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace ckd::obs {

double Histogram::bucketLow(int idx) {
  CKD_REQUIRE(idx >= 0 && idx < kBuckets, "histogram bucket out of range");
  if (idx == 0) return 0.0;
  if (idx == kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const int rel = idx - 1;
  const int oct = rel / kSub;
  const int sub = rel % kSub;
  // Octave [2^(e-1), 2^e) split into kSub equal-width sub-buckets.
  return std::ldexp(1.0 + static_cast<double>(sub) / kSub,
                    kMinExp + oct - 1);
}

double Histogram::bucketMid(int idx) {
  CKD_REQUIRE(idx >= 0 && idx < kBuckets, "histogram bucket out of range");
  if (idx == 0 || idx == kBuckets - 1) return bucketLow(idx);
  const int rel = idx - 1;
  const int oct = rel / kSub;
  const int sub = rel % kSub;
  return std::ldexp(1.0 + (static_cast<double>(sub) + 0.5) / kSub,
                    kMinExp + oct - 1);
}

double Histogram::percentileFromCounts(
    const std::vector<std::uint64_t>& counts, std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  CKD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const double want = std::ceil(q * static_cast<double>(total));
  const std::uint64_t rank =
      std::min<std::uint64_t>(total,
                              std::max<std::uint64_t>(
                                  1, static_cast<std::uint64_t>(want)));
  std::uint64_t cum = 0;
  const std::size_t n = std::min<std::size_t>(counts.size(), kBuckets);
  for (std::size_t i = 0; i < n; ++i) {
    cum += counts[i];
    if (cum >= rank) return bucketMid(static_cast<int>(i));
  }
  return bucketMid(kBuckets - 1);
}

double Histogram::percentile(double q) const {
  std::vector<std::uint64_t> counts;
  const std::uint64_t total = addCounts(counts);
  return percentileFromCounts(counts, total, q);
}

std::uint64_t Histogram::addCounts(std::vector<std::uint64_t>& out) const {
  if (out.size() < static_cast<std::size_t>(kBuckets))
    out.resize(static_cast<std::size_t>(kBuckets), 0);
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    out[static_cast<std::size_t>(i)] += c;
    total += c;
  }
  return total;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = other.buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (c != 0)
      buckets_[static_cast<std::size_t>(i)].fetch_add(
          c, std::memory_order_relaxed);
  }
  const std::uint64_t n = other.count();
  if (n == 0) return;
  count_.fetch_add(n, std::memory_order_relaxed);
  atomicAdd(sum_, other.sum());
  atomicMin(min_, other.min());
  atomicMax(max_, other.max());
}

void Histogram::clear() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

util::JsonValue Histogram::toJson() const {
  std::vector<std::uint64_t> counts;
  const std::uint64_t total = addCounts(counts);
  util::JsonValue obj = util::JsonValue::object();
  obj.set("count", util::JsonValue(total));
  obj.set("mean_us", util::JsonValue(mean()));
  obj.set("min_us", util::JsonValue(total == 0 ? 0.0 : min()));
  obj.set("max_us", util::JsonValue(total == 0 ? 0.0 : max()));
  obj.set("p50_us", util::JsonValue(percentileFromCounts(counts, total, 0.50)));
  obj.set("p99_us", util::JsonValue(percentileFromCounts(counts, total, 0.99)));
  obj.set("p999_us",
          util::JsonValue(percentileFromCounts(counts, total, 0.999)));
  obj.set("relative_error", util::JsonValue(kRelativeError));
  return obj;
}

}  // namespace ckd::obs
