#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace ckd::obs {

void FlightRecorder::setInterval(double interval_us) {
  CKD_REQUIRE(interval_us >= 0.0, "metrics interval must be non-negative");
  interval_ = interval_us;
  due_ = interval_us > 0.0 ? interval_us
                           : std::numeric_limits<double>::infinity();
}

void FlightRecorder::setCapacity(std::size_t snapshots) {
  CKD_REQUIRE(snapshots > 0, "flight recorder needs at least one snapshot");
  // Linearize the ring (oldest first) so append-after-resize stays
  // chronological; shrinking keeps the newest snapshots, mirroring
  // TraceRecorder's ring.
  const std::size_t n = times_.size();
  const std::size_t drop = n > snapshots ? n - snapshots : 0;
  std::vector<double> times;
  std::vector<std::vector<double>> rows;
  times.reserve(n - drop);
  rows.reserve(n - drop);
  for (std::size_t i = drop; i < n; ++i) {
    const std::size_t j = (start_ + i) % n;
    times.push_back(times_[j]);
    rows.push_back(std::move(rows_[j]));
  }
  times_ = std::move(times);
  rows_ = std::move(rows);
  start_ = 0;
  dropped_ += drop;
  capacity_ = snapshots;
}

void FlightRecorder::addProbe(std::string name, std::string unit,
                              std::function<double()> read) {
  CKD_REQUIRE(read != nullptr, "probe needs a reader");
  series_.push_back(Series{std::move(name), std::move(unit)});
  probes_.push_back(Probe{std::move(read)});
  CKD_REQUIRE(times_.empty(),
              "register probes before the first sample is taken");
}

void FlightRecorder::watch(std::string name, CountsReader readCounts) {
  CKD_REQUIRE(readCounts != nullptr, "watch needs a counts reader");
  CKD_REQUIRE(times_.empty(),
              "register watches before the first sample is taken");
  series_.push_back(Series{name + ".count", "samples"});
  series_.push_back(Series{name + ".p50_us", "us"});
  series_.push_back(Series{name + ".p99_us", "us"});
  series_.push_back(Series{name + ".p999_us", "us"});
  watches_.push_back(Watch{std::move(readCounts), {}, 0});
}

void FlightRecorder::watch(std::string name, const Histogram* histogram) {
  CKD_REQUIRE(histogram != nullptr, "watch needs a histogram");
  watch(std::move(name),
        [histogram](std::vector<std::uint64_t>& out) {
          return histogram->addCounts(out);
        });
}

void FlightRecorder::sample(double now_us) {
  if (!armed()) return;
  std::vector<double> row;
  row.reserve(probes_.size() + 4 * watches_.size());
  for (const Probe& p : probes_) row.push_back(p.read());
  for (Watch& w : watches_) {
    scratch_.assign(static_cast<std::size_t>(Histogram::kBuckets), 0);
    const std::uint64_t total = w.read(scratch_);
    if (w.prev.empty())
      w.prev.assign(static_cast<std::size_t>(Histogram::kBuckets), 0);
    // Window = cumulative minus the previous snapshot's cumulative counts.
    CKD_REQUIRE(total >= w.prevTotal, "SLO histogram counts went backwards");
    const std::uint64_t windowTotal = total - w.prevTotal;
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      const std::uint64_t cum = scratch_[i];
      scratch_[i] -= w.prev[i];
      w.prev[i] = cum;
    }
    w.prevTotal = total;
    row.push_back(static_cast<double>(windowTotal));
    row.push_back(Histogram::percentileFromCounts(scratch_, windowTotal, 0.50));
    row.push_back(Histogram::percentileFromCounts(scratch_, windowTotal, 0.99));
    row.push_back(
        Histogram::percentileFromCounts(scratch_, windowTotal, 0.999));
  }

  // Snapshot times must be monotone even if an engine hands us a stale
  // clock at a window boundary.
  if (!times_.empty()) {
    const std::size_t last =
        (start_ + times_.size() - 1) % times_.size();
    now_us = std::max(now_us, times_[last]);
  }
  if (times_.size() < capacity_) {
    times_.push_back(now_us);
    rows_.push_back(std::move(row));
  } else {
    times_[start_] = now_us;
    rows_[start_] = std::move(row);
    start_ = (start_ + 1) % capacity_;
    ++dropped_;
  }
  while (due_ <= now_us) due_ += interval_;
}

util::JsonValue FlightRecorder::toJson() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", util::JsonValue("ckd.metrics.v1"));
  doc.set("interval_us", util::JsonValue(interval_));
  doc.set("snapshots", util::JsonValue(times_.size()));
  doc.set("dropped", util::JsonValue(dropped_));
  util::JsonValue series = util::JsonValue::array();
  for (std::size_t c = 0; c < series_.size(); ++c) {
    util::JsonValue s = util::JsonValue::object();
    s.set("name", util::JsonValue(series_[c].name));
    s.set("unit", util::JsonValue(series_[c].unit));
    util::JsonValue points = util::JsonValue::array();
    for (std::size_t i = 0; i < times_.size(); ++i) {
      const std::size_t j = (start_ + i) % times_.size();
      util::JsonValue point = util::JsonValue::array();
      point.push(util::JsonValue(times_[j]));
      point.push(util::JsonValue(rows_[j][c]));
      points.push(std::move(point));
    }
    s.set("points", std::move(points));
    series.push(std::move(s));
  }
  doc.set("series", std::move(series));
  return doc;
}

void FlightRecorder::clearSamples() {
  times_.clear();
  rows_.clear();
  start_ = 0;
  dropped_ = 0;
  for (Watch& w : watches_) {
    w.prev.clear();
    w.prevTotal = 0;
  }
  due_ = armed() ? interval_ : std::numeric_limits<double>::infinity();
}

}  // namespace ckd::obs
