#pragma once
// obs::MetricsRegistry — per-engine streaming SLO histograms.
//
// Every sim::Engine owns one registry (exactly like it owns a
// TraceRecorder), so under the sharded parallel engine each shard records
// into its own instance from its own thread — single-writer discipline on
// the hot path, no cross-shard traffic. The registry is *armed* explicitly
// (--metrics-interval, or MetricsRegistry::arm in tests); disarmed, every
// feed point pays one predictable branch and nothing else, which is what
// the metrics-on-vs-off bit-identity gate leans on: recording never
// schedules engine events or perturbs any simulation state, so arming it
// cannot change a single tie-break sequence number.
//
// The SLO feeds are the causal-chain completions the paper's evaluation is
// built around, recorded online at the exact same virtual instants
// sim::CausalGraph would derive post-hoc from the trace ring:
//   kMsgRtt   — transport send (Envelope::sentAt) -> scheduler delivery
//   kPut      — CkDirect put issue -> receive-side callback
//   kRequest  — PGAS op issue -> remote completion
//
// Merging across shards (MetricsRegistry::mergeFrom at serial boundaries /
// post-run) is a commutative bucket-count sum: the merged percentiles are
// identical for every shard count, which the shard-invariance test gates.

#include <array>
#include <cstdint>
#include <string_view>

#include "obs/histogram.hpp"
#include "util/json.hpp"

namespace ckd::obs {

/// Streaming SLO kinds, one histogram slot each.
enum class Slo : std::uint8_t {
  kMsgRtt = 0,  ///< message send -> handler delivery (us)
  kPut,         ///< CkDirect put issue -> callback (us)
  kRequest,     ///< PGAS request issue -> remote completion (us)
  kCount,
};

constexpr std::size_t kSloCount = static_cast<std::size_t>(Slo::kCount);

std::string_view sloName(Slo kind);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void arm(bool on = true) { armed_ = on; }
  bool armed() const { return armed_; }

  /// Hot-path feed: one branch while disarmed.
  void record(Slo kind, double v_us) noexcept {
    if (armed_) slo_[static_cast<std::size_t>(kind)].record(v_us);
  }

  Histogram& slo(Slo kind) { return slo_[static_cast<std::size_t>(kind)]; }
  const Histogram& slo(Slo kind) const {
    return slo_[static_cast<std::size_t>(kind)];
  }

  /// Fold another registry's histograms into this one (commutative).
  void mergeFrom(const MetricsRegistry& other) noexcept {
    for (std::size_t k = 0; k < kSloCount; ++k) slo_[k].merge(other.slo_[k]);
  }

  void clear() noexcept {
    for (auto& h : slo_) h.clear();
  }

  /// [{"name": "slo.msg_rtt", "unit": "us", <histogram summary>}, ...]
  util::JsonValue toJson() const;

 private:
  bool armed_ = false;
  std::array<Histogram, kSloCount> slo_;
};

}  // namespace ckd::obs
