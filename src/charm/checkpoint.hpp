#pragma once
// Fail-stop tolerance: double in-memory buddy checkpointing + restart.
//
// Protocol (DESIGN.md "Crash model"):
//  * Checkpoints are taken at reduction-root flushes — the one point where
//    every array element has contributed and none has resumed, so no user
//    message and (for the paper's applications) no CkDirect put is in
//    flight. Each PE packs its local elements through their pup() methods
//    and ships the shard to its buddy, PE (p+1) mod N, as modeled bulk wire
//    traffic over a dedicated reliable link. A snapshot becomes usable only
//    once every shard has landed at its buddy ("double in-memory": the two
//    newest completed snapshots are retained, older ones are discarded).
//  * A pe_crash fault kills the victim at its scheduled virtual time: its
//    scheduler queues are flushed, every reliable flow touching it is torn
//    down silently, and its registered memory regions stop validating.
//    Copies of pre-crash transmissions still on the wire are NAKed as stale
//    when they arrive (ReliableLink flush barrier) instead of landing in
//    since-re-registered buffers.
//  * Detection is heartbeat-based: every live PE beats to its buddy every
//    kBeatPeriodUs; the monitor declares the victim dead after kMissedBeats
//    consecutive silent periods, which models real failure-detection
//    latency. (The monitor only ever examines the actually-crashed PE, so
//    false positives cannot occur; the detection window is far shorter than
//    any retry-budget exhaustion, so in-window reliable entries never
//    surface spurious errors.)
//  * Restore is a global rollback to the newest snapshot that was safely at
//    the buddies before the crash: bump the runtime epoch (schedulers drop
//    stale-epoch messages from then on), flush every scheduler queue, revive
//    the victim, flush every reliable link and transport transaction, unpack
//    all elements IN PLACE (stable buffer addresses), clear reduction state,
//    re-run the CkDirect re-registration handshake via the runtime's
//    reestablish hook, then replay the snapshotted reduction-root delivery
//    under the new epoch. The application resumes from the cut as if the
//    crash interval never ran.

#include <cstdint>
#include <map>
#include <vector>

#include "charm/runtime.hpp"
#include "fault/reliable.hpp"
#include "sim/time.hpp"

namespace ckd::charm {

class CheckpointManager {
 public:
  /// Default virtual time between heartbeats (MachineConfig::heartbeatPeriod_us).
  static constexpr sim::Time kBeatPeriodUs = 5.0;
  /// Default silent periods before a PE is declared dead
  /// (MachineConfig::heartbeatMisses).
  static constexpr int kMissedBeats = 4;
  /// Modeled wire size of one heartbeat (control class, skips the ports).
  static constexpr std::size_t kBeatBytes = 8;

  explicit CheckpointManager(Runtime& rts);

  /// Start the fail-stop machinery: schedule the planned crashes (at their
  /// virtual times, or immediately if already past) and begin heartbeating.
  /// Applications call this at the boundary between setup and the measured
  /// run — the setup phase is NOT a resumable cut (externally injected
  /// triggers like a start broadcast arrive after it), so checkpoints are
  /// only taken at reduction roots reached after arming. The first crash
  /// must land after the first post-arm checkpoint completes.
  void arm();
  bool armed() const { return armed_; }

  /// Runtime hook, invoked at every reduction-root flush BEFORE the result
  /// fans back down — the consistent cut checkpoints are taken on. The
  /// pending root delivery is stored with the snapshot so restore can
  /// replay it.
  void onReductionRoot(ArrayId array, std::uint32_t round,
                       const Runtime::ReduceAgg& agg);

  /// Elastic scale-out grew the machine: extend the heartbeat table.
  void onPesGrown();

  /// True while a fail-stop outage is in progress (crash injected, restore
  /// not yet run). The lifecycle manager defers migrations across outages.
  bool outageInProgress() const { return crashedPe_ >= 0; }

  /// Effective heartbeat settings (config-driven; surfaced in bench JSON).
  sim::Time beatPeriodUs() const;
  int missedBeats() const;

  // --- stats (ProfileReport / bench JSON) -----------------------------------
  std::uint64_t checkpointsTaken() const { return checkpointsTaken_; }
  std::uint64_t bytesPacked() const { return bytesPacked_; }
  std::uint64_t restarts() const { return restarts_; }
  /// Virtual time spent between crash and completed restore, summed.
  sim::Time recoveryUs() const { return recoveryUs_; }
  int crashesPlanned() const { return static_cast<int>(crashes_.size()); }
  /// Crashes scheduled but not yet injected.
  int crashesPending() const { return pendingCrashes_; }
  /// Stale pre-crash shard arrivals NAKed on the checkpoint link itself.
  std::uint64_t shardStaleNaks() const { return shardLink_.staleNaks(); }

 private:
  struct PlannedCrash {
    sim::Time at = 0.0;
    int pe = -1;
  };
  struct Snapshot {
    sim::Time takenAt = 0.0;
    ArrayId rootArray = -1;
    std::uint32_t round = 0;
    Runtime::ReduceAgg agg;  ///< pending root delivery, replayed on restore
    std::vector<std::vector<std::byte>> shards;  ///< per-PE packed state
    int arrived = 0;     ///< shards landed at their buddies so far
    int expected = 0;    ///< shards shipped (retired PEs ship none)
    bool complete = false;
    sim::Time safeAt = 0.0;  ///< when the last buddy shard landed
    /// Elastic runs: per-array element placement at the cut, so a restore
    /// can revert migrations that happened after the snapshot.
    std::vector<std::vector<int>> peOfByArray;
    /// Opaque lifecycle state image (per-PE lifecycle states at the cut).
    std::vector<std::uint8_t> lifeImage;
  };

  /// Buddy = next non-retired PE in the ring (plain (pe+1)%N without an
  /// elastic lifecycle).
  int buddyOf(int pe) const;

  void takeCheckpoint(ArrayId array, std::uint32_t round,
                      const Runtime::ReduceAgg& agg);
  void onShardArrived(std::uint64_t id, int pe);
  /// Keep the two newest completed snapshots; drop everything older.
  void pruneSnapshots();
  void injectCrash(std::size_t which);
  void heartbeatTick();
  void restore();

  Runtime& rts_;
  /// Buddy shard shipping rides its own go-back-N link so checkpoints
  /// survive the same wire faults the application traffic does.
  fault::ReliableLink shardLink_;
  std::vector<PlannedCrash> crashes_;  ///< sorted by time
  std::map<std::uint64_t, Snapshot> snapshots_;
  std::uint64_t nextSnapId_ = 0;
  sim::Time lastCkptAt_ = -1.0;  ///< < 0: genesis checkpoint not yet taken
  std::vector<sim::Time> lastBeat_;
  int crashedPe_ = -1;  ///< victim of the in-progress outage, or -1
  sim::Time crashAt_ = 0.0;
  int pendingCrashes_ = 0;
  bool armed_ = false;
  std::uint64_t checkpointsTaken_ = 0;
  std::uint64_t bytesPacked_ = 0;
  std::uint64_t restarts_ = 0;
  sim::Time recoveryUs_ = 0.0;
};

}  // namespace ckd::charm
