#pragma once
// Elastic PE lifecycle: supervisor-driven scale-out / drain / retire with
// checkpoint-grade state handoff (DESIGN.md §2i).
//
// Every PE moves through a small state machine supervised by the
// LifecycleManager:
//
//     Joining ──join latency──▶ Active ──requestDrain──▶ Draining
//                                  ▲                        │
//                                  │ (rollback reverts)      │ handoff done
//                                  └──── Crashed ◀───┐      ▼
//                                       (transient)  └── Retired
//
//  * Scale-out (`scale_out@<t>;pes=<n>`, or requestScaleOut) grows the
//    ElasticTopology by whole nodes in a serial phase: the fabric ports, the
//    shard map, the per-PE minting tables, schedulers/processors, the
//    heartbeat table, and the CkDirect manager's per-PE state all extend in
//    the same phase, before any event can target the new PEs. New PEs sit in
//    Joining for a fixed handshake latency, then become Active and the next
//    reduction cut rebalances elements onto them.
//  * Drain (`drain@<t>;pe=<k>`, or requestDrain) marks a PE Draining: at the
//    next reduction-root cut — the one instant where no user message or
//    CkDirect put is in flight — the supervisor intercepts the root
//    delivery, rebinds every resident element to adoptive PEs, ships the
//    packed element state over a dedicated reliable link (bounded
//    retry/backoff, like the PR 3 buddy-checkpoint shipping), re-registers
//    moved CkDirect channels via the migrate hook + Manager::rehome, and
//    only then releases the captured reduction result. A Draining PE that
//    hosts nothing retires: it stops heartbeating and accepting chare work
//    but keeps pumping so late arrivals forward to the new owners
//    (tombstone forwarding).
//  * Crash mid-drain (of the draining PE or an adoptive PE) falls back to
//    the PR 3 global rollback: the snapshot carries the placement and a
//    lifecycle state image, so restore reverts the half-done migration and
//    the post-restore cut re-drives it. No wedging, no special cases.
//
// Double-drain and drain-below-minimum are rejected synchronously
// (CKD_REQUIRE), so misuse dies loudly at the request site.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "charm/runtime.hpp"
#include "fault/reliable.hpp"
#include "sim/time.hpp"
#include "topo/elastic.hpp"

namespace ckd::charm {

enum class PeState : std::uint8_t {
  kActive = 0,
  kJoining,
  kDraining,
  kRetired,
};

std::string_view peStateName(PeState state);

/// One scripted lifecycle action (--scale-plan).
struct ScaleRule {
  enum class Kind : std::uint8_t { kScaleOut, kDrain };
  Kind kind = Kind::kScaleOut;
  sim::Time at = 0.0;  ///< virtual time the rule fires
  int pes = 0;         ///< kScaleOut: PEs to add (whole nodes)
  int pe = -1;         ///< kDrain: the PE to drain
};

struct ScalePlan {
  std::vector<ScaleRule> rules;
  bool empty() const { return rules.empty(); }
};

/// Parse a --scale-plan spec. Grammar (comma-separated rules, modeled on
/// --faults):
///
///   plan := rule ("," rule)*
///   rule := "scale_out@" time_us ";pes=" n     (grow by n PEs, whole nodes)
///         | "drain@" time_us ";pe=" k          (drain PE k)
///
/// Example: "scale_out@400;pes=8,drain@900;pe=2".
/// Empty string -> empty plan. Aborts (CKD_REQUIRE) on malformed specs.
ScalePlan parseScalePlan(const std::string& spec);

class LifecycleManager {
 public:
  /// Modeled join handshake: time between the scale-out growing the machine
  /// and the new PEs turning Active (boot + wireup announcement).
  static constexpr sim::Time kJoinLatencyUs = 25.0;

  explicit LifecycleManager(Runtime& rts);

  // --- supervisor API --------------------------------------------------------

  /// Grow the machine by `addPes` PEs (a whole number of nodes). Requires an
  /// ElasticTopology. The growth itself runs at the next serial boundary.
  void requestScaleOut(int addPes);

  /// Begin draining `pe`. Rejects (aborts) a double drain and a drain that
  /// would leave fewer than MachineConfig::minPes active PEs. The migration
  /// runs at the next reduction-root cut.
  void requestDrain(int pe);

  PeState state(int pe) const {
    return states_[static_cast<std::size_t>(pe)];
  }
  int activePes() const;
  /// True while a drain or post-scale-out rebalance awaits a reduction cut,
  /// or a handoff is in flight.
  bool migrationPending() const;

  // --- runtime hooks ---------------------------------------------------------

  /// Reduction-root interception (called by tryFlushReduction at pos == 0,
  /// possibly on a shard thread). Returns true when this cut was captured
  /// for migration: the caller must NOT checkpoint or deliver the result —
  /// the supervisor re-drives both once the handoff completes.
  bool interceptRoot(ArrayId array, std::uint32_t round,
                     const Runtime::ReduceAgg& agg);

  /// Fail-stop notification (from CheckpointManager::injectCrash): tear
  /// down handoff flows touching the victim and abort any in-flight
  /// migration — the global rollback reverts placement, and the
  /// post-restore cut re-drives the drain.
  void onPeCrash(int victim);

  /// Opaque state image stored with each checkpoint snapshot.
  std::vector<std::uint8_t> packImage() const;
  /// Roll the lifecycle back to `image` (global rollback). PEs added after
  /// the cut stay in the machine (hardware does not un-provision) and are
  /// rebalanced onto at the next cut; drains requested after the cut are
  /// kept as intent (the PE re-enters Draining) so scripted drains survive.
  void onRestore(const std::vector<std::uint8_t>& image);

  // --- stats (bench JSON) ----------------------------------------------------
  std::uint64_t scaleOuts() const { return scaleOuts_; }
  std::uint64_t drainsCompleted() const { return drains_; }
  std::uint64_t elementsMigrated() const { return elementsMigrated_; }
  std::uint64_t handoffBytesShipped() const { return handoffBytes_; }
  std::uint64_t handoffRetries() const { return handoffRetries_; }
  std::uint64_t migrationsAborted() const { return migrationsAborted_; }
  /// Stale handoff arrivals NAKed on the handoff link itself.
  std::uint64_t handoffStaleNaks() const { return handoffLink_.staleNaks(); }

 private:
  struct Move {
    ArrayId array = -1;
    std::int64_t index = 0;
    int from = -1;
    int to = -1;
  };

  /// Directed-pair handoff channel key (size-independent, like the
  /// transport's).
  static int handoffChannel(int src, int dst) { return (src << 20) + dst; }

  void scheduleRule(const ScaleRule& rule);
  /// Serial-phase body of requestScaleOut.
  void doScaleOut(int addPes);
  /// Join latency elapsed: Joining -> Active, pend a rebalance.
  void completeJoin(int firstPe, int lastPe);
  /// Serial-phase migration driver: compute moves, rebind placement, ship
  /// state, or deliver the captured cut directly when nothing moves.
  void performMigration();
  /// Balanced placement moves for one array (drain + level); deterministic.
  void collectMoves(ArrayId array, std::vector<Move>& moves) const;
  /// Ship one (src, dst) handoff shard; bounded retry with backoff.
  void shipHandoff(int src, int dst, std::size_t stateBytes, int attempts);
  void onHandoffArrived();
  /// All handoffs landed: retire empty drained PEs, release the cut.
  void finishMigration();
  void retireEmptyDrains();
  /// Deliver the captured reduction result (checkpoint first, like the
  /// un-intercepted path would have).
  void releaseCapture();
  /// Schedule a serial-context event `delay` after now.
  void scheduleSerialAfter(sim::Time delay, std::function<void()> fn);

  Runtime& rts_;
  /// Non-null when the topology supports growth; drains work either way.
  std::shared_ptr<topo::ElasticTopology> elastic_;
  ScalePlan plan_;
  /// Handoff shipping rides its own go-back-N link (like the checkpoint
  /// shard link) so drained state survives the same wire faults the
  /// application traffic does.
  fault::ReliableLink handoffLink_;

  /// Per-PE lifecycle state; extended in serial phases only.
  std::vector<PeState> states_;
  /// Hot-path flags interceptRoot reads from shard threads.
  std::atomic<int> drainingCount_{0};
  std::atomic<bool> rebalancePending_{false};
  std::atomic<bool> captureActive_{false};

  /// Captured cut (valid while captureActive_).
  ArrayId capturedArray_ = -1;
  std::uint32_t capturedRound_ = 0;
  Runtime::ReduceAgg capturedAgg_;
  /// Arrays skipped by the last migration pass (open reduction rounds).
  bool migrationIncomplete_ = false;
  int outstandingHandoffs_ = 0;
  /// Bumped whenever an in-flight migration is cancelled (crash, restore);
  /// deferred handoff closures from an older epoch no-op.
  std::uint64_t migrationEpoch_ = 0;

  std::uint64_t scaleOuts_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t elementsMigrated_ = 0;
  std::uint64_t handoffBytes_ = 0;
  std::uint64_t handoffRetries_ = 0;
  std::uint64_t migrationsAborted_ = 0;
};

}  // namespace ckd::charm
