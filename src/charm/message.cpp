#include "charm/message.hpp"

#include <cstring>

#include "util/require.hpp"

namespace ckd::charm {

MessagePtr Message::make(const Envelope& env,
                         std::span<const std::byte> payload) {
  auto msg = makeUninit(env, payload.size());
  if (!payload.empty())
    std::memcpy(msg->wire_.data() + kWireHeaderBytes, payload.data(),
                payload.size());
  return msg;
}

MessagePtr Message::makeUninit(const Envelope& env, std::size_t bytes) {
  auto msg = MessagePtr(new Message());
  msg->env_ = env;
  msg->env_.payloadBytes = static_cast<std::uint32_t>(bytes);
  msg->wire_.resize(kWireHeaderBytes + bytes);
  msg->sealHeader();
  return msg;
}

MessagePtr Message::fromWire(std::span<const std::byte> wire) {
  CKD_REQUIRE(wire.size() >= kWireHeaderBytes,
              "wire image smaller than the message header");
  Envelope env;
  std::memcpy(&env, wire.data(), sizeof(Envelope));
  CKD_REQUIRE(env.magic == Envelope::kMagic, "corrupt message header");
  CKD_REQUIRE(kWireHeaderBytes + env.payloadBytes == wire.size(),
              "wire image size disagrees with the header payload size");
  return make(env, wire.subspan(kWireHeaderBytes));
}

std::span<const std::byte> Message::payload() const {
  return {wire_.data() + kWireHeaderBytes, env_.payloadBytes};
}

std::span<std::byte> Message::payload() {
  return {wire_.data() + kWireHeaderBytes, env_.payloadBytes};
}

void Message::sealHeader() {
  std::memset(wire_.data(), 0, kWireHeaderBytes);
  std::memcpy(wire_.data(), &env_, sizeof(Envelope));
}

}  // namespace ckd::charm
