#include "charm/message.hpp"

#include <cstring>

#include "util/require.hpp"

namespace ckd::charm {

MessagePtr Message::alloc() {
  // Message + control block in one pooled allocation.
  return std::allocate_shared<Message>(util::PoolAllocator<Message>{},
                                       Private{});
}

MessagePtr Message::make(const Envelope& env,
                         std::span<const std::byte> payload) {
  auto msg = makeUninit(env, payload.size());
  if (!payload.empty())
    std::memcpy(msg->wire_.data() + kWireHeaderBytes, payload.data(),
                payload.size());
  return msg;
}

MessagePtr Message::makeUninit(const Envelope& env, std::size_t bytes) {
  MessagePtr msg = alloc();
  msg->env_ = env;
  msg->env_.payloadBytes = static_cast<std::uint32_t>(bytes);
  msg->wire_ = util::PooledBuffer(kWireHeaderBytes + bytes);
  // sealHeader initializes the header bytes; the payload region stays
  // uninitialized on purpose (see the header comment).
  msg->sealHeader();
  return msg;
}

MessagePtr Message::makeLanding(std::size_t wireBytes) {
  CKD_REQUIRE(wireBytes >= kWireHeaderBytes,
              "landing buffer smaller than the message header");
  MessagePtr msg = alloc();
  msg->wire_ = util::PooledBuffer(wireBytes);
  return msg;
}

void Message::adoptHeader() {
  CKD_REQUIRE(wire_.size() >= kWireHeaderBytes,
              "wire image smaller than the message header");
  std::memcpy(&env_, wire_.data(), sizeof(Envelope));
  CKD_REQUIRE(env_.magic == Envelope::kMagic, "corrupt message header");
  CKD_REQUIRE(kWireHeaderBytes + env_.payloadBytes == wire_.size(),
              "wire image size disagrees with the header payload size");
}

MessagePtr Message::fromWire(std::span<const std::byte> wire) {
  CKD_REQUIRE(wire.size() >= kWireHeaderBytes,
              "wire image smaller than the message header");
  MessagePtr msg = alloc();
  msg->wire_ = util::PooledBuffer(wire.size());
  std::memcpy(msg->wire_.data(), wire.data(), wire.size());
  msg->adoptHeader();
  return msg;
}

std::span<const std::byte> Message::payload() const {
  return {wire_.data() + kWireHeaderBytes, env_.payloadBytes};
}

std::span<std::byte> Message::payload() {
  return {wire_.data() + kWireHeaderBytes, env_.payloadBytes};
}

void Message::sealHeader() {
  std::memcpy(wire_.data(), &env_, sizeof(Envelope));
  std::memset(wire_.data() + sizeof(Envelope), 0,
              kWireHeaderBytes - sizeof(Envelope));
}

}  // namespace ckd::charm
