#pragma once
// Runtime: the simulated message-driven machine. Owns the event engine, the
// fabric, the machine layer (InfiniBand verbs or BG/P DCMF), one scheduler
// and one simulated processor per PE, the chare-array registry, and the
// reduction/broadcast trees.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "charm/chare.hpp"
#include "charm/costs.hpp"
#include "charm/message.hpp"
#include "charm/scheduler.hpp"
#include "fault/fault.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/processor.hpp"
#include "topo/topology.hpp"

namespace ckd::ib {
class IbVerbs;
}
namespace ckd::dcmf {
class DcmfContext;
}

namespace ckd::charm {

class Transport;
class CheckpointManager;
class LifecycleManager;

enum class LayerKind { kInfiniband, kBlueGene };

struct MachineConfig {
  topo::TopologyPtr topology;
  net::CostParams netParams;
  RuntimeCosts costs;
  LayerKind layer = LayerKind::kInfiniband;
  /// Fault-injection plan, installed on the fabric at construction when
  /// armed. An empty/unarmed plan (the default) changes nothing.
  fault::FaultPlan faults;
  std::uint64_t faultSeed = 1;
  /// Minimum virtual time between buddy checkpoints. Only consulted when the
  /// fault plan schedules pe_crash events (checkpointing costs nothing
  /// otherwise because the manager is never created).
  sim::Time checkpointPeriod_us = 100.0;
  /// Discrete-event execution mode. 0 = the classic single engine. N >= 1 =
  /// the windowed sharded engine (sim::ParallelEngine) with min(N, numNodes)
  /// node-aligned shards; 1 is the serial baseline of the determinism gate
  /// (same windowed semantics, one shard). Every shard count produces
  /// bit-identical results; only wall-clock differs.
  int shards = 0;
  /// Worker threads for the sharded engine; 0 = min(shards, host cores).
  int shardThreads = 0;
  /// Pin shard worker threads (and the coordinator) to CPUs
  /// (--pin-threads). Best effort; the achieved count lands in the bench
  /// host JSON.
  bool pinShardThreads = false;
  /// Virtual time between fail-stop heartbeats (--heartbeat-period).
  sim::Time heartbeatPeriod_us = 5.0;
  /// Consecutive silent beat periods before a PE is declared dead
  /// (--heartbeat-misses).
  int heartbeatMisses = 4;
  /// Elastic lifecycle script (--scale-plan): `scale_out@<t>;pes=<n>` /
  /// `drain@<t>;pe=<k>` rules, comma-separated. Non-empty implies
  /// `elastic = true`.
  std::string scalePlan;
  /// Create the LifecycleManager even with an empty scale plan, for
  /// programmatic requestScaleOut()/requestDrain() triggering.
  bool elastic = false;
  /// Drains that would leave fewer than this many active PEs are rejected.
  int minPes = 2;
  /// Streaming telemetry (--metrics-interval): > 0 arms the SLO histograms
  /// on every engine and samples a flight-recorder snapshot each this many
  /// virtual microseconds. 0 (default) compiles the whole path down to one
  /// disarmed branch per feed point.
  double metricsInterval_us = 0.0;
  /// Flight-recorder ring capacity (--metrics-snapshots); oldest snapshots
  /// drop (and are counted) once full.
  std::size_t metricsSnapshots = 512;
};

class Runtime {
 public:
  explicit Runtime(MachineConfig config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- machine access -------------------------------------------------------

  /// Engine of the calling execution context: the classic single engine, or
  /// — under --shards — the current thread's shard engine (the serial engine
  /// from setup/coordinator code). All timing reads and direct scheduling by
  /// the layers go through this.
  sim::Engine& engine() {
    return parallel_ ? parallel_->current() : engine_;
  }
  /// True when the machine runs on the windowed sharded engine.
  bool windowed() const { return parallel_ != nullptr; }
  sim::ParallelEngine* parallelEngine() { return parallel_.get(); }
  const sim::ParallelEngine* parallelEngine() const { return parallel_.get(); }
  net::Fabric& fabric() { return *fabric_; }
  const topo::Topology& topology() const { return *config_.topology; }
  const RuntimeCosts& costs() const { return config_.costs; }
  LayerKind layer() const { return config_.layer; }
  int numPes() const { return config_.topology->numPes(); }

  Scheduler& scheduler(int pe);
  sim::Processor& processor(int pe);

  /// The verbs layer (InfiniBand machines only).
  ib::IbVerbs& ibVerbs();
  /// The DCMF layer (Blue Gene machines only).
  dcmf::DcmfContext& dcmf();

  /// PE whose handler is currently executing on THIS thread, or -1 between
  /// handlers (thread-local: each shard worker tracks its own pumping PE).
  int currentPe() const { return currentPe_; }
  void setCurrentPe(int pe) {
    currentPe_ = pe;
    // The pumping PE is also the canonical ordering key for serial events
    // issued from inside its handlers (checkpoint commits and the like).
    if (parallel_ && parallel_->currentShard() >= 0)
      parallel_->setSerialSrcPe(pe);
  }

  /// Schedule `fn` at `when` on `pe`'s home engine. Same-shard (and legacy
  /// single-engine) calls go straight to the heap; this is the required
  /// path for PE-local work whose latency may sit below the lookahead
  /// (scheduler pumps, self-sends, intra-node hops).
  template <class F>
  void schedAt(int pe, sim::Time when, F&& fn) {
    if (parallel_)
      parallel_->atLocal(pe, when, std::forward<F>(fn));
    else
      engine_.at(when, std::forward<F>(fn));
  }

  /// Run `fn` in serial context at the earliest globally-safe instant: the
  /// current window's ceiling under the sharded engine (every shard parked,
  /// cross-shard state free to touch), immediately on the legacy engine.
  template <class F>
  void runAtSerialBoundary(F&& fn) {
    if (parallel_)
      parallel_->atSerialBoundary(std::forward<F>(fn));
    else
      fn();
  }

  // --- fail-stop tolerance ---------------------------------------------------

  /// Restart epoch: bumped on every fail-stop recovery. Every message is
  /// stamped with the epoch it was sent in; schedulers drop stale-epoch
  /// arrivals so pre-crash traffic cannot land in rolled-back state.
  std::uint32_t epoch() const { return epoch_; }

  /// False while `pe` is crashed (between the fail-stop event and restore).
  bool peAlive(int pe) const {
    return !schedulers_[static_cast<std::size_t>(pe)]->dead();
  }

  /// Checkpoint/restart manager; null unless the fault plan schedules
  /// pe_crash events.
  CheckpointManager* checkpoints() const { return ckpt_.get(); }

  /// Elastic lifecycle supervisor; null unless the config asked for it
  /// (non-empty scalePlan, or elastic = true).
  LifecycleManager* lifecycle() const { return lifecycle_.get(); }

  /// Hook the restart protocol runs after chare state is restored, so the
  /// CkDirect manager (which charm cannot depend on) can re-register memory
  /// and re-run its handle handshake under the new epoch.
  void setReestablishHook(std::function<void()> fn) {
    reestablishHook_ = std::move(fn);
  }

  /// Hook run after the machine grows (elastic scale-out), so layers that
  /// size per-PE state (the CkDirect managers) can extend it.
  void setGrowHook(std::function<void()> fn) { growHook_ = std::move(fn); }

  /// Hook run once per element migrated by the lifecycle manager, with
  /// (array, index, fromPe, toPe). Applications that own CkDirect channels
  /// for the element rehome them here.
  using MigrateFn = std::function<void(ArrayId, std::int64_t, int, int)>;
  void setMigrateHook(MigrateFn fn) { migrateHook_ = std::move(fn); }

  // --- chare arrays ----------------------------------------------------------

  using MapFn = std::function<int(std::int64_t index)>;
  using EntryFn = std::function<void(Chare&, Message&)>;

  /// Create a chare array. `factory(i)` builds element i; `map(i)` places it.
  /// All elements are constructed eagerly (the paper's applications have
  /// static arrays).
  template <class T>
  ArrayId createArray(std::string name, std::int64_t count, MapFn map,
                      std::function<std::unique_ptr<T>(std::int64_t)> factory) {
    static_assert(std::is_base_of_v<Chare, T>, "array elements must be Chares");
    const ArrayId id = beginArray(std::move(name), count, std::move(map));
    for (std::int64_t i = 0; i < count; ++i) {
      std::unique_ptr<T> obj = factory(i);
      placeElement(id, i, std::move(obj));
    }
    return id;
  }

  /// Register an entry method on an array; returns its stable EntryId.
  template <class T>
  EntryId registerEntry(ArrayId array, const char* name,
                        void (T::*method)(Message&)) {
    return registerEntryRaw(array, name, [method](Chare& c, Message& m) {
      (static_cast<T&>(c).*method)(m);
    });
  }
  EntryId registerEntryRaw(ArrayId array, const char* name, EntryFn fn);

  std::int64_t arraySize(ArrayId array) const;
  int homePe(ArrayId array, std::int64_t index) const;
  Chare& element(ArrayId array, std::int64_t index);
  const std::vector<std::int64_t>& elementsOnPe(ArrayId array, int pe) const;

  // --- messaging --------------------------------------------------------------

  /// Invoke `entry` on element `index` with the given payload. The source PE
  /// is the currently executing PE (or PE 0 from setup code).
  void sendToElement(ArrayId array, std::int64_t index, EntryId entry,
                     std::span<const std::byte> payload);

  /// Deliver `entry` with `payload` to every element, via a PE spanning tree.
  void broadcast(ArrayId array, EntryId entry,
                 std::span<const std::byte> payload);

  /// Element contribution to the array's reduction (see Chare::contribute).
  void contribute(ArrayId array, std::int64_t index,
                  std::span<const double> values, ReduceOp op,
                  EntryId completion);

  /// Low-level: route a fully formed message (pays pack/send overhead on the
  /// source PE when called from a handler).
  void sendMessage(MessagePtr msg);

  /// Scheduler upcall: dispatch a dequeued message.
  void deliver(Message& msg);

  // --- extensions (CkDirect attaches here; avoids a module cycle) -------------
  void setExtension(std::shared_ptr<void> ext) { extension_ = std::move(ext); }
  const std::shared_ptr<void>& extension() const { return extension_; }

  // --- driving -----------------------------------------------------------------

  /// Schedule `fn` at t=0, before any messages flow (mainchare-style setup).
  void seed(std::function<void()> fn) {
    if (parallel_)
      parallel_->atSerial(0.0, std::move(fn));
    else
      engine_.at(0.0, std::move(fn));
  }

  /// Run the machine until quiescence (no pending events).
  void run() {
    if (parallel_)
      parallel_->run();
    else
      engine_.run();
  }
  /// Completion horizon: max clock over every engine of the machine.
  sim::Time now() const {
    return parallel_ ? parallel_->horizon() : engine_.now();
  }

  /// Events executed across every engine of the machine.
  std::uint64_t executedEvents() const {
    return parallel_ ? parallel_->executedEvents() : engine_.executedEvents();
  }
  /// Enable causal tracing on every engine; `capacity` != 0 resizes each
  /// ring first.
  void enableTracing(std::size_t capacity = 0);
  /// Retained trace events, merged across shards in canonical order.
  std::vector<sim::TraceEvent> traceEvents() const;

  /// Arm streaming telemetry: SLO histograms on every engine, plus — when
  /// `interval_us` > 0 — a flight recorder snapshotting every registered
  /// probe and the merged SLO view each `interval_us` of virtual time.
  /// Called from the ctor when the config sets metricsInterval_us; tests
  /// call it with interval 0 to get histograms without sampling. Read-only
  /// by construction: arming never changes simulation results.
  void enableMetrics(double interval_us = 0.0, std::size_t snapshots = 0);
  bool metricsArmed() const { return metricsArmed_; }
  /// The ckd.metrics.v1 document: flight-recorder series (empty when no
  /// interval was set) plus the shard-merged SLO summary.
  util::JsonValue metricsJson();

  std::uint64_t messagesSent() const {
    return messagesSent_.load(std::memory_order_relaxed);
  }

 private:
  struct ReduceAgg {
    int ownContrib = 0;
    int childSeen = 0;
    bool hasData = false;
    std::vector<double> partial;
    ReduceOp op = ReduceOp::kNop;
    EntryId completion = -1;
  };
  struct PeReduceState {
    std::map<std::uint32_t, ReduceAgg> rounds;
  };
  struct ArrayRecord {
    std::string name;
    std::int64_t count = 0;
    std::vector<int> peOf;                      // index -> home PE
    std::vector<std::unique_ptr<Chare>> elems;  // index -> object
    std::vector<EntryFn> entries;
    std::vector<std::string> entryNames;
    std::vector<int> hostPes;                    // sorted PEs with elements
    std::map<int, int> hostPos;                  // pe -> position in hostPes
    std::vector<std::vector<std::int64_t>> onPe;  // pe -> local indices
    std::vector<PeReduceState> reduce;            // indexed by hostPos
  };

  ArrayId beginArray(std::string name, std::int64_t count, MapFn map);
  void placeElement(ArrayId id, std::int64_t index, std::unique_ptr<Chare> obj);
  ArrayRecord& record(ArrayId id);
  const ArrayRecord& record(ArrayId id) const;

  /// Resolve the effective source PE for a send issued right now.
  int effectiveSrcPe() const { return currentPe_ >= 0 ? currentPe_ : 0; }

  /// Next envelope sequence number for a message from `srcPe`.
  std::uint64_t nextMsgSeq(int srcPe);

  void handleBroadcast(Message& msg);
  void handleReduceUp(Message& msg);
  void handleReduceDown(Message& msg);
  void accumulate(ReduceAgg& agg, std::span<const double> values, ReduceOp op,
                  EntryId completion);
  void tryFlushReduction(ArrayRecord& a, int hostPos, std::uint32_t round);
  void deliverReductionResult(ArrayRecord& a, int hostPos, std::uint32_t round,
                              const ReduceAgg& agg);
  void enqueueLocalUser(ArrayId array, std::int64_t index, EntryId entry,
                        std::span<const std::byte> payload, int pe);

  static int treeParent(int pos) { return (pos - 1) / 2; }
  static int treeChild(int pos, int which) { return 2 * pos + 1 + which; }

  /// Rebuild an array's derived placement structures (onPe, hostPes,
  /// hostPos, reduce) from peOf after a rebind. Requires every reduction
  /// round of the array to be closed — migrations happen at reduction cuts.
  void rebuildPlacement(ArrayRecord& rec);

  /// Pick up a topology that grew (elastic scale-out, serial phase only):
  /// extend the fabric ports, the shard map, the per-PE minting tables,
  /// schedulers/processors, per-array onPe vectors, and notify the
  /// checkpoint manager and the grow hook.
  void growMachine();

  /// The checkpoint manager reaches into the array registry, reduction
  /// state, and machine layers to implement pack/restore.
  friend class CheckpointManager;
  /// The lifecycle manager drives placement rebinds, machine growth, and
  /// the drain/retire protocol.
  friend class LifecycleManager;

  MachineConfig config_;
  sim::Engine engine_;
  /// Sharded engine (--shards); declared before the fabric so the fabric
  /// (which schedules through it) is destroyed first.
  std::unique_ptr<sim::ParallelEngine> parallel_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<ib::IbVerbs> ib_;
  std::unique_ptr<dcmf::DcmfContext> dcmf_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  /// Deque, not vector: elastic growth appends processors mid-run and
  /// references held by running handlers must stay valid.
  std::deque<sim::Processor> processors_;
  std::vector<ArrayRecord> arrays_;
  std::shared_ptr<void> extension_;
  std::unique_ptr<CheckpointManager> ckpt_;
  std::unique_ptr<LifecycleManager> lifecycle_;
  /// Flight recorder sampled by whichever engine drives the run; created by
  /// enableMetrics when an interval is set.
  std::unique_ptr<obs::FlightRecorder> flight_;
  bool metricsArmed_ = false;
  std::function<void()> reestablishHook_;
  std::function<void()> growHook_;
  MigrateFn migrateHook_;
  std::uint32_t epoch_ = 0;
  /// Thread-local: each shard worker executes handlers for its own PEs.
  static thread_local int currentPe_;
  /// Legacy mode: one global message sequence (the historical stream).
  std::uint64_t nextSeq_ = 0;
  /// Windowed mode: per-PE sequence spaces, seq = (pe+1)<<40 | counter.
  /// Slot pe+1 is touched only by pe's shard thread (or the coordinator
  /// while every shard is parked); slot 0 is the serial context.
  std::vector<std::uint64_t> peMsgSeq_;
  std::atomic<std::uint64_t> messagesSent_{0};
};

}  // namespace ckd::charm
