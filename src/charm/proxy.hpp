#pragma once
// Typed convenience wrappers over Runtime's array API, playing the role of
// Charm++'s generated proxy classes.

#include <span>
#include <utility>

#include "charm/marshal.hpp"
#include "charm/runtime.hpp"

namespace ckd::charm {

template <class T>
class ElementRef {
 public:
  ElementRef(Runtime& rts, ArrayId array, std::int64_t index)
      : rts_(&rts), array_(array), index_(index) {}

  /// Invoke a registered entry with a raw byte payload.
  void send(EntryId entry, std::span<const std::byte> payload = {}) const {
    rts_->sendToElement(array_, index_, entry, payload);
  }

  /// Invoke a registered entry with a marshalled payload.
  void send(EntryId entry, const Packer& packer) const {
    rts_->sendToElement(array_, index_, entry, packer.bytes());
  }

  /// Direct object access (tests / co-located setup code).
  T& local() const { return static_cast<T&>(rts_->element(array_, index_)); }

  int homePe() const { return rts_->homePe(array_, index_); }
  std::int64_t index() const { return index_; }

 private:
  Runtime* rts_;
  ArrayId array_;
  std::int64_t index_;
};

template <class T>
class ArrayProxy {
 public:
  ArrayProxy() = default;
  ArrayProxy(Runtime& rts, ArrayId array) : rts_(&rts), array_(array) {}

  ArrayId id() const { return array_; }
  std::int64_t size() const { return rts_->arraySize(array_); }
  Runtime& rts() const { return *rts_; }

  ElementRef<T> operator[](std::int64_t index) const {
    return ElementRef<T>(*rts_, array_, index);
  }

  EntryId registerEntry(const char* name, void (T::*method)(Message&)) const {
    return rts_->registerEntry<T>(array_, name, method);
  }

  void broadcast(EntryId entry, std::span<const std::byte> payload = {}) const {
    rts_->broadcast(array_, entry, payload);
  }
  void broadcast(EntryId entry, const Packer& packer) const {
    rts_->broadcast(array_, entry, packer.bytes());
  }

 private:
  Runtime* rts_ = nullptr;
  ArrayId array_ = kSystemArray;
};

/// Create an array and return its typed proxy in one call.
template <class T, class Factory>
ArrayProxy<T> makeArray(Runtime& rts, std::string name, std::int64_t count,
                        Runtime::MapFn map, Factory factory) {
  const ArrayId id = rts.createArray<T>(
      std::move(name), count, std::move(map),
      [factory = std::move(factory)](std::int64_t i) mutable {
        return factory(i);
      });
  return ArrayProxy<T>(rts, id);
}

}  // namespace ckd::charm
