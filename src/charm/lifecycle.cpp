#include "charm/lifecycle.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "charm/checkpoint.hpp"
#include "charm/pup.hpp"
#include "util/require.hpp"

namespace ckd::charm {

std::string_view peStateName(PeState state) {
  switch (state) {
    case PeState::kActive:   return "Active";
    case PeState::kJoining:  return "Joining";
    case PeState::kDraining: return "Draining";
    case PeState::kRetired:  return "Retired";
  }
  return "?";
}

namespace {

std::vector<std::string> splitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else if (c != ' ') {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

double parseNumber(const std::string& text, const char* what) {
  std::size_t used = 0;
  double value = 0.0;
  bool ok = !text.empty();
  if (ok) {
    try {
      value = std::stod(text, &used);
    } catch (...) {
      ok = false;
    }
  }
  CKD_REQUIRE(ok && used == text.size(), what);
  return value;
}

}  // namespace

ScalePlan parseScalePlan(const std::string& spec) {
  ScalePlan plan;
  if (spec.empty()) return plan;
  for (const std::string& ruleText : splitOn(spec, ',')) {
    CKD_REQUIRE(!ruleText.empty(), "empty rule in --scale-plan spec");
    const std::vector<std::string> parts = splitOn(ruleText, ';');
    const std::string& head = parts.front();
    ScaleRule rule;
    std::size_t at = std::string::npos;
    if (head.rfind("scale_out@", 0) == 0) {
      rule.kind = ScaleRule::Kind::kScaleOut;
      at = std::strlen("scale_out@");
    } else if (head.rfind("drain@", 0) == 0) {
      rule.kind = ScaleRule::Kind::kDrain;
      at = std::strlen("drain@");
    } else {
      CKD_REQUIRE(false,
                  "--scale-plan rule must start with scale_out@ or drain@");
    }
    rule.at = parseNumber(head.substr(at), "bad time in --scale-plan spec");
    CKD_REQUIRE(rule.at >= 0.0, "--scale-plan time must be >= 0");
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::size_t eq = parts[i].find('=');
      CKD_REQUIRE(eq != std::string::npos,
                  "--scale-plan option must be key=value");
      const std::string key = parts[i].substr(0, eq);
      const std::string value = parts[i].substr(eq + 1);
      if (key == "pes") {
        CKD_REQUIRE(rule.kind == ScaleRule::Kind::kScaleOut,
                    "pes= is only valid on scale_out rules");
        rule.pes = static_cast<int>(
            parseNumber(value, "bad pes in --scale-plan spec"));
      } else if (key == "pe") {
        CKD_REQUIRE(rule.kind == ScaleRule::Kind::kDrain,
                    "pe= is only valid on drain rules");
        rule.pe = static_cast<int>(
            parseNumber(value, "bad pe in --scale-plan spec"));
      } else {
        CKD_REQUIRE(false, "unknown option in --scale-plan spec");
      }
    }
    if (rule.kind == ScaleRule::Kind::kScaleOut)
      CKD_REQUIRE(rule.pes > 0, "scale_out rule needs pes=<n> with n > 0");
    else
      CKD_REQUIRE(rule.pe >= 0, "drain rule needs pe=<k>");
    plan.rules.push_back(rule);
  }
  return plan;
}

LifecycleManager::LifecycleManager(Runtime& rts)
    : rts_(rts),
      elastic_(topo::ElasticTopology::fromShared(rts.config_.topology)),
      plan_(parseScalePlan(rts.config_.scalePlan)),
      handoffLink_(rts.fabric(), rts.config_.faults.rel),
      states_(static_cast<std::size_t>(rts.numPes()), PeState::kActive) {
  CKD_REQUIRE(rts_.config_.minPes >= 1, "minPes must be at least 1");
  for (const ScaleRule& rule : plan_.rules) {
    if (rule.kind == ScaleRule::Kind::kScaleOut)
      CKD_REQUIRE(elastic_ != nullptr,
                  "--scale-plan scale_out rules require an ElasticTopology "
                  "machine");
    scheduleRule(rule);
  }
}

void LifecycleManager::scheduleRule(const ScaleRule& rule) {
  // Scripted rules fire as serial events at their absolute virtual times —
  // same discipline as the fail-stop crash schedule.
  auto fire = [this, rule]() {
    if (rule.kind == ScaleRule::Kind::kScaleOut)
      requestScaleOut(rule.pes);
    else
      requestDrain(rule.pe);
  };
  if (rts_.parallel_ != nullptr)
    rts_.parallel_->atSerial(rule.at, std::move(fire));
  else
    rts_.engine_.at(rule.at, std::move(fire));
}

void LifecycleManager::scheduleSerialAfter(sim::Time delay,
                                           std::function<void()> fn) {
  if (rts_.parallel_ != nullptr)
    rts_.parallel_->atSerial(rts_.parallel_->serialEngine().now() + delay,
                             std::move(fn));
  else
    rts_.engine_.after(delay, std::move(fn));
}

int LifecycleManager::activePes() const {
  int active = 0;
  for (const PeState s : states_)
    if (s == PeState::kActive) ++active;
  return active;
}

bool LifecycleManager::migrationPending() const {
  return drainingCount_.load(std::memory_order_relaxed) > 0 ||
         rebalancePending_.load(std::memory_order_relaxed) ||
         captureActive_.load(std::memory_order_relaxed) ||
         outstandingHandoffs_ > 0;
}

// --- scale-out ---------------------------------------------------------------

void LifecycleManager::requestScaleOut(int addPes) {
  CKD_REQUIRE(elastic_ != nullptr,
              "scale-out requires an ElasticTopology machine");
  CKD_REQUIRE(addPes > 0 && addPes % elastic_->pesPerNode() == 0,
              "scale-out adds whole nodes: pes must be a positive multiple "
              "of pesPerNode");
  // The machine mutates in a serial phase: every shard parked, no event can
  // target the new PEs before every layer has been extended.
  rts_.runAtSerialBoundary([this, addPes]() { doScaleOut(addPes); });
}

void LifecycleManager::doScaleOut(int addPes) {
  const int oldPes = rts_.numPes();
  elastic_->grow(addPes / elastic_->pesPerNode());
  rts_.growMachine();
  const int newPes = rts_.numPes();
  states_.resize(static_cast<std::size_t>(newPes), PeState::kJoining);
  ++scaleOuts_;
  rts_.engine().trace().record(rts_.engine().now(), oldPes,
                               sim::TraceTag::kLifeScaleOut,
                               static_cast<double>(newPes));
  // The join handshake (boot + wireup announcement) takes a fixed modeled
  // latency; the PEs turn Active together and the next cut rebalances.
  scheduleSerialAfter(kJoinLatencyUs,
                      [this, oldPes, newPes]() { completeJoin(oldPes, newPes); });
}

void LifecycleManager::completeJoin(int firstPe, int lastPe) {
  for (int pe = firstPe; pe < lastPe; ++pe) {
    if (states_[static_cast<std::size_t>(pe)] != PeState::kJoining) continue;
    states_[static_cast<std::size_t>(pe)] = PeState::kActive;
    rts_.engine().trace().record(rts_.engine().now(), pe,
                                 sim::TraceTag::kLifeJoin,
                                 static_cast<double>(pe));
  }
  rebalancePending_.store(true, std::memory_order_relaxed);
}

// --- drain -------------------------------------------------------------------

void LifecycleManager::requestDrain(int pe) {
  CKD_REQUIRE(pe >= 0 && pe < rts_.numPes(), "drain PE out of range");
  // Synchronous rejection so misuse dies at the request site: a PE can only
  // drain out of Active (double drains and drains of joining/retired PEs
  // are bugs), and the machine keeps a minimum active quorum.
  CKD_REQUIRE(states_[static_cast<std::size_t>(pe)] == PeState::kActive,
              "drain rejected: PE is not Active (double drain?)");
  CKD_REQUIRE(activePes() - 1 >= rts_.config_.minPes,
              "drain rejected: would leave the machine below the minimum "
              "active PE count");
  states_[static_cast<std::size_t>(pe)] = PeState::kDraining;
  drainingCount_.fetch_add(1, std::memory_order_relaxed);
  rts_.engine().trace().record(rts_.engine().now(), pe,
                               sim::TraceTag::kLifeDrain,
                               static_cast<double>(pe));
}

// --- migration at the reduction cut ------------------------------------------

bool LifecycleManager::interceptRoot(ArrayId array, std::uint32_t round,
                                     const Runtime::ReduceAgg& agg) {
  if (drainingCount_.load(std::memory_order_relaxed) == 0 &&
      !rebalancePending_.load(std::memory_order_relaxed))
    return false;
  // During a fail-stop outage no cut is migratable; the rollback reverts
  // placement anyway and the post-restore cut re-drives the migration.
  if (rts_.ckpt_ != nullptr && rts_.ckpt_->outageInProgress()) return false;
  // Claim the capture (two arrays may root-flush in one window on different
  // shards; exactly one cut drives the migration, the other proceeds
  // normally).
  bool expected = false;
  if (!captureActive_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel))
    return false;
  capturedArray_ = array;
  capturedRound_ = round;
  capturedAgg_ = agg;
  const std::uint64_t epoch = migrationEpoch_;
  auto body = [this, epoch]() {
    if (epoch != migrationEpoch_) return;  // aborted by a crash meanwhile
    performMigration();
  };
  if (rts_.parallel_ != nullptr) {
    rts_.parallel_->atSerialBoundary(std::move(body));
  } else {
    // Legacy engine: runAtSerialBoundary would run the body synchronously,
    // INSIDE tryFlushReduction — before the captured root round is erased,
    // so the capturing array would look mid-reduction and the placement
    // rebind would trip the open-round assert. A zero-delay event runs
    // after the flush unwinds, matching the windowed boundary semantics.
    rts_.engine_.after(0.0, std::move(body));
  }
  return true;
}

void LifecycleManager::collectMoves(ArrayId array,
                                    std::vector<Move>& moves) const {
  const Runtime::ArrayRecord& rec =
      rts_.arrays_[static_cast<std::size_t>(array)];
  const int pes = rts_.numPes();
  std::vector<int> eligible;
  for (int pe = 0; pe < pes; ++pe)
    if (states_[static_cast<std::size_t>(pe)] == PeState::kActive)
      eligible.push_back(pe);
  if (eligible.empty()) return;
  // Balanced floor/ceil targets over the active PEs (remainder to the
  // lowest-indexed). Draining/retired/joining PEs target zero, so a drain
  // and a post-scale-out rebalance are the same computation.
  const auto nEligible = static_cast<std::int64_t>(eligible.size());
  const std::int64_t base = rec.count / nEligible;
  const std::int64_t rem = rec.count % nEligible;
  std::vector<std::int64_t> target(static_cast<std::size_t>(pes), 0);
  for (std::int64_t i = 0; i < nEligible; ++i)
    target[static_cast<std::size_t>(eligible[static_cast<std::size_t>(i)])] =
        base + (i < rem ? 1 : 0);
  // Deterministic donor pool: PE-ascending, shedding last-placed elements
  // first; receivers fill PE-ascending. Bit-identical for every shard count
  // because it runs in a serial phase over serial-phase state.
  std::vector<std::pair<std::int64_t, int>> pool;  // (element index, from)
  for (int pe = 0; pe < pes; ++pe) {
    const std::vector<std::int64_t>& local =
        rec.onPe[static_cast<std::size_t>(pe)];
    const std::int64_t excess =
        static_cast<std::int64_t>(local.size()) -
        target[static_cast<std::size_t>(pe)];
    for (std::int64_t k = 0; k < excess; ++k)
      pool.emplace_back(local[local.size() - 1 - static_cast<std::size_t>(k)],
                        pe);
  }
  std::size_t next = 0;
  for (int pe = 0; pe < pes && next < pool.size(); ++pe) {
    std::int64_t deficit =
        target[static_cast<std::size_t>(pe)] -
        static_cast<std::int64_t>(rec.onPe[static_cast<std::size_t>(pe)].size());
    while (deficit-- > 0 && next < pool.size()) {
      moves.push_back(Move{array, pool[next].first, pool[next].second, pe});
      ++next;
    }
  }
}

void LifecycleManager::performMigration() {
  // An outage began between the capture and this boundary: drop the capture
  // — the rollback replays from an earlier cut and re-drives everything.
  if (rts_.ckpt_ != nullptr && rts_.ckpt_->outageInProgress()) {
    ++migrationsAborted_;
    rts_.engine().trace().record(rts_.engine().now(), 0,
                                 sim::TraceTag::kLifeAbort, 0.0);
    ++migrationEpoch_;
    captureActive_.store(false, std::memory_order_release);
    return;
  }

  migrationIncomplete_ = false;
  std::vector<Move> moves;
  std::vector<bool> touched(rts_.arrays_.size(), false);
  for (std::size_t a = 0; a < rts_.arrays_.size(); ++a) {
    const Runtime::ArrayRecord& rec = rts_.arrays_[a];
    bool open = false;
    for (const Runtime::PeReduceState& state : rec.reduce)
      if (!state.rounds.empty()) open = true;
    if (open) {
      // This array is mid-reduction at another array's cut; its elements
      // stay put this time and the pending flags keep the next cut trying.
      migrationIncomplete_ = true;
      continue;
    }
    const std::size_t before = moves.size();
    collectMoves(static_cast<ArrayId>(a), moves);
    if (moves.size() != before) touched[a] = true;
  }

  if (!migrationIncomplete_)
    rebalancePending_.store(false, std::memory_order_relaxed);

  if (moves.empty()) {
    // Nothing resident to move (e.g. draining PEs host no elements).
    retireEmptyDrains();
    releaseCapture();
    return;
  }

  // Rebind placement. The elements themselves never move in memory — only
  // their simulated home PE changes — so CkDirect buffer addresses stay
  // valid and the handoff below is a pure cost/wire model of the state
  // actually shipping.
  for (const Move& m : moves) {
    Runtime::ArrayRecord& rec = rts_.arrays_[static_cast<std::size_t>(m.array)];
    rec.peOf[static_cast<std::size_t>(m.index)] = m.to;
    rec.elems[static_cast<std::size_t>(m.index)]->_rebind(m.to);
    if (rts_.migrateHook_) rts_.migrateHook_(m.array, m.index, m.from, m.to);
    ++elementsMigrated_;
  }
  for (std::size_t a = 0; a < touched.size(); ++a)
    if (touched[a]) rts_.rebuildPlacement(rts_.arrays_[a]);

  // Measure and ship the moved state per (source, destination) pair over
  // the dedicated handoff link — PUP shards, exactly like the buddy
  // checkpoint shipping. The captured reduction result is held until every
  // shard lands.
  std::map<std::pair<int, int>, std::size_t> shardBytes;
  for (const Move& m : moves) {
    const Runtime::ArrayRecord& rec =
        rts_.arrays_[static_cast<std::size_t>(m.array)];
    Packer packer;
    Puper puper(packer);
    Chare& el = *rec.elems[static_cast<std::size_t>(m.index)];
    puper | el._reductionRound;
    el.pup(puper);
    shardBytes[{m.from, m.to}] += packer.bytes().size();
  }
  const double memcpyRate = rts_.fabric().params().self_per_byte_us;
  outstandingHandoffs_ = static_cast<int>(shardBytes.size());
  for (const auto& [pair, bytes] : shardBytes) {
    const auto [src, dst] = pair;
    // Pack cost is a memcpy of the shard on the draining/donor PE.
    rts_.scheduler(src).enqueueSystemWork(
        memcpyRate * static_cast<double>(bytes), []() {},
        sim::Layer::kScheduler);
    rts_.engine().trace().record(rts_.engine().now(), src,
                                 sim::TraceTag::kLifeHandoff,
                                 static_cast<double>(bytes));
    handoffBytes_ += bytes;
    shipHandoff(src, dst, bytes, /*attempts=*/0);
  }
}

void LifecycleManager::shipHandoff(int src, int dst, std::size_t stateBytes,
                                   int attempts) {
  const std::uint64_t epoch = migrationEpoch_;
  const double memcpyRate = rts_.fabric().params().self_per_byte_us;
  fault::ReliableLink::Send send;
  send.src = src;
  send.dst = dst;
  send.wireBytes = stateBytes + 32;  // shard + handoff header
  send.cls = fault::MsgClass::kBulk;
  send.on_deliver = [this, epoch, dst, stateBytes,
                     memcpyRate](std::vector<std::byte>&&) {
    rts_.runAtSerialBoundary([this, epoch, dst, stateBytes, memcpyRate]() {
      if (epoch != migrationEpoch_) return;  // migration aborted by a crash
      // Applying the shipped state is a memcpy at the adoptive PE.
      rts_.scheduler(dst).enqueueSystemWork(
          memcpyRate * static_cast<double>(stateBytes), []() {},
          sim::Layer::kScheduler);
      onHandoffArrived();
    });
  };
  send.on_error = [this, epoch, src, dst, stateBytes,
                   attempts](fault::WcStatus) {
    // Bounded retry with exponential backoff above the link's own go-back-N
    // machinery; a handoff that outlives every budget aborts loudly instead
    // of wedging the drain silently.
    rts_.runAtSerialBoundary([this, epoch, src, dst, stateBytes, attempts]() {
      if (epoch != migrationEpoch_) return;  // migration aborted by a crash
      const fault::ReliabilityParams& rel = rts_.config_.faults.rel;
      CKD_REQUIRE(attempts < rel.app_retry_budget,
                  "drain handoff failed permanently (retry budget exhausted "
                  "with no crash to roll back to)");
      handoffLink_.resetChannel(handoffChannel(src, dst));
      ++handoffRetries_;
      sim::Time delay = rel.timeout_us;
      for (int i = 0; i < attempts; ++i) delay *= rel.backoff;
      scheduleSerialAfter(delay, [this, epoch, src, dst, stateBytes,
                                  attempts]() {
        if (epoch != migrationEpoch_) return;
        shipHandoff(src, dst, stateBytes, attempts + 1);
      });
    });
  };
  handoffLink_.post(handoffChannel(src, dst), std::move(send));
}

void LifecycleManager::onHandoffArrived() {
  CKD_REQUIRE(outstandingHandoffs_ > 0, "stray handoff arrival");
  if (--outstandingHandoffs_ > 0) return;
  finishMigration();
}

void LifecycleManager::finishMigration() {
  retireEmptyDrains();
  releaseCapture();
}

void LifecycleManager::retireEmptyDrains() {
  for (int pe = 0; pe < rts_.numPes(); ++pe) {
    if (states_[static_cast<std::size_t>(pe)] != PeState::kDraining) continue;
    bool resident = false;
    for (const Runtime::ArrayRecord& rec : rts_.arrays_)
      if (!rec.onPe[static_cast<std::size_t>(pe)].empty()) resident = true;
    if (resident) continue;  // some array skipped this pass; next cut retries
    states_[static_cast<std::size_t>(pe)] = PeState::kRetired;
    drainingCount_.fetch_sub(1, std::memory_order_relaxed);
    // Retired: no chare work, no heartbeats, no buddy duty — but the
    // scheduler keeps pumping so late arrivals forward to the new owners.
    rts_.schedulers_[static_cast<std::size_t>(pe)]->setRetired(true);
    ++drains_;
    rts_.engine().trace().record(rts_.engine().now(), pe,
                                 sim::TraceTag::kLifeRetire,
                                 static_cast<double>(pe));
  }
}

void LifecycleManager::releaseCapture() {
  const ArrayId array = capturedArray_;
  const std::uint32_t round = capturedRound_;
  const Runtime::ReduceAgg agg = std::move(capturedAgg_);
  capturedAgg_ = Runtime::ReduceAgg{};
  captureActive_.store(false, std::memory_order_release);
  // Re-drive exactly what the un-intercepted root flush would have done,
  // now under the post-migration placement: checkpoint at the cut, then fan
  // the result down the (rebuilt) reduction tree.
  if (rts_.ckpt_ != nullptr) rts_.ckpt_->onReductionRoot(array, round, agg);
  rts_.deliverReductionResult(rts_.record(array), /*pos=*/0, round, agg);
}

// --- fail-stop interplay -----------------------------------------------------

void LifecycleManager::onPeCrash(int victim) {
  // Tear down handoff flows touching the victim (silent, like every other
  // reliable link on a fail-stop).
  handoffLink_.flushPe(victim);
  if (captureActive_.load(std::memory_order_relaxed) ||
      outstandingHandoffs_ > 0) {
    // Crash mid-drain: the in-flight migration cannot complete — entries
    // were dropped silently and placement will be reverted by the global
    // rollback. Cancel it; the post-restore cut re-drives the drain.
    ++migrationsAborted_;
    rts_.engine().trace().record(rts_.engine().now(), victim,
                                 sim::TraceTag::kLifeAbort,
                                 static_cast<double>(victim));
    ++migrationEpoch_;
    outstandingHandoffs_ = 0;
    captureActive_.store(false, std::memory_order_release);
  }
}

std::vector<std::uint8_t> LifecycleManager::packImage() const {
  // [flags][per-PE state]: enough to revert retirements/drains and re-pend
  // a rebalance across a global rollback.
  std::vector<std::uint8_t> image;
  image.reserve(states_.size() + 1);
  image.push_back(rebalancePending_.load(std::memory_order_relaxed) ? 1 : 0);
  for (const PeState s : states_)
    image.push_back(static_cast<std::uint8_t>(s));
  return image;
}

void LifecycleManager::onRestore(const std::vector<std::uint8_t>& image) {
  CKD_REQUIRE(!image.empty(), "lifecycle restore with an empty state image");
  ++migrationEpoch_;
  captureActive_.store(false, std::memory_order_relaxed);
  outstandingHandoffs_ = 0;
  migrationIncomplete_ = false;
  handoffLink_.flushAll();
  int draining = 0;
  for (std::size_t pe = 0; pe < states_.size(); ++pe) {
    // PEs added by a scale-out after the cut stay in the machine (hardware
    // does not un-provision); they own nothing under the reverted placement
    // and the pended rebalance re-levels onto them. A PE caught Joining at
    // the cut is treated as Active: the join latency is long past by the
    // time a crash has been detected and rolled back.
    PeState s = pe + 1 < image.size() ? static_cast<PeState>(image[pe + 1])
                                      : PeState::kActive;
    if (s == PeState::kJoining) s = PeState::kActive;
    // A drain requested (or even completed) after the cut is INTENT, not
    // state: the rollback reverted the placement, so the PE must re-drain.
    // Without this merge a scripted drain whose rule already fired would be
    // lost forever and the PE would never retire.
    if (s == PeState::kActive && (states_[pe] == PeState::kDraining ||
                                  states_[pe] == PeState::kRetired))
      s = PeState::kDraining;
    states_[pe] = s;
    rts_.schedulers_[pe]->setRetired(s == PeState::kRetired);
    if (s == PeState::kDraining) ++draining;
  }
  drainingCount_.store(draining, std::memory_order_relaxed);
  const bool grown = states_.size() + 1 > image.size();
  rebalancePending_.store((image[0] & 1) != 0 || grown,
                          std::memory_order_relaxed);
}

}  // namespace ckd::charm
