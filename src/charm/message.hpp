#pragma once
// Messages: an envelope plus an owned payload, stored contiguously in wire
// format ([80-byte header][payload]) so machine layers can move real bytes.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "charm/envelope.hpp"

namespace ckd::charm {

class Message;
/// Messages travel through engine events (std::function closures), which
/// require copyable captures — hence shared_ptr ownership.
using MessagePtr = std::shared_ptr<Message>;

class Message {
 public:
  /// Build a message with the given envelope and payload copied in.
  static MessagePtr make(const Envelope& env,
                         std::span<const std::byte> payload);

  /// Build a message with an uninitialized payload of `bytes` (machine
  /// layers fill it in place, e.g. the rendezvous landing buffer).
  static MessagePtr makeUninit(const Envelope& env, std::size_t bytes);

  /// Re-parse a message from raw wire bytes (header + payload).
  static MessagePtr fromWire(std::span<const std::byte> wire);

  const Envelope& env() const { return env_; }
  Envelope& env() { return env_; }

  std::span<const std::byte> payload() const;
  std::span<std::byte> payload();
  std::size_t payloadBytes() const { return env_.payloadBytes; }

  /// Full wire image (header + payload); header bytes are synced from env().
  std::span<const std::byte> wire() const { return wire_; }
  std::span<std::byte> wireMutable() { return wire_; }
  /// Bytes this message occupies on the wire via the default message path.
  std::size_t wireBytes() const { return wire_.size(); }

  /// Copy env_ into the wire header bytes (call before handing raw bytes to
  /// a machine layer).
  void sealHeader();

 private:
  Message() = default;
  Envelope env_;
  std::vector<std::byte> wire_;
};

}  // namespace ckd::charm
