#pragma once
// Messages: an envelope plus an owned payload, stored contiguously in wire
// format ([80-byte header][payload]) so machine layers can move real bytes.
//
// Allocation: the wire image comes from util::BufferPool (recycled by size
// class) and the Message object + shared_ptr control block are co-located in
// one pooled block via allocate_shared — a steady-state send allocates
// nothing. Payload bytes of makeUninit/makeLanding buffers are deliberately
// left uninitialized: every caller overwrites them (make()'s memcpy, the
// rendezvous RDMA landing, DCMF's receive memcpy), so zero-filling them was
// pure waste on the critical path.

#include <cstddef>
#include <memory>
#include <span>

#include "charm/envelope.hpp"
#include "util/pool.hpp"

namespace ckd::charm {

class Message;
/// Messages travel through engine events, whose closures may be cloned by
/// the fault injector's duplicate path — hence shared_ptr ownership.
using MessagePtr = std::shared_ptr<Message>;

class Message {
 public:
  /// Build a message with the given envelope and payload copied in.
  static MessagePtr make(const Envelope& env,
                         std::span<const std::byte> payload);

  /// Build a message with an uninitialized payload of `bytes` (machine
  /// layers fill it in place, e.g. the rendezvous landing buffer).
  static MessagePtr makeUninit(const Envelope& env, std::size_t bytes);

  /// Build a bare landing buffer of `wireBytes` whose header bytes arrive
  /// with the data (DCMF normal-message receives land the full wire image
  /// in place). env() is meaningless until adoptHeader() parses it.
  static MessagePtr makeLanding(std::size_t wireBytes);

  /// Parse env() out of wire bytes written in place by a machine layer
  /// (validates the header like fromWire does).
  void adoptHeader();

  /// Re-parse a message from raw wire bytes (header + payload).
  static MessagePtr fromWire(std::span<const std::byte> wire);

  const Envelope& env() const { return env_; }
  Envelope& env() { return env_; }

  std::span<const std::byte> payload() const;
  std::span<std::byte> payload();
  std::size_t payloadBytes() const { return env_.payloadBytes; }

  /// Full wire image (header + payload); header bytes are synced from env().
  std::span<const std::byte> wire() const { return {wire_.data(), wire_.size()}; }
  std::span<std::byte> wireMutable() { return {wire_.data(), wire_.size()}; }
  /// Bytes this message occupies on the wire via the default message path.
  std::size_t wireBytes() const { return wire_.size(); }

  /// Copy env_ into the wire header bytes (call before handing raw bytes to
  /// a machine layer).
  void sealHeader();

  /// allocate_shared needs a public constructor; the tag keeps make*() the
  /// only way to build one.
  struct Private {};
  explicit Message(Private) {}

 private:
  static MessagePtr alloc();

  Envelope env_;
  util::PooledBuffer wire_;
};

}  // namespace ckd::charm
