#include "charm/costs.hpp"

namespace ckd::charm {

// Fit notes (one-way budget for a 100 B user payload, Table 1 row 1):
//   default path: pack 1.0 + send 0.3 + wire (5.0 + ser(180 B)) + recv 0.4
//                 + sched 4.0  ->  ~11.3 us  (paper: 22.92/2 = 11.46 us)
//   CkDirect:     put 0.3 + wire (5.0 + 1.282 ns/B) + detect 0.6 + poll 0.05
//                 + callback 0.15 -> ~6.2 us (paper: 12.38/2 = 6.19 us)
//   rendezvous:   adds control RTT (2 x alpha) + reg 17 us + 0.04 ns/B,
//                 matching the 33.5 -> 52 us default-vs-CkDirect gap growth
//                 between 30 KB and 500 KB.
RuntimeCosts abeRuntimeCosts() {
  RuntimeCosts c;
  c.name = "abe";
  c.pack_us = 1.0;
  c.send_overhead_us = 0.3;
  c.recv_overhead_us = 0.4;
  c.sched_overhead_us = 4.0;
  c.header_bytes = 80;
  c.rdma_threshold_bytes = 24 * 1024;
  c.rendezvous_reg_base_us = 17.0;
  c.rendezvous_reg_per_byte_us = 0.04e-3;
  c.recv_copy_per_byte_us = 0.0;  // IB machine layer is zero-copy here
  c.put_issue_us = 0.3;
  c.poll_detect_latency_us = 0.65;
  // ~8 ns per queued handle per scheduler pump (pointer-chase + 8-byte
  // compare). Small, but §5.2 shows it matters when thousands of channels
  // stay queued across unrelated phases.
  c.poll_per_handle_us = 0.008;
  c.callback_overhead_us = 0.15;
  return c;
}

RuntimeCosts t3RuntimeCosts() {
  RuntimeCosts c = abeRuntimeCosts();
  c.name = "t3";
  return c;
}

// Fit notes (Table 2, one-way):
//   default: pack 1.1 + send 0.2 + wire (1.9 + 2.61 ns/B) + recv 0.2
//            + sched 3.3 + copy 0.0072 ns/B -> 7.2 us at 100 B (paper 7.23)
//   CkDirect: put 0.2 + wire + callback 0.2 -> 2.6 us at 100 B (paper 2.57);
//            no polling queue on BG/P (completion callback from DCMF).
RuntimeCosts surveyorRuntimeCosts() {
  RuntimeCosts c;
  c.name = "surveyor";
  c.pack_us = 1.1;
  c.send_overhead_us = 0.2;
  c.recv_overhead_us = 0.2;
  c.sched_overhead_us = 3.3;
  c.header_bytes = 80;
  // No rendezvous protocol was installed on Surveyor (§3).
  c.rdma_threshold_bytes = std::numeric_limits<std::size_t>::max();
  c.recv_copy_per_byte_us = 0.0072e-3;
  c.put_issue_us = 0.2;
  c.poll_detect_latency_us = 0.0;  // unused: no polling on BG/P
  c.poll_per_handle_us = 0.0;
  c.callback_overhead_us = 0.2;
  return c;
}

}  // namespace ckd::charm
