#include "charm/scheduler.hpp"

#include <utility>

#include "charm/runtime.hpp"
#include "util/require.hpp"

namespace ckd::charm {

Scheduler::Scheduler(Runtime& runtime, int pe) : runtime_(runtime), pe_(pe) {}

void Scheduler::enqueue(MessagePtr msg) {
  CKD_REQUIRE(msg != nullptr, "enqueueing a null message");
  CKD_REQUIRE(msg->env().dstPe == pe_, "message enqueued on the wrong PE");
  if (dead_) return;  // arrivals at a crashed PE vanish
  if (msg->env().epoch != runtime_.epoch()) {
    // Stale traffic sent before a fail-stop recovery: the state it targets
    // was rolled back. Dropping it here covers every delivery path (eager,
    // DCMF, rendezvous landings, transport-level retries) generically.
    runtime_.engine().trace().record(runtime_.engine().now(), pe_,
                                     sim::TraceTag::kStaleEpochDrop,
                                     static_cast<double>(msg->env().epoch));
    return;
  }
  messages_.push_back(std::move(msg));
  schedulePump();
}

void Scheduler::enqueueSystemWork(sim::Time cost, SystemFn fn,
                                  sim::Layer layer) {
  CKD_REQUIRE(cost >= 0.0, "negative system work cost");
  if (dead_) return;  // completions on a crashed PE never run
  systemWork_.push_back(SystemWork{cost, std::move(fn), layer});
  schedulePump();
}

void Scheduler::poke(sim::Time delay) {
  CKD_REQUIRE(delay >= 0.0, "negative poke delay");
  if (dead_) return;
  runtime_.schedAt(pe_, runtime_.engine().now() + delay,
                   [this] { pokeThunk(this); });
}

void Scheduler::crash() {
  dead_ = true;
  messages_.clear();
  systemWork_.clear();
}

void Scheduler::setPollHook(std::function<void()> hook) {
  pollHook_ = std::move(hook);
}

sim::Time Scheduler::currentTime() const {
  return ctxActive_ ? ctxStart_ + ctxCharged_ : runtime_.engine().now();
}

void Scheduler::charge(sim::Time cost) { chargeAs(ctxLayer_, cost); }

void Scheduler::chargeAs(sim::Layer layer, sim::Time cost) {
  CKD_REQUIRE(cost >= 0.0, "negative charge");
  if (!ctxActive_) return;
  ctxCharged_ += cost;
  ctxLayerAcc_[static_cast<std::size_t>(layer)] += cost;
}

void Scheduler::flushLayerTimes() {
  sim::TraceRecorder& trace = runtime_.engine().trace();
  for (std::size_t i = 0; i < sim::kLayerCount; ++i) {
    if (ctxLayerAcc_[i] != 0.0) {
      trace.addLayerTime(static_cast<sim::Layer>(i), ctxLayerAcc_[i]);
      ctxLayerAcc_[i] = 0.0;
    }
  }
}

void Scheduler::schedulePump() {
  if (pumpScheduled_ || dead_) return;
  pumpScheduled_ = true;
  sim::Engine& engine = runtime_.engine();
  const sim::Time when =
      std::max(engine.now(), runtime_.processor(pe_).freeAt());
  // Route to this PE's home engine: a pump armed from serial context (a
  // restore re-driving schedulers) must land on the owning shard, not on
  // the serial heap.
  runtime_.schedAt(pe_, when, [this] { pumpThunk(this); });
}

void Scheduler::pump() {
  pumpScheduled_ = false;
  if (dead_) return;  // pump scheduled before the crash landed
  sim::Engine& engine = runtime_.engine();
  sim::Processor& proc = runtime_.processor(pe_);

  const sim::Time t = engine.now();
  if (proc.freeAt() > t) {
    // Something else (a system completion on this PE) claimed the processor
    // between scheduling and firing; re-arm at the new free time.
    schedulePump();
    return;
  }

  ++pumps_;
  ctxActive_ = true;
  ctxStart_ = t;
  ctxCharged_ = 0.0;
  ctxLayer_ = sim::Layer::kApp;
  runtime_.setCurrentPe(pe_);
  sim::TraceRecorder& trace = engine.trace();
  trace.recordLazy(t, pe_, sim::TraceTag::kSchedPump,
                   [this] { return static_cast<double>(messages_.size()); });

  // 1. Poll phase: CkDirect's polling-queue scan (charges per handle and
  //    may run put-completion callbacks).
  if (pollHook_) {
    ctxLayer_ = sim::Layer::kCkDirect;
    pollHook_();
    ctxLayer_ = sim::Layer::kApp;
  }

  // 2. One unit of work: machine-level system work first (no scheduling
  //    overhead), else one message from the queue.
  if (!systemWork_.empty()) {
    SystemWork work = std::move(systemWork_.front());
    systemWork_.pop_front();
    trace.record(t, pe_, sim::TraceTag::kSchedSystemWork, work.cost);
    chargeAs(work.layer, work.cost);
    if (work.fn) {
      ctxLayer_ = work.layer;
      work.fn();
      ctxLayer_ = sim::Layer::kApp;
    }
  } else if (!messages_.empty()) {
    MessagePtr msg = std::move(messages_.front());
    messages_.pop_front();
    ++messagesProcessed_;
    const Envelope& env = msg->env();
    trace.recordSpan(t, pe_, sim::TraceTag::kSchedDeliver,
                     sim::SpanPhase::kEnd, env.traceId, env.parentTraceId,
                     static_cast<double>(msg->payloadBytes()));
    // Streaming msg-RTT: send instant rides the envelope (survives
    // retransmits and shard crossings), so this is exactly the causal
    // chain's transport-begin -> deliver-end latency.
    if (env.sentAt >= 0.0)
      engine.metrics().record(obs::Slo::kMsgRtt, t - env.sentAt);
    const RuntimeCosts& costs = runtime_.costs();
    // Envelope handling, scheduling, and the receive-side copy are
    // scheduler time; the handler body itself charges as application time.
    chargeAs(sim::Layer::kScheduler,
             costs.recv_overhead_us + costs.sched_overhead_us +
                 costs.recv_copy_per_byte_us *
                     static_cast<double>(msg->payloadBytes()));
    // Sends minted inside the handler are caused by this message: expose its
    // chain id as the ambient causal context for the handler body.
    const std::uint64_t prevCtx = trace.context();
    trace.setContext(env.traceId);
    runtime_.deliver(*msg);
    trace.setContext(prevCtx);
  }

  proc.occupy(t, ctxCharged_);
  flushLayerTimes();
  if (ctxCharged_ > 0.0)
    trace.record(t + ctxCharged_, pe_, sim::TraceTag::kSchedPumpDone,
                 ctxCharged_);
  ctxActive_ = false;
  runtime_.setCurrentPe(-1);

  if (!systemWork_.empty() || !messages_.empty()) schedulePump();
}

}  // namespace ckd::charm
