#include "charm/runtime.hpp"

#include <algorithm>
#include <utility>

#include "charm/checkpoint.hpp"
#include "charm/lifecycle.hpp"
#include "charm/marshal.hpp"
#include "charm/transport.hpp"
#include "dcmf/dcmf.hpp"
#include "net/lookahead.hpp"
#include "ib/verbs.hpp"
#include "obs/flight_recorder.hpp"
#include "util/pool.hpp"
#include "util/require.hpp"

namespace ckd::charm {

thread_local int Runtime::currentPe_ = -1;

Runtime::Runtime(MachineConfig config) : config_(std::move(config)) {
  CKD_REQUIRE(config_.topology != nullptr, "Runtime requires a topology");
  if (config_.shards > 0) {
    // Windowed sharded execution. The partition is node-aligned (contiguous
    // node ranges) so injection/ejection ports, intra-node transfers, and
    // self-sends — all of which may cost less than the lookahead — stay
    // shard-local. The lookahead is the machine's wire-latency floor: no
    // cross-node arrival can land sooner after its send instant.
    const topo::Topology& topo = *config_.topology;
    const int nodes = topo.numNodes();
    const int nShards = std::min(config_.shards, nodes);
    std::vector<int> shardOf(static_cast<std::size_t>(topo.numPes()));
    for (int pe = 0; pe < topo.numPes(); ++pe)
      shardOf[static_cast<std::size_t>(pe)] = static_cast<int>(
          static_cast<std::int64_t>(topo.nodeOf(pe)) * nShards / nodes);
    sim::ParallelEngine::Config pcfg;
    pcfg.shards = nShards;
    pcfg.threads = config_.shardThreads;
    pcfg.lookahead = config_.netParams.wireLatencyFloor();
    pcfg.pinThreads = config_.pinShardThreads;
    // Adaptive per-destination windows need a serial-quiet workload: fault
    // injection, checkpointing, and the elastic lifecycle all schedule
    // serial events from shard context, which only global windows can
    // order partition-independently. Everything else gets the per-pair
    // lookahead matrix (topology hop floors) and wider windows.
    pcfg.adaptive = !config_.faults.armed() && !config_.elastic &&
                    config_.scalePlan.empty();
    if (pcfg.adaptive)
      pcfg.pairLookahead = net::shardLookaheadMatrix(
          topo, config_.netParams, shardOf, nShards);
    parallel_ = std::make_unique<sim::ParallelEngine>(pcfg, std::move(shardOf));
    // Chain ids and message sequences switch to per-PE minting so they are
    // functions of per-PE order alone (partition-independent).
    parallel_->serialEngine().trace().setPerPeMinting(
        &parallel_->mintCounters());
    for (int s = 0; s < parallel_->shards(); ++s)
      parallel_->shardEngine(s).trace().setPerPeMinting(
          &parallel_->mintCounters());
    peMsgSeq_.assign(static_cast<std::size_t>(topo.numPes()) + 1, 0);
    // Unverified-under-sharding paths are refused loudly rather than run
    // racily: probabilistic wire faults draw from one RNG stream (pe_crash
    // plans are scheduled up front and fire serially, so they are fine).
    for (const fault::FaultRule& rule : config_.faults.rules)
      CKD_REQUIRE(rule.kind == fault::FaultKind::kPeCrash,
                  "--shards supports fail-stop (pe_crash) fault plans only");
    CKD_REQUIRE(config_.layer == LayerKind::kInfiniband,
                "--shards currently supports the InfiniBand machine layer "
                "only (the DCMF layer's connection state is not sharded)");
  }
  fabric_ = std::make_unique<net::Fabric>(
      parallel_ ? parallel_->serialEngine() : engine_, config_.topology,
      config_.netParams);
  if (parallel_) fabric_->attachParallel(parallel_.get());
  if (config_.faults.armed())
    fabric_->installFaults(config_.faults, config_.faultSeed);
  const int pes = numPes();
  schedulers_.reserve(static_cast<std::size_t>(pes));
  for (int pe = 0; pe < pes; ++pe) {
    processors_.emplace_back(pe);
    schedulers_.push_back(std::make_unique<Scheduler>(*this, pe));
  }
  if (config_.layer == LayerKind::kInfiniband) {
    ib_ = std::make_unique<ib::IbVerbs>(*fabric_);
    transport_ = std::make_unique<IbTransport>(*this, *ib_);
  } else {
    dcmf_ = std::make_unique<dcmf::DcmfContext>(*fabric_);
    transport_ = std::make_unique<BgpTransport>(*this, *dcmf_);
  }
  if (config_.faults.hasCrashes())
    ckpt_ = std::make_unique<CheckpointManager>(*this);
  if (config_.elastic || !config_.scalePlan.empty())
    lifecycle_ = std::make_unique<LifecycleManager>(*this);
  if (config_.metricsInterval_us > 0.0)
    enableMetrics(config_.metricsInterval_us, config_.metricsSnapshots);
}

Runtime::~Runtime() = default;

Scheduler& Runtime::scheduler(int pe) {
  CKD_REQUIRE(pe >= 0 && pe < numPes(), "PE out of range");
  return *schedulers_[static_cast<std::size_t>(pe)];
}

sim::Processor& Runtime::processor(int pe) {
  CKD_REQUIRE(pe >= 0 && pe < numPes(), "PE out of range");
  return processors_[static_cast<std::size_t>(pe)];
}

ib::IbVerbs& Runtime::ibVerbs() {
  CKD_REQUIRE(ib_ != nullptr, "not an InfiniBand machine");
  return *ib_;
}

dcmf::DcmfContext& Runtime::dcmf() {
  CKD_REQUIRE(dcmf_ != nullptr, "not a Blue Gene machine");
  return *dcmf_;
}

void Runtime::enableTracing(std::size_t capacity) {
  const auto arm = [capacity](sim::Engine& eng) {
    if (capacity != 0) eng.trace().setCapacity(capacity);
    eng.trace().enable();
  };
  if (!parallel_) {
    arm(engine_);
    return;
  }
  arm(parallel_->serialEngine());
  for (int s = 0; s < parallel_->shards(); ++s) arm(parallel_->shardEngine(s));
}

std::vector<sim::TraceEvent> Runtime::traceEvents() const {
  return parallel_ ? parallel_->mergedTrace() : engine_.trace().snapshot();
}

void Runtime::enableMetrics(double interval_us, std::size_t snapshots) {
  const auto forEachEngine = [this](auto&& fn) {
    if (!parallel_) {
      fn(engine_);
      return;
    }
    fn(parallel_->serialEngine());
    for (int s = 0; s < parallel_->shards(); ++s)
      fn(parallel_->shardEngine(s));
  };
  forEachEngine([](sim::Engine& eng) { eng.metrics().arm(); });
  metricsArmed_ = true;
  if (interval_us <= 0.0) return;

  flight_ = std::make_unique<obs::FlightRecorder>();
  if (snapshots != 0) flight_->setCapacity(snapshots);
  flight_->setInterval(interval_us);
  // Gauges/counters over live machine state. Probe closures run with every
  // shard parked (serial dispatch path, or the parallel coordinator between
  // rounds), so plain reads of shard engines are race-free.
  flight_->addProbe("events", "1",
                    [this]() { return static_cast<double>(executedEvents()); });
  flight_->addProbe("msgs", "1", [this]() {
    return static_cast<double>(messagesSent());
  });
  flight_->addProbe("pool.hit_rate", "x", []() {
    const util::BufferPool::Stats s = util::BufferPool::processStats();
    const std::uint64_t acquires = s.hits + s.misses;
    return acquires == 0
               ? 0.0
               : static_cast<double>(s.hits) / static_cast<double>(acquires);
  });
  flight_->addProbe("retransmits", "1", [this, forEachEngine]() {
    std::uint64_t n = 0;
    forEachEngine([&n](sim::Engine& eng) {
      n += eng.trace().count(sim::TraceTag::kRelRetransmit);
    });
    return static_cast<double>(n);
  });
  flight_->addProbe("trace.ring", "1", [this, forEachEngine]() {
    std::size_t n = 0;
    forEachEngine(
        [&n](sim::Engine& eng) { n += eng.trace().ringSize(); });
    return static_cast<double>(n);
  });
  if (parallel_) {
    flight_->addProbe("windows", "1", [this]() {
      return static_cast<double>(parallel_->windows());
    });
    // Spread between the fastest and slowest shard clock at the sampling
    // boundary — how uneven the last window's work split was.
    flight_->addProbe("shard.lag_us", "us", [this]() {
      sim::Time lo = std::numeric_limits<sim::Time>::infinity();
      sim::Time hi = -std::numeric_limits<sim::Time>::infinity();
      for (int s = 0; s < parallel_->shards(); ++s) {
        const sim::Time t = parallel_->shardEngine(s).now();
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
      return parallel_->shards() > 0 ? hi - lo : 0.0;
    });
  }
  // Merged SLO view: sum cumulative bucket counts over every registry, so
  // windowed percentiles cover the whole machine without copying histograms.
  for (std::size_t k = 0; k < obs::kSloCount; ++k) {
    const obs::Slo kind = static_cast<obs::Slo>(k);
    flight_->watch(
        "slo." + std::string(obs::sloName(kind)),
        [this, forEachEngine, kind](std::vector<std::uint64_t>& counts) {
          std::uint64_t total = 0;
          forEachEngine([&](sim::Engine& eng) {
            total += eng.metrics().slo(kind).addCounts(counts);
          });
          return total;
        });
  }
  if (parallel_)
    parallel_->attachSampler(flight_.get());
  else
    engine_.attachSampler(flight_.get());
}

util::JsonValue Runtime::metricsJson() {
  util::JsonValue doc;
  if (flight_ != nullptr) {
    doc = flight_->toJson();
  } else {
    doc = util::JsonValue::object();
    doc.set("schema", "ckd.metrics.v1");
    doc.set("interval_us", 0.0);
    doc.set("snapshots", 0);
    doc.set("dropped", 0);
    doc.set("series", util::JsonValue::array());
  }
  obs::MetricsRegistry merged;
  if (!parallel_) {
    merged.mergeFrom(engine_.metrics());
  } else {
    merged.mergeFrom(parallel_->serialEngine().metrics());
    for (int s = 0; s < parallel_->shards(); ++s)
      merged.mergeFrom(parallel_->shardEngine(s).metrics());
  }
  doc.set("slo", merged.toJson());
  return doc;
}

std::uint64_t Runtime::nextMsgSeq(int srcPe) {
  if (!parallel_) return nextSeq_++;
  // Per-PE sequence space: the counter slot is touched only by srcPe's own
  // shard thread (or by the coordinator while every shard is parked), and
  // the value is a function of srcPe's send order alone — identical for
  // every shard count.
  auto& counter = peMsgSeq_[static_cast<std::size_t>(srcPe) + 1];
  return (static_cast<std::uint64_t>(srcPe) + 1) << 40 | ++counter;
}

// --- arrays -----------------------------------------------------------------

ArrayId Runtime::beginArray(std::string name, std::int64_t count, MapFn map) {
  CKD_REQUIRE(count > 0, "array must have at least one element");
  CKD_REQUIRE(map != nullptr, "array needs a placement map");
  ArrayRecord rec;
  rec.name = std::move(name);
  rec.count = count;
  rec.peOf.resize(static_cast<std::size_t>(count));
  rec.elems.resize(static_cast<std::size_t>(count));
  rec.onPe.resize(static_cast<std::size_t>(numPes()));
  for (std::int64_t i = 0; i < count; ++i) {
    const int pe = map(i);
    CKD_REQUIRE(pe >= 0 && pe < numPes(), "placement map returned a bad PE");
    rec.peOf[static_cast<std::size_t>(i)] = pe;
    rec.onPe[static_cast<std::size_t>(pe)].push_back(i);
  }
  for (int pe = 0; pe < numPes(); ++pe) {
    if (!rec.onPe[static_cast<std::size_t>(pe)].empty()) {
      rec.hostPos[pe] = static_cast<int>(rec.hostPes.size());
      rec.hostPes.push_back(pe);
    }
  }
  rec.reduce.resize(rec.hostPes.size());
  arrays_.push_back(std::move(rec));
  return static_cast<ArrayId>(arrays_.size() - 1);
}

void Runtime::rebuildPlacement(ArrayRecord& rec) {
  for (PeReduceState& state : rec.reduce)
    CKD_REQUIRE(state.rounds.empty(),
                "placement rebind with an open reduction round — migrations "
                "must happen at reduction cuts");
  rec.onPe.assign(static_cast<std::size_t>(numPes()), {});
  rec.hostPes.clear();
  rec.hostPos.clear();
  for (std::int64_t i = 0; i < rec.count; ++i)
    rec.onPe[static_cast<std::size_t>(rec.peOf[static_cast<std::size_t>(i)])]
        .push_back(i);
  for (int pe = 0; pe < numPes(); ++pe) {
    if (!rec.onPe[static_cast<std::size_t>(pe)].empty()) {
      rec.hostPos[pe] = static_cast<int>(rec.hostPes.size());
      rec.hostPes.push_back(pe);
    }
  }
  rec.reduce.assign(rec.hostPes.size(), {});
}

void Runtime::growMachine() {
  const int pes = numPes();  // the topology has already grown
  const int oldPes = static_cast<int>(schedulers_.size());
  CKD_REQUIRE(pes >= oldPes, "the machine never shrinks (PEs retire instead)");
  if (pes == oldPes) return;
  fabric_->growTopology();
  if (parallel_) {
    // Map each new node onto an existing shard (node-aligned, like the
    // construction-time partition; the exact choice is unobservable — the
    // determinism gate checks exactly that).
    std::vector<int> shardOfNew;
    shardOfNew.reserve(static_cast<std::size_t>(pes - oldPes));
    for (int pe = oldPes; pe < pes; ++pe)
      shardOfNew.push_back(config_.topology->nodeOf(pe) % parallel_->shards());
    parallel_->growPes(shardOfNew);
    peMsgSeq_.resize(static_cast<std::size_t>(pes) + 1, 0);
  }
  for (int pe = oldPes; pe < pes; ++pe) {
    processors_.emplace_back(pe);
    schedulers_.push_back(std::make_unique<Scheduler>(*this, pe));
  }
  for (ArrayRecord& rec : arrays_)
    rec.onPe.resize(static_cast<std::size_t>(pes));
  if (ckpt_) ckpt_->onPesGrown();
  if (growHook_) growHook_();
}

void Runtime::placeElement(ArrayId id, std::int64_t index,
                           std::unique_ptr<Chare> obj) {
  ArrayRecord& rec = record(id);
  CKD_REQUIRE(obj != nullptr, "array factory returned null");
  obj->_init(this, id, index, rec.peOf[static_cast<std::size_t>(index)]);
  rec.elems[static_cast<std::size_t>(index)] = std::move(obj);
}

Runtime::ArrayRecord& Runtime::record(ArrayId id) {
  CKD_REQUIRE(id >= 0 && id < static_cast<ArrayId>(arrays_.size()),
              "unknown array");
  return arrays_[static_cast<std::size_t>(id)];
}

const Runtime::ArrayRecord& Runtime::record(ArrayId id) const {
  CKD_REQUIRE(id >= 0 && id < static_cast<ArrayId>(arrays_.size()),
              "unknown array");
  return arrays_[static_cast<std::size_t>(id)];
}

EntryId Runtime::registerEntryRaw(ArrayId array, const char* name,
                                  EntryFn fn) {
  ArrayRecord& rec = record(array);
  CKD_REQUIRE(fn != nullptr, "null entry function");
  rec.entries.push_back(std::move(fn));
  rec.entryNames.emplace_back(name ? name : "?");
  return static_cast<EntryId>(rec.entries.size() - 1);
}

std::int64_t Runtime::arraySize(ArrayId array) const {
  return record(array).count;
}

int Runtime::homePe(ArrayId array, std::int64_t index) const {
  const ArrayRecord& rec = record(array);
  CKD_REQUIRE(index >= 0 && index < rec.count, "element index out of range");
  return rec.peOf[static_cast<std::size_t>(index)];
}

Chare& Runtime::element(ArrayId array, std::int64_t index) {
  ArrayRecord& rec = record(array);
  CKD_REQUIRE(index >= 0 && index < rec.count, "element index out of range");
  return *rec.elems[static_cast<std::size_t>(index)];
}

const std::vector<std::int64_t>& Runtime::elementsOnPe(ArrayId array,
                                                       int pe) const {
  const ArrayRecord& rec = record(array);
  CKD_REQUIRE(pe >= 0 && pe < numPes(), "PE out of range");
  return rec.onPe[static_cast<std::size_t>(pe)];
}

// --- messaging ----------------------------------------------------------------

void Runtime::sendToElement(ArrayId array, std::int64_t index, EntryId entry,
                            std::span<const std::byte> payload) {
  const ArrayRecord& rec = record(array);
  CKD_REQUIRE(index >= 0 && index < rec.count, "element index out of range");
  CKD_REQUIRE(entry >= 0 && entry < static_cast<EntryId>(rec.entries.size()),
              "unregistered entry method");
  Envelope env;
  env.kind = MsgKind::kUser;
  env.srcPe = effectiveSrcPe();
  env.dstPe = rec.peOf[static_cast<std::size_t>(index)];
  env.arrayId = array;
  env.elemIndex = index;
  env.entry = entry;
  sendMessage(Message::make(env, payload));
}

void Runtime::sendMessage(MessagePtr msg) {
  CKD_REQUIRE(msg != nullptr, "sending a null message");
  Envelope& env = msg->env();
  CKD_REQUIRE(env.srcPe >= 0 && env.srcPe < numPes(), "bad source PE");
  CKD_REQUIRE(env.dstPe >= 0 && env.dstPe < numPes(), "bad destination PE");
  env.seq = nextMsgSeq(env.srcPe);
  env.epoch = epoch_;
  if (env.traceId == 0) {
    // Mint the causal chain id once per logical message; retransmits and
    // forwarded copies that already carry one keep it. mintIdFor draws from
    // the per-PE counters under --shards, the global counter otherwise.
    sim::TraceRecorder& tr = engine().trace();
    env.traceId = tr.mintIdFor(env.srcPe);
    env.parentTraceId = tr.context();
  }
  messagesSent_.fetch_add(1, std::memory_order_relaxed);

  Scheduler& src = scheduler(env.srcPe);
  const bool inContext = (currentPe_ == env.srcPe) && src.inHandler();
  if (inContext)
    src.chargeAs(sim::Layer::kTransport,
                 config_.costs.pack_us + config_.costs.send_overhead_us);
  const sim::Time issue = inContext ? src.currentTime() : engine().now();

  msg->sealHeader();
  const int srcPe = env.srcPe;
  if (env.srcPe == env.dstPe) {
    const int dst = env.dstPe;
    schedAt(srcPe, issue, [this, dst, msg = std::move(msg)]() mutable {
      scheduler(dst).enqueue(std::move(msg));
    });
  } else {
    schedAt(srcPe, issue, [this, msg = std::move(msg)]() mutable {
      transport_->send(std::move(msg));
    });
  }
}

void Runtime::enqueueLocalUser(ArrayId array, std::int64_t index,
                               EntryId entry,
                               std::span<const std::byte> payload, int pe) {
  Envelope env;
  env.kind = MsgKind::kUser;
  env.srcPe = pe;
  env.dstPe = pe;
  env.arrayId = array;
  env.elemIndex = index;
  env.entry = entry;
  env.seq = nextMsgSeq(pe);
  env.epoch = epoch_;
  env.traceId = engine().trace().mintIdFor(pe);
  env.parentTraceId = engine().trace().context();
  scheduler(pe).enqueue(Message::make(env, payload));
}

void Runtime::deliver(Message& msg) {
  const Envelope& env = msg.env();
  switch (env.kind) {
    case MsgKind::kUser: {
      ArrayRecord& rec = record(env.arrayId);
      CKD_REQUIRE(env.elemIndex >= 0 && env.elemIndex < rec.count,
                  "delivery to an element out of range");
      const int owner = rec.peOf[static_cast<std::size_t>(env.elemIndex)];
      if (owner != env.dstPe) {
        // Elastic placement: the element migrated (drain / rebalance) while
        // this message was in flight. The old home acts as a tombstone and
        // forwards to the new owner, preserving the causal chain id (the
        // forwarded copy carries traceId != 0, so sendMessage keeps it).
        CKD_REQUIRE(lifecycle_ != nullptr,
                    "message delivered to a PE that does not own the element");
        engine().trace().record(engine().now(), env.dstPe,
                                sim::TraceTag::kLifeForward,
                                static_cast<double>(env.elemIndex));
        MessagePtr fwd = Message::make(env, msg.payload());
        fwd->env().srcPe = env.dstPe;
        fwd->env().dstPe = owner;
        sendMessage(std::move(fwd));
        return;
      }
      CKD_REQUIRE(
          env.entry >= 0 && env.entry < static_cast<EntryId>(rec.entries.size()),
          "delivery to an unregistered entry");
      Chare& obj = *rec.elems[static_cast<std::size_t>(env.elemIndex)];
      rec.entries[static_cast<std::size_t>(env.entry)](obj, msg);
      return;
    }
    case MsgKind::kBroadcast:
      handleBroadcast(msg);
      return;
    case MsgKind::kReduceUp:
      handleReduceUp(msg);
      return;
    case MsgKind::kReduceDown:
      handleReduceDown(msg);
      return;
    default:
      CKD_REQUIRE(false, "unhandled message kind in deliver()");
  }
}

// --- broadcast ------------------------------------------------------------------

void Runtime::broadcast(ArrayId array, EntryId entry,
                        std::span<const std::byte> payload) {
  const ArrayRecord& rec = record(array);
  CKD_REQUIRE(entry >= 0 && entry < static_cast<EntryId>(rec.entries.size()),
              "unregistered entry method");
  Envelope env;
  env.kind = MsgKind::kBroadcast;
  env.srcPe = effectiveSrcPe();
  env.dstPe = rec.hostPes.front();
  env.arrayId = array;
  env.entry = entry;
  sendMessage(Message::make(env, payload));
}

void Runtime::handleBroadcast(Message& msg) {
  const Envelope& env = msg.env();
  ArrayRecord& rec = record(env.arrayId);
  const auto posIt = rec.hostPos.find(env.dstPe);
  CKD_REQUIRE(posIt != rec.hostPos.end(),
              "broadcast reached a PE hosting no elements");
  const int pos = posIt->second;
  // Forward down the PE spanning tree (each hop pays the normal message
  // costs), then deliver one scheduler message per local element.
  for (int which = 0; which < 2; ++which) {
    const int childPos = treeChild(pos, which);
    if (childPos >= static_cast<int>(rec.hostPes.size())) continue;
    Envelope fwd = env;
    fwd.srcPe = env.dstPe;
    fwd.dstPe = rec.hostPes[static_cast<std::size_t>(childPos)];
    // Each tree hop is its own causal chain, parented on the arriving copy
    // (the delivery context), so the fan-out shows up as a DAG, not one id.
    fwd.traceId = 0;
    fwd.parentTraceId = 0;
    sendMessage(Message::make(fwd, msg.payload()));
  }
  for (std::int64_t index : rec.onPe[static_cast<std::size_t>(env.dstPe)])
    enqueueLocalUser(env.arrayId, index, env.entry, msg.payload(), env.dstPe);
}

// --- reductions -------------------------------------------------------------------

namespace {
constexpr const char* kOpMismatch =
    "all contributions to one reduction round must use the same op and "
    "completion entry";
}  // namespace

void Runtime::accumulate(ReduceAgg& agg, std::span<const double> values,
                         ReduceOp op, EntryId completion) {
  if (!agg.hasData) {
    agg.hasData = true;
    agg.op = op;
    agg.completion = completion;
    agg.partial.assign(values.begin(), values.end());
    return;
  }
  CKD_REQUIRE(agg.op == op && agg.completion == completion, kOpMismatch);
  CKD_REQUIRE(agg.partial.size() == values.size(),
              "reduction contributions disagree on value count");
  for (std::size_t i = 0; i < values.size(); ++i) {
    switch (op) {
      case ReduceOp::kNop:
        break;
      case ReduceOp::kSum:
        agg.partial[i] += values[i];
        break;
      case ReduceOp::kMin:
        agg.partial[i] = std::min(agg.partial[i], values[i]);
        break;
      case ReduceOp::kMax:
        agg.partial[i] = std::max(agg.partial[i], values[i]);
        break;
    }
  }
}

void Runtime::contribute(ArrayId array, std::int64_t index,
                         std::span<const double> values, ReduceOp op,
                         EntryId completion) {
  ArrayRecord& rec = record(array);
  CKD_REQUIRE(index >= 0 && index < rec.count, "element index out of range");
  CKD_REQUIRE(op != ReduceOp::kNop || values.empty(),
              "barrier contributions carry no data");
  Chare& el = *rec.elems[static_cast<std::size_t>(index)];
  const std::uint32_t round = el._reductionRound++;
  const int pe = rec.peOf[static_cast<std::size_t>(index)];
  const int pos = rec.hostPos.at(pe);
  ReduceAgg& agg = rec.reduce[static_cast<std::size_t>(pos)].rounds[round];
  ++agg.ownContrib;
  CKD_REQUIRE(agg.ownContrib <=
                  static_cast<int>(rec.onPe[static_cast<std::size_t>(pe)].size()),
              "element contributed twice to the same reduction round");
  accumulate(agg, values, op, completion);
  tryFlushReduction(rec, pos, round);
}

void Runtime::tryFlushReduction(ArrayRecord& rec, int pos,
                                std::uint32_t round) {
  const int pe = rec.hostPes[static_cast<std::size_t>(pos)];
  auto& rounds = rec.reduce[static_cast<std::size_t>(pos)].rounds;
  const auto it = rounds.find(round);
  if (it == rounds.end()) return;
  ReduceAgg& agg = it->second;

  const int localElems =
      static_cast<int>(rec.onPe[static_cast<std::size_t>(pe)].size());
  int children = 0;
  for (int which = 0; which < 2; ++which)
    if (treeChild(pos, which) < static_cast<int>(rec.hostPes.size()))
      ++children;
  if (agg.ownContrib < localElems || agg.childSeen < children) return;

  if (pos == 0) {
    const ArrayId arrayId = static_cast<ArrayId>(&rec - arrays_.data());
    // Pending migration work (drain / post-scale-out rebalance) captures the
    // cut instead: the lifecycle manager rebinds placement in a serial phase
    // and delivers this exact result itself once the handoff completes.
    if (lifecycle_ != nullptr && lifecycle_->interceptRoot(arrayId, round, agg)) {
      rounds.erase(it);
      return;
    }
    // The root flush is a consistent cut: every element has contributed and
    // none has resumed — the checkpoint manager snapshots here, BEFORE the
    // result fans back out, so a restore can replay this exact delivery.
    if (ckpt_ != nullptr) ckpt_->onReductionRoot(arrayId, round, agg);
    deliverReductionResult(rec, pos, round, agg);
    rounds.erase(it);
    return;
  }

  // Send the combined partial up the tree as a regular message.
  Packer packer;
  packer.put<std::int32_t>(static_cast<std::int32_t>(agg.op));
  packer.put<std::int32_t>(agg.completion);
  packer.putSpan<double>(agg.partial);
  Envelope env;
  env.kind = MsgKind::kReduceUp;
  env.srcPe = pe;
  env.dstPe = rec.hostPes[static_cast<std::size_t>(treeParent(pos))];
  env.arrayId = static_cast<ArrayId>(&rec - arrays_.data());
  env.reductionRound = round;
  sendMessage(Message::make(env, packer.bytes()));
  rounds.erase(it);
}

void Runtime::handleReduceUp(Message& msg) {
  const Envelope& env = msg.env();
  ArrayRecord& rec = record(env.arrayId);
  const int pos = rec.hostPos.at(env.dstPe);
  Unpacker unpacker(msg.payload());
  const auto op = static_cast<ReduceOp>(unpacker.get<std::int32_t>());
  const EntryId completion = unpacker.get<std::int32_t>();
  const std::span<const double> values = unpacker.getSpan<double>();
  ReduceAgg& agg =
      rec.reduce[static_cast<std::size_t>(pos)].rounds[env.reductionRound];
  ++agg.childSeen;
  accumulate(agg, values, op, completion);
  tryFlushReduction(rec, pos, env.reductionRound);
}

void Runtime::deliverReductionResult(ArrayRecord& rec, int pos,
                                     std::uint32_t round,
                                     const ReduceAgg& agg) {
  const int pe = rec.hostPes[static_cast<std::size_t>(pos)];
  Packer packer;
  packer.put<std::int32_t>(agg.completion);
  packer.putSpan<double>(agg.partial);

  // Forward the result down the tree.
  for (int which = 0; which < 2; ++which) {
    const int childPos = treeChild(pos, which);
    if (childPos >= static_cast<int>(rec.hostPes.size())) continue;
    Envelope env;
    env.kind = MsgKind::kReduceDown;
    env.srcPe = pe;
    env.dstPe = rec.hostPes[static_cast<std::size_t>(childPos)];
    env.arrayId = static_cast<ArrayId>(&rec - arrays_.data());
    env.reductionRound = round;
    sendMessage(Message::make(env, packer.bytes()));
  }

  // Completion entry on each local element, payload = the combined values.
  Packer result;
  result.putSpan<double>(agg.partial);
  for (std::int64_t index : rec.onPe[static_cast<std::size_t>(pe)])
    enqueueLocalUser(static_cast<ArrayId>(&rec - arrays_.data()), index,
                     agg.completion, result.bytes(), pe);
}

void Runtime::handleReduceDown(Message& msg) {
  const Envelope& env = msg.env();
  ArrayRecord& rec = record(env.arrayId);
  const int pos = rec.hostPos.at(env.dstPe);
  Unpacker unpacker(msg.payload());
  ReduceAgg agg;
  agg.hasData = true;
  agg.completion = unpacker.get<std::int32_t>();
  const std::span<const double> values = unpacker.getSpan<double>();
  agg.partial.assign(values.begin(), values.end());
  deliverReductionResult(rec, pos, env.reductionRound, agg);
}

// --- Chare methods (need the full Runtime definition) ---------------------------

void Chare::charge(sim::Time cost) const {
  runtime_->scheduler(pe_).charge(cost);
}

sim::Time Chare::now() const {
  return runtime_->scheduler(pe_).currentTime();
}

void Chare::contribute(std::span<const double> values, ReduceOp op,
                       EntryId completion) {
  runtime_->contribute(arrayId_, index_, values, op, completion);
}

}  // namespace ckd::charm
