#pragma once
// Minimal PUP (Pack/UnPack) framework, modeled on Charm++'s PUP::er: one
// `pup(Puper&)` method describes a chare's state once, and the same code
// path serializes (checkpoint), deserializes (restore), and sizes it.
//
// Built on the existing marshal Packer/Unpacker. The one property the
// checkpoint/restart machinery leans on hard: unpacking a std::vector whose
// size already matches the stored image copies the bytes IN PLACE — no
// reallocation — so buffer addresses pinned by registered memory regions and
// CkDirect handles stay valid across a restore. (Re-registration after a
// crash keys off those stable addresses.)

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <vector>

#include "charm/marshal.hpp"
#include "util/require.hpp"

namespace ckd::charm {

class Puper {
 public:
  /// Packing mode: state flows into `sink`.
  explicit Puper(Packer& sink) : packer_(&sink) {}
  /// Unpacking mode: state flows out of `source`.
  explicit Puper(Unpacker& source) : unpacker_(&source) {}

  bool isPacking() const { return packer_ != nullptr; }
  bool isUnpacking() const { return unpacker_ != nullptr; }

  /// Trivially copyable scalars / PODs.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Puper& operator|(T& value) {
    if (packer_ != nullptr)
      packer_->put(value);
    else
      value = unpacker_->get<T>();
    return *this;
  }

  /// Vectors of trivially copyable elements. Unpacking into a vector that
  /// already holds the right element count overwrites in place (stable
  /// data() address); a size mismatch resizes first.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Puper& operator|(std::vector<T>& values) {
    if (packer_ != nullptr) {
      packer_->putVector(values);
      return *this;
    }
    const auto stored = unpacker_->getSpan<T>();
    if (values.size() != stored.size()) values.resize(stored.size());
    if (!stored.empty())
      std::memcpy(values.data(), stored.data(), stored.size_bytes());
    return *this;
  }

  /// Raw byte span of fixed, known extent (e.g. a C array member).
  Puper& bytes(void* data, std::size_t n) {
    if (packer_ != nullptr) {
      const auto* p = static_cast<const std::byte*>(data);
      packer_->putSpan(std::span<const std::byte>(p, n));
    } else {
      const auto stored = unpacker_->getSpan<std::byte>();
      CKD_REQUIRE(stored.size() == n, "pup: fixed-extent byte size mismatch");
      if (n > 0) std::memcpy(data, stored.data(), n);
    }
    return *this;
  }

 private:
  Packer* packer_ = nullptr;
  Unpacker* unpacker_ = nullptr;
};

/// Array pup helper for C arrays of trivially copyable elements.
template <typename T, std::size_t N>
  requires std::is_trivially_copyable_v<T>
Puper& operator|(Puper& p, T (&values)[N]) {
  for (std::size_t i = 0; i < N; ++i) p | values[i];
  return p;
}

}  // namespace ckd::charm
