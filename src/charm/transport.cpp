#include "charm/transport.hpp"

#include <utility>

#include "charm/runtime.hpp"
#include "util/require.hpp"

namespace ckd::charm {

// ---------------------------------------------------------------------------
// InfiniBand
// ---------------------------------------------------------------------------

IbTransport::IbTransport(Runtime& runtime, ib::IbVerbs& verbs)
    : runtime_(runtime), verbs_(verbs) {
  // Materialize the reliable link up front when faults are armed: under
  // --shards the first eager sends may race from several shard threads, and
  // construction is the one link operation its own lock cannot cover.
  if (reliableActive()) link();
}

bool IbTransport::reliableActive() {
  return runtime_.fabric().faults() != nullptr;
}

fault::ReliableLink& IbTransport::link() {
  if (!link_)
    link_ = std::make_unique<fault::ReliableLink>(
        runtime_.fabric(), runtime_.fabric().faults()->plan().rel);
  return *link_;
}

int IbTransport::pairChannel(int src, int dst) const {
  // Size-independent keying: an elastic scale-out grows numPes mid-run, and
  // a multiplicative key minted before the growth would collide with keys
  // minted after it. 20 bits of dst is far beyond any simulated machine.
  return (src << 20) + dst;
}

void IbTransport::send(MessagePtr msg) {
  if (modeledWireBytes(*msg) < runtime_.costs().rdma_threshold_bytes) {
    sendEager(std::move(msg));
  } else {
    sendRendezvous(std::move(msg));
  }
}

std::size_t IbTransport::modeledWireBytes(const Message& msg) const {
  // The envelope's wire charge follows the configured header size (the
  // paper's ~80 bytes by default; ablations can zero it).
  return msg.payloadBytes() + runtime_.costs().header_bytes;
}

void IbTransport::sendEager(MessagePtr msg) {
  eagerSends_.fetch_add(1, std::memory_order_relaxed);
  const int src = msg->env().srcPe;
  const int dst = msg->env().dstPe;
  const std::uint64_t traceId = msg->env().traceId;
  // Stamp before sealHeader so the wire image carries the send instant and
  // the delivery side can feed the streaming msg-RTT histogram. Retransmits
  // rebuild from this image, so the stamp survives them unchanged.
  if (msg->env().sentAt < 0.0) msg->env().sentAt = runtime_.engine().now();
  runtime_.engine().trace().recordSpan(
      runtime_.engine().now(), src, sim::TraceTag::kXportEager,
      sim::SpanPhase::kBegin, traceId, msg->env().parentTraceId,
      static_cast<double>(msg->payloadBytes()));
  if (reliableActive()) {
    // Under faults the eager path ships the real wire image through the
    // reliable link: a corrupted copy fails its checksum and is
    // retransmitted, and the message is rebuilt from the bytes that
    // actually survived the wire.
    msg->sealHeader();
    const std::span<const std::byte> wire = msg->wire();
    fault::ReliableLink::Send send;
    send.src = src;
    send.dst = dst;
    send.wireBytes = modeledWireBytes(*msg);
    send.cls = fault::MsgClass::kPacket;
    send.payload.assign(wire.begin(), wire.end());
    send.on_deliver = [this, dst](std::vector<std::byte>&& image) {
      MessagePtr rebuilt = Message::fromWire({image.data(), image.size()});
      runtime_.scheduler(dst).enqueue(std::move(rebuilt));
    };
    send.traceId = traceId;
    link().post(pairChannel(src, dst), std::move(send));
    return;
  }
  const std::size_t wireBytes = modeledWireBytes(*msg);
  runtime_.fabric().submit(
      src, dst, wireBytes, net::XferKind::kPacket,
      [this, dst, msg = std::move(msg)]() mutable {
        runtime_.scheduler(dst).enqueue(std::move(msg));
      },
      traceId);
}

void IbTransport::sendRendezvous(MessagePtr msg) {
  CKD_REQUIRE(!runtime_.windowed(),
              "rendezvous transport is not supported under --shards: its "
              "pending-send/recv maps and run-time memory registration are "
              "cross-shard state (keep messages below the RDMA threshold, or "
              "use CkDirect for bulk transfers)");
  ++rendezvousSends_;
  if (msg->env().sentAt < 0.0) msg->env().sentAt = runtime_.engine().now();
  const Envelope env = msg->env();
  const std::uint64_t seq = env.seq;
  CKD_REQUIRE(pendingSends_.count(seq) == 0, "duplicate rendezvous sequence");
  const sim::Time now = runtime_.engine().now();
  runtime_.engine().trace().recordSpan(
      now, env.srcPe, sim::TraceTag::kXportRtsSend, sim::SpanPhase::kBegin,
      env.traceId, env.parentTraceId, static_cast<double>(env.payloadBytes));
  PendingSend pending;
  pending.msg = std::move(msg);
  pending.rtsAt = now;
  pendingSends_.emplace(seq, std::move(pending));

  // Request-to-send: a small control message carrying the envelope so the
  // receiver can allocate and register a landing buffer of the right size.
  // Under faults it rides the reliable link (a lost RTS would otherwise
  // stall the rendezvous forever).
  if (reliableActive()) {
    fault::ReliableLink::Send ctrl;
    ctrl.src = env.srcPe;
    ctrl.dst = env.dstPe;
    ctrl.wireBytes = kControlBytes;
    ctrl.cls = fault::MsgClass::kControl;
    ctrl.on_deliver = [this, seq, env](std::vector<std::byte>&&) {
      onRendezvousRequest(seq, env);
    };
    ctrl.traceId = env.traceId;
    link().post(pairChannel(env.srcPe, env.dstPe), std::move(ctrl));
    return;
  }
  runtime_.fabric().submit(
      env.srcPe, env.dstPe, kControlBytes, net::XferKind::kControl,
      [this, seq, env]() { onRendezvousRequest(seq, env); }, env.traceId);
}

void IbTransport::onRendezvousRequest(std::uint64_t seq, Envelope env) {
  // Runs at the receiver when the request arrives. Buffer allocation and
  // memory registration are machine-level work on the receiving PE; the
  // cost grows slowly with the message size (paper §3, rendezvous analysis).
  const RuntimeCosts& costs = runtime_.costs();
  runtime_.engine().trace().recordSpan(
      runtime_.engine().now(), env.dstPe, sim::TraceTag::kXportRtsRecv,
      sim::SpanPhase::kInstant, env.traceId, 0,
      static_cast<double>(env.payloadBytes));
  const sim::Time regCost =
      costs.rendezvous_reg_base_us +
      costs.rendezvous_reg_per_byte_us * static_cast<double>(env.payloadBytes);
  runtime_.scheduler(env.dstPe).enqueueSystemWork(regCost, [this, seq, env]() {
    MessagePtr landing = Message::makeUninit(env, env.payloadBytes);
    const std::span<std::byte> wire = landing->wireMutable();
    const ib::RegionId region =
        verbs_.registerMemory(env.dstPe, wire.data(), wire.size());
    void* remoteAddr = wire.data();
    pendingRecvs_.emplace(seq, PendingRecv{std::move(landing), region});
    // The ack leaves once the registration work is done (currentTime()
    // reflects the cost charged to this system-work context).
    const sim::Time ready = runtime_.scheduler(env.dstPe).currentTime();
    runtime_.engine().at(ready, [this, seq, env, remoteAddr, region]() {
      if (reliableActive()) {
        fault::ReliableLink::Send ctrl;
        ctrl.src = env.dstPe;
        ctrl.dst = env.srcPe;
        ctrl.wireBytes = kControlBytes;
        ctrl.cls = fault::MsgClass::kControl;
        ctrl.on_deliver = [this, seq, remoteAddr,
                           region](std::vector<std::byte>&&) {
          onRendezvousAck(seq, remoteAddr, region);
        };
        ctrl.traceId = env.traceId;
        link().post(pairChannel(env.dstPe, env.srcPe), std::move(ctrl));
        return;
      }
      runtime_.fabric().submit(
          env.dstPe, env.srcPe, kControlBytes, net::XferKind::kControl,
          [this, seq, remoteAddr, region]() {
            onRendezvousAck(seq, remoteAddr, region);
          },
          env.traceId);
    });
  });
}

void IbTransport::reset() {
  // Restart protocol: every rendezvous in flight at the crash is abandoned —
  // the rollback re-sends the messages that mattered (with fresh sequence
  // numbers; nextSeq_ is never rolled back, so no collisions). Landing
  // buffers and pinned send images are released; regions owned by the dead
  // PE were already invalidated wholesale, hence the validity guard.
  for (auto& [seq, recv] : pendingRecvs_)
    if (verbs_.regionValid(recv.region)) verbs_.deregisterMemory(recv.region);
  pendingRecvs_.clear();
  for (auto& [seq, send] : pendingSends_)
    if (verbs_.regionValid(send.localRegion))
      verbs_.deregisterMemory(send.localRegion);
  pendingSends_.clear();
}

void IbTransport::onRendezvousAck(std::uint64_t seq, void* remoteAddr,
                                  ib::RegionId remoteRegion) {
  const auto it = pendingSends_.find(seq);
  if (it == pendingSends_.end() && runtime_.checkpoints() != nullptr)
    return;  // send was flushed by a fail-stop recovery
  CKD_REQUIRE(it != pendingSends_.end(), "rendezvous ack for unknown send");
  MessagePtr msg = it->second.msg;  // keep alive until the RDMA completes
  const int src = msg->env().srcPe;
  sim::TraceRecorder& trace = runtime_.engine().trace();
  trace.recordSpan(runtime_.engine().now(), src, sim::TraceTag::kXportAck,
                   sim::SpanPhase::kInstant, msg->env().traceId);
  trace.observeRendezvousRtt(runtime_.engine().now() - it->second.rtsAt);
  runtime_.scheduler(src).enqueueSystemWork(
      kAckProcessUs, [this, seq, msg, remoteAddr, remoteRegion]() {
        const int src = msg->env().srcPe;
        const sim::Time ready = runtime_.scheduler(src).currentTime();
        runtime_.engine().at(
            ready, [this, seq, src, remoteAddr, remoteRegion]() {
              const auto pit = pendingSends_.find(seq);
              if (pit == pendingSends_.end() &&
                  runtime_.checkpoints() != nullptr)
                return;  // send was flushed by a fail-stop recovery
              CKD_REQUIRE(pit != pendingSends_.end(),
                          "rendezvous ack for a completed send");
              PendingSend& pending = pit->second;
              const std::span<std::byte> wire = pending.msg->wireMutable();
              pending.remoteAddr = remoteAddr;
              pending.remoteRegion = remoteRegion;
              pending.localRegion =
                  verbs_.registerMemory(src, wire.data(), wire.size());
              postPayloadWrite(seq);
            });
      });
}

void IbTransport::postPayloadWrite(std::uint64_t seq) {
  const auto it = pendingSends_.find(seq);
  CKD_REQUIRE(it != pendingSends_.end(), "payload write for unknown send");
  PendingSend& pending = it->second;
  const int src = pending.msg->env().srcPe;
  const int dst = pending.msg->env().dstPe;
  if (!runtime_.peAlive(dst)) {
    // The receiver died after granting its landing buffer: its regions are
    // invalid, so posting would fail the rkey check. Leave the send pending;
    // the restart protocol clears it and the rollback re-sends the message.
    return;
  }
  const std::span<std::byte> wire = pending.msg->wireMutable();
  ib::IbVerbs::RdmaWrite write;
  write.qp = verbs_.connect(src, dst);
  write.local_addr = wire.data();
  write.local_region = pending.localRegion;
  write.remote_addr = pending.remoteAddr;
  write.remote_region = pending.remoteRegion;
  write.bytes = wire.size();
  write.on_local_complete = [this, seq]() {
    const auto pit = pendingSends_.find(seq);
    CKD_REQUIRE(pit != pendingSends_.end(), "completion for unknown send");
    verbs_.deregisterMemory(pit->second.localRegion);
    pendingSends_.erase(pit);
  };
  write.on_remote_delivered = [this, seq]() { onRdmaDelivered(seq); };
  write.trace_id = pending.msg->env().traceId;
  if (reliableActive())
    write.on_error = [this, seq](fault::WcStatus status) {
      onRdmaError(seq, status);
    };
  verbs_.postRdmaWrite(std::move(write));
}

void IbTransport::onRdmaError(std::uint64_t seq, fault::WcStatus /*status*/) {
  const auto it = pendingSends_.find(seq);
  if (it == pendingSends_.end()) return;  // flushed duplicate of a done send
  PendingSend& pending = it->second;
  if (pendingRecvs_.count(seq) == 0) {
    // The payload actually landed and the receiver consumed it; only the
    // acks were lost before the retry budget ran out. A real runtime learns
    // this from the receiver during connection re-establishment. Complete
    // the send locally instead of re-writing into a recycled buffer.
    verbs_.deregisterMemory(pending.localRegion);
    pendingSends_.erase(it);
    return;
  }
  const fault::ReliabilityParams& rel =
      runtime_.fabric().faults()->plan().rel;
  CKD_REQUIRE(pending.attempts < rel.app_retry_budget,
              "rendezvous RDMA write kept failing past the app retry budget");
  ++pending.attempts;
  ++rdmaRetries_;
  // Re-establish the QP (fresh PSN) and re-issue the write after the base
  // timeout — modeled on the machine layer reacting to an async QP event.
  verbs_.resetQp(verbs_.connect(pending.msg->env().srcPe,
                                pending.msg->env().dstPe));
  runtime_.engine().after(rel.timeout_us, [this, seq]() {
    if (pendingSends_.count(seq) != 0) postPayloadWrite(seq);
  });
}

void IbTransport::onRdmaDelivered(std::uint64_t seq) {
  const auto it = pendingRecvs_.find(seq);
  CKD_REQUIRE(it != pendingRecvs_.end(), "RDMA delivery for unknown recv");
  PendingRecv recv = std::move(it->second);
  pendingRecvs_.erase(it);
  runtime_.engine().trace().recordSpan(
      runtime_.engine().now(), recv.landing->env().dstPe,
      sim::TraceTag::kXportRdmaDelivered, sim::SpanPhase::kInstant,
      recv.landing->env().traceId, 0,
      static_cast<double>(recv.landing->payloadBytes()));
  verbs_.deregisterMemory(recv.region);
  runtime_.scheduler(recv.landing->env().dstPe).enqueue(std::move(recv.landing));
}

// ---------------------------------------------------------------------------
// Blue Gene/P
// ---------------------------------------------------------------------------

BgpTransport::BgpTransport(Runtime& runtime, dcmf::DcmfContext& dcmf)
    : runtime_(runtime), dcmf_(dcmf) {
  protocol_ = dcmf_.registerProtocol(
      // Short messages (< 224 B): the handler copies the data out itself.
      [this](int myRank, int /*srcRank*/, const dcmf::Info& /*info*/,
             const std::byte* data, std::size_t bytes) {
        MessagePtr msg = Message::fromWire({data, bytes});
        runtime_.scheduler(myRank).enqueue(std::move(msg));
      },
      // Normal messages: land the wire image directly in the message's own
      // buffer (no staging vector, no fromWire copy of bytes we already
      // own); parse the header in place once the payload has landed.
      [this](int myRank, int /*srcRank*/, const dcmf::Info& /*info*/,
             std::size_t bytes) {
        MessagePtr landing = Message::makeLanding(bytes);
        dcmf::RecvSpec spec;
        spec.buffer = landing->wireMutable().data();
        spec.capacity = bytes;
        spec.on_complete = [this, myRank, landing = std::move(landing)]() {
          landing->adoptHeader();
          runtime_.scheduler(myRank).enqueue(landing);
        };
        return spec;
      });
}

dcmf::Request* BgpTransport::acquireRequest() {
  if (!freeRequests_.empty()) {
    dcmf::Request* request = freeRequests_.back();
    freeRequests_.pop_back();
    return request;
  }
  requestPool_.push_back(std::make_unique<dcmf::Request>());
  return requestPool_.back().get();
}

void BgpTransport::releaseRequest(dcmf::Request* request) {
  freeRequests_.push_back(request);
}

void BgpTransport::reset() {
  // Sends flushed by a fail-stop recovery never fire their completions, so
  // their requests would leak from the pool. Reconcile: everything in flight
  // at the crash is dead, so the whole pool is free again.
  freeRequests_.clear();
  for (const std::unique_ptr<dcmf::Request>& request : requestPool_) {
    request->inFlight = false;
    freeRequests_.push_back(request.get());
  }
}

void BgpTransport::send(MessagePtr msg) {
  ++sends_;
  if (msg->env().sentAt < 0.0) msg->env().sentAt = runtime_.engine().now();
  msg->sealHeader();
  runtime_.engine().trace().recordSpan(
      runtime_.engine().now(), msg->env().srcPe, sim::TraceTag::kXportBgpSend,
      sim::SpanPhase::kBegin, msg->env().traceId, msg->env().parentTraceId,
      static_cast<double>(msg->payloadBytes()));
  post(std::move(msg), 0);
}

void BgpTransport::post(MessagePtr msg, int attempts) {
  dcmf::Request* request = acquireRequest();
  const std::span<const std::byte> wire = msg->wire();
  const int src = msg->env().srcPe;
  const int dst = msg->env().dstPe;
  // `msg` is captured by the completion so the wire bytes outlive the send.
  // The modeled wire size follows the configured envelope size.
  dcmf_.send(protocol_, src, dst, dcmf::Info{}, wire.data(), wire.size(),
             request, [this, request, msg]() { releaseRequest(request); },
             msg->payloadBytes() + runtime_.costs().header_bytes,
             [this, request, msg, attempts, src,
              dst](fault::WcStatus /*status*/) mutable {
               releaseRequest(request);
               const fault::ReliabilityParams& rel =
                   dcmf_.fabric().faults()->plan().rel;
               CKD_REQUIRE(attempts < rel.app_retry_budget,
                           "BGP send kept failing past the app retry budget");
               ++resends_;
               dcmf_.resetChannel(src, dst);
               runtime_.engine().after(
                   rel.timeout_us, [this, msg, attempts]() mutable {
                     post(std::move(msg), attempts + 1);
                   });
             },
             msg->env().traceId);
}

}  // namespace ckd::charm
