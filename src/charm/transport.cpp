#include "charm/transport.hpp"

#include <utility>

#include "charm/runtime.hpp"
#include "util/require.hpp"

namespace ckd::charm {

// ---------------------------------------------------------------------------
// InfiniBand
// ---------------------------------------------------------------------------

IbTransport::IbTransport(Runtime& runtime, ib::IbVerbs& verbs)
    : runtime_(runtime), verbs_(verbs) {}

void IbTransport::send(MessagePtr msg) {
  if (modeledWireBytes(*msg) < runtime_.costs().rdma_threshold_bytes) {
    sendEager(std::move(msg));
  } else {
    sendRendezvous(std::move(msg));
  }
}

std::size_t IbTransport::modeledWireBytes(const Message& msg) const {
  // The envelope's wire charge follows the configured header size (the
  // paper's ~80 bytes by default; ablations can zero it).
  return msg.payloadBytes() + runtime_.costs().header_bytes;
}

void IbTransport::sendEager(MessagePtr msg) {
  ++eagerSends_;
  const int src = msg->env().srcPe;
  const int dst = msg->env().dstPe;
  runtime_.engine().trace().record(runtime_.engine().now(), src,
                                   sim::TraceTag::kXportEager,
                                   static_cast<double>(msg->payloadBytes()));
  runtime_.fabric().submit(src, dst, modeledWireBytes(*msg),
                           net::XferKind::kPacket, [this, msg]() mutable {
                             runtime_.scheduler(msg->env().dstPe)
                                 .enqueue(std::move(msg));
                           });
}

void IbTransport::sendRendezvous(MessagePtr msg) {
  ++rendezvousSends_;
  const Envelope env = msg->env();
  const std::uint64_t seq = env.seq;
  CKD_REQUIRE(pendingSends_.count(seq) == 0, "duplicate rendezvous sequence");
  const sim::Time now = runtime_.engine().now();
  runtime_.engine().trace().record(now, env.srcPe, sim::TraceTag::kXportRtsSend,
                                   static_cast<double>(env.payloadBytes));
  pendingSends_.emplace(seq, PendingSend{std::move(msg), now});

  // Request-to-send: a small control message carrying the envelope so the
  // receiver can allocate and register a landing buffer of the right size.
  runtime_.fabric().submit(
      env.srcPe, env.dstPe, kControlBytes, net::XferKind::kControl,
      [this, seq, env]() { onRendezvousRequest(seq, env); });
}

void IbTransport::onRendezvousRequest(std::uint64_t seq, Envelope env) {
  // Runs at the receiver when the request arrives. Buffer allocation and
  // memory registration are machine-level work on the receiving PE; the
  // cost grows slowly with the message size (paper §3, rendezvous analysis).
  const RuntimeCosts& costs = runtime_.costs();
  runtime_.engine().trace().record(runtime_.engine().now(), env.dstPe,
                                   sim::TraceTag::kXportRtsRecv,
                                   static_cast<double>(env.payloadBytes));
  const sim::Time regCost =
      costs.rendezvous_reg_base_us +
      costs.rendezvous_reg_per_byte_us * static_cast<double>(env.payloadBytes);
  runtime_.scheduler(env.dstPe).enqueueSystemWork(regCost, [this, seq, env]() {
    MessagePtr landing = Message::makeUninit(env, env.payloadBytes);
    const std::span<std::byte> wire = landing->wireMutable();
    const ib::RegionId region =
        verbs_.registerMemory(env.dstPe, wire.data(), wire.size());
    void* remoteAddr = wire.data();
    pendingRecvs_.emplace(seq, PendingRecv{std::move(landing), region});
    // The ack leaves once the registration work is done (currentTime()
    // reflects the cost charged to this system-work context).
    const sim::Time ready = runtime_.scheduler(env.dstPe).currentTime();
    runtime_.engine().at(ready, [this, seq, env, remoteAddr, region]() {
      runtime_.fabric().submit(
          env.dstPe, env.srcPe, kControlBytes, net::XferKind::kControl,
          [this, seq, remoteAddr, region]() {
            onRendezvousAck(seq, remoteAddr, region);
          });
    });
  });
}

void IbTransport::onRendezvousAck(std::uint64_t seq, void* remoteAddr,
                                  ib::RegionId remoteRegion) {
  const auto it = pendingSends_.find(seq);
  CKD_REQUIRE(it != pendingSends_.end(), "rendezvous ack for unknown send");
  MessagePtr msg = it->second.msg;  // keep alive until the RDMA completes
  const int src = msg->env().srcPe;
  sim::TraceRecorder& trace = runtime_.engine().trace();
  trace.record(runtime_.engine().now(), src, sim::TraceTag::kXportAck);
  trace.observeRendezvousRtt(runtime_.engine().now() - it->second.rtsAt);
  runtime_.scheduler(src).enqueueSystemWork(
      kAckProcessUs, [this, seq, msg, remoteAddr, remoteRegion]() {
        const int src = msg->env().srcPe;
        const int dst = msg->env().dstPe;
        const sim::Time ready = runtime_.scheduler(src).currentTime();
        runtime_.engine().at(
            ready, [this, seq, msg, src, dst, remoteAddr, remoteRegion]() {
              const std::span<std::byte> wire = msg->wireMutable();
              const ib::RegionId localRegion =
                  verbs_.registerMemory(src, wire.data(), wire.size());
              ib::IbVerbs::RdmaWrite write;
              write.qp = verbs_.connect(src, dst);
              write.local_addr = wire.data();
              write.local_region = localRegion;
              write.remote_addr = remoteAddr;
              write.remote_region = remoteRegion;
              write.bytes = wire.size();
              write.on_local_complete = [this, seq, localRegion]() {
                verbs_.deregisterMemory(localRegion);
                pendingSends_.erase(seq);
              };
              write.on_remote_delivered = [this, seq]() {
                onRdmaDelivered(seq);
              };
              verbs_.postRdmaWrite(std::move(write));
            });
      });
}

void IbTransport::onRdmaDelivered(std::uint64_t seq) {
  const auto it = pendingRecvs_.find(seq);
  CKD_REQUIRE(it != pendingRecvs_.end(), "RDMA delivery for unknown recv");
  PendingRecv recv = std::move(it->second);
  pendingRecvs_.erase(it);
  runtime_.engine().trace().record(
      runtime_.engine().now(), recv.landing->env().dstPe,
      sim::TraceTag::kXportRdmaDelivered,
      static_cast<double>(recv.landing->payloadBytes()));
  verbs_.deregisterMemory(recv.region);
  runtime_.scheduler(recv.landing->env().dstPe).enqueue(std::move(recv.landing));
}

// ---------------------------------------------------------------------------
// Blue Gene/P
// ---------------------------------------------------------------------------

BgpTransport::BgpTransport(Runtime& runtime, dcmf::DcmfContext& dcmf)
    : runtime_(runtime), dcmf_(dcmf) {
  protocol_ = dcmf_.registerProtocol(
      // Short messages (< 224 B): the handler copies the data out itself.
      [this](int myRank, int /*srcRank*/, const dcmf::Info& /*info*/,
             const std::byte* data, std::size_t bytes) {
        MessagePtr msg = Message::fromWire({data, bytes});
        runtime_.scheduler(myRank).enqueue(std::move(msg));
      },
      // Normal messages: provide a buffer; reconstruct + enqueue once the
      // payload has landed.
      [this](int myRank, int /*srcRank*/, const dcmf::Info& /*info*/,
             std::size_t bytes) {
        auto buffer = std::make_shared<std::vector<std::byte>>(bytes);
        dcmf::RecvSpec spec;
        spec.buffer = buffer->data();
        spec.capacity = bytes;
        spec.on_complete = [this, myRank, buffer]() {
          MessagePtr msg = Message::fromWire(
              {buffer->data(), buffer->size()});
          runtime_.scheduler(myRank).enqueue(std::move(msg));
        };
        return spec;
      });
}

dcmf::Request* BgpTransport::acquireRequest() {
  if (!freeRequests_.empty()) {
    dcmf::Request* request = freeRequests_.back();
    freeRequests_.pop_back();
    return request;
  }
  requestPool_.push_back(std::make_unique<dcmf::Request>());
  return requestPool_.back().get();
}

void BgpTransport::releaseRequest(dcmf::Request* request) {
  freeRequests_.push_back(request);
}

void BgpTransport::send(MessagePtr msg) {
  ++sends_;
  msg->sealHeader();
  runtime_.engine().trace().record(runtime_.engine().now(), msg->env().srcPe,
                                   sim::TraceTag::kXportBgpSend,
                                   static_cast<double>(msg->payloadBytes()));
  dcmf::Request* request = acquireRequest();
  const std::span<const std::byte> wire = msg->wire();
  // `msg` is captured by the completion so the wire bytes outlive the send.
  // The modeled wire size follows the configured envelope size.
  dcmf_.send(protocol_, msg->env().srcPe, msg->env().dstPe, dcmf::Info{},
             wire.data(), wire.size(), request,
             [this, request, msg]() { releaseRequest(request); },
             msg->payloadBytes() + runtime_.costs().header_bytes);
}

}  // namespace ckd::charm
