#pragma once
// Chare base class. A chare is a message-driven object living on one PE of
// the simulated machine; entry methods are ordinary member functions taking
// a Message&, registered with the runtime and invoked by the scheduler.

#include <cstdint>
#include <span>

#include "charm/envelope.hpp"
#include "sim/time.hpp"

namespace ckd::charm {

class Runtime;
class Message;
class Puper;

/// Reduction combiners supported by Runtime::contribute.
enum class ReduceOp : std::int32_t {
  kNop = 0,  ///< barrier: no data, completion fires when all contributed
  kSum = 1,
  kMin = 2,
  kMax = 3,
};

class Chare {
 public:
  virtual ~Chare() = default;

  std::int64_t thisIndex() const { return index_; }
  int myPe() const { return pe_; }
  ArrayId arrayId() const { return arrayId_; }
  Runtime& rts() const { return *runtime_; }

  /// Serialize / deserialize this element's state (checkpoint, restore, and
  /// one day migration). Override in chares that carry state worth saving;
  /// the default saves nothing. The same code runs for both directions —
  /// branch on `p.isUnpacking()` only for re-derived state.
  virtual void pup(Puper& p) { (void)p; }

  /// Model `cost` microseconds of compute inside the running entry method.
  void charge(sim::Time cost) const;

  /// Current virtual time as seen by this chare's PE (handler-relative).
  sim::Time now() const;

  /// Contribute to the current reduction round of this chare's array; when
  /// every element has contributed, `completion` is invoked on every
  /// element with the combined values as payload.
  void contribute(std::span<const double> values, ReduceOp op,
                  EntryId completion);

  /// Barrier sugar: contribute nothing with ReduceOp::kNop.
  void barrier(EntryId completion) { contribute({}, ReduceOp::kNop, completion); }

  /// Called by the runtime right after construction. Not for user code.
  void _init(Runtime* runtime, ArrayId arrayId, std::int64_t index, int pe) {
    runtime_ = runtime;
    arrayId_ = arrayId;
    index_ = index;
    pe_ = pe;
  }

  /// Called by the runtime when the element migrates to another PE during
  /// an elastic drain/rebalance. Not for user code.
  void _rebind(int pe) { pe_ = pe; }

  /// Per-element reduction round (managed by Runtime::contribute).
  std::uint32_t _reductionRound = 0;

 private:
  Runtime* runtime_ = nullptr;
  ArrayId arrayId_ = kSystemArray;
  std::int64_t index_ = 0;
  int pe_ = -1;
};

}  // namespace ckd::charm
