#pragma once
// Common element-to-PE placement maps ("virtualization": several chares per
// PE, §4.1 used a virtualization ratio of 8).

#include <cstdint>
#include <functional>

#include "util/require.hpp"

namespace ckd::charm {

/// Contiguous blocks: elements [k*count/pes, (k+1)*count/pes) on PE k.
inline std::function<int(std::int64_t)> blockMap(std::int64_t count,
                                                 int numPes) {
  CKD_REQUIRE(count > 0 && numPes > 0, "blockMap needs positive sizes");
  return [count, numPes](std::int64_t index) {
    return static_cast<int>((index * numPes) / count);
  };
}

/// index % numPes.
inline std::function<int(std::int64_t)> roundRobinMap(int numPes) {
  CKD_REQUIRE(numPes > 0, "roundRobinMap needs at least one PE");
  return [numPes](std::int64_t index) {
    return static_cast<int>(index % numPes);
  };
}

/// Every element on one PE (microbenchmarks).
inline std::function<int(std::int64_t)> singlePeMap(int pe) {
  return [pe](std::int64_t) { return pe; };
}

}  // namespace ckd::charm
