#pragma once
// Software cost constants of the message-driven runtime, per machine.
// Together with net::CostParams these reproduce the paper's pingpong tables;
// the fits are documented in cost presets (costs.cpp) and EXPERIMENTS.md.

#include <cstddef>
#include <limits>
#include <string>

#include "sim/time.hpp"

namespace ckd::charm {

struct RuntimeCosts {
  std::string name;

  /// Allocating a message and writing its envelope on the sender.
  sim::Time pack_us = 1.0;
  /// Software cost of handing a message to the machine layer.
  sim::Time send_overhead_us = 0.3;
  /// Receive-side machine-layer processing (charged at dequeue).
  sim::Time recv_overhead_us = 0.4;
  /// Scheduler queue overhead per delivered message — the cost CkDirect's
  /// callback path avoids.
  sim::Time sched_overhead_us = 4.0;
  /// Envelope bytes the default message path adds on the wire (~80 B, §3).
  std::size_t header_bytes = 80;

  /// Messages with wire size >= this use the rendezvous + RDMA protocol
  /// (Table 1 shows Charm++/IB cutting over between 20 KB and 30 KB).
  /// numeric_limits::max() disables the RDMA path (Blue Gene/P).
  std::size_t rdma_threshold_bytes = std::numeric_limits<std::size_t>::max();
  /// Rendezvous memory/registration cost: base + per byte (paper: "constant
  /// cost synchronization component as well as a memory component whose
  /// cost increases slowly with message size").
  sim::Time rendezvous_reg_base_us = 0.0;
  double rendezvous_reg_per_byte_us = 0.0;

  /// Receive-side copy charged by the *default* message path on machines
  /// whose machine layer is not zero-copy (Blue Gene/P; §2.2).
  double recv_copy_per_byte_us = 0.0;

  // --- CkDirect knobs ------------------------------------------------------
  /// Sender cost of CkDirect_put (issue an RDMA/DCMF descriptor).
  sim::Time put_issue_us = 0.3;
  /// How long after data lands an *idle* receiver's poll loop notices it.
  sim::Time poll_detect_latency_us = 0.6;
  /// Poll cost per handle sitting in the polling queue, charged every
  /// scheduler pump (§5.2's overhead when thousands of channels poll).
  sim::Time poll_per_handle_us = 0.05;
  /// Invoking the CkDirect callback (a plain function call, not an entry
  /// method — this replaces sched_overhead_us on the CkDirect path).
  sim::Time callback_overhead_us = 0.15;
};

/// Charm++ software costs observed on NCSA Abe (fits Table 1).
RuntimeCosts abeRuntimeCosts();
/// NCSA T3: same software stack as Abe.
RuntimeCosts t3RuntimeCosts();
/// Blue Gene/P (Surveyor) software costs (fits Table 2). No RDMA cut-over;
/// CkDirect callbacks fire from the DCMF completion, so there is no polling.
RuntimeCosts surveyorRuntimeCosts();

}  // namespace ckd::charm
