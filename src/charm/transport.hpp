#pragma once
// Machine layers: how the runtime moves a Message between PEs.
//
//  * IbTransport (InfiniBand, §2.1 environment): eager packetized path below
//    the RDMA threshold; above it a rendezvous — a control round trip that
//    registers a landing buffer at the receiver, followed by a real RDMA
//    write through the verbs layer. This reproduces the Table 1 protocol
//    crossovers (packet vs. RDMA at 20–30 KB).
//  * BgpTransport (Blue Gene/P, §2.2 environment): every message flows
//    through the DCMF two-sided active-message send; no RDMA cut-over
//    existed on Surveyor.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "charm/message.hpp"
#include "dcmf/dcmf.hpp"
#include "fault/reliable.hpp"
#include "ib/verbs.hpp"
#include "sim/time.hpp"

namespace ckd::charm {

class Runtime;

class Transport {
 public:
  virtual ~Transport() = default;
  /// Called at the message's issue time on the simulation engine. Sender
  /// software costs (pack/send overhead) are charged by Runtime before this.
  virtual void send(MessagePtr msg) = 0;

  virtual std::uint64_t eagerSends() const { return 0; }
  virtual std::uint64_t rendezvousSends() const { return 0; }
  /// RDMA payload writes re-issued after an error completion (faults only).
  virtual std::uint64_t rdmaRetries() const { return 0; }

  /// Fail-stop: `pe` just died. Flush transport-level reliable flows that
  /// touch it (pending entries drop silently; rollback re-drives them).
  virtual void onPeCrash(int pe) { (void)pe; }
  /// Restart protocol: discard every in-flight transport transaction
  /// (rendezvous state, request pools) before state is rolled back.
  virtual void reset() {}
};

class IbTransport final : public Transport {
 public:
  IbTransport(Runtime& runtime, ib::IbVerbs& verbs);
  void send(MessagePtr msg) override;

  std::uint64_t eagerSends() const override {
    return eagerSends_.load(std::memory_order_relaxed);
  }
  std::uint64_t rendezvousSends() const override { return rendezvousSends_; }
  std::uint64_t rdmaRetries() const override { return rdmaRetries_; }

  void onPeCrash(int pe) override {
    if (link_) link_->flushPe(pe);
  }
  void reset() override;

 private:
  std::size_t modeledWireBytes(const Message& msg) const;
  void sendEager(MessagePtr msg);
  void sendRendezvous(MessagePtr msg);
  void onRendezvousRequest(std::uint64_t seq, Envelope env);
  void onRendezvousAck(std::uint64_t seq, void* remoteAddr,
                       ib::RegionId remoteRegion);
  /// Issue (or, after an error completion, re-issue) the payload RDMA write
  /// for a pending rendezvous send.
  void postPayloadWrite(std::uint64_t seq);
  void onRdmaError(std::uint64_t seq, fault::WcStatus status);
  void onRdmaDelivered(std::uint64_t seq);

  /// Faults armed on the fabric: eager/control traffic rides a reliable link.
  bool reliableActive();
  fault::ReliableLink& link();
  /// Directional per-PE-pair reliability channel for transport messages.
  int pairChannel(int src, int dst) const;

  Runtime& runtime_;
  ib::IbVerbs& verbs_;
  struct PendingSend {
    MessagePtr msg;
    sim::Time rtsAt;  // when the request-to-send left, for RTT stats
    // Write context, kept so an error completion can re-issue the write.
    void* remoteAddr = nullptr;
    ib::RegionId remoteRegion;
    ib::RegionId localRegion;
    int attempts = 0;
  };
  std::map<std::uint64_t, PendingSend> pendingSends_;
  struct PendingRecv {
    MessagePtr landing;
    ib::RegionId region;
  };
  std::map<std::uint64_t, PendingRecv> pendingRecvs_;
  std::unique_ptr<fault::ReliableLink> link_;  ///< lazy; only with faults
  /// Eager sends run on the source PE's shard thread; the counter is the
  /// only cross-shard state on that path (the link itself has its own lock).
  std::atomic<std::uint64_t> eagerSends_{0};
  // Rendezvous state is single-threaded: sendRendezvous refuses --shards.
  std::uint64_t rendezvousSends_ = 0;
  std::uint64_t rdmaRetries_ = 0;

  /// Modeled size of a rendezvous control message (request-to-send / ack).
  static constexpr std::size_t kControlBytes = 32;
  /// Receiver-side cost of processing a rendezvous ack on the sender.
  static constexpr sim::Time kAckProcessUs = 0.2;
};

class BgpTransport final : public Transport {
 public:
  BgpTransport(Runtime& runtime, dcmf::DcmfContext& dcmf);
  void send(MessagePtr msg) override;

  std::uint64_t eagerSends() const override { return sends_; }
  std::uint64_t rdmaRetries() const override { return resends_; }

  void reset() override;

 private:
  dcmf::Request* acquireRequest();
  void releaseRequest(dcmf::Request* request);
  /// Hand the sealed message to DCMF; with faults armed, a permanent send
  /// failure resets the channel and re-posts (up to the app retry budget).
  void post(MessagePtr msg, int attempts);

  Runtime& runtime_;
  dcmf::DcmfContext& dcmf_;
  dcmf::ProtocolId protocol_ = -1;
  std::vector<std::unique_ptr<dcmf::Request>> requestPool_;
  std::vector<dcmf::Request*> freeRequests_;
  std::uint64_t sends_ = 0;
  std::uint64_t resends_ = 0;
};

}  // namespace ckd::charm
