#pragma once
// The per-PE message scheduler — the component whose queueing overhead
// CkDirect exists to bypass.
//
// Execution model under discrete-event simulation: a "pump" is one turn of
// the Charm++ scheduler loop. Each pump
//   1. runs the registered poll hook (CkDirect's polling-queue scan on the
//      InfiniBand layer) and charges its cost,
//   2. executes one piece of machine-level system work if queued (no
//      scheduling overhead; DCMF completions, rendezvous processing), or
//      else dequeues one message and invokes its handler, charging
//      recv + scheduling overhead plus whatever compute the handler itself
//      charges.
// The pump then occupies the simulated processor for the total charged time
// and re-arms itself while work remains. An idle PE pumps only when poked
// (a message arrives, or a one-sided delivery lands) — see DESIGN.md §1 for
// why this is the DES-safe model of an idle polling loop.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "charm/message.hpp"
#include "sim/engine.hpp"
#include "sim/processor.hpp"
#include "util/inplace_fn.hpp"

namespace ckd::charm {

class Runtime;

class Scheduler {
 public:
  Scheduler(Runtime& runtime, int pe);

  int pe() const { return pe_; }

  /// Queue a message for entry-method delivery (pays scheduling overhead).
  void enqueue(MessagePtr msg);

  /// System-work closure; sized for the transports' usual captures (`this`
  /// plus an envelope and a couple of ids) so queuing one never allocates.
  using SystemFn = util::InplaceFunction<void(), 104>;

  /// Queue machine-level work that bypasses the message queue: it runs at
  /// the PE's next free moment and charges `cost` (plus anything `fn`
  /// charges) but no scheduling overhead. `layer` is the runtime tier the
  /// cost is attributed to (rendezvous processing is transport work, DCMF
  /// completions of CkDirect puts are ckdirect work).
  void enqueueSystemWork(sim::Time cost, SystemFn fn,
                         sim::Layer layer = sim::Layer::kTransport);

  /// Ask for a pump after `delay` — used to model "the poll loop will
  /// notice the landed data shortly" (CkDirect delivery pokes).
  void poke(sim::Time delay);

  /// CkDirect's polling-queue scan. Runs at the top of every pump; must
  /// charge its own cost via charge().
  void setPollHook(std::function<void()> hook);

  /// True while an entry method / system work / poll callback is running.
  bool inHandler() const { return ctxActive_; }

  /// Fail-stop: mark this PE dead and discard everything queued. While dead
  /// the scheduler accepts nothing (arrivals addressed to a crashed PE
  /// vanish, like packets to a powered-off node) and never pumps.
  void crash();
  /// Bring a respawned PE back; the restart protocol re-seeds its state.
  void revive() { dead_ = false; }
  bool dead() const { return dead_; }

  /// Elastic lifecycle: a retired PE keeps pumping (late arrivals to its
  /// former elements are forwarded to the new owners) but hosts no chare
  /// work of its own and stops heartbeating. A rollback that reverts the
  /// retirement clears the flag.
  void setRetired(bool retired) { retired_ = retired; }
  bool retired() const { return retired_; }

  /// Restart protocol: discard everything queued on a LIVE PE too — queued
  /// messages were stamped pre-recovery and target rolled-back state.
  void flushQueues() {
    messages_.clear();
    systemWork_.clear();
  }

  /// Handler-relative virtual time: pump start plus everything charged so
  /// far. Equals engine.now() outside a handler.
  sim::Time currentTime() const;

  /// Model compute / software cost inside the current handler, attributed
  /// to the current context's layer (kApp inside an entry method). No-op
  /// when called outside one (setup code at t=0 is free).
  void charge(sim::Time cost);

  /// Like charge(), but attributes the time to an explicit runtime layer —
  /// the transports and CkDirect managers use this so per-layer breakdowns
  /// in ProfileReport do not lump runtime overhead into application time.
  void chargeAs(sim::Layer layer, sim::Time cost);

  std::size_t queueLength() const { return messages_.size(); }
  std::uint64_t messagesProcessed() const { return messagesProcessed_; }
  std::uint64_t pumps() const { return pumps_; }

 private:
  struct SystemWork {
    sim::Time cost;
    SystemFn fn;
    sim::Layer layer;
  };

  void schedulePump();
  void pump();
  /// Statically bound re-arm thunk: scheduled through the engine's raw
  /// overload so every pump re-arm is allocation- and closure-free.
  static void pumpThunk(void* self) { static_cast<Scheduler*>(self)->pump(); }
  static void pokeThunk(void* self) {
    static_cast<Scheduler*>(self)->schedulePump();
  }
  void flushLayerTimes();

  Runtime& runtime_;
  int pe_;
  std::deque<MessagePtr> messages_;
  std::deque<SystemWork> systemWork_;
  std::function<void()> pollHook_;

  bool pumpScheduled_ = false;
  bool dead_ = false;
  bool retired_ = false;
  bool ctxActive_ = false;
  sim::Time ctxStart_ = 0.0;
  sim::Time ctxCharged_ = 0.0;
  sim::Layer ctxLayer_ = sim::Layer::kApp;
  /// Per-pump layer-time accumulator, flushed to the TraceRecorder once per
  /// pump instead of on every charge (batched metric accumulation).
  std::array<sim::Time, sim::kLayerCount> ctxLayerAcc_{};

  std::uint64_t messagesProcessed_ = 0;
  std::uint64_t pumps_ = 0;
};

}  // namespace ckd::charm
