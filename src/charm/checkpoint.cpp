#include "charm/checkpoint.hpp"

#include <algorithm>
#include <iterator>
#include <span>
#include <utility>

#include "charm/lifecycle.hpp"
#include "charm/pup.hpp"
#include "charm/transport.hpp"
#include "dcmf/dcmf.hpp"
#include "ib/verbs.hpp"
#include "net/fabric.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace ckd::charm {

CheckpointManager::CheckpointManager(Runtime& rts)
    : rts_(rts), shardLink_(rts.fabric(), rts.config_.faults.rel) {
  CKD_REQUIRE(rts_.numPes() >= 2,
              "fail-stop tolerance needs a buddy: at least 2 PEs");
  // Resolve crash victims up front so the whole schedule is a pure function
  // of (plan, fault seed). A distinct stream from the wire injector's keeps
  // victim choice independent of message order.
  util::Rng rng(rts_.config_.faultSeed ^ 0x9e3779b97f4a7c15ull);
  for (const fault::FaultRule& rule : rts_.config_.faults.rules) {
    if (rule.kind != fault::FaultKind::kPeCrash || rule.crash_at_us < 0.0)
      continue;
    PlannedCrash crash;
    crash.at = rule.crash_at_us;
    crash.pe = rule.src >= 0
                   ? rule.src
                   : static_cast<int>(
                         rng.below(static_cast<std::uint64_t>(rts_.numPes())));
    CKD_REQUIRE(crash.pe >= 0 && crash.pe < rts_.numPes(),
                "pe_crash victim out of range");
    crashes_.push_back(crash);
  }
  std::sort(crashes_.begin(), crashes_.end(),
            [](const PlannedCrash& a, const PlannedCrash& b) {
              return a.at < b.at;
            });
  pendingCrashes_ = static_cast<int>(crashes_.size());
  lastBeat_.assign(static_cast<std::size_t>(rts_.numPes()), 0.0);
}

sim::Time CheckpointManager::beatPeriodUs() const {
  return rts_.config_.heartbeatPeriod_us;
}

int CheckpointManager::missedBeats() const {
  return rts_.config_.heartbeatMisses;
}

int CheckpointManager::buddyOf(int pe) const {
  const int n = rts_.numPes();
  for (int step = 1; step < n; ++step) {
    const int buddy = (pe + step) % n;
    if (!rts_.schedulers_[static_cast<std::size_t>(buddy)]->retired())
      return buddy;
  }
  return (pe + 1) % n;
}

void CheckpointManager::onPesGrown() {
  lastBeat_.resize(static_cast<std::size_t>(rts_.numPes()),
                   rts_.engine().now());
}

void CheckpointManager::arm() {
  CKD_REQUIRE(!armed_, "checkpoint manager armed twice");
  armed_ = true;
  const sim::Time now = rts_.engine().now();
  lastBeat_.assign(static_cast<std::size_t>(rts_.numPes()), now);
  for (std::size_t i = 0; i < crashes_.size(); ++i)
    rts_.engine().at(std::max(now, crashes_[i].at),
                     [this, i]() { injectCrash(i); });
  // The heartbeat loop self-reschedules while an outage is possible and
  // stops once the last planned crash has been recovered, so engine.run()
  // still reaches quiescence.
  heartbeatTick();
}

void CheckpointManager::onReductionRoot(ArrayId array, std::uint32_t round,
                                        const Runtime::ReduceAgg& agg) {
  // Checkpoints only make sense between arm() (setup done, measured run
  // about to start) and the last recovery. During an outage no cut is
  // consistent (the victim cannot have contributed — this only triggers
  // for arrays with no elements there).
  if (!armed_ || crashedPe_ >= 0 || pendingCrashes_ == 0) return;
  // The snapshot packs EVERY PE's elements, so under --shards it must run
  // in serial context (every shard parked). Defer to the boundary of the
  // window that flushed the root — a partition-independent instant — and
  // re-evaluate the gates there: an outage can begin at exactly that
  // boundary, and the period must be measured at the commit time. On the
  // classic engine the deferral runs inline and nothing changes.
  rts_.runAtSerialBoundary([this, array, round, agg]() {
    if (crashedPe_ >= 0 || pendingCrashes_ == 0) return;
    // Genesis: the first root flush checkpoints regardless of the period,
    // so a usable snapshot exists as soon as the application's setup
    // barrier completes. After that the period gates checkpoint frequency.
    if (lastCkptAt_ >= 0.0 && rts_.engine().now() - lastCkptAt_ <
                                  rts_.config_.checkpointPeriod_us)
      return;
    takeCheckpoint(array, round, agg);
  });
}

void CheckpointManager::takeCheckpoint(ArrayId array, std::uint32_t round,
                                       const Runtime::ReduceAgg& agg) {
  const sim::Time now = rts_.engine().now();
  const std::uint64_t id = nextSnapId_++;
  Snapshot& snap = snapshots_[id];
  snap.takenAt = now;
  snap.rootArray = array;
  snap.round = round;
  snap.agg = agg;
  snap.shards.resize(static_cast<std::size_t>(rts_.numPes()));
  if (rts_.lifecycle_ != nullptr) {
    // Elastic runs: snapshot the placement and lifecycle state too, so a
    // restore can revert migrations/retirements that happen after the cut.
    snap.peOfByArray.reserve(rts_.arrays_.size());
    for (const Runtime::ArrayRecord& rec : rts_.arrays_)
      snap.peOfByArray.push_back(rec.peOf);
    snap.lifeImage = rts_.lifecycle_->packImage();
  }

  const double memcpyRate = rts_.fabric().params().self_per_byte_us;
  std::size_t total = 0;
  for (int pe = 0; pe < rts_.numPes(); ++pe) {
    if (rts_.schedulers_[static_cast<std::size_t>(pe)]->retired())
      continue;  // retired PEs host nothing and ship no shard
    Packer packer;
    Puper puper(packer);
    // Deterministic shard layout: arrays in id order, elements in onPe
    // order; per element the reduction round, then the pup image. Restore
    // walks the same order, so no per-element framing is needed.
    for (Runtime::ArrayRecord& rec : rts_.arrays_) {
      for (std::int64_t index : rec.onPe[static_cast<std::size_t>(pe)]) {
        Chare& el = *rec.elems[static_cast<std::size_t>(index)];
        puper | el._reductionRound;
        el.pup(puper);
      }
    }
    std::vector<std::byte>& shard = snap.shards[static_cast<std::size_t>(pe)];
    shard.assign(packer.bytes().begin(), packer.bytes().end());
    total += shard.size();

    // Pack cost is a memcpy of the shard on the owning PE.
    rts_.scheduler(pe).enqueueSystemWork(
        memcpyRate * static_cast<double>(shard.size()), []() {},
        sim::Layer::kScheduler);

    // Ship the shard to the buddy as reliable bulk traffic; the snapshot is
    // usable only once every shard has actually landed.
    fault::ReliableLink::Send send;
    send.src = pe;
    send.dst = buddyOf(pe);
    // Channel key must be pair-based: a PE's buddy changes when the machine
    // grows or a PE retires, and a reliable channel is one (src, dst) flow.
    const int channel = (pe << 20) + send.dst;
    send.wireBytes = shard.size() + 32;  // shard + checkpoint header
    send.cls = fault::MsgClass::kBulk;
    send.on_deliver = [this, id, pe](std::vector<std::byte>&&) {
      // Arrival fires on the buddy's shard; the snapshot table is global
      // state, so completion is committed at the window boundary.
      rts_.runAtSerialBoundary([this, id, pe]() { onShardArrived(id, pe); });
    };
    send.on_error = [this, channel](fault::WcStatus) {
      // Extreme storm: give up on this snapshot's shard but recover the
      // flow so later checkpoints still ship.
      shardLink_.resetChannel(channel);
    };
    shardLink_.post(channel, std::move(send));
    ++snap.expected;
  }

  ++checkpointsTaken_;
  bytesPacked_ += total;
  lastCkptAt_ = now;
  rts_.engine().trace().record(now, rts_.record(array).hostPes.front(),
                               sim::TraceTag::kCkptTaken,
                               static_cast<double>(total));
}

void CheckpointManager::onShardArrived(std::uint64_t id, int pe) {
  const auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return;  // pruned while the shard was in flight
  Snapshot& snap = it->second;
  (void)pe;
  ++snap.arrived;
  if (snap.arrived < snap.expected) return;
  snap.complete = true;
  snap.safeAt = rts_.engine().now();
  pruneSnapshots();
}

void CheckpointManager::pruneSnapshots() {
  // Ids are monotone in takenAt, so "newest" == largest id. Keep the two
  // newest completed snapshots; everything older (completed or not) can no
  // longer win the restore selection and is dropped.
  int completeSeen = 0;
  std::uint64_t cutoff = 0;
  bool haveCutoff = false;
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (!it->second.complete) continue;
    if (++completeSeen == 2) {
      cutoff = it->first;
      haveCutoff = true;
      break;
    }
  }
  if (!haveCutoff) return;
  for (auto it = snapshots_.begin(); it != snapshots_.end();)
    it = it->first < cutoff ? snapshots_.erase(it) : std::next(it);
}

void CheckpointManager::injectCrash(std::size_t which) {
  const PlannedCrash& crash = crashes_[which];
  CKD_REQUIRE(crashedPe_ < 0,
              "overlapping pe_crash events: one outage at a time");
  int victim = crash.pe;
  // Elastic runs: a retired PE has left the machine and cannot crash — the
  // fault lands on the next live PE in the ring (deterministic retarget).
  while (rts_.schedulers_[static_cast<std::size_t>(victim)]->retired())
    victim = (victim + 1) % rts_.numPes();
  CKD_REQUIRE(rts_.peAlive(victim), "pe_crash victim is already dead");
  const sim::Time now = rts_.engine().now();
  crashedPe_ = victim;
  crashAt_ = now;
  --pendingCrashes_;
  rts_.engine().trace().record(now, victim, sim::TraceTag::kFaultPeCrash,
                               static_cast<double>(victim));

  // Fail-stop: the PE's pending work evaporates, every reliable flow
  // touching it is torn down silently (flush barriers NAK in-flight
  // copies), its in-flight transport transactions die, and its pinned
  // memory stops validating for remote access.
  rts_.scheduler(victim).crash();
  rts_.transport_->onPeCrash(victim);
  if (rts_.ib_ != nullptr) {
    rts_.ib_->flushPe(victim);
    rts_.ib_->invalidatePe(victim);
  }
  if (rts_.dcmf_ != nullptr) rts_.dcmf_->flushPe(victim);
  shardLink_.flushPe(victim);
  // Crash mid-drain: tear down handoff flows touching the victim; the
  // restore below falls back to the global rollback instead of wedging.
  if (rts_.lifecycle_ != nullptr) rts_.lifecycle_->onPeCrash(victim);
}

void CheckpointManager::heartbeatTick() {
  // Quiesce once no outage is pending or in progress, so run() terminates.
  if (pendingCrashes_ == 0 && crashedPe_ < 0) return;
  const sim::Time now = rts_.engine().now();
  for (int pe = 0; pe < rts_.numPes(); ++pe) {
    if (!rts_.peAlive(pe)) continue;  // the dead go silent
    if (rts_.schedulers_[static_cast<std::size_t>(pe)]->retired())
      continue;  // retired PEs have left the machine
    rts_.fabric().sendWire(
        pe, buddyOf(pe), kBeatBytes, fault::MsgClass::kControl,
        [this, pe](const fault::WireSender::Delivery&) {
          lastBeat_[static_cast<std::size_t>(pe)] = rts_.engine().now();
        });
  }
  if (crashedPe_ >= 0 &&
      now - lastBeat_[static_cast<std::size_t>(crashedPe_)] >=
          missedBeats() * beatPeriodUs()) {
    rts_.engine().trace().record(now, crashedPe_, sim::TraceTag::kCrashDetect,
                                 now - crashAt_);
    restore();
  }
  rts_.engine().after(beatPeriodUs(), [this]() { heartbeatTick(); });
}

void CheckpointManager::restore() {
  const sim::Time now = rts_.engine().now();
  // Newest snapshot that was fully at the buddies before the crash. A
  // snapshot completed after the crash instant may contain shards shipped
  // from the victim post-checkpoint; safeAt <= crashAt rules those out.
  Snapshot* snap = nullptr;
  for (auto& [id, s] : snapshots_)
    if (s.complete && s.safeAt <= crashAt_ &&
        (snap == nullptr || s.takenAt > snap->takenAt))
      snap = &s;
  CKD_REQUIRE(snap != nullptr,
              "pe_crash happened before the first buddy checkpoint completed "
              "(crash scheduled too early or checkpoints undeliverable)");

  // 1. New epoch: every live message from before this instant is stale and
  //    will be dropped at enqueue.
  ++rts_.epoch_;
  // 2. Flush every scheduler queue (live PEs hold pre-rollback messages
  //    too) and bring the victim back.
  for (auto& sched : rts_.schedulers_) sched->flushQueues();
  rts_.scheduler(crashedPe_).revive();
  // 3. Tear down every reliable flow — including live-live flows, whose
  //    in-flight deliveries would otherwise land pre-crash bytes in
  //    restored buffers — and every in-flight transport transaction.
  if (rts_.ib_ != nullptr) rts_.ib_->flushAll();
  if (rts_.dcmf_ != nullptr) rts_.dcmf_->flushAll();
  shardLink_.flushAll();
  rts_.transport_->reset();

  // 4. Reduction progress restarts from the cut (cleared before the
  //    placement revert below, which requires closed rounds).
  for (Runtime::ArrayRecord& rec : rts_.arrays_)
    for (Runtime::PeReduceState& state : rec.reduce) state.rounds.clear();
  // 4b. Elastic runs: revert element placement to the snapshot's. Any
  //     migration (drain handoff, post-scale-out rebalance) that happened
  //     after the cut is undone — the crash-mid-drain fallback. The app's
  //     migrate hook fires for every reverted element so its CkDirect
  //     channels move home again, and the lifecycle manager rolls its own
  //     state machine back to the image taken at the cut.
  if (!snap->peOfByArray.empty()) {
    CKD_REQUIRE(snap->peOfByArray.size() == rts_.arrays_.size(),
                "arrays created after arm() are not restorable");
    for (std::size_t a = 0; a < rts_.arrays_.size(); ++a) {
      Runtime::ArrayRecord& rec = rts_.arrays_[a];
      const std::vector<int>& want = snap->peOfByArray[a];
      for (std::int64_t i = 0; i < rec.count; ++i) {
        const int cur = rec.peOf[static_cast<std::size_t>(i)];
        const int old = want[static_cast<std::size_t>(i)];
        if (cur == old) continue;
        if (rts_.migrateHook_)
          rts_.migrateHook_(static_cast<ArrayId>(a), i, cur, old);
        rec.elems[static_cast<std::size_t>(i)]->_rebind(old);
        rec.peOf[static_cast<std::size_t>(i)] = old;
      }
      rts_.rebuildPlacement(rec);
    }
  }
  if (rts_.lifecycle_ != nullptr) rts_.lifecycle_->onRestore(snap->lifeImage);
  // 5. Unpack every element in place from the chosen snapshot. Buffer
  //    addresses are stable (pup's in-place vector contract), which is what
  //    re-registration below keys off. The loop is bounded by the
  //    snapshot's PE count: PEs added by a later scale-out own nothing
  //    under the reverted placement.
  const double memcpyRate = rts_.fabric().params().self_per_byte_us;
  for (int pe = 0; pe < static_cast<int>(snap->shards.size()); ++pe) {
    const std::vector<std::byte>& shard =
        snap->shards[static_cast<std::size_t>(pe)];
    Unpacker unpacker(std::span<const std::byte>(shard.data(), shard.size()));
    Puper puper(unpacker);
    for (Runtime::ArrayRecord& rec : rts_.arrays_) {
      for (std::int64_t index : rec.onPe[static_cast<std::size_t>(pe)]) {
        Chare& el = *rec.elems[static_cast<std::size_t>(index)];
        puper | el._reductionRound;
        el.pup(puper);
      }
    }
    rts_.scheduler(pe).enqueueSystemWork(
        memcpyRate * static_cast<double>(shard.size()), []() {},
        sim::Layer::kScheduler);
  }
  // 6. Re-register memory and re-run the CkDirect handle handshake under
  //    the new epoch.
  if (rts_.reestablishHook_) rts_.reestablishHook_();
  // 7. Replay the snapshotted reduction-root delivery; its messages carry
  //    the new epoch, so the application resumes exactly from the cut.
  rts_.deliverReductionResult(rts_.record(snap->rootArray), /*pos=*/0,
                              snap->round, snap->agg);

  ++restarts_;
  recoveryUs_ += now - crashAt_;
  rts_.engine().trace().record(now, crashedPe_, sim::TraceTag::kCkptRestore,
                               now - crashAt_);
  crashedPe_ = -1;
}

}  // namespace ckd::charm
