#pragma once
// The message envelope — the ~80-byte header every default-path Charm++
// message carries on the wire (§3 attributes part of CkDirect's small-message
// win to skipping exactly this header).

#include <cstddef>
#include <cstdint>

namespace ckd::charm {

using ArrayId = std::int32_t;
using EntryId = std::int32_t;

constexpr ArrayId kSystemArray = -1;

/// Message categories the runtime dispatches on.
enum class MsgKind : std::int32_t {
  kUser = 0,        ///< entry-method invocation on an array element
  kReduceUp = 1,    ///< partial reduction flowing up the PE tree
  kReduceDown = 2,  ///< reduction result flowing down the PE tree
  kBroadcast = 3,   ///< array broadcast flowing down the PE tree
  kRendezvousReq = 4,   ///< machine layer: request-to-send
  kRendezvousAck = 5,   ///< machine layer: rkey/buffer grant
};

/// POD wire header. Serialized verbatim at the front of every message; the
/// wire charge is kWireHeaderBytes regardless of how many of them the
/// in-memory struct uses.
struct Envelope {
  // 8-byte members first: packing them together leaves exactly one 4-byte
  // pad in the 4-byte tail group, keeping sizeof(Envelope) == 80.
  std::int64_t elemIndex = 0;
  std::uint64_t seq = 0;
  /// Causal chain id minted at send time (sim::TraceRecorder::mintId); 0
  /// until minted. Retransmits and duplicates of the same logical message
  /// carry the same id — one chain, N attempts.
  std::uint64_t traceId = 0;
  /// Chain id of the handler that sent this message (0 for root sends).
  std::uint64_t parentTraceId = 0;
  /// Virtual send timestamp (us) stamped by the transport at first issue;
  /// -1 until stamped. Rides the header so the delivery side can feed the
  /// streaming msg-RTT histogram without any cross-shard lookup state.
  /// Retransmits keep the original stamp — one chain, N attempts.
  double sentAt = -1.0;
  std::uint32_t magic = kMagic;
  MsgKind kind = MsgKind::kUser;
  std::int32_t srcPe = -1;
  std::int32_t dstPe = -1;
  ArrayId arrayId = kSystemArray;
  EntryId entry = -1;
  std::uint32_t payloadBytes = 0;
  std::uint32_t reductionRound = 0;
  /// Restart epoch the message was sent in. The scheduler drops arrivals
  /// whose epoch predates the runtime's (stale traffic from before a
  /// fail-stop recovery must not land in rolled-back state).
  std::uint32_t epoch = 0;

  static constexpr std::uint32_t kMagic = 0xC4A23u;
};

/// Modeled wire size of the header (the paper: "approximately 80 bytes").
constexpr std::size_t kWireHeaderBytes = 80;
static_assert(sizeof(Envelope) <= kWireHeaderBytes,
              "envelope must fit in the modeled 80-byte header");

}  // namespace ckd::charm
