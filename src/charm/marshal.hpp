#pragma once
// Parameter marshalling for entry methods: a Packer that serializes
// trivially copyable values and spans into a payload, and an Unpacker that
// reads them back in order. Both are bounds-checked.

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/require.hpp"

namespace ckd::charm {

class Packer {
 public:
  template <typename T>
  Packer& put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "marshalled values must be trivially copyable");
    append(&value, sizeof(T));
    return *this;
  }

  /// Writes the element count followed by the raw elements, so the reader
  /// can size its destination.
  template <typename T>
  Packer& putSpan(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "marshalled spans must hold trivially copyable elements");
    put<std::uint64_t>(values.size());
    if (!values.empty()) append(values.data(), values.size_bytes());
    return *this;
  }

  template <typename T>
  Packer& putVector(const std::vector<T>& values) {
    return putSpan(std::span<const T>(values));
  }

  std::span<const std::byte> bytes() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }
  std::vector<std::byte> buffer_;
};

class Unpacker {
 public:
  explicit Unpacker(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "marshalled values must be trivially copyable");
    CKD_REQUIRE(offset_ + sizeof(T) <= bytes_.size(),
                "unpacker ran past the end of the payload");
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  /// Zero-copy view of a span written by Packer::putSpan.
  template <typename T>
  std::span<const T> getSpan() {
    const auto count = static_cast<std::size_t>(get<std::uint64_t>());
    const std::size_t byteCount = count * sizeof(T);
    CKD_REQUIRE(offset_ + byteCount <= bytes_.size(),
                "span extends past the end of the payload");
    const auto* data = reinterpret_cast<const T*>(bytes_.data() + offset_);
    offset_ += byteCount;
    return {data, count};
  }

  template <typename T>
  std::vector<T> getVector() {
    const auto view = getSpan<T>();
    return std::vector<T>(view.begin(), view.end());
  }

  std::size_t remaining() const { return bytes_.size() - offset_; }
  bool empty() const { return remaining() == 0; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace ckd::charm
