#include "mpi/mpi_costs.hpp"

namespace ckd::mpi {

// Fit targets are one-way times (half the Table 1 / Table 2 RTTs).

// MPICH-VMI: 100 B -> 6.18, 10 KB -> 30.4, 40 KB -> 100.6, 100 KB -> 166.3,
// 500 KB -> 698.5. Eager slope ~2.05 ns/B with ~0.3 us per 2 KB packet and
// a small-message copy penalty below 4 KB; rendezvous above 64 KB with a
// heavy (~22 us) registration.
MpiCosts mpichVmiCosts() {
  MpiCosts c;
  c.name = "MPICH-VMI";
  c.sw_send_us = 0.10;
  c.sw_recv_us = 0.10;
  c.tag_match_us = 0.15;
  c.eager = net::XferClass{/*alpha*/ 5.0, /*per_byte*/ 2.05e-3,
                           /*per_packet*/ 0.30, /*mtu*/ 2048};
  // VMI stays on the packetized path unusually long (Table 1's 70 KB row
  // still shows eager-like cost); the cut-over sits between 70 and 100 KB.
  c.eager_threshold_bytes = 96 * 1024;
  c.rndv_base_us = 22.0;
  c.rndv_per_byte_us = 0.04e-3;
  c.rdma = net::XferClass{/*alpha*/ 5.0, /*per_byte*/ 1.282e-3,
                          /*per_packet*/ 0.0, /*mtu*/ 0};
  c.bump_lo_bytes = 512;
  c.bump_hi_bytes = 4 * 1024;
  c.bump_us = 1.5;
  c.pscw_overhead_us = 2.5;
  c.put_eager_threshold_bytes = c.eager_threshold_bytes;
  c.put_large_savings_per_byte_us = 0.0;
  return c;
}

// MVAPICH2: 100 B -> 6.15, 20 KB -> 44.3, 30 KB -> 59.7, 500 KB -> 693.
// Eager slope ~1.9 ns/B to 16 KB (with a 0.5-8 KB buffering penalty);
// efficient rendezvous (reg ~4 us + 0.03 ns/B) onto the RDMA path above.
// MPI_Put: +2.2 us PSCW, stays eager to ~24 KB, an extra 2-8 KB bump, and
// a large-message copy saving that lets put win beyond ~70 KB.
MpiCosts mvapichCosts() {
  MpiCosts c;
  c.name = "MVAPICH";
  c.sw_send_us = 0.25;
  c.sw_recv_us = 0.20;
  c.tag_match_us = 0.20;
  c.eager = net::XferClass{/*alpha*/ 5.0, /*per_byte*/ 1.9e-3,
                           /*per_packet*/ 0.35, /*mtu*/ 2048};
  c.eager_threshold_bytes = 16 * 1024;
  c.rndv_base_us = 4.0;
  c.rndv_per_byte_us = 0.03e-3;
  c.rdma = net::XferClass{/*alpha*/ 5.0, /*per_byte*/ 1.282e-3,
                          /*per_packet*/ 0.0, /*mtu*/ 0};
  c.bump_lo_bytes = 512;
  c.bump_hi_bytes = 8 * 1024;
  c.bump_us = 2.0;
  c.pscw_overhead_us = 2.2;
  c.put_eager_threshold_bytes = 24 * 1024;
  c.put_bump_lo_bytes = 2 * 1024;
  c.put_bump_hi_bytes = 16 * 1024;
  c.put_bump_us = 4.5;
  c.put_large_savings_per_byte_us = 0.03e-3;
  // RDMA channel (the Liu et al. ablation design): 16 KB persistent slots,
  // 8 credits per connection, sub-microsecond receiver poll, ~5 GB/s
  // copy-out, and a registration-cache-hit rendezvous handshake.
  c.rdma_slot_bytes = 16 * 1024;
  c.rdma_credits = 8;
  c.rdma_poll_us = 0.25;
  c.rdma_copy_per_byte_us = 0.2e-3;
  c.rdma_rndv_base_us = 1.0;
  return c;
}

// IBM MPI on BG/P: 100 B -> 3.80, 5 KB -> 19.95, 500 KB -> 1340.2.
// Rides the machine's DCMF packet class (2.62 ns/B, 240 B FIFO packets);
// tag matching ~1.25 us; a buffering bump of ~2.1 us between 2 KB and
// 20 KB (the paper's "some kind of buffering threshold"). MPI_Put adds
// ~2.9 us of post-start-complete-wait.
MpiCosts ibmBgpCosts() {
  MpiCosts c;
  c.name = "IBM-MPI-BGP";
  c.sw_send_us = 0.20;
  c.sw_recv_us = 0.20;
  c.tag_match_us = 1.25;
  c.eager = net::XferClass{/*alpha*/ 1.9, /*per_byte*/ 2.62e-3,
                           /*per_packet*/ 0.012, /*mtu*/ 240};
  // No rendezvous/RDMA cut-over on Surveyor.
  c.eager_threshold_bytes = static_cast<std::size_t>(-1);
  c.rdma = c.eager;
  c.bump_lo_bytes = 2 * 1024;
  c.bump_hi_bytes = 20 * 1024;
  c.bump_us = 2.1;
  c.pscw_overhead_us = 2.9;
  c.put_eager_threshold_bytes = c.eager_threshold_bytes;
  // Table 2's 100 B MPI-Put row is disproportionately slow (~14 us RTT, on
  // par with default Charm++): small one-sided ops pay extra epoch setup.
  c.put_bump_lo_bytes = 0;
  c.put_bump_hi_bytes = 512;
  c.put_bump_us = 1.5;
  c.put_large_savings_per_byte_us = 0.0;
  return c;
}

}  // namespace ckd::mpi
