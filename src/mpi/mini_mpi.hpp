#pragma once
// A miniature MPI over the simulated fabric — the baseline the paper
// compares CkDirect against (§2.3, §3). Event-driven (completion callbacks
// instead of blocking calls), but semantically faithful where it matters:
//
//  * two-sided send/recv with real tag/source matching, wildcards, an
//    unexpected-message queue, and FIFO matching order;
//  * eager vs. rendezvous protocol selection per flavor, with the
//    registration/handshake costs Table 1's large-message rows exhibit;
//  * one-sided windows with MPI_Put under post-start-complete-wait (PSCW)
//    synchronization — the scheme the paper singles out as the overhead
//    CkDirect avoids. Post/complete tokens are real control messages; puts
//    require a started epoch, and wait completes only when every announced
//    put has landed.
//
// The layer runs standalone on a Fabric (no Charm++ scheduler involved),
// matching how the paper measured MPI.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fault/reliable.hpp"
#include "mpi/mpi_costs.hpp"
#include "net/fabric.hpp"

namespace ckd::mpi {

class MiniMpi {
 public:
  static constexpr int kAnySource = -1;
  static constexpr int kAnyTag = -1;

  MiniMpi(net::Fabric& fabric, MpiCosts costs);

  net::Fabric& fabric() { return fabric_; }
  const MpiCosts& costs() const { return costs_; }
  sim::Engine& engine() { return fabric_.engine(); }
  int numRanks() const { return fabric_.numPes(); }

  // --- two-sided -------------------------------------------------------------

  struct RecvResult {
    int source = -1;
    int tag = -1;
    std::size_t bytes = 0;
  };
  using RecvCallback = std::function<void(const RecvResult&)>;

  /// Nonblocking send; `onSent` fires when the send buffer is reusable.
  void isend(int srcRank, int dstRank, int tag, const void* data,
             std::size_t bytes, std::function<void()> onSent = {});

  /// Nonblocking receive; `source`/`tag` may be kAnySource/kAnyTag.
  /// `onComplete` fires once a matching message has fully arrived.
  void irecv(int rank, int source, int tag, void* buffer,
             std::size_t capacity, RecvCallback onComplete);

  std::size_t postedRecvCount(int rank) const;
  std::size_t unexpectedCount(int rank) const;

  // --- one-sided (RMA windows + PSCW) ------------------------------------------

  using WinId = int;

  /// Expose [base, base+bytes) of `rank` for remote access.
  WinId createWindow(int rank, void* base, std::size_t bytes);

  /// Target side: open an exposure epoch for `origins` (MPI_Win_post).
  void winPost(WinId win, const std::vector<int>& origins);

  /// Origin side: open an access epoch on `win` (MPI_Win_start). The
  /// callback fires once the target's post token has arrived.
  void winStart(WinId win, int originRank, std::function<void()> onStarted);

  /// MPI_Put into the window at `targetOffset`. Requires a started epoch.
  void put(WinId win, int originRank, std::size_t targetOffset,
           const void* data, std::size_t bytes);

  /// Origin side: close the access epoch (MPI_Win_complete).
  void winComplete(WinId win, int originRank);

  /// Target side: MPI_Win_wait — fires when every origin completed and all
  /// its puts have landed.
  void winWait(WinId win, std::function<void()> onDone);

  std::uint64_t sendsPosted() const { return sends_; }
  std::uint64_t putsPosted() const { return puts_; }

  // --- RDMA channel (Liu et al., MPICH2 over InfiniBand) ---------------------
  // Persistent buffer association: each directed connection owns a ring of
  // pre-registered slots the sender RDMA-writes eagerly into, with
  // credit-based flow control (returns piggybacked on reverse traffic, or an
  // explicit credit message once half the ring is owed). Messages above the
  // slot size take an RDMA rendezvous: RTS/CTS, then a write straight into
  // the user buffer with a registration-cache hit. One-sided windows keep
  // the classic PSCW path.

  /// Route subsequent two-sided traffic over the RDMA channel.
  void enableRdmaChannel() { rdmaChannel_ = true; }
  bool rdmaChannelEnabled() const { return rdmaChannel_; }
  /// Send credits currently available on the directed connection src -> dst.
  int sendCredits(int src, int dst) const;
  /// Freed-but-unreturned credits held at the receiver of src -> dst.
  /// Conservation invariant once the fabric quiesces with every receive
  /// matched: sendCredits + owedCredits == rdma_credits for every directed
  /// connection — anything less is a leaked persistent slot.
  int owedCredits(int src, int dst) const;

  /// Route the wire traffic (RDMA-eager slot writes, rendezvous data,
  /// classic eager, and every control message: RTS/grant, credit returns,
  /// PSCW tokens) over a go-back-N fault::ReliableLink. Without this an
  /// armed fault injector breaks the channel outright: a dropped eager
  /// write loses its persistent slot (and any piggybacked credits) forever,
  /// a dropped credit return deadlocks stalled senders, and a corrupted
  /// payload is delivered as-is. Call after Fabric::installFaults; when
  /// never called the raw-fabric path is taken verbatim (zero cost change).
  void armReliability(const fault::ReliabilityParams& rel);
  bool reliabilityArmed() const { return link_ != nullptr; }
  /// Wire-level retransmissions performed by the armed link (0 when unarmed).
  std::uint64_t linkRetransmits() const {
    return link_ == nullptr ? 0 : link_->retransmits();
  }

  std::uint64_t rdmaEagerSends() const { return rdmaEagerSends_; }
  std::uint64_t rdmaRndvSends() const { return rdmaRndvSends_; }
  /// Sends that had to queue because the connection was out of credits.
  std::uint64_t creditStalls() const { return creditStalls_; }
  /// Explicit credit-return control messages (the piggyback misses).
  std::uint64_t creditReturnMessages() const { return creditMsgs_; }
  /// Credits returned for free on reverse-direction eager sends.
  std::uint64_t piggybackedCredits() const { return piggybacked_; }

 private:
  /// Model `cost` microseconds of MPI-library software work, attributed to
  /// the transport tier, then run `fn`.
  void softwareDelay(sim::Time cost, std::function<void()> fn);

  /// Directed-pair flow key on the reliable link (size-independent, the
  /// transport convention).
  static int pairChannel(int src, int dst) { return (src << 20) + dst; }
  /// Ship `payload` src -> dst and run `onDeliver` with it at the receiver:
  /// over the reliable link when armed, else one raw fabric transfer with
  /// the flavor's serialization class.
  void shipData(int src, int dst, const net::XferClass& cls,
                bool occupiesPorts, fault::MsgClass mcls,
                std::vector<std::byte> payload,
                std::function<void(std::vector<std::byte>&&)> onDeliver,
                std::uint64_t traceId);

  struct PostedRecv {
    int source;
    int tag;
    std::byte* buffer;
    std::size_t capacity;
    RecvCallback callback;
  };
  struct UnexpectedMsg {
    int source;
    int tag;
    std::vector<std::byte> data;
    bool rdmaSlot = false;       // data still occupies a persistent slot
    std::uint64_t traceId = 0;   // causal chain id (RDMA channel only)
  };
  struct PendingRts {  // rendezvous request-to-send awaiting a match
    int source;
    int tag;
    std::size_t bytes;
    std::uint64_t id;
    bool rdma = false;           // RDMA-channel rendezvous (cheap handshake)
    std::uint64_t traceId = 0;
  };
  struct RankState {
    std::deque<PostedRecv> recvs;
    std::deque<UnexpectedMsg> unexpected;
    std::deque<PendingRts> rts;
  };
  struct RndvSend {
    int src;
    int dst;
    std::vector<std::byte> data;
    std::function<void()> onSent;
    std::uint64_t traceId = 0;
  };
  struct StalledSend {  // eager send parked until a credit comes back
    int tag;
    std::vector<std::byte> payload;
    std::function<void()> onSent;
    std::uint64_t traceId;
  };
  struct ConnSend {  // sender-side state of one directed connection
    int credits = 0;
    std::deque<StalledSend> stalled;
  };
  struct Window {
    int rank = -1;
    std::byte* base = nullptr;
    std::size_t bytes = 0;
    // Target-side exposure epoch.
    std::set<int> postedOrigins;
    std::map<int, std::uint64_t> announced;  // puts promised per origin
    std::map<int, std::uint64_t> arrived;    // puts landed per origin
    std::set<int> completed;                 // complete tokens received
    std::function<void()> waitCallback;
  };
  struct OriginEpoch {
    bool tokenArrived = false;
    bool started = false;
    std::function<void()> startCallback;
    std::uint64_t putsIssued = 0;
  };

  static bool matches(int wantSource, int wantTag, int source, int tag) {
    return (wantSource == kAnySource || wantSource == source) &&
           (wantTag == kAnyTag || wantTag == tag);
  }

  void eagerArrive(int dst, int src, int tag, std::vector<std::byte> data);
  void rtsArrive(int dst, PendingRts rts);
  void grantRndv(int dst, const PendingRts& rts, PostedRecv recv);
  void sendControl(int src, int dst, std::function<void()> onArrive);
  ConnSend& connSendState(int src, int dst);
  /// Take (and zero) the credits this rank owes the peer on the reverse
  /// connection dst -> src, to ride along on a src -> dst send.
  int takePiggyback(int src, int dst);
  void rdmaEagerSendNow(int src, int dst, int tag,
                        std::vector<std::byte> payload,
                        std::function<void()> onSent, std::uint64_t traceId);
  void rdmaEagerArrive(int dst, int src, int tag, std::vector<std::byte> data,
                       int piggy, std::uint64_t traceId);
  /// A persistent slot of connection src -> dst was copied out at dst.
  void slotFreed(int src, int dst);
  /// `n` credits for connection sender -> receiver arrived back at sender.
  void creditArrive(int sender, int receiver, int n);
  void drainStalled(int sender, int receiver);
  void putArrived(WinId win, int origin);
  void checkWaitDone(WinId win);
  Window& window(WinId win);
  RankState& rank(int r);

  net::Fabric& fabric_;
  MpiCosts costs_;
  /// Non-null once armReliability() ran; every wire transfer then goes
  /// through it instead of raw fabric submits.
  std::unique_ptr<fault::ReliableLink> link_;
  std::vector<RankState> ranks_;
  std::vector<Window> windows_;
  std::map<std::pair<WinId, int>, OriginEpoch> origins_;
  std::map<std::uint64_t, RndvSend> rndvSends_;
  std::map<std::uint64_t, PostedRecv> rndvRecvs_;
  std::uint64_t nextRndvId_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t puts_ = 0;

  bool rdmaChannel_ = false;
  std::map<std::pair<int, int>, ConnSend> connSend_;  // {sender, receiver}
  /// Freed-but-unreturned credits, held at the receiver of each connection.
  std::map<std::pair<int, int>, int> connOwed_;  // {sender, receiver}
  std::uint64_t rdmaEagerSends_ = 0;
  std::uint64_t rdmaRndvSends_ = 0;
  std::uint64_t creditStalls_ = 0;
  std::uint64_t creditMsgs_ = 0;
  std::uint64_t piggybacked_ = 0;
};

}  // namespace ckd::mpi
