#include "mpi/mini_mpi.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "sim/trace.hpp"
#include "util/require.hpp"

namespace ckd::mpi {

namespace {
constexpr std::size_t kControlBytes = 16;
}

MiniMpi::MiniMpi(net::Fabric& fabric, MpiCosts costs)
    : fabric_(fabric), costs_(std::move(costs)) {
  ranks_.resize(static_cast<std::size_t>(fabric_.numPes()));
}

MiniMpi::RankState& MiniMpi::rank(int r) {
  CKD_REQUIRE(r >= 0 && r < numRanks(), "rank out of range");
  return ranks_[static_cast<std::size_t>(r)];
}

MiniMpi::Window& MiniMpi::window(WinId win) {
  CKD_REQUIRE(win >= 0 && win < static_cast<WinId>(windows_.size()),
              "unknown window");
  return windows_[static_cast<std::size_t>(win)];
}

void MiniMpi::armReliability(const fault::ReliabilityParams& rel) {
  CKD_REQUIRE(link_ == nullptr, "MiniMpi reliability armed twice");
  link_ = std::make_unique<fault::ReliableLink>(fabric_, rel);
}

void MiniMpi::shipData(int src, int dst, const net::XferClass& cls,
                       bool occupiesPorts, fault::MsgClass mcls,
                       std::vector<std::byte> payload,
                       std::function<void(std::vector<std::byte>&&)> onDeliver,
                       std::uint64_t traceId) {
  if (link_ != nullptr) {
    fault::ReliableLink::Send send;
    send.src = src;
    send.dst = dst;
    send.wireBytes = payload.size();
    send.cls = mcls;
    send.payload = std::move(payload);
    send.on_deliver = std::move(onDeliver);
    send.traceId = traceId;
    link_->post(pairChannel(src, dst), std::move(send));
    return;
  }
  const std::size_t n = payload.size();
  fabric_.submitCustom(src, dst, n, cls, occupiesPorts,
                       [payload = std::move(payload),
                        onDeliver = std::move(onDeliver)]() mutable {
                         onDeliver(std::move(payload));
                       },
                       traceId);
}

void MiniMpi::sendControl(int src, int dst, std::function<void()> onArrive) {
  if (link_ != nullptr) {
    fault::ReliableLink::Send send;
    send.src = src;
    send.dst = dst;
    send.wireBytes = kControlBytes;
    send.cls = fault::MsgClass::kControl;
    send.on_deliver = [fn = std::move(onArrive)](std::vector<std::byte>&&) {
      if (fn) fn();
    };
    link_->post(pairChannel(src, dst), std::move(send));
    return;
  }
  fabric_.submitCustom(src, dst, kControlBytes, costs_.rdma,
                       /*occupiesPorts=*/false, std::move(onArrive));
}

void MiniMpi::softwareDelay(sim::Time cost, std::function<void()> fn) {
  engine().trace().addLayerTime(sim::Layer::kTransport, cost);
  engine().after(cost, std::move(fn));
}

// --- two-sided ----------------------------------------------------------------

void MiniMpi::isend(int srcRank, int dstRank, int tag, const void* data,
                    std::size_t bytes, std::function<void()> onSent) {
  CKD_REQUIRE(data != nullptr || bytes == 0, "null send payload");
  ++sends_;
  const auto* src = static_cast<const std::byte*>(data);
  std::vector<std::byte> payload(src, src + bytes);

  if (rdmaChannel_) {
    auto& trace = engine().trace();
    const std::uint64_t traceId = trace.mintIdFor(srcRank);
    if (costs_.rdmaEagerFor(bytes)) {
      trace.recordSpan(engine().now(), srcRank, sim::TraceTag::kMpiRdmaEager,
                       sim::SpanPhase::kBegin, traceId, trace.context(),
                       static_cast<double>(bytes), dstRank);
      ConnSend& conn = connSendState(srcRank, dstRank);
      if (conn.credits == 0) {
        ++creditStalls_;
        trace.recordSpan(engine().now(), srcRank, sim::TraceTag::kMpiRdmaStall,
                         sim::SpanPhase::kInstant, traceId, 0,
                         static_cast<double>(bytes), dstRank);
        conn.stalled.push_back(StalledSend{tag, std::move(payload),
                                           std::move(onSent), traceId});
        return;
      }
      --conn.credits;
      rdmaEagerSendNow(srcRank, dstRank, tag, std::move(payload),
                       std::move(onSent), traceId);
      return;
    }
    // RDMA rendezvous: RTS, CTS with a cached registration, then a write
    // straight into the user buffer.
    ++rdmaRndvSends_;
    trace.recordSpan(engine().now(), srcRank, sim::TraceTag::kMpiRdmaRndv,
                     sim::SpanPhase::kBegin, traceId, trace.context(),
                     static_cast<double>(bytes), dstRank);
    const std::uint64_t id = nextRndvId_++;
    rndvSends_.emplace(id, RndvSend{srcRank, dstRank, std::move(payload),
                                    std::move(onSent), traceId});
    softwareDelay(costs_.sw_send_us,
                  [this, srcRank, dstRank, tag, bytes, id, traceId]() {
                    sendControl(srcRank, dstRank,
                                [this, dstRank, srcRank, tag, bytes, id,
                                 traceId]() {
                                  rtsArrive(dstRank,
                                            PendingRts{srcRank, tag, bytes, id,
                                                       /*rdma=*/true, traceId});
                                });
                  });
    return;
  }

  if (costs_.eagerFor(bytes)) {
    softwareDelay(
        costs_.sw_send_us,
        [this, srcRank, dstRank, tag, payload = std::move(payload),
         onSent = std::move(onSent)]() mutable {
          shipData(srcRank, dstRank, costs_.eager, /*occupiesPorts=*/true,
                   fault::MsgClass::kPacket, std::move(payload),
                   [this, srcRank, dstRank, tag](std::vector<std::byte>&& data) {
                     eagerArrive(dstRank, srcRank, tag, std::move(data));
                   },
                   /*traceId=*/0);
          if (onSent) onSent();
        });
    return;
  }

  // Rendezvous: request-to-send, match at the target, grant, RDMA the data.
  const std::uint64_t id = nextRndvId_++;
  rndvSends_.emplace(id, RndvSend{srcRank, dstRank, std::move(payload),
                                  std::move(onSent)});
  softwareDelay(costs_.sw_send_us, [this, srcRank, dstRank, tag, bytes, id]() {
    sendControl(srcRank, dstRank, [this, dstRank, srcRank, tag, bytes, id]() {
      rtsArrive(dstRank, PendingRts{srcRank, tag, bytes, id});
    });
  });
}

void MiniMpi::eagerArrive(int dst, int src, int tag,
                          std::vector<std::byte> data) {
  RankState& state = rank(dst);
  for (auto it = state.recvs.begin(); it != state.recvs.end(); ++it) {
    if (!matches(it->source, it->tag, src, tag)) continue;
    PostedRecv recv = std::move(*it);
    state.recvs.erase(it);
    CKD_REQUIRE(data.size() <= recv.capacity,
                "eager message larger than the posted receive buffer");
    std::memcpy(recv.buffer, data.data(), data.size());
    const sim::Time extra = costs_.tag_match_us + costs_.sw_recv_us +
                            (costs_.inBump(data.size()) ? costs_.bump_us : 0.0);
    const RecvResult result{src, tag, data.size()};
    softwareDelay(extra, [cb = std::move(recv.callback), result]() {
      if (cb) cb(result);
    });
    return;
  }
  state.unexpected.push_back(UnexpectedMsg{src, tag, std::move(data)});
}

// --- RDMA channel --------------------------------------------------------------

MiniMpi::ConnSend& MiniMpi::connSendState(int src, int dst) {
  auto [it, inserted] = connSend_.try_emplace({src, dst});
  if (inserted) it->second.credits = costs_.rdma_credits;
  return it->second;
}

int MiniMpi::sendCredits(int src, int dst) const {
  auto it = connSend_.find({src, dst});
  return it == connSend_.end() ? costs_.rdma_credits : it->second.credits;
}

int MiniMpi::owedCredits(int src, int dst) const {
  auto it = connOwed_.find({src, dst});
  return it == connOwed_.end() ? 0 : it->second;
}

int MiniMpi::takePiggyback(int src, int dst) {
  auto it = connOwed_.find({dst, src});
  if (it == connOwed_.end() || it->second == 0) return 0;
  const int n = it->second;
  it->second = 0;
  piggybacked_ += static_cast<std::uint64_t>(n);
  return n;
}

void MiniMpi::rdmaEagerSendNow(int src, int dst, int tag,
                               std::vector<std::byte> payload,
                               std::function<void()> onSent,
                               std::uint64_t traceId) {
  ++rdmaEagerSends_;
  const int piggy = takePiggyback(src, dst);
  softwareDelay(
      costs_.sw_send_us,
      [this, src, dst, tag, piggy, traceId, payload = std::move(payload),
       onSent = std::move(onSent)]() mutable {
        shipData(src, dst, costs_.rdma, /*occupiesPorts=*/true,
                 fault::MsgClass::kBulk, std::move(payload),
                 [this, src, dst, tag, piggy,
                  traceId](std::vector<std::byte>&& data) {
                   rdmaEagerArrive(dst, src, tag, std::move(data), piggy,
                                   traceId);
                 },
                 traceId);
        if (onSent) onSent();
      });
}

void MiniMpi::rdmaEagerArrive(int dst, int src, int tag,
                              std::vector<std::byte> data, int piggy,
                              std::uint64_t traceId) {
  if (piggy > 0) creditArrive(dst, src, piggy);
  softwareDelay(
      costs_.rdma_poll_us,
      [this, dst, src, tag, traceId, data = std::move(data)]() mutable {
        RankState& state = rank(dst);
        for (auto it = state.recvs.begin(); it != state.recvs.end(); ++it) {
          if (!matches(it->source, it->tag, src, tag)) continue;
          PostedRecv recv = std::move(*it);
          state.recvs.erase(it);
          CKD_REQUIRE(data.size() <= recv.capacity,
                      "eager message larger than the posted receive buffer");
          std::memcpy(recv.buffer, data.data(), data.size());
          const sim::Time extra =
              costs_.tag_match_us + costs_.sw_recv_us +
              costs_.rdma_copy_per_byte_us * static_cast<double>(data.size());
          const RecvResult result{src, tag, data.size()};
          softwareDelay(extra, [this, dst, traceId,
                                cb = std::move(recv.callback), result]() {
            engine().trace().recordSpan(
                engine().now(), dst, sim::TraceTag::kMpiRdmaRecv,
                sim::SpanPhase::kEnd, traceId, 0,
                static_cast<double>(result.bytes), result.source);
            if (cb) cb(result);
          });
          slotFreed(src, dst);
          return;
        }
        // No posted receive: the payload keeps its persistent slot until a
        // matching irecv copies it out — genuine sender backpressure.
        state.unexpected.push_back(
            UnexpectedMsg{src, tag, std::move(data), /*rdmaSlot=*/true,
                          traceId});
      });
}

void MiniMpi::slotFreed(int src, int dst) {
  int& owed = connOwed_[{src, dst}];
  ++owed;
  // Piggybacking covers the common case; once half the ring is owed and no
  // reverse traffic has reclaimed it, pay for an explicit credit message.
  if (owed * 2 < costs_.rdma_credits) return;
  const int n = owed;
  owed = 0;
  ++creditMsgs_;
  engine().trace().record(engine().now(), dst, sim::TraceTag::kMpiRdmaCredit,
                          static_cast<double>(n));
  sendControl(dst, src, [this, src, dst, n]() { creditArrive(src, dst, n); });
}

void MiniMpi::creditArrive(int sender, int receiver, int n) {
  ConnSend& conn = connSendState(sender, receiver);
  conn.credits += n;
  CKD_REQUIRE(conn.credits <= costs_.rdma_credits,
              "credit return overflows the slot ring");
  drainStalled(sender, receiver);
}

void MiniMpi::drainStalled(int sender, int receiver) {
  ConnSend& conn = connSendState(sender, receiver);
  while (conn.credits > 0 && !conn.stalled.empty()) {
    StalledSend s = std::move(conn.stalled.front());
    conn.stalled.pop_front();
    --conn.credits;
    rdmaEagerSendNow(sender, receiver, s.tag, std::move(s.payload),
                     std::move(s.onSent), s.traceId);
  }
}

void MiniMpi::rtsArrive(int dst, PendingRts rts) {
  RankState& state = rank(dst);
  for (auto it = state.recvs.begin(); it != state.recvs.end(); ++it) {
    if (!matches(it->source, it->tag, rts.source, rts.tag)) continue;
    PostedRecv recv = std::move(*it);
    state.recvs.erase(it);
    grantRndv(dst, rts, std::move(recv));
    return;
  }
  state.rts.push_back(std::move(rts));
}

void MiniMpi::grantRndv(int dst, const PendingRts& rts, PostedRecv recv) {
  CKD_REQUIRE(rts.bytes <= recv.capacity,
              "rendezvous message larger than the posted receive buffer");
  // Registration / buffer preparation at the target, then grant the sender.
  // The RDMA channel's persistent association makes the handshake a
  // registration-cache hit instead of a per-message pin.
  const sim::Time regCost =
      rts.rdma ? costs_.rdma_rndv_base_us
               : costs_.rndv_base_us +
                     costs_.rndv_per_byte_us * static_cast<double>(rts.bytes);
  const std::uint64_t id = rts.id;
  rndvRecvs_.emplace(id, std::move(recv));
  const int source = rts.source;
  const int tag = rts.tag;
  const std::uint64_t traceId = rts.traceId;
  softwareDelay(regCost, [this, dst, source, tag, id, traceId]() {
    sendControl(dst, source, [this, dst, source, tag, id, traceId]() {
      // Grant arrived at the origin: stream the payload on the RDMA class.
      auto sendIt = rndvSends_.find(id);
      CKD_REQUIRE(sendIt != rndvSends_.end(), "grant for unknown send");
      RndvSend send = std::move(sendIt->second);
      rndvSends_.erase(sendIt);
      if (send.onSent) send.onSent();
      shipData(
          source, dst, costs_.rdma, /*occupiesPorts=*/true,
          fault::MsgClass::kBulk, std::move(send.data),
          [this, dst, source, tag, id, traceId](std::vector<std::byte>&& data) {
            auto recvIt = rndvRecvs_.find(id);
            CKD_REQUIRE(recvIt != rndvRecvs_.end(), "data for unknown recv");
            PostedRecv recv = std::move(recvIt->second);
            rndvRecvs_.erase(recvIt);
            std::memcpy(recv.buffer, data.data(), data.size());
            const RecvResult result{source, tag, data.size()};
            softwareDelay(costs_.sw_recv_us,
                           [this, dst, traceId, cb = std::move(recv.callback),
                            result]() {
                             if (traceId != 0) {
                               engine().trace().recordSpan(
                                   engine().now(), dst,
                                   sim::TraceTag::kMpiRdmaRecv,
                                   sim::SpanPhase::kEnd, traceId, 0,
                                   static_cast<double>(result.bytes),
                                   result.source);
                             }
                             if (cb) cb(result);
                           });
          },
          traceId);
    });
  });
}

void MiniMpi::irecv(int rankId, int source, int tag, void* buffer,
                    std::size_t capacity, RecvCallback onComplete) {
  CKD_REQUIRE(buffer != nullptr, "null receive buffer");
  RankState& state = rank(rankId);

  // Unexpected eager messages first (FIFO matching order).
  for (auto it = state.unexpected.begin(); it != state.unexpected.end(); ++it) {
    if (!matches(source, tag, it->source, it->tag)) continue;
    UnexpectedMsg msg = std::move(*it);
    state.unexpected.erase(it);
    CKD_REQUIRE(msg.data.size() <= capacity,
                "unexpected message larger than the receive buffer");
    std::memcpy(buffer, msg.data.data(), msg.data.size());
    const RecvResult result{msg.source, msg.tag, msg.data.size()};
    // An RDMA-channel message still occupies its persistent slot; copying it
    // out pays the per-byte cost and frees the slot (returning a credit).
    const sim::Time extra =
        costs_.tag_match_us +
        (msg.rdmaSlot ? costs_.rdma_copy_per_byte_us *
                            static_cast<double>(msg.data.size())
                      : 0.0);
    const bool fromSlot = msg.rdmaSlot;
    const std::uint64_t traceId = msg.traceId;
    softwareDelay(extra, [this, rankId, fromSlot, traceId,
                          cb = std::move(onComplete), result]() {
      if (fromSlot && traceId != 0) {
        engine().trace().recordSpan(engine().now(), rankId,
                                    sim::TraceTag::kMpiRdmaRecv,
                                    sim::SpanPhase::kEnd, traceId, 0,
                                    static_cast<double>(result.bytes),
                                    result.source);
      }
      if (cb) cb(result);
    });
    if (msg.rdmaSlot) slotFreed(msg.source, rankId);
    return;
  }

  // Parked rendezvous requests next.
  for (auto it = state.rts.begin(); it != state.rts.end(); ++it) {
    if (!matches(source, tag, it->source, it->tag)) continue;
    PendingRts rts = *it;
    state.rts.erase(it);
    grantRndv(rankId, rts,
              PostedRecv{source, tag, static_cast<std::byte*>(buffer),
                         capacity, std::move(onComplete)});
    return;
  }

  state.recvs.push_back(PostedRecv{source, tag, static_cast<std::byte*>(buffer),
                                   capacity, std::move(onComplete)});
}

std::size_t MiniMpi::postedRecvCount(int rankId) const {
  return ranks_[static_cast<std::size_t>(rankId)].recvs.size();
}

std::size_t MiniMpi::unexpectedCount(int rankId) const {
  return ranks_[static_cast<std::size_t>(rankId)].unexpected.size();
}

// --- one-sided -----------------------------------------------------------------

MiniMpi::WinId MiniMpi::createWindow(int rankId, void* base,
                                     std::size_t bytes) {
  CKD_REQUIRE(rankId >= 0 && rankId < numRanks(), "rank out of range");
  CKD_REQUIRE(base != nullptr && bytes > 0, "bad window memory");
  Window win;
  win.rank = rankId;
  win.base = static_cast<std::byte*>(base);
  win.bytes = bytes;
  windows_.push_back(std::move(win));
  return static_cast<WinId>(windows_.size() - 1);
}

void MiniMpi::winPost(WinId winId, const std::vector<int>& origins) {
  Window& win = window(winId);
  CKD_REQUIRE(!origins.empty(), "MPI_Win_post with an empty origin group");
  for (const int origin : origins) {
    CKD_REQUIRE(win.postedOrigins.count(origin) == 0,
                "origin already in an exposure epoch on this window");
    win.postedOrigins.insert(origin);
    win.announced.erase(origin);
    win.arrived[origin] = 0;
    const int target = win.rank;
    sendControl(target, origin, [this, winId, origin]() {
      OriginEpoch& epoch = origins_[{winId, origin}];
      epoch.tokenArrived = true;
      if (epoch.startCallback) {
        epoch.started = true;
        auto cb = std::move(epoch.startCallback);
        epoch.startCallback = nullptr;
        cb();
      }
    });
  }
}

void MiniMpi::winStart(WinId winId, int originRank,
                       std::function<void()> onStarted) {
  OriginEpoch& epoch = origins_[{winId, originRank}];
  CKD_REQUIRE(!epoch.started, "access epoch already started");
  epoch.putsIssued = 0;
  if (epoch.tokenArrived) {
    epoch.started = true;
    if (onStarted) engine().after(0.0, std::move(onStarted));
    return;
  }
  epoch.startCallback = std::move(onStarted);
}

void MiniMpi::put(WinId winId, int originRank, std::size_t targetOffset,
                  const void* data, std::size_t bytes) {
  Window& win = window(winId);
  OriginEpoch& epoch = origins_[{winId, originRank}];
  CKD_REQUIRE(epoch.started,
              "MPI_Put outside a started access epoch (PSCW violation)");
  CKD_REQUIRE(targetOffset + bytes <= win.bytes,
              "MPI_Put writes past the end of the window");
  ++puts_;
  ++epoch.putsIssued;

  const auto* src = static_cast<const std::byte*>(data);
  std::vector<std::byte> payload(src, src + bytes);
  std::byte* dst = win.base + targetOffset;
  const int target = win.rank;

  auto& trace = engine().trace();
  const std::uint64_t traceId = trace.mintIdFor(originRank);
  trace.recordSpan(engine().now(), originRank, sim::TraceTag::kMpiPut,
                   sim::SpanPhase::kBegin, traceId, trace.context(),
                   static_cast<double>(bytes), target);

  // Half the PSCW software overhead on the origin, half on the target.
  const sim::Time originSw = costs_.sw_send_us + costs_.pscw_overhead_us / 2;

  if (costs_.putEagerFor(bytes)) {
    const sim::Time targetExtra =
        costs_.sw_recv_us + costs_.pscw_overhead_us / 2 +
        (costs_.inBump(bytes) ? costs_.bump_us : 0.0) +
        (costs_.inPutBump(bytes) ? costs_.put_bump_us : 0.0);
    softwareDelay(originSw, [this, originRank, target, dst, winId, traceId,
                             payload = std::move(payload), targetExtra]() mutable {
      const std::size_t n = payload.size();
      fabric_.submitCustom(
          originRank, target, n, costs_.eager, /*occupiesPorts=*/true,
          [this, winId, originRank, target, dst, traceId,
           payload = std::move(payload), targetExtra]() mutable {
            std::memcpy(dst, payload.data(), payload.size());
            const std::size_t n = payload.size();
            softwareDelay(targetExtra, [this, winId, originRank, target,
                                        traceId, n]() {
              engine().trace().recordSpan(
                  engine().now(), target, sim::TraceTag::kMpiPutComplete,
                  sim::SpanPhase::kEnd, traceId, 0, static_cast<double>(n),
                  originRank);
              putArrived(winId, originRank);
            });
          },
          traceId);
    });
    return;
  }

  // Large put: protocol mirrors the two-sided rendezvous (handshake +
  // registration at the target, then the RDMA-class transfer) — Table 1
  // shows MVAPICH-Put tracking two-sided closely in the 30-70 KB range —
  // but the one-sided path saves a receive-side copy, which is what lets
  // put win beyond ~70 KB.
  const double savings =
      costs_.put_large_savings_per_byte_us * static_cast<double>(bytes);
  const sim::Time regCost = std::max(
      0.0, costs_.rndv_base_us +
               costs_.rndv_per_byte_us * static_cast<double>(bytes) - savings);
  const sim::Time targetExtra =
      costs_.sw_recv_us + costs_.pscw_overhead_us / 2;
  auto shared = std::make_shared<std::vector<std::byte>>(std::move(payload));
  softwareDelay(originSw, [this, originRank, target, dst, winId, shared,
                           regCost, targetExtra, traceId]() {
    sendControl(originRank, target, [this, originRank, target, dst, winId,
                                     shared, regCost, targetExtra, traceId]() {
      softwareDelay(regCost, [this, originRank, target, dst, winId, shared,
                                targetExtra, traceId]() {
        sendControl(target, originRank, [this, originRank, target, dst, winId,
                                         shared, targetExtra, traceId]() {
          fabric_.submitCustom(
              originRank, target, shared->size(), costs_.rdma,
              /*occupiesPorts=*/true,
              [this, winId, originRank, target, dst, shared, targetExtra,
               traceId]() {
                std::memcpy(dst, shared->data(), shared->size());
                const std::size_t n = shared->size();
                softwareDelay(targetExtra, [this, winId, originRank, target,
                                            traceId, n]() {
                  engine().trace().recordSpan(
                      engine().now(), target, sim::TraceTag::kMpiPutComplete,
                      sim::SpanPhase::kEnd, traceId, 0, static_cast<double>(n),
                      originRank);
                  putArrived(winId, originRank);
                });
              },
              traceId);
        });
      });
    });
  });
}

void MiniMpi::putArrived(WinId winId, int origin) {
  Window& win = window(winId);
  ++win.arrived[origin];
  checkWaitDone(winId);
}

void MiniMpi::winComplete(WinId winId, int originRank) {
  Window& win = window(winId);
  OriginEpoch& epoch = origins_[{winId, originRank}];
  CKD_REQUIRE(epoch.started, "MPI_Win_complete without a started epoch");
  epoch.started = false;
  epoch.tokenArrived = false;
  const std::uint64_t issued = epoch.putsIssued;
  const int target = win.rank;
  sendControl(originRank, target, [this, winId, originRank, issued]() {
    Window& w = window(winId);
    w.announced[originRank] = issued;
    w.completed.insert(originRank);
    checkWaitDone(winId);
  });
}

void MiniMpi::winWait(WinId winId, std::function<void()> onDone) {
  Window& win = window(winId);
  CKD_REQUIRE(!win.waitCallback, "MPI_Win_wait already pending");
  CKD_REQUIRE(!win.postedOrigins.empty(),
              "MPI_Win_wait without an exposure epoch");
  win.waitCallback = std::move(onDone);
  checkWaitDone(winId);
}

void MiniMpi::checkWaitDone(WinId winId) {
  Window& win = window(winId);
  if (!win.waitCallback) return;
  for (const int origin : win.postedOrigins) {
    if (win.completed.count(origin) == 0) return;
    if (win.arrived[origin] < win.announced[origin]) return;
  }
  auto cb = std::move(win.waitCallback);
  win.waitCallback = nullptr;
  win.postedOrigins.clear();
  win.completed.clear();
  win.announced.clear();
  win.arrived.clear();
  cb();
}

}  // namespace ckd::mpi
