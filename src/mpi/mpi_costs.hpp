#pragma once
// Cost models for the MPI implementations the paper compares against:
// MPICH-VMI 2.2.0 and MVAPICH2 0.9.8 on Abe (Table 1), IBM MPI on Blue
// Gene/P (Table 2). The constants are fitted to those tables; derivations
// live next to each preset in mpi_costs.cpp and in EXPERIMENTS.md.

#include <cstddef>
#include <string>

#include "net/cost_params.hpp"
#include "sim/time.hpp"

namespace ckd::mpi {

struct MpiCosts {
  std::string name;

  /// Sender software before the data hits the wire.
  sim::Time sw_send_us = 0.25;
  /// Receiver software after delivery (progress engine, handoff).
  sim::Time sw_recv_us = 0.3;
  /// Tag/source matching against the posted-receive queue.
  sim::Time tag_match_us = 0.5;

  /// Two-sided eager wire class (each flavor packetizes differently).
  net::XferClass eager;
  /// Messages larger than this rendezvous instead of going eager.
  std::size_t eager_threshold_bytes = 16 * 1024;
  /// Rendezvous path: registration/handshake software cost at the target
  /// (base + slowly growing per-byte term) before the RDMA-class transfer.
  sim::Time rndv_base_us = 4.0;
  double rndv_per_byte_us = 0.03e-3;
  /// RDMA-class wire for the rendezvous payload.
  net::XferClass rdma;

  /// Some MPIs show a mid-size buffering anomaly (paper §3 conjectures a
  /// "buffering threshold" on BG/P): extra cost for sizes in [lo, hi).
  std::size_t bump_lo_bytes = 0;
  std::size_t bump_hi_bytes = 0;
  sim::Time bump_us = 0.0;

  // --- one-sided (MPI_Put + post-start-complete-wait) ----------------------
  /// Software cost of one PSCW access epoch, split across start/complete on
  /// the origin and post/wait on the target.
  sim::Time pscw_overhead_us = 2.2;
  /// Above the eager threshold, MPI_Put saves a receive-side copy relative
  /// to two-sided (Table 1: put beats two-sided beyond ~70 KB).
  double put_large_savings_per_byte_us = 0.016e-3;
  /// MPI_Put may switch protocols at a different point than two-sided
  /// (MVAPICH keeps puts eager a bit longer — Table 1's 20 KB row).
  std::size_t put_eager_threshold_bytes = 16 * 1024;
  /// Extra put-only buffering cost for sizes in [lo, hi) (Table 1 shows
  /// MVAPICH-Put notably worse than two-sided around 5 KB).
  std::size_t put_bump_lo_bytes = 0;
  std::size_t put_bump_hi_bytes = 0;
  sim::Time put_bump_us = 0.0;

  // --- RDMA channel (Liu et al., "Design and Implementation of MPICH2 over
  // InfiniBand with RDMA Support") -------------------------------------------
  // Persistent buffer association: each directed connection owns a ring of
  // pre-registered slots the sender RDMA-writes eagerly into; flow control
  // is credit-based with piggybacked returns. Messages above the slot size
  // take an RDMA rendezvous (RTS/CTS + a write into the user buffer).
  /// Size of one persistent RDMA-eager slot.
  std::size_t rdma_slot_bytes = 16 * 1024;
  /// Slots (credits) per directed connection.
  int rdma_credits = 8;
  /// Receiver poll-loop delay noticing a freshly written slot.
  sim::Time rdma_poll_us = 0.25;
  /// Copy-out from the persistent slot into the user buffer.
  double rdma_copy_per_byte_us = 0.2e-3;
  /// Rendezvous handshake software with a registration-cache hit (the
  /// persistent association replaces the per-message pin; compare
  /// rndv_base_us on the classic path).
  sim::Time rdma_rndv_base_us = 1.0;

  bool eagerFor(std::size_t bytes) const {
    return bytes <= eager_threshold_bytes;
  }
  bool rdmaEagerFor(std::size_t bytes) const {
    return bytes <= rdma_slot_bytes;
  }
  bool putEagerFor(std::size_t bytes) const {
    return bytes <= put_eager_threshold_bytes;
  }
  bool inBump(std::size_t bytes) const {
    return bytes >= bump_lo_bytes && bytes < bump_hi_bytes;
  }
  bool inPutBump(std::size_t bytes) const {
    return bytes >= put_bump_lo_bytes && bytes < put_bump_hi_bytes;
  }
};

/// MPICH-VMI 2.2.0 on Abe: packetized eager up to ~64 KB, then rendezvous
/// with an expensive registration.
MpiCosts mpichVmiCosts();
/// MVAPICH2 0.9.8 on Abe: eager to 16 KB, efficient RDMA rendezvous above.
MpiCosts mvapichCosts();
/// IBM MPI on Blue Gene/P: DCMF-based, no RDMA cut-over, a buffering bump
/// between 2 KB and 20 KB.
MpiCosts ibmBgpCosts();

}  // namespace ckd::mpi
