#pragma once
// A PGAS (partitioned global address space) runtime over the simulated
// verbs/fabric stack, modeled on DART-MPI (Zhou et al., "DART-MPI: An
// MPI-based Implementation of a PGAS Runtime System") with the transport
// swapped for native one-sided RDMA:
//
//  * Symmetric heap — every PE owns one registered segment of identical
//    size; a collective alloc() hands out the same offset on every PE, so a
//    global pointer is just {offset, bytes} and translation to a concrete
//    (pe, address) is a base add. This is the "team-aligned allocation"
//    DART calls dart_team_memalloc_aligned.
//  * One-sided put/get — puts ride ib::IbVerbs::postRdmaWrite (RC QPs, and
//    with faults armed, the PR 2 ReliableLink underneath); gets are a
//    control-message request plus an RDMA write back into the origin's
//    buffer (how DART-MPI models get over a put-only transport).
//  * Local vs. remote completion split, exactly DART's model:
//      - local completion: the origin's source buffer is reusable
//        (dart_flush_local / the on_local_complete CQE);
//      - remote completion: the data is visible at the target, observed at
//        the origin through a completion ack (dart_flush / dart_wait).
//    Handle-based ops return an OpId to test/wait either level; blocking
//    put is put + waitRemote. flushLocal/flush/fence drain the levels for
//    one target or all targets; barrier() is the team barrier.
//  * Remote atomics — fetch-add and compare-swap execute *at the target PE*
//    in simulated time (a control request, an RMW on the target's segment
//    in the target's execution context, a replied old value), so concurrent
//    updaters serialize in the fabric's canonical delivery order and the
//    result is deterministic across reruns and shard counts.
//  * Fault tolerance — reestablish() (the PR 3 crash-rebinding hook)
//    re-registers invalidated segments, resets errored QPs, and fails any
//    op that was in flight at the crash; every op carries a PR 5 causal
//    trace id (pgas.put/get/atomic begin -> fabric milestones ->
//    pgas.complete end) so trace_analyze breaks PGAS ops down like
//    CkDirect puts.
//
// Threading/context contract (same as the rest of the stack): constructor
// and alloc() run at setup time (serial context, no traffic yet); every
// other call must be made from the calling PE's execution context. Under
// --shards all per-origin state is owned by that PE's shard; cross-PE
// effects travel only through fabric deliveries.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ib/verbs.hpp"
#include "net/fabric.hpp"

namespace ckd::pgas {

/// Global pointer into the symmetric heap: the same offset is valid on
/// every PE. `bytes` is the allocation's extent (bounds-checked on access).
struct Gptr {
  static constexpr std::size_t kNull = static_cast<std::size_t>(-1);
  std::size_t offset = kNull;
  std::size_t bytes = 0;

  bool valid() const { return offset != kNull; }
  /// Subrange starting `delta` bytes in.
  Gptr at(std::size_t delta) const {
    return Gptr{offset + delta, bytes > delta ? bytes - delta : 0};
  }
};

/// Software cost model for the PGAS runtime layer (on top of the wire costs
/// the fabric charges). Fitted qualitatively: a PGAS put is a CkDirect-style
/// RDMA write plus a thin runtime layer (address translation, op tracking),
/// so it sits between CkDirect and MPI one-sided.
struct PgasCosts {
  std::string name = "dart-ib";
  /// Origin-side software per put (translation, op bookkeeping, post).
  /// Thicker than CkDirect's direct post: the PGAS runtime resolves the
  /// global pointer, allocates an op record, and routes through a generic
  /// completion layer (DART-MPI measures ~1-2 us over native verbs for
  /// small puts).
  sim::Time put_origin_us = 1.0;
  /// Origin-side software per get before the request leaves.
  sim::Time get_origin_us = 1.0;
  /// Target-side service cost per get (progress engine turns the request
  /// into an RDMA write back).
  sim::Time get_target_us = 0.30;
  /// Origin-side software per remote atomic.
  sim::Time atomic_origin_us = 0.30;
  /// Target-side RMW execution cost (serialized at the target).
  sim::Time atomic_target_us = 0.25;
  /// Origin-side processing of a completion ack.
  sim::Time completion_us = 0.10;
  /// Target-side delay between RDMA land and the signal watcher noticing
  /// (putSignal only; the analogue of CkDirect's poll interval, plus the
  /// runtime's signal dispatch).
  sim::Time signal_poll_us = 0.70;
  /// Software cost per barrier message hop.
  sim::Time barrier_hop_us = 0.20;
  /// Registering a source/destination buffer outside the symmetric heap
  /// (pin + key exchange); hits in the per-PE registration cache are free —
  /// the "persistent buffer association" idea from the Liu et al. RDMA
  /// channel, applied to PGAS bounce buffers.
  sim::Time reg_miss_us = 12.0;
  double reg_miss_per_byte_us = 0.25e-3;
  /// Wire size of control messages (requests, acks, barrier tokens).
  std::size_t control_bytes = 16;
  /// Transparent re-posts after a QP error before the op is failed.
  int retry_budget = 3;
  /// reestablish(): idempotent in-flight ops (puts, gets) are re-driven up
  /// to this many times across restore phases, with exponentially growing
  /// delay, before being failed outright. Atomics are never re-driven —
  /// the RMW may already have executed at the target with only the reply
  /// lost, and re-applying it would double-count.
  int reestablish_retries = 2;
  /// Base re-drive delay; doubles per attempt (5, 10, 20, ... us).
  sim::Time reestablish_backoff_us = 5.0;
};

/// Default preset for the Abe-like IB machine.
PgasCosts dartIbCosts();

/// Handle for test/wait on one op's completion levels. 0 = invalid.
using OpId = std::uint64_t;
constexpr OpId kNoOp = 0;

using Callback = std::function<void()>;
using ValueCallback = std::function<void(std::int64_t)>;

class Pgas {
 public:
  /// Allocates and registers a `segmentBytes` symmetric segment per PE.
  /// Setup-time only (serial context, before traffic).
  Pgas(ib::IbVerbs& verbs, PgasCosts costs, std::size_t segmentBytes);
  ~Pgas();

  Pgas(const Pgas&) = delete;
  Pgas& operator=(const Pgas&) = delete;

  ib::IbVerbs& verbs() { return verbs_; }
  net::Fabric& fabric() { return fabric_; }
  const PgasCosts& costs() const { return costs_; }
  int numPes() const { return fabric_.numPes(); }
  std::size_t segmentBytes() const { return segmentBytes_; }

  // --- symmetric heap -------------------------------------------------------

  /// Collective bump allocation: the returned offset is valid on every PE.
  /// Setup-time only. Aborts when the segment is exhausted.
  Gptr alloc(std::size_t bytes, std::size_t align = 8);

  /// Translate a global pointer to PE `pe`'s concrete address.
  void* addr(int pe, Gptr g);
  const void* addr(int pe, Gptr g) const;

  // --- one-sided ops --------------------------------------------------------

  /// Handle-based put: returns immediately with an OpId; use
  /// testLocal/waitLocal for source-buffer reuse and testRemote/waitRemote
  /// (or flush/fence) for target visibility.
  OpId put(int origin, int target, Gptr dst, const void* src,
           std::size_t bytes);

  /// Blocking-style put: `done` fires at the origin once the data is
  /// visible at the target (remote completion).
  void putBlocking(int origin, int target, Gptr dst, const void* src,
                   std::size_t bytes, Callback done);

  /// Put with a target-side notification: `onTargetNotify` runs *on the
  /// target PE* signal_poll_us after the data lands (SHMEM put-with-signal
  /// flavor; the PGAS analogue of a CkDirect callback). The returned OpId
  /// still completes at the origin like a plain put.
  OpId putSignal(int origin, int target, Gptr dst, const void* src,
                 std::size_t bytes, Callback onTargetNotify);

  /// Get `bytes` from `target`'s `src` into the origin's local buffer.
  /// Completes locally (`done` at the origin when the data arrived); both
  /// completion levels coincide.
  OpId get(int origin, int target, Gptr src, void* dst, std::size_t bytes,
           Callback done = {});

  // --- remote atomics (8-byte cells, 8-aligned) -----------------------------

  /// Atomically add `delta` to the int64 cell at `g` on `target`; `done`
  /// receives the pre-add value at the origin.
  OpId fetchAdd(int origin, int target, Gptr g, std::int64_t delta,
                ValueCallback done = {});

  /// Atomic compare-swap: set the cell to `desired` iff it equals
  /// `expected`; `done` receives the pre-op value.
  OpId compareSwap(int origin, int target, Gptr g, std::int64_t expected,
                   std::int64_t desired, ValueCallback done = {});

  // --- completion (the DART local/remote split) -----------------------------

  /// True once the source buffer is reusable (unknown ids read complete:
  /// records are reclaimed when fully done).
  bool testLocal(OpId id) const;
  /// True once the op is remotely complete (visible at the target).
  bool testRemote(OpId id) const;
  void waitLocal(OpId id, Callback cb);
  void waitRemote(OpId id, Callback cb);

  /// All of `origin`'s ops locally complete (dart_flush_local_all).
  void flushLocal(int origin, Callback cb);
  /// All of `origin`'s ops to `target` remotely complete (dart_flush).
  void flush(int origin, int target, Callback cb);
  /// All of `origin`'s ops to every target remotely complete
  /// (dart_flush_all; the memory-model fence).
  void fence(int origin, Callback cb);

  /// Team barrier: every PE must call it once per round; `done` fires on
  /// the calling PE after all have entered. Does NOT imply fence (call
  /// fence first for the full "all my writes visible" barrier).
  void barrier(int pe, Callback done);

  // --- fault tolerance ------------------------------------------------------

  /// Crash-rebinding hook (PR 3 contract; call from the serial restore
  /// phase): re-registers segments whose registration was invalidated,
  /// resets errored QPs, and drops stale registration-cache entries. Ops
  /// still in flight are then re-driven with bounded exponential backoff
  /// (reestablish_retries / reestablish_backoff_us) rather than failed
  /// outright — a transient disruption costs latency, not completions.
  /// Only idempotent ops re-drive (puts and gets; the payload landing twice
  /// is harmless): atomics fail immediately, and an op out of re-drive
  /// budget fails too, so waiters and fences always fire. Callers keep
  /// source buffers stable until *remote* completion when restore phases
  /// may re-drive.
  void reestablish();

  /// Ops failed permanently (retry budget exhausted or canceled by
  /// reestablish()). Their waiters/flushes still fire.
  std::uint64_t failedOps() const {
    return failedOps_.load(std::memory_order_relaxed);
  }

  /// In-flight ops re-driven (not failed) by reestablish() so far.
  std::uint64_t opsRedriven() const {
    return redriven_.load(std::memory_order_relaxed);
  }

  // --- counters -------------------------------------------------------------

  std::uint64_t putsIssued() const {
    return puts_.load(std::memory_order_relaxed);
  }
  std::uint64_t getsIssued() const {
    return gets_.load(std::memory_order_relaxed);
  }
  std::uint64_t atomicsIssued() const {
    return atomics_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytesPut() const {
    return putBytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t regCacheMisses() const {
    return regMisses_.load(std::memory_order_relaxed);
  }
  std::uint64_t barriersCompleted() const {
    return barriers_.load(std::memory_order_relaxed);
  }

 private:
  struct Op {
    int target = -1;
    /// Issue instant (newOp time); feeds the streaming request-latency
    /// histogram at remote completion. Redrives keep it — one op, N tries.
    sim::Time issuedAt = -1.0;
    bool localDone = false;
    bool remoteDone = false;
    bool failed = false;
    int redrives = 0;   ///< reestablish() re-drive attempts so far
    Callback redrive;   ///< re-issues the op; empty for non-idempotent ops
    Callback localWaiter;
    Callback remoteWaiter;
  };
  struct Watcher {
    bool local = false;  ///< watches local completions (else remote)
    int target = -1;     ///< -1 = any target
    std::uint64_t remaining = 0;
    Callback cb;
  };
  struct RegEntry {
    ib::RegionId id;
    const std::byte* base = nullptr;
    std::size_t len = 0;
  };
  /// Owned (touched) exclusively by its PE's execution context, except in
  /// the ctor and reestablish() (serial phases).
  struct PerPe {
    std::vector<std::byte> segment;
    ib::RegionId segRegion;
    std::unordered_map<OpId, Op> ops;
    std::uint64_t nextOp = 0;
    std::vector<Watcher> watchers;
    std::vector<std::uint64_t> outstandingRemote;  ///< per target
    std::uint64_t outstandingLocal = 0;
    std::unordered_map<const void*, RegEntry> regCache;
    std::vector<ib::QpId> qps;  ///< QPs this PE created (reset sweep)
    Callback barrierCb;
  };

  sim::Engine& engine() { return fabric_.engine(); }
  PerPe& pe(int p);
  const PerPe& pe(int p) const;

  /// Charge `cost` us of PGAS-library software in the calling context.
  void softwareDelay(sim::Time cost, sim::Engine::Action fn);

  OpId newOp(int origin, int target);
  void onLocalComplete(int origin, OpId id);
  void onRemoteComplete(int origin, OpId id);
  void failOp(int origin, OpId id);
  /// reestablish() helper: schedule a backed-off re-drive of an in-flight
  /// op, or fail it when non-idempotent / out of budget.
  void redriveOrFail(int origin, OpId id);
  void maybeReap(PerPe& p, OpId id);
  void satisfyWatchers(PerPe& p, bool local, int target);

  /// Region covering [ptr, ptr+bytes) for a buffer of PE `p`: the segment
  /// region when inside the symmetric heap, else the registration cache
  /// (registering + charging the miss cost on first use). Asynchronous
  /// because a miss costs time.
  void withRegion(int p, const void* ptr, std::size_t bytes,
                  std::function<void(ib::RegionId)> fn);

  void issuePut(int origin, int target, Gptr dst, const void* src,
                std::size_t bytes, OpId id, std::uint64_t traceId,
                Callback onTargetNotify);
  void postPutWrite(int origin, int target, void* remoteAddr, const void* src,
                    std::size_t bytes, ib::RegionId localRegion, OpId id,
                    std::uint64_t traceId, Callback notify, int budget);
  void issueGet(int origin, int target, Gptr src, void* dst,
                std::size_t bytes, OpId id, std::uint64_t traceId);
  void postGetWrite(int origin, int target, const void* srcAddr, void* dst,
                    std::size_t bytes, ib::RegionId dstRegion, OpId id,
                    std::uint64_t traceId, int budget);
  OpId issueAtomic(int origin, int target, Gptr g, bool isCas,
                   std::int64_t a, std::int64_t b, ValueCallback done);
  void barrierArrive();

  ib::IbVerbs& verbs_;
  net::Fabric& fabric_;
  PgasCosts costs_;
  std::size_t segmentBytes_;
  std::size_t allocOffset_ = 0;
  std::vector<PerPe> pes_;
  /// Barrier rendezvous state; touched only in PE 0's context.
  int barrierArrived_ = 0;
  std::uint64_t barrierGen_ = 0;

  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> gets_{0};
  std::atomic<std::uint64_t> atomics_{0};
  std::atomic<std::uint64_t> putBytes_{0};
  std::atomic<std::uint64_t> regMisses_{0};
  std::atomic<std::uint64_t> failedOps_{0};
  std::atomic<std::uint64_t> redriven_{0};
  std::atomic<std::uint64_t> barriers_{0};
};

}  // namespace ckd::pgas
