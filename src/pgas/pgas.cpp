#include "pgas/pgas.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/require.hpp"

namespace ckd::pgas {

namespace {

int originOf(OpId id) { return static_cast<int>(id >> 44) - 1; }

}  // namespace

PgasCosts dartIbCosts() { return PgasCosts{}; }

Pgas::Pgas(ib::IbVerbs& verbs, PgasCosts costs, std::size_t segmentBytes)
    : verbs_(verbs),
      fabric_(verbs.fabric()),
      costs_(std::move(costs)),
      segmentBytes_(segmentBytes) {
  CKD_REQUIRE(segmentBytes_ > 0, "PGAS segment must be non-empty");
  const int n = numPes();
  pes_.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    PerPe& s = pes_[static_cast<std::size_t>(p)];
    s.segment.assign(segmentBytes_, std::byte{0});
    s.segRegion = verbs_.registerMemory(p, s.segment.data(), segmentBytes_);
    s.outstandingRemote.assign(static_cast<std::size_t>(n), 0);
  }
}

Pgas::~Pgas() {
  for (PerPe& s : pes_) {
    if (verbs_.regionValid(s.segRegion)) verbs_.deregisterMemory(s.segRegion);
    for (auto& [ptr, entry] : s.regCache)
      if (verbs_.regionValid(entry.id)) verbs_.deregisterMemory(entry.id);
  }
}

Pgas::PerPe& Pgas::pe(int p) {
  CKD_REQUIRE(p >= 0 && p < numPes(), "PE out of range");
  return pes_[static_cast<std::size_t>(p)];
}

const Pgas::PerPe& Pgas::pe(int p) const {
  CKD_REQUIRE(p >= 0 && p < numPes(), "PE out of range");
  return pes_[static_cast<std::size_t>(p)];
}

void Pgas::softwareDelay(sim::Time cost, sim::Engine::Action fn) {
  sim::Engine& eng = engine();
  eng.trace().addLayerTime(sim::Layer::kTransport, cost);
  eng.after(cost, std::move(fn));
}

// --- symmetric heap -----------------------------------------------------------

Gptr Pgas::alloc(std::size_t bytes, std::size_t align) {
  CKD_REQUIRE(bytes > 0, "zero-byte PGAS allocation");
  CKD_REQUIRE(align > 0 && (align & (align - 1)) == 0,
              "alignment must be a power of two");
  const std::size_t offset = (allocOffset_ + align - 1) & ~(align - 1);
  CKD_REQUIRE(offset + bytes <= segmentBytes_, "PGAS segment exhausted");
  allocOffset_ = offset + bytes;
  return Gptr{offset, bytes};
}

void* Pgas::addr(int p, Gptr g) {
  CKD_REQUIRE(g.valid() && g.offset + g.bytes <= segmentBytes_,
              "global pointer outside the symmetric heap");
  return pe(p).segment.data() + g.offset;
}

const void* Pgas::addr(int p, Gptr g) const {
  CKD_REQUIRE(g.valid() && g.offset + g.bytes <= segmentBytes_,
              "global pointer outside the symmetric heap");
  return pe(p).segment.data() + g.offset;
}

// --- op bookkeeping -----------------------------------------------------------

OpId Pgas::newOp(int origin, int target) {
  PerPe& p = pe(origin);
  const OpId id =
      (static_cast<std::uint64_t>(origin + 1) << 44) | ++p.nextOp;
  Op op;
  op.target = target;
  // Same instant as the op's kPgasPut/Get/Atomic begin span (every caller
  // records it just before newOp), so the streaming request histogram and
  // the post-hoc causal chain measure the same interval.
  op.issuedAt = engine().now();
  p.ops.emplace(id, std::move(op));
  ++p.outstandingLocal;
  ++p.outstandingRemote[static_cast<std::size_t>(target)];
  return id;
}

void Pgas::maybeReap(PerPe& p, OpId id) {
  auto it = p.ops.find(id);
  if (it == p.ops.end()) return;
  const Op& op = it->second;
  if (op.localDone && op.remoteDone && !op.localWaiter && !op.remoteWaiter)
    p.ops.erase(it);
}

void Pgas::satisfyWatchers(PerPe& p, bool local, int target) {
  std::vector<Callback> fired;
  for (Watcher& w : p.watchers) {
    if (w.local != local || w.remaining == 0) continue;
    if (!w.local && w.target != -1 && w.target != target) continue;
    if (--w.remaining == 0) fired.push_back(std::move(w.cb));
  }
  if (fired.empty()) return;
  std::erase_if(p.watchers,
                [](const Watcher& w) { return w.remaining == 0; });
  for (Callback& cb : fired)
    if (cb) cb();
}

void Pgas::onLocalComplete(int origin, OpId id) {
  PerPe& p = pe(origin);
  auto it = p.ops.find(id);
  if (it == p.ops.end() || it->second.localDone) return;
  it->second.localDone = true;
  --p.outstandingLocal;
  Callback waiter = std::move(it->second.localWaiter);
  it->second.localWaiter = nullptr;
  satisfyWatchers(p, /*local=*/true, it->second.target);
  if (waiter) waiter();
  maybeReap(p, id);
}

void Pgas::onRemoteComplete(int origin, OpId id) {
  PerPe& p = pe(origin);
  auto it = p.ops.find(id);
  if (it == p.ops.end() || it->second.remoteDone) return;
  it->second.remoteDone = true;
  // Streaming request latency: issue -> remote completion. Failed ops never
  // remotely complete through here without a redrive, and the redrive keeps
  // issuedAt — one logical op, N attempts.
  if (!it->second.failed && it->second.issuedAt >= 0.0)
    engine().metrics().record(obs::Slo::kRequest,
                              engine().now() - it->second.issuedAt);
  const int target = it->second.target;
  --p.outstandingRemote[static_cast<std::size_t>(target)];
  Callback waiter = std::move(it->second.remoteWaiter);
  it->second.remoteWaiter = nullptr;
  satisfyWatchers(p, /*local=*/false, target);
  if (waiter) waiter();
  maybeReap(p, id);
}

void Pgas::failOp(int origin, OpId id) {
  PerPe& p = pe(origin);
  auto it = p.ops.find(id);
  if (it == p.ops.end()) return;
  failedOps_.fetch_add(1, std::memory_order_relaxed);
  it->second.failed = true;
  onLocalComplete(origin, id);
  onRemoteComplete(origin, id);
}

// --- registration cache -------------------------------------------------------

void Pgas::withRegion(int p, const void* ptr, std::size_t bytes,
                      std::function<void(ib::RegionId)> fn) {
  PerPe& s = pe(p);
  const auto* b = static_cast<const std::byte*>(ptr);
  // Inside the symmetric heap: covered by the segment registration.
  if (b >= s.segment.data() && b + bytes <= s.segment.data() + segmentBytes_) {
    fn(s.segRegion);
    return;
  }
  auto it = s.regCache.find(ptr);
  if (it != s.regCache.end()) {
    const RegEntry& e = it->second;
    if (verbs_.regionValid(e.id) && b >= e.base && b + bytes <= e.base + e.len) {
      fn(e.id);
      return;
    }
    s.regCache.erase(it);
  }
  // Miss: pin the buffer (charged once; later ops on the same buffer hit).
  regMisses_.fetch_add(1, std::memory_order_relaxed);
  const sim::Time cost =
      costs_.reg_miss_us +
      costs_.reg_miss_per_byte_us * static_cast<double>(bytes);
  softwareDelay(cost, [this, p, ptr, bytes, fn = std::move(fn)]() mutable {
    const ib::RegionId id =
        verbs_.registerMemory(p, const_cast<void*>(ptr), bytes);
    RegEntry e;
    e.id = id;
    e.base = static_cast<const std::byte*>(ptr);
    e.len = bytes;
    pe(p).regCache.emplace(ptr, e);
    fn(id);
  });
}

// --- put ----------------------------------------------------------------------

OpId Pgas::put(int origin, int target, Gptr dst, const void* src,
               std::size_t bytes) {
  CKD_REQUIRE(src != nullptr && bytes > 0, "bad put source");
  CKD_REQUIRE(dst.valid() && bytes <= dst.bytes &&
                  dst.offset + bytes <= segmentBytes_,
              "put writes past the target allocation");
  pe(target);  // range-check
  sim::Engine& eng = engine();
  const std::uint64_t traceId = eng.trace().mintIdFor(origin);
  eng.trace().recordSpan(eng.now(), origin, sim::TraceTag::kPgasPut,
                         sim::SpanPhase::kBegin, traceId,
                         eng.trace().context(),
                         static_cast<double>(bytes), target);
  puts_.fetch_add(1, std::memory_order_relaxed);
  putBytes_.fetch_add(bytes, std::memory_order_relaxed);
  const OpId id = newOp(origin, target);
  softwareDelay(costs_.put_origin_us,
                [this, origin, target, dst, src, bytes, id, traceId]() {
                  issuePut(origin, target, dst, src, bytes, id, traceId, {});
                });
  return id;
}

void Pgas::putBlocking(int origin, int target, Gptr dst, const void* src,
                       std::size_t bytes, Callback done) {
  const OpId id = put(origin, target, dst, src, bytes);
  waitRemote(id, std::move(done));
}

OpId Pgas::putSignal(int origin, int target, Gptr dst, const void* src,
                     std::size_t bytes, Callback onTargetNotify) {
  CKD_REQUIRE(onTargetNotify, "putSignal needs a target notification");
  CKD_REQUIRE(src != nullptr && bytes > 0, "bad put source");
  CKD_REQUIRE(dst.valid() && bytes <= dst.bytes &&
                  dst.offset + bytes <= segmentBytes_,
              "put writes past the target allocation");
  pe(target);
  sim::Engine& eng = engine();
  const std::uint64_t traceId = eng.trace().mintIdFor(origin);
  eng.trace().recordSpan(eng.now(), origin, sim::TraceTag::kPgasPut,
                         sim::SpanPhase::kBegin, traceId,
                         eng.trace().context(),
                         static_cast<double>(bytes), target);
  puts_.fetch_add(1, std::memory_order_relaxed);
  putBytes_.fetch_add(bytes, std::memory_order_relaxed);
  const OpId id = newOp(origin, target);
  softwareDelay(costs_.put_origin_us,
                [this, origin, target, dst, src, bytes, id, traceId,
                 notify = std::move(onTargetNotify)]() mutable {
                  issuePut(origin, target, dst, src, bytes, id, traceId,
                           std::move(notify));
                });
  return id;
}

void Pgas::issuePut(int origin, int target, Gptr dst, const void* src,
                    std::size_t bytes, OpId id, std::uint64_t traceId,
                    Callback onTargetNotify) {
  // A put is idempotent (re-landing the same bytes is harmless), so
  // reestablish() may re-issue it wholesale after a transient disruption.
  // The re-drive drops the signal callback, like the QP-error retry path.
  if (auto it = pe(origin).ops.find(id); it != pe(origin).ops.end())
    it->second.redrive = [this, origin, target, dst, src, bytes, id,
                          traceId]() {
      issuePut(origin, target, dst, src, bytes, id, traceId, {});
    };
  void* remoteAddr = addr(target, dst);
  if (target == origin) {
    // Self-put: a process-local copy through the fabric's self class. No
    // registration, no QP — like a real PGAS runtime short-circuiting to
    // memcpy.
    fabric_.submit(
        origin, origin, bytes, net::XferKind::kRdma,
        [this, origin, remoteAddr, src, bytes, id, traceId,
         notify = std::move(onTargetNotify)]() mutable {
          std::memcpy(remoteAddr, src, bytes);
          const bool signal = static_cast<bool>(notify);
          const sim::Time cost =
              signal ? costs_.signal_poll_us : costs_.completion_us;
          softwareDelay(cost, [this, origin, bytes, id, traceId,
                               notify = std::move(notify)]() {
            sim::Engine& eng = engine();
            eng.trace().recordSpan(eng.now(), origin,
                                   sim::TraceTag::kPgasComplete,
                                   sim::SpanPhase::kEnd, traceId, 0,
                                   static_cast<double>(bytes), origin);
            if (notify) notify();
            onLocalComplete(origin, id);
            onRemoteComplete(origin, id);
          });
        },
        traceId);
    return;
  }
  withRegion(origin, src, bytes,
             [this, origin, target, remoteAddr, src, bytes, id, traceId,
              notify = std::move(onTargetNotify)](ib::RegionId lr) mutable {
               postPutWrite(origin, target, remoteAddr, src, bytes, lr, id,
                            traceId, std::move(notify), costs_.retry_budget);
             });
}

void Pgas::postPutWrite(int origin, int target, void* remoteAddr,
                        const void* src, std::size_t bytes,
                        ib::RegionId localRegion, OpId id,
                        std::uint64_t traceId, Callback notify, int budget) {
  const ib::QpId qp = verbs_.connect(origin, target);
  PerPe& p = pe(origin);
  if (std::find(p.qps.begin(), p.qps.end(), qp) == p.qps.end())
    p.qps.push_back(qp);

  ib::IbVerbs::RdmaWrite w;
  w.qp = qp;
  w.local_addr = src;
  w.local_region = localRegion;
  w.remote_addr = remoteAddr;
  w.remote_region = pes_[static_cast<std::size_t>(target)].segRegion;
  w.bytes = bytes;
  w.trace_id = traceId;
  w.on_local_complete = [this, origin, id]() { onLocalComplete(origin, id); };
  const bool signal = static_cast<bool>(notify);
  w.on_remote_delivered = [this, origin, target, bytes, id, traceId, signal,
                           notify = std::move(notify)]() {
    // Target context: the payload is in the target's segment.
    if (signal) {
      softwareDelay(costs_.signal_poll_us,
                    [this, origin, target, bytes, traceId, notify]() {
                      sim::Engine& eng = engine();
                      eng.trace().recordSpan(eng.now(), target,
                                             sim::TraceTag::kPgasComplete,
                                             sim::SpanPhase::kEnd, traceId, 0,
                                             static_cast<double>(bytes),
                                             origin);
                      notify();
                    });
    }
    // Remote-completion ack back to the origin (DART's dart_flush level).
    // Untraced submit: the chain's wire segment stays the data flight.
    fabric_.submit(
        target, origin, costs_.control_bytes, net::XferKind::kControl,
        [this, origin, bytes, id, traceId, signal]() {
          softwareDelay(costs_.completion_us,
                        [this, origin, bytes, id, traceId, signal]() {
                          if (!signal) {
                            sim::Engine& eng = engine();
                            eng.trace().recordSpan(
                                eng.now(), origin,
                                sim::TraceTag::kPgasComplete,
                                sim::SpanPhase::kEnd, traceId, 0,
                                static_cast<double>(bytes), origin);
                          }
                          onRemoteComplete(origin, id);
                        });
        });
  };
  if (fabric_.faults() != nullptr) {
    w.on_error = [this, origin, target, remoteAddr, src, bytes, localRegion,
                  id, traceId, budget](fault::WcStatus) {
      // Sender (origin) context. Transparent re-post, like the CkDirect
      // manager; the retransmitted attempt keeps the chain id.
      if (budget > 0) {
        verbs_.resetQp(verbs_.connect(origin, target));
        postPutWrite(origin, target, remoteAddr, src, bytes, localRegion, id,
                     traceId, {}, budget - 1);
      } else {
        failOp(origin, id);
      }
    };
  }
  verbs_.postRdmaWrite(std::move(w));
}

// --- get ----------------------------------------------------------------------

OpId Pgas::get(int origin, int target, Gptr src, void* dst, std::size_t bytes,
               Callback done) {
  CKD_REQUIRE(dst != nullptr && bytes > 0, "bad get destination");
  CKD_REQUIRE(src.valid() && bytes <= src.bytes &&
                  src.offset + bytes <= segmentBytes_,
              "get reads past the target allocation");
  pe(target);
  sim::Engine& eng = engine();
  const std::uint64_t traceId = eng.trace().mintIdFor(origin);
  eng.trace().recordSpan(eng.now(), origin, sim::TraceTag::kPgasGet,
                         sim::SpanPhase::kBegin, traceId,
                         eng.trace().context(),
                         static_cast<double>(bytes), target);
  gets_.fetch_add(1, std::memory_order_relaxed);
  const OpId id = newOp(origin, target);
  if (done) pe(origin).ops[id].remoteWaiter = std::move(done);

  softwareDelay(costs_.get_origin_us,
                [this, origin, target, src, dst, bytes, id, traceId]() {
                  issueGet(origin, target, src, dst, bytes, id, traceId);
                });
  return id;
}

void Pgas::issueGet(int origin, int target, Gptr src, void* dst,
                    std::size_t bytes, OpId id, std::uint64_t traceId) {
  // Like a put, a get re-reads the same cell — idempotent, so re-drivable.
  if (auto it = pe(origin).ops.find(id); it != pe(origin).ops.end())
    it->second.redrive = [this, origin, target, src, dst, bytes, id,
                          traceId]() {
      issueGet(origin, target, src, dst, bytes, id, traceId);
    };
  const void* srcAddr = addr(target, src);
  if (target == origin) {
    fabric_.submit(
        origin, origin, bytes, net::XferKind::kRdma,
        [this, origin, srcAddr, dst, bytes, id, traceId]() {
          std::memcpy(dst, srcAddr, bytes);
          softwareDelay(costs_.completion_us,
                        [this, origin, bytes, id, traceId]() {
                          sim::Engine& eng = engine();
                          eng.trace().recordSpan(
                              eng.now(), origin,
                              sim::TraceTag::kPgasComplete,
                              sim::SpanPhase::kEnd, traceId, 0,
                              static_cast<double>(bytes), origin);
                          onLocalComplete(origin, id);
                          onRemoteComplete(origin, id);
                        });
        },
        traceId);
    return;
  }
  // Pin the landing buffer *before* the request leaves (the origin knows
  // its own buffer; the target must not block on the origin's pinning).
  withRegion(origin, dst, bytes, [this, origin, target, srcAddr, dst, bytes,
                                  id, traceId](ib::RegionId dr) {
    fabric_.submit(
        origin, target, costs_.control_bytes, net::XferKind::kControl,
        [this, origin, target, srcAddr, dst, bytes, id, traceId, dr]() {
          // Target context: service the request.
          softwareDelay(costs_.get_target_us,
                        [this, origin, target, srcAddr, dst, bytes, id,
                         traceId, dr]() {
                          postGetWrite(origin, target, srcAddr, dst, bytes,
                                       dr, id, traceId,
                                       costs_.retry_budget);
                        });
        },
        traceId);
  });
}

void Pgas::postGetWrite(int origin, int target, const void* srcAddr,
                        void* dst, std::size_t bytes, ib::RegionId dstRegion,
                        OpId id, std::uint64_t traceId, int budget) {
  // Target context: RDMA-write the data back into the origin's buffer.
  const ib::QpId qp = verbs_.connect(target, origin);
  PerPe& t = pe(target);
  if (std::find(t.qps.begin(), t.qps.end(), qp) == t.qps.end())
    t.qps.push_back(qp);

  ib::IbVerbs::RdmaWrite w;
  w.qp = qp;
  w.local_addr = srcAddr;
  w.local_region = t.segRegion;
  w.remote_addr = dst;
  w.remote_region = dstRegion;
  w.bytes = bytes;
  w.trace_id = traceId;
  w.on_remote_delivered = [this, origin, bytes, id, traceId]() {
    // Origin context: the data landed locally — both completion levels.
    softwareDelay(costs_.completion_us, [this, origin, bytes, id, traceId]() {
      sim::Engine& eng = engine();
      eng.trace().recordSpan(eng.now(), origin, sim::TraceTag::kPgasComplete,
                             sim::SpanPhase::kEnd, traceId, 0,
                             static_cast<double>(bytes), origin);
      onLocalComplete(origin, id);
      onRemoteComplete(origin, id);
    });
  };
  if (fabric_.faults() != nullptr) {
    w.on_error = [this, origin, target, srcAddr, dst, bytes, dstRegion, id,
                  traceId, budget](fault::WcStatus) {
      // Sender (target) context. Origin-side state must not be touched from
      // here; route the failure through a control message.
      if (budget > 0) {
        verbs_.resetQp(verbs_.connect(target, origin));
        postGetWrite(origin, target, srcAddr, dst, bytes, dstRegion, id,
                     traceId, budget - 1);
      } else {
        fabric_.submit(target, origin, costs_.control_bytes,
                       net::XferKind::kControl,
                       [this, origin, id]() { failOp(origin, id); });
      }
    };
  }
  verbs_.postRdmaWrite(std::move(w));
}

// --- remote atomics -----------------------------------------------------------

OpId Pgas::fetchAdd(int origin, int target, Gptr g, std::int64_t delta,
                    ValueCallback done) {
  return issueAtomic(origin, target, g, /*isCas=*/false, delta, 0,
                     std::move(done));
}

OpId Pgas::compareSwap(int origin, int target, Gptr g, std::int64_t expected,
                       std::int64_t desired, ValueCallback done) {
  return issueAtomic(origin, target, g, /*isCas=*/true, expected, desired,
                     std::move(done));
}

OpId Pgas::issueAtomic(int origin, int target, Gptr g, bool isCas,
                       std::int64_t a, std::int64_t b, ValueCallback done) {
  CKD_REQUIRE(g.valid() && g.bytes >= 8 && g.offset % 8 == 0 &&
                  g.offset + 8 <= segmentBytes_,
              "remote atomics operate on 8-aligned int64 cells");
  pe(target);
  sim::Engine& eng = engine();
  const std::uint64_t traceId = eng.trace().mintIdFor(origin);
  eng.trace().recordSpan(eng.now(), origin, sim::TraceTag::kPgasAtomic,
                         sim::SpanPhase::kBegin, traceId,
                         eng.trace().context(), 8.0, target);
  atomics_.fetch_add(1, std::memory_order_relaxed);
  const OpId id = newOp(origin, target);

  softwareDelay(costs_.atomic_origin_us, [this, origin, target, g, isCas, a,
                                          b, id, traceId,
                                          done = std::move(done)]() mutable {
    // The request is a control message; the RMW executes at the target in
    // arrival order (the fabric's canonical delivery order), which is what
    // makes concurrent updaters deterministic across reruns and shards.
    fabric_.submit(
        origin, target, costs_.control_bytes, net::XferKind::kControl,
        [this, origin, target, g, isCas, a, b, id, traceId,
         done = std::move(done)]() mutable {
          softwareDelay(
              costs_.atomic_target_us,
              [this, origin, target, g, isCas, a, b, id, traceId,
               done = std::move(done)]() mutable {
                auto* cell = static_cast<std::int64_t*>(addr(target, g));
                const std::int64_t old = *cell;
                if (isCas) {
                  if (old == a) *cell = b;
                } else {
                  *cell += a;
                }
                // Reply with the pre-op value (untraced: the chain's wire
                // segment stays the request leg).
                fabric_.submit(
                    target, origin, costs_.control_bytes,
                    net::XferKind::kControl,
                    [this, origin, old, id, traceId,
                     done = std::move(done)]() mutable {
                      softwareDelay(
                          costs_.completion_us,
                          [this, origin, old, id, traceId,
                           done = std::move(done)]() {
                            sim::Engine& eng = engine();
                            eng.trace().recordSpan(
                                eng.now(), origin,
                                sim::TraceTag::kPgasComplete,
                                sim::SpanPhase::kEnd, traceId, 0, 8.0,
                                origin);
                            if (done) done(old);
                            onLocalComplete(origin, id);
                            onRemoteComplete(origin, id);
                          });
                    });
              });
        },
        traceId);
  });
  return id;
}

// --- completion ---------------------------------------------------------------

bool Pgas::testLocal(OpId id) const {
  CKD_REQUIRE(id != kNoOp, "invalid op id");
  const PerPe& p = pe(originOf(id));
  const auto it = p.ops.find(id);
  return it == p.ops.end() || it->second.localDone;
}

bool Pgas::testRemote(OpId id) const {
  CKD_REQUIRE(id != kNoOp, "invalid op id");
  const PerPe& p = pe(originOf(id));
  const auto it = p.ops.find(id);
  return it == p.ops.end() || it->second.remoteDone;
}

void Pgas::waitLocal(OpId id, Callback cb) {
  CKD_REQUIRE(id != kNoOp, "invalid op id");
  PerPe& p = pe(originOf(id));
  auto it = p.ops.find(id);
  if (it == p.ops.end() || it->second.localDone) {
    if (cb) engine().after(0.0, std::move(cb));
    return;
  }
  CKD_REQUIRE(!it->second.localWaiter, "waitLocal already pending on op");
  it->second.localWaiter = std::move(cb);
}

void Pgas::waitRemote(OpId id, Callback cb) {
  CKD_REQUIRE(id != kNoOp, "invalid op id");
  PerPe& p = pe(originOf(id));
  auto it = p.ops.find(id);
  if (it == p.ops.end() || it->second.remoteDone) {
    if (cb) engine().after(0.0, std::move(cb));
    return;
  }
  CKD_REQUIRE(!it->second.remoteWaiter, "waitRemote already pending on op");
  it->second.remoteWaiter = std::move(cb);
}

void Pgas::flushLocal(int origin, Callback cb) {
  PerPe& p = pe(origin);
  sim::Engine& eng = engine();
  eng.trace().record(eng.now(), origin, sim::TraceTag::kPgasFence,
                     static_cast<double>(p.outstandingLocal));
  if (p.outstandingLocal == 0) {
    if (cb) eng.after(0.0, std::move(cb));
    return;
  }
  Watcher w;
  w.local = true;
  w.remaining = p.outstandingLocal;
  w.cb = std::move(cb);
  p.watchers.push_back(std::move(w));
}

void Pgas::flush(int origin, int target, Callback cb) {
  PerPe& p = pe(origin);
  std::uint64_t pending = 0;
  if (target < 0) {
    for (const std::uint64_t c : p.outstandingRemote) pending += c;
  } else {
    pending = p.outstandingRemote[static_cast<std::size_t>(target)];
  }
  sim::Engine& eng = engine();
  eng.trace().record(eng.now(), origin, sim::TraceTag::kPgasFence,
                     static_cast<double>(pending));
  if (pending == 0) {
    if (cb) eng.after(0.0, std::move(cb));
    return;
  }
  Watcher w;
  w.target = target;
  w.remaining = pending;
  w.cb = std::move(cb);
  p.watchers.push_back(std::move(w));
}

void Pgas::fence(int origin, Callback cb) { flush(origin, -1, std::move(cb)); }

// --- barrier ------------------------------------------------------------------

void Pgas::barrier(int p, Callback done) {
  PerPe& s = pe(p);
  CKD_REQUIRE(!s.barrierCb, "barrier already pending on this PE");
  s.barrierCb = std::move(done);
  sim::Engine& eng = engine();
  eng.trace().record(eng.now(), p, sim::TraceTag::kPgasBarrier);
  softwareDelay(costs_.barrier_hop_us, [this, p]() {
    fabric_.submit(p, 0, costs_.control_bytes, net::XferKind::kControl,
                   [this]() { barrierArrive(); });
  });
}

void Pgas::barrierArrive() {
  // PE 0's context: the centralized rendezvous counter lives here.
  if (++barrierArrived_ < numPes()) return;
  barrierArrived_ = 0;
  ++barrierGen_;
  barriers_.fetch_add(1, std::memory_order_relaxed);
  for (int p = 0; p < numPes(); ++p) {
    fabric_.submit(0, p, costs_.control_bytes, net::XferKind::kControl,
                   [this, p]() {
                     softwareDelay(costs_.barrier_hop_us, [this, p]() {
                       Callback cb = std::move(pe(p).barrierCb);
                       pe(p).barrierCb = nullptr;
                       if (cb) cb();
                     });
                   });
  }
}

// --- fault tolerance ----------------------------------------------------------

void Pgas::reestablish() {
  // Serial phase: every shard is parked, so cross-PE state is touchable.
  for (int p = 0; p < numPes(); ++p) {
    PerPe& s = pes_[static_cast<std::size_t>(p)];
    if (!verbs_.regionValid(s.segRegion))
      s.segRegion = verbs_.registerMemory(p, s.segment.data(), segmentBytes_);
    std::erase_if(s.regCache, [this](const auto& kv) {
      return !verbs_.regionValid(kv.second.id);
    });
    for (const ib::QpId qp : s.qps)
      if (verbs_.qpInError(qp)) verbs_.resetQp(qp);
  }
  // Ops in flight at the disruption lost their wire traffic (the link
  // flushed them). Don't fail them outright: the repair above restored the
  // registrations and QPs, so an idempotent op can simply be re-issued.
  // Each gets a bounded number of re-drives with exponential backoff;
  // atomics (the RMW may have executed with only the reply lost) and ops
  // out of budget fail so waiters and fences still fire.
  for (int p = 0; p < numPes(); ++p) {
    PerPe& s = pes_[static_cast<std::size_t>(p)];
    std::vector<OpId> inflight;
    for (const auto& [id, op] : s.ops)
      if (!op.localDone || !op.remoteDone) inflight.push_back(id);
    std::sort(inflight.begin(), inflight.end());
    for (const OpId id : inflight) redriveOrFail(p, id);
  }
}

void Pgas::redriveOrFail(int origin, OpId id) {
  PerPe& p = pe(origin);
  auto it = p.ops.find(id);
  if (it == p.ops.end()) return;
  Op& op = it->second;
  if (!op.redrive || op.redrives >= costs_.reestablish_retries) {
    failOp(origin, id);
    return;
  }
  const sim::Time delay = costs_.reestablish_backoff_us *
                          static_cast<double>(1 << op.redrives);
  ++op.redrives;
  redriven_.fetch_add(1, std::memory_order_relaxed);
  Callback redrive = op.redrive;  // copy: the op may re-drive again later
  softwareDelay(delay, std::move(redrive));
}

}  // namespace ckd::pgas
