#include "net/lookahead.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace ckd::net {

std::vector<sim::Time> shardLookaheadMatrix(const topo::Topology& topology,
                                            const CostParams& params,
                                            const std::vector<int>& shardOfPe,
                                            int nShards) {
  CKD_REQUIRE(nShards >= 1, "lookahead matrix needs at least one shard");
  const sim::Time inf = std::numeric_limits<sim::Time>::infinity();
  const sim::Time floor = params.wireLatencyFloor();

  // Node range [lo, hi] per shard — a superset of the nodes it owns, which
  // only ever *under*-estimates hop distance (conservative).
  const std::size_t n = static_cast<std::size_t>(nShards);
  std::vector<int> lo(n, std::numeric_limits<int>::max());
  std::vector<int> hi(n, -1);
  for (std::size_t pe = 0; pe < shardOfPe.size(); ++pe) {
    const int s = shardOfPe[pe];
    CKD_REQUIRE(s >= 0 && s < nShards, "PE mapped to an out-of-range shard");
    const int node = topology.nodeOf(static_cast<int>(pe));
    lo[static_cast<std::size_t>(s)] =
        std::min(lo[static_cast<std::size_t>(s)], node);
    hi[static_cast<std::size_t>(s)] =
        std::max(hi[static_cast<std::size_t>(s)], node);
  }

  std::vector<sim::Time> matrix(n * n, inf);
  for (std::size_t s = 0; s < n; ++s) {
    if (hi[s] < 0) continue;  // shard owns no PEs: it can send nothing
    for (std::size_t d = 0; d < n; ++d) {
      if (d == s || hi[d] < 0) continue;
      const int hops =
          topology.minHopsBetween(lo[s], hi[s], lo[d], hi[d]);
      matrix[s * n + d] = floor + params.per_hop_us * hops;
    }
  }
  return matrix;
}

}  // namespace ckd::net
